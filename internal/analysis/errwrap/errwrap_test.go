package errwrap_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/errwrap"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestErrwrap(t *testing.T) {
	oeanalysistest.Run(t, errwrap.Analyzer, filepath.Join("testdata", "src", "a"))
}
