// Test corpus for the errwrap analyzer: sentinel and structured errors
// matched correctly (errors.Is/As, %w) and incorrectly (==, value
// switches, concrete type assertions, %v flattening).
package a

import (
	"errors"
	"fmt"
)

var ErrCorrupt = errors.New("corrupt")
var ErrClosed = errors.New("closed")

type CorruptError struct {
	Key int64
}

func (e *CorruptError) Error() string { return "corrupt" }

// Is teaches errors.Is the type's identity: the direct comparison here is
// the idiom, not the bug.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt } // ok: Is-method exemption

func load() error { return nil }

func compareEq(err error) bool {
	return err == ErrCorrupt // want `compares an error to the sentinel ErrCorrupt with ==`
}

func compareNeq(err error) bool {
	return err != nil && err != ErrClosed // want `compares an error to the sentinel ErrClosed with !=`
}

func compareIs(err error) bool { // ok: errors.Is sees through wrapping
	return errors.Is(err, ErrCorrupt)
}

func compareLocals(err error) bool { // ok: two just-produced errors, no sentinel
	prev := load()
	return err == prev
}

func valueSwitch(err error) int {
	switch err {
	case nil:
		return 0
	case ErrCorrupt: // want `switches on an error value against the sentinel ErrCorrupt`
		return 1
	}
	return 2
}

func assertConcrete(err error) int64 {
	if ce, ok := err.(*CorruptError); ok { // want `asserts an error to the concrete type \*CorruptError`
		return ce.Key
	}
	return 0
}

func assertViaAs(err error) int64 { // ok: errors.As sees through wrapping
	var ce *CorruptError
	if errors.As(err, &ce) {
		return ce.Key
	}
	return 0
}

func typeSwitchConcrete(err error) int64 {
	switch e := err.(type) {
	case *CorruptError: // want `type-switches an error to the concrete type \*CorruptError`
		return e.Key
	case interface{ Timeout() bool }: // ok: interface cases probe behavior, not identity
		return -1
	}
	return 0
}

func wrapFlattens(err error) error {
	return fmt.Errorf("load: %v", err) // want `formats an error with %v, flattening it out of the chain`
}

func wrapString(err error) error {
	return fmt.Errorf("load: %s", err) // want `formats an error with %s, flattening it out of the chain`
}

func wrapKeeps(err error) error { // ok: %w preserves the chain
	return fmt.Errorf("load: %w", err)
}

func wrapMixed(key int64, err error) error { // ok: the %d binds the int, the %w binds the error
	return fmt.Errorf("key %d: %w", key, err)
}

func citeSuperseded(prev, err error) error {
	//oevet:errwrap-ok the superseded error is cited as context; the live failure is wrapped
	return fmt.Errorf("retry (after %v): %w", prev, err)
}
