// Package errwrap mechanizes the typed-error flow invariant: the
// repository's sentinel and structured errors (ErrCorrupt, *CorruptError,
// TimeoutError, ErrRemoteCorrupt, ...) cross RPC and engine boundaries
// wrapped in context, so matching them with `==`, a value switch, or a
// concrete type assertion silently stops working the first time a caller
// adds `fmt.Errorf("...: %w", err)`. The analyzer reports:
//
//   - `err == sentinel` / `err != sentinel` comparisons (and value-switch
//     cases) against package-level error variables — use errors.Is;
//   - type assertions and type-switch cases naming a concrete error type —
//     use errors.As;
//   - fmt.Errorf formatting an error argument with %v/%s — use %w so the
//     chain stays matchable.
//
// The one legitimate direct comparison — the `func (e *T) Is(target error)
// bool { return target == ErrX }` method that teaches errors.Is about a
// type's identity — is exempt. Remaining deliberate sites are suppressed
// in place with `//oevet:errwrap-ok <reason>`.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags error handling that breaks on wrapped errors.
var Analyzer = &oeanalysis.Analyzer{
	Name: "errwrap",
	Doc:  "check that typed errors flow through %w/errors.Is/errors.As, never == or concrete type switches",
	Run:  run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

func run(pass *oeanalysis.Pass) error {
	info := pass.TypesInfo
	supp := oeanalysis.NewSuppressor(pass, "errwrap-ok")

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			check(pass, info, supp, fn)
		}
	}
	supp.Finish()
	return nil
}

// isIsMethod reports whether fn is the errors.Is support idiom: a method
// named Is with signature func (recv) Is(target error) bool, whose direct
// comparisons define the type's identity rather than bypassing it.
func isIsMethod(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Name.Name != "Is" || fn.Recv == nil {
		return false
	}
	obj, _ := info.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isErrorType(sig.Params().At(0).Type()) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// sentinel resolves e to a package-level error variable ("sentinel"), or
// nil. Locals and fields are not sentinels: comparing two just-produced
// errors for identity is not the wrapped-chain bug.
func sentinel(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func check(pass *oeanalysis.Pass, info *types.Info, supp *oeanalysis.Suppressor, fn *ast.FuncDecl) {
	inIs := isIsMethod(info, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if inIs {
				return true
			}
			op := x.Op.String()
			if op != "==" && op != "!=" {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{x.X, x.Y}, {x.Y, x.X}} {
				if s := sentinel(info, pair[1]); s != nil && isErrorType(typeOf(info, pair[0])) {
					verb := "errors.Is"
					if op == "!=" {
						verb = "!errors.Is"
					}
					supp.Reportf(x.Pos(), "compares an error to the sentinel %s with %s; wrapped errors never compare equal — use %s(err, %s)", s.Name(), op, verb, s.Name())
					break
				}
			}
		case *ast.SwitchStmt:
			if x.Tag == nil || !isErrorType(typeOf(info, x.Tag)) {
				return true
			}
			for _, cc := range x.Body.List {
				cl, ok := cc.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cl.List {
					if s := sentinel(info, e); s != nil {
						supp.Reportf(e.Pos(), "switches on an error value against the sentinel %s; wrapped errors never compare equal — use errors.Is in if/else", s.Name())
					}
				}
			}
		case *ast.TypeAssertExpr:
			if x.Type == nil { // the type-switch header, handled below
				return true
			}
			if !isErrorType(typeOf(info, x.X)) {
				return true
			}
			if t := typeOf(info, x.Type); t != nil && !types.IsInterface(t) && isErrorType(t) {
				supp.Reportf(x.Pos(), "asserts an error to the concrete type %s; a wrapped %s never matches — use errors.As", types.TypeString(t, types.RelativeTo(pass.Pkg)), types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		case *ast.TypeSwitchStmt:
			var subject ast.Expr
			switch a := x.Assign.(type) {
			case *ast.AssignStmt:
				if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
					subject = ta.X
				}
			case *ast.ExprStmt:
				if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
					subject = ta.X
				}
			}
			if subject == nil || !isErrorType(typeOf(info, subject)) {
				return true
			}
			for _, cc := range x.Body.List {
				cl, ok := cc.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cl.List {
					t := typeOf(info, e)
					if t == nil || types.IsInterface(t) || !isErrorType(t) {
						continue // interface cases (net.Error, Timeout() probes) are fine
					}
					supp.Reportf(e.Pos(), "type-switches an error to the concrete type %s; a wrapped %s never matches — use errors.As", types.TypeString(t, types.RelativeTo(pass.Pkg)), types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
		case *ast.CallExpr:
			checkErrorf(pass, info, supp, x)
		}
		return true
	})
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// checkErrorf flags fmt.Errorf calls that format an error argument with a
// flattening verb (%v/%s) instead of wrapping it with %w.
func checkErrorf(pass *oeanalysis.Pass, info *types.Info, supp *oeanalysis.Suppressor, call *ast.CallExpr) {
	callee := oeanalysis.CalleeFunc(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" || callee.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	argIdx := 1
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision; '*' consumes an argument.
		for i < len(format) && strings.ContainsRune("+-# 0.123456789", rune(format[i])) {
			i++
		}
		for i < len(format) && format[i] == '*' {
			argIdx++
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			continue
		}
		if argIdx < len(call.Args) && (verb == 'v' || verb == 's') {
			arg := call.Args[argIdx]
			if isErrorType(typeOf(info, arg)) && !isNilConst(info, arg) {
				supp.Reportf(arg.Pos(), "formats an error with %%%c, flattening it out of the chain; wrap it with %%w so errors.Is/errors.As still match", verb)
			}
		}
		argIdx++
	}
}

func isNilConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
