package faultdet_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/faultdet"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestFaultdet(t *testing.T) {
	oeanalysistest.Run(t, faultdet.Analyzer, filepath.Join("testdata", "src", "a"))
}
