// Test corpus for the faultdet analyzer.
//
//oevet:fault-deterministic
package a

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want `call to rand\.Intn in a fault-deterministic package`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // want `call to rand\.New in a fault-deterministic package` `call to rand\.NewSource in a fault-deterministic package`
	return r.Intn(10)                   // want `call to \(rand stream\)\.Intn in a fault-deterministic package`
}

func osEntropy(buf []byte) {
	crand.Read(buf) // want `call to crypto/rand Read in a fault-deterministic package`
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `call to time\.Now in a fault-deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time\.Since in a fault-deterministic package`
}

func sleepIsFine(d time.Duration) { // ok: executing a delay is deterministic
	time.Sleep(d)
}

// statelessHash is the sanctioned shape: a pure function of its inputs.
func statelessHash(seed, point, label, n uint64) float64 {
	x := splitmix64(seed ^ splitmix64(point^splitmix64(label^splitmix64(n))))
	return float64(x>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
