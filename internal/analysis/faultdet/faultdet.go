// Package faultdet mechanizes the replay contract of the fault-injection
// layer: a chaos run must be reproducible from its printed seed alone, so
// packages marked
//
//	//oevet:fault-deterministic
//
// (internal/faultinject) must derive every injection decision as a pure
// function of (seed, decision coordinates) — a stateless hash — and never
// from ambient randomness or the wall clock.
//
// The contract here is strictly stronger than the determinism analyzer's:
// determinism permits an explicitly seeded rand.New(rand.NewSource(seed)),
// but a *rand.Rand is still a stateful stream, and when several
// (point, label) fault streams share one generator the draw order — and
// therefore every decision — depends on goroutine interleaving. faultdet
// rejects math/rand and math/rand/v2 wholesale, constructors included;
// injection decisions must use a stateless mix (splitmix64 over the
// decision coordinates) instead.
//
// Three checks:
//
//   - math/rand, math/rand/v2: every call is reported, including rand.New
//     and rand.NewSource, and including methods on *rand.Rand / rand.Source
//     values (stateful streams are the problem, not just the global one);
//   - crypto/rand: every call is reported (OS entropy can never replay);
//   - wall clock: calls to time.Now / time.Since / time.Until are reported
//     — a decision keyed on "when" differs between runs. time.Sleep and
//     time.Duration arithmetic are fine: *executing* an injected delay is
//     deterministic, *deciding* from the clock is not.
package faultdet

import (
	"go/ast"
	"go/types"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags ambient-randomness and wall-clock decision sources in
// //oevet:fault-deterministic packages.
var Analyzer = &oeanalysis.Analyzer{
	Name: "faultdet",
	Doc:  "forbid math/rand (even seeded), crypto/rand and wall-clock reads in //oevet:fault-deterministic packages; fault decisions must be stateless hashes of the seed",
	Run:  run,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *oeanalysis.Pass) error {
	if !oeanalysis.PackageMarked(pass.Files, "fault-deterministic") {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, info, call)
				}
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *oeanalysis.Pass, info *types.Info, call *ast.CallExpr) {
	fn := oeanalysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig != nil && sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		if pkgLevel && wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "call to time.%s in a fault-deterministic package; decisions must not depend on the wall clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Both package-level calls AND methods: a seeded *rand.Rand is a
		// stateful stream whose draw order depends on interleaving.
		what := "rand." + fn.Name()
		if !pkgLevel {
			what = "(rand stream)." + fn.Name()
		}
		pass.Reportf(call.Pos(), "call to %s in a fault-deterministic package; derive decisions as a stateless hash of (seed, point, label, occurrence)", what)
	case "crypto/rand":
		pass.Reportf(call.Pos(), "call to crypto/rand %s in a fault-deterministic package; OS entropy can never replay from a seed", fn.Name())
	}
}
