package oeanalysis

import (
	"go/ast"
	"go/types"
)

// Lock names one participant in the global lock hierarchy.
type Lock struct {
	Name string
	Rank int
}

// Facts is the cross-package side channel of the suite: analyzers export
// what annotations declare about a package's objects while that package is
// being analyzed, and later packages (the driver analyzes in dependency
// order) consult them at call sites whose declarations live elsewhere.
// Keys are types.Func.FullName(), which is identical whether the object was
// type-checked from source or loaded from export data.
type Facts struct {
	// Acquires maps a function to the ranked locks calling it may acquire
	// (transitively, as computed by lockorder plus oevet:acquires).
	Acquires map[string][]Lock
	// PMemClass maps a function to its durability class: "write", "flush"
	// or "publish" (from the oevet:pmem-* annotations).
	PMemClass map[string]string
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{
		Acquires:  make(map[string][]Lock),
		PMemClass: make(map[string]string),
	}
}

// CalleeFunc resolves the static callee of a call expression, or nil when
// the callee is not a declared function/method (function values, interface
// methods, conversions, builtins).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if sub, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = sub
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FieldVar resolves the struct field a selector-like expression denotes
// (seeing through index expressions and parens, e.g. s.stripes[i] -> field
// stripes), or nil when expr is not a field selection.
func FieldVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v
				}
			}
			// Package-qualified or method selection: not a field.
			return nil
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// IsErrorPathReturn reports whether the return statement sits inside an if
// statement whose condition contains an `x != nil` comparison — the
// idiomatic failure path, which durability checks must not flag (a failed
// write has nothing to flush).
func IsErrorPathReturn(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		hasNilCheck := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if b, ok := n.(*ast.BinaryExpr); ok {
				if b.Op.String() == "!=" || b.Op.String() == "==" {
					if isNilIdent(b.X) || isNilIdent(b.Y) {
						hasNilCheck = true
					}
				}
			}
			return true
		})
		if hasNilCheck {
			return true
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
