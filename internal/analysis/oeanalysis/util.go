package oeanalysis

import (
	"go/ast"
	"go/types"
)

// Lock names one participant in the global lock hierarchy.
type Lock struct {
	Name string
	Rank int
}

// ChargeBound bounds how many times one device cost class is charged across
// the paths through a function: Min over non-error paths, Max over every
// path. Counts saturate at 2, which reads as "two or more".
type ChargeBound struct {
	Min, Max int
}

// ChargeSummary bounds the simulated-time charges a call performs, one
// interval per device.Timed cost class.
type ChargeSummary struct {
	Read, Write, StreamRead, StreamWrite ChargeBound
}

// Zero reports whether no class can be charged on any path.
func (s ChargeSummary) Zero() bool {
	return s.Read.Max == 0 && s.Write.Max == 0 && s.StreamRead.Max == 0 && s.StreamWrite.Max == 0
}

// Facts is the cross-package side channel of the suite: analyzers export
// what annotations declare about a package's objects while that package is
// being analyzed, and later packages (the driver analyzes in dependency
// order) consult them at call sites whose declarations live elsewhere.
// Keys are types.Func.FullName(), which is identical whether the object was
// type-checked from source or loaded from export data.
type Facts struct {
	// Acquires maps a function to the ranked locks calling it may acquire
	// (transitively, as computed by lockorder plus oevet:acquires).
	Acquires map[string][]Lock
	// Holds maps a function to the ranked locks its callers must already
	// hold when invoking it (from oevet:holds), for the must-hold check.
	Holds map[string][]Lock
	// PMemClass maps a function to its durability class: "write", "flush"
	// or "publish" (from the oevet:pmem-* annotations).
	PMemClass map[string]string
	// Charges maps a function to the charge-count intervals chargeflow
	// computed for its body (or its oevet:charge contract when the body is
	// not in the analyzed set).
	Charges map[string]ChargeSummary
	// Allocates maps a function to a one-line description of its first
	// direct, non-error-path allocation site, so hot-path callers in
	// dependent packages see one level into their dependencies.
	Allocates map[string]string
	// FenceClass maps a function to its epoch-fence role: "need" (calling
	// it discards state the caller must fence), "apply" (it bumps the
	// epoch), or "park" (it records the obligation for a later apply).
	FenceClass map[string]string

	// Complete reports whether the store saw every dependency (standalone
	// mode, which analyzes in dependency order). The vettool protocol runs
	// one package at a time with no fact exchange and clears it; suppression
	// directives that cover fact-driven diagnostics cannot be judged unused
	// there, so the Suppressor skips its unused-directive meta-diagnostic
	// when Complete is false. Standalone mode stays authoritative.
	Complete bool
}

// NewFacts returns an empty fact store, marked Complete (the standalone
// driver and tests thread one store across all packages in dependency
// order; only the vettool path clears the flag).
func NewFacts() *Facts {
	return &Facts{
		Acquires:   make(map[string][]Lock),
		Holds:      make(map[string][]Lock),
		PMemClass:  make(map[string]string),
		Charges:    make(map[string]ChargeSummary),
		Allocates:  make(map[string]string),
		FenceClass: make(map[string]string),
		Complete:   true,
	}
}

// CalleeFunc resolves the static callee of a call expression, or nil when
// the callee is not a declared function/method (function values, interface
// methods, conversions, builtins).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if sub, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = sub
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FieldVar resolves the struct field a selector-like expression denotes
// (seeing through index expressions and parens, e.g. s.stripes[i] -> field
// stripes), or nil when expr is not a field selection.
func FieldVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v
				}
			}
			// Package-qualified or method selection: not a field.
			return nil
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// IsErrorPathReturn reports whether the return statement sits inside an if
// statement whose condition contains an `x != nil` comparison — the
// idiomatic failure path, which durability checks must not flag (a failed
// write has nothing to flush).
func IsErrorPathReturn(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if HasNilCheck(ifStmt.Cond) {
			return true
		}
	}
	return false
}

// HasNilCheck reports whether a condition contains an `x == nil` or
// `x != nil` comparison — the idiomatic failure-path guard that several
// analyzers exempt (allocations and missing charges on a path that only
// exists to surface an error are not hot-path regressions).
func HasNilCheck(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			if b.Op.String() == "!=" || b.Op.String() == "==" {
				if isNilIdent(b.X) || isNilIdent(b.Y) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
