package oeanalysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	FileNames  []string
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// GoList runs `go list -export -json -deps` for the given patterns in dir
// and returns the decoded package stream. The -export flag makes the go
// tool produce (or surface from the build cache) export data for every
// package, which is what lets the loader type-check targets against their
// dependencies without compiling anything itself.
func GoList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves import paths from
// compiler export-data files (the Export field of `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("oevet: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load type-checks every package matched by patterns (relative to dir, a
// directory inside the module). Test files are not analyzed: the invariants
// the suite enforces are production-code invariants, and excluding tests
// keeps the ignore baseline stable under test churn.
func Load(dir string, patterns []string) ([]*LoadedPackage, *token.FileSet, error) {
	pkgs, err := GoList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var targets []listPackage
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}
	// go list -deps emits packages in dependency order (dependencies before
	// dependents). Preserve it: facts exported by internal/pmem must already
	// exist when internal/core (which imports it) is analyzed.

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*LoadedPackage
	for _, t := range targets {
		lp, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, lp)
	}
	return out, fset, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*LoadedPackage, error) {
	var (
		files []*ast.File
		names []string
	)
	for _, f := range goFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, f)
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("oevet: parse %s: %w", path, err)
		}
		files = append(files, file)
		names = append(names, path)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("oevet: typecheck %s: %w", importPath, err)
	}
	return &LoadedPackage{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		FileNames:  names,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
