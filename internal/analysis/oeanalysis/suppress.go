package oeanalysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Suppressor implements an analyzer-scoped suppression verb: a directive
// `// oevet:<verb> <reason>` on the same line as a would-be diagnostic, or
// on the line directly above it, suppresses that diagnostic. Unlike the
// driver-level //oevet:ignore (a counted, last-resort escape hatch pinned
// by the baseline), a verb suppression is a semantic claim the analyzer
// itself understands ("this allocation is pooled", "this charge shape is
// intentional") and stays next to the code it justifies.
//
// The reason is mandatory, and a suppressor that suppresses nothing is
// itself reported — stale justifications rot into lies otherwise. The
// unused-directive check only runs when the pass's fact store is Complete:
// in vettool mode (single package, no cross-package facts) a directive
// covering a fact-driven diagnostic never fires, and reporting it as unused
// there would contradict the authoritative standalone run.
type Suppressor struct {
	pass *Pass
	verb string
	// byLine indexes directives by file:line for the coverage lookup.
	byLine map[suppressKey][]*suppressEntry
	all    []*suppressEntry
}

type suppressKey struct {
	file string
	line int
}

type suppressEntry struct {
	pos    token.Position
	reason string
	used   bool
}

// NewSuppressor scans the pass's files for `oevet:<verb>` directives.
func NewSuppressor(pass *Pass, verb string) *Suppressor {
	s := &Suppressor{pass: pass, verb: verb, byLine: map[suppressKey][]*suppressEntry{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, d := range ParseDirectives(cg) {
				if d.Verb != verb {
					continue
				}
				e := &suppressEntry{
					pos:    pass.Fset.Position(d.Pos),
					reason: strings.Join(d.Args, " "),
				}
				k := suppressKey{e.pos.Filename, e.pos.Line}
				s.byLine[k] = append(s.byLine[k], e)
				s.all = append(s.all, e)
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic at pos is covered by a directive
// on the same line or the line directly above, marking the directive used.
func (s *Suppressor) Suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, e := range s.byLine[suppressKey{p.Filename, line}] {
			e.used = true
			return true
		}
	}
	return false
}

// Reportf emits a diagnostic unless a suppression directive covers pos.
func (s *Suppressor) Reportf(pos token.Pos, format string, args ...any) {
	if s.Suppressed(pos) {
		return
	}
	s.pass.Reportf(pos, format, args...)
}

// Finish reports malformed (reason-less) and unused directives. Call it
// after every diagnostic of the analyzer has been issued.
func (s *Suppressor) Finish() {
	for _, e := range s.all {
		switch {
		case e.reason == "":
			s.pass.Reportf(posOf(s.pass, e.pos), "//oevet:%s requires a justification: //oevet:%s <reason>", s.verb, s.verb)
		case !e.used && s.pass.Facts.Complete:
			s.pass.Reportf(posOf(s.pass, e.pos), "unused //oevet:%s directive (suppresses nothing); delete it", s.verb)
		}
	}
}

// posOf maps a token.Position back to a token.Pos inside the pass's file
// set, so meta-diagnostics carry the directive's own location.
func posOf(pass *Pass, p token.Position) token.Pos {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil && tf.Name() == p.Filename {
			if p.Offset < tf.Size() {
				return tf.Pos(p.Offset)
			}
		}
	}
	return token.NoPos
}

// ---------------------------------------------------------------------------
// Hot-path closure
// ---------------------------------------------------------------------------

// HotpathSet computes the set of functions on the declared hot path of a
// package: every function annotated `oevet:hotpath` plus its transitive
// same-package static callees, with the walk stopping at functions
// annotated `oevet:coldpath <reason>` (a documented exit from the hot path,
// e.g. a first-touch promotion or a media-repair ladder).
//
// Coldpath reasons are mandatory, but this helper does not report them
// (several analyzers share the hot-path set; allocfree owns the
// meta-diagnostic). The returned maps are keyed by the declared
// *types.Func; cold maps each coldpath function to its reason.
func HotpathSet(pass *Pass) (hot map[*types.Func]*ast.FuncDecl, cold map[*types.Func]string) {
	info := pass.TypesInfo
	decls := map[*types.Func]*ast.FuncDecl{}
	hot = map[*types.Func]*ast.FuncDecl{}
	cold = map[*types.Func]string{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls[obj] = fn
			for _, d := range FuncDirectives(fn) {
				switch d.Verb {
				case "hotpath":
					roots = append(roots, obj)
				case "coldpath":
					cold[obj] = strings.Join(d.Args, " ")
				}
			}
		}
	}
	// BFS over same-package static call edges (including calls made inside
	// nested function literals: a literal defined on the hot path runs on
	// the hot path).
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if _, seen := hot[fn]; seen {
			continue
		}
		if _, isCold := cold[fn]; isCold {
			continue
		}
		decl := decls[fn]
		if decl == nil {
			continue
		}
		hot[fn] = decl
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeFunc(info, call)
			if callee != nil && callee.Pkg() == pass.Pkg {
				queue = append(queue, callee)
			}
			return true
		})
	}
	return hot, cold
}
