// Package oeanalysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface, built on nothing but the
// standard library so the repository's custom analyzers (cmd/oevet) work in
// a hermetic build.
//
// The shape deliberately mirrors x/tools: an Analyzer owns a Run function
// that receives a Pass (one type-checked package) and reports Diagnostics.
// If the module ever vendors x/tools, the analyzers port over by swapping
// the import path.
package oeanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// mechanizes and the annotation grammar it consumes.
	Doc string
	// Run inspects one package and reports violations through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is shared across every package of one driver run; packages are
	// analyzed in dependency order, so facts exported while analyzing a
	// dependency are visible at call sites in its dependents.
	Facts *Facts

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the collected reports in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// Run executes one analyzer over an already type-checked package. facts may
// be nil for a standalone (single-package) run.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *Facts) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFacts()
	}
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Facts: facts}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.Diagnostics(), nil
}

// ---------------------------------------------------------------------------
// Annotation grammar
//
// Invariants the type system cannot express are declared in comments with an
// `oevet:` prefix (both `// oevet:...` and `//oevet:...` spellings are
// accepted). The grammar is:
//
//	// oevet:lockrank <name> <rank>   on a mutex(-like) struct field: the
//	                                  field participates in the global lock
//	                                  hierarchy at integer <rank>; locks must
//	                                  be acquired in strictly increasing rank.
//	// oevet:acquires <name> <rank>   on a func decl: calling it may acquire
//	                                  the named lock (used for cross-package
//	                                  edges where the body is not analyzed).
//	// oevet:holds <name> <rank>      on a func decl: callers invoke it with
//	                                  the named lock already held.
//	// oevet:pmem-write               on a func decl: it stores to simulated
//	                                  PMem without making the data durable.
//	// oevet:pmem-flush               on a func decl: it persists previously
//	                                  written data (CLWB+SFENCE analog).
//	// oevet:pmem-publish             on a func decl: it publishes a commit
//	                                  word/version header that makes earlier
//	                                  writes reachable after recovery.
//	//oevet:deterministic-package     anywhere in a file: the whole package
//	                                  must be bit-reproducible (no wall
//	                                  clock, no global rand, no map-order
//	                                  dependent output).
//	// oevet:charge <class>           on a func decl: its contract is to
//	                                  charge the simulated-time meter exactly
//	                                  once with <class> (read, write,
//	                                  stream-read, stream-write) on every
//	                                  non-error path, and never with another
//	                                  class (chargeflow).
//	// oevet:charge-free              on a func decl: it must never reach a
//	                                  device.Timed charge on any path.
//	// oevet:hotpath                  on a func decl: it is a 0-alloc,
//	                                  stream-charge-free hot-path root; the
//	                                  allocfree and chargeflow analyzers walk
//	                                  its same-package call closure.
//	// oevet:coldpath <reason>        on a func decl: the hot-path walk stops
//	                                  here (first-touch promotion, media
//	                                  repair, ...). The reason is mandatory.
//	// oevet:fence-need               on a func decl: calling it discards
//	                                  durable or DRAM state; the caller must
//	                                  reach an epoch fence before returning
//	                                  (or be fence-need itself, passing the
//	                                  obligation on).
//	// oevet:fence-apply              on a func decl: it applies the fence
//	                                  (bumps the recovery epoch).
//	// oevet:fence-park               on a func decl: it parks the obligation
//	                                  for a later apply (pending-fence flag,
//	                                  loss accumulator).
//	// oevet:fence-obligated          on a func decl: it is entered with a
//	                                  pending fence obligation (an integrity
//	                                  callback) that every path must
//	                                  discharge.
//	//oevet:charge-ok <reason>        on (or immediately above) a flagged
//	//oevet:alloc-ok <reason>         line: analyzer-scoped suppressions for
//	//oevet:fence-ok <reason>         chargeflow, allocfree, epochfence and
//	//oevet:errwrap-ok <reason>       errwrap. The reason is mandatory and
//	                                  unused directives are themselves
//	                                  reported (see Suppressor).
//	//oevet:ignore <reason>           on (or immediately above) a flagged
//	                                  line: suppress the diagnostic. The
//	                                  reason is mandatory; cmd/oevet counts
//	                                  ignores against a pinned baseline.
// ---------------------------------------------------------------------------

// Directive is one parsed `oevet:` annotation.
type Directive struct {
	Verb string   // "lockrank", "acquires", "holds", "pmem-write", ...
	Args []string // whitespace-split arguments after the verb
	Pos  token.Pos
}

// ParseDirectives extracts every oevet: directive from a comment group.
func ParseDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if !strings.HasPrefix(text, "oevet:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, "oevet:"))
		if len(fields) == 0 {
			continue
		}
		// "oevet:lockrank name 10" and "oevet: lockrank name 10" both parse;
		// the verb may also be glued to the prefix ("oevet:lockrank").
		verb := fields[0]
		out = append(out, Directive{Verb: verb, Args: fields[1:], Pos: c.Pos()})
	}
	return out
}

// FuncDirectives returns the directives attached to a function declaration's
// doc comment.
func FuncDirectives(fn *ast.FuncDecl) []Directive {
	return ParseDirectives(fn.Doc)
}

// PackageMarked reports whether any file in the package carries the given
// standalone marker directive (e.g. "deterministic-package").
func PackageMarked(files []*ast.File, verb string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, d := range ParseDirectives(cg) {
				if d.Verb == verb {
					return true
				}
			}
		}
	}
	return false
}

// InterfaceMethodDirectives walks every interface type declared in the
// files and calls fn for each method that carries at least one directive on
// its doc or trailing line comment — so behavioral contracts (fence
// classes, charge classes) can live on the interface the callers actually
// dispatch through.
func InterfaceMethodDirectives(info *types.Info, files []*ast.File, fn func(m *types.Func, dirs []Directive)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, fld := range it.Methods.List {
				dirs := append(ParseDirectives(fld.Doc), ParseDirectives(fld.Comment)...)
				if len(dirs) == 0 {
					continue
				}
				for _, name := range fld.Names {
					if obj, ok := info.Defs[name].(*types.Func); ok {
						fn(obj, dirs)
					}
				}
			}
			return true
		})
	}
}

// FieldDirectives walks every struct type declared in the files and calls fn
// for each field that carries at least one directive (on the field's doc or
// trailing line comment). The named type may be generic; directives attach
// to the field object of the generic declaration.
func FieldDirectives(info *types.Info, files []*ast.File, fn func(field *types.Var, dirs []Directive)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				dirs := append(ParseDirectives(fld.Doc), ParseDirectives(fld.Comment)...)
				if len(dirs) == 0 {
					continue
				}
				for _, name := range fld.Names {
					if obj, ok := info.Defs[name].(*types.Var); ok {
						fn(obj, dirs)
					}
				}
			}
			return true
		})
	}
}
