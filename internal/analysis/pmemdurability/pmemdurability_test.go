package pmemdurability_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/oeanalysistest"
	"openembedding/internal/analysis/pmemdurability"
)

func TestPMemDurability(t *testing.T) {
	oeanalysistest.Run(t, pmemdurability.Analyzer, filepath.Join("testdata", "src", "a"))
}
