// Test corpus for the pmemdurability analyzer: a miniature of the
// Device.Write / Flush / commit-word protocol in internal/pmem.
package a

type device struct{}

// oevet:pmem-write
func (d *device) Write(off int, p []byte) error { return nil }

// oevet:pmem-flush
func (d *device) Flush(off, n int) error { return nil }

// oevet:pmem-publish
func (d *device) Publish(word int64) error { return nil }

func writeFlushPublish(d *device, p []byte) error { // ok: textbook order
	if err := d.Write(0, p); err != nil {
		return err // ok: error path, nothing durable to flush
	}
	if err := d.Flush(0, len(p)); err != nil {
		return err
	}
	return d.Publish(1)
}

func publishUnflushed(d *device, p []byte) error {
	if err := d.Write(0, p); err != nil {
		return err
	}
	return d.Publish(1) // want `publishes a PMem commit word while the write at .*a\.go:\d+ may be unflushed`
}

func returnUnflushed(d *device, p []byte) error {
	d.Write(0, p)
	return nil // want `returns while the PMem write at .*a\.go:\d+ may be unflushed`
}

func fallOffEndUnflushed(d *device, p []byte) {
	d.Write(0, p)
} // want `returns while the PMem write at .*a\.go:\d+ may be unflushed`

// oevet:pmem-write
func writeHelper(d *device, p []byte) error { // ok: obligation passed to caller
	return d.Write(0, p)
}

func deferredFlushOK(d *device, p []byte) {
	defer d.Flush(0, len(p))
	d.Write(0, p)
} // ok: flush deferred

func flushInReturn(d *device, p []byte) error { // ok: flush inside return expr
	d.Write(0, p)
	return d.Flush(0, len(p))
}

func callerOfHelperOK(d *device, p []byte) error {
	if err := writeHelper(d, p); err != nil {
		return err
	}
	return d.Flush(0, len(p))
}

func callerOfHelperBad(d *device, p []byte) error {
	writeHelper(d, p)
	return nil // want `returns while the PMem write at .*a\.go:\d+ may be unflushed`
}

func literalCheckedIndependently(d *device, p []byte) func() error {
	return func() error {
		d.Write(0, p)
		return nil // want `returns while the PMem write at .*a\.go:\d+ may be unflushed`
	}
}

// oevet:pmem-checksum
func (d *device) CRC(p []byte) uint32 { return 0 }

// oevet:pmem-flush
// oevet:pmem-integrity
func writeRecordOK(d *device, p []byte) error { // ok: checksum stamped, then flushed
	_ = d.CRC(p)
	if err := d.Write(0, p); err != nil {
		return err
	}
	return d.Flush(0, len(p))
}

// oevet:pmem-integrity
func flushWithoutChecksum(d *device, p []byte) error {
	if err := d.Write(0, p); err != nil {
		return err
	}
	return d.Flush(0, len(p)) // want `flushes PMem bytes on an integrity-marked persist path before any checksum is computed`
}

// oevet:pmem-integrity
func checksumAfterFlush(d *device, p []byte) error { // stamping after durability is too late
	if err := d.Flush(0, len(p)); err != nil { // want `flushes PMem bytes on an integrity-marked persist path before any checksum is computed`
		return err
	}
	_ = d.CRC(p)
	return nil
}

// oevet:pmem-integrity
func retryLoopFlushOK(d *device, p []byte) error { // ok: one stamp covers retried flushes
	_ = d.CRC(p)
	var err error
	for i := 0; i < 3; i++ {
		if err = d.Flush(0, len(p)); err == nil {
			return nil
		}
	}
	return err
}

func unmarkedFlushNoChecksumOK(d *device, p []byte) error { // ok: not an integrity path
	if err := d.Write(0, p); err != nil {
		return err
	}
	return d.Flush(0, len(p))
}
