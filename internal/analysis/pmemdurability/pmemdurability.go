// Package pmemdurability mechanizes the PMem persistence-ordering invariant:
// data written to the simulated device is durable only after an explicit
// Flush (internal/pmem/device.go), so a function that stores to PMem must
// flush before it publishes a commit word or returns — otherwise a crash
// can expose a torn or stale state that recovery then trusts.
//
// The check is annotation-driven. Function declarations are classified:
//
//	// oevet:pmem-write     stores to PMem without making the data durable
//	// oevet:pmem-flush     persists previously written data (CLWB+SFENCE)
//	// oevet:pmem-publish   publishes a commit word / version header that
//	//                      makes earlier writes reachable after recovery
//	// oevet:pmem-checksum  computes the integrity checksum that a persisted
//	//                      record (or header word) carries
//	// oevet:pmem-integrity marks a persist path whose bytes MUST carry a
//	//                      checksum: every flush it issues needs a prior
//	//                      pmem-checksum call in the same body
//
// Within every function body (walked in statement order):
//
//   - calling a pmem-publish function while a pmem-write is pending (no
//     pmem-flush since) is reported — the commit word must never become
//     durable before the data it covers can be;
//   - returning while a write is pending is reported, unless the function
//     is itself annotated pmem-write (it hands the flush obligation to its
//     caller), the return is an error path (`if err != nil { return ... }` —
//     a failed write has nothing to flush), or a flush is deferred;
//   - inside a pmem-integrity function, a pmem-flush call before any
//     pmem-checksum call is reported — bytes on integrity-critical persist
//     paths must never become durable without their checksum stamped, or
//     the media-fault scrubber would trust (or mistrust) garbage.
//
// Classes cross package boundaries via facts: when the declaring package is
// analyzed its annotations are exported, and dependent packages (analyzed
// later) resolve call sites against them. The tracking is per-function and
// range-agnostic: one flush clears every pending write, which matches how
// the engine persists whole records with a single Persist.
package pmemdurability

import (
	"go/ast"
	"go/token"
	"go/types"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags PMem writes that can become visible without a flush.
var Analyzer = &oeanalysis.Analyzer{
	Name: "pmemdurability",
	Doc:  "check that PMem writes are flushed before the commit word is published or the function returns (oevet:pmem-* annotations)",
	Run:  run,
}

func run(pass *oeanalysis.Pass) error {
	info := pass.TypesInfo

	// Local classes from annotations, exported as facts for dependents.
	// pmem-integrity is a property of the annotated body itself (its own
	// flushes need a prior checksum), not of call sites, so it stays local.
	classes := map[*types.Func]string{}
	integrity := map[*types.Func]bool{}
	var lits []*ast.FuncLit
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			for _, d := range oeanalysis.FuncDirectives(fn) {
				switch d.Verb {
				case "pmem-write":
					classes[obj] = "write"
				case "pmem-flush":
					classes[obj] = "flush"
				case "pmem-publish":
					classes[obj] = "publish"
				case "pmem-checksum":
					classes[obj] = "checksum"
				case "pmem-integrity":
					integrity[obj] = true
				}
			}
			if c, ok := classes[obj]; ok {
				pass.Facts.PMemClass[obj.FullName()] = c
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			c := &checker{
				pass:      pass,
				info:      info,
				classes:   classes,
				selfWrite: obj != nil && classes[obj] == "write",
				integrity: obj != nil && integrity[obj],
			}
			c.block(fn.Body, nil)
			if !lastIsReturn(fn.Body) {
				c.ret(fn.Body.Rbrace, nil) // falling off the end is a return
			}
			lits = append(lits, c.lits...)
		}
	}
	// Function literals get an independent pass: they run at an unknown
	// point in the enclosing timeline, so they carry their own obligation.
	for len(lits) > 0 {
		lit := lits[0]
		lits = lits[1:]
		c := &checker{pass: pass, info: info, classes: classes}
		c.block(lit.Body, nil)
		if !lastIsReturn(lit.Body) {
			c.ret(lit.Body.Rbrace, nil)
		}
		lits = append(lits, c.lits...)
	}
	return nil
}

func lastIsReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

type checker struct {
	pass    *oeanalysis.Pass
	info    *types.Info
	classes map[*types.Func]string

	selfWrite bool
	// integrity marks a pmem-integrity body: its flushes must follow a
	// checksum computation.
	integrity     bool
	checksummed   bool     // a pmem-checksum call has been seen
	unflushed     ast.Node // the pending write call, nil when flushed
	deferredFlush bool
	lits          []*ast.FuncLit // literals to analyze independently
}

func (c *checker) classOf(call *ast.CallExpr) string {
	callee := oeanalysis.CalleeFunc(c.info, call)
	if callee == nil {
		return ""
	}
	if cl, ok := c.classes[callee]; ok {
		return cl
	}
	return c.pass.Facts.PMemClass[callee.FullName()]
}

// exprs scans an expression tree in visit order, applying call events.
func (c *checker) exprs(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			c.lits = append(c.lits, lit)
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch c.classOf(call) {
		case "write":
			c.unflushed = call
		case "checksum":
			c.checksummed = true
		case "flush":
			c.unflushed = nil
			if c.integrity && !c.checksummed {
				c.pass.Reportf(call.Pos(), "flushes PMem bytes on an integrity-marked persist path before any checksum is computed; stamp the record checksum (oevet:pmem-checksum) before making the bytes durable")
				c.checksummed = true // one report per unchecksummed span
			}
		case "publish":
			if c.unflushed != nil {
				pos := c.pass.Fset.Position(c.unflushed.Pos())
				c.pass.Reportf(call.Pos(), "publishes a PMem commit word while the write at %s:%d may be unflushed; flush the written range first", pos.Filename, pos.Line)
				c.unflushed = nil // one report per pending write
			}
		}
		return true
	})
}

func (c *checker) block(b *ast.BlockStmt, ifStack []ast.Node) {
	for _, s := range b.List {
		c.stmt(s, ifStack)
	}
}

func (c *checker) stmt(s ast.Stmt, ifStack []ast.Node) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.exprs(r)
		}
		c.ret(st.Pos(), ifStack)
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init, ifStack)
		}
		c.exprs(st.Cond)
		inner := append(ifStack, ast.Node(st))
		c.block(st.Body, inner)
		if st.Else != nil {
			c.stmt(st.Else, inner)
		}
	case *ast.BlockStmt:
		c.block(st, ifStack)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init, ifStack)
		}
		c.exprs(st.Cond)
		c.block(st.Body, ifStack)
		if st.Post != nil {
			c.stmt(st.Post, ifStack)
		}
	case *ast.RangeStmt:
		c.exprs(st.X)
		c.block(st.Body, ifStack)
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init, ifStack)
		}
		c.exprs(st.Tag)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.exprs(e)
				}
				for _, bs := range cl.Body {
					c.stmt(bs, ifStack)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, bs := range cl.Body {
					c.stmt(bs, ifStack)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				for _, bs := range cl.Body {
					c.stmt(bs, ifStack)
				}
			}
		}
	case *ast.DeferStmt:
		if c.classOf(st.Call) == "flush" {
			c.deferredFlush = true
		}
		// Other deferred work runs after every return check; skip it.
	case *ast.GoStmt:
		// Concurrent timeline; the goroutine body is checked independently
		// if it is a literal.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.lits = append(c.lits, lit)
		}
	case *ast.LabeledStmt:
		c.stmt(st.Stmt, ifStack)
	default:
		c.exprs(s)
	}
}

// ret applies the return-while-unflushed rule at a return statement (or at
// the closing brace of a body that falls off the end).
func (c *checker) ret(pos token.Pos, ifStack []ast.Node) {
	if c.unflushed == nil || c.deferredFlush || c.selfWrite {
		return
	}
	if oeanalysis.IsErrorPathReturn(ifStack) {
		return
	}
	wp := c.pass.Fset.Position(c.unflushed.Pos())
	c.pass.Reportf(pos, "returns while the PMem write at %s:%d may be unflushed; flush it, defer a flush, or annotate this function oevet:pmem-write to pass the obligation to callers", wp.Filename, wp.Line)
}
