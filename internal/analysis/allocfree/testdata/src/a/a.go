// Test corpus for the allocfree analyzer: a miniature of the engine's
// pooled hot path (pull/push over preallocated scratch) plus constructs
// that reach the heap.
package a

import (
	"errors"
	"fmt"
)

type entry struct {
	key int64
	vec []float32
}

type shard struct {
	scratch []entry
	index   map[int64]int
	name    string
	err     error
}

// oevet:hotpath
func (s *shard) pull(keys []int64, out []float32) error {
	for i, k := range keys { // ok: range over a slice
		idx := s.index[k] // ok: map lookup does not allocate
		copy(out[i*4:], s.scratch[idx].vec)
	}
	return nil
}

// oevet:hotpath
func (s *shard) push(keys []int64) error {
	e := &entry{key: keys[0]} // want `&composite literal escapes to the heap`
	_ = e
	buf := make([]float32, 4) // want `make allocates`
	_ = buf
	s.scratch = append(s.scratch, entry{}) // want `append may grow the backing array`
	return nil
}

// reached from the hot root below, so its allocation is reported too.
func (s *shard) fanOut(k int64) {
	go func() { // want `go func literal allocates its closure per spawn`
		_ = k
	}()
}

// oevet:hotpath
func (s *shard) dispatch(k int64) {
	s.fanOut(k)
	defer func() { // ok: direct defer of a literal is open-coded on the stack
		_ = k
	}()
}

// oevet:hotpath
func (s *shard) format(k int64) string {
	return fmt.Sprintf("key %d", k) // want `fmt.Sprintf allocates`
}

// oevet:hotpath
func (s *shard) concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// oevet:hotpath
func (s *shard) mapWalk() int {
	n := 0
	for k := range s.index { // want `range over a map on the hot path`
		n += int(k)
	}
	return n
}

// oevet:hotpath
func (s *shard) convert(b []byte) string {
	return string(b) // want `to string conversion allocates`
}

// oevet:hotpath
func (s *shard) box(k int64) any {
	return any(k) // want `interface conversion boxes a non-pointer value`
}

// oevet:hotpath
func (s *shard) errorPathMayAllocate(k int64) error {
	if s.err != nil {
		return fmt.Errorf("pull %d: %w", k, s.err) // ok: failure path formats its error
	}
	return nil
}

// oevet:hotpath
func (s *shard) justified() {
	//oevet:alloc-ok pooled scratch; growth is amortized by reuse across batches
	s.scratch = append(s.scratch, entry{})
}

// oevet:coldpath first-touch slot creation; misses are off the steady-state path
func (s *shard) createMissing(k int64) *entry {
	e := &entry{key: k, vec: make([]float32, 4)} // ok: the hot walk stops at coldpath
	return e
}

// oevet:hotpath
func (s *shard) pullWithMiss(k int64) *entry {
	if idx, ok := s.index[k]; ok {
		return &s.scratch[idx] // ok: pointer into existing backing array, no literal
	}
	return s.createMissing(k)
}

func newShard() *shard {
	// ok: construction is not on any hot path
	return &shard{index: map[int64]int{}, err: errors.New("unset")}
}
