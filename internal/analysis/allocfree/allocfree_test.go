package allocfree_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/allocfree"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestAllocfree(t *testing.T) {
	oeanalysistest.Run(t, allocfree.Analyzer, filepath.Join("testdata", "src", "a"))
}
