// Package allocfree is the compile-time counterpart of the 0-alloc
// benchmark gate (TestPullPushZeroAllocs, BenchmarkEnginePull -benchmem):
// the batched pull/push hot path must not allocate per operation, and this
// analyzer reports every construct on the declared hot path that can reach
// the heap, each one either fixed or justified in place.
//
// Roots are annotated `// oevet:hotpath`; the analyzer walks their
// same-package static call closure, stopping at functions annotated
// `// oevet:coldpath <reason>` (first-touch promotion, media repair — paths
// the steady-state benchmark never takes). Inside the closure it flags:
//
//   - &composite literals (escape candidates), make, new;
//   - function literals that escape (passed as arguments, assigned, or
//     started with go) — immediately-called and directly-deferred literals
//     are open-coded on the stack and exempt;
//   - interface conversions of non-pointer concrete values (boxing);
//   - fmt.* formatting and errors.New (allocate by contract);
//   - append (may grow the backing array) and string concatenation /
//     string<->[]byte conversions;
//   - range over a map (hash-walk on the hot path; also order-unstable);
//   - calls into dependency packages whose exported fact records a direct
//     allocation site (one level deep; deeper chains stay pinned by the
//     benchmark gate).
//
// Sites under an `err != nil` (or `x == nil`) guard are exempt: the failure
// path may allocate its error. Deliberate allocations are justified in
// place with `//oevet:alloc-ok <reason>` (reason mandatory, unused
// directives reported) — the justification inventory is the document the
// benchmark gate cannot produce.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags heap-allocating constructs on oevet:hotpath call paths.
var Analyzer = &oeanalysis.Analyzer{
	Name: "allocfree",
	Doc:  "check that oevet:hotpath call closures stay allocation-free (the static counterpart of the 0-alloc benchmark gate)",
	Run:  run,
}

func run(pass *oeanalysis.Pass) error {
	info := pass.TypesInfo
	supp := oeanalysis.NewSuppressor(pass, "alloc-ok")

	hot, cold := oeanalysis.HotpathSet(pass)
	for fn, reason := range cold {
		if reason == "" {
			if decl := findDecl(pass, info, fn); decl != nil {
				pass.Reportf(decl.Pos(), "//oevet:coldpath requires a justification: //oevet:coldpath <reason>")
			}
		}
	}

	// Export one level of allocation visibility for dependent packages:
	// the first direct, non-error-path allocation site of every function.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if desc := firstAllocSite(pass, info, fn); desc != "" {
				pass.Facts.Allocates[obj.FullName()] = desc
			}
		}
	}

	for fn, decl := range hot {
		checkHot(pass, info, supp, fn, decl)
	}
	supp.Finish()
	return nil
}

func findDecl(pass *oeanalysis.Pass, info *types.Info, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, _ := info.Defs[fd.Name].(*types.Func); obj == fn {
					return fd
				}
			}
		}
	}
	return nil
}

// walkStack runs fn over every node in body with the ancestor stack
// available, the ast.Inspect push/pop protocol made explicit.
func walkStack(body ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// onErrorPath reports whether the node sits inside the body of an if whose
// condition nil-checks (the idiomatic failure path).
func onErrorPath(stack []ast.Node) bool {
	for i, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !oeanalysis.HasNilCheck(ifStmt.Cond) {
			continue
		}
		// Only the guarded body is the error path, not the else branch.
		if i+1 < len(stack) && stack[i+1] == ifStmt.Body {
			return true
		}
	}
	return false
}

// allocDenylist names functions that allocate by contract.
var allocDenylist = map[string]bool{
	"fmt.Sprintf": true, "fmt.Errorf": true, "fmt.Sprint": true,
	"fmt.Sprintln": true, "fmt.Fprintf": true, "fmt.Printf": true,
	"fmt.Println": true, "fmt.Print": true, "fmt.Fprintln": true,
	"errors.New": true,
}

// classify returns a report message for an allocating construct, or "".
// parent disambiguates contexts (immediate call, defer, go).
func classify(info *types.Info, n ast.Node, stack []ast.Node) string {
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	switch e := n.(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			if _, isLit := ast.Unparen(e.X).(*ast.CompositeLit); isLit {
				return "&composite literal escapes to the heap"
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make":
				return "make allocates"
			case "new":
				return "new allocates"
			case "append":
				return "append may grow the backing array"
			}
		}
		if callee := oeanalysis.CalleeFunc(info, e); callee != nil && callee.Pkg() != nil {
			if allocDenylist[callee.Pkg().Name()+"."+callee.Name()] {
				return callee.Pkg().Name() + "." + callee.Name() + " allocates (formatting/boxing)"
			}
		}
		// Conversions: string <-> []byte/[]rune and boxing into an
		// interface type.
		if len(e.Args) == 1 {
			if conv := conversionAlloc(info, e); conv != "" {
				return conv
			}
		}
	case *ast.FuncLit:
		if p, ok := parent.(*ast.CallExpr); ok {
			if p.Fun != n {
				return "function literal passed as an argument escapes (closure allocation)"
			}
			// Immediately-called literal: the statement context decides.
			if len(stack) >= 2 {
				switch gp := stack[len(stack)-2].(type) {
				case *ast.GoStmt:
					if gp.Call == p {
						return "go func literal allocates its closure per spawn; use a method value on a pooled frame"
					}
				case *ast.DeferStmt:
					if gp.Call == p {
						return "" // direct defer: open-coded, stack
					}
				}
			}
			return "" // func(){...}() on the spot: inlined, stack
		}
		return "function literal escapes (closure allocation)"
	case *ast.BinaryExpr:
		if e.Op.String() == "+" {
			if t, ok := info.Types[e.X]; ok && t.Type != nil {
				if b, isBasic := t.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
					return "string concatenation allocates"
				}
			}
		}
	case *ast.RangeStmt:
		if t, ok := info.Types[e.X]; ok && t.Type != nil {
			if _, isMap := t.Type.Underlying().(*types.Map); isMap {
				return "range over a map on the hot path (hash-walk cost, order-unstable)"
			}
		}
	}
	return ""
}

// conversionAlloc reports allocating conversions: string<->[]byte/[]rune
// and boxing a non-pointer concrete value into an interface.
func conversionAlloc(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	dst := tv.Type
	src := info.Types[call.Args[0]].Type
	if src == nil {
		return ""
	}
	if isConstExpr(info, call.Args[0]) {
		return "" // constant conversions fold at compile time
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.IsNil() {
		return "" // error(nil) and friends: a nil interface word, no box
	}
	dstU, srcU := dst.Underlying(), src.Underlying()
	if isString(dstU) && isByteOrRuneSlice(srcU) {
		return "[]byte/[]rune to string conversion allocates"
	}
	if isByteOrRuneSlice(dstU) && isString(srcU) {
		return "string to []byte/[]rune conversion allocates"
	}
	if types.IsInterface(dstU) && !types.IsInterface(srcU) {
		if _, isPtr := srcU.(*types.Pointer); !isPtr {
			return "interface conversion boxes a non-pointer value"
		}
	}
	return ""
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// firstAllocSite returns a short description of the first direct,
// non-error-path allocation in fn's body, for the cross-package fact.
func firstAllocSite(pass *oeanalysis.Pass, info *types.Info, fn *ast.FuncDecl) string {
	desc := ""
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		if desc != "" {
			return false
		}
		if onErrorPath(stack) {
			return true
		}
		if msg := classify(info, n, stack); msg != "" {
			p := pass.Fset.Position(n.Pos())
			desc = fmt.Sprintf("%s at %s:%d", msg, filepath.Base(p.Filename), p.Line)
			return false
		}
		return true
	})
	return desc
}

func checkHot(pass *oeanalysis.Pass, info *types.Info, supp *oeanalysis.Suppressor, fn *types.Func, decl *ast.FuncDecl) {
	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		if onErrorPath(stack) {
			return true
		}
		if msg := classify(info, n, stack); msg != "" {
			supp.Reportf(n.Pos(), "hot path (%s): %s", fn.Name(), msg)
			return true
		}
		// One level into dependency packages via facts.
		if call, ok := n.(*ast.CallExpr); ok {
			callee := oeanalysis.CalleeFunc(info, call)
			if callee != nil && callee.Pkg() != nil && callee.Pkg() != pass.Pkg {
				if desc, found := pass.Facts.Allocates[callee.FullName()]; found {
					supp.Reportf(call.Pos(), "hot path (%s): call to %s allocates (%s)", fn.Name(), callee.Name(), desc)
				}
			}
		}
		return true
	})
}
