// Test corpus for the lockorder analyzer: a miniature of the engine's
// ranked hierarchy (shard.mu 10 → stripe 15 → ckptMu 20 → arena.mu 30).
package a

import "sync"

type engine struct {
	// oevet:lockrank shard.mu 10
	mu sync.RWMutex
	// oevet:lockrank ckptMu 20
	ckptMu sync.Mutex
	// oevet:lockrank arena.mu 30
	arenaMu sync.Mutex
	stripes [4]sync.Mutex // oevet:lockrank stripe 15
	plain   sync.Mutex    // unranked: never tracked
}

func (e *engine) ascending() { // ok: strictly increasing ranks
	e.mu.Lock()
	e.ckptMu.Lock()
	e.arenaMu.Lock()
	e.arenaMu.Unlock()
	e.ckptMu.Unlock()
	e.mu.Unlock()
}

func (e *engine) inversion() {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock() // want `acquires shard\.mu \(rank 10\) while holding ckptMu \(rank 20\)`
	e.mu.Unlock()
}

func (e *engine) sameRankTwice(other *engine) {
	e.mu.Lock()
	other.mu.Lock() // want `acquires shard\.mu \(rank 10\) while holding shard\.mu \(rank 10\)`
	other.mu.Unlock()
	e.mu.Unlock()
}

func (e *engine) releaseThenAcquire() { // ok: ckptMu released before mu
	e.ckptMu.Lock()
	e.ckptMu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

func (e *engine) takesCkpt() {
	e.ckptMu.Lock() // want `acquires ckptMu \(rank 20\) while holding arena\.mu \(rank 30\).*held at entry via caller viaCallee`
	e.ckptMu.Unlock()
}

func (e *engine) viaCallee() {
	e.arenaMu.Lock()
	e.takesCkpt() // want `call to takesCkpt may acquire ckptMu \(rank 20\) while holding arena\.mu \(rank 30\)`
	e.arenaMu.Unlock()
}

func (e *engine) transitiveHop() {
	e.takesCkpt() // want `call to takesCkpt may acquire ckptMu \(rank 20\) while holding arena\.mu \(rank 30\).*held at entry via caller viaTransitiveCallee`
}

func (e *engine) viaTransitiveCallee() {
	e.arenaMu.Lock()
	e.transitiveHop() // want `call to transitiveHop may acquire ckptMu \(rank 20\) while holding arena\.mu \(rank 30\)`
	e.arenaMu.Unlock()
}

// oevet:acquires dev.mu 40
func annotatedExternal() {}

func (e *engine) viaAnnotationOK() { // ok: 40 > 30
	e.arenaMu.Lock()
	annotatedExternal()
	e.arenaMu.Unlock()
}

// oevet:acquires dev.mu 5
func annotatedLow() {}

func (e *engine) viaAnnotationBad() {
	e.mu.RLock()
	annotatedLow() // want `call to annotatedLow may acquire dev\.mu \(rank 5\) while holding shard\.mu \(rank 10\)`
	e.mu.RUnlock()
}

// oevet:holds ckptMu 20
func (e *engine) calledWithCkptHeld() {
	e.mu.RLock() // want `acquires shard\.mu \(rank 10\) while holding ckptMu \(rank 20\)`
	e.mu.RUnlock()
}

func (e *engine) stripeAliasOK() { // ok: 10 < 15 < 20
	e.mu.RLock()
	st := &e.stripes[0]
	st.Lock()
	e.ckptMu.Lock()
	e.ckptMu.Unlock()
	st.Unlock()
	e.mu.RUnlock()
}

func (e *engine) stripeAliasInversion() {
	st := &e.stripes[1]
	st.Lock()
	e.mu.Lock() // want `acquires shard\.mu \(rank 10\) while holding stripe \(rank 15\)`
	e.mu.Unlock()
	st.Unlock()
}

func (e *engine) unrankedIsFree() { // ok: plain has no rank
	e.arenaMu.Lock()
	e.plain.Lock()
	e.plain.Unlock()
	e.arenaMu.Unlock()
}

// Inference: lockedHelper carries no holds annotation, but its caller holds
// ckptMu across the call, so it is re-checked with ckptMu seeded at entry.
func (e *engine) lockedHelper() {
	e.mu.RLock() // want `acquires shard\.mu \(rank 10\) while holding ckptMu \(rank 20\).*held at entry via caller callsHelperLocked`
	e.mu.RUnlock()
}

func (e *engine) callsHelperLocked() {
	e.ckptMu.Lock()
	e.lockedHelper() // want `call to lockedHelper may acquire shard\.mu \(rank 10\) while holding ckptMu \(rank 20\)`
	e.ckptMu.Unlock()
}

// Must-hold: a holds annotation is a call-site contract, not only an entry
// seed — calling without the lock held is reported.
// oevet:holds arena.mu 30
func (e *engine) requiresArena() {}

func (e *engine) callsWithoutArena() {
	e.requiresArena() // want `call to requiresArena requires arena\.mu \(rank 30\) held \(oevet:holds\)`
}

func (e *engine) callsWithArena() { // ok: the contract is satisfied
	e.arenaMu.Lock()
	e.requiresArena()
	e.arenaMu.Unlock()
}

// Net lock effects: lockAll returns holding shard.mu, unlockAll releases the
// caller's shard.mu; the held-set threads through both helpers.
func (e *engine) lockAll()   { e.mu.Lock() }
func (e *engine) unlockAll() { e.mu.Unlock() }

func (e *engine) netHeldFlows() {
	e.lockAll()
	e.ckptMu.Lock() // ok: shard.mu 10 < ckptMu 20
	e.ckptMu.Unlock()
	e.mu.Lock() // want `acquires shard\.mu \(rank 10\) while holding shard\.mu \(rank 10\)`
	e.mu.Unlock()
	e.unlockAll()
}

// The deferred-unlock idiom is a zero-net helper: the deferred release is
// discharged from the exit set, so callers do not inherit a phantom lock.
func (e *engine) deferNet() {
	e.mu.Lock()
	defer e.mu.Unlock()
}

func (e *engine) callsDeferNet() { // ok: deferNet's net effect is zero
	e.deferNet()
	e.mu.Lock()
	e.mu.Unlock()
}
