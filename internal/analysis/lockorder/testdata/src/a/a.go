// Test corpus for the lockorder analyzer: a miniature of the engine's
// ranked hierarchy (shard.mu 10 → stripe 15 → ckptMu 20 → arena.mu 30).
package a

import "sync"

type engine struct {
	// oevet:lockrank shard.mu 10
	mu sync.RWMutex
	// oevet:lockrank ckptMu 20
	ckptMu sync.Mutex
	// oevet:lockrank arena.mu 30
	arenaMu sync.Mutex
	stripes [4]sync.Mutex // oevet:lockrank stripe 15
	plain   sync.Mutex    // unranked: never tracked
}

func (e *engine) ascending() { // ok: strictly increasing ranks
	e.mu.Lock()
	e.ckptMu.Lock()
	e.arenaMu.Lock()
	e.arenaMu.Unlock()
	e.ckptMu.Unlock()
	e.mu.Unlock()
}

func (e *engine) inversion() {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock() // want `acquires shard\.mu \(rank 10\) while holding ckptMu \(rank 20\)`
	e.mu.Unlock()
}

func (e *engine) sameRankTwice(other *engine) {
	e.mu.Lock()
	other.mu.Lock() // want `acquires shard\.mu \(rank 10\) while holding shard\.mu \(rank 10\)`
	other.mu.Unlock()
	e.mu.Unlock()
}

func (e *engine) releaseThenAcquire() { // ok: ckptMu released before mu
	e.ckptMu.Lock()
	e.ckptMu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

func (e *engine) takesCkpt() {
	e.ckptMu.Lock()
	e.ckptMu.Unlock()
}

func (e *engine) viaCallee() {
	e.arenaMu.Lock()
	e.takesCkpt() // want `call to takesCkpt may acquire ckptMu \(rank 20\) while holding arena\.mu \(rank 30\)`
	e.arenaMu.Unlock()
}

func (e *engine) transitiveHop() { e.takesCkpt() }

func (e *engine) viaTransitiveCallee() {
	e.arenaMu.Lock()
	e.transitiveHop() // want `call to transitiveHop may acquire ckptMu \(rank 20\) while holding arena\.mu \(rank 30\)`
	e.arenaMu.Unlock()
}

// oevet:acquires dev.mu 40
func annotatedExternal() {}

func (e *engine) viaAnnotationOK() { // ok: 40 > 30
	e.arenaMu.Lock()
	annotatedExternal()
	e.arenaMu.Unlock()
}

// oevet:acquires dev.mu 5
func annotatedLow() {}

func (e *engine) viaAnnotationBad() {
	e.mu.RLock()
	annotatedLow() // want `call to annotatedLow may acquire dev\.mu \(rank 5\) while holding shard\.mu \(rank 10\)`
	e.mu.RUnlock()
}

// oevet:holds ckptMu 20
func (e *engine) calledWithCkptHeld() {
	e.mu.RLock() // want `acquires shard\.mu \(rank 10\) while holding ckptMu \(rank 20\)`
	e.mu.RUnlock()
}

func (e *engine) stripeAliasOK() { // ok: 10 < 15 < 20
	e.mu.RLock()
	st := &e.stripes[0]
	st.Lock()
	e.ckptMu.Lock()
	e.ckptMu.Unlock()
	st.Unlock()
	e.mu.RUnlock()
}

func (e *engine) stripeAliasInversion() {
	st := &e.stripes[1]
	st.Lock()
	e.mu.Lock() // want `acquires shard\.mu \(rank 10\) while holding stripe \(rank 15\)`
	e.mu.Unlock()
	st.Unlock()
}

func (e *engine) unrankedIsFree() { // ok: plain has no rank
	e.arenaMu.Lock()
	e.plain.Lock()
	e.plain.Unlock()
	e.arenaMu.Unlock()
}
