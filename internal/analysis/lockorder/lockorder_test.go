package lockorder_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/lockorder"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestLockOrder(t *testing.T) {
	oeanalysistest.Run(t, lockorder.Analyzer, filepath.Join("testdata", "src", "a"))
}
