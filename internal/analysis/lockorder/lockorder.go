// Package lockorder mechanizes the engine's lock hierarchy
// (DESIGN.md §7: shard.mu → ckptMu → arena.mu).
//
// Mutex fields opt into the hierarchy with a rank annotation on the field:
//
//	// oevet:lockrank shard.mu 10
//	mu sync.RWMutex
//
// Ranks are global integers; a goroutine may only acquire locks in strictly
// increasing rank order, so acquiring rank r while any lock of rank >= r is
// held is a violation (this flags both hierarchy inversions — e.g. taking a
// shard lock while ckptMu is held — and same-rank double acquisition, e.g.
// two shard locks at once).
//
// The check is interprocedural within a package, with annotated summaries
// at package boundaries:
//
//   - Lock/RLock and Unlock/RUnlock calls on annotated fields are tracked in
//     source order through the function body; `defer mu.Unlock()` keeps the
//     lock held until every subsequent statement has been checked.
//   - Calls to functions in the same package propagate the callee's
//     (transitively computed) acquire set to the call site.
//   - Cross-package edges come from `// oevet:acquires <name> <rank>`
//     annotations on the callee declaration, exported as facts when the
//     declaring package is analyzed (the driver analyzes packages in
//     dependency order).
//   - `// oevet:holds <name> <rank>` on a function seeds its entry held-set:
//     the function is documented to be called with that lock held (the
//     *Locked-suffix convention in internal/core).
//   - Entry held-sets are additionally INFERRED through helper calls: if
//     any in-package call site reaches a function with a lock held, the
//     function is re-checked with that lock seeded (to fixpoint), so
//     helpers no longer need a holds annotation just to be checked in
//     their callers' context. Reports cite the contributing caller.
//   - A holds annotation is also enforced at call sites (must-hold): calling
//     a holds-annotated function without the named lock in the (annotated
//     or inferred) held-set is reported, locally and across packages via
//     exported facts.
//   - Net lock effects propagate through helpers: a callee that returns
//     holding a ranked lock (a lockAll-style helper) adds it to the
//     caller's held-set after the call, and a callee that releases its
//     caller's lock removes it.
//
// The source-order walk is an under-approximation: a lock released on one
// branch is considered released for the remainder of the function. That
// trades a class of missed reports for zero false positives on the
// release-early-return idiom the codebase uses heavily.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags lock acquisitions that violate the ranked hierarchy.
var Analyzer = &oeanalysis.Analyzer{
	Name: "lockorder",
	Doc:  "check that ranked locks (oevet:lockrank) are acquired in strictly increasing rank order",
	Run:  run,
}

type lockUse struct {
	lock oeanalysis.Lock
	pos  ast.Node
}

// funcInfo is the per-function summary used for propagation.
type funcInfo struct {
	decl     *ast.FuncDecl
	obj      *types.Func
	holds    []oeanalysis.Lock
	acquires map[oeanalysis.Lock]bool // transitive set, grown to fixpoint
	callees  []*types.Func            // same-package static callees

	// entryHeld is the inferred entry held-set: the holds annotation plus
	// every lock held at any in-package call site (grown to fixpoint).
	entryHeld []oeanalysis.Lock
	// entryVia names the caller that contributed an inferred entry lock.
	entryVia map[oeanalysis.Lock]string
	// netAcq/netRel are the callee's net lock effects: locks it returns
	// holding beyond its entry set, and entry locks it releases.
	netAcq, netRel []oeanalysis.Lock
}

func run(pass *oeanalysis.Pass) error {
	info := pass.TypesInfo

	// Ranked fields of this package.
	ranks := map[*types.Var]oeanalysis.Lock{}
	var rankErr error
	oeanalysis.FieldDirectives(info, pass.Files, func(field *types.Var, dirs []oeanalysis.Directive) {
		for _, d := range dirs {
			if d.Verb != "lockrank" {
				continue
			}
			if len(d.Args) != 2 {
				rankErr = fmt.Errorf("lockorder: malformed oevet:lockrank on %s: want <name> <rank>", field.Name())
				return
			}
			r, err := strconv.Atoi(d.Args[1])
			if err != nil {
				rankErr = fmt.Errorf("lockorder: non-integer rank %q on %s", d.Args[1], field.Name())
				return
			}
			ranks[field] = oeanalysis.Lock{Name: d.Args[0], Rank: r}
		}
	})
	if rankErr != nil {
		return rankErr
	}

	// Per-function summaries.
	funcs := map[*types.Func]*funcInfo{}
	var order []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fn, obj: obj, acquires: map[oeanalysis.Lock]bool{}, entryVia: map[oeanalysis.Lock]string{}}
			for _, d := range oeanalysis.FuncDirectives(fn) {
				lk, err := parseLockArg(d)
				if err != nil {
					return err
				}
				switch d.Verb {
				case "holds":
					fi.holds = append(fi.holds, lk)
				case "acquires":
					fi.acquires[lk] = true
				}
			}
			fi.entryHeld = append([]oeanalysis.Lock(nil), fi.holds...)
			aliases := lockAliases(info, ranks, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lk, acquire, ok := rankedLockCall(info, ranks, aliases, call); ok {
					// Unlock-only appearances are not acquisitions: a helper
					// that releases a caller-held lock must not be summarized
					// as taking it.
					if acquire {
						fi.acquires[lk] = true
					}
					return true
				}
				callee := oeanalysis.CalleeFunc(info, call)
				if callee == nil {
					return true
				}
				if callee.Pkg() == pass.Pkg {
					fi.callees = append(fi.callees, callee)
				} else {
					for _, lk := range pass.Facts.Acquires[callee.FullName()] {
						fi.acquires[lk] = true
					}
				}
				return true
			})
			funcs[obj] = fi
			order = append(order, fi)
		}
	}

	// Transitive closure of acquire sets over the in-package call graph.
	for changed := true; changed; {
		changed = false
		for _, fi := range order {
			for _, callee := range fi.callees {
				cfi := funcs[callee]
				if cfi == nil {
					continue
				}
				for lk := range cfi.acquires {
					if !fi.acquires[lk] {
						fi.acquires[lk] = true
						changed = true
					}
				}
			}
		}
	}

	// Export facts so dependent packages see this package's acquire sets
	// (both annotated and computed).
	for _, fi := range order {
		if len(fi.acquires) == 0 {
			continue
		}
		var lks []oeanalysis.Lock
		for lk := range fi.acquires {
			lks = append(lks, lk)
		}
		sortLocks(lks)
		pass.Facts.Acquires[fi.obj.FullName()] = lks
	}

	// Export annotated holds contracts so cross-package callers get the
	// must-hold check. Only annotations are exported — inferred entry sets
	// reflect how THIS package calls the function, not a contract.
	for _, fi := range order {
		if len(fi.holds) == 0 {
			continue
		}
		lks := append([]oeanalysis.Lock(nil), fi.holds...)
		sortLocks(lks)
		pass.Facts.Holds[fi.obj.FullName()] = lks
	}

	// Interprocedural fixpoint: walk every body, propagating (a) locks held
	// at call sites into the callee's inferred entry set, and (b) each
	// callee's net lock effect (locks still held at its exits beyond its
	// entry set, and entry locks it released) back into callers. Iteration
	// is bounded as a backstop against pathological oscillation; monotone
	// entry growth converges long before the bound on real code.
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, fi := range order {
			exit, sites := walkFunc(pass, info, ranks, funcs, fi, false)
			na := lockSetDiff(exit, fi.entryHeld)
			nr := lockSetDiff(fi.entryHeld, exit)
			if !lockSliceEq(na, fi.netAcq) {
				fi.netAcq = na
				changed = true
			}
			if !lockSliceEq(nr, fi.netRel) {
				fi.netRel = nr
				changed = true
			}
			for callee, hl := range sites {
				cfi := funcs[callee]
				if cfi == nil {
					continue
				}
				for _, lk := range hl {
					if containsLock(cfi.entryHeld, lk) {
						continue
					}
					cfi.entryHeld = append(cfi.entryHeld, lk)
					cfi.entryVia[lk] = fi.obj.Name()
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Report pass: re-walk each body with the converged entry sets and net
	// effects, this time emitting diagnostics.
	for _, fi := range order {
		walkFunc(pass, info, ranks, funcs, fi, true)
	}
	return nil
}

func parseLockArg(d oeanalysis.Directive) (oeanalysis.Lock, error) {
	if d.Verb != "holds" && d.Verb != "acquires" {
		return oeanalysis.Lock{}, nil
	}
	if len(d.Args) != 2 {
		return oeanalysis.Lock{}, fmt.Errorf("lockorder: malformed oevet:%s: want <name> <rank>", d.Verb)
	}
	r, err := strconv.Atoi(d.Args[1])
	if err != nil {
		return oeanalysis.Lock{}, fmt.Errorf("lockorder: non-integer rank %q in oevet:%s", d.Args[1], d.Verb)
	}
	return oeanalysis.Lock{Name: d.Args[0], Rank: r}, nil
}

// lockAliases finds local variables bound to the address of a ranked field
// (`stripe := &s.stripes[i]`), so locking through the pointer is tracked.
func lockAliases(info *types.Info, ranks map[*types.Var]oeanalysis.Lock, body *ast.BlockStmt) map[*types.Var]oeanalysis.Lock {
	aliases := map[*types.Var]oeanalysis.Lock{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			un, ok := ast.Unparen(asg.Rhs[i]).(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			field := oeanalysis.FieldVar(info, un.X)
			if field == nil {
				continue
			}
			lk, ranked := ranks[field]
			if !ranked {
				continue
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				aliases[v] = lk
			} else if v, ok := info.Uses[id].(*types.Var); ok {
				aliases[v] = lk
			}
		}
		return true
	})
	return aliases
}

// rankedLockCall reports whether call is mu.Lock()/mu.RLock() (acquire=true)
// or mu.Unlock()/mu.RUnlock() (acquire=false) on a rank-annotated field (or
// a local alias of one).
func rankedLockCall(info *types.Info, ranks map[*types.Var]oeanalysis.Lock, aliases map[*types.Var]oeanalysis.Lock, call *ast.CallExpr) (lk oeanalysis.Lock, acquire bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lk, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lk, false, false
	}
	if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
		if v, isVar := info.Uses[id].(*types.Var); isVar && !v.IsField() {
			lk, ok = aliases[v]
			return lk, acquire, ok
		}
	}
	field := oeanalysis.FieldVar(info, sel.X)
	if field == nil {
		return lk, false, false
	}
	lk, ok = ranks[field]
	return lk, acquire, ok
}

// walkFunc walks fi's body in source order with the held-set seeded from the
// (annotated + inferred) entry set, applying callee net lock effects at call
// sites. It returns the held-set at exit (with deferred unlocks discharged)
// and, per same-package callee, the union of held-sets observed across its
// call sites — the inputs the fixpoint in run propagates. Diagnostics are
// emitted only when report is true, on the final converged pass.
func walkFunc(pass *oeanalysis.Pass, info *types.Info, ranks map[*types.Var]oeanalysis.Lock, funcs map[*types.Func]*funcInfo, fi *funcInfo, report bool) (exit []oeanalysis.Lock, sites map[*types.Func][]oeanalysis.Lock) {
	held := append([]oeanalysis.Lock(nil), fi.entryHeld...)
	var deferredRel []oeanalysis.Lock
	sites = map[*types.Func][]oeanalysis.Lock{}

	emit := func(n ast.Node, acq oeanalysis.Lock, via string) {
		if !report {
			return
		}
		worst := held[0]
		for _, h := range held {
			if h.Rank > worst.Rank {
				worst = h
			}
		}
		msg := fmt.Sprintf("acquires %s (rank %d) while holding %s (rank %d); the hierarchy requires strictly increasing ranks", acq.Name, acq.Rank, worst.Name, worst.Rank)
		if via != "" {
			msg = fmt.Sprintf("call to %s may acquire %s (rank %d) while holding %s (rank %d); the hierarchy requires strictly increasing ranks", via, acq.Name, acq.Rank, worst.Name, worst.Rank)
		}
		if caller := fi.entryVia[worst]; caller != "" {
			msg += fmt.Sprintf(" (held at entry via caller %s)", caller)
		}
		pass.Reportf(n.Pos(), "%s", msg)
	}

	checkAcquire := func(n ast.Node, acq oeanalysis.Lock, via string) {
		for _, h := range held {
			if acq.Rank <= h.Rank {
				emit(n, acq, via)
				return
			}
		}
	}

	checkMustHold := func(n ast.Node, callee string, holds []oeanalysis.Lock) {
		if !report {
			return
		}
		for _, lk := range holds {
			if !containsLock(held, lk) {
				pass.Reportf(n.Pos(), "call to %s requires %s (rank %d) held (oevet:holds), but it is not held here", callee, lk.Name, lk.Rank)
			}
		}
	}

	aliases := lockAliases(info, ranks, fi.decl.Body)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if d, isDefer := n.(*ast.DeferStmt); isDefer {
			// A deferred Unlock releases only at return, after every
			// statement the walk still has to check — so the lock stays in
			// the held-set and is discharged from the exit set instead.
			// Deferred acquisitions and deferred helper calls are not
			// modeled.
			if lk, acquire, ok := rankedLockCall(info, ranks, aliases, d.Call); ok && !acquire {
				deferredRel = append(deferredRel, lk)
			}
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lk, acquire, ok := rankedLockCall(info, ranks, aliases, call); ok {
			if acquire {
				checkAcquire(n, lk, "")
				held = append(held, lk)
			} else {
				held = removeOnce(held, lk)
			}
			return true
		}
		callee := oeanalysis.CalleeFunc(info, call)
		if callee == nil {
			return true
		}
		if cfi := funcs[callee]; cfi != nil {
			for _, lk := range held {
				if !containsLock(sites[callee], lk) {
					sites[callee] = append(sites[callee], lk)
				}
			}
			var acquired []oeanalysis.Lock
			for lk := range cfi.acquires {
				acquired = append(acquired, lk)
			}
			sortLocks(acquired)
			for _, lk := range acquired {
				checkAcquire(n, lk, callee.Name())
			}
			checkMustHold(n, callee.Name(), cfi.holds)
			// Thread the callee's net effect: a lockAll-style helper leaves
			// its lock held here; an unlockAll-style helper releases ours.
			for _, lk := range cfi.netRel {
				held = removeOnce(held, lk)
			}
			held = append(held, cfi.netAcq...)
		} else if callee.Pkg() != pass.Pkg {
			for _, lk := range pass.Facts.Acquires[callee.FullName()] {
				checkAcquire(n, lk, callee.Name())
			}
			checkMustHold(n, callee.Name(), pass.Facts.Holds[callee.FullName()])
		}
		return true
	})

	for _, lk := range deferredRel {
		held = removeOnce(held, lk)
	}
	return held, sites
}

func containsLock(lks []oeanalysis.Lock, lk oeanalysis.Lock) bool {
	for _, h := range lks {
		if h == lk {
			return true
		}
	}
	return false
}

// removeOnce removes the last instance of lk from held, in place.
func removeOnce(held []oeanalysis.Lock, lk oeanalysis.Lock) []oeanalysis.Lock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == lk {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

// lockSetDiff returns the multiset difference a − b, sorted.
func lockSetDiff(a, b []oeanalysis.Lock) []oeanalysis.Lock {
	cnt := map[oeanalysis.Lock]int{}
	for _, lk := range b {
		cnt[lk]++
	}
	var out []oeanalysis.Lock
	for _, lk := range a {
		if cnt[lk] > 0 {
			cnt[lk]--
			continue
		}
		out = append(out, lk)
	}
	sortLocks(out)
	return out
}

func lockSliceEq(a, b []oeanalysis.Lock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortLocks(lks []oeanalysis.Lock) {
	for i := 1; i < len(lks); i++ {
		for j := i; j > 0 && (lks[j].Rank < lks[j-1].Rank || (lks[j].Rank == lks[j-1].Rank && lks[j].Name < lks[j-1].Name)); j-- {
			lks[j], lks[j-1] = lks[j-1], lks[j]
		}
	}
}
