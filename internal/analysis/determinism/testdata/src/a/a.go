// Test corpus for the determinism analyzer.
//
//oevet:deterministic-package
package a

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `call to time\.Now in a deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time\.Since in a deterministic package`
}

func globalRand() int {
	return rand.Intn(10) // want `call to global rand\.Intn in a deterministic package`
}

func seededRand(seed int64) int { // ok: explicit seeded generator
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func mapOrderLeaks(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order can reach the result`
		out = append(out, k+"!")
	}
	return out
}

func sortedKeys(m map[string]int) []string { // ok: sorted-keys idiom
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func maxMerge(dst, src map[string]uint64) { // ok: order-independent merge
	for k, v := range src {
		if prev, ok := dst[k]; !ok || v > prev {
			dst[k] = v
		}
	}
}

func countEntries(m map[string]int) int { // ok: integer accumulation
	n := 0
	for range m {
		n++
	}
	return n
}

func intSum(m map[string]int64) int64 { // ok: integer += commutes exactly
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}

func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order can reach the result`
		s += v
	}
	return s
}

func callInBody(m map[string]int, f func(int)) {
	for _, v := range m { // want `map iteration order can reach the result`
		f(v)
	}
}

func notAMap(xs []int) int { // ok: slice ranges are ordered
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}
