// Package determinism mechanizes the bit-reproducibility contract of the
// simulation packages: every Table/Figure reproduction must produce the
// same bytes on every run, so packages marked
//
//	//oevet:deterministic-package
//
// (internal/sim, internal/core, internal/experiments) must not consult the
// wall clock, draw from the process-global math/rand source, or let map
// iteration order leak into their results.
//
// Three checks:
//
//   - wall clock: calls to time.Now / time.Since / time.Until are reported
//     (simulated time lives in internal/simclock);
//   - global rand: calls to package-level math/rand functions (rand.Intn,
//     rand.Float64, rand.Shuffle, ...) are reported; rand.New(rand.NewSource
//     (seed)) and methods on the resulting *rand.Rand are allowed;
//   - map iteration: `for ... range m` over a map is reported unless the
//     loop matches a provably order-independent shape:
//     1. the sorted-keys idiom — the body is a single `s = append(s, k)`
//     and s is passed to a sort/slices sorting call later in the same
//     function; or
//     2. every statement is order-independent: fresh `:=` bindings,
//     writes into another map (`m2[k] = v`), integer accumulation
//     (`n++`, `n += e`), `delete`, `continue`, and if-statements (with
//     call-free conditions) recursively composed of the same shapes —
//     the max-merge loops in internal/core/recover.go are the model.
//
// Anything else needs an `//oevet:ignore <reason>` stating why order cannot
// reach the output.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags nondeterminism sources in marked packages.
var Analyzer = &oeanalysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clock, global math/rand and map-order dependent loops in //oevet:deterministic-package packages",
	Run:  run,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the package-level math/rand functions that build
// explicitly seeded generators rather than using the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true}

func run(pass *oeanalysis.Pass) error {
	if !oeanalysis.PackageMarked(pass.Files, "deterministic-package") {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, info, fn.Body)
		}
	}
	return nil
}

func checkFunc(pass *oeanalysis.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, info, n)
		case *ast.RangeStmt:
			checkRange(pass, info, n, body)
		}
		return true
	})
}

func checkCall(pass *oeanalysis.Pass, info *types.Info, call *ast.CallExpr) {
	fn := oeanalysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	pkgLevel := sig != nil && sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		if pkgLevel && wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "call to time.%s in a deterministic package; use the simulated clock (internal/simclock)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if pkgLevel && !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "call to global rand.%s in a deterministic package; use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Name())
		}
	}
}

func checkRange(pass *oeanalysis.Pass, info *types.Info, rng *ast.RangeStmt, scope *ast.BlockStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if sortedKeysIdiom(info, rng, scope) {
		return
	}
	if stmtsOrderIndependent(info, rng.Body.List) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order can reach the result; collect and sort the keys, restructure into an order-independent reduction, or justify with //oevet:ignore")
}

// sortedKeysIdiom recognizes `for k := range m { s = append(s, k) }` with a
// later sort of s in the same function.
func sortedKeysIdiom(info *types.Info, rng *ast.RangeStmt, scope *ast.BlockStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || objOf(info, arg0) == nil || objOf(info, arg0) != objOf(info, lhs) {
		return false
	}
	target := objOf(info, lhs)
	// A sort call anywhere in the function that mentions the slice.
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		fn := oeanalysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && objOf(info, id) == target {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// stmtsOrderIndependent reports whether executing the statements for the
// map's elements in any order yields the same final state.
func stmtsOrderIndependent(info *types.Info, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !stmtOrderIndependent(info, s) {
			return false
		}
	}
	return true
}

func stmtOrderIndependent(info *types.Info, s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		if st.Tok == token.DEFINE {
			return true // fresh per-iteration bindings
		}
		switch st.Tok {
		case token.ASSIGN:
			// Plain assignment is only commutative when it writes into a
			// map (per-key slots; last-writer races are a different bug).
			for _, lhs := range st.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					return false
				}
				tv, ok := info.Types[idx.X]
				if !ok {
					return false
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return false
				}
			}
			return true
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Integer accumulation commutes; float accumulation does not
			// (bit-level associativity), so only integer LHS qualifies.
			for _, lhs := range st.Lhs {
				if !isIntegerExpr(info, lhs) {
					return false
				}
			}
			return true
		}
		return false
	case *ast.IncDecStmt:
		return isIntegerExpr(info, st.X)
	case *ast.ExprStmt:
		// delete(m, k) is order-independent; any other call is opaque.
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "delete" && info.Uses[id] != nil && info.Uses[id].Pkg() == nil
	case *ast.IfStmt:
		if st.Init != nil && !stmtOrderIndependent(info, st.Init) {
			return false
		}
		if hasCall(st.Cond) {
			return false
		}
		if !stmtsOrderIndependent(info, st.Body.List) {
			return false
		}
		if st.Else != nil {
			return stmtOrderIndependent(info, st.Else)
		}
		return true
	case *ast.BlockStmt:
		return stmtsOrderIndependent(info, st.List)
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE
	default:
		return false
	}
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
