package determinism_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/determinism"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestDeterminism(t *testing.T) {
	oeanalysistest.Run(t, determinism.Analyzer, filepath.Join("testdata", "src", "a"))
}
