// Test corpus for the atomicstat analyzer.
package a

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	plain  int64
}

func (s *stats) recordHit() { // ok: atomic access
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) loadHits() int64 { // ok: atomic access
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) directRead() int64 {
	return s.hits // want `field hits is accessed atomically`
}

func (s *stats) directWrite() {
	s.hits = 0 // want `field hits is accessed atomically`
}

func (s *stats) recordMiss()       { atomic.AddInt64(&s.misses, 1) }
func (s *stats) swapMisses() int64 { return atomic.SwapInt64(&s.misses, 0) } // ok

func (s *stats) plainOnly() int64 { // ok: plain is never touched atomically
	s.plain++
	return s.plain
}

type wrapped struct {
	n atomic.Int64 // safe-by-construction wrapper type
}

func (w *wrapped) bump() { w.n.Add(1) } // ok: method on atomic.Int64

func (w *wrapped) read() int64 { return w.n.Load() } // ok

// Registry-counter shape (internal/obs): record and snapshot go through
// sync/atomic, so a plain-assignment reset is exactly the mixed access the
// analyzer exists to catch — a racing reset can tear a concurrent record.
type registryCounter struct {
	count int64
	sum   int64
}

func (c *registryCounter) record(v int64) { // ok: atomic record path
	atomic.AddInt64(&c.count, 1)
	atomic.AddInt64(&c.sum, v)
}

func (c *registryCounter) snapshot() (n, sum int64) { // ok: atomic snapshot
	return atomic.LoadInt64(&c.count), atomic.LoadInt64(&c.sum)
}

func (c *registryCounter) reset() {
	c.count = 0 // want `field count is accessed atomically`
	c.sum = 0   // want `field sum is accessed atomically`
}

// Wrapper-typed registry metrics (the shape internal/obs actually uses) are
// safe by construction: every access is a method on atomic.Int64.
type registryGauge struct {
	v atomic.Int64
}

func (g *registryGauge) set(v int64)  { g.v.Store(v) }
func (g *registryGauge) value() int64 { return g.v.Load() }
func (g *registryGauge) reset()       { g.v.Store(0) } // ok: wrapper type
