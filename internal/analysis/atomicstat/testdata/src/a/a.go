// Test corpus for the atomicstat analyzer.
package a

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	plain  int64
}

func (s *stats) recordHit() { // ok: atomic access
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) loadHits() int64 { // ok: atomic access
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) directRead() int64 {
	return s.hits // want `field hits is accessed atomically`
}

func (s *stats) directWrite() {
	s.hits = 0 // want `field hits is accessed atomically`
}

func (s *stats) recordMiss()       { atomic.AddInt64(&s.misses, 1) }
func (s *stats) swapMisses() int64 { return atomic.SwapInt64(&s.misses, 0) } // ok

func (s *stats) plainOnly() int64 { // ok: plain is never touched atomically
	s.plain++
	return s.plain
}

type wrapped struct {
	n atomic.Int64 // safe-by-construction wrapper type
}

func (w *wrapped) bump() { w.n.Add(1) } // ok: method on atomic.Int64

func (w *wrapped) read() int64 { return w.n.Load() } // ok
