package atomicstat_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/atomicstat"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestAtomicStat(t *testing.T) {
	oeanalysistest.Run(t, atomicstat.Analyzer, filepath.Join("testdata", "src", "a"))
}
