// Package atomicstat mechanizes the all-or-nothing rule for atomic
// counters: a struct field that is accessed through sync/atomic anywhere
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint64(&s.n), ...) must be accessed
// through sync/atomic everywhere. A single plain read or write next to
// atomic updates is a data race and — the class of bug behind PR 1's
// double-counted PMemReads — silently corrupts statistics under load.
//
// Fields of the atomic.Int64-style wrapper types are safe by construction
// and are not this analyzer's concern; it targets plain integer fields
// whose address escapes into sync/atomic calls. Mixed access that is in
// fact safe (e.g. a constructor writing before the object is published)
// must say so with //oevet:ignore.
package atomicstat

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags fields accessed both atomically and directly.
var Analyzer = &oeanalysis.Analyzer{
	Name: "atomicstat",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed via sync/atomic everywhere",
	Run:  run,
}

var atomicVerbs = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Methods on atomic.Int64 et al. are type-safe; only the pointer-taking
	// package-level functions create the mixed-access hazard.
	if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return false
	}
	for _, v := range atomicVerbs {
		if strings.HasPrefix(fn.Name(), v) {
			return true
		}
	}
	return false
}

func run(pass *oeanalysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: fields whose address is passed to a sync/atomic function, and
	// the identifier nodes making up those sanctioned accesses.
	atomicFields := map[*types.Var][]ast.Node{}
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFunc(oeanalysis.CalleeFunc(info, call)) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				field := oeanalysis.FieldVar(info, un.X)
				if field == nil {
					continue
				}
				atomicFields[field] = append(atomicFields[field], un)
				// Mark every node of the operand as sanctioned so pass 2
				// does not re-flag this very access.
				ast.Inspect(un, func(x ast.Node) bool {
					sanctioned[x] = true
					return true
				})
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other access to those fields is a violation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sanctioned[n] {
				return true
			}
			var field *types.Var
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[e] {
					return true
				}
				if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
					field, _ = sel.Obj().(*types.Var)
				}
			case *ast.Ident:
				// Unqualified field access inside methods via embedding is
				// not used in this codebase; selector form covers it.
				return true
			}
			if field == nil {
				return true
			}
			uses, ok := atomicFields[field]
			if !ok {
				return true
			}
			first := pass.Fset.Position(uses[0].Pos())
			pass.Reportf(n.Pos(), "field %s is accessed atomically (e.g. %s) but directly here; every access must go through sync/atomic", fieldName(field), fmt.Sprintf("%s:%d", first.Filename, first.Line))
			return true
		})
	}
	return nil
}

func fieldName(v *types.Var) string {
	return v.Name()
}
