// Test corpus for the epochfence analyzer: a miniature node with a
// recovery epoch, scrub losses that must fence it, and the PR 5 bug shape
// (a TryLock miss dropping the fence).
package a

import "sync"

type node struct {
	mu      sync.Mutex
	epoch   uint64
	pending bool
	eng     engine
}

type engine interface {
	// oevet:fence-need
	Scrub() int
	Keys() int
}

// oevet:fence-apply
func (n *node) bumpEpoch() {
	n.pending = false
	n.epoch++
}

// oevet:fence-park
func (n *node) parkFence() {
	n.pending = true
}

// oevet:fence-need
func (n *node) quarantine(k int64) {}

func (n *node) healOK(k int64) { // ok: loss fenced before return
	n.quarantine(k)
	n.bumpEpoch()
}

func (n *node) healDropped(k int64) {
	n.quarantine(k)
} // want `returns while the state discarded at .* is unfenced`

func (n *node) healEarlyReturn(k int64, busy bool) {
	n.quarantine(k)
	if busy {
		return // want `returns while the state discarded at .* is unfenced`
	}
	n.bumpEpoch()
}

func (n *node) healParked(k int64) { // ok: parking discharges; the maintainer applies later
	n.quarantine(k)
	n.parkFence()
}

func (n *node) healDeferred(k int64) { // ok: the deferred apply runs at return
	defer n.bumpEpoch()
	n.quarantine(k)
}

// oevet:fence-need
func (n *node) healChained(k int64) { // ok: fence-need passes the obligation to callers
	n.quarantine(k)
}

func (n *node) callsChain(k int64) {
	n.healChained(k)
	n.bumpEpoch()
}

// integrityCallback is the PR 5 pending-fence bug shape: the TryLock miss
// path returns without parking, so the fence is dropped on the floor.
//
// oevet:fence-obligated
func (n *node) integrityCallback() {
	if !n.mu.TryLock() {
		return // want `returns without discharging the entry fence obligation`
	}
	n.bumpEpoch()
	n.mu.Unlock()
}

// oevet:fence-obligated
func (n *node) integrityCallbackFixed() { // ok: park before the lock probe
	n.parkFence()
	if !n.mu.TryLock() {
		return
	}
	n.bumpEpoch()
	n.mu.Unlock()
}

func (n *node) scrubRPC() int { // obligation arrives through the interface annotation
	rep := n.eng.Scrub()
	if rep > 0 {
		n.bumpEpoch() // a discharge on any branch covers the remainder (source-order walk)
	}
	return rep
}

func (n *node) scrubDropped() int {
	return n.eng.Scrub() // want `returns while the state discarded at .* is unfenced`
}

func (n *node) freshStart() {
	n.quarantine(1)
	//oevet:fence-ok boot-time quarantine precedes any client handle; epoch 0 is the fence
	return
}

func (n *node) errorPathStillFences(k int64, err error) error {
	n.quarantine(k)
	if err != nil {
		return err // want `returns while the state discarded at .* is unfenced`
	}
	n.bumpEpoch()
	return nil
}
