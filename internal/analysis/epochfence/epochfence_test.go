package epochfence_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/epochfence"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestEpochfence(t *testing.T) {
	oeanalysistest.Run(t, epochfence.Analyzer, filepath.Join("testdata", "src", "a"))
}
