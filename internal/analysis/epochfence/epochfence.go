// Package epochfence mechanizes the recovery-epoch fencing invariant
// (DESIGN.md §11): every path that discards durable or DRAM state — a
// quarantined record, a fenced key, a restore that lost coverage, a
// rollback — must reach an epoch bump (or park the obligation for the
// maintainer to apply) before returning. This is the exact bug shape of
// the PR 5 pending-fence fix, where a TryLock miss dropped the fence on
// the floor and stale clients kept their epoch.
//
// The check is annotation-driven, walked in statement order like
// pmemdurability:
//
//	// oevet:fence-need       calling this discards state; the caller owes
//	                          a fence before returning. A fence-need body
//	                          is itself exempt — it passes the obligation
//	                          up, like pmem-write passes the flush.
//	// oevet:fence-apply      applies the fence (bumps the recovery epoch).
//	// oevet:fence-park       parks the obligation (pending-fence flag,
//	                          scrub-loss accumulator) for a later apply.
//	// oevet:fence-obligated  the function is entered owing a fence (an
//	                          integrity callback); every path must
//	                          discharge it.
//
// Unlike the durability check, error-path returns are NOT exempt: state
// already lost must fence the epoch even when the surrounding operation
// fails, or a recovering client trusts handles the loss invalidated.
//
// Classes cross packages via facts, and may be declared on interface
// methods (the engine is dispatched through psengine.Engine), so callers
// that only see the interface still inherit the obligation. False
// positives are suppressed in place with `//oevet:fence-ok <reason>`.
package epochfence

import (
	"go/ast"
	"go/token"
	"go/types"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags state-discarding paths that can return without fencing.
var Analyzer = &oeanalysis.Analyzer{
	Name: "epochfence",
	Doc:  "check that every state-discarding path reaches an epoch bump or parks the fence before returning (oevet:fence-* annotations)",
	Run:  run,
}

func run(pass *oeanalysis.Pass) error {
	info := pass.TypesInfo
	supp := oeanalysis.NewSuppressor(pass, "fence-ok")

	classes := map[*types.Func]string{}
	obligated := map[*types.Func]bool{}
	record := func(obj *types.Func, dirs []oeanalysis.Directive) {
		for _, d := range dirs {
			switch d.Verb {
			case "fence-need":
				classes[obj] = "need"
			case "fence-apply":
				classes[obj] = "apply"
			case "fence-park":
				classes[obj] = "park"
			case "fence-obligated":
				obligated[obj] = true
			}
		}
		if c, ok := classes[obj]; ok {
			pass.Facts.FenceClass[obj.FullName()] = c
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			record(obj, oeanalysis.FuncDirectives(fn))
		}
	}
	oeanalysis.InterfaceMethodDirectives(info, pass.Files, record)

	var lits []*ast.FuncLit
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			c := &checker{
				pass:     pass,
				info:     info,
				supp:     supp,
				classes:  classes,
				selfNeed: obj != nil && classes[obj] == "need",
			}
			if obj != nil && obligated[obj] {
				c.pending = fn.Name
				c.entry = true
			}
			c.block(fn.Body)
			if !lastIsReturn(fn.Body) {
				c.ret(fn.Body.Rbrace)
			}
			lits = append(lits, c.lits...)
		}
	}
	// Function literals run on their own timeline and carry their own
	// obligations (an integrity callback registered as a literal must
	// fence inside itself).
	for len(lits) > 0 {
		lit := lits[0]
		lits = lits[1:]
		c := &checker{pass: pass, info: info, supp: supp, classes: classes}
		c.block(lit.Body)
		if !lastIsReturn(lit.Body) {
			c.ret(lit.Body.Rbrace)
		}
		lits = append(lits, c.lits...)
	}
	supp.Finish()
	return nil
}

func lastIsReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

type checker struct {
	pass    *oeanalysis.Pass
	info    *types.Info
	supp    *oeanalysis.Suppressor
	classes map[*types.Func]string

	selfNeed bool
	// pending is the node that created the open obligation (a fence-need
	// call, or the function name for an entry obligation); nil when
	// discharged.
	pending ast.Node
	// entry marks the pending obligation as seeded by oevet:fence-obligated.
	entry             bool
	deferredDischarge bool
	lits              []*ast.FuncLit
}

func (c *checker) classOf(call *ast.CallExpr) string {
	callee := oeanalysis.CalleeFunc(c.info, call)
	if callee == nil {
		return ""
	}
	if cl, ok := c.classes[callee]; ok {
		return cl
	}
	return c.pass.Facts.FenceClass[callee.FullName()]
}

func (c *checker) exprs(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			c.lits = append(c.lits, lit)
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch c.classOf(call) {
		case "need":
			c.pending, c.entry = call, false
		case "apply", "park":
			c.pending = nil
		}
		return true
	})
}

func (c *checker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.exprs(r)
		}
		c.ret(st.Pos())
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.exprs(st.Cond)
		c.block(st.Body)
		if st.Else != nil {
			c.stmt(st.Else)
		}
	case *ast.BlockStmt:
		c.block(st)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.exprs(st.Cond)
		c.block(st.Body)
		if st.Post != nil {
			c.stmt(st.Post)
		}
	case *ast.RangeStmt:
		c.exprs(st.X)
		c.block(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.exprs(st.Tag)
		c.caseBodies(st.Body)
	case *ast.TypeSwitchStmt:
		c.caseBodies(st.Body)
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				for _, bs := range cl.Body {
					c.stmt(bs)
				}
			}
		}
	case *ast.DeferStmt:
		switch c.classOf(st.Call) {
		case "apply", "park":
			c.deferredDischarge = true
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.lits = append(c.lits, lit)
		}
	case *ast.GoStmt:
		// A goroutine's fence applies on its own timeline; it does not
		// discharge this function's obligation, and its body is checked
		// independently when it is a literal.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.lits = append(c.lits, lit)
		}
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	default:
		c.exprs(s)
	}
}

func (c *checker) caseBodies(body *ast.BlockStmt) {
	for _, cc := range body.List {
		if cl, ok := cc.(*ast.CaseClause); ok {
			for _, e := range cl.List {
				c.exprs(e)
			}
			for _, bs := range cl.Body {
				c.stmt(bs)
			}
		}
	}
}

// ret enforces the fence obligation at a return (or fall-off-the-end).
// Error paths are deliberately NOT exempt: lost state fences even when the
// surrounding operation fails.
func (c *checker) ret(pos token.Pos) {
	if c.pending == nil || c.deferredDischarge || c.selfNeed {
		return
	}
	if c.entry {
		c.supp.Reportf(pos, "returns without discharging the entry fence obligation (oevet:fence-obligated); every path must bump the epoch (oevet:fence-apply) or park the fence (oevet:fence-park)")
		return
	}
	wp := c.pass.Fset.Position(c.pending.Pos())
	c.supp.Reportf(pos, "returns while the state discarded at %s:%d is unfenced; bump the epoch (oevet:fence-apply), park the fence (oevet:fence-park), or annotate this function oevet:fence-need to pass the obligation to callers", wp.Filename, wp.Line)
}
