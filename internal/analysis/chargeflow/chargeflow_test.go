package chargeflow_test

import (
	"path/filepath"
	"testing"

	"openembedding/internal/analysis/chargeflow"
	"openembedding/internal/analysis/oeanalysistest"
)

func TestChargeflow(t *testing.T) {
	oeanalysistest.Run(t, chargeflow.Analyzer, filepath.Join("testdata", "src", "a"))
}
