// Package chargeflow mechanizes the simulated-time charge-accounting
// invariants (DESIGN.md §4, §12): every read/write that models device work
// must reach a device.Timed charge exactly once, with the right cost class,
// and the batched hot path must never pay stream costs.
//
// The analyzer computes, per function, an interval [min,max] of how many
// times each cost class (read, write, stream-read, stream-write) can be
// charged on a path through the body. Direct calls to Timed's Charge*
// methods count one charge; calls to declared functions add the callee's
// computed interval (same-package bodies are summarized on demand;
// cross-package callees resolve through facts exported when their package
// was analyzed). Branches join intervals, loops widen the maximum, and
// returns under an `err != nil` guard are tracked as error paths.
//
// Contracts come from annotations:
//
//	// oevet:charge <class>   the function charges exactly once with
//	                          <class> on every non-error path: charging
//	                          zero times, possibly twice (the PR 1
//	                          double-count bug class), or with another
//	                          class is reported;
//	// oevet:charge-free      the function must never reach a charge.
//
// Two unconditional rules need no annotation:
//
//   - a ChargeRead/ChargeWrite call whose argument is a product of two
//     non-constant factors is reported: that shape bills cost(count×n) for
//     one op, where the run-batched invariant requires count ops of
//     cost(n) via ChargeReadN/ChargeWriteN (op count preserved);
//   - inside the oevet:hotpath closure, any path that can charge a stream
//     class is reported: stream costs amortize slot adjacency that only
//     the maintainer's schedule guarantees, so they must never move
//     simulated time on the run path (scrub, scan and checkpoint I/O own
//     them).
//
// False positives are suppressed in place with `//oevet:charge-ok <reason>`
// (reason mandatory, unused directives reported).
package chargeflow

import (
	"go/ast"
	"go/types"
	"strings"

	"openembedding/internal/analysis/oeanalysis"
)

// Analyzer flags charge-accounting violations (zero/double/wrong-class
// charges, cost(count×n) shapes, stream costs on the hot path).
var Analyzer = &oeanalysis.Analyzer{
	Name: "chargeflow",
	Doc:  "check that device read/write sites charge the simulated-time meter exactly once with the right cost class (oevet:charge annotations)",
	Run:  run,
}

// Cost classes, indexed into sums.
const (
	clsRead = iota
	clsWrite
	clsStreamRead
	clsStreamWrite
	numClasses
)

var clsNames = [numClasses]string{"read", "write", "stream-read", "stream-write"}

// chargeMethods maps device.Timed method names to their cost class.
var chargeMethods = map[string]int{
	"ChargeRead":        clsRead,
	"ChargeReadN":       clsRead,
	"ChargeWrite":       clsWrite,
	"ChargeWriteN":      clsWrite,
	"ChargeStreamRead":  clsStreamRead,
	"ChargeStreamWrite": clsStreamWrite,
}

// sum is a per-class interval of charge counts; counts saturate at 2
// ("two or more").
type sum [numClasses]oeanalysis.ChargeBound

func sat(n int) int {
	if n > 2 {
		return 2
	}
	return n
}

func addSum(a, b sum) sum {
	var out sum
	for i := range out {
		out[i] = oeanalysis.ChargeBound{Min: sat(a[i].Min + b[i].Min), Max: sat(a[i].Max + b[i].Max)}
	}
	return out
}

func joinSum(a, b sum) sum {
	var out sum
	for i := range out {
		out[i].Min = min(a[i].Min, b[i].Min)
		out[i].Max = max(a[i].Max, b[i].Max)
	}
	return out
}

func unit(cls int) sum {
	var out sum
	out[cls] = oeanalysis.ChargeBound{Min: 1, Max: 1}
	return out
}

func (s sum) zero() bool {
	for _, b := range s {
		if b.Max != 0 {
			return false
		}
	}
	return true
}

func toSummary(s sum) oeanalysis.ChargeSummary {
	return oeanalysis.ChargeSummary{
		Read:        s[clsRead],
		Write:       s[clsWrite],
		StreamRead:  s[clsStreamRead],
		StreamWrite: s[clsStreamWrite],
	}
}

func fromSummary(cs oeanalysis.ChargeSummary) sum {
	return sum{cs.Read, cs.Write, cs.StreamRead, cs.StreamWrite}
}

// funcSummary is the computed charge behavior of one function body.
type funcSummary struct {
	all sum // interval over every path
	// nonErr is the interval over paths that do not return under an
	// `err != nil` guard; contracts are enforced against its Min.
	nonErr    sum
	hasNonErr bool
}

// effective is the interval a call site inherits: the success-path minimum
// (a callee's early error return does not lower the caller's guaranteed
// count, because the caller propagates the error) with the any-path maximum.
func (fs funcSummary) effective() sum {
	if !fs.hasNonErr {
		return fs.all
	}
	var out sum
	for i := range out {
		out[i] = oeanalysis.ChargeBound{Min: fs.nonErr[i].Min, Max: fs.all[i].Max}
	}
	return out
}

type state struct {
	pass       *oeanalysis.Pass
	info       *types.Info
	decls      map[*types.Func]*ast.FuncDecl
	memo       map[*types.Func]funcSummary
	inProgress map[*types.Func]bool
}

func run(pass *oeanalysis.Pass) error {
	info := pass.TypesInfo
	supp := oeanalysis.NewSuppressor(pass, "charge-ok")
	st := &state{
		pass:       pass,
		info:       info,
		decls:      map[*types.Func]*ast.FuncDecl{},
		memo:       map[*types.Func]funcSummary{},
		inProgress: map[*types.Func]bool{},
	}

	type contract struct {
		decl *ast.FuncDecl
		cls  int  // -1 for charge-free
		bad  bool // malformed annotation, already reported
	}
	contracts := map[*types.Func]contract{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			st.decls[obj] = fn
			for _, d := range oeanalysis.FuncDirectives(fn) {
				switch d.Verb {
				case "charge":
					cls, ok := classIndex(d.Args)
					if !ok {
						pass.Reportf(fn.Pos(), "malformed oevet:charge: want one class out of %s", strings.Join(clsNames[:], ", "))
						contracts[obj] = contract{decl: fn, bad: true}
						continue
					}
					contracts[obj] = contract{decl: fn, cls: cls}
				case "charge-free":
					contracts[obj] = contract{decl: fn, cls: -1}
				}
			}
		}
	}

	// Summarize every declared function (also exports facts for dependents).
	for obj := range st.decls {
		fs := st.of(obj)
		if !fs.all.zero() {
			pass.Facts.Charges[obj.FullName()] = toSummary(fs.effective())
		}
	}

	// Contract checks.
	for obj, ct := range contracts {
		if ct.bad {
			continue
		}
		fs := st.of(obj)
		pos := ct.decl.Name.Pos()
		if ct.cls == -1 {
			for i, b := range fs.all {
				if b.Max > 0 {
					supp.Reportf(pos, "%s is annotated oevet:charge-free but a path may charge %s cost", obj.Name(), clsNames[i])
					break
				}
			}
			continue
		}
		switch {
		case fs.all[ct.cls].Max == 0:
			// When another class is charged instead, the wrong-class report
			// below carries the actionable message.
			if fs.all.zero() {
				supp.Reportf(pos, "%s is annotated oevet:charge %s but no path reaches a %s charge", obj.Name(), clsNames[ct.cls], clsNames[ct.cls])
			}
		case fs.hasNonErr && fs.nonErr[ct.cls].Min == 0:
			supp.Reportf(pos, "%s is annotated oevet:charge %s but a non-error path may return without charging", obj.Name(), clsNames[ct.cls])
		case fs.all[ct.cls].Max >= 2:
			supp.Reportf(pos, "%s is annotated oevet:charge %s but a path may charge %s twice (double-count)", obj.Name(), clsNames[ct.cls], clsNames[ct.cls])
		}
		for i, b := range fs.all {
			if i != ct.cls && b.Max > 0 {
				supp.Reportf(pos, "%s is annotated oevet:charge %s but a path may charge %s cost (wrong class)", obj.Name(), clsNames[ct.cls], clsNames[i])
			}
		}
	}

	// cost(count×n) shape: a single-op charge whose argument multiplies two
	// non-constant factors bills one op for count ops' worth of bytes.
	for _, decl := range st.decls {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, name, ok := directCharge(info, call)
			if !ok || (name != "ChargeRead" && name != "ChargeWrite") || len(call.Args) != 1 {
				return true
			}
			mul, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr)
			if !ok || mul.Op.String() != "*" {
				return true
			}
			if isConst(info, mul.X) || isConst(info, mul.Y) {
				return true
			}
			supp.Reportf(call.Pos(), "%s(count*n) charges one op with cost(count×n); batched accounting must preserve the op count — use %sN(count, n) for count × cost(n)", name, name)
			return true
		})
	}

	// Stream costs never on the run path: inside the hot-path closure,
	// report direct stream charges and calls into dependency packages whose
	// summary can charge a stream class.
	hot, _ := oeanalysis.HotpathSet(pass)
	for _, decl := range hot {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cls, _, ok := directCharge(info, call); ok {
				if cls == clsStreamRead || cls == clsStreamWrite {
					supp.Reportf(call.Pos(), "hot path charges %s cost; stream costs amortize maintainer-scheduled slot adjacency and must never move simulated time on the run path", clsNames[cls])
				}
				return true
			}
			callee := oeanalysis.CalleeFunc(info, call)
			if callee == nil || callee.Pkg() == pass.Pkg {
				return true // same-package callees are themselves in the hot set
			}
			cs := pass.Facts.Charges[callee.FullName()]
			if cs.StreamRead.Max > 0 || cs.StreamWrite.Max > 0 {
				supp.Reportf(call.Pos(), "hot path calls %s, which may charge stream cost; stream costs must never move simulated time on the run path", callee.Name())
			}
			return true
		})
	}

	supp.Finish()
	return nil
}

func classIndex(args []string) (int, bool) {
	if len(args) != 1 {
		return 0, false
	}
	for i, n := range clsNames {
		if args[0] == n {
			return i, true
		}
	}
	return 0, false
}

// directCharge reports whether call invokes one of device.Timed's Charge*
// methods (recognized by method name on a receiver type named Timed, so the
// testdata corpus can model the device without importing it).
func directCharge(info *types.Info, call *ast.CallExpr) (cls int, name string, ok bool) {
	callee := oeanalysis.CalleeFunc(info, call)
	if callee == nil {
		return 0, "", false
	}
	cls, ok = chargeMethods[callee.Name()]
	if !ok {
		return 0, "", false
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return 0, "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Timed" {
		return 0, "", false
	}
	return cls, callee.Name(), true
}

var chargeErrorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// constructsError reports whether e builds a fresh error value on the spot:
// a fmt.Errorf/errors.New call or the address of an error-typed composite
// literal.
func constructsError(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		callee := oeanalysis.CalleeFunc(info, x)
		if callee == nil || callee.Pkg() == nil {
			return false
		}
		path, name := callee.Pkg().Path(), callee.Name()
		return (path == "fmt" && name == "Errorf") || (path == "errors" && name == "New")
	case *ast.UnaryExpr:
		if x.Op.String() != "&" {
			return false
		}
		if _, isLit := x.X.(*ast.CompositeLit); !isLit {
			return false
		}
		tv, ok := info.Types[e]
		return ok && tv.Type != nil && types.Implements(tv.Type, chargeErrorIface)
	}
	return false
}

func isConst(info *types.Info, e ast.Expr) bool {
	// Constants survive conversions (int64(8) is still constant); a
	// non-constant count wrapped in a conversion is not.
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// of returns the memoized summary of fn, computing it from the body when
// declared in this package and from facts otherwise. Recursive cycles
// contribute nothing (an under-approximation; the engine's charge paths are
// acyclic).
func (s *state) of(fn *types.Func) funcSummary {
	if v, ok := s.memo[fn]; ok {
		return v
	}
	if s.inProgress[fn] {
		return funcSummary{}
	}
	decl := s.decls[fn]
	if decl == nil {
		if cs, ok := s.pass.Facts.Charges[fn.FullName()]; ok {
			v := fromSummary(cs)
			return funcSummary{all: v, nonErr: v, hasNonErr: true}
		}
		return funcSummary{}
	}
	s.inProgress[fn] = true
	v := s.summarize(decl.Body)
	delete(s.inProgress, fn)
	s.memo[fn] = v
	return v
}

// summarize runs the interval walk over one body.
func (s *state) summarize(body *ast.BlockStmt) funcSummary {
	w := &walker{s: s}
	fall, term := w.block(body.List, sum{}, false)
	if !term {
		w.exits = append(w.exits, exitState{fall, false})
	}
	var fs funcSummary
	first, firstNonErr := true, true
	for _, e := range w.exits {
		c := addSum(e.cnt, w.deferred)
		if first {
			fs.all, first = c, false
		} else {
			fs.all = joinSum(fs.all, c)
		}
		if !e.err {
			if firstNonErr {
				fs.nonErr, firstNonErr = c, false
			} else {
				fs.nonErr = joinSum(fs.nonErr, c)
			}
			fs.hasNonErr = true
		}
	}
	return fs
}

type exitState struct {
	cnt sum
	err bool
}

// walker tracks the charge interval along one body in source order,
// collecting an exit state per return.
type walker struct {
	s        *state
	exits    []exitState
	deferred sum
}

// exprs adds the contributions of every call inside n, in visit order.
// Function literal bodies are skipped unless called on the spot (a literal
// handed to another function runs on that function's timeline).
func (w *walker) exprs(n ast.Node, st sum) sum {
	if n == nil {
		return st
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, isLit := e.Fun.(*ast.FuncLit); isLit {
				st = addSum(st, w.s.summarize(lit.Body).all)
			}
			st = addSum(st, w.contribution(e))
		}
		return true
	})
	return st
}

func (w *walker) contribution(call *ast.CallExpr) sum {
	if cls, _, ok := directCharge(w.s.info, call); ok {
		return unit(cls)
	}
	callee := oeanalysis.CalleeFunc(w.s.info, call)
	if callee == nil {
		return sum{}
	}
	return w.s.of(callee).effective()
}

func (w *walker) block(list []ast.Stmt, st sum, inErr bool) (sum, bool) {
	for _, stmt := range list {
		var term bool
		st, term = w.stmt(stmt, st, inErr)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *walker) stmt(stmt ast.Stmt, st sum, inErr bool) (sum, bool) {
	switch t := stmt.(type) {
	case *ast.ReturnStmt:
		for _, r := range t.Results {
			st = w.exprs(r, st)
		}
		// A return that constructs a fresh error (fmt.Errorf, errors.New, or
		// &SomeError{...}) is an error path even without an `err != nil`
		// guard — the validation-guard idiom `if bad { return fmt.Errorf(...) }`.
		errExit := inErr
		for _, r := range t.Results {
			if constructsError(w.s.info, r) {
				errExit = true
			}
		}
		w.exits = append(w.exits, exitState{st, errExit})
		return st, true
	case *ast.IfStmt:
		if t.Init != nil {
			st, _ = w.stmt(t.Init, st, inErr)
		}
		st = w.exprs(t.Cond, st)
		errIf := oeanalysis.HasNilCheck(t.Cond)
		s1, t1 := w.block(t.Body.List, st, inErr || errIf)
		s2, t2 := st, false
		if t.Else != nil {
			s2, t2 = w.stmt(t.Else, st, inErr)
		}
		switch {
		case t1 && t2:
			return st, true
		case t1:
			return s2, false
		case t2:
			return s1, false
		case errIf:
			// An error branch that falls through must not lower the
			// guaranteed count of the surviving path.
			var out sum
			for i := range out {
				out[i] = oeanalysis.ChargeBound{Min: s2[i].Min, Max: max(s1[i].Max, s2[i].Max)}
			}
			return out, false
		default:
			return joinSum(s1, s2), false
		}
	case *ast.ForStmt:
		if t.Init != nil {
			st, _ = w.stmt(t.Init, st, inErr)
		}
		st = w.exprs(t.Cond, st)
		st = w.loop(t.Body, st, inErr)
		if t.Post != nil {
			w.exprs(t.Post, sum{})
		}
		return st, false
	case *ast.RangeStmt:
		st = w.exprs(t.X, st)
		return w.loop(t.Body, st, inErr), false
	case *ast.SwitchStmt:
		if t.Init != nil {
			st, _ = w.stmt(t.Init, st, inErr)
		}
		st = w.exprs(t.Tag, st)
		return w.cases(t.Body, st, inErr, switchHasDefault(t.Body))
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			st, _ = w.stmt(t.Init, st, inErr)
		}
		return w.cases(t.Body, st, inErr, switchHasDefault(t.Body))
	case *ast.SelectStmt:
		return w.cases(t.Body, st, inErr, false)
	case *ast.DeferStmt:
		if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
			w.deferred = addSum(w.deferred, w.s.summarize(lit.Body).all)
		} else {
			w.deferred = addSum(w.deferred, w.contribution(t.Call))
		}
		for _, a := range t.Call.Args {
			st = w.exprs(a, st)
		}
		return st, false
	case *ast.BlockStmt:
		return w.block(t.List, st, inErr)
	case *ast.LabeledStmt:
		return w.stmt(t.Stmt, st, inErr)
	default:
		return w.exprs(stmt, st), false
	}
}

// loop widens the body's contribution: zero iterations keep the minimum,
// repeated iterations push the maximum to "two or more". Returns inside the
// body exit with at least one iteration's worth of charges.
func (w *walker) loop(body *ast.BlockStmt, st sum, inErr bool) sum {
	sub := &walker{s: w.s}
	fall, _ := sub.block(body.List, sum{}, inErr)
	for _, e := range sub.exits {
		var widened sum
		for i := range widened {
			widened[i] = oeanalysis.ChargeBound{Min: e.cnt[i].Min, Max: sat(2 * e.cnt[i].Max)}
		}
		w.exits = append(w.exits, exitState{addSum(st, widened), e.err})
	}
	w.deferred = addSum(w.deferred, sub.deferred)
	var out sum
	for i := range out {
		out[i] = oeanalysis.ChargeBound{Min: st[i].Min, Max: sat(st[i].Max + 2*fall[i].Max)}
	}
	return out
}

func (w *walker) cases(body *ast.BlockStmt, st sum, inErr bool, hasDefault bool) (sum, bool) {
	joined := st
	haveJoin := !hasDefault // without a default, falling past every case is a path
	allTerm := hasDefault
	for _, cc := range body.List {
		var stmts []ast.Stmt
		switch cl := cc.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				st = w.exprs(e, st)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				st, _ = w.stmt(cl.Comm, st, inErr)
			}
			stmts = cl.Body
		default:
			continue
		}
		bs, bterm := w.block(stmts, st, inErr)
		if bterm {
			continue
		}
		allTerm = false
		if !haveJoin {
			joined, haveJoin = bs, true
		} else {
			joined = joinSum(joined, bs)
		}
	}
	if allTerm && hasDefault {
		return st, true
	}
	return joined, false
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cc := range body.List {
		if cl, ok := cc.(*ast.CaseClause); ok && cl.List == nil {
			return true
		}
	}
	return false
}
