// Test corpus for the chargeflow analyzer: a miniature of the device meter
// (a Timed with the six Charge* methods) plus read paths that honor or
// violate the exactly-once charge-accounting contracts.
package a

import "fmt"

type Timed struct{ n int }

func (t *Timed) ChargeRead(n int64)        { t.n++ }
func (t *Timed) ChargeReadN(c, n int64)    { t.n++ }
func (t *Timed) ChargeWrite(n int64)       { t.n++ }
func (t *Timed) ChargeWriteN(c, n int64)   { t.n++ }
func (t *Timed) ChargeStreamRead(n int64)  { t.n++ }
func (t *Timed) ChargeStreamWrite(n int64) { t.n++ }

type dev struct {
	t   *Timed
	buf []byte
	err error
}

// oevet:charge read
func (d *dev) readOnce(n int64) []byte { // ok: exactly one read charge
	d.t.ChargeRead(n)
	return d.buf
}

// oevet:charge read
func (d *dev) readDoubleCharge(n int64) []byte { // want `may charge read twice \(double-count\)`
	b := d.readOnce(n) // the callee already charged; charging again double-counts (PR 1 bug class)
	d.t.ChargeRead(n)
	return b
}

// oevet:charge read
func (d *dev) readNeverCharges(n int64) []byte { // want `no path reaches a read charge`
	return d.buf
}

// oevet:charge read
func (d *dev) readMissesABranch(n int64, cached bool) []byte { // want `a non-error path may return without charging`
	if cached {
		return d.buf
	}
	d.t.ChargeRead(n)
	return d.buf
}

// oevet:charge read
func (d *dev) readWrongClass(n int64) { // want `a path may charge write cost \(wrong class\)`
	d.t.ChargeWrite(n)
}

// oevet:charge write
func (d *dev) writeErrorPathOK(n int64) error { // ok: the error return needn't charge
	if d.err != nil {
		return d.err
	}
	d.t.ChargeWrite(n)
	return nil
}

// oevet:charge write
func (d *dev) writeViaDefer(n int64) { // ok: the deferred charge runs at return
	defer d.t.ChargeWrite(n)
}

// oevet:charge-free
func (d *dev) probeFree() int { // ok: no charge anywhere
	return len(d.buf)
}

// oevet:charge-free
func (d *dev) probeCharges(n int64) int { // want `annotated oevet:charge-free but a path may charge read cost`
	d.t.ChargeRead(n)
	return len(d.buf)
}

func (d *dev) runShape(count, rec int64) {
	d.t.ChargeReadN(count, rec) // ok: count ops of cost(rec)
	d.t.ChargeRead(count * rec) // want `ChargeRead\(count\*n\) charges one op with cost\(count×n\)`
	d.t.ChargeRead(8 * rec)     // ok: constant factor scales one op, not a batch
}

// oevet:charge read
func (d *dev) readLoopCharges(keys []int64) { // want `may charge read twice \(double-count\)`
	for _, k := range keys {
		d.t.ChargeRead(k)
	}
	d.t.ChargeRead(1)
}

// oevet:charge stream-read
func (d *dev) scan(n int64) { // ok: scans own the stream class off the hot path
	d.t.ChargeStreamRead(n)
}

// oevet:hotpath
func (d *dev) pull(n int64) []byte {
	d.t.ChargeRead(n)
	d.t.ChargeStreamRead(n) // want `hot path charges stream-read cost`
	return d.readOnce(n)
}

// bulkEvict is unannotated but reached from the hot push root, so its
// stream charge is reported where it happens.
func (d *dev) bulkEvict(n int64) {
	d.t.ChargeStreamWrite(n) // want `hot path charges stream-write cost`
}

// oevet:hotpath
func (d *dev) push(n int64) {
	d.bulkEvict(n)
	d.t.ChargeWriteN(2, n)
}

// oevet:hotpath
func (d *dev) pullSuppressed(n int64) {
	//oevet:charge-ok recovery probe runs once per restart, not per batch
	d.t.ChargeStreamRead(n)
}

// oevet:coldpath recovery-only scan, never on the batch path
func (d *dev) recoverAll(n int64) {
	d.t.ChargeStreamRead(n) // ok: the hot-path walk stops at coldpath
}

// oevet:hotpath
func (d *dev) pullWithRecovery(n int64) {
	d.t.ChargeRead(n)
	d.recoverAll(n)
}

// A guard returning a freshly-constructed error is an error path even
// without an `err != nil` comparison: the validation-guard idiom must not
// lower the success path's guaranteed charge count.
// oevet:charge read
func (d *dev) readGuarded(n int64) error { // ok: the guard is an error exit
	if n < 0 {
		return fmt.Errorf("bad read length %d", n)
	}
	d.t.ChargeRead(n)
	return nil
}
