// Package oeanalysistest is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over a
// testdata package and compares the diagnostics against `// want "regexp"`
// comments in the sources.
//
// Testdata packages live under <analyzer>/testdata/src/<name> and may
// import only the standard library (dependency export data is obtained
// from `go list -export`, so no compilation happens inside the test).
package oeanalysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"openembedding/internal/analysis/oeanalysis"
)

// Run analyzes the testdata package in dir (relative to the test's working
// directory, e.g. "testdata/src/a") and checks its `// want` expectations.
func Run(t *testing.T, a *oeanalysis.Analyzer, dir string) {
	t.Helper()
	diags, fset, files := analyze(t, a, dir)
	wants := collectWants(t, fset, files)

	type key struct {
		file string
		line int
	}
	unmatched := map[key][]*want{}
	for _, w := range wants {
		k := key{w.pos.Filename, w.pos.Line}
		unmatched[k] = append(unmatched[k], w)
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range unmatched[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, ws := range unmatched {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
			}
		}
	}
}

type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

func analyze(t *testing.T, a *oeanalysis.Analyzer, dir string) ([]oeanalysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read testdata dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	imp, err := stdImporter(fset, imports)
	if err != nil {
		t.Fatalf("importer: %v", err)
	}
	info := oeanalysis.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("typecheck testdata: %v", err)
	}
	diags, err := oeanalysis.Run(a, fset, files, pkg, info, nil)
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	return diags, fset, files
}

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{} // import path -> export data file
	exportKnown = map[string]bool{}   // paths already resolved (incl. deps)
)

// stdImporter returns an importer for the given stdlib import paths,
// shelling out to `go list -export` once per unseen path set. The module
// root (found by walking up from the working directory) provides the go
// tool context.
func stdImporter(fset *token.FileSet, paths map[string]bool) (types.Importer, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for p := range paths {
		if !exportKnown[p] {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		root, err := moduleRoot()
		if err != nil {
			return nil, err
		}
		pkgs, err := oeanalysis.GoList(root, missing)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exportFiles[p.ImportPath] = p.Export
			}
			exportKnown[p.ImportPath] = true
		}
	}
	snapshot := make(map[string]string, len(exportFiles))
	for k, v := range exportFiles {
		snapshot[k] = v
	}
	return oeanalysis.ExportImporter(fset, snapshot), nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("oeanalysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the regexp patterns from a want payload. Patterns
// may be backquoted (taken verbatim, the analysistest convention) or
// double-quoted (Go string syntax).
func splitQuoted(s string) []string {
	var out []string
	for len(s) > 0 {
		switch s[0] {
		case '`':
			j := strings.IndexByte(s[1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, s[1:1+j])
			s = s[j+2:]
		case '"':
			j := 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(s) {
				return out
			}
			if unq, err := strconv.Unquote(s[:j+1]); err == nil {
				out = append(out, unq)
			}
			s = s[j+1:]
		default:
			s = s[1:]
		}
	}
	return out
}
