package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"openembedding/internal/analysis/oeanalysis"
)

// vetConfig mirrors the JSON configuration cmd/go hands a -vettool binary
// (the unitchecker protocol): one file per package, named *.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVet executes the suite for one package described by a vet .cfg file.
// It returns the process exit code: 0 clean, 2 diagnostics found.
func RunVet(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "oevet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "oevet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the vetx (facts) output file to exist even though
	// this suite exchanges facts only in standalone mode.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("oevet-novetx\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "oevet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Same policy as standalone mode: only production code is analyzed.
	// Tests deliberately violate the invariants (torn-write crash tests,
	// map-order shuffles), and excluding them keeps the two modes and the
	// ignore baseline consistent. cmd/go folds in-package _test.go files
	// into the same .cfg, so they are filtered here (production files never
	// reference test files, so the subset typechecks on its own); external
	// test packages (*_test / *.test IDs) are skipped outright.
	if strings.Contains(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "oevet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("oevet: no export data for %q", path)
		}
		return os.Open(file)
	})
	info := oeanalysis.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "oevet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	facts := oeanalysis.NewFacts()
	// Single-package mode: no cross-package fact exchange, so fact-driven
	// diagnostics (and the unused-suppression meta-check that depends on
	// them) are left to the authoritative standalone run.
	facts.Complete = false
	var raw []oeanalysis.Diagnostic
	for _, a := range Suite {
		diags, err := oeanalysis.Run(a, fset, files, pkg, info, facts)
		if err != nil {
			fmt.Fprintf(stderr, "oevet: %v\n", err)
			return 1
		}
		raw = append(raw, diags...)
	}
	res := apply(raw, collectIgnores(fset, files))
	for _, d := range res.Diagnostics {
		fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(res.Diagnostics) > 0 {
		return 2
	}
	return 0
}

// version is reported to cmd/go for build caching (-V=full) and to humans.
const version = "v1.0.0"

// Main is the cmd/oevet entry point; it returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	// Vet protocol: `oevet -V=full` must print a stable identity line.
	for _, a := range args {
		if a == "-V=full" || a == "-V" || a == "--V=full" {
			fmt.Fprintf(stdout, "oevet version %s\n", version)
			return 0
		}
	}
	// Vet protocol: cmd/go probes `oevet -flags` for the tool's flag set
	// (JSON); this suite is configured by source annotations, not flags.
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	// Vet protocol: a single *.cfg argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return RunVet(args[0], stderr)
	}

	var (
		baseline      string
		writeBaseline bool
		patterns      []string
	)
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-baseline" || a == "--baseline":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "oevet: -baseline requires a file argument")
				return 1
			}
			i++
			baseline = args[i]
		case strings.HasPrefix(a, "-baseline="):
			baseline = strings.TrimPrefix(strings.TrimPrefix(a, "-"), "baseline=")
		case a == "-write-baseline" || a == "--write-baseline":
			writeBaseline = true
		case a == "-h" || a == "-help" || a == "--help":
			usage(stdout)
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(stderr, "oevet: unknown flag %s\n", a)
			usage(stderr)
			return 1
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "oevet: %v\n", err)
		return 1
	}
	res, err := RunStandalone(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "oevet: %v\n", err)
		return 1
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	exit := 0
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "oevet: %d problem(s)\n", len(res.Diagnostics))
		exit = 1
	}
	if writeBaseline {
		if baseline == "" {
			baseline = ".oevet-baseline"
		}
		if err := WriteBaseline(baseline, res.IgnoresUsed); err != nil {
			fmt.Fprintf(stderr, "oevet: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "oevet: baseline %s pinned at %d ignore(s)\n", baseline, res.IgnoresUsed)
	} else if baseline != "" {
		if err := CheckBaseline(baseline, res.IgnoresUsed); err != nil {
			fmt.Fprintf(stderr, "%v\n", err)
			exit = 1
		}
	}
	if exit == 0 {
		fmt.Fprintf(stdout, "oevet: clean (%d justified ignore(s))\n", res.IgnoresUsed)
	}
	return exit
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: oevet [-baseline file] [-write-baseline] [packages]

Runs the OpenEmbedding invariant suite (lockorder, pmemdurability,
determinism, faultdet, atomicstat, chargeflow, allocfree, epochfence,
errwrap) over the given package patterns (default ./...).

  -baseline file    compare the //oevet:ignore count against the pinned
                    census in file (both directions)
  -write-baseline   regenerate the baseline file instead of checking it

As a vet tool (single-package mode, no cross-package facts):
  go vet -vettool=$(command -v oevet) ./...
`)
}
