package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openembedding/internal/analysis/oeanalysis"
)

// ---------------------------------------------------------------------------
// apply: ignore precedence over raw diagnostics
// ---------------------------------------------------------------------------

func diag(analyzer, file string, line int, msg string) oeanalysis.Diagnostic {
	return oeanalysis.Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func ig(file string, line int, reason string) *ignoreDirective {
	d := &ignoreDirective{reason: reason}
	d.pos.Filename = file
	d.pos.Line = line
	d.pos.Column = 1
	return d
}

// TestApplyIgnoreCoversSameLineAndLineBelow: one //oevet:ignore covers
// diagnostics on its own line and the line directly below — including
// diagnostics from two different analyzers landing on the same line — and
// counts once in the used-ignore census.
func TestApplyIgnoreCoversSameLineAndLineBelow(t *testing.T) {
	raw := []oeanalysis.Diagnostic{
		diag("lockorder", "x.go", 10, "acquires out of order"),
		diag("epochfence", "x.go", 10, "returns while unfenced"),
		diag("allocfree", "x.go", 11, "make allocates"),
	}
	res := apply(raw, []*ignoreDirective{ig("x.go", 10, "test justification")})
	if len(res.Diagnostics) != 0 {
		t.Fatalf("want all diagnostics suppressed, got %v", res.Diagnostics)
	}
	if res.IgnoresUsed != 1 {
		t.Fatalf("one directive covering three diagnostics must count once, got %d", res.IgnoresUsed)
	}
}

// TestApplyIgnoreDoesNotReachTwoLinesDown: coverage is same-line-or-above
// only; a diagnostic two lines below the directive survives, and the
// directive still counts as used via the diagnostic it does cover.
func TestApplyIgnoreDoesNotReachTwoLinesDown(t *testing.T) {
	raw := []oeanalysis.Diagnostic{
		diag("chargeflow", "y.go", 5, "charges twice"),
		diag("chargeflow", "y.go", 7, "charges twice"),
	}
	res := apply(raw, []*ignoreDirective{ig("y.go", 5, "only the first")})
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Pos.Line != 7 {
		t.Fatalf("want only the line-7 diagnostic to survive, got %v", res.Diagnostics)
	}
	if res.IgnoresUsed != 1 {
		t.Fatalf("IgnoresUsed = %d, want 1", res.IgnoresUsed)
	}
}

// TestApplyMetaDiagnostics: reason-less and unused ignores are themselves
// diagnostics and never count toward the baseline census.
func TestApplyMetaDiagnostics(t *testing.T) {
	res := apply(nil, []*ignoreDirective{
		ig("z.go", 3, ""),               // malformed: no reason
		ig("z.go", 9, "covers nothing"), // unused
	})
	if len(res.Diagnostics) != 2 {
		t.Fatalf("want 2 meta-diagnostics, got %v", res.Diagnostics)
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer != "oevet" {
			t.Errorf("meta-diagnostic attributed to %q, want oevet", d.Analyzer)
		}
	}
	if !strings.Contains(res.Diagnostics[0].Message, "requires a justification") {
		t.Errorf("malformed-ignore message: %q", res.Diagnostics[0].Message)
	}
	if !strings.Contains(res.Diagnostics[1].Message, "unused") {
		t.Errorf("unused-ignore message: %q", res.Diagnostics[1].Message)
	}
	if res.IgnoresUsed != 0 {
		t.Fatalf("meta-flagged ignores must not count, got %d", res.IgnoresUsed)
	}
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

func TestBaselineRoundTripAndRatchet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline")
	if err := WriteBaseline(path, 3); err != nil {
		t.Fatal(err)
	}
	n, err := ReadBaseline(path)
	if err != nil || n != 3 {
		t.Fatalf("ReadBaseline = %d, %v; want 3, nil", n, err)
	}
	if err := CheckBaseline(path, 3); err != nil {
		t.Errorf("exact census must pass: %v", err)
	}
	if err := CheckBaseline(path, 4); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Errorf("growth must fail the ratchet, got %v", err)
	}
	if err := CheckBaseline(path, 2); err == nil || !strings.Contains(err.Error(), "below") {
		t.Errorf("shrink without regenerating must fail, got %v", err)
	}
}

// TestBaselineTolerantOfJustificationComments: the one-directional CI
// ratchet records growth justifications as `# oevet-baseline-grow: ...`
// comment lines; ReadBaseline must skip them.
func TestBaselineTolerantOfJustificationComments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline")
	content := "# oevet ignore baseline\n" +
		"# oevet-baseline-grow: PR 7 adds a justified ignore for the X invariant\n" +
		"ignores 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := ReadBaseline(path)
	if err != nil || n != 4 {
		t.Fatalf("ReadBaseline with grow-justification comment = %d, %v; want 4, nil", n, err)
	}
}

func TestBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline")
	if err := os.WriteFile(path, []byte("ignored 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Fatal("unrecognized baseline line accepted")
	}
}

// ---------------------------------------------------------------------------
// Vettool protocol (single-package mode)
// ---------------------------------------------------------------------------

// writeVetCfg materializes a unitchecker .cfg for one synthetic package.
func writeVetCfg(t *testing.T, dir, importPath string, goFiles []string, vetxOnly bool) string {
	t.Helper()
	cfg := vetConfig{
		ID:          importPath,
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  importPath,
		GoFiles:     goFiles,
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		Standard:    map[string]bool{},
		VetxOnly:    vetxOnly,
		VetxOutput:  filepath.Join(dir, "out.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeFile(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// twoAnalyzerSrc makes allocfree and epochfence both report on the same
// line: the one-line body puts the make expression and the closing brace
// (where the undischarged entry obligation is reported) on one line.
const twoAnalyzerSrc = `package a

// oevet:hotpath
//
// oevet:fence-obligated
func doubled() { _ = make([]int, 4) }
`

// TestRunVetTwoAnalyzersSameLine: a single vettool invocation runs the whole
// suite; two analyzers reporting on the same line both reach stderr and the
// exit code is 2 (the cmd/go vet "diagnostics found" contract).
func TestRunVetTwoAnalyzersSameLine(t *testing.T) {
	dir := t.TempDir()
	src := writeFile(t, dir, "a.go", twoAnalyzerSrc)
	cfgPath := writeVetCfg(t, dir, "tvet/a", []string{src}, false)

	var stderr bytes.Buffer
	if code := RunVet(cfgPath, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "(allocfree)") || !strings.Contains(out, "make allocates") {
		t.Errorf("missing allocfree diagnostic in:\n%s", out)
	}
	if !strings.Contains(out, "(epochfence)") || !strings.Contains(out, "fence-obligated") {
		t.Errorf("missing epochfence diagnostic in:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "out.vetx")); err != nil {
		t.Errorf("vetx facts placeholder not written: %v", err)
	}
}

// TestRunVetIgnoreSuppresses: the driver-level //oevet:ignore works
// identically in vettool mode, covering both same-line diagnostics at once.
func TestRunVetIgnoreSuppresses(t *testing.T) {
	dir := t.TempDir()
	src := writeFile(t, dir, "a.go", strings.Replace(twoAnalyzerSrc,
		"func doubled() { _ = make([]int, 4) }",
		"func doubled() { _ = make([]int, 4) } //oevet:ignore driver-test: both diagnostics share this line",
		1))
	cfgPath := writeVetCfg(t, dir, "tvet/a", []string{src}, false)

	var stderr bytes.Buffer
	if code := RunVet(cfgPath, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

// TestRunVetCleanPackage: a package with no violations exits 0 and prints
// nothing.
func TestRunVetCleanPackage(t *testing.T) {
	dir := t.TempDir()
	src := writeFile(t, dir, "a.go", "package a\n\nfunc ok() int { return 1 }\n")
	cfgPath := writeVetCfg(t, dir, "tvet/a", []string{src}, false)

	var stderr bytes.Buffer
	if code := RunVet(cfgPath, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("clean run wrote to stderr: %q", stderr.String())
	}
}

// TestRunVetSkipsTestFiles: in-package _test.go files are filtered (tests
// deliberately violate invariants), so a violation that lives only in a
// test file does not fail the vettool run.
func TestRunVetSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	clean := writeFile(t, dir, "a.go", "package a\n\nfunc ok() int { return 1 }\n")
	dirty := writeFile(t, dir, "a_test.go", strings.Replace(twoAnalyzerSrc, "package a", "package a", 1))
	cfgPath := writeVetCfg(t, dir, "tvet/a", []string{clean, dirty}, false)

	var stderr bytes.Buffer
	if code := RunVet(cfgPath, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

// TestRunVetVetxOnly: a facts-only request writes the placeholder and exits
// 0 without analyzing.
func TestRunVetVetxOnly(t *testing.T) {
	dir := t.TempDir()
	src := writeFile(t, dir, "a.go", twoAnalyzerSrc)
	cfgPath := writeVetCfg(t, dir, "tvet/a", []string{src}, true)

	var stderr bytes.Buffer
	if code := RunVet(cfgPath, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "out.vetx")); err != nil {
		t.Errorf("vetx placeholder not written: %v", err)
	}
}

// TestRunVetMissingCfg: an unreadable cfg is a driver error (exit 1), not a
// diagnostic.
func TestRunVetMissingCfg(t *testing.T) {
	var stderr bytes.Buffer
	if code := RunVet(filepath.Join(t.TempDir(), "nope.cfg"), &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

// ---------------------------------------------------------------------------
// Main: vet protocol probes and flag errors
// ---------------------------------------------------------------------------

func TestMainVetProtocolProbes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit = %d, want 0", code)
	}
	if !strings.Contains(stdout.String(), "oevet version") {
		t.Errorf("-V=full output %q lacks identity line", stdout.String())
	}

	stdout.Reset()
	if code := Main([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags output = %q, want []", stdout.String())
	}

	if code := Main([]string{"-no-such-flag"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown flag exit = %d, want 1", code)
	}
	if code := Main([]string{"-baseline"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-baseline without argument exit = %d, want 1", code)
	}
}
