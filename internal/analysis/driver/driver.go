// Package driver assembles the oevet analyzer suite and runs it in the two
// supported modes:
//
//   - standalone (`oevet ./...`): loads packages via `go list -export`,
//     analyzes them in dependency order (so cross-package facts flow), and
//     enforces the //oevet:ignore baseline;
//   - vettool (`go vet -vettool=$(which oevet) ./...`): implements the
//     cmd/go vet config protocol — one invocation per package with a JSON
//     .cfg file. Facts do not cross packages in this mode (cmd/go gives
//     each invocation only export data, which carries no annotations), so
//     the standalone mode is the authoritative CI gate; the vettool mode
//     exists so the suite composes with `go vet` workflows.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"strconv"
	"strings"

	"openembedding/internal/analysis/allocfree"
	"openembedding/internal/analysis/atomicstat"
	"openembedding/internal/analysis/chargeflow"
	"openembedding/internal/analysis/determinism"
	"openembedding/internal/analysis/epochfence"
	"openembedding/internal/analysis/errwrap"
	"openembedding/internal/analysis/faultdet"
	"openembedding/internal/analysis/lockorder"
	"openembedding/internal/analysis/oeanalysis"
	"openembedding/internal/analysis/pmemdurability"
)

// Suite is every analyzer cmd/oevet runs, in execution order.
var Suite = []*oeanalysis.Analyzer{
	lockorder.Analyzer,
	pmemdurability.Analyzer,
	determinism.Analyzer,
	faultdet.Analyzer,
	atomicstat.Analyzer,
	chargeflow.Analyzer,
	allocfree.Analyzer,
	epochfence.Analyzer,
	errwrap.Analyzer,
}

// Result is the outcome of a standalone run.
type Result struct {
	// Diagnostics are the surviving problems: analyzer reports that no
	// //oevet:ignore covers, plus meta-problems (ignore without a reason,
	// ignore that suppresses nothing).
	Diagnostics []oeanalysis.Diagnostic
	// IgnoresUsed counts //oevet:ignore directives that suppressed at
	// least one diagnostic; the baseline pins this number.
	IgnoresUsed int
}

// ignoreDirective is one //oevet:ignore occurrence in analyzed source.
type ignoreDirective struct {
	pos    token.Position
	reason string
	used   bool
}

// RunStandalone analyzes the packages matched by patterns (resolved by the
// go tool relative to dir) with the full suite.
func RunStandalone(dir string, patterns []string) (*Result, error) {
	pkgs, fset, err := oeanalysis.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	facts := oeanalysis.NewFacts()
	var (
		raw     []oeanalysis.Diagnostic
		ignores []*ignoreDirective
	)
	for _, p := range pkgs {
		ignores = append(ignores, collectIgnores(fset, p.Files)...)
		for _, a := range Suite {
			diags, err := oeanalysis.Run(a, fset, p.Files, p.Pkg, p.Info, facts)
			if err != nil {
				return nil, err
			}
			raw = append(raw, diags...)
		}
	}
	return apply(raw, ignores), nil
}

// collectIgnores scans a package's files for //oevet:ignore directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, d := range oeanalysis.ParseDirectives(cg) {
				if d.Verb != "ignore" {
					continue
				}
				out = append(out, &ignoreDirective{
					pos:    fset.Position(d.Pos),
					reason: strings.Join(d.Args, " "),
				})
			}
		}
	}
	return out
}

// apply suppresses diagnostics covered by an ignore on the same line or the
// line directly above, and appends meta-diagnostics for malformed or unused
// ignores.
func apply(raw []oeanalysis.Diagnostic, ignores []*ignoreDirective) *Result {
	type key struct {
		file string
		line int
	}
	byLine := map[key][]*ignoreDirective{}
	for _, ig := range ignores {
		k := key{ig.pos.Filename, ig.pos.Line}
		byLine[k] = append(byLine[k], ig)
	}
	res := &Result{}
	for _, d := range raw {
		var covering *ignoreDirective
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, ig := range byLine[key{d.Pos.Filename, line}] {
				covering = ig
				break
			}
			if covering != nil {
				break
			}
		}
		if covering == nil {
			res.Diagnostics = append(res.Diagnostics, d)
			continue
		}
		covering.used = true
	}
	for _, ig := range ignores {
		switch {
		case ig.reason == "":
			res.Diagnostics = append(res.Diagnostics, oeanalysis.Diagnostic{
				Analyzer: "oevet",
				Pos:      ig.pos,
				Message:  "//oevet:ignore requires a justification: //oevet:ignore <reason>",
			})
		case !ig.used:
			res.Diagnostics = append(res.Diagnostics, oeanalysis.Diagnostic{
				Analyzer: "oevet",
				Pos:      ig.pos,
				Message:  "unused //oevet:ignore directive (suppresses nothing); delete it and update the baseline",
			})
		default:
			res.IgnoresUsed++
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Ignore baseline
// ---------------------------------------------------------------------------

// ReadBaseline parses a baseline file: comment lines (#) plus one
// `ignores N` line.
func ReadBaseline(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(line, "ignores %d", &n); err == nil {
			return n, nil
		}
		return 0, fmt.Errorf("oevet: baseline %s: unrecognized line %q", path, line)
	}
	return 0, fmt.Errorf("oevet: baseline %s: no `ignores N` line", path)
}

// WriteBaseline records the current used-ignore count.
func WriteBaseline(path string, n int) error {
	content := "# oevet ignore baseline: the number of //oevet:ignore suppressions in the\n" +
		"# tree. New ignores fail CI until this file is regenerated (and the new\n" +
		"# justification reviewed):  go run ./cmd/oevet -write-baseline ./...\n" +
		"ignores " + strconv.Itoa(n) + "\n"
	return os.WriteFile(path, []byte(content), 0o644)
}

// CheckBaseline compares a run's used-ignore count against the pinned
// baseline, in both directions (a ratchet: removing an ignore must also
// update the file, keeping it an exact census).
func CheckBaseline(path string, used int) error {
	want, err := ReadBaseline(path)
	if err != nil {
		return err
	}
	switch {
	case used > want:
		return fmt.Errorf("oevet: %d //oevet:ignore suppressions exceed the baseline of %d; remove the new ignore or justify it and regenerate %s", used, want, path)
	case used < want:
		return fmt.Errorf("oevet: %d //oevet:ignore suppressions are below the baseline of %d; ratchet down by regenerating %s", used, want, path)
	}
	return nil
}
