package sim

import (
	"time"

	"openembedding/internal/device"
)

// RecoveryEstimate is one bar of Fig. 14.
type RecoveryEstimate struct {
	// Label identifies the configuration.
	Label string
	// ReadTime is the time to bring checkpoint/model bytes off the
	// persistent device.
	ReadTime time.Duration
	// BuildTime is the DRAM reconstruction (hash inserts, and for DRAM-PS
	// also payload copies).
	BuildTime time.Duration
}

// Total returns the recovery wall time.
func (r RecoveryEstimate) Total() time.Duration { return r.ReadTime + r.BuildTime }

// RecoveryTimes reproduces Fig. 14 at production scale (500 GB model,
// ~1 B entries): DRAM-PS restoring its checkpoint from SSD, DRAM-PS
// restoring from PMem, and PMem-OE's scan-and-rebuild (Sec. V-C), whose
// entries never leave PMem — only the index is rebuilt, which is why it
// recovers up to ~4x faster.
func RecoveryTimes() []RecoveryEstimate {
	model := float64(ModelBytesReal)
	entries := time.Duration(RealEntries)

	ssdRead := time.Duration(model / CheckpointSSDReadBW * float64(time.Second))
	pmemRead := device.PMem().StreamReadCost(int64(model))
	fullBuild := entries * EntryBuildFullCost
	oeScan := device.PMem().StreamReadCost(int64(model * ArenaSlotOverhead))
	oeBuild := entries * EntryBuildIndexCost

	return []RecoveryEstimate{
		{Label: "DRAM-PS (checkpoint on SSD)", ReadTime: ssdRead, BuildTime: fullBuild},
		{Label: "DRAM-PS (checkpoint on PMem)", ReadTime: pmemRead, BuildTime: fullBuild},
		{Label: "PMem-OE (scan + index rebuild)", ReadTime: oeScan, BuildTime: oeBuild},
	}
}

// ParallelRecoveryTime extends Fig. 14 with the speed-up the paper
// proposes (Sec. VI-E): partition the table across processes so scanning
// and index rebuilding parallelize (core.RecoverParallel implements it).
// The PMem scan stays bandwidth-bound (shared DIMMs), while the CPU-bound
// index rebuild divides across partitions.
func ParallelRecoveryTime(partitions int) RecoveryEstimate {
	if partitions < 1 {
		partitions = 1
	}
	base := RecoveryTimes()[2]
	return RecoveryEstimate{
		Label:     "PMem-OE (parallel recovery)",
		ReadTime:  base.ReadTime,
		BuildTime: base.BuildTime / time.Duration(partitions),
	}
}
