// Package sim drives the simulated cluster. Its outputs must be
// bit-reproducible across runs (ROADMAP north star); the marker below puts
// the whole package under the determinism analyzer (internal/analysis).
//
//oevet:deterministic-package
package sim

import (
	"fmt"
	"time"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/engines/dramps"
	"openembedding/internal/engines/oricache"
	"openembedding/internal/engines/pmemhash"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
	"openembedding/internal/trace"
	"openembedding/internal/workload"
)

// CheckpointKind selects the checkpointing scheme (Table IV).
type CheckpointKind int

// Checkpoint kinds.
const (
	// CkptNone runs without checkpoints.
	CkptNone CheckpointKind = iota
	// CkptProposed is the paper's scheme: batch-aware sparse checkpoint
	// co-designed with cache replacement, plus TensorFlow's dense dump.
	CkptProposed
	// CkptSparseOnly is the proposed scheme without the dense dump.
	CkptSparseOnly
	// CkptIncremental is the CheckFreq-style baseline: synchronously dump
	// the entries dirtied since the last checkpoint to the checkpoint
	// device, plus the dense dump.
	CkptIncremental
)

func (k CheckpointKind) String() string {
	switch k {
	case CkptNone:
		return "none"
	case CkptProposed:
		return "proposed"
	case CkptSparseOnly:
		return "sparse-only"
	case CkptIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("ckpt(%d)", int(k))
	}
}

// Config is one simulated training configuration.
type Config struct {
	// Engine: "dram-ps", "pmem-oe", "ori-cache", "pmem-hash" or "tf".
	Engine string
	// GPUs is the number of synchronous workers.
	GPUs int
	// Dim is the embedding dimension (default 64, the workload's).
	Dim int
	// CacheBytes is the real-scale DRAM cache for hybrid engines
	// (default 2 GB, the paper's default after Fig. 8).
	CacheBytes int64
	// Sampler builds each worker's key sampler (default Table II skew).
	Sampler func(keys int, seed int64) workload.KeySampler
	// Checkpoint selects the scheme. CheckpointIntervalMinutes is the
	// paper-scale wall-clock period (10-40 min in Fig. 12), mapped to
	// simulated batches via BatchesPerMinute; CheckpointEveryBatches can
	// set the simulated period directly instead.
	Checkpoint                CheckpointKind
	CheckpointIntervalMinutes float64
	CheckpointEveryBatches    int
	// PipelineDisabled / CacheDisabled are the Fig. 9 ablations (pmem-oe).
	PipelineDisabled bool
	CacheDisabled    bool
	// Keys overrides SimKeys; Draws overrides DrawsPerWorkerBatch;
	// RealDraws overrides RealDrawsPerWorkerBatch (Fig. 15's Criteo
	// batches reference far more unique keys than the production trace's);
	// WarmupBatches/MeasureBatches override the defaults (8/40).
	Keys, Draws, RealDraws        int
	WarmupBatches, MeasureBatches int
	// Seed drives the workload.
	Seed int64
	// RecordTrace attaches a trace recorder (Fig. 2).
	RecordTrace bool
}

func (c Config) withDefaults() Config {
	if c.GPUs == 0 {
		c.GPUs = 4
	}
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 2 << 30
	}
	if c.Sampler == nil {
		c.Sampler = func(keys int, seed int64) workload.KeySampler {
			return workload.NewTableIISkew(keys, seed)
		}
	}
	if c.Keys == 0 {
		c.Keys = SimKeys
	}
	if c.Draws == 0 {
		c.Draws = DrawsPerWorkerBatch
	}
	if c.RealDraws == 0 {
		c.RealDraws = RealDrawsPerWorkerBatch
	}
	if c.CheckpointIntervalMinutes > 0 && c.CheckpointEveryBatches == 0 {
		c.CheckpointEveryBatches = int(c.CheckpointIntervalMinutes * BatchesPerMinute)
	}
	if c.WarmupBatches == 0 {
		c.WarmupBatches = 8
	}
	if c.MeasureBatches == 0 {
		c.MeasureBatches = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// PhaseBreakdown is the average per-batch time by phase.
type PhaseBreakdown struct {
	Pull, GPU, Maint, Push, Ckpt time.Duration
}

// Result summarizes one simulated configuration.
type Result struct {
	Config   Config
	AvgBatch time.Duration
	Epoch    time.Duration
	MissRate float64
	Phases   PhaseBreakdown
	Ckpts    int
	Stats    psengine.Stats
	Recorder *trace.Recorder
	// EntriesBytes is the simulated store's entry payload size (scaled).
	EntryBytes int
}

// Run simulates one configuration: it drives the real engine batch by
// batch, converts each phase's charged demand into time via the resource
// model, and extrapolates one epoch.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	meter := simclock.NewMeter()
	store := psengine.Config{
		Dim:              cfg.Dim,
		Optimizer:        optim.NewAdaGrad(0.05),
		Capacity:         cfg.Keys,
		CacheEntries:     cacheEntries(cfg),
		Meter:            meter,
		PipelineDisabled: cfg.PipelineDisabled,
		CacheDisabled:    cfg.CacheDisabled,
		// One shard, always: the default derives from GOMAXPROCS, and the
		// simulated-time tables must not depend on the host's core count.
		// Shards=1 reproduces the unsharded engine exactly.
		Shards: 1,
	}.WithDefaults()

	eng, err := buildEngine(cfg, store)
	if err != nil {
		return Result{}, err
	}
	defer eng.Close()

	res := Result{Config: cfg, EntryBytes: pmem.FloatBytes(store.EntryFloats()) + 24}
	r := resourcesFor(cfg.Engine, cfg.GPUs)
	scaleUp := float64(cfg.RealDraws) / float64(cfg.Draws)
	var rec *trace.Recorder
	if cfg.RecordTrace {
		rec = &trace.Recorder{}
		res.Recorder = rec
	}

	// Per-worker samplers and a reusable gradient buffer.
	samplers := make([]workload.KeySampler, cfg.GPUs)
	for w := range samplers {
		samplers[w] = cfg.Sampler(cfg.Keys, cfg.Seed+int64(w))
	}
	grads := make([]float32, cfg.Draws*cfg.Dim)
	for i := range grads {
		grads[i] = 0.01
	}
	pullBuf := make([]float32, cfg.Draws*cfg.Dim)

	// Prefill: create every entry once (the paper measures steady-state
	// epochs; first-epoch creation is not part of any figure).
	batch := int64(0)
	if err := prefill(eng, cfg.Keys, &batch); err != nil {
		return Result{}, err
	}

	// Warmup shapes the cache to the skew.
	var carryMaint time.Duration // deferred write-back riding the next GPU phase
	runBatches := func(n int, measure bool) error {
		clock := time.Duration(0)
		statsBefore := eng.Stats()
		for i := 0; i < n; i++ {
			var keysByWorker [][]uint64
			var totalKeys int
			for w := 0; w < cfg.GPUs; w++ {
				keys := workload.Batch(samplers[w], cfg.Draws)
				keysByWorker = append(keysByWorker, keys)
				totalKeys += len(keys)
			}

			// Pull phase: the synchronous burst.
			before := meter.Snapshot()
			for w, keys := range keysByWorker {
				if rec != nil && measure {
					rec.Record(clock, trace.Pull, batch, len(keys))
				}
				if err := eng.Pull(batch, keys, pullBuf[:len(keys)*cfg.Dim]); err != nil {
					return fmt.Errorf("sim: pull (worker %d): %w", w, err)
				}
			}
			pullD := meter.Snapshot().Sub(before)
			pullT := PhaseTime(pullD, r, scaleUp) + phaseNet(cfg, totalKeys, true) + requestCPU(totalKeys, r, scaleUp)
			if cfg.Engine == "tf" {
				pullT += tfEmbeddingTime(cfg, totalKeys)
			}

			// Maintenance phase (overlapped with dense compute), plus any
			// batch-boundary write-back carried over from the previous
			// batch (it drains during this batch's GPU phase).
			before = meter.Snapshot()
			eng.EndPullPhase(batch)
			eng.WaitMaintenance()
			maintD := meter.Snapshot().Sub(before)
			maintT := PhaseTime(maintD, r, scaleUp) + carryMaint
			carryMaint = 0

			// Push phase.
			before = meter.Snapshot()
			pushClock := clock + pullT + maxDur(GPUBatchTime, maintT)
			for w, keys := range keysByWorker {
				if rec != nil && measure {
					rec.Record(pushClock, trace.Push, batch, len(keys))
				}
				if err := eng.Push(batch, keys, grads[:len(keys)*cfg.Dim]); err != nil {
					return fmt.Errorf("sim: push (worker %d): %w", w, err)
				}
			}
			pushD := meter.Snapshot().Sub(before)
			pushT := PhaseTime(pushD, r, scaleUp) + phaseNet(cfg, totalKeys, false) + requestCPU(totalKeys, r, scaleUp)
			if cfg.Engine == "tf" {
				pushT += tfExchangeTime(cfg, totalKeys)
			}

			// Batch seal: for pipelined engines any write-back it performs
			// (e.g. the cache-disabled staging flush) overlaps the next
			// batch's GPU phase; with the pipeline disabled it stalls the
			// request path.
			before = meter.Snapshot()
			if err := eng.EndBatch(batch); err != nil {
				return fmt.Errorf("sim: end batch: %w", err)
			}
			endT := PhaseTime(meter.Snapshot().Sub(before), r, scaleUp)
			if cfg.PipelineDisabled {
				pushT += endT
			} else {
				carryMaint = endT
			}

			// Checkpoint trigger at the period boundary.
			var ckptT time.Duration
			if cfg.Checkpoint != CkptNone && cfg.CheckpointEveryBatches > 0 &&
				(i+1)%cfg.CheckpointEveryBatches == 0 {
				before = meter.Snapshot()
				var err error
				ckptT, err = triggerCheckpoint(cfg, eng, batch)
				if err != nil {
					return err
				}
				ckptT += PhaseTime(meter.Snapshot().Sub(before), r, scaleUp)
				if measure {
					res.Ckpts++
				}
			}

			syncT := SyncOverheadPerGPU * time.Duration(cfg.GPUs)
			batchT := pullT + maxDur(GPUBatchTime, maintT) + pushT + syncT + ckptT
			clock += batchT
			if measure {
				res.Phases.Pull += pullT
				res.Phases.GPU += GPUBatchTime
				res.Phases.Maint += maintT
				res.Phases.Push += pushT
				res.Phases.Ckpt += ckptT
				res.AvgBatch += batchT
			}
			batch++
		}
		if measure {
			statsAfter := eng.Stats()
			lookups := (statsAfter.Hits - statsBefore.Hits) + (statsAfter.Misses - statsBefore.Misses)
			if lookups > 0 {
				res.MissRate = float64(statsAfter.Misses-statsBefore.Misses) / float64(lookups)
			}
			res.Stats = statsAfter
		}
		return nil
	}

	if err := runBatches(cfg.WarmupBatches, false); err != nil {
		return Result{}, err
	}
	if err := runBatches(cfg.MeasureBatches, true); err != nil {
		return Result{}, err
	}

	n := time.Duration(cfg.MeasureBatches)
	res.AvgBatch /= n
	res.Phases.Pull /= n
	res.Phases.GPU /= n
	res.Phases.Maint /= n
	res.Phases.Push /= n
	res.Phases.Ckpt /= n
	res.Epoch = res.AvgBatch * time.Duration(StepsPerEpoch(cfg.GPUs))
	return res, nil
}

// cacheEntries maps the configured real cache bytes to simulated entries.
// A given byte budget holds more entries at smaller embedding dimensions
// (Fig. 15's 128 MB cache is 6.4% of the dim-16 table but only 1.6% of the
// dim-64 one), so the mapping scales by entry size relative to the
// production dim-64 entry.
func cacheEntries(cfg Config) int {
	entryBytes := float64((cfg.Dim+cfg.Dim)*4 + 24)
	n := int(float64(CacheEntriesForBytes(cfg.CacheBytes)) * float64(EntryBytesReal) / entryBytes)
	if n < 4 {
		n = 4
	}
	return n
}

// buildEngine constructs the engine under test.
func buildEngine(cfg Config, store psengine.Config) (psengine.Engine, error) {
	newArena := func(slotsFactor int) (*pmem.Arena, error) {
		payload := pmem.FloatBytes(store.EntryFloats())
		slots := cfg.Keys * slotsFactor
		dev := pmem.NewDevice(pmem.ArenaLayout(payload, slots), device.NewTimedPMem(store.Meter))
		return pmem.NewArena(dev, payload, slots)
	}
	switch cfg.Engine {
	case "pmem-oe":
		arena, err := newArena(3)
		if err != nil {
			return nil, err
		}
		return core.New(store, arena)
	case "dram-ps", "tf":
		return dramps.New(store, dramps.Options{})
	case "ori-cache":
		arena, err := newArena(2)
		if err != nil {
			return nil, err
		}
		return oricache.New(store, arena, oricache.Options{})
	case "pmem-hash":
		arena, err := newArena(2)
		if err != nil {
			return nil, err
		}
		return pmemhash.New(store, arena)
	default:
		return nil, fmt.Errorf("sim: unknown engine %q", cfg.Engine)
	}
}

// prefill touches every key once so measurement sees a fully built table.
func prefill(eng psengine.Engine, keys int, batch *int64) error {
	const chunk = 8192
	buf := make([]float32, chunk*eng.Dim())
	ids := make([]uint64, 0, chunk)
	for lo := 0; lo < keys; lo += chunk {
		hi := lo + chunk
		if hi > keys {
			hi = keys
		}
		ids = ids[:0]
		for k := lo; k < hi; k++ {
			ids = append(ids, uint64(k))
		}
		if err := eng.Pull(*batch, ids, buf[:len(ids)*eng.Dim()]); err != nil {
			return fmt.Errorf("sim: prefill: %w", err)
		}
		eng.EndPullPhase(*batch)
		eng.WaitMaintenance()
		if err := eng.EndBatch(*batch); err != nil {
			return fmt.Errorf("sim: prefill: %w", err)
		}
		*batch++
	}
	return nil
}

// phaseNet is the wire time of one pull or push phase. TF keeps embeddings
// worker-local (its transfer costs live in tfEmbeddingTime/tfExchangeTime).
func phaseNet(cfg Config, totalKeys int, isPull bool) time.Duration {
	if cfg.Engine == "tf" {
		return 0
	}
	scaleUp := float64(cfg.RealDraws) / float64(cfg.Draws)
	bytesPerKey := int64(cfg.Dim*4 + 8)
	total := int64(float64(int64(totalKeys)*bytesPerKey) * scaleUp)
	return netTime(total, cfg.GPUs, resourcesFor(cfg.Engine, cfg.GPUs).Nodes)
}

// requestCPU is the PS-side request handling (decode, memcpy, response
// assembly) beyond the storage engine's own charges, spread over the node
// thread pools. It is the component whose linear growth in total keys makes
// DRAM-PS's scaling sub-linear (Fig. 7's 40%/65% reductions).
func requestCPU(totalKeys int, r Resources, scaleUp float64) time.Duration {
	d := time.Duration(float64(totalKeys)*scaleUp) * RequestCPUPerKey
	return d / time.Duration(r.Nodes*r.ThreadsPerNode)
}

// tfEmbeddingTime models TensorFlow's embedding layer: every unique key's
// gather goes through the framework's op dispatch on one coordinating
// host — serialized across workers, which is why TF degrades as GPUs are
// added even on one machine (Fig. 15).
func tfEmbeddingTime(cfg Config, totalKeys int) time.Duration {
	scaleUp := float64(cfg.RealDraws) / float64(cfg.Draws)
	return time.Duration(float64(totalKeys)*scaleUp) * TFPerKeyDispatch
}

// tfExchangeTime models the cross-GPU exchange of sparse gradients in the
// mirrored setup: each key's dim-sized gradient crosses the inter-GPU
// fabric (G-1)/G times, so the cost grows with both worker count and
// embedding dimension — the reason PMem-OE's advantage doubles from dim 16
// to dim 64.
func tfExchangeTime(cfg Config, totalKeys int) time.Duration {
	if cfg.GPUs <= 1 {
		return 0
	}
	scaleUp := float64(cfg.RealDraws) / float64(cfg.Draws)
	bytes := float64(totalKeys) * scaleUp * float64(cfg.Dim) * 8 // grad + indices
	frac := float64(cfg.GPUs-1) / float64(cfg.GPUs)
	return time.Duration(bytes * frac / TFExchangeBW * float64(time.Second))
}

// triggerCheckpoint performs the configured checkpoint action at a period
// boundary and returns its synchronous pause.
//
// Per-checkpoint costs are computed at production scale — the dirty set a
// real 10-40 minute interval accumulates, drained at the effective
// interference-limited rate — and rescaled by simInterval/realInterval so
// that the overhead *fraction* of an interval (what Figs. 12-13 plot) is
// preserved at simulation scale.
func triggerCheckpoint(cfg Config, eng psengine.Engine, batch int64) (time.Duration, error) {
	simInterval := cfg.CheckpointEveryBatches
	realInterval := simInterval
	if cfg.CheckpointIntervalMinutes > 0 {
		realInterval = int(cfg.CheckpointIntervalMinutes * 60 * RealBatchesPerSecond)
	}
	intervalScale := float64(simInterval) / float64(realInterval)
	dense := time.Duration(float64(DenseCheckpointPause) * intervalScale)

	switch cfg.Checkpoint {
	case CkptProposed, CkptSparseOnly:
		// Alg. 2: enqueue only; flushes ride on later cache maintenance
		// (their demand shows up in the maintenance snapshots).
		if err := eng.RequestCheckpoint(batch); err != nil {
			return 0, fmt.Errorf("sim: checkpoint: %w", err)
		}
		if cfg.Checkpoint == CkptProposed {
			return dense, nil
		}
		return 0, nil
	case CkptIncremental:
		// The baseline synchronously dumps every entry dirtied since the
		// previous checkpoint. The dirty-set size over the real interval
		// comes from the expected-unique analysis of the Table II skew.
		draws := float64(realInterval) * float64(cfg.GPUs) * RealDrawsPerWorkerBatch
		dirtyEntries := ExpectedUniqueTableII(draws, float64(RealEntries))
		bytes := dirtyEntries * EntryBytesReal
		bw := IncrementalDrainPMemBW
		if cfg.Engine == "dram-ps" || cfg.Engine == "tf" {
			bw = IncrementalDrainDRAMBW
		}
		pauseReal := time.Duration(bytes / bw * float64(time.Second))
		return time.Duration(float64(pauseReal)*intervalScale) + dense, nil
	default:
		return 0, nil
	}
}
