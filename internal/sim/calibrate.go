// Package sim reproduces the paper's end-to-end experiments (Figs. 3-15,
// Table V) on a single machine by driving the *real* storage engines with a
// scaled-down workload while accounting time in calibrated virtual
// nanoseconds.
//
// The functional layer is exact — real hash tables, real LRU, real flushes,
// real checkpoint completion. The timing layer combines the per-resource
// virtual costs each engine charges (internal/simclock) with a small
// parallelism model (resources.go) and the paper's published hardware
// parameters (internal/device, Table I). Scale factors and calibration
// constants live in this file, each with its provenance.
package sim

import "time"

// ---------------------------------------------------------------------------
// Scaled workload (the paper's production trace is 2.1B entries / 500 GB;
// the simulation preserves the ratios that drive behaviour, not the raw
// size).
// ---------------------------------------------------------------------------

const (
	// SimKeys is the simulated embedding-table size. Large enough for the
	// Table II skew to produce realistic miss rates, small enough for the
	// arena to fit in laptop memory.
	SimKeys = 1 << 17

	// DrawsPerWorkerBatch is the number of embedding lookups one worker's
	// batch generates before deduplication, scaled down with the key space
	// so that a batch's working set keeps its real proportion to the DRAM
	// cache (the cache must comfortably hold several batches' unique keys,
	// as it does at production scale).
	DrawsPerWorkerBatch = 512

	// RealDrawsPerWorkerBatch is the production counterpart used to scale
	// measured per-batch demands up to real batch sizes: 4096 samples with
	// ~3 effective deduplicated sparse lookups each.
	RealDrawsPerWorkerBatch = 12288

	// SimCacheEntriesPerGiB maps a real cache size onto simulated cache
	// entries: 2 GiB (the paper's default) becomes 2048 entries, ~0.8% of
	// SimKeys — calibrated so the Table II skew yields the paper's ~13.6%
	// steady-state miss rate (Fig. 11) including LRU pollution from the
	// one-touch tail.
	SimCacheEntriesPerGiB = 4096

	// RequestCPUPerKey is the PS-side request-handling CPU per key beyond
	// the storage-engine work: RPC decode, response assembly, memcpy into
	// the network buffer. Common to every engine.
	RequestCPUPerKey = 100 * time.Nanosecond

	// SyncOverheadPerGPU models the per-batch synchronization cost that
	// grows with worker count and hits every engine equally: the Horovod
	// dense-gradient allreduce, the barrier, and straggler variance.
	// Calibrated against Fig. 7's DRAM-PS scaling (epoch time falls only
	// 40%/65% when GPUs go 4 -> 8/16, not the linear 50%/75%).
	SyncOverheadPerGPU = 2300 * time.Microsecond

	// ModelBytesReal is the production model size (Sec. III: >500 GB).
	ModelBytesReal = 500 << 30

	// EntryBytesReal is one production embedding entry: 64 float32 weights
	// plus AdaGrad state, with record header.
	EntryBytesReal = 64*4*2 + 24

	// RealEntries is the production entry count implied by the model size.
	RealEntries = ModelBytesReal / EntryBytesReal
)

// CacheEntriesForBytes converts a real DRAM-cache size (e.g. the paper's
// 2 GB default) into the simulated cache entry count.
func CacheEntriesForBytes(cacheBytes int64) int {
	n := int(float64(cacheBytes) / float64(1<<30) * SimCacheEntriesPerGiB)
	if n < 4 {
		n = 4
	}
	return n
}

// ---------------------------------------------------------------------------
// Cluster shape (Table V, Sec. VI-A).
// ---------------------------------------------------------------------------

const (
	// DRAMPSNodes: the DRAM-PS deployment needs two r6e.13xlarge servers to
	// hold 500 GB; the PMem engines fit in one re6p.13xlarge.
	DRAMPSNodes = 2
	PMemNodes   = 1

	// ThreadsPerNode is the request-serving thread pool per PS node.
	ThreadsPerNode = 8

	// PMemConcurrency is the effective number of concurrent random accesses
	// one PMem socket sustains before queueing (Optane DIMMs have limited
	// internal parallelism; Table I bandwidths are aggregate sequential
	// figures, and small random accesses see far less).
	PMemConcurrency = 1

	// GPUsPerMachine: the gn6v instances carry 4 V100s each, sharing one
	// 30 Gb NIC.
	GPUsPerMachine = 4
)

// ---------------------------------------------------------------------------
// Per-batch dense compute and epoch length.
// ---------------------------------------------------------------------------

const (
	// GPUBatchTime is the dense forward/backward time of one 4096-sample
	// DeepFM batch on a V100 (calibrated so DRAM-PS at 4 GPUs lands near
	// the paper's 5.75 h/epoch with the step count below).
	GPUBatchTime = 75 * time.Millisecond

	// EpochSamples matches the trace's 3.4 TB of training data at ~0.9 KB a
	// sample; steps/epoch at G GPUs = EpochSamples / (G * 4096).
	EpochSamples = 3_950_000_000

	// GlobalBatchPerGPU is the per-GPU batch size (the paper's default).
	GlobalBatchPerGPU = 4096
)

// StepsPerEpoch returns the synchronous steps in one epoch with g GPUs.
func StepsPerEpoch(g int) int {
	return EpochSamples / (g * GlobalBatchPerGPU)
}

// ---------------------------------------------------------------------------
// Contention and engine-specific calibration.
// ---------------------------------------------------------------------------

const (
	// GlobalLockContention scales GlobalSync demand by (1 + c*G): under the
	// synchronous burst, every additional worker lengthens the convoy on a
	// single lock (cache-line bouncing + queueing). Calibrated against
	// Fig. 7's Ori-Cache degradation (1.24x at 4 GPUs to 2.27x at 16).
	GlobalLockContention = 0.12

	// TFPerKeyDispatch models TensorFlow's embedding-layer op dispatch and
	// host<->device gather/scatter per unique key, serialized on the
	// coordinating host — what the paper's RDMA-backed custom operators
	// avoid (Fig. 15: PMem-OE is ~6% faster than TF even on one GPU).
	TFPerKeyDispatch = 500 * time.Nanosecond

	// TFExchangeBW is the effective cross-GPU bandwidth of the sparse
	// gradient exchange in TF's mirrored setup (host-staged, far below
	// NVLink peak).
	TFExchangeBW = 0.45e9 // bytes/s

	// DenseCheckpointPause is the synchronous pause for TensorFlow's own
	// checkpoint of the dense model (Sec. VI-D: the only overhead left in
	// PMem-OE's full checkpoint; calibrated to its measured 1.2% at the
	// default 20-minute interval).
	DenseCheckpointPause = 12 * time.Second

	// BatchesPerMinute maps the paper's wall-clock checkpoint intervals
	// onto simulated batch counts (a 20-minute interval becomes 60 sim
	// batches); per-checkpoint costs are computed at production scale and
	// rescaled so the overhead *fraction* of an interval is preserved.
	BatchesPerMinute = 3

	// RealBatchesPerSecond is the production training rate used to convert
	// wall-clock checkpoint intervals into real batch counts (~100 ms per
	// synchronous batch, Sec. VI-B's epoch arithmetic).
	RealBatchesPerSecond = 10

	// IncrementalDrainPMemBW is the effective rate at which the incremental
	// checkpointer's dump drains when the training engine itself lives on
	// the same PMem: small random record writes plus interference with
	// training reads/writes. Back-computed from Fig. 12 (PMem-OE with
	// incremental checkpointing pays 16.5-21.4% extra).
	IncrementalDrainPMemBW = 0.2e9 // bytes/s

	// IncrementalDrainDRAMBW is the same drain rate when training state is
	// in DRAM and only the checkpoint stream touches PMem (DRAM-PS): no
	// read interference, so closer to the device's streaming rate.
	IncrementalDrainDRAMBW = 0.35e9 // bytes/s
)

// ---------------------------------------------------------------------------
// Recovery (Fig. 14) calibration.
// ---------------------------------------------------------------------------

const (
	// CheckpointSSDReadBW is the effective read bandwidth of checkpoint
	// files on the baseline's SSD-backed store (filesystem + NAS overhead
	// included; back-computed from the paper's 1512.8 s).
	CheckpointSSDReadBW = 0.62e9 // bytes/s

	// EntryBuildFullCost is the per-entry cost of DRAM-PS recovery:
	// deserialize 512 B of payload, allocate, insert into the hash table.
	EntryBuildFullCost = 720 * time.Nanosecond

	// EntryBuildIndexCost is the per-entry cost of PMem-OE recovery: hash
	// insert of a key -> PMem-slot mapping only; payloads stay in PMem.
	EntryBuildIndexCost = 360 * time.Nanosecond

	// ArenaSlotOverhead is the ratio of scanned arena bytes to live model
	// bytes (retained versions and free slots are scanned too).
	ArenaSlotOverhead = 1.2
)
