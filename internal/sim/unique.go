package sim

import (
	"math"

	"openembedding/internal/workload"
)

// ExpectedUniqueTableII returns the expected number of distinct keys in
// draws samples from the Table II skew over a keyspace of n keys:
// E[unique] = sum over keys of (1 - (1-p_k)^draws), evaluated by numeric
// integration over the piecewise-geometric rank density.
//
// The incremental-checkpoint model needs it at production scale (how many
// entries were dirtied in a 20-minute interval of 16-GPU training), where
// direct simulation is unaffordable.
func ExpectedUniqueTableII(draws float64, n float64) float64 {
	if draws <= 0 || n <= 0 {
		return 0
	}
	var total float64
	prevRF, prevCS := 0.0, 0.0
	for _, a := range workload.TableIIAnchors {
		mass := a.CumShare - prevCS
		width := a.RankFrac - prevRF
		if mass <= 0 || width <= 0 {
			prevRF, prevCS = a.RankFrac, a.CumShare
			continue
		}
		if prevRF == 0 {
			// First segment: linear rank interpolation — uniform density
			// mass/width per unit rank fraction.
			total += integrateUniform(draws, n, mass, width)
		} else {
			// Geometric segment: rank fraction rf(t) = lo*(hi/lo)^t with
			// share linear in t, so the per-rank density is
			// mass / (rf * ln(hi/lo)).
			total += integrateGeometric(draws, n, mass, prevRF, a.RankFrac)
		}
		prevRF, prevCS = a.RankFrac, a.CumShare
	}
	return total
}

func integrateUniform(draws, n, mass, width float64) float64 {
	keys := width * n
	if keys < 1 {
		keys = 1
	}
	p := mass / keys // per-key access probability
	return keys * (1 - math.Exp(-draws*p))
}

func integrateGeometric(draws, n, mass, lo, hi float64) float64 {
	const steps = 400
	lnRatio := math.Log(hi / lo)
	var total float64
	for i := 0; i < steps; i++ {
		t0 := float64(i) / steps
		t1 := float64(i+1) / steps
		rf0 := lo * math.Pow(hi/lo, t0)
		rf1 := lo * math.Pow(hi/lo, t1)
		keys := (rf1 - rf0) * n
		if keys <= 0 {
			continue
		}
		rfMid := (rf0 + rf1) / 2
		density := mass / (rfMid * lnRatio) // share per unit rank fraction
		p := density / n                    // per-key probability
		total += keys * (1 - math.Exp(-draws*p))
	}
	return total
}
