package sim

import (
	"time"

	"openembedding/internal/device"
	"openembedding/internal/simclock"
)

// Resources describes the hardware a phase's demand is served by.
type Resources struct {
	// Nodes is the number of PS nodes the shards are spread over.
	Nodes int
	// ThreadsPerNode is the request-serving thread pool per node.
	ThreadsPerNode int
	// PMemConcurrency is the concurrent-access capacity of one node's PMem.
	PMemConcurrency int
	// Workers is the number of concurrently bursting GPU workers (drives
	// global-lock convoy length).
	Workers int
}

// resourcesFor returns the deployment shape of an engine kind (Table V:
// DRAM-PS needs two DRAM servers; the PMem engines fit in one PMem server).
func resourcesFor(engine string, gpus int) Resources {
	nodes := PMemNodes
	if engine == "dram-ps" || engine == "tf" {
		nodes = DRAMPSNodes
	}
	return Resources{
		Nodes:           nodes,
		ThreadsPerNode:  ThreadsPerNode,
		PMemConcurrency: PMemConcurrency,
		Workers:         gpus,
	}
}

// PhaseTime converts one phase's charged demand into wall time: each
// resource class serves its demand at its own parallelism, the phase ends
// when the slowest class finishes (they overlap), and globally-serialized
// demand pays a convoy penalty that grows with the number of bursting
// workers (Observation 1's parallelism overhead).
func PhaseTime(d simclock.Snapshot, r Resources, scaleUp float64) time.Duration {
	cpu := d.Sum(simclock.Compute, simclock.DRAMRead, simclock.DRAMWrite, simclock.LockSync)
	pm := d.Sum(simclock.PMemRead, simclock.PMemWrite)
	gl := d.Total(simclock.GlobalSync)
	ssd := d.Sum(simclock.SSDRead, simclock.SSDWrite)

	cpuT := scale(cpu, scaleUp/float64(r.Nodes*r.ThreadsPerNode))
	pmT := scale(pm, scaleUp/float64(r.Nodes*r.PMemConcurrency))
	glT := scale(gl, scaleUp*(1+GlobalLockContention*float64(r.Workers)))
	ssdT := scale(ssd, scaleUp)

	return maxDur(cpuT, pmT, glT, ssdT)
}

func scale(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

func maxDur(ds ...time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// netTime is the wire time of moving totalBytes between the worker
// machines and the PS nodes in one phase: each side's links can bottleneck
// (workers share one 30 Gb NIC per 4-GPU machine; each PS node has one).
func netTime(totalBytes int64, gpus, psNodes int) time.Duration {
	net := device.Network30Gb()
	machines := (gpus + GPUsPerMachine - 1) / GPUsPerMachine
	workerSide := net.StreamWriteCost(totalBytes / int64(machines))
	psSide := net.StreamWriteCost(totalBytes / int64(psNodes))
	return maxDur(workerSide, psSide)
}

// allreduceTime models a ring allreduce of grad bytes across g workers
// sharing the machine NICs: 2*(g-1)/g of the payload crosses each link.
func allreduceTime(bytesPerWorker int64, gpus int) time.Duration {
	if gpus <= 1 {
		return 0
	}
	net := device.Network30Gb()
	factor := 2 * float64(gpus-1) / float64(gpus)
	machines := (gpus + GPUsPerMachine - 1) / GPUsPerMachine
	if machines == 1 {
		// Intra-machine (NVLink-class) allreduce: an order of magnitude
		// faster than the NIC path.
		return scale(net.StreamWriteCost(int64(float64(bytesPerWorker)*factor)), 0.1)
	}
	return net.StreamWriteCost(int64(float64(bytesPerWorker) * factor))
}
