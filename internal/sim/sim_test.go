package sim

import (
	"math"
	"testing"
	"time"

	"openembedding/internal/workload"
)

// quick returns a small config for fast shape tests.
func quick(engine string, gpus int) Config {
	return Config{
		Engine: engine, GPUs: gpus,
		Keys: 1 << 14, Draws: 256,
		WarmupBatches: 4, MeasureBatches: 10,
		Seed: 7,
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sim %s/%d: %v", cfg.Engine, cfg.GPUs, err)
	}
	return res
}

// TestEngineOrdering asserts the paper's headline ordering at 8 GPUs:
// DRAM-PS <= PMem-OE < Ori-Cache < PMem-Hash.
func TestEngineOrdering(t *testing.T) {
	times := map[string]time.Duration{}
	for _, e := range []string{"dram-ps", "pmem-oe", "ori-cache", "pmem-hash"} {
		times[e] = run(t, quick(e, 8)).AvgBatch
	}
	if !(times["dram-ps"] <= times["pmem-oe"] &&
		times["pmem-oe"] < times["ori-cache"] &&
		times["ori-cache"] < times["pmem-hash"]) {
		t.Fatalf("ordering violated: %v", times)
	}
	// PMem-OE stays within 15% of the DRAM upper bound.
	if r := float64(times["pmem-oe"]) / float64(times["dram-ps"]); r > 1.15 {
		t.Fatalf("PMem-OE %.3fx DRAM-PS, want close", r)
	}
}

// TestScalingSublinear: doubling GPUs must shrink the epoch, but not by the
// full factor of two (sync overhead and PS load grow).
func TestScalingSublinear(t *testing.T) {
	e4 := run(t, quick("dram-ps", 4)).Epoch
	e16 := run(t, quick("dram-ps", 16)).Epoch
	ratio := float64(e16) / float64(e4)
	if ratio >= 0.5 {
		t.Fatalf("16 GPUs not faster enough: %.3f of 4-GPU epoch", ratio)
	}
	if ratio <= 0.25 {
		t.Fatalf("scaling unrealistically linear: %.3f", ratio)
	}
}

// TestOriCacheDegradesWithGPUs: the black-box cache's gap to DRAM-PS grows
// with worker count (Observation 1).
func TestOriCacheDegradesWithGPUs(t *testing.T) {
	gap := func(g int) float64 {
		d := run(t, quick("dram-ps", g)).AvgBatch
		o := run(t, quick("ori-cache", g)).AvgBatch
		return float64(o) / float64(d)
	}
	g4, g16 := gap(4), gap(16)
	if g16 <= g4 {
		t.Fatalf("Ori-Cache gap did not grow: %.3f at 4 GPUs, %.3f at 16", g4, g16)
	}
}

// TestPipelineHidesMaintenance: PMem-OE's maintenance fits inside the GPU
// phase (the core of Sec. V-A).
func TestPipelineHidesMaintenance(t *testing.T) {
	res := run(t, quick("pmem-oe", 8))
	if res.Phases.Maint >= GPUBatchTime {
		t.Fatalf("maintenance %v not hidden behind GPU %v", res.Phases.Maint, GPUBatchTime)
	}
	if res.Phases.Maint == 0 {
		t.Fatal("no maintenance work measured")
	}
}

// TestAblationOrdering reproduces Fig. 9's ordering: enabling either
// mechanism helps; pipeline helps more; both help most.
func TestAblationOrdering(t *testing.T) {
	variant := func(cacheOff, pipeOff bool) time.Duration {
		cfg := quick("pmem-oe", 8)
		cfg.CacheDisabled = cacheOff
		cfg.PipelineDisabled = pipeOff
		return run(t, cfg).AvgBatch
	}
	neither := variant(true, true)
	cacheOnly := variant(false, true)
	pipeOnly := variant(true, false)
	both := variant(false, false)
	if !(both < pipeOnly && pipeOnly < cacheOnly && cacheOnly < neither) {
		t.Fatalf("ablation ordering violated: both=%v pipe=%v cache=%v neither=%v",
			both, pipeOnly, cacheOnly, neither)
	}
}

// TestMissRateFallsWithCacheSize reproduces Fig. 8's monotonicity.
func TestMissRateFallsWithCacheSize(t *testing.T) {
	var prev float64 = 2
	for _, bytes := range []int64{10 << 20, 400 << 20, 4 << 30} {
		cfg := quick("pmem-oe", 8)
		cfg.CacheBytes = bytes
		res := run(t, cfg)
		if res.MissRate >= prev {
			t.Fatalf("miss rate not decreasing: %v at %d bytes (prev %v)", res.MissRate, bytes, prev)
		}
		prev = res.MissRate
	}
}

// TestCheckpointOverheadOrdering reproduces Fig. 12's ordering: sparse-only
// ~ none < proposed << incremental.
func TestCheckpointOverheadOrdering(t *testing.T) {
	base := quick("pmem-oe", 8)
	base.MeasureBatches = 30
	none := run(t, base).AvgBatch

	withKind := func(k CheckpointKind) time.Duration {
		cfg := base
		cfg.Checkpoint = k
		cfg.CheckpointIntervalMinutes = 5 // 15 sim batches
		return run(t, cfg).AvgBatch
	}
	proposed := withKind(CkptProposed)
	sparse := withKind(CkptSparseOnly)
	incremental := withKind(CkptIncremental)

	if float64(sparse) > float64(none)*1.02 {
		t.Fatalf("sparse-only overhead too high: %v vs %v", sparse, none)
	}
	if proposed <= none || incremental <= proposed {
		t.Fatalf("overhead ordering violated: none=%v proposed=%v incremental=%v", none, proposed, incremental)
	}
	if float64(proposed) > float64(none)*1.1 {
		t.Fatalf("proposed checkpoint overhead too high: %v vs %v", proposed, none)
	}
}

// TestCheckpointsComplete: the proposed checkpoints actually finish during
// simulated training (the functional mechanism, not just timing).
func TestCheckpointsComplete(t *testing.T) {
	cfg := quick("pmem-oe", 4)
	cfg.Checkpoint = CkptProposed
	cfg.CheckpointEveryBatches = 5
	cfg.MeasureBatches = 20
	res := run(t, cfg)
	if res.Ckpts < 3 {
		t.Fatalf("only %d checkpoints triggered", res.Ckpts)
	}
	if res.Stats.CheckpointsDone < 3 {
		t.Fatalf("only %d checkpoints completed", res.Stats.CheckpointsDone)
	}
}

// TestTFDegradesWithGPUsAndDim reproduces Fig. 15's two trends.
func TestTFDegradesWithGPUsAndDim(t *testing.T) {
	gap := func(g, dim int) float64 {
		cfgTF := quick("tf", g)
		cfgTF.Dim = dim
		cfgOE := quick("pmem-oe", g)
		cfgOE.Dim = dim
		return float64(run(t, cfgTF).AvgBatch) / float64(run(t, cfgOE).AvgBatch)
	}
	if g1, g4 := gap(1, 16), gap(4, 16); g4 <= g1 {
		t.Fatalf("TF gap did not grow with GPUs: %.3f -> %.3f", g1, g4)
	}
	if d16, d64 := gap(4, 16), gap(4, 64); d64 <= d16 {
		t.Fatalf("TF gap did not grow with dim: %.3f -> %.3f", d16, d64)
	}
}

func TestRecoveryTimesShape(t *testing.T) {
	ests := RecoveryTimes()
	if len(ests) != 3 {
		t.Fatalf("want 3 recovery estimates, got %d", len(ests))
	}
	ssd, pm, oe := ests[0].Total(), ests[1].Total(), ests[2].Total()
	if !(ssd > pm && pm > oe) {
		t.Fatalf("recovery ordering violated: %v %v %v", ssd, pm, oe)
	}
	speedup := ssd.Seconds() / oe.Seconds()
	if speedup < 3 || speedup > 5 {
		t.Fatalf("speedup %.2fx outside the paper's ~3.97x band", speedup)
	}
}

// TestExpectedUniqueMatchesMonteCarlo validates the analytic dirty-set
// estimator against direct sampling.
func TestExpectedUniqueMatchesMonteCarlo(t *testing.T) {
	const keys = 50_000
	for _, draws := range []int{10_000, 100_000} {
		s := workload.NewTableIISkew(keys, 3)
		counts := workload.CountAccesses(s, draws)
		mc := float64(len(counts))
		analytic := ExpectedUniqueTableII(float64(draws), keys)
		if math.Abs(analytic-mc)/mc > 0.15 {
			t.Fatalf("draws=%d: analytic %.0f vs monte-carlo %.0f", draws, analytic, mc)
		}
	}
	if got := ExpectedUniqueTableII(0, 100); got != 0 {
		t.Fatalf("zero draws -> %v uniques", got)
	}
	// Uniques never exceed the keyspace.
	if got := ExpectedUniqueTableII(1e12, 1000); got > 1000.5 {
		t.Fatalf("uniques %v exceed keyspace", got)
	}
}

func TestTracePairs(t *testing.T) {
	cfg := quick("pmem-oe", 4)
	cfg.RecordTrace = true
	res := run(t, cfg)
	pulls, pushes := res.Recorder.PairCounts()
	if pulls == 0 || pulls != pushes {
		t.Fatalf("pull/update pairs broken: %d vs %d", pulls, pushes)
	}
}

func TestStepsPerEpoch(t *testing.T) {
	if s4, s16 := StepsPerEpoch(4), StepsPerEpoch(16); s4 != 4*s16 {
		t.Fatalf("steps not inversely proportional to GPUs: %d vs %d", s4, s16)
	}
}

func TestCacheEntriesForBytesClamp(t *testing.T) {
	if got := CacheEntriesForBytes(1); got != 4 {
		t.Fatalf("tiny cache = %d entries, want clamp to 4", got)
	}
	if CacheEntriesForBytes(2<<30) <= CacheEntriesForBytes(1<<30) {
		t.Fatal("cache entries not monotone in bytes")
	}
}

func TestUnknownEngine(t *testing.T) {
	if _, err := Run(Config{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestPhaseTimeResources(t *testing.T) {
	// More nodes must not slow a phase down.
	cfg := quick("dram-ps", 4)
	res := run(t, cfg)
	if res.AvgBatch <= 0 || res.Epoch <= 0 {
		t.Fatal("non-positive times")
	}
}
