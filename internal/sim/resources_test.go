package sim

import (
	"testing"
	"time"

	"openembedding/internal/simclock"
)

func snapshotWith(c simclock.Category, d time.Duration) simclock.Snapshot {
	m := simclock.NewMeter()
	m.Charge(c, d)
	return m.Snapshot()
}

func TestPhaseTimeParallelism(t *testing.T) {
	r := Resources{Nodes: 2, ThreadsPerNode: 8, PMemConcurrency: 1, Workers: 4}
	cpu := snapshotWith(simclock.Compute, 160*time.Millisecond)
	if got := PhaseTime(cpu, r, 1); got != 10*time.Millisecond {
		t.Fatalf("cpu demand split wrong: %v", got)
	}
	pm := snapshotWith(simclock.PMemRead, 10*time.Millisecond)
	if got := PhaseTime(pm, r, 1); got != 5*time.Millisecond {
		t.Fatalf("pmem demand split wrong: %v", got)
	}
}

func TestPhaseTimeGlobalConvoy(t *testing.T) {
	gl := snapshotWith(simclock.GlobalSync, 10*time.Millisecond)
	small := PhaseTime(gl, Resources{Nodes: 1, ThreadsPerNode: 8, PMemConcurrency: 1, Workers: 4}, 1)
	big := PhaseTime(gl, Resources{Nodes: 1, ThreadsPerNode: 8, PMemConcurrency: 1, Workers: 16}, 1)
	if big <= small {
		t.Fatalf("global convoy did not grow with workers: %v vs %v", small, big)
	}
	// Adding nodes must NOT help globally-serialized demand.
	moreNodes := PhaseTime(gl, Resources{Nodes: 4, ThreadsPerNode: 8, PMemConcurrency: 1, Workers: 4}, 1)
	if moreNodes != small {
		t.Fatalf("global demand parallelized across nodes: %v vs %v", moreNodes, small)
	}
}

func TestPhaseTimeTakesMax(t *testing.T) {
	m := simclock.NewMeter()
	m.Charge(simclock.Compute, 16*time.Millisecond) // /16 threads -> 1ms
	m.Charge(simclock.PMemRead, 5*time.Millisecond) // /1 -> 5ms
	r := Resources{Nodes: 1, ThreadsPerNode: 16, PMemConcurrency: 1, Workers: 1}
	if got := PhaseTime(m.Snapshot(), r, 1); got != 5*time.Millisecond {
		t.Fatalf("phase time = %v, want the slower class (5ms)", got)
	}
}

func TestPhaseTimeScaleUp(t *testing.T) {
	r := Resources{Nodes: 1, ThreadsPerNode: 1, PMemConcurrency: 1, Workers: 1}
	d := snapshotWith(simclock.Compute, time.Millisecond)
	if got := PhaseTime(d, r, 10); got != 10*time.Millisecond {
		t.Fatalf("scale-up ignored: %v", got)
	}
}

func TestResourcesFor(t *testing.T) {
	if r := resourcesFor("dram-ps", 8); r.Nodes != DRAMPSNodes || r.Workers != 8 {
		t.Fatalf("dram-ps resources = %+v", r)
	}
	if r := resourcesFor("pmem-oe", 4); r.Nodes != PMemNodes {
		t.Fatalf("pmem-oe resources = %+v", r)
	}
	if r := resourcesFor("tf", 4); r.Nodes != DRAMPSNodes {
		t.Fatalf("tf resources = %+v", r)
	}
}

func TestNetTimeBottlenecks(t *testing.T) {
	// With one PS node, the PS side carries everything; with more GPUs the
	// worker side spreads over more machines, so PS-side dominates.
	oneNode := netTime(100<<20, 16, 1)
	twoNodes := netTime(100<<20, 16, 2)
	if twoNodes >= oneNode {
		t.Fatalf("more PS nodes did not reduce wire time: %v vs %v", twoNodes, oneNode)
	}
}

func TestAllreduce(t *testing.T) {
	if got := allreduceTime(1<<20, 1); got != 0 {
		t.Fatalf("single-GPU allreduce = %v", got)
	}
	// Multi-machine slower than intra-machine for the same payload.
	intra := allreduceTime(1<<20, 4) // one machine
	inter := allreduceTime(1<<20, 8) // two machines
	if intra >= inter {
		t.Fatalf("intra-machine allreduce (%v) should beat inter-machine (%v)", intra, inter)
	}
}
