package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// BenchResult is one benchmark measurement in a BenchReport.
type BenchResult struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	N           int                `json:"n,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the machine-readable benchmark artifact the harness emits
// (BENCH_<pr>.json): environment provenance plus a list of results, so CI
// can archive per-PR performance trajectories.
type BenchReport struct {
	PR        string        `json:"pr"`
	CreatedAt time.Time     `json:"created_at"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Results   []BenchResult `json:"results"`
}

// NewBenchReport returns an empty report stamped with the runtime
// environment.
func NewBenchReport(pr string) *BenchReport {
	return &BenchReport{
		PR:        pr,
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// Add appends one result.
func (r *BenchReport) Add(res BenchResult) { r.Results = append(r.Results, res) }

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchReport loads a report written by WriteFile.
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
