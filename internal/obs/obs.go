// Package obs is the repository's low-overhead observability subsystem:
// a metrics registry (atomic counters, gauges and fixed-bucket log-scale
// latency histograms), a bounded span-tracing ring dumpable as Chrome
// trace_event JSON (span.go), and exporters (http.go, bench.go).
//
// Design constraints, in order:
//
//  1. The record path is allocation-free and lock-free: Counter, Gauge and
//     Histogram update through sync/atomic only. Call sites resolve their
//     metric handles once at construction time, so recording never touches
//     the registry mutex. The registry mutex guards only the name→metric
//     maps and carries oevet:lockrank 4 — strictly below every engine lock
//     (core.shard.mu is rank 10) — so obs can never participate in an
//     engine deadlock; in practice no engine lock is ever held around a
//     registry call.
//
//  2. Everything is nil-safe. A nil *Registry hands out nil metric handles,
//     and every method on a nil handle is a no-op, so instrumented code
//     needs no "is obs on?" branches: the disabled cost is a nil check.
//
//  3. Timestamps are cheap but not free (~40ns per clock read on a server
//     core), so the hottest paths (engine Pull) sample their latency
//     recording; see the overhead budget in DESIGN.md §9.
//
// The deterministic packages (internal/core, internal/sim,
// internal/experiments) must not read the wall clock themselves; they take
// timestamps through Registry.Now / EngineObs.Now, which keeps the
// determinism analyzer's contract intact because the readings are purely
// observational — they are exported, never fed back into engine behavior —
// and the simulated experiments run with obs disabled.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depth, open connections,
// signed skew).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative). Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry owns named metrics. Handles are resolved once (Counter, Gauge,
// Histogram) and then recorded through without any shared lock.
type Registry struct {
	epoch time.Time

	// mu guards only the name→metric maps below; it is never held while
	// recording and ranks below every engine lock so a registry call can
	// never invert the engine lock hierarchy.
	//
	// oevet:lockrank obs.registry.mu 4
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry whose clock epoch is "now".
func NewRegistry() *Registry {
	return &Registry{
		epoch:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Now returns the time elapsed since the registry was created, the
// timestamp base for every latency measurement recorded into it. A nil
// registry reads no clock and returns 0.
func (r *Registry) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch)
}

// Counter returns (creating if needed) the named counter, or nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge, or nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram, or nil on a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, JSON-encodable for the
// /metrics.json exporter and the oectl scraper.
type Snapshot struct {
	UptimeNS   int64                   `json:"uptime_ns"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Nil-safe (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	s.UptimeNS = int64(r.Now())
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WriteText renders the snapshot in a flat, Prometheus-compatible text
// form: one "name value" line per scalar, histograms expanded into
// _count/_sum/_max/_p50/_p95/_p99 series, all sorted by name.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+6*len(s.Histograms)+1)
	lines = append(lines, fmt.Sprintf("obs_uptime_ns %d", s.UptimeNS))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", k, h.Count),
			fmt.Sprintf("%s_sum %d", k, h.Sum),
			fmt.Sprintf("%s_max %d", k, h.Max),
			fmt.Sprintf("%s_p50 %d", k, h.P50),
			fmt.Sprintf("%s_p95 %d", k, h.P95),
			fmt.Sprintf("%s_p99 %d", k, h.P99))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders the snapshot for humans (oectl stats -obs): one line
// per histogram with percentiles, then gauges and counters, sorted within
// each section. Names ending in _ns format as durations, _bytes as sizes.
func (s Snapshot) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "uptime %v\n", time.Duration(s.UptimeNS).Round(time.Millisecond)); err != nil {
		return err
	}
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%-26s n=%-8d p50=%-10s p95=%-10s p99=%-10s max=%s\n",
			k, h.Count, fmtMetric(k, h.P50), fmtMetric(k, h.P95), fmtMetric(k, h.P99), fmtMetric(k, h.Max)); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%-26s %s\n", k, fmtMetric(k, s.Gauges[k])); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%-26s %s\n", k, fmtMetric(k, s.Counters[k])); err != nil {
			return err
		}
	}
	return nil
}

// fmtMetric formats a metric value by naming convention: _ns suffixes are
// durations, _bytes (or bytes_*) suffixes are sizes, the rest plain counts.
func fmtMetric(name string, v int64) string {
	switch {
	case strings.HasSuffix(name, "_ns"):
		d := time.Duration(v)
		switch {
		case d >= time.Second || d <= -time.Second:
			return d.Round(time.Millisecond).String()
		case d >= time.Millisecond || d <= -time.Millisecond:
			return d.Round(time.Microsecond).String()
		default:
			return d.String()
		}
	case strings.Contains(name, "bytes"):
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
		default:
			return fmt.Sprintf("%dB", v)
		}
	default:
		return fmt.Sprintf("%d", v)
	}
}
