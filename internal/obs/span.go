package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity is the span-ring size used by the binaries: enough
// for several thousand batches of the per-batch span tree before the ring
// starts dropping its oldest spans.
const DefaultTraceCapacity = 1 << 14

// SpanRecord is one completed span on the tracer's timeline. Start is
// relative to the tracer's epoch (or, for spans emitted with an explicit
// timestamp, to whatever virtual clock the emitter uses — the two are never
// mixed inside one tracer). Dur may be zero for instantaneous events.
type SpanRecord struct {
	Name  string        // what happened ("cluster.pull", "maint.drain", ...)
	Cat   string        // subsystem ("cluster", "engine", "train", ...)
	TID   int64         // timeline lane (node or shard index; 0 when unsheltered)
	Batch int64         // batch the span belongs to (-1 when none)
	Arg   int64         // optional numeric payload
	ArgN  string        // name of Arg ("keys", "bytes", ...); empty when unused
	Start time.Duration // span start on the tracer's timeline
	Dur   time.Duration // span duration (0 for point events)
}

// Tracer is a bounded ring of completed spans. Emitting is one short
// critical section on a leaf mutex; when the ring is full the oldest span
// is overwritten (the Dropped counter reports how many were lost). All
// methods are safe on a nil receiver.
type Tracer struct {
	epoch time.Time
	cap   int

	// mu guards the ring. Like the registry mutex it is a leaf ranked
	// below every engine lock, and span bookkeeping never acquires
	// anything else while holding it.
	//
	// oevet:lockrank obs.tracer.mu 5
	mu      sync.Mutex
	ring    []SpanRecord // grows to cap, then wraps
	next    int          // ring insertion cursor once len(ring) == cap
	total   int64        // spans ever emitted
	dropped int64        // spans overwritten
}

// NewTracer returns a tracer whose ring holds up to capacity spans
// (DefaultTraceCapacity when capacity <= 0). Ring memory grows with use up
// to the bound; an idle tracer costs almost nothing.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), cap: capacity}
}

// Now returns the time elapsed since the tracer was created (0 on nil).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Emit appends a completed span record. Use this directly when the caller
// owns the timestamps (the virtual-time trace.Recorder does); wall-clock
// spans use Start/End instead.
func (t *Tracer) Emit(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % t.cap
		t.dropped++
	}
	t.total++
	t.mu.Unlock()
}

// Span is an in-flight span handle. The zero Span (from a nil tracer) is
// valid and its End is a no-op, so callers never branch on "tracing on?".
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int64
	batch int64
	start time.Duration
}

// Start opens a span on the tracer's wall-clock timeline.
func (t *Tracer) Start(name, cat string, tid, batch int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, batch: batch, start: t.Now()}
}

// End closes the span and commits it to the ring.
func (s Span) End() { s.EndArg("", 0) }

// EndArg closes the span attaching a named numeric payload.
func (s Span) EndArg(argName string, arg int64) {
	if s.t == nil {
		return
	}
	s.t.Emit(SpanRecord{
		Name:  s.name,
		Cat:   s.cat,
		TID:   s.tid,
		Batch: s.batch,
		Arg:   arg,
		ArgN:  argName,
		Start: s.start,
		Dur:   s.t.Now() - s.start,
	})
}

// Spans returns the ring contents, oldest first. Nil-safe (returns nil).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) == t.cap {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dropped returns how many spans the ring has overwritten (0 on nil).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one trace_event in Chrome's JSON trace format: complete
// events ("ph":"X") with microsecond timestamps, loadable by
// chrome://tracing and https://ui.perfetto.dev.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	PID  int              `json:"pid"`
	TID  int64            `json:"tid"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace dumps the ring as Chrome trace_event JSON. A nil tracer
// writes an empty (still loadable) trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			PID:  1,
			TID:  s.TID,
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
		}
		args := map[string]int64{}
		if s.Batch >= 0 {
			args["batch"] = s.Batch
		}
		if s.ArgN != "" {
			args[s.ArgN] = s.Arg
		}
		if len(args) > 0 {
			ev.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
