package obs

import (
	"encoding/json"
	"net/http"
)

// Handler exposes the registry and tracer over HTTP:
//
//	/metrics       flat text (Prometheus-compatible "name value" lines)
//	/metrics.json  the full Snapshot as JSON (what oectl stats scrapes)
//	/debug/obs     the span ring as Chrome trace_event JSON — save it and
//	               load into chrome://tracing or ui.perfetto.dev
//
// Either argument may be nil; the corresponding endpoints serve empty but
// well-formed documents.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	})
	return mux
}
