package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var reg *Registry
	if got := reg.Counter("x"); got != nil {
		t.Fatalf("nil registry handed out a counter: %v", got)
	}
	if got := reg.Now(); got != 0 {
		t.Fatalf("nil registry Now() = %v, want 0", got)
	}
	var c *Counter
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil histogram accumulated")
	}
	var tr *Tracer
	sp := tr.Start("x", "y", 0, 0)
	sp.End()
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer accumulated")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer chrome trace: %v", err)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("a")
	c2 := reg.Counter("a")
	if c1 != c2 {
		t.Fatal("same name resolved to different counters")
	}
	c1.Add(2)
	c2.Add(3)
	if got := reg.Counter("a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	reg.Gauge("g").Set(7)
	reg.Gauge("g").Add(1)
	if got := reg.Gauge("g").Value(); got != 8 {
		t.Fatalf("gauge = %d, want 8", got)
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Fatal("same name resolved to different histograms")
	}
}

func TestBucketIndexMonotoneAndInvertible(t *testing.T) {
	// Exact buckets below 8.
	for v := int64(0); v < 8; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
	}
	// Monotone, and bucketLow is a true lower bound, across magnitudes.
	prev := -1
	for _, v := range []int64{8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1 << 40, 1<<62 + 1} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
		if lo := bucketLow(idx); lo > v {
			t.Fatalf("bucketLow(%d) = %d > value %d", idx, lo, v)
		}
		if idx+1 < histBuckets {
			if hi := bucketLow(idx + 1); hi <= v {
				t.Fatalf("value %d not below next bucket low %d", v, hi)
			}
		}
	}
	if idx := bucketIndex(1<<63 - 1); idx >= histBuckets {
		t.Fatalf("max value bucket %d out of range", idx)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1000 observations of 1ms, 100 of 10ms, 10 of 100ms.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1110 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != int64(100*time.Millisecond) {
		t.Fatalf("max = %d", s.Max)
	}
	within := func(name string, got, want int64) {
		t.Helper()
		lo, hi := want-want/8, want+want/8
		if got < lo || got > hi {
			t.Fatalf("%s = %d, want within 12.5%% of %d", name, got, want)
		}
	}
	within("p50", s.P50, int64(time.Millisecond))
	within("p95", s.P95, int64(10*time.Millisecond))
	// p99 falls in the 10ms cohort (rank 1099 of 1110).
	within("p99", s.P99, int64(10*time.Millisecond))
	if mean := s.Mean(); mean < float64(time.Millisecond) || mean > float64(5*time.Millisecond) {
		t.Fatalf("mean = %f out of range", mean)
	}
}

func TestHistogramQuantileVsExact(t *testing.T) {
	h := &Histogram{}
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 1e6)
		vals = append(vals, v)
		h.ObserveValue(v)
	}
	s := h.Snapshot()
	exact := func(q float64) int64 {
		sorted := append([]int64(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		return sorted[int(q*float64(len(sorted)))]
	}
	for _, tc := range []struct {
		name string
		got  int64
		q    float64
	}{{"p50", s.P50, 0.50}, {"p95", s.P95, 0.95}, {"p99", s.P99, 0.99}} {
		want := exact(tc.q)
		if tc.got < want*3/4 || tc.got > want*5/4 {
			t.Errorf("%s = %d, exact %d (off by more than 25%%)", tc.name, tc.got, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveValue(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Max != workers*per-1 {
		t.Fatalf("max = %d, want %d", s.Max, workers*per-1)
	}
}

func TestObserveAllocationFree(t *testing.T) {
	h := &Histogram{}
	c := &Counter{}
	g := &Gauge{}
	if n := testing.AllocsPerRun(1000, func() {
		h.ObserveValue(12345)
		c.Add(1)
		g.Set(3)
	}); n != 0 {
		t.Fatalf("record path allocates: %v allocs/op", n)
	}
}

func TestSnapshotText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rpc_client_bytes_out").Add(512)
	reg.Gauge("rpc_server_conns").Set(3)
	reg.Histogram("engine_pull_ns").Observe(42 * time.Microsecond)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"rpc_client_bytes_out 512",
		"rpc_server_conns 3",
		"engine_pull_ns_count 1",
		"engine_pull_ns_p99 ",
		"obs_uptime_ns ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Sorted output: lines must be nondecreasing.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("text output not sorted at line %d: %q < %q", i, lines[i], lines[i-1])
		}
	}
}

func TestTracerRingWrapAndOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Emit(SpanRecord{Name: "e", Batch: int64(i), Start: time.Duration(i)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := int64(i + 3); s.Batch != want {
			t.Fatalf("span %d batch = %d, want %d (oldest-first order)", i, s.Batch, want)
		}
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestSpanStartEnd(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("cluster.pull", "cluster", 2, 9)
	time.Sleep(time.Millisecond)
	sp.EndArg("keys", 64)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Name != "cluster.pull" || s.Cat != "cluster" || s.TID != 2 || s.Batch != 9 || s.Arg != 64 || s.ArgN != "keys" {
		t.Fatalf("span fields wrong: %+v", s)
	}
	if s.Dur < time.Millisecond/2 {
		t.Fatalf("span duration %v too short", s.Dur)
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Start("maint.drain", "engine", 1, 3).EndArg("entries", 17)
	tr.Emit(SpanRecord{Name: "pull", Cat: "psreq", Batch: 5, Arg: 64, ArgN: "requests", Start: 2 * time.Millisecond})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "cat", "ph", "pid", "tid", "ts", "dur"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("trace event missing %q: %v", field, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("phase = %v, want X", ev["ph"])
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine_ckpt_flush_bytes").Add(4096)
	reg.Histogram("engine_pull_ns").Observe(time.Millisecond)
	tr := NewTracer(8)
	tr.Start("train.batch", "train", 0, 1).End()
	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return buf.String()
	}

	if text := get("/metrics"); !strings.Contains(text, "engine_ckpt_flush_bytes 4096") {
		t.Errorf("/metrics missing counter:\n%s", text)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters["engine_ckpt_flush_bytes"] != 4096 {
		t.Errorf("/metrics.json counter = %d", snap.Counters["engine_ckpt_flush_bytes"])
	}
	if snap.Histograms["engine_pull_ns"].Count != 1 {
		t.Errorf("/metrics.json histogram count = %d", snap.Histograms["engine_pull_ns"].Count)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/debug/obs")), &doc); err != nil {
		t.Fatalf("/debug/obs: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Errorf("/debug/obs has %d events, want 1", len(doc.TraceEvents))
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	r := NewBenchReport("pr3")
	r.Add(BenchResult{Name: "engine_pull/obs=off", NsPerOp: 920.5, N: 100000})
	r.Add(BenchResult{
		Name:    "engine_pull/obs=on",
		NsPerOp: 940.1,
		Metrics: map[string]float64{"overhead_pct": 2.1},
	})
	path := filepath.Join(t.TempDir(), "BENCH_pr3.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.PR != "pr3" || len(got.Results) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Results[1].Metrics["overhead_pct"] != 2.1 {
		t.Fatalf("metrics lost: %+v", got.Results[1])
	}
	if got.GoVersion == "" || got.CPUs == 0 {
		t.Fatalf("environment provenance missing: %+v", got)
	}
}
