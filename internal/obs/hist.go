package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of every histogram: values 0..7 get
// exact buckets, and each further power of two is split into 4 quarter-octave
// sub-buckets, so the relative quantization error is bounded by ~12.5% across
// the full non-negative int64 range (1ns .. ~9.2s when recording
// nanoseconds, and equally fine for plain values such as fan-out widths).
//
// Index layout: idx = v for v < 8; otherwise with o = floor(log2 v) >= 3,
// idx = 4*(o-1) + ((v >> (o-2)) & 3). The top octave (o = 62) ends at
// index 247.
const histBuckets = 248

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 8 {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1
	return 4*(o-1) + int((uint64(v)>>(o-2))&3)
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	o := idx/4 + 1
	sub := idx % 4
	return int64(4+sub) << (o - 2)
}

// bucketMid returns a representative value for bucket idx (the midpoint of
// its range), used when reporting quantiles.
func bucketMid(idx int) int64 {
	lo := bucketLow(idx)
	if idx+1 >= histBuckets {
		return lo
	}
	hi := bucketLow(idx + 1)
	return lo + (hi-lo)/2
}

// Histogram is a fixed-size log-scale histogram. Observations are three
// atomic adds plus (rarely) a CAS to track the max; no allocation, no lock.
// All methods are safe on a nil receiver, so disabled instrumentation costs
// a nil check.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records a duration (negative values clamp to zero).
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(int64(d)) }

// ObserveValue records a raw value (negative values clamp to zero).
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is a point-in-time summary of one histogram. Quantiles come
// from the log-scale buckets, so they carry the bucket quantization error
// (<= ~12.5% relative); Max is exact.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot summarizes the histogram. Nil-safe (returns a zero snapshot).
// Concurrent observations may tear between buckets and the count; each
// quantile is computed against the bucket sum actually captured, so the
// result is always internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if total == 0 {
		return s
	}
	quantile := func(q float64) int64 {
		target := int64(q * float64(total))
		if target < 1 {
			target = 1
		}
		var cum int64
		for i := range counts {
			cum += counts[i]
			if cum >= target {
				v := bucketMid(i)
				if v > s.Max && s.Max > 0 {
					v = s.Max // never report beyond the exact max
				}
				return v
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	return s
}
