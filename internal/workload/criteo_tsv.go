package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CriteoTSV streams samples from the real Criteo display-advertising
// dataset (the Kaggle/Terabyte TSV format the paper evaluates on in
// Sec. VI-F): one example per line, tab-separated —
//
//	label \t I1..I13 (integer features) \t C1..C26 (hex categorical ids)
//
// with empty fields for missing values. Categorical values are hashed into
// per-field key ranges of the given cardinality, integer features get the
// standard log(1+x) transform, so the output Samples are drop-in
// replacements for the synthetic generator's.
type CriteoTSV struct {
	scanner   *bufio.Scanner
	fieldCard int
	offsets   [CriteoNumSparse]uint64
	line      int
}

// NewCriteoTSV wraps a TSV stream. fieldCardinality bounds each field's
// hashed id range (the "hashing trick"; 1e6 is the common choice).
func NewCriteoTSV(r io.Reader, fieldCardinality int) *CriteoTSV {
	if fieldCardinality <= 0 {
		fieldCardinality = 1 << 20
	}
	c := &CriteoTSV{
		scanner:   bufio.NewScanner(r),
		fieldCard: fieldCardinality,
	}
	c.scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for f := 0; f < CriteoNumSparse; f++ {
		c.offsets[f] = uint64(f) * uint64(fieldCardinality)
	}
	return c
}

// Keys returns the total embedding key space (26 * fieldCardinality).
func (c *CriteoTSV) Keys() int { return CriteoNumSparse * c.fieldCard }

// Next parses one sample. It returns io.EOF at end of stream and a
// descriptive error on malformed lines.
func (c *CriteoTSV) Next() (Sample, error) {
	var s Sample
	if !c.scanner.Scan() {
		if err := c.scanner.Err(); err != nil {
			return s, fmt.Errorf("workload: criteo tsv: %w", err)
		}
		return s, io.EOF
	}
	c.line++
	fields := strings.Split(c.scanner.Text(), "\t")
	if len(fields) != 1+CriteoNumDense+CriteoNumSparse {
		return s, fmt.Errorf("workload: criteo tsv line %d: %d fields, want %d",
			c.line, len(fields), 1+CriteoNumDense+CriteoNumSparse)
	}
	switch fields[0] {
	case "1":
		s.Label = 1
	case "0", "":
		s.Label = 0
	default:
		return s, fmt.Errorf("workload: criteo tsv line %d: bad label %q", c.line, fields[0])
	}
	for i := 0; i < CriteoNumDense; i++ {
		raw := fields[1+i]
		if raw == "" {
			continue // missing: stays 0
		}
		v, err := strconv.ParseFloat(raw, 32)
		if err != nil {
			return s, fmt.Errorf("workload: criteo tsv line %d: dense I%d %q", c.line, i+1, raw)
		}
		if v < 0 {
			v = 0 // the dataset has a few negatives; clamp like most pipelines
		}
		s.Dense[i] = float32(math.Log1p(v))
	}
	for f := 0; f < CriteoNumSparse; f++ {
		raw := fields[1+CriteoNumDense+f]
		var id uint64
		if raw != "" {
			h, err := strconv.ParseUint(raw, 16, 64)
			if err != nil {
				// Some exports carry arbitrary strings; hash the bytes.
				h = hashString(raw)
			}
			id = mix64(h) % uint64(c.fieldCard)
		}
		s.Sparse[f] = c.offsets[f] + id
	}
	return s, nil
}

// NextBatch reads up to n samples, stopping early at EOF. It returns an
// empty slice (and nil error) when the stream is exhausted.
func (c *CriteoTSV) NextBatch(n int) ([]Sample, error) {
	out := make([]Sample, 0, n)
	for len(out) < n {
		s, err := c.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
