package workload

import (
	"testing"
	"time"
)

// The generator must be bit-deterministic under a fixed seed: same seed +
// same Advance/Sample sequence → same trace, per the faultdet rules.
func TestFlashCrowdDeterministic(t *testing.T) {
	mk := func() *FlashCrowd {
		return NewFlashCrowd(1<<16, 64, 0.9, time.Second, 42)
	}
	a, b := mk(), mk()
	for i := 0; i < 10_000; i++ {
		now := time.Duration(i) * 700 * time.Microsecond
		if ka, kb := a.SampleAt(now), b.SampleAt(now); ka != kb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ka, kb)
		}
	}
}

// Different seeds must give different crowds (sanity that the seed is
// actually wired through the hash).
func TestFlashCrowdSeedSensitivity(t *testing.T) {
	a := NewFlashCrowd(1<<16, 64, 0.9, time.Second, 1)
	b := NewFlashCrowd(1<<16, 64, 0.9, time.Second, 2)
	same := 0
	bs := make(map[uint64]struct{})
	for _, k := range b.HotSet() {
		bs[k] = struct{}{}
	}
	for _, k := range a.HotSet() {
		if _, ok := bs[k]; ok {
			same++
		}
	}
	if same == 64 {
		t.Fatal("seeds 1 and 2 produced identical hot sets")
	}
}

// The hot set must hold exactly `hot` distinct keys and absorb roughly
// hotShare of the draws.
func TestFlashCrowdHotShare(t *testing.T) {
	f := NewFlashCrowd(1<<20, 128, 0.8, time.Minute, 7)
	hs := f.HotSet()
	if len(hs) != 128 {
		t.Fatalf("hot set size %d, want 128", len(hs))
	}
	seen := make(map[uint64]struct{}, len(hs))
	for _, k := range hs {
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate hot key %d", k)
		}
		if k >= 1<<20 {
			t.Fatalf("hot key %d outside key space", k)
		}
		seen[k] = struct{}{}
	}
	const draws = 200_000
	hits := 0
	for i := 0; i < draws; i++ {
		if _, ok := seen[f.Sample()]; ok {
			hits++
		}
	}
	share := float64(hits) / draws
	// Uniform draws land in the tiny hot set with probability ~2^-13, so
	// the observed share is essentially the hot share.
	if share < 0.78 || share > 0.82 {
		t.Fatalf("hot share %.3f, want ≈0.80", share)
	}
}

// Rotation: advancing past the window boundary must swap the crowd; within
// a window it must not.
func TestFlashCrowdRotation(t *testing.T) {
	f := NewFlashCrowd(1<<20, 64, 1.0, time.Second, 9)
	w0 := f.HotSet()
	f.Advance(900 * time.Millisecond)
	mid := f.HotSet()
	for i := range w0 {
		if w0[i] != mid[i] {
			t.Fatal("hot set changed within a rotation window")
		}
	}
	f.Advance(1100 * time.Millisecond)
	w1 := f.HotSet()
	if f.Window() != 1 {
		t.Fatalf("window = %d, want 1", f.Window())
	}
	set0 := make(map[uint64]struct{}, len(w0))
	for _, k := range w0 {
		set0[k] = struct{}{}
	}
	overlap := 0
	for _, k := range w1 {
		if _, ok := set0[k]; ok {
			overlap++
		}
	}
	// 64 keys from 2^20: windows should be essentially disjoint.
	if overlap > 8 {
		t.Fatalf("windows 0 and 1 share %d of 64 keys", overlap)
	}
	// All traffic is hot (hotShare=1): every draw must come from the new crowd.
	set1 := make(map[uint64]struct{}, len(w1))
	for _, k := range w1 {
		set1[k] = struct{}{}
	}
	for i := 0; i < 1000; i++ {
		k := f.Sample()
		if _, ok := set1[k]; !ok {
			t.Fatalf("draw %d key %d not in the rotated hot set", i, k)
		}
	}
}

// Advance must be monotone: a stale (earlier) timestamp cannot rewind the
// clock and resurrect an old crowd.
func TestFlashCrowdMonotoneClock(t *testing.T) {
	f := NewFlashCrowd(1<<16, 16, 1.0, time.Second, 3)
	f.Advance(2500 * time.Millisecond)
	w := f.Window()
	f.Advance(100 * time.Millisecond) // stale
	if f.Window() != w {
		t.Fatalf("window rewound from %d to %d", w, f.Window())
	}
}
