package workload

import (
	"math"
	"math/rand"
)

// CriteoNumDense and CriteoNumSparse mirror the Criteo Kaggle display-ads
// schema used in Sec. VI-F: 13 dense (integer) features and 26 categorical
// fields.
const (
	CriteoNumDense  = 13
	CriteoNumSparse = 26
)

// criteoCardinalities approximates the per-field vocabulary sizes of the
// Criteo Kaggle dataset (a mix of tiny fields — weekday-like — and
// multi-million-ID fields), scaled by CriteoConfig.Scale.
var criteoCardinalities = [CriteoNumSparse]int{
	1460, 584, 1000000, 800000, 306, 24,
	12518, 634, 4, 93146, 5684, 1000000,
	3195, 28, 14993, 500000, 11, 5653,
	2173, 4, 1000000, 18, 16, 300000,
	105, 142572,
}

// CriteoConfig configures the synthetic Criteo generator.
type CriteoConfig struct {
	// Scale multiplies every field cardinality (use < 1 to shrink the
	// embedding table for laptop-scale runs). Defaults to 1.
	Scale float64
	// Seed drives the hidden label model. Generators that must agree on
	// what a click is — every worker of one training job, and its held-out
	// evaluation stream — share the same Seed.
	Seed int64
	// StreamSeed drives feature sampling; distinct StreamSeeds give
	// distinct sample streams under the same labeling function. Defaults
	// to Seed+1.
	StreamSeed int64
	// FieldSkew is the per-field popularity decay (exponential lambda);
	// real CTR categorical values are heavily skewed. Defaults to 8.
	FieldSkew float64
}

// CriteoSynthetic generates labeled CTR samples with the Criteo schema:
// 13 dense features, 26 categorical IDs (field-offset so every field owns a
// disjoint key range), and a click label drawn from a hidden logistic model
// over the features — so a real model trained on the stream measurably
// learns (loss decreases, AUC exceeds 0.5).
type CriteoSynthetic struct {
	cfg     CriteoConfig
	cards   [CriteoNumSparse]int
	offsets [CriteoNumSparse]uint64
	total   uint64
	rng     *rand.Rand
	// hidden model: one weight per (field, bucketed id) plus dense weights
	fieldW [CriteoNumSparse][]float32
	denseW [CriteoNumDense]float32
}

// hiddenBuckets bounds the hidden model's per-field weight table; ids are
// bucketed into it so huge vocabularies don't need huge hidden models.
const hiddenBuckets = 128

// NewCriteo builds a generator.
func NewCriteo(cfg CriteoConfig) *CriteoSynthetic {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.FieldSkew <= 0 {
		cfg.FieldSkew = 8
	}
	if cfg.StreamSeed == 0 {
		cfg.StreamSeed = cfg.Seed + 1
	}
	// The hidden label model comes from Seed; the sample stream below is
	// re-seeded from StreamSeed once the model weights are drawn.
	g := &CriteoSynthetic{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	var off uint64
	for f, c := range criteoCardinalities {
		n := int(math.Max(2, float64(c)*cfg.Scale))
		g.cards[f] = n
		g.offsets[f] = off
		off += uint64(n)
		w := make([]float32, hiddenBuckets)
		for i := range w {
			w[i] = float32(g.rng.NormFloat64()) * 0.7
		}
		g.fieldW[f] = w
	}
	g.total = off
	for i := range g.denseW {
		g.denseW[i] = float32(g.rng.NormFloat64()) * 0.3
	}
	g.rng = rand.New(rand.NewSource(cfg.StreamSeed))
	return g
}

// Keys returns the total embedding-table size (sum of field cardinalities).
func (g *CriteoSynthetic) Keys() int { return int(g.total) }

// Sample is one labeled CTR example.
type Sample struct {
	// Dense holds the 13 continuous features (already log-normalized).
	Dense [CriteoNumDense]float32
	// Sparse holds one embedding key per categorical field, offset into the
	// global key space.
	Sparse [CriteoNumSparse]uint64
	// Label is 1 for click, 0 otherwise.
	Label float32
}

// Next generates one sample.
func (g *CriteoSynthetic) Next() Sample {
	var s Sample
	logit := float32(-1.0) // base click rate below 50%
	for i := range s.Dense {
		v := float32(math.Abs(g.rng.NormFloat64()))
		s.Dense[i] = v
		logit += g.denseW[i] * v
	}
	for f := 0; f < CriteoNumSparse; f++ {
		id := g.sampleField(f)
		s.Sparse[f] = g.offsets[f] + uint64(id)
		logit += g.fieldW[f][id%hiddenBuckets]
	}
	p := 1 / (1 + math.Exp(-float64(logit)))
	if g.rng.Float64() < p {
		s.Label = 1
	}
	return s
}

// sampleField draws a value id within field f with exponential popularity
// decay.
func (g *CriteoSynthetic) sampleField(f int) int {
	n := g.cards[f]
	lambda := g.cfg.FieldSkew
	u := g.rng.Float64()
	norm := 1 - math.Exp(-lambda)
	x := -math.Log(1-u*norm) / lambda
	id := int(x * float64(n))
	if id >= n {
		id = n - 1
	}
	return id
}

// NextBatch generates n samples.
func (g *CriteoSynthetic) NextBatch(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// UniqueKeys returns the deduplicated embedding keys referenced by a batch
// of samples — what the worker pulls from the parameter server.
func UniqueKeys(batch []Sample) []uint64 {
	seen := make(map[uint64]struct{}, len(batch)*CriteoNumSparse)
	keys := make([]uint64, 0, len(batch)*CriteoNumSparse)
	for i := range batch {
		for _, k := range batch[i].Sparse {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	return keys
}
