// Package workload generates the DLRM access traces the evaluation runs
// on. The paper's production trace (2.1 B embedding entries, 147 days of a
// retail recommender) is proprietary; this package substitutes generators
// that reproduce its *published* statistics — the Table II access skew, the
// exponential rank-frequency decay of Fig. 10, and the Criteo-Kaggle schema
// used in Sec. VI-F — which are the only properties the experiments consume.
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// KeySampler draws embedding-entry IDs with a configured popularity
// distribution. Implementations are not safe for concurrent use; create one
// per worker with distinct seeds.
type KeySampler interface {
	// Sample returns one key.
	Sample() uint64
	// Keys returns the size of the key space.
	Keys() int
}

// scatter maps a popularity rank to a key. The identity is used: engines
// treat keys as opaque and hash them before sharding, so contiguous hot
// ranks cost nothing, and keeping the mapping trivial lets analyses relate
// keys back to ranks directly.
func scatter(rank, _ int) uint64 { return uint64(rank) }

// TableIIAnchors are the paper's measured cumulative access shares:
// the top 0.05% / 0.1% / 1% of entries receive 85.7% / 89.5% / 95.7% of all
// accesses (Table II).
var TableIIAnchors = []struct {
	RankFrac float64
	CumShare float64
}{
	{0.0005, 0.857},
	{0.001, 0.895},
	{0.01, 0.957},
	{1.0, 1.0},
}

// TableIISkew samples keys with the production trace's skew: a piecewise
// log-linear (i.e., piecewise-exponential) rank CDF interpolated through
// the Table II anchors, which reproduces the published shares exactly.
type TableIISkew struct {
	n       int
	rng     *rand.Rand
	anchors []anchor
}

type anchor struct {
	RankFrac float64
	CumShare float64
}

// NewTableIISkew builds a sampler over n keys.
func NewTableIISkew(n int, seed int64) *TableIISkew {
	return NewTableIISkewAdjusted(n, 1.0, seed)
}

// NewTableIISkewAdjusted builds a Table II-shaped sampler whose tail mass
// is adjusted: each anchor's cumulative share cs becomes 1-(1-cs)^f. This
// is the reproduction of the paper's "more skew" (f > 1, smaller tail) and
// "less skew" (f < 1, heavier tail) workload variants (Fig. 10), which the
// paper generates by modifying the decay parameters while keeping total
// accesses constant.
func NewTableIISkewAdjusted(n int, tailFactor float64, seed int64) *TableIISkew {
	if n < 1 {
		panic("workload: need at least one key")
	}
	if tailFactor <= 0 {
		panic("workload: tail factor must be positive")
	}
	s := &TableIISkew{n: n, rng: rand.New(rand.NewSource(seed))}
	for _, a := range TableIIAnchors {
		s.anchors = append(s.anchors, anchor{
			RankFrac: a.RankFrac,
			CumShare: 1 - math.Pow(1-a.CumShare, tailFactor),
		})
	}
	return s
}

// Keys implements KeySampler.
func (s *TableIISkew) Keys() int { return s.n }

// Sample implements KeySampler via inverse-CDF sampling of the piecewise
// distribution, then scattering the rank over the ID space.
func (s *TableIISkew) Sample() uint64 {
	u := s.rng.Float64()
	rank := rankForQuantile(u, s.n, s.anchors)
	return scatter(rank, s.n)
}

// rankForQuantile inverts the piecewise CDF: given a uniform u, return the
// popularity rank whose cumulative share covers u. Within each anchor
// segment the per-rank frequency is constant on a log scale, so the
// inverse interpolates rank fraction geometrically.
func rankForQuantile(u float64, n int, anchors []anchor) int {
	prevRF, prevCS := 0.0, 0.0
	for _, a := range anchors {
		if u <= a.CumShare || a.CumShare == 1.0 {
			// Interpolate rank fraction within [prevRF, a.RankFrac].
			span := a.CumShare - prevCS
			var t float64
			if span > 0 {
				t = (u - prevCS) / span
			}
			// Geometric interpolation of the rank fraction gives an
			// exponential-decay frequency profile inside the segment.
			lo := math.Max(prevRF, 1e-9)
			hi := math.Max(a.RankFrac, lo)
			rf := lo * math.Pow(hi/lo, t)
			if prevRF == 0 {
				// First segment: linear blend avoids collapsing all mass
				// onto rank 0.
				rf = t * a.RankFrac
			}
			rank := int(rf * float64(n))
			if rank >= n {
				rank = n - 1
			}
			if rank < 0 {
				rank = 0
			}
			return rank
		}
		prevRF, prevCS = a.RankFrac, a.CumShare
	}
	return n - 1
}

// ExpSkew samples keys whose rank-frequency follows the exponential decay
// of Fig. 10: freq(rank) ∝ exp(-lambda * rank / n). Larger lambda means
// more skew. The paper generates its "more skew" and "less skew" variants
// by changing the decay parameter while keeping total accesses constant —
// exactly what varying lambda does here.
type ExpSkew struct {
	n      int
	lambda float64
	rng    *rand.Rand
}

// NewExpSkew builds an exponential-decay sampler over n keys.
func NewExpSkew(n int, lambda float64, seed int64) *ExpSkew {
	if n < 1 || lambda <= 0 {
		panic("workload: need n >= 1 and lambda > 0")
	}
	return &ExpSkew{n: n, lambda: lambda, rng: rand.New(rand.NewSource(seed))}
}

// Keys implements KeySampler.
func (s *ExpSkew) Keys() int { return s.n }

// Sample implements KeySampler. The CDF of the (continuous relaxation of
// the) distribution is F(x) = (1-exp(-lambda*x/n))/(1-exp(-lambda)), whose
// inverse is sampled directly.
func (s *ExpSkew) Sample() uint64 {
	u := s.rng.Float64()
	norm := 1 - math.Exp(-s.lambda)
	x := -math.Log(1-u*norm) / s.lambda // in [0,1)
	rank := int(x * float64(s.n))
	if rank >= s.n {
		rank = s.n - 1
	}
	return scatter(rank, s.n)
}

// Lambda returns the decay parameter.
func (s *ExpSkew) Lambda() float64 { return s.lambda }

// UniformKeys samples keys uniformly — the no-skew control.
type UniformKeys struct {
	n   int
	rng *rand.Rand
}

// NewUniformKeys builds a uniform sampler over n keys.
func NewUniformKeys(n int, seed int64) *UniformKeys {
	return &UniformKeys{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Keys implements KeySampler.
func (s *UniformKeys) Keys() int { return s.n }

// Sample implements KeySampler.
func (s *UniformKeys) Sample() uint64 { return uint64(s.rng.Intn(s.n)) }

// Batch draws sample IDs from s until the batch holds `samples` draws, and
// returns the deduplicated key set — what a training worker actually sends
// in its pull request (each distinct embedding entry is looked up once per
// batch, however many inputs reference it).
func Batch(s KeySampler, samples int) []uint64 {
	seen := make(map[uint64]struct{}, samples)
	keys := make([]uint64, 0, samples)
	for i := 0; i < samples; i++ {
		k := s.Sample()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

// CountAccesses draws total samples and returns per-key access counts,
// the raw material of the Table II / Fig. 10 analyses.
func CountAccesses(s KeySampler, total int) map[uint64]int {
	counts := make(map[uint64]int)
	for i := 0; i < total; i++ {
		counts[s.Sample()]++
	}
	return counts
}

// TopShare computes, for each rank fraction in fracs, the fraction of all
// accesses received by the most-accessed keys in that fraction of the key
// space — the Table II statistic. keyspace is the total number of keys
// (touched or not).
func TopShare(counts map[uint64]int, keyspace int, fracs []float64) []float64 {
	freqs := make([]int, 0, len(counts))
	total := 0
	for _, c := range counts {
		freqs = append(freqs, c)
		total += c
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		top := int(f * float64(keyspace))
		if top > len(freqs) {
			top = len(freqs)
		}
		sum := 0
		for _, c := range freqs[:top] {
			sum += c
		}
		if total > 0 {
			out[i] = float64(sum) / float64(total)
		}
	}
	return out
}

// FitExponential fits freq(rank) = A * exp(-lambda * rank / n) to the
// observed counts by frequency-weighted least squares on log-frequency
// (the Fig. 10 fit) and returns lambda. Weighting by frequency makes the
// fit follow the head of the distribution — where the accesses are —
// instead of the long one-count tail.
func FitExponential(counts map[uint64]int, keyspace int) float64 {
	freqs := make([]float64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, float64(c))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(freqs)))
	var sw, sx, sy, sxx, sxy float64
	n := float64(keyspace)
	for i, f := range freqs {
		if f <= 0 {
			continue
		}
		w := f
		x := float64(i) / n
		y := math.Log(f)
		sw += w
		sx += w * x
		sy += w * y
		sxx += w * x * x
		sxy += w * x * y
	}
	if sw == 0 {
		return 0
	}
	denom := sw*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (sw*sxy - sx*sy) / denom
	return -slope
}
