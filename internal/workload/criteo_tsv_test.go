package workload

import (
	"io"
	"math"
	"strings"
	"testing"
)

// sampleTSV is three lines in the Criteo Kaggle format: label, 13 integer
// features (some missing), 26 hex categoricals (some missing).
func sampleTSV() string {
	dense := []string{"1", "", "5", "0", "1382", "4", "15", "2", "181", "", "2", "", "2"}
	cats := make([]string, CriteoNumSparse)
	for i := range cats {
		cats[i] = "68fd1e64"
	}
	cats[3] = "" // missing categorical
	line1 := "0\t" + strings.Join(dense, "\t") + "\t" + strings.Join(cats, "\t")
	line2 := strings.Replace(line1, "0\t", "1\t", 1)
	cats[5] = "not-hex-value" // arbitrary string fallback
	line3 := "0\t" + strings.Join(dense, "\t") + "\t" + strings.Join(cats, "\t")
	return line1 + "\n" + line2 + "\n" + line3 + "\n"
}

func TestCriteoTSVParsing(t *testing.T) {
	c := NewCriteoTSV(strings.NewReader(sampleTSV()), 1000)
	if c.Keys() != 26*1000 {
		t.Fatalf("Keys = %d", c.Keys())
	}
	s1, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Label != 0 {
		t.Fatalf("label = %v", s1.Label)
	}
	if s1.Dense[0] != float32(math.Log1p(1)) {
		t.Fatalf("dense[0] = %v", s1.Dense[0])
	}
	if s1.Dense[1] != 0 { // missing
		t.Fatalf("missing dense = %v", s1.Dense[1])
	}
	for f, k := range s1.Sparse {
		lo := uint64(f) * 1000
		if k < lo || k >= lo+1000 {
			t.Fatalf("field %d key %d outside its range", f, k)
		}
	}
	s2, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Label != 1 {
		t.Fatalf("label2 = %v", s2.Label)
	}
	// Same categorical value hashes to the same key, deterministically.
	if s1.Sparse[0] != s2.Sparse[0] {
		t.Fatal("same value hashed differently")
	}
	// Non-hex values fall back to string hashing without error.
	s3, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s3.Sparse[5] == s1.Sparse[5] {
		t.Fatal("distinct values collided (unlikely) or fallback broken")
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCriteoTSVNextBatch(t *testing.T) {
	c := NewCriteoTSV(strings.NewReader(sampleTSV()), 100)
	batch, err := c.NextBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch = %d samples, want all 3", len(batch))
	}
	batch, err = c.NextBatch(10)
	if err != nil || len(batch) != 0 {
		t.Fatalf("exhausted stream: %d samples, err %v", len(batch), err)
	}
}

func TestCriteoTSVErrors(t *testing.T) {
	if _, err := NewCriteoTSV(strings.NewReader("too\tfew\tfields\n"), 10).Next(); err == nil {
		t.Fatal("short line accepted")
	}
	long := "2\t" + strings.Repeat("\t", CriteoNumDense+CriteoNumSparse-1)
	if _, err := NewCriteoTSV(strings.NewReader(long+"\n"), 10).Next(); err == nil {
		t.Fatal("bad label accepted")
	}
	bad := "0\tnotanumber" + strings.Repeat("\t", CriteoNumDense+CriteoNumSparse-1)
	if _, err := NewCriteoTSV(strings.NewReader(bad+"\n"), 10).Next(); err == nil {
		t.Fatal("bad dense accepted")
	}
}

func TestCriteoTSVNegativeDenseClamped(t *testing.T) {
	dense := make([]string, CriteoNumDense)
	for i := range dense {
		dense[i] = "-3"
	}
	cats := make([]string, CriteoNumSparse)
	line := "0\t" + strings.Join(dense, "\t") + "\t" + strings.Join(cats, "\t")
	s, err := NewCriteoTSV(strings.NewReader(line+"\n"), 10).Next()
	if err != nil {
		t.Fatal(err)
	}
	if s.Dense[0] != 0 {
		t.Fatalf("negative dense not clamped: %v", s.Dense[0])
	}
}
