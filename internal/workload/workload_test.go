package workload

import (
	"math"
	"testing"
)

func TestTableIISkewMatchesAnchors(t *testing.T) {
	const keys = 200_000
	const draws = 400_000
	s := NewTableIISkew(keys, 1)
	counts := CountAccesses(s, draws)
	got := TopShare(counts, keys, []float64{0.0005, 0.001, 0.01})
	want := []float64{0.857, 0.895, 0.957}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.03 {
			t.Fatalf("top-share[%d] = %.3f, want %.3f±0.03 (Table II)", i, got[i], want[i])
		}
	}
}

func TestExpSkewMoreLambdaMoreSkew(t *testing.T) {
	const keys = 50_000
	const draws = 200_000
	shares := make([]float64, 3)
	for i, lambda := range []float64{50, 200, 800} {
		s := NewExpSkew(keys, lambda, 1)
		counts := CountAccesses(s, draws)
		shares[i] = TopShare(counts, keys, []float64{0.01})[0]
	}
	if !(shares[0] < shares[1] && shares[1] < shares[2]) {
		t.Fatalf("top-1%% shares not increasing with lambda: %v", shares)
	}
}

func TestUniformKeysNotSkewed(t *testing.T) {
	const keys = 10_000
	s := NewUniformKeys(keys, 1)
	counts := CountAccesses(s, 100_000)
	share := TopShare(counts, keys, []float64{0.01})[0]
	if share > 0.05 {
		t.Fatalf("uniform top-1%% share = %.3f, want ~0.01", share)
	}
}

func TestSamplersStayInRange(t *testing.T) {
	for _, s := range []KeySampler{
		NewTableIISkew(1000, 2),
		NewExpSkew(1000, 100, 2),
		NewUniformKeys(1000, 2),
	} {
		for i := 0; i < 10_000; i++ {
			if k := s.Sample(); k >= 1000 {
				t.Fatalf("%T produced out-of-range key %d", s, k)
			}
		}
		if s.Keys() != 1000 {
			t.Fatalf("%T Keys() = %d", s, s.Keys())
		}
	}
}

func TestSamplersDeterministicPerSeed(t *testing.T) {
	a, b := NewTableIISkew(5000, 7), NewTableIISkew(5000, 7)
	for i := 0; i < 1000; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBatchDeduplicates(t *testing.T) {
	s := NewTableIISkew(100, 3) // tiny key space: many duplicates
	keys := Batch(s, 500)
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d in batch", k)
		}
		seen[k] = true
	}
	if len(keys) == 0 || len(keys) > 100 {
		t.Fatalf("batch size %d out of range", len(keys))
	}
	// With 500 draws over a 100-key skewed space, dedup must shrink it.
	if len(keys) == 500 {
		t.Fatal("dedup removed nothing")
	}
}

func TestFitExponentialRecoversLambda(t *testing.T) {
	const keys = 20_000
	const lambda = 100.0
	s := NewExpSkew(keys, lambda, 4)
	counts := CountAccesses(s, 2_000_000)
	got := FitExponential(counts, keys)
	// The fit sees only the touched prefix of the key space; accept a wide
	// band around the true decay.
	if got < lambda/2 || got > lambda*2 {
		t.Fatalf("fitted lambda = %.1f, want ~%.0f", got, lambda)
	}
}

func TestTopShareEdgeCases(t *testing.T) {
	if got := TopShare(map[uint64]int{}, 100, []float64{0.5}); got[0] != 0 {
		t.Fatalf("empty counts share = %v", got)
	}
	counts := map[uint64]int{1: 10}
	if got := TopShare(counts, 1, []float64{1.0}); got[0] != 1.0 {
		t.Fatalf("single key share = %v", got)
	}
}

func TestCriteoSchema(t *testing.T) {
	g := NewCriteo(CriteoConfig{Scale: 0.001, Seed: 1})
	if g.Keys() <= 0 {
		t.Fatal("empty key space")
	}
	batch := g.NextBatch(256)
	if len(batch) != 256 {
		t.Fatalf("batch len %d", len(batch))
	}
	for _, s := range batch {
		for f, k := range s.Sparse {
			lo := g.offsets[f]
			hi := lo + uint64(g.cards[f])
			if k < lo || k >= hi {
				t.Fatalf("field %d key %d outside [%d,%d)", f, k, lo, hi)
			}
		}
		if s.Label != 0 && s.Label != 1 {
			t.Fatalf("label %v", s.Label)
		}
	}
}

func TestCriteoLabelsAreLearnable(t *testing.T) {
	g := NewCriteo(CriteoConfig{Scale: 0.001, Seed: 2})
	batch := g.NextBatch(4000)
	// Base rate strictly between 0 and 1, and not degenerate.
	clicks := 0
	for _, s := range batch {
		if s.Label == 1 {
			clicks++
		}
	}
	rate := float64(clicks) / float64(len(batch))
	if rate < 0.05 || rate > 0.8 {
		t.Fatalf("click rate %.3f degenerate", rate)
	}
}

func TestCriteoFieldSkew(t *testing.T) {
	g := NewCriteo(CriteoConfig{Scale: 1, Seed: 3})
	// The largest field must still show popularity concentration.
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		s := g.Next()
		counts[s.Sparse[2]]++ // a ~1M-cardinality field
	}
	share := TopShare(counts, g.cards[2], []float64{0.01})[0]
	if share < 0.2 {
		t.Fatalf("top-1%% share of big field = %.3f, want skewed (>0.2)", share)
	}
}

func TestUniqueKeysDedup(t *testing.T) {
	g := NewCriteo(CriteoConfig{Scale: 0.0005, Seed: 4})
	batch := g.NextBatch(512)
	keys := UniqueKeys(batch)
	seen := map[uint64]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	if len(keys) >= 512*CriteoNumSparse {
		t.Fatal("no dedup happened")
	}
}

func TestAdjustedSkewTailOrdering(t *testing.T) {
	const keys = 100_000
	const draws = 200_000
	tail := func(f float64) float64 {
		s := NewTableIISkewAdjusted(keys, f, 1)
		counts := CountAccesses(s, draws)
		return 1 - TopShare(counts, keys, []float64{0.01})[0] // mass beyond top 1%
	}
	more, orig, less := tail(1.1), tail(1.0), tail(0.9)
	if !(more < orig && orig < less) {
		t.Fatalf("tail masses not ordered: more=%.4f orig=%.4f less=%.4f", more, orig, less)
	}
}

func TestAdjustedSkewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive tail factor accepted")
		}
	}()
	NewTableIISkewAdjusted(100, 0, 1)
}
