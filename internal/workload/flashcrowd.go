package workload

import "time"

// FlashCrowd models the serving tier's worst case: a small hot set that
// absorbs most of the traffic and *moves*. A crowd of size `hot` receives
// `hotShare` of all draws; every `rotate` of virtual time the crowd jumps
// to a fresh pseudo-random subset of the key space, so any cache or
// snapshot built on the old crowd goes cold at once. The remaining
// 1-hotShare of draws are uniform over the whole key space.
//
// Determinism: all randomness derives from splitmix64 over (seed, draw
// counter) and (seed, window, slot) — no math/rand, no wall clock — so two
// generators with the same seed and the same sequence of Advance/Sample
// calls produce identical traces on any platform, as the faultdet rules
// require. Time is supplied by the caller (the sim virtual clock);
// rotation is a pure function of that time.
type FlashCrowd struct {
	n        int
	hot      int
	hotShare float64
	rotate   time.Duration
	seed     uint64
	now      time.Duration
	ctr      uint64

	// window/crowd cache the materialized hot set for the current rotation
	// window so Sample is O(1).
	window uint64
	crowd  []uint64
}

// NewFlashCrowd builds a flash-crowd sampler: n keys total, a hot set of
// size hot drawing hotShare of traffic, rotated every rotate of virtual
// time.
func NewFlashCrowd(n, hot int, hotShare float64, rotate time.Duration, seed uint64) *FlashCrowd {
	if n < 1 || hot < 1 || hot > n {
		panic("workload: need 1 <= hot <= n")
	}
	if hotShare < 0 || hotShare > 1 {
		panic("workload: hot share must be in [0,1]")
	}
	if rotate <= 0 {
		panic("workload: rotation period must be positive")
	}
	f := &FlashCrowd{n: n, hot: hot, hotShare: hotShare, rotate: rotate, seed: seed, window: ^uint64(0)}
	f.materialize(0)
	return f
}

// splitmix64 is the standard SplitMix64 finalizer — a bijective avalanche
// mix used as a counter-based PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4a2aeb9e7aabb
	return x ^ (x >> 31)
}

// materialize fills the crowd for rotation window w. Members are drawn by
// hashing (seed, w, slot); collisions are resolved by probing successive
// counters, so the crowd always holds exactly `hot` distinct keys.
func (f *FlashCrowd) materialize(w uint64) {
	if f.window == w {
		return
	}
	f.window = w
	if f.crowd == nil {
		f.crowd = make([]uint64, 0, f.hot)
	}
	f.crowd = f.crowd[:0]
	seen := make(map[uint64]struct{}, f.hot)
	for i := uint64(0); len(f.crowd) < f.hot; i++ {
		k := splitmix64(f.seed^splitmix64(w+1)^(i*0x9e3779b97f4a7c15)) % uint64(f.n)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		f.crowd = append(f.crowd, k)
	}
}

// Keys implements KeySampler.
func (f *FlashCrowd) Keys() int { return f.n }

// Advance moves the sampler's virtual clock. Clocks only move forward;
// an earlier now is ignored. Rotation happens lazily at the next Sample.
func (f *FlashCrowd) Advance(now time.Duration) {
	if now > f.now {
		f.now = now
	}
}

// Window returns the rotation window index at the current virtual time —
// equal windows mean an identical hot set.
func (f *FlashCrowd) Window() uint64 { return uint64(f.now / f.rotate) }

// Hot reports whether k is in the current hot set.
func (f *FlashCrowd) Hot(k uint64) bool {
	f.materialize(f.Window())
	for _, h := range f.crowd {
		if h == k {
			return true
		}
	}
	return false
}

// HotSet returns a copy of the current hot set.
func (f *FlashCrowd) HotSet() []uint64 {
	f.materialize(f.Window())
	out := make([]uint64, len(f.crowd))
	copy(out, f.crowd)
	return out
}

// Sample implements KeySampler at the current virtual time.
func (f *FlashCrowd) Sample() uint64 {
	f.materialize(f.Window())
	f.ctr++
	r := splitmix64(f.seed ^ (f.ctr * 0xd6e8feb86659fd93))
	// Split r: the low 53 bits pick hot-vs-cold, the mixed remainder picks
	// the member. One splitmix64 call per draw keeps Sample cheap.
	u := float64(r>>11) / (1 << 53)
	if u < f.hotShare {
		return f.crowd[splitmix64(r)%uint64(len(f.crowd))]
	}
	return splitmix64(r) % uint64(f.n)
}

// SampleAt advances to now and draws one key — the one-call form for
// clock-driven loops.
func (f *FlashCrowd) SampleAt(now time.Duration) uint64 {
	f.Advance(now)
	return f.Sample()
}
