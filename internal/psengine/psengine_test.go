package psengine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"openembedding/internal/optim"
)

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Dim != 64 || c.Optimizer == nil || c.Initializer == nil {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	if c.Capacity != 1<<20 || c.CacheEntries != c.Capacity/8 || c.MaintThreads != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Dim: 8, Capacity: 100, CacheEntries: 10}.WithDefaults()
	if c2.Dim != 8 || c2.Capacity != 100 || c2.CacheEntries != 10 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}

func TestEntryFloats(t *testing.T) {
	c := Config{Dim: 16, Optimizer: optim.NewAdaGrad(0.1)}.WithDefaults()
	if got := c.EntryFloats(); got != 32 { // weights + adagrad accumulators
		t.Fatalf("EntryFloats = %d", got)
	}
	c2 := Config{Dim: 16, Optimizer: optim.NewSGD(0.1)}.WithDefaults()
	if got := c2.EntryFloats(); got != 16 {
		t.Fatalf("SGD EntryFloats = %d", got)
	}
}

func TestXavierInitDeterministicAndBounded(t *testing.T) {
	init := XavierInit(16)
	bound := 1 / math.Sqrt(16)
	f := func(key uint64) bool {
		a := make([]float32, 16)
		b := make([]float32, 16)
		init(key, a)
		init(key, b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if float64(a[i]) < -bound || float64(a[i]) >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Different keys give different vectors (with overwhelming probability).
	a := make([]float32, 16)
	b := make([]float32, 16)
	init(1, a)
	init(2, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("keys 1 and 2 got identical init")
	}
}

func TestZeroInit(t *testing.T) {
	w := []float32{1, 2, 3}
	ZeroInit(9, w)
	for _, v := range w {
		if v != 0 {
			t.Fatalf("w = %v", w)
		}
	}
}

func TestCheckBuf(t *testing.T) {
	if err := CheckBuf([]uint64{1, 2}, make([]float32, 8), 4); err != nil {
		t.Fatal(err)
	}
	if err := CheckBuf([]uint64{1, 2}, make([]float32, 7), 4); !errors.Is(err, ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
	if err := CheckBuf(nil, nil, 4); err != nil {
		t.Fatalf("empty buffers rejected: %v", err)
	}
}

func TestStatsMissRate(t *testing.T) {
	if got := (Stats{}).MissRate(); got != 0 {
		t.Fatalf("empty miss rate = %v", got)
	}
	if got := (Stats{Hits: 3, Misses: 1}).MissRate(); got != 0.25 {
		t.Fatalf("miss rate = %v", got)
	}
}
