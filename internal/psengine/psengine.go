// Package psengine defines the storage-engine contract shared by every
// parameter-server backend in the reproduction: the proposed PMem-OE engine
// (internal/core) and the paper's comparison points DRAM-PS, Ori-Cache and
// PMem-Hash (internal/engines/...).
//
// The batch protocol mirrors synchronous DLRM training (Sec. II-A):
//
//	for each batch n:
//	    Pull(n, keys, dst)        // possibly from many worker threads
//	    EndPullPhase(n)           // all pulls done; GPU compute begins;
//	                              // pipelined engines start maintenance
//	    ... dense forward/backward on workers ...
//	    Push(n, keys, grads)      // gradients back, optimizer applied
//	    EndBatch(n)               // barrier: batch n fully applied
//
// Checkpoints are requested with RequestCheckpoint(n) after EndBatch(n) and
// complete asynchronously; CompletedCheckpoint reports durable progress.
package psengine

import (
	"errors"
	"math"
	"runtime"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/simclock"
)

// Common engine errors.
var (
	// ErrClosed is returned by operations on a closed engine.
	ErrClosed = errors.New("psengine: engine closed")
	// ErrDimension indicates a buffer whose length does not match keys*dim.
	ErrDimension = errors.New("psengine: buffer length does not match keys*dim")
	// ErrCapacity indicates the engine cannot hold more entries.
	ErrCapacity = errors.New("psengine: entry capacity exceeded")
)

// Initializer fills the initial weights of a new embedding entry.
// It must be deterministic in key so that recovery tests and distributed
// replicas agree on never-checkpointed entries.
type Initializer func(key uint64, weights []float32)

// XavierInit returns a deterministic uniform(-bound, bound) initializer with
// bound = 1/sqrt(dim), seeded per key (splitmix64 over key and coordinate).
func XavierInit(dim int) Initializer {
	bound := 1.0 / math.Sqrt(float64(dim))
	return func(key uint64, weights []float32) {
		x := key ^ 0x9e3779b97f4a7c15
		for i := range weights {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			u := float64(z>>11) / float64(1<<53) // [0,1)
			weights[i] = float32((2*u - 1) * bound)
		}
	}
}

// ZeroInit fills new entries with zeros.
func ZeroInit(key uint64, weights []float32) {
	for i := range weights {
		weights[i] = 0
	}
}

// Config configures an engine. Zero values get sensible defaults from
// (*Config).WithDefaults.
type Config struct {
	// Dim is the embedding dimension (floats per entry).
	Dim int
	// Optimizer is applied server-side on Push.
	Optimizer optim.Optimizer
	// Initializer fills new entries on first touch.
	Initializer Initializer
	// Capacity is the maximum number of distinct entries (PMem arena slots
	// for PMem-backed engines, a hard bound for DRAM engines).
	Capacity int
	// CacheEntries bounds the DRAM cache for hybrid engines; ignored by
	// DRAM-PS and PMem-Hash.
	CacheEntries int
	// Meter receives virtual-time charges for every device access the
	// engine performs. Nil disables accounting.
	Meter *simclock.Meter
	// Obs receives wall-clock operational metrics (latency histograms,
	// byte counters, queue depths — see NewEngineObs for the canonical
	// set). Nil disables recording at the cost of a nil check; the
	// deterministic simulated experiments leave it nil.
	Obs *obs.Registry
	// Spans receives per-batch spans (maintenance drains, checkpoint
	// finalization) for the Chrome-trace exporter. Nil disables tracing.
	Spans *obs.Tracer
	// MaintThreads is the cache-maintainer pool size for pipelined engines.
	MaintThreads int
	// Shards is the number of independent key-space shards for engines that
	// partition their index, cache and maintenance (PMem-OE). Each shard has
	// its own lock, so request threads on different shards never contend and
	// maintenance parallelizes. Values are rounded up to a power of two;
	// 0 defaults to GOMAXPROCS rounded up to a power of two (capped at 256).
	// Shards=1 reproduces the unsharded engine exactly: deterministic
	// simulated-time experiments pin it to 1 so results are host-independent.
	Shards int
	// LRUUpdateOnPush makes Push reorder the LRU list too, as a generic
	// black-box cache would (the behaviour the paper's Sec. II-B critiques).
	// PMem-OE leaves it false: pull and push of a batch touch the same keys,
	// so one reorder per batch suffices. Ori-Cache sets it true.
	LRUUpdateOnPush bool
	// PipelineDisabled runs cache maintenance inline on the request path
	// instead of behind the GPU phase. Used by the Fig. 9 ablation.
	PipelineDisabled bool
	// CacheDisabled bypasses the DRAM cache entirely (every access goes to
	// PMem). Used by the Fig. 9 ablation.
	CacheDisabled bool
	// RetainCheckpoints is how many completed checkpoints stay recoverable
	// on PMem. 1 (the default) keeps only the latest. 2 also retains the
	// previous checkpoint's records and persists its ID, which is what a
	// fault-tolerant cluster needs: coordinated replay may roll a node back
	// to a checkpoint its peers have already superseded (DESIGN.md §10).
	RetainCheckpoints int
	// ScrubRate is the background integrity-scrub budget for PMem-backed
	// engines: at most this many persisted records are checksum-verified
	// per maintenance round (the scrub rides the maintainer pool, so the
	// request hot path is untouched). 0 disables background scrubbing.
	// The budget is per round rather than per wall-clock second because
	// engine behavior must stay a pure function of the request stream
	// (DESIGN.md §11); a full pass can always be forced via Scrub.
	ScrubRate int
	// FlushVerifyDisabled turns off the durable read-back verification that
	// PMem-backed engines perform after each record flush when a media-fault
	// model is armed. With verification off, injected media faults land on
	// the image and must be caught later by the scrubber or recovery —
	// the configuration the scrub soak uses to exercise detection+repair.
	FlushVerifyDisabled bool
}

// ScrubReport summarizes one integrity-scrub pass over a PMem-backed
// engine (or, aggregated, over a cluster).
type ScrubReport struct {
	// Scanned counts persisted records whose checksum was verified.
	Scanned int64
	// Corrupt counts records that failed verification (bit-rot, lost
	// flushes, poisoned media).
	Corrupt int64
	// Repaired counts corrupt records rewritten in place from the intact
	// DRAM-cached copy — fully transparent healing.
	Repaired int64
	// Restored counts corrupt records replaced by an older retained record
	// at or below the completed checkpoint; the node must be rolled back
	// and replayed (its epoch is fenced) for training to stay exact.
	Restored int64
	// Fenced counts keys with no recoverable record at all: the key is
	// dropped and reborn deterministically on first touch after replay.
	Fenced int64
	// Quarantined counts arena slots permanently pulled from circulation.
	Quarantined int64
}

// Add accumulates o into r.
func (r *ScrubReport) Add(o ScrubReport) {
	r.Scanned += o.Scanned
	r.Corrupt += o.Corrupt
	r.Repaired += o.Repaired
	r.Restored += o.Restored
	r.Fenced += o.Fenced
	r.Quarantined += o.Quarantined
}

// WithDefaults returns a copy of c with zero fields defaulted.
func (c Config) WithDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.Optimizer == nil {
		c.Optimizer = optim.NewAdaGrad(0.05)
	}
	if c.Initializer == nil {
		c.Initializer = XavierInit(c.Dim)
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = c.Capacity / 8
	}
	if c.MaintThreads == 0 {
		c.MaintThreads = 1
	}
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	c.Shards = normalizeShards(c.Shards)
	if c.RetainCheckpoints == 0 {
		c.RetainCheckpoints = 1
	}
	return c
}

// maxShards bounds the shard count: beyond this, per-shard fixed overhead
// (maps, lists, stripe arrays) outweighs any contention win.
const maxShards = 256

// normalizeShards rounds n up to a power of two in [1, maxShards] so the
// shard-of-key computation stays a mask.
func normalizeShards(n int) int {
	if n <= 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// EntryFloats returns the per-entry float count: weights plus optimizer
// state.
func (c Config) EntryFloats() int { return c.Dim + c.Optimizer.StateFloats(c.Dim) }

// Stats is a snapshot of engine counters.
type Stats struct {
	// Entries is the number of distinct embedding entries stored.
	Entries int64
	// CachedEntries is the number of entries currently in the DRAM cache.
	CachedEntries int64
	// Hits and Misses count pull lookups served from DRAM vs PMem.
	Hits, Misses int64
	// PMemReads/PMemWrites count record-granularity PMem accesses.
	PMemReads, PMemWrites int64
	// Evictions counts cache evictions.
	Evictions int64
	// CheckpointsDone counts completed checkpoints.
	CheckpointsDone int64
}

// MissRate returns Misses / (Hits + Misses), or 0 with no lookups.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Engine is a parameter-server storage backend for one embedding table
// shard. Pull and Push may be called concurrently from many request
// threads; the phase-boundary calls (EndPullPhase, EndBatch) come from a
// single coordinator.
type Engine interface {
	// Name identifies the engine configuration ("pmem-oe", "dram-ps", ...).
	Name() string
	// Dim returns the embedding dimension.
	Dim() int
	// Pull copies the weights for keys into dst (len(keys)*Dim floats),
	// creating entries on first touch. batch is the current batch ID.
	Pull(batch int64, keys []uint64, dst []float32) error
	// EndPullPhase signals that every pull of the batch has been issued;
	// pipelined engines start cache maintenance here (Fig. 5).
	EndPullPhase(batch int64)
	// WaitMaintenance blocks until deferred maintenance (cache replacement,
	// flushes, checkpoint progress) for all signalled batches has drained.
	// Inline engines return immediately.
	WaitMaintenance()
	// Push applies the optimizer to keys given grads (len(keys)*Dim floats).
	Push(batch int64, keys []uint64, grads []float32) error
	// EndBatch marks batch n complete: after it returns the engine is
	// consistent for checkpoint requests at n.
	EndBatch(batch int64) error
	// RequestCheckpoint asks for a checkpoint capturing state as of the
	// given completed batch. It returns immediately; completion is
	// asynchronous (observed via CompletedCheckpoint).
	RequestCheckpoint(batch int64) error
	// CompletedCheckpoint returns the newest durable checkpoint batch ID,
	// or -1 when none has completed.
	CompletedCheckpoint() int64
	// Stats returns a snapshot of the engine counters.
	Stats() Stats
	// Close releases resources (maintainer threads, files).
	Close() error
}

// CheckBuf validates that buf holds exactly len(keys)*dim floats.
func CheckBuf(keys []uint64, buf []float32, dim int) error {
	if len(buf) != len(keys)*dim {
		return ErrDimension
	}
	return nil
}

// GatherRows is the shared per-key pull loop of the baseline engines
// (DRAM-PS, PMem-Hash, Ori-Cache): it validates dst against keys×dim,
// times the whole gather through eobs (sampling aside — baselines record
// every pull, keeping their Fig. 2 latency distributions complete), and
// calls row once per key with that key's dim-sized slice of dst. The row
// callback owns all engine-specific work — lookup, device reads, meter
// charges, counters — so the baselines stay comparable: they differ only
// in what a row costs, never in how a batch is walked. It returns the
// gather's wall-clock duration (zero when eobs is disabled) so engines
// with extra histograms (PMem-Hash's miss-service time) can reuse the
// measurement instead of reading the clock again.
func GatherRows(eobs *EngineObs, keys []uint64, dst []float32, dim int, row func(k uint64, out []float32) error) (time.Duration, error) {
	if err := CheckBuf(keys, dst, dim); err != nil {
		return 0, err
	}
	var start time.Duration
	if eobs.Enabled() {
		start = eobs.Now()
	}
	for i, k := range keys {
		if err := row(k, dst[i*dim:(i+1)*dim]); err != nil {
			return 0, err
		}
	}
	var d time.Duration
	if eobs.Enabled() {
		d = eobs.Now() - start
		eobs.Pull.Observe(d)
	}
	return d, nil
}

// LockCost is the calibrated virtual cost of one uncontended lock
// acquisition/release pair on the request path; engines charge it under
// simclock.LockSync so the simulator's contention model can scale it.
const LockCost = 20 * time.Nanosecond

// IndexProbeCost is the calibrated virtual CPU cost of one hash-index probe
// (hashing plus bucket walk), charged under simclock.Compute.
const IndexProbeCost = 30 * time.Nanosecond
