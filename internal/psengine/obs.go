package psengine

import (
	"fmt"
	"time"

	"openembedding/internal/obs"
)

// EngineObs is the canonical per-engine metric set, shared by every backend
// so oectl and the exporters see one naming scheme regardless of engine:
//
//	engine_pull_ns          pull latency histogram (sampled on hot engines)
//	engine_push_ns          push latency histogram
//	engine_miss_service_ns  time to serve one cache miss from PMem (the
//	                        core engine samples it with pull, 1-in-8)
//	engine_maint_queue_depth  queued maintenance tasks (gauge)
//	engine_maint_drain_ns   one shard maintenance drain
//	engine_ckpt_stall_ns    checkpoint work a batch boundary waited out
//	engine_ckpt_flush_bytes bytes persisted for checkpoints/evictions
//	engine_evictions_shard<i> per-shard LRU evictions (via ShardEvictions)
//	engine_corrupt_serve    integrity failures detected on the serve path
//	                        (the pull fails typed instead of returning
//	                        garbage)
//	engine_recover_fallback recoveries that fell back cur→prev because the
//	                        current checkpoint header/records were corrupt
//	engine_scrub_scanned    records checksum-verified by the scrubber
//	engine_scrub_corrupt    records that failed scrub verification
//	engine_scrub_repaired   corrupt records healed in place from DRAM
//	engine_scrub_restored   corrupt records replaced by a retained
//	                        checkpointed record (requires replay)
//	engine_scrub_fenced     keys dropped for deterministic re-init
//	engine_scrub_progress   gauge: cumulative records verified (advances as
//	                        background rounds walk the key space)
//
// All handles are resolved once here; recording is atomics-only and every
// field is nil when the registry is nil, so instrumentation points need no
// enabled/disabled branches. One engine per registry.
type EngineObs struct {
	reg *obs.Registry

	Pull        *obs.Histogram
	Push        *obs.Histogram
	MissService *obs.Histogram
	MaintDrain  *obs.Histogram
	CkptStall   *obs.Histogram
	MaintQueue  *obs.Gauge
	FlushBytes  *obs.Counter

	CorruptServe    *obs.Counter
	RecoverFallback *obs.Counter
	ScrubScanned    *obs.Counter
	ScrubCorrupt    *obs.Counter
	ScrubRepaired   *obs.Counter
	ScrubRestored   *obs.Counter
	ScrubFenced     *obs.Counter
	ScrubProgress   *obs.Gauge
}

// NewEngineObs resolves the canonical engine metrics from reg. It always
// returns a usable (possibly all-no-op) value, so engines store it without
// nil checks.
func NewEngineObs(reg *obs.Registry) *EngineObs {
	m := &EngineObs{reg: reg}
	if reg == nil {
		return m
	}
	m.Pull = reg.Histogram("engine_pull_ns")
	m.Push = reg.Histogram("engine_push_ns")
	m.MissService = reg.Histogram("engine_miss_service_ns")
	m.MaintDrain = reg.Histogram("engine_maint_drain_ns")
	m.CkptStall = reg.Histogram("engine_ckpt_stall_ns")
	m.MaintQueue = reg.Gauge("engine_maint_queue_depth")
	m.FlushBytes = reg.Counter("engine_ckpt_flush_bytes")
	m.CorruptServe = reg.Counter("engine_corrupt_serve")
	m.RecoverFallback = reg.Counter("engine_recover_fallback")
	m.ScrubScanned = reg.Counter("engine_scrub_scanned")
	m.ScrubCorrupt = reg.Counter("engine_scrub_corrupt")
	m.ScrubRepaired = reg.Counter("engine_scrub_repaired")
	m.ScrubRestored = reg.Counter("engine_scrub_restored")
	m.ScrubFenced = reg.Counter("engine_scrub_fenced")
	m.ScrubProgress = reg.Gauge("engine_scrub_progress")
	return m
}

// Enabled reports whether a registry is attached.
func (m *EngineObs) Enabled() bool { return m != nil && m.reg != nil }

// Now returns the registry clock (0 when disabled). Deterministic packages
// time themselves through this instead of the time package directly; the
// readings are observational only and never influence engine behavior.
func (m *EngineObs) Now() time.Duration {
	if m == nil {
		return 0
	}
	return m.reg.Now()
}

// ShardEvictions resolves the eviction counter for one shard (nil when
// disabled).
func (m *EngineObs) ShardEvictions(shard int) *obs.Counter {
	if m == nil || m.reg == nil {
		return nil
	}
	return m.reg.Counter(fmt.Sprintf("engine_evictions_shard%d", shard))
}
