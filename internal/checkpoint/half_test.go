package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestHalfSpecials(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{0.5, 0x3800},
		{65504, 0x7bff}, // max finite half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Fatalf("Float32ToHalf(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		back := HalfToFloat32(c.h)
		if back != c.f && !(math.IsNaN(float64(back)) && math.IsNaN(float64(c.f))) {
			t.Fatalf("HalfToFloat32(%#04x) = %v, want %v", c.h, back, c.f)
		}
	}
	if !math.IsNaN(float64(HalfToFloat32(0x7e00))) {
		t.Fatal("half NaN not NaN")
	}
	if Float32ToHalf(1e30) != 0x7c00 {
		t.Fatal("overflow not saturated to Inf")
	}
	if Float32ToHalf(1e-30) != 0 {
		t.Fatal("underflow not flushed to zero")
	}
	// Subnormal half round-trips.
	sub := HalfToFloat32(0x0001) // smallest positive subnormal ~5.96e-8
	if sub <= 0 || Float32ToHalf(sub) != 0x0001 {
		t.Fatalf("subnormal round trip: %v -> %#04x", sub, Float32ToHalf(sub))
	}
}

// TestHalfRoundTripProperty: values in the trainable-weight range survive
// fp16 with relative error under 2^-10.
func TestHalfRoundTripProperty(t *testing.T) {
	f := func(raw float32) bool {
		v := float32(math.Mod(float64(raw), 8)) // weight-scale values
		back := HalfToFloat32(Float32ToHalf(v))
		if v == 0 {
			return back == 0
		}
		rel := math.Abs(float64(back-v)) / math.Max(math.Abs(float64(v)), 6e-5)
		return rel < 1.0/1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestHalfExactOrderPreserved: conversion is monotone (ordering of weights
// survives quantization).
func TestHalfMonotone(t *testing.T) {
	prev := HalfToFloat32(Float32ToHalf(-4))
	for v := float32(-4); v <= 4; v += 0.013 {
		cur := HalfToFloat32(Float32ToHalf(v))
		if cur < prev {
			t.Fatalf("quantization not monotone at %v", v)
		}
		prev = cur
	}
}

func TestQuantizedDeltaHalvesBytes(t *testing.T) {
	dir := t.TempDir()
	entries := make([]Entry, 64)
	for i := range entries {
		p := make([]float32, 64)
		for j := range p {
			p[j] = float32(i) * 0.01
		}
		entries[i] = Entry{Key: uint64(i), Payload: p}
	}

	w32, err := NewWriter(filepath.Join(dir, "fp32"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w32.WriteDelta(0, entries); err != nil {
		t.Fatal(err)
	}
	w16, err := NewWriter(filepath.Join(dir, "fp16"), nil)
	if err != nil {
		t.Fatal(err)
	}
	w16.SetQuantize(true)
	if err := w16.WriteDelta(0, entries); err != nil {
		t.Fatal(err)
	}

	size := func(sub string) int64 {
		fi, err := os.Stat(filepath.Join(dir, sub, deltaName(0)))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	full, half := size("fp32"), size("fp16")
	if float64(half) > 0.6*float64(full) {
		t.Fatalf("quantized delta %dB not ~half of %dB", half, full)
	}

	// Round trip within fp16 tolerance.
	got, err := ReadDelta(filepath.Join(dir, "fp16"), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range got {
		for j, v := range e.Payload {
			want := entries[i].Payload[j]
			if math.Abs(float64(v-want)) > math.Abs(float64(want))/512+1e-6 {
				t.Fatalf("entry %d[%d] = %v, want ~%v", i, j, v, want)
			}
		}
	}
}
