package checkpoint

import "math"

// IEEE 754 half-precision conversion for quantized checkpoints — the
// compression technique Check-N-Run [6] applies to DLRM checkpoints, which
// the paper cites as complementary to its batch-aware scheme. Weights
// tolerate fp16 storage (training keeps fp32 masters in the engine).

// Float32ToHalf converts with round-to-nearest-even, saturating to ±Inf.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or Inf/NaN
		if bits&0x7fffffff > 0x7f800000 { // NaN
			return sign | 0x7e00
		}
		return sign | 0x7c00 // Inf
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign // underflow to zero
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent: correct (rounds up magnitude)
		}
		return half
	}
}

// HalfToFloat32 expands a half-precision value.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000) // ±Inf
		}
		return math.Float32frombits(sign | 0x7fc00000) // NaN
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
