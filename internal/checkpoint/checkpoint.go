// Package checkpoint implements the comparison checkpointing scheme of the
// paper's evaluation: incremental (delta) checkpointing in the style of
// CheckFreq [11] / Check-N-Run [6], where each checkpoint synchronously
// dumps the entries dirtied since the previous checkpoint to a checkpoint
// device (SSD or PMem). The DRAM-PS and Ori-Cache baselines use it; the
// proposed engine replaces it with the batch-aware scheme in internal/core.
//
// Checkpoint files are ordinary files: a base/delta chain named by batch
// ID, plus the virtual-time cost of writing the same bytes to the chosen
// checkpoint device (the paper uses PMem as the checkpoint device for all
// baselines, and SSD in the Fig. 14 recovery comparison).
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"openembedding/internal/device"
	"openembedding/internal/obs"
)

// Errors returned by the checkpoint package.
var (
	// ErrCorrupt indicates a checkpoint file that fails validation.
	ErrCorrupt = errors.New("checkpoint: corrupt file")
	// ErrNoCheckpoint indicates an empty checkpoint directory.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
)

var fileMagic = [8]byte{'O', 'E', 'C', 'K', 'P', 'T', 'v', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Entry is one embedding entry in a checkpoint: weights plus optimizer
// state, exactly as the engine holds them.
type Entry struct {
	Key     uint64
	Payload []float32
}

// Writer writes delta checkpoint files into a directory and charges their
// size to a checkpoint device model.
type Writer struct {
	dir      string
	device   *device.Timed // cost model of the checkpoint device (may be nil)
	quantize bool

	// metrics (nil, and free, without SetObs)
	writeNS    *obs.Histogram
	bytesOut   *obs.Counter
	deltasDone *obs.Counter
}

// NewWriter creates (if needed) the checkpoint directory.
func NewWriter(dir string, dev *device.Timed) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Writer{dir: dir, device: dev}, nil
}

// SetObs attaches delta-write metrics: ckpt_write_ns (wall time of one
// synchronous delta dump — the training pause of the incremental baselines),
// ckpt_bytes_written, and ckpt_deltas_written.
func (w *Writer) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.writeNS = reg.Histogram("ckpt_write_ns")
	w.bytesOut = reg.Counter("ckpt_bytes_written")
	w.deltasDone = reg.Counter("ckpt_deltas_written")
}

// SetQuantize toggles fp16 payload quantization (Check-N-Run's checkpoint
// compression, cited by the paper as complementary): halves checkpoint
// bytes — and therefore the synchronous pause and the recovery read — at
// the cost of ~3 decimal digits of weight precision.
func (w *Writer) SetQuantize(on bool) { w.quantize = on }

// file-header flag bits.
const flagFP16 = uint64(1)

// deltaName formats the file name for a delta covering up to batch.
func deltaName(batch int64) string { return fmt.Sprintf("delta-%016d.ckpt", batch) }

// WriteDelta synchronously persists the given entries as the delta for
// batch. The call blocks for the duration of the file write — synchronous
// checkpointing pauses training (Sec. II-A) — and charges the written bytes
// as a sequential stream to the checkpoint device.
//
// oevet:charge stream-write
func (w *Writer) WriteDelta(batch int64, entries []Entry) error {
	var obsStart time.Time
	if w.writeNS != nil {
		obsStart = time.Now()
	}
	path := filepath.Join(w.dir, deltaName(batch))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	h := crc32.New(crcTable)
	out := io.MultiWriter(bw, h)

	var flags uint64
	if w.quantize {
		flags |= flagFP16
	}
	var hdr [32]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(batch))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(entries)))
	binary.LittleEndian.PutUint64(hdr[24:], flags)
	if _, err := out.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	valBytes := 4
	if w.quantize {
		valBytes = 2
	}
	var total int64 = int64(len(hdr))
	scratch := make([]byte, 0, 1024)
	for _, e := range entries {
		need := 8 + 4 + valBytes*len(e.Payload)
		if cap(scratch) < need {
			scratch = make([]byte, 0, need)
		}
		buf := scratch[:need]
		binary.LittleEndian.PutUint64(buf[0:], e.Key)
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(e.Payload)))
		for i, v := range e.Payload {
			if w.quantize {
				binary.LittleEndian.PutUint16(buf[12+2*i:], Float32ToHalf(v))
			} else {
				binary.LittleEndian.PutUint32(buf[12+4*i:], floatBits(v))
			}
		}
		if _, err := out.Write(buf); err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: %w", err)
		}
		total += int64(need)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], h.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	w.device.ChargeStreamWrite(total + 4)
	if w.writeNS != nil {
		w.writeNS.Observe(time.Since(obsStart))
		w.bytesOut.Add(total + 4)
		w.deltasDone.Add(1)
	}
	return nil
}

// List returns the delta batch IDs present in dir, ascending.
func List(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var batches []int64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "delta-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "delta-"), ".ckpt"), 10, 64)
		if err != nil {
			continue
		}
		batches = append(batches, n)
	}
	sort.Slice(batches, func(i, j int) bool { return batches[i] < batches[j] })
	return batches, nil
}

// ReadDelta loads one delta file, charging its size as a sequential stream
// read from the checkpoint device (what dominates DRAM-PS recovery,
// Sec. VI-E).
//
// oevet:charge stream-read
func ReadDelta(dir string, batch int64, dev *device.Timed) ([]Entry, error) {
	raw, err := os.ReadFile(filepath.Join(dir, deltaName(batch)))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	dev.ChargeStreamRead(int64(len(raw)))
	if len(raw) < 36 || string(raw[:8]) != string(fileMagic[:]) {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if got := int64(binary.LittleEndian.Uint64(raw[8:])); got != batch {
		return nil, fmt.Errorf("%w: batch %d in file named %d", ErrCorrupt, got, batch)
	}
	count := binary.LittleEndian.Uint64(raw[16:])
	flags := binary.LittleEndian.Uint64(raw[24:])
	valBytes := 4
	if flags&flagFP16 != 0 {
		valBytes = 2
	}
	entries := make([]Entry, 0, count)
	off := 32
	for i := uint64(0); i < count; i++ {
		if off+12 > len(body) {
			return nil, fmt.Errorf("%w: truncated entry", ErrCorrupt)
		}
		key := binary.LittleEndian.Uint64(body[off:])
		n := int(binary.LittleEndian.Uint32(body[off+8:]))
		off += 12
		if off+valBytes*n > len(body) {
			return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
		}
		payload := make([]float32, n)
		for j := 0; j < n; j++ {
			if valBytes == 2 {
				payload[j] = HalfToFloat32(binary.LittleEndian.Uint16(body[off+2*j:]))
			} else {
				payload[j] = floatFromBits(binary.LittleEndian.Uint32(body[off+4*j:]))
			}
		}
		off += valBytes * n
		entries = append(entries, Entry{Key: key, Payload: payload})
	}
	return entries, nil
}

// Restore replays the full delta chain up to and including maxBatch
// (or everything when maxBatch < 0), returning the newest payload per key
// and the newest batch restored.
func Restore(dir string, maxBatch int64, dev *device.Timed) (map[uint64][]float32, int64, error) {
	batches, err := List(dir)
	if err != nil {
		return nil, -1, err
	}
	state := make(map[uint64][]float32)
	newest := int64(-1)
	for _, b := range batches {
		if maxBatch >= 0 && b > maxBatch {
			break
		}
		entries, err := ReadDelta(dir, b, dev)
		if err != nil {
			return nil, -1, err
		}
		for _, e := range entries {
			state[e.Key] = e.Payload
		}
		newest = b
	}
	if newest < 0 {
		return nil, -1, ErrNoCheckpoint
	}
	return state, newest, nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func floatFromBits(u uint32) float32 { return math.Float32frombits(u) }
