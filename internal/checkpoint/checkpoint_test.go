package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/simclock"
)

func testWriter(t *testing.T) (*Writer, string, *simclock.Meter) {
	t.Helper()
	dir := t.TempDir()
	m := simclock.NewMeter()
	w, err := NewWriter(dir, device.NewTimedSSD(m))
	if err != nil {
		t.Fatal(err)
	}
	return w, dir, m
}

func TestWriteReadDelta(t *testing.T) {
	w, dir, m := testWriter(t)
	in := []Entry{
		{Key: 1, Payload: []float32{1, 2, 3}},
		{Key: 9, Payload: []float32{-4.5}},
	}
	if err := w.WriteDelta(7, in); err != nil {
		t.Fatal(err)
	}
	if m.Total(simclock.SSDWrite) <= 0 {
		t.Fatal("write charged nothing to the checkpoint device")
	}
	out, err := ReadDelta(dir, 7, device.NewTimedSSD(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Key != 1 || out[1].Key != 9 {
		t.Fatalf("out = %+v", out)
	}
	for i := range in {
		for j := range in[i].Payload {
			if out[i].Payload[j] != in[i].Payload[j] {
				t.Fatalf("payload mismatch at %d/%d", i, j)
			}
		}
	}
	if m.Total(simclock.SSDRead) <= 0 {
		t.Fatal("read charged nothing")
	}
}

func TestListSorted(t *testing.T) {
	w, dir, _ := testWriter(t)
	for _, b := range []int64{30, 10, 20} {
		if err := w.WriteDelta(b, nil); err != nil {
			t.Fatal(err)
		}
	}
	got, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30}
	if len(got) != 3 {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	w, dir, _ := testWriter(t)
	if err := w.WriteDelta(1, nil); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "delta-bogus.ckpt"), []byte("x"), 0o644)
	got, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("List = %v", got)
	}
}

func TestRestoreReplaysChainInOrder(t *testing.T) {
	w, dir, m := testWriter(t)
	// Key 5 updated in both deltas; the newer one must win.
	if err := w.WriteDelta(10, []Entry{{Key: 5, Payload: []float32{1}}, {Key: 6, Payload: []float32{2}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDelta(20, []Entry{{Key: 5, Payload: []float32{99}}}); err != nil {
		t.Fatal(err)
	}
	state, newest, err := Restore(dir, -1, device.NewTimedSSD(m))
	if err != nil {
		t.Fatal(err)
	}
	if newest != 20 {
		t.Fatalf("newest = %d", newest)
	}
	if state[5][0] != 99 || state[6][0] != 2 {
		t.Fatalf("state = %v", state)
	}
	// Bounded restore stops before batch 20.
	state, newest, err = Restore(dir, 15, device.NewTimedSSD(m))
	if err != nil {
		t.Fatal(err)
	}
	if newest != 10 || state[5][0] != 1 {
		t.Fatalf("bounded restore: newest=%d state=%v", newest, state)
	}
}

func TestRestoreEmptyDir(t *testing.T) {
	_, _, err := Restore(t.TempDir(), -1, nil)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestReadDeltaDetectsCorruption(t *testing.T) {
	w, dir, _ := testWriter(t)
	if err := w.WriteDelta(3, []Entry{{Key: 1, Payload: []float32{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, deltaName(3))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDelta(dir, 3, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestReadDeltaBatchMismatch(t *testing.T) {
	w, dir, _ := testWriter(t)
	if err := w.WriteDelta(3, nil); err != nil {
		t.Fatal(err)
	}
	// Rename the file so the embedded batch ID disagrees with the name.
	if err := os.Rename(filepath.Join(dir, deltaName(3)), filepath.Join(dir, deltaName(4))); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDelta(dir, 4, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}
