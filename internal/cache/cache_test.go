package cache

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func collect(l *List[int]) []int {
	var out []int
	l.Each(func(v int) bool { out = append(out, v); return true })
	return out
}

func TestListPushFrontOrder(t *testing.T) {
	l := NewList[int]()
	for i := 1; i <= 3; i++ {
		l.PushFront(&Node[int]{Value: i})
	}
	got := collect(l)
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Back().Value != 1 || l.Front().Value != 3 {
		t.Fatalf("back/front = %d/%d", l.Back().Value, l.Front().Value)
	}
}

func TestListMoveToFront(t *testing.T) {
	l := NewList[int]()
	nodes := make([]*Node[int], 4)
	for i := range nodes {
		nodes[i] = &Node[int]{Value: i}
		l.PushFront(nodes[i])
	}
	l.MoveToFront(nodes[0]) // LRU becomes MRU
	got := collect(l)
	want := []int{0, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	l.MoveToFront(nodes[0]) // moving the front is a no-op
	if l.Front().Value != 0 {
		t.Fatal("front changed")
	}
}

func TestListRemove(t *testing.T) {
	l := NewList[int]()
	a, b, c := &Node[int]{Value: 1}, &Node[int]{Value: 2}, &Node[int]{Value: 3}
	l.PushFront(a)
	l.PushFront(b)
	l.PushFront(c)
	l.Remove(b)
	if b.InList() {
		t.Fatal("removed node still claims membership")
	}
	got := collect(l)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("order after remove = %v", got)
	}
	// Removed node can be reinserted.
	l.PushFront(b)
	if l.Front() != b {
		t.Fatal("reinsert failed")
	}
}

func TestListEmpty(t *testing.T) {
	l := NewList[int]()
	if l.Back() != nil || l.Front() != nil || l.Len() != 0 {
		t.Fatal("empty list not empty")
	}
}

func TestListPrev(t *testing.T) {
	l := NewList[int]()
	a, b := &Node[int]{Value: 1}, &Node[int]{Value: 2}
	l.PushFront(a)
	l.PushFront(b) // order: b, a
	if l.Prev(a) != b {
		t.Fatal("Prev(a) != b")
	}
	if l.Prev(b) != nil {
		t.Fatal("Prev(front) != nil")
	}
}

func TestListDoubleInsertPanics(t *testing.T) {
	l := NewList[int]()
	n := &Node[int]{Value: 1}
	l.PushFront(n)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	l.PushFront(n)
}

func TestListForeignNodePanics(t *testing.T) {
	l1, l2 := NewList[int](), NewList[int]()
	n := &Node[int]{Value: 1}
	l1.PushFront(n)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign MoveToFront did not panic")
		}
	}()
	l2.MoveToFront(n)
}

// TestListMatchesReferenceLRU drives the intrusive list and a slice-based
// reference model with the same random operations and checks they agree.
func TestListMatchesReferenceLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewList[int]()
		nodes := map[int]*Node[int]{}
		var ref []int // front at index 0

		refRemove := func(v int) {
			for i, x := range ref {
				if x == v {
					ref = append(ref[:i], ref[i+1:]...)
					return
				}
			}
		}
		for op := 0; op < 200; op++ {
			v := rng.Intn(20)
			n, in := nodes[v]
			switch {
			case !in || !n.InList():
				if n == nil {
					n = &Node[int]{Value: v}
					nodes[v] = n
				}
				l.PushFront(n)
				ref = append([]int{v}, ref...)
			case rng.Intn(2) == 0:
				l.MoveToFront(n)
				refRemove(v)
				ref = append([]int{v}, ref...)
			default:
				l.Remove(n)
				refRemove(v)
			}
			got := collect(l)
			if len(got) != len(ref) {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePushDrain(t *testing.T) {
	var q Queue[int]
	q.Push(1, 2)
	q.Push(3)
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.Drain()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Drain = %v", got)
	}
	if q.Drain() != nil {
		t.Fatal("second drain not nil")
	}
	q.Push() // empty push is a no-op
	if q.Len() != 0 {
		t.Fatal("empty push added items")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	var q Queue[int]
	var wg sync.WaitGroup
	const producers, each = 8, 500
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				q.Push(i)
			}
		}()
	}
	wg.Wait()
	if got := len(q.Drain()); got != producers*each {
		t.Fatalf("drained %d, want %d", got, producers*each)
	}
}
