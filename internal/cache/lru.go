// Package cache provides the DRAM-cache primitives shared by the
// parameter-server engines: an intrusive LRU list and the access queue that
// decouples request handling from cache maintenance (Fig. 5 of the paper).
package cache

// Node is an element of a List. A cache entry embeds (or points to) its
// Node so that LRU reordering is pointer surgery with no allocation and no
// auxiliary map — the layout the paper gets from an intrusive std::list.
type Node[T any] struct {
	// Value is the payload (typically a pointer to the cache entry).
	Value T

	prev, next *Node[T]
	list       *List[T]
}

// InList reports whether the node is currently linked into a list.
func (n *Node[T]) InList() bool { return n.list != nil }

// List is a non-concurrent doubly linked LRU list: front = most recently
// used, back = least recently used. Callers serialize access (the engines
// hold their maintenance lock while touching it).
type List[T any] struct {
	root Node[T] // sentinel; root.next = front, root.prev = back
	size int
}

// NewList returns an empty list.
func NewList[T any]() *List[T] {
	l := &List[T]{}
	l.root.prev = &l.root
	l.root.next = &l.root
	return l
}

// Len returns the number of linked nodes.
func (l *List[T]) Len() int { return l.size }

// PushFront links n at the MRU position. n must not already be in a list.
func (l *List[T]) PushFront(n *Node[T]) {
	if n.list != nil {
		panic("cache: PushFront of linked node")
	}
	n.list = l
	n.prev = &l.root
	n.next = l.root.next
	n.prev.next = n
	n.next.prev = n
	l.size++
}

// MoveToFront relinks n at the MRU position. n must be in this list.
func (l *List[T]) MoveToFront(n *Node[T]) {
	if n.list != l {
		panic("cache: MoveToFront of foreign node")
	}
	if l.root.next == n {
		return
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev = &l.root
	n.next = l.root.next
	n.prev.next = n
	n.next.prev = n
}

// Remove unlinks n from the list.
func (l *List[T]) Remove(n *Node[T]) {
	if n.list != l {
		panic("cache: Remove of foreign node")
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next, n.list = nil, nil, nil
	l.size--
}

// Back returns the LRU node, or nil when the list is empty.
func (l *List[T]) Back() *Node[T] {
	if l.size == 0 {
		return nil
	}
	return l.root.prev
}

// Front returns the MRU node, or nil when the list is empty.
func (l *List[T]) Front() *Node[T] {
	if l.size == 0 {
		return nil
	}
	return l.root.next
}

// Prev returns the node before n (towards the front), or nil at the front.
func (l *List[T]) Prev(n *Node[T]) *Node[T] {
	if n.prev == &l.root {
		return nil
	}
	return n.prev
}

// Each calls fn from MRU to LRU; fn returning false stops the walk.
func (l *List[T]) Each(fn func(T) bool) {
	for n := l.root.next; n != &l.root; n = n.next {
		if !fn(n.Value) {
			return
		}
	}
}
