package cache

import "sync"

// Queue is the Access Queue of Fig. 5: request threads append the entries
// each batch touched, and the cache-maintainer threads drain them later,
// off the critical path. It is a simple mutex-protected FIFO of slices —
// appends are batched per request, so contention is per request rather
// than per key.
type Queue[T any] struct {
	mu    sync.Mutex
	items []T
}

// Push appends items to the queue.
func (q *Queue[T]) Push(items ...T) {
	if len(items) == 0 {
		return
	}
	q.mu.Lock()
	q.items = append(q.items, items...)
	q.mu.Unlock()
}

// Drain removes and returns everything queued so far. It returns nil when
// the queue is empty.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	out := q.items
	q.items = nil
	return out
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
