package serve

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/workload"
)

// benchBagGather measures the full serving request: a 26-table × 128-sample
// Zipf-ish flash-crowd gather pooled server-side, hot set snapshot-resident.
func benchBagGather(b *testing.B, tables, batch int) {
	const dim = 16
	e := newTestEngine(b, dim, 1<<14, 4096, 4)
	hotKeys := make([]uint64, 2048)
	for i := range hotKeys {
		hotKeys[i] = uint64(i)
	}
	for lo := 0; lo < len(hotKeys); lo += 512 {
		train(b, e, int64(lo/512), hotKeys[lo:lo+512], 1.0)
	}
	h := New(e, obs.NewRegistry())

	// A few precomputed requests drawn from the flash crowd, cycled so the
	// timed loop itself allocates nothing.
	fc := workload.NewFlashCrowd(len(hotKeys), 256, 0.9, time.Hour, 42)
	bags := tables * batch
	offsets := make([]uint32, bags+1)
	for i := range offsets {
		offsets[i] = uint32(i)
	}
	const variants = 8
	reqs := make([][]uint64, variants)
	for v := range reqs {
		keys := make([]uint64, bags)
		for i := range keys {
			keys[i] = fc.Sample()
		}
		reqs[v] = keys
	}
	out := make([]float32, bags*dim)
	if err := h.PullBags(false, offsets, reqs[0], out); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.PullBags(false, offsets, reqs[i%variants], out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(time.Second)/float64(b.Elapsed())*float64(b.N), "req/s")
}

func BenchmarkBagGather26x128(b *testing.B) { benchBagGather(b, 26, 128) }
func BenchmarkBagGather8x16(b *testing.B)   { benchBagGather(b, 8, 16) }

// TestBenchReportPR8 writes BENCH_pr8.json: the bag-gather benchmark series
// (ns/op, QPS, allocs) plus a flash-crowd soak run's latency percentiles
// and lock-free hit rate.
//
// Gated on OE_BENCH_REPORT_PR8 (the output path) so plain `go test ./...`
// stays fast. Two gates ride along:
//
//   - The zero-alloc gate is unconditional once the test runs: the serving
//     request path must not allocate per request.
//   - The regression gate is armed by OE_BENCH_BASELINE_PR8 (a prior
//     BENCH_pr8.json) plus OE_BENCH_MAX_REGRESSION_PCT: ns/op for every
//     shared series, and the soak's p99, must not regress past the
//     threshold.
func TestBenchReportPR8(t *testing.T) {
	path := os.Getenv("OE_BENCH_REPORT_PR8")
	if path == "" {
		t.Skip("OE_BENCH_REPORT_PR8 not set")
	}

	const rounds = 3 // best-of-N: least scheduler interference
	best := func(f func(b *testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(f)
		for i := 1; i < rounds; i++ {
			if next := testing.Benchmark(f); next.NsPerOp() < r.NsPerOp() {
				r = next
			}
		}
		return r
	}

	rep := obs.NewBenchReport("pr8")
	series := []struct {
		name string
		f    func(b *testing.B)
	}{
		{"ServeBagGather/26x128", func(b *testing.B) { benchBagGather(b, 26, 128) }},
		{"ServeBagGather/8x16", func(b *testing.B) { benchBagGather(b, 8, 16) }},
	}
	for _, s := range series {
		r := best(s.f)
		if r.NsPerOp() <= 0 {
			t.Fatalf("%s: degenerate result %v", s.name, r)
		}
		qps := 1e9 / float64(r.NsPerOp())
		t.Logf("%-24s %9d ns/op  %3d allocs/op  %8.0f req/s", s.name, r.NsPerOp(), r.AllocsPerOp(), qps)
		if r.AllocsPerOp() != 0 {
			t.Errorf("%s allocates %d/op; the serve path must be 0-alloc", s.name, r.AllocsPerOp())
		}
		rep.Add(obs.BenchResult{
			Name:        s.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			N:           r.N,
			Metrics:     map[string]float64{"qps": qps},
		})
	}

	// The soak series: wall-clock QPS and latency percentiles under the
	// rotating flash crowd with concurrent training.
	soak := runFlashCrowdSoak(t, 1, 3000)
	qps := float64(soak.requests) / soak.elapsed.Seconds()
	t.Logf("%-24s %9.0f ns/req %8.0f QPS  p50=%s p99=%s snap=%.1f%%",
		"ServeSoak/flash-crowd", float64(soak.elapsed.Nanoseconds())/float64(soak.requests), qps,
		time.Duration(soak.bagNS.P50), time.Duration(soak.bagNS.P99), 100*soak.snapRate)
	rep.Add(obs.BenchResult{
		Name:    "ServeSoak/flash-crowd",
		NsPerOp: float64(soak.elapsed.Nanoseconds()) / float64(soak.requests),
		N:       soak.requests,
		Metrics: map[string]float64{
			"qps":           qps,
			"p50_ns":        float64(soak.bagNS.P50),
			"p99_ns":        float64(soak.bagNS.P99),
			"max_ns":        float64(soak.bagNS.Max),
			"snap_hit_rate": soak.snapRate,
			"crowd_windows": float64(soak.windows),
		},
	})

	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("wrote %s", path)

	basePath := os.Getenv("OE_BENCH_BASELINE_PR8")
	if basePath == "" {
		return
	}
	maxPct := 25.0
	if s := os.Getenv("OE_BENCH_MAX_REGRESSION_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad OE_BENCH_MAX_REGRESSION_PCT %q: %v", s, err)
		}
		maxPct = v
	}
	baseline, err := obs.ReadBenchReport(basePath)
	if err != nil {
		t.Fatalf("read baseline %s: %v", basePath, err)
	}
	if err := gateServeRegressions(rep, baseline, maxPct, t.Logf); err != nil {
		t.Error(err)
	}
}

// gateServeRegressions fails when any shared series' ns/op — or the soak
// series' p99 — exceeds the baseline by more than maxPct percent.
func gateServeRegressions(cur, base *obs.BenchReport, maxPct float64, logf func(string, ...any)) error {
	baseByName := make(map[string]obs.BenchResult, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	compared := 0
	for _, r := range cur.Results {
		b, ok := baseByName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		compared++
		deltaPct := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		logf("%-24s baseline(%s) %.0f ns/op -> %.0f ns/op (%+.1f%%)", r.Name, base.PR, b.NsPerOp, r.NsPerOp, deltaPct)
		if deltaPct > maxPct {
			return fmt.Errorf("%s regressed %.1f%% vs %s (gate %.1f%%)", r.Name, deltaPct, base.PR, maxPct)
		}
		if bp99, ok := b.Metrics["p99_ns"]; ok && bp99 > 0 {
			if cp99 := r.Metrics["p99_ns"]; cp99 > 0 {
				d := 100 * (cp99 - bp99) / bp99
				logf("%-24s baseline(%s) p99 %.0f ns -> %.0f ns (%+.1f%%)", r.Name, base.PR, bp99, cp99, d)
				if d > maxPct {
					return fmt.Errorf("%s p99 regressed %.1f%% vs %s (gate %.1f%%)", r.Name, d, base.PR, maxPct)
				}
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("no comparable series between %s and baseline %s", cur.PR, base.PR)
	}
	return nil
}
