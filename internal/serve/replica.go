package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ReplicaStore holds read-only replica rows for keys this node does NOT
// own: the R=2 failover copies the cluster pushes via MsgReplicate
// (DESIGN.md §15). Serving reads consult the overlay before the engine, so
// a node can answer bag gathers for a dead peer's keys at the freshness of
// the last replication push — eventually consistent by doctrine, exactly
// like snapshot serving itself.
//
// The row map is published atomically and never mutated in place: readers
// load the current map with one atomic load per request and index it
// lock-free (a nil map looks up as empty), writers copy-on-write under a
// mutex. Replication pushes are rare (per membership change or sync round)
// and reads are the hot path, so the copy cost sits on the right side.
type ReplicaStore struct {
	dim int
	mu  sync.Mutex // serializes writers
	m   atomic.Pointer[map[uint64][]float32]
}

// NewReplicaStore returns an empty store for dim-wide rows.
func NewReplicaStore(dim int) *ReplicaStore {
	rs := &ReplicaStore{dim: dim}
	empty := map[uint64][]float32{}
	rs.m.Store(&empty)
	return rs
}

// Merge installs or overwrites replica rows: row i of rows (row-major,
// len(keys)*dim floats) becomes the replica of keys[i]. The rows are
// copied; the caller keeps ownership of its buffers.
func (rs *ReplicaStore) Merge(keys []uint64, rows []float32) error {
	if len(rows) != len(keys)*rs.dim {
		return fmt.Errorf("serve: %d replica floats for %d keys (dim %d)", len(rows), len(keys), rs.dim)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	old := *rs.m.Load()
	next := make(map[uint64][]float32, len(old)+len(keys))
	for k, v := range old {
		next[k] = v
	}
	for i, k := range keys {
		row := make([]float32, rs.dim)
		copy(row, rows[i*rs.dim:(i+1)*rs.dim])
		next[k] = row
	}
	rs.m.Store(&next)
	return nil
}

// Drop removes the replicas of keys for which drop returns true — e.g.
// keys this node came to own after a membership change (owned state is
// served from the engine, not the overlay).
func (rs *ReplicaStore) Drop(drop func(key uint64) bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	old := *rs.m.Load()
	next := make(map[uint64][]float32, len(old))
	for k, v := range old {
		if !drop(k) {
			next[k] = v
		}
	}
	rs.m.Store(&next)
}

// Len returns the number of replica rows held.
func (rs *ReplicaStore) Len() int { return len(*rs.m.Load()) }

// rows returns the current row map for lock-free per-request indexing.
func (rs *ReplicaStore) rows() map[uint64][]float32 { return *rs.m.Load() }
