// Package serve is the online inference tier (DESIGN.md §14): it answers
// embedding-bag gather requests against a live PMem-OE engine while
// training keeps running.
//
// The handler implements rpc.BagServer: one MsgPullBag request carries
// every sparse field of a batch (e.g. 26 Criteo tables × 128 samples) as
// offset-delimited key bags, and the handler pools each bag server-side
// (sum or mean) so only one dim-sized row per bag crosses the wire back —
// the embedding-bag shape that dominates DLRM inference latency.
//
// Reads go through the engine's lock-free snapshot path
// (core.Engine.ServeRead): clean hot keys are served from an immutable
// per-shard snapshot with no shard mutex and no push stripe, and the
// steady-state request performs zero heap allocations (pinned by
// TestPullBagsZeroAllocs and the oevet allocfree analyzer). Cold, dirty or
// unknown keys fall back to the engine's locked path; keys the fallback
// read from PMem are promoted into the hot set by the next Refresh.
package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/core"
	"openembedding/internal/obs"
)

// Handler serves pooled embedding-bag reads from one engine. Safe for
// concurrent use by any number of connections.
type Handler struct {
	eng *core.Engine
	dim int

	// scratchPool recycles per-request row buffers and the obs sampling
	// tick so the steady-state request allocates nothing.
	scratchPool sync.Pool

	// refreshing single-flights Refresh: concurrent triggers collapse into
	// the one in flight.
	refreshing atomic.Bool

	// replicas is the optional failover overlay (replica.go): rows for
	// keys other nodes own, consulted before the engine. Installed by the
	// node (SetReplicas) and shared across engine swaps.
	replicas atomic.Pointer[ReplicaStore]

	// Admission control (DESIGN.md §16): when maxInflight is positive, a
	// request arriving while inflight is already at the watermark is shed
	// with errShed — a busy-flavored error the RPC server maps to
	// MsgErrBusy, so overload degrades into fast, explicit rejections the
	// caller can fail over, never into queue collapse. Zero (the default)
	// disables admission entirely: the steady-state request pays one
	// atomic load.
	inflight    atomic.Int64
	maxInflight atomic.Int64

	// metrics (all nil, and free, when the registry is nil):
	//
	//	serve_bag_ns        request latency histogram (sampled 1-in-8)
	//	serve_requests      bag-gather requests served
	//	serve_keys          keys gathered across all bags
	//	serve_snap_hits     keys served lock-free from the snapshot
	//	serve_dram_fallback keys served from the DRAM cache under the stripe
	//	serve_pmem_fallback keys served by a verified PMem read
	//	serve_init_served   unknown keys served from the initializer
	//	serve_replica_hits  keys served from the failover replica overlay
	//	serve_refreshes     hot-set refresh passes completed
	//	serve_shed          requests rejected at the inflight watermark
	reg          *obs.Registry
	bagNS        *obs.Histogram
	requests     *obs.Counter
	keysServed   *obs.Counter
	snapHits     *obs.Counter
	dramFallback *obs.Counter
	pmemFallback *obs.Counter
	initServed   *obs.Counter
	replicaHits  *obs.Counter
	refreshes    *obs.Counter
	shed         *obs.Counter
}

// overloadError is the admission-control rejection. Its Busy method marks
// it for the RPC server's MsgErrBusy mapping, so a remote caller sees
// rpc.ErrBusy — a degraded-but-alive signal, distinct from a transport
// failure — and fails over instead of retrying the overloaded node.
type overloadError struct{}

func (overloadError) Error() string { return "serve: inflight watermark exceeded, request shed" }
func (overloadError) Busy() bool    { return true }

// errShed is preallocated so the shed path does not allocate under the
// very load it exists to survive.
var errShed error = overloadError{}

// IsShed reports whether err is an admission-control rejection.
func IsShed(err error) bool {
	var o overloadError
	return errors.As(err, &o)
}

// bagScratch is one request's reusable state.
type bagScratch struct {
	row  []float32
	tick uint8
}

// New returns a handler over eng, enabling the engine's serve snapshots.
// reg may be nil (metrics disabled).
func New(eng *core.Engine, reg *obs.Registry) *Handler {
	h := &Handler{eng: eng, dim: eng.Dim(), reg: reg}
	dim := h.dim
	h.scratchPool.New = func() any {
		return &bagScratch{row: make([]float32, dim)}
	}
	if reg != nil {
		h.bagNS = reg.Histogram("serve_bag_ns")
		h.requests = reg.Counter("serve_requests")
		h.keysServed = reg.Counter("serve_keys")
		h.snapHits = reg.Counter("serve_snap_hits")
		h.dramFallback = reg.Counter("serve_dram_fallback")
		h.pmemFallback = reg.Counter("serve_pmem_fallback")
		h.initServed = reg.Counter("serve_init_served")
		h.replicaHits = reg.Counter("serve_replica_hits")
		h.refreshes = reg.Counter("serve_refreshes")
		h.shed = reg.Counter("serve_shed")
	}
	eng.EnableServeSnapshots()
	return h
}

// SetReplicas attaches the failover replica overlay (nil detaches). The
// node installs its long-lived store here after every engine swap, so
// replicas survive rollback and restart.
func (h *Handler) SetReplicas(rs *ReplicaStore) { h.replicas.Store(rs) }

// SetMaxInflight sets the admission watermark: requests arriving while n
// are already in flight are shed with a busy error instead of queueing.
// n <= 0 disables admission control (the default).
func (h *Handler) SetMaxInflight(n int) {
	if n < 0 {
		n = 0
	}
	h.maxInflight.Store(int64(n))
}

// Inflight returns the number of bag requests currently executing (tests
// and oectl; always 0 with admission control disabled).
func (h *Handler) Inflight() int64 { return h.inflight.Load() }

// Dim implements rpc.BagServer.
func (h *Handler) Dim() int { return h.dim }

// PullBags implements rpc.BagServer: bag b is keys[offsets[b]:
// offsets[b+1]], pooled into out[b*dim:(b+1)*dim] — sum, or mean when
// mean is set; an empty bag pools to the zero vector. The caller
// guarantees offsets are valid (rpc.ValidateBagOffsets) and len(out) ==
// (len(offsets)-1)*dim.
//
// The first key of a bag is read straight into the output row; the rest
// land in the pooled scratch row and are vector-added, so pooling itself
// allocates nothing. Per-source tallies accumulate in locals and fold
// into the counters once per request.
//
// oevet:hotpath
func (h *Handler) PullBags(mean bool, offsets []uint32, keys []uint64, out []float32) error {
	// Admission control: shed beyond the watermark instead of queueing.
	// Disabled (the default) this is one atomic load; the shed path itself
	// allocates nothing (errShed is preallocated).
	if max := h.maxInflight.Load(); max > 0 {
		if h.inflight.Add(1) > max {
			h.inflight.Add(-1)
			h.shed.Add(1)
			return errShed
		}
		defer h.inflight.Add(-1)
	}
	dim := h.dim
	sc := h.scratchPool.Get().(*bagScratch)
	var start time.Duration
	sampled := false
	if h.reg != nil {
		if sc.tick++; sc.tick&7 == 0 {
			start = h.reg.Now()
			sampled = true
		}
	}
	// One atomic load of the replica overlay per request; a nil map
	// indexes as empty, so the non-replicated deployment pays nothing.
	var reps map[uint64][]float32
	if rs := h.replicas.Load(); rs != nil {
		reps = rs.rows()
	}
	var snap, dram, pm, ini, repl int64
	bags := len(offsets) - 1
	for b := 0; b < bags; b++ {
		lo, hi := int(offsets[b]), int(offsets[b+1])
		dst := out[b*dim : (b+1)*dim]
		if lo == hi {
			clear(dst) // empty bag: the zero vector
			continue
		}
		src, err := h.eng.ServeRead(keys[lo], dst)
		if err != nil {
			h.scratchPool.Put(sc)
			return err
		}
		switch src {
		case core.ServeSnap:
			snap++
		case core.ServeDRAM:
			dram++
		case core.ServePMem:
			pm++
		default:
			// Unknown to the engine: a key this node does not own. Serve
			// the failover replica when the overlay holds one — locally
			// owned keys never reach here, so engine state always wins.
			if row := reps[keys[lo]]; row != nil {
				copy(dst, row)
				repl++
			} else {
				ini++
			}
		}
		for j := lo + 1; j < hi; j++ {
			src, err := h.eng.ServeRead(keys[j], sc.row)
			if err != nil {
				h.scratchPool.Put(sc)
				return err
			}
			switch src {
			case core.ServeSnap:
				snap++
			case core.ServeDRAM:
				dram++
			case core.ServePMem:
				pm++
			default:
				if row := reps[keys[j]]; row != nil {
					copy(sc.row, row)
					repl++
				} else {
					ini++
				}
			}
			row := sc.row
			for i := range dst {
				dst[i] += row[i]
			}
		}
		if mean {
			inv := 1 / float32(hi-lo)
			for i := range dst {
				dst[i] *= inv
			}
		}
	}
	h.requests.Add(1)
	h.keysServed.Add(int64(len(keys)))
	h.snapHits.Add(snap)
	h.dramFallback.Add(dram)
	h.pmemFallback.Add(pm)
	h.initServed.Add(ini)
	h.replicaHits.Add(repl)
	if sampled {
		h.bagNS.Observe(h.reg.Now() - start)
	}
	h.scratchPool.Put(sc)
	return nil
}

// Refresh runs one hot-set refresh pass: keys the fallback path read from
// PMem are promoted into the DRAM cache and every shard's snapshot is
// republished. Single-flighted — a call that finds a refresh already in
// progress returns nil immediately.
func (h *Handler) Refresh() error {
	if !h.refreshing.CompareAndSwap(false, true) {
		return nil
	}
	defer h.refreshing.Store(false)
	if err := h.eng.RefreshServeSnapshots(); err != nil {
		return err
	}
	h.refreshes.Add(1)
	return nil
}

// StartRefresher runs Refresh every interval on a background goroutine
// until the returned stop function is called. Refresh errors are folded
// into the engine's metric set by the engine itself; the loop keeps going.
func (h *Handler) StartRefresher(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				h.Refresh() //nolint:errcheck // refresh is best-effort; the next tick retries
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
