package serve

import (
	"os"
	"strconv"
	"testing"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/simclock"
	"openembedding/internal/workload"
)

// soakSeed is fixed by default so CI is reproducible; OE_CHAOS_SEED
// overrides it (the CI serving-soak job sweeps a small seed matrix).
func soakSeed(t *testing.T) uint64 {
	t.Helper()
	if s := os.Getenv("OE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("OE_CHAOS_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

// soakResult is what one soak run measures.
type soakResult struct {
	requests int
	elapsed  time.Duration
	bagNS    obs.HistSnapshot
	snapRate float64 // fraction of keys served lock-free
	windows  uint64  // flash-crowd rotations covered
}

// runFlashCrowdSoak drives a flash-crowd bag-gather workload at a handler
// while training keeps pushing and the hot set rotates mid-run. The
// workload's virtual clock (rotation) advances deterministically per
// request; request latency is measured on the wall clock by the handler's
// own serve_bag_ns histogram.
func runFlashCrowdSoak(t testing.TB, seed uint64, rounds int) soakResult {
	const (
		dim      = 16
		keyspace = 8192
		tables   = 8
		batch    = 16
		bagSize  = 2
		hot      = 256
		rotate   = 2 * time.Second // virtual
		tick     = 2 * time.Millisecond
	)
	e := newTestEngine(t, dim, keyspace, 2048, 4)

	// Pre-train the whole key space so every serve hits real trained rows.
	all := make([]uint64, keyspace)
	for i := range all {
		all[i] = uint64(i)
	}
	var b int64
	for lo := 0; lo < keyspace; lo += 512 {
		train(t, e, b, all[lo:lo+512], 1.0)
		b++
	}

	reg := obs.NewRegistry()
	h := New(e, reg)

	fc := workload.NewFlashCrowd(keyspace, hot, 0.9, rotate, seed)
	trainFC := workload.NewFlashCrowd(keyspace, hot, 0.9, rotate, seed+1)
	clock := simclock.NewClock()

	const bags = tables * batch
	offsets := make([]uint32, bags+1)
	for i := range offsets {
		offsets[i] = uint32(i * bagSize)
	}
	keys := make([]uint64, bags*bagSize)
	out := make([]float32, bags*dim)
	trainKeys := make([]uint64, 0, 64)
	grads := make([]float32, 64*dim)
	for i := range grads {
		grads[i] = 1
	}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		now := clock.Advance(tick)
		fc.Advance(now)
		for i := range keys {
			keys[i] = fc.Sample()
		}
		if err := h.PullBags(r%2 == 1, offsets, keys, out); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		// Interleave training pushes on the same rotating crowd, plus the
		// refresh cadence that re-publishes snapshots.
		if r%10 == 5 {
			trainFC.Advance(now)
			seen := make(map[uint64]bool, 64)
			trainKeys = trainKeys[:0]
			for len(trainKeys) < 64 {
				k := trainFC.Sample()
				if !seen[k] {
					seen[k] = true
					trainKeys = append(trainKeys, k)
				}
			}
			dst := make([]float32, len(trainKeys)*dim)
			if err := e.Pull(b, trainKeys, dst); err != nil {
				t.Fatalf("train pull %d: %v", b, err)
			}
			e.EndPullPhase(b)
			if err := e.Push(b, trainKeys, grads[:len(trainKeys)*dim]); err != nil {
				t.Fatalf("train push %d: %v", b, err)
			}
			if err := e.EndBatch(b); err != nil {
				t.Fatalf("train end %d: %v", b, err)
			}
			b++
		}
		if r%50 == 25 {
			if err := h.Refresh(); err != nil {
				t.Fatalf("refresh: %v", err)
			}
		}
	}
	elapsed := time.Since(start)

	served := reg.Counter("serve_keys").Value()
	res := soakResult{
		requests: rounds,
		elapsed:  elapsed,
		bagNS:    reg.Histogram("serve_bag_ns").Snapshot(),
		windows:  fc.Window() + 1,
	}
	if served > 0 {
		res.snapRate = float64(reg.Counter("serve_snap_hits").Value()) / float64(served)
	}
	if got := reg.Counter("serve_init_served").Value(); got != 0 {
		t.Fatalf("%d keys served from the initializer; the whole key space is trained", got)
	}
	return res
}

// TestServeFlashCrowdSoak is the serving soak gate: a rotating flash-crowd
// workload against a live training engine must finish with sane latency
// percentiles, a dominant lock-free hit rate, and at least one hot-set
// rotation survived mid-run.
func TestServeFlashCrowdSoak(t *testing.T) {
	seed := soakSeed(t)
	t.Logf("soak seed = %d (set OE_CHAOS_SEED to override)", seed)
	rounds := 3000
	if testing.Short() {
		rounds = 600
	}
	res := runFlashCrowdSoak(t, seed, rounds)

	qps := float64(res.requests) / res.elapsed.Seconds()
	t.Logf("%d requests in %s (%.0f QPS), bag p50=%s p99=%s max=%s, snap hit rate %.1f%%, %d crowd windows",
		res.requests, res.elapsed.Round(time.Millisecond), qps,
		time.Duration(res.bagNS.P50), time.Duration(res.bagNS.P99), time.Duration(res.bagNS.Max),
		100*res.snapRate, res.windows)

	if res.bagNS.Count == 0 {
		t.Fatal("latency histogram empty: the 1-in-8 sampler never fired")
	}
	// Latency gates are sanity bounds, not performance claims: shared CI
	// runners are noisy, so only order-of-magnitude failures trip them.
	if p99 := time.Duration(res.bagNS.P99); p99 > 250*time.Millisecond {
		t.Errorf("bag-gather p99 = %s, want < 250ms", p99)
	}
	if p50 := time.Duration(res.bagNS.P50); p50 > 50*time.Millisecond {
		t.Errorf("bag-gather p50 = %s, want < 50ms", p50)
	}
	// The lock-free path must carry the load: 90% of traffic targets a hot
	// set that refreshes keep snapshot-resident.
	if res.snapRate < 0.5 {
		t.Errorf("snapshot hit rate %.1f%%, want >= 50%%", 100*res.snapRate)
	}
	// The virtual clock must have rotated the crowd mid-run: 3000 rounds ×
	// 2ms = 6 virtual seconds over a 2s rotation period.
	if res.windows < 2 {
		t.Errorf("flash crowd never rotated (windows = %d)", res.windows)
	}
}

// TestServeSoakValuesMatchEngine spot-checks that soak-style pooled reads
// agree with per-key engine reads after the crowd has rotated and training
// has moved the rows.
func TestServeSoakValuesMatchEngine(t *testing.T) {
	const dim = 8
	e := newTestEngine(t, dim, 1024, 256, 2)
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64(i)
	}
	for lo := 0; lo < len(keys); lo += 128 {
		train(t, e, int64(lo/128), keys[lo:lo+128], 1.0)
	}
	h := New(e, obs.NewRegistry())

	fc := workload.NewFlashCrowd(len(keys), 32, 0.8, time.Second, soakSeed(t))
	fc.Advance(1500 * time.Millisecond) // second window: rotated crowd
	offsets := []uint32{0, 2, 5, 5, 9}
	bagKeys := make([]uint64, 9)
	for i := range bagKeys {
		bagKeys[i] = fc.Sample()
	}
	out := make([]float32, (len(offsets)-1)*dim)
	if err := h.PullBags(true, offsets, bagKeys, out); err != nil {
		t.Fatal(err)
	}
	want := poolRef(t, e, true, offsets, bagKeys)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}
