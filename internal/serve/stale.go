package serve

import (
	"sort"
	"sync"

	"openembedding/internal/obs"
)

// StaleTier is the last line of graceful degradation (DESIGN.md §16): a
// bounded cache of previously-served embedding rows that keeps bag reads
// answering — flagged stale — when a key's owner AND its replicas are all
// suspected, partitioned or shedding. The staleness doctrine is explicit:
// a row is as old as the last RefreshStale pass that stored it, a key
// never refreshed contributes the zero vector, and callers see the
// degradation (the result is marked stale) instead of an error.
//
// The tier is fed from two directions: Track records the hot key set as
// requests flow through the fan-out client, and Store installs rows when a
// refresh pass re-reads the tracked keys from healthy owners. Both sides
// are bounded by the configured capacity, so a scan workload cannot turn
// the fallback tier into an unbounded cache.
//
// Safe for concurrent use; a nil *StaleTier disables every method.
type StaleTier struct {
	mu      sync.Mutex
	cap     int
	rows    map[uint64][]float32
	tracked map[uint64]struct{}

	fallbacks *obs.Counter // serve_stale_fallbacks: degraded reads answered
	staleHits *obs.Counter // serve_stale_hits: rows served from the tier
	staleMiss *obs.Counter // serve_stale_miss: tracked-but-unrefreshed keys
}

// DefaultStaleCapacity bounds the tier when NewStaleTier is given a
// non-positive capacity.
const DefaultStaleCapacity = 1 << 16

// NewStaleTier returns an empty tier bounded to capacity keys
// (DefaultStaleCapacity when capacity <= 0).
func NewStaleTier(capacity int) *StaleTier {
	if capacity <= 0 {
		capacity = DefaultStaleCapacity
	}
	return &StaleTier{
		cap:     capacity,
		rows:    make(map[uint64][]float32),
		tracked: make(map[uint64]struct{}),
	}
}

// SetObs registers the tier's counters on reg.
func (t *StaleTier) SetObs(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	t.fallbacks = reg.Counter("serve_stale_fallbacks")
	t.staleHits = reg.Counter("serve_stale_hits")
	t.staleMiss = reg.Counter("serve_stale_miss")
	t.mu.Unlock()
}

// Track records keys as members of the hot set a refresh pass should
// snapshot. Keys beyond the capacity bound are dropped (the tier protects
// the hottest working set, not the whole table).
func (t *StaleTier) Track(keys []uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, k := range keys {
		if len(t.tracked) >= t.cap {
			break
		}
		t.tracked[k] = struct{}{}
	}
	t.mu.Unlock()
}

// TrackedKeys returns the tracked hot set in ascending key order — a
// deterministic refresh order, so a seeded soak's refresh traffic replays
// identically.
func (t *StaleTier) TrackedKeys() []uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	keys := make([]uint64, 0, len(t.tracked))
	for k := range t.tracked {
		keys = append(keys, k)
	}
	t.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Store installs (copies) a row for key. Rows beyond capacity for keys
// never tracked are rejected; refreshing a key already present always
// succeeds.
func (t *StaleTier) Store(key uint64, row []float32) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.rows[key]; !ok && len(t.rows) >= t.cap {
		t.mu.Unlock()
		return
	}
	dst := t.rows[key]
	if dst == nil {
		dst = make([]float32, len(row))
		t.rows[key] = dst
	}
	copy(dst, row)
	t.mu.Unlock()
}

// Lookup returns the stale row for key, or nil when the key was never
// refreshed. The returned slice is shared — callers must not modify it.
// Hit/miss counters tally the degraded read mix.
func (t *StaleTier) Lookup(key uint64) []float32 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	row := t.rows[key]
	t.mu.Unlock()
	if row != nil {
		t.staleHits.Add(1)
	} else {
		t.staleMiss.Add(1)
	}
	return row
}

// Fallback tallies one degraded request answered from the tier.
func (t *StaleTier) Fallback() {
	if t == nil {
		return
	}
	t.fallbacks.Add(1)
}

// Len returns the number of refreshed rows held (tests and oectl).
func (t *StaleTier) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}
