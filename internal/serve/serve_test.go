package serve

import (
	"testing"
	"time"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

func newTestEngine(t testing.TB, dim, capacity, cache, shards int) *core.Engine {
	t.Helper()
	cfg := psengine.Config{
		Dim:          dim,
		Optimizer:    optim.NewSGD(0.1),
		Capacity:     capacity,
		CacheEntries: cache,
		Shards:       shards,
		Meter:        simclock.NewMeter(),
	}
	cfg = cfg.WithDefaults()
	payload := pmem.FloatBytes(cfg.EntryFloats())
	slots := cfg.Capacity * 4
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, slots), device.NewTimedPMem(cfg.Meter))
	arena, err := pmem.NewArena(dev, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// train drives one batch (pull, optional constant-gradient push, seal) and
// returns the pulled rows.
func train(t testing.TB, e *core.Engine, batch int64, keys []uint64, grad float32) []float32 {
	t.Helper()
	dim := e.Dim()
	dst := make([]float32, len(keys)*dim)
	if err := e.Pull(batch, keys, dst); err != nil {
		t.Fatalf("pull %d: %v", batch, err)
	}
	e.EndPullPhase(batch)
	e.WaitMaintenance()
	if grad != 0 {
		g := make([]float32, len(keys)*dim)
		for i := range g {
			g[i] = grad
		}
		if err := e.Push(batch, keys, g); err != nil {
			t.Fatalf("push %d: %v", batch, err)
		}
	}
	if err := e.EndBatch(batch); err != nil {
		t.Fatalf("end %d: %v", batch, err)
	}
	return dst
}

// poolRef replicates the handler's pooling arithmetic (sequential float32
// adds, multiply-by-reciprocal mean) over rows fetched one at a time.
func poolRef(t testing.TB, e *core.Engine, mean bool, offsets []uint32, keys []uint64) []float32 {
	t.Helper()
	dim := e.Dim()
	bags := len(offsets) - 1
	out := make([]float32, bags*dim)
	row := make([]float32, dim)
	for b := 0; b < bags; b++ {
		lo, hi := int(offsets[b]), int(offsets[b+1])
		dst := out[b*dim : (b+1)*dim]
		for j := lo; j < hi; j++ {
			if _, err := e.ServeRead(keys[j], row); err != nil {
				t.Fatal(err)
			}
			if j == lo {
				copy(dst, row)
				continue
			}
			for i := range dst {
				dst[i] += row[i]
			}
		}
		if mean && hi > lo {
			inv := 1 / float32(hi-lo)
			for i := range dst {
				dst[i] *= inv
			}
		}
	}
	return out
}

func TestPullBagsPooling(t *testing.T) {
	const dim = 8
	e := newTestEngine(t, dim, 256, 128, 2)
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	train(t, e, 0, keys, 1.0)

	reg := obs.NewRegistry()
	h := New(e, reg)
	if h.Dim() != dim {
		t.Fatalf("dim = %d", h.Dim())
	}

	// Bags: [1 2 3] [] [4] [5 6 7 8] [9 9] — duplicates and an empty bag.
	offsets := []uint32{0, 3, 3, 4, 8, 10}
	bagKeys := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 9}
	for _, mean := range []bool{false, true} {
		out := make([]float32, (len(offsets)-1)*dim)
		// Poison the buffer: the handler must fully overwrite it, including
		// the empty bag's zero vector.
		for i := range out {
			out[i] = 777
		}
		if err := h.PullBags(mean, offsets, bagKeys, out); err != nil {
			t.Fatal(err)
		}
		want := poolRef(t, e, mean, offsets, bagKeys)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("mean=%v out[%d] = %v, want %v", mean, i, out[i], want[i])
			}
		}
		for i := dim; i < 2*dim; i++ { // bag 1 is empty
			if out[i] != 0 {
				t.Fatalf("empty bag served %v, want zero vector", out[dim:2*dim])
			}
		}
	}

	if got := reg.Counter("serve_requests").Value(); got != 2 {
		t.Fatalf("serve_requests = %d, want 2", got)
	}
	if got := reg.Counter("serve_keys").Value(); got != int64(2*len(bagKeys)) {
		t.Fatalf("serve_keys = %d, want %d", got, 2*len(bagKeys))
	}
	if reg.Counter("serve_snap_hits").Value() == 0 {
		t.Fatal("no snapshot hits recorded")
	}
}

// TestPullBagsZeroAllocs pins the whole serving request path — bag loop,
// snapshot reads, pooling, metrics — at zero heap allocations per request,
// the property BENCH_pr8.json tracks and CI gates.
func TestPullBagsZeroAllocs(t *testing.T) {
	const dim = 16
	e := newTestEngine(t, dim, 1024, 512, 4)
	keys := make([]uint64, 128)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	train(t, e, 0, keys, 1.0)

	reg := obs.NewRegistry() // metrics on: they must not allocate either
	h := New(e, reg)

	const bags = 64
	offsets := make([]uint32, bags+1)
	bagKeys := make([]uint64, 0, bags*2)
	for b := 0; b < bags; b++ {
		offsets[b] = uint32(len(bagKeys))
		bagKeys = append(bagKeys, keys[(2*b)%len(keys)], keys[(2*b+1)%len(keys)])
	}
	offsets[bags] = uint32(len(bagKeys))
	out := make([]float32, bags*dim)

	// Warm: the scratch pool must be populated and every key snapshot-hot.
	if err := h.PullBags(false, offsets, bagKeys, out); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("serve_snap_hits").Value() != int64(len(bagKeys)) {
		t.Fatalf("warm-up keys not all snapshot-resident: %d/%d",
			reg.Counter("serve_snap_hits").Value(), len(bagKeys))
	}

	mean := false
	allocs := testing.AllocsPerRun(500, func() {
		mean = !mean
		if err := h.PullBags(mean, offsets, bagKeys, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PullBags allocates %.1f/op, want 0", allocs)
	}
}

func TestRefreshSingleFlightAndCounters(t *testing.T) {
	e := newTestEngine(t, 8, 256, 32, 1)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	train(t, e, 0, keys, 0)
	reg := obs.NewRegistry()
	h := New(e, reg)

	// Push cold keys through the fallback so the refresh has promotion work.
	out := make([]float32, 8)
	for _, k := range keys {
		if err := h.PullBags(false, []uint32{0, 1}, []uint64{k}, out); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Counter("serve_pmem_fallback").Value() == 0 {
		t.Fatal("expected PMem fallbacks with a 32-entry cache over 64 keys")
	}
	if err := h.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve_refreshes").Value(); got != 1 {
		t.Fatalf("serve_refreshes = %d, want 1", got)
	}
	// A second refresh with no new observations is still a refresh pass.
	if err := h.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve_refreshes").Value(); got != 2 {
		t.Fatalf("serve_refreshes = %d, want 2", got)
	}

	stop := h.StartRefresher(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("serve_refreshes").Value() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("background refresher never ran")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}
