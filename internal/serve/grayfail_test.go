package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"openembedding/internal/obs"
)

// Graceful-degradation tests (DESIGN.md §16): admission control sheds
// load past the inflight watermark with a busy-flavored error, and the
// stale fallback tier tracks, refreshes and serves bounded row snapshots.

func TestAdmissionControlSheds(t *testing.T) {
	const dim = 4
	e := newTestEngine(t, dim, 256, 128, 1)
	keys := []uint64{1, 2, 3, 4}
	train(t, e, 0, keys, 1)
	reg := obs.NewRegistry()
	h := New(e, reg)
	h.SetMaxInflight(1)

	offsets := []uint32{0, uint32(len(keys))}
	out := make([]float32, dim)

	// A single caller is always admitted.
	if err := h.PullBags(false, offsets, keys, out); err != nil {
		t.Fatalf("request under the watermark shed: %v", err)
	}

	// Saturate: many concurrent callers against watermark 1 must shed
	// some, and every shed is the typed busy error — never a wrong answer.
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float32, dim)
			err := h.PullBags(false, offsets, keys, buf)
			switch {
			case err == nil:
				ok.Add(1)
			case IsShed(err):
				shed.Add(1)
			default:
				t.Errorf("unexpected error under load: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request admitted at watermark 1")
	}
	if got := reg.Snapshot().Counters["serve_shed"]; got != shed.Load() {
		t.Fatalf("serve_shed = %d, want %d (one per shed request)", got, shed.Load())
	}
	if h.Inflight() != 0 {
		t.Fatalf("inflight = %d after quiesce, want 0", h.Inflight())
	}

	// The shed error maps to the rpc busy response via its Busy() method.
	if _, ok := errShed.(interface{ Busy() bool }); !ok {
		t.Fatal("errShed does not implement Busy(); servers would return a generic error")
	}

	// Raising the watermark (or disabling with 0) re-admits everything.
	h.SetMaxInflight(0)
	if err := h.PullBags(false, offsets, keys, out); err != nil {
		t.Fatalf("request with admission disabled: %v", err)
	}
}

// TestAdmissionDisabledZeroAllocs: with no watermark the admission check
// is one atomic load — the 0-alloc serving hot path is untouched.
func TestAdmissionDisabledZeroAllocs(t *testing.T) {
	const dim = 8
	e := newTestEngine(t, dim, 256, 128, 1)
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	train(t, e, 0, keys, 1)
	h := New(e, obs.NewRegistry())

	offsets := []uint32{0, 4, 8}
	out := make([]float32, 2*dim)
	if err := h.PullBags(false, offsets, keys, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := h.PullBags(false, offsets, keys, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PullBags with admission disabled allocates %.1f/op, want 0", allocs)
	}

	// And with a generous watermark the two atomic adds stay alloc-free.
	h.SetMaxInflight(64)
	allocs = testing.AllocsPerRun(200, func() {
		if err := h.PullBags(false, offsets, keys, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PullBags with admission armed allocates %.1f/op, want 0", allocs)
	}
}

func TestStaleTier(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStaleTier(3)
	st.SetObs(reg)

	// Track is bounded and deduplicated; TrackedKeys is sorted.
	st.Track([]uint64{9, 2, 9, 5})
	st.Track([]uint64{7, 8}) // beyond capacity 3: dropped
	got := st.TrackedKeys()
	want := []uint64{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("tracked = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tracked = %v, want %v (ascending)", got, want)
		}
	}

	// Store copies the row: mutating the source must not reach the tier.
	src := []float32{1, 2}
	st.Store(2, src)
	src[0] = 99
	if row := st.Lookup(2); row[0] != 1 || row[1] != 2 {
		t.Fatalf("stored row = %v, want a copy of [1 2]", row)
	}
	// Lookup of a never-refreshed key misses (the caller substitutes the
	// zero vector — the documented staleness doctrine).
	if row := st.Lookup(5); row != nil {
		t.Fatalf("unrefreshed key returned %v, want nil", row)
	}

	// Row capacity bounds Store; re-storing a resident key refreshes it.
	st.Store(5, []float32{3, 4})
	st.Store(9, []float32{5, 6})
	st.Store(7, []float32{7, 8}) // over capacity: rejected
	if st.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (capacity)", st.Len())
	}
	if row := st.Lookup(7); row != nil {
		t.Fatalf("over-capacity key stored: %v", row)
	}
	st.Store(2, []float32{10, 20})
	if row := st.Lookup(2); row[0] != 10 {
		t.Fatalf("refresh of resident key lost: %v", row)
	}

	st.Fallback()
	s := reg.Snapshot()
	if s.Counters["serve_stale_fallbacks"] != 1 {
		t.Fatalf("serve_stale_fallbacks = %d, want 1", s.Counters["serve_stale_fallbacks"])
	}
	if s.Counters["serve_stale_hits"] != 2 || s.Counters["serve_stale_miss"] != 2 {
		t.Fatalf("hits/miss = %d/%d, want 2/2",
			s.Counters["serve_stale_hits"], s.Counters["serve_stale_miss"])
	}

	// A nil tier disables every method.
	var nilT *StaleTier
	nilT.Track([]uint64{1})
	nilT.Store(1, src)
	nilT.Fallback()
	if nilT.Lookup(1) != nil || nilT.TrackedKeys() != nil || nilT.Len() != 0 {
		t.Fatal("nil StaleTier misbehaved")
	}
}
