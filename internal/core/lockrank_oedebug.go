//go:build oedebug

package core

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// This file is the -tags oedebug implementation of the ranked locks: every
// Lock/RLock first checks, against a per-goroutine stack of held ranks,
// the same strictly-increasing-rank invariant that the lockorder analyzer
// (internal/analysis/lockorder) enforces statically, and panics on a
// violation. The static check covers annotated call graphs; this dynamic
// check covers whatever concurrency a test actually exercises — each
// catches inversions the other can miss.
//
// A rank of 0 means initRank was never called (a zero-value Engine outside
// New); such locks are exempt rather than guessed at.

// lockRankDebug: the rank checks below allocate (per-goroutine held-lock
// stacks), so the zero-alloc hot-path pins skip themselves in this build.
const lockRankDebug = true

type heldLock struct {
	name string
	rank int
}

var lockRanks struct {
	mu   sync.Mutex
	held map[int64][]heldLock // goroutine id -> ranked locks held
}

// gid extracts the current goroutine's id from runtime.Stack. Slow, but
// this code exists only under -tags oedebug.
func gid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseInt(string(s), 10, 64)
	return id
}

// rankAcquire checks and records an acquisition. It runs before blocking on
// the underlying mutex, mirroring where the static analyzer reports.
func rankAcquire(name string, rank int) {
	g := gid()
	lockRanks.mu.Lock()
	defer lockRanks.mu.Unlock()
	for _, h := range lockRanks.held[g] {
		if rank <= h.rank {
			panic(fmt.Sprintf("lockrank: goroutine %d acquires %s (rank %d) while holding %s (rank %d); the hierarchy requires strictly increasing ranks",
				g, name, rank, h.name, h.rank))
		}
	}
	if lockRanks.held == nil {
		lockRanks.held = make(map[int64][]heldLock)
	}
	lockRanks.held[g] = append(lockRanks.held[g], heldLock{name, rank})
}

func rankRelease(name string) {
	g := gid()
	lockRanks.mu.Lock()
	defer lockRanks.mu.Unlock()
	hs := lockRanks.held[g]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].name == name {
			hs = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(hs) == 0 {
		delete(lockRanks.held, g)
	} else {
		lockRanks.held[g] = hs
	}
}

type rankedMutex struct {
	mu   sync.Mutex
	name string
	rank int
}

func (m *rankedMutex) initRank(name string, rank int) { m.name, m.rank = name, rank }

func (m *rankedMutex) Lock() {
	if m.rank != 0 {
		rankAcquire(m.name, m.rank)
	}
	m.mu.Lock()
}

func (m *rankedMutex) Unlock() {
	m.mu.Unlock()
	if m.rank != 0 {
		rankRelease(m.name)
	}
}

type rankedRWMutex struct {
	mu   sync.RWMutex
	name string
	rank int
}

func (m *rankedRWMutex) initRank(name string, rank int) { m.name, m.rank = name, rank }

func (m *rankedRWMutex) Lock() {
	if m.rank != 0 {
		rankAcquire(m.name, m.rank)
	}
	m.mu.Lock()
}

func (m *rankedRWMutex) Unlock() {
	m.mu.Unlock()
	if m.rank != 0 {
		rankRelease(m.name)
	}
}

func (m *rankedRWMutex) RLock() {
	if m.rank != 0 {
		rankAcquire(m.name, m.rank)
	}
	m.mu.RLock()
}

func (m *rankedRWMutex) RUnlock() {
	m.mu.RUnlock()
	if m.rank != 0 {
		rankRelease(m.name)
	}
}
