package core

import (
	"fmt"
)

// Checkpointing follows Algorithm 2's co-design with cache replacement: a
// request only enqueues a batch ID; the actual persistence work happens as
// entries are flushed during normal cache maintenance, and the durable
// Checkpointed Batch ID advances once every state the checkpoint needs is
// in PMem.
//
// The paper detects completion from the LRU tail (victim version newer than
// the on-going checkpoint). That detection is exact only under the paper's
// operating assumption that the cache always holds a full batch's working
// set. This implementation keeps the same flush schedule but tracks
// completion exactly: when a checkpoint becomes the active head, one scan
// of the cache counts the dirty entries whose data it needs
// (ckptRemaining); every flush that persists such an entry decrements the
// counter; zero means complete. The scan also memoizes those entries so the
// per-batch finalizer can push the checkpoint to completion even when the
// cache is so effective that evictions never occur.

// RequestCheckpoint implements psengine.Engine: it appends the batch to the
// Checkpoint Request Queue (Fig. 5 right). "No other work needs to be done
// at this time."
//
// batch must be the most recently sealed batch (the paper always
// checkpoints "the latest batch that completed training"), and the call
// must happen at a batch boundary — after EndBatch(batch) and before the
// next batch's Push phase — because a push overwrites in DRAM exactly the
// state the checkpoint captures.
func (e *Engine) RequestCheckpoint(batch int64) error {
	e.mu.RLock()
	sealed := e.lastEnded
	e.mu.RUnlock()
	if batch != sealed {
		return fmt.Errorf("core: checkpoint batch %d is not the last sealed batch %d", batch, sealed)
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if n := len(e.ckptQueue); n > 0 && batch <= e.ckptQueue[n-1] {
		return fmt.Errorf("core: checkpoint batch %d not newer than queued %d", batch, e.ckptQueue[n-1])
	}
	if batch <= e.completedCkpt.Load() {
		return fmt.Errorf("core: checkpoint batch %d already covered by completed %d", batch, e.completedCkpt.Load())
	}
	e.ckptQueue = append(e.ckptQueue, batch)
	return nil
}

// CompletedCheckpoint implements psengine.Engine.
func (e *Engine) CompletedCheckpoint() int64 { return e.completedCkpt.Load() }

// PendingCheckpoints reports how many checkpoint requests are in flight.
func (e *Engine) PendingCheckpoints() int {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return len(e.ckptQueue)
}

// headCheckpoint returns the on-going checkpoint's batch ID or -1.
func (e *Engine) headCheckpoint() int64 {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if len(e.ckptQueue) == 0 {
		return -1
	}
	return e.ckptQueue[0]
}

// newestCheckpoint returns the newest queued checkpoint's batch ID or -1.
// The flush-before-overwrite test uses it so that data needed by *any*
// pending checkpoint is persisted before a newer push destroys it.
func (e *Engine) newestCheckpoint() int64 {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if len(e.ckptQueue) == 0 {
		return -1
	}
	return e.ckptQueue[len(e.ckptQueue)-1]
}

// activateHeadLocked makes the queue head the active checkpoint if it is
// not already, counting (and memoizing) the dirty cached entries whose data
// the checkpoint needs. A checkpoint with nothing left to persist completes
// immediately. Caller holds e.mu exclusively.
func (e *Engine) activateHeadLocked() int64 {
	for {
		head := e.headCheckpoint()
		if head == e.ckptActive {
			return head
		}
		if head < 0 {
			e.ckptActive = -1
			e.ckptFlushList = e.ckptFlushList[:0]
			return -1
		}
		e.ckptActive = head
		e.ckptRemaining = 0
		e.ckptFlushList = e.ckptFlushList[:0]
		e.lru.Each(func(ent *entry) bool {
			if ent.dirty && ent.dataVersion <= head {
				ent.ckptPending = true
				e.ckptRemaining++
				e.ckptFlushList = append(e.ckptFlushList, ent)
			}
			return true
		})
		if e.ckptRemaining > 0 {
			return head
		}
		e.completeCheckpointLocked(head)
		// Loop: the next queued checkpoint (if any) becomes active.
	}
}

// noteFlushedLocked records that a dirty entry needed by the active
// checkpoint has been persisted, completing the checkpoint when it was the
// last one. Caller holds e.mu exclusively and has just flushed ent.
func (e *Engine) noteFlushedLocked(neededByActive bool) {
	if !neededByActive {
		return
	}
	e.ckptRemaining--
	if e.ckptRemaining == 0 {
		e.completeCheckpointLocked(e.ckptActive)
		e.activateHeadLocked()
	}
}

// completeCheckpointLocked durably records checkpoint cp as done
// (Alg. 2 lines 24-28): persist the Checkpointed Batch ID with one atomic
// PMem store, pop the request queue, and release superseded records the
// space manager retained for it.
func (e *Engine) completeCheckpointLocked(cp int64) {
	if err := e.arena.SetCheckpointedBatch(cp); err != nil {
		e.maintErrs.set(err)
		return
	}
	e.ckptMu.Lock()
	if len(e.ckptQueue) > 0 && e.ckptQueue[0] == cp {
		e.ckptQueue = e.ckptQueue[1:]
	}
	e.ckptMu.Unlock()
	e.ckptActive = -1
	e.ckptFlushList = e.ckptFlushList[:0]
	e.completedCkpt.Store(cp)
	e.ckptsDone.Add(1)
	e.reclaimLocked()
}

// finalizeCheckpointsLocked guarantees checkpoint progress even when the
// cache is so effective that evictions are rare (the natural completion
// path of Alg. 2 relies on eviction pressure). It drains the memoized
// flush list of the active checkpoint, at most finalizerBudget flushes per
// call; leftover work resumes next batch. Caller holds e.mu exclusively.
func (e *Engine) finalizeCheckpointsLocked() error {
	budget := finalizerBudget
	for budget > 0 {
		cp := e.activateHeadLocked()
		if cp < 0 {
			return nil
		}
		// Pop memoized entries; skip those already persisted (or updated
		// past the checkpoint and persisted by flush-before-overwrite).
		n := len(e.ckptFlushList)
		if n == 0 {
			// Defensive: remaining > 0 but nothing memoized (cannot happen
			// while the invariant holds); rescan next activation.
			return nil
		}
		ent := e.ckptFlushList[n-1]
		e.ckptFlushList = e.ckptFlushList[:n-1]
		if !ent.ckptPending {
			continue // already persisted by maintenance or eviction
		}
		if err := e.flushLocked(ent); err != nil {
			return err
		}
		budget--
	}
	return nil
}

// reclaimLocked frees retired PMem records that no recoverable checkpoint
// can need. A retired record (old version v_old superseded by v_new) is
// needed by a checkpoint cp iff v_old <= cp < v_new; the checkpoints that
// matter are the last completed one (a crash at any moment must recover to
// it), every queued one, and any future request (which is at least as new
// as the last sealed batch, because RequestCheckpoint only accepts the
// latest sealed batch). Caller holds e.mu.
func (e *Engine) reclaimLocked() {
	completed := e.completedCkpt.Load()
	e.ckptMu.Lock()
	queued := append([]int64(nil), e.ckptQueue...)
	e.ckptMu.Unlock()
	lastEnded := e.lastEnded
	e.arena.Reclaim(func(oldV, newV int64) bool {
		if newV > lastEnded {
			return true // a future checkpoint request may land in range
		}
		if completed >= oldV && completed < newV {
			return true
		}
		for _, q := range queued {
			if q >= oldV && q < newV {
				return true
			}
		}
		return false
	})
}
