package core

import (
	"fmt"

	"openembedding/internal/psengine"
)

// Checkpointing follows Algorithm 2's co-design with cache replacement: a
// request only enqueues a batch ID; the actual persistence work happens as
// entries are flushed during normal cache maintenance, and the durable
// Checkpointed Batch ID advances once every state the checkpoint needs is
// in PMem.
//
// The paper detects completion from the LRU tail (victim version newer than
// the on-going checkpoint). That detection is exact only under the paper's
// operating assumption that the cache always holds a full batch's working
// set. This implementation keeps the same flush schedule but tracks
// completion exactly: when a checkpoint becomes the active head, one scan
// over every shard's cache counts the dirty entries whose data it needs
// (ckptRemaining); every flush that persists such an entry decrements the
// counter; zero means complete. The scan also memoizes those entries so the
// per-batch finalizer can push the checkpoint to completion even when the
// cache is so effective that evictions never occur.
//
// The accounting stays centralized at the coordinator rather than per
// shard: a checkpoint is one cross-shard predicate ("every dirty entry with
// dataVersion <= cp is persisted"), and completing it publishes one durable
// Checkpointed Batch ID — splitting the count N ways would still need a
// global merge step on every flush to detect the zero crossing, so N-way
// counters buy nothing. Instead the counter is a single atomic that
// per-shard flushes decrement lock-free, and the queue/flush-list live
// under the small ckptMu.
//
// Lock ordering: shard.mu → ckptMu → arena.mu. A flush calls noteFlushed
// (and possibly completeCheckpoint) while holding its shard's lock, so
// ckptMu must never be held while acquiring a shard lock. The activation
// scan needs every shard's lock; activateHead therefore publishes its
// intent under ckptMu (ckptActivating plus a bias on the counter), releases
// ckptMu, scans the shards lock by lock, and only then folds the count in.
// The bias keeps concurrent decrements from reaching zero mid-scan, so the
// zero crossing — and hence completion — still happens exactly once.

// RequestCheckpoint implements psengine.Engine: it appends the batch to the
// Checkpoint Request Queue (Fig. 5 right). "No other work needs to be done
// at this time."
//
// batch must be the most recently sealed batch (the paper always
// checkpoints "the latest batch that completed training"), and the call
// must happen at a batch boundary — after EndBatch(batch) and before the
// next batch's Push phase — because a push overwrites in DRAM exactly the
// state the checkpoint captures.
func (e *Engine) RequestCheckpoint(batch int64) error {
	if sealed := e.lastEnded.Load(); batch != sealed {
		return fmt.Errorf("core: checkpoint batch %d is not the last sealed batch %d", batch, sealed)
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if n := len(e.ckptQueue); n > 0 && batch <= e.ckptQueue[n-1] {
		return fmt.Errorf("core: checkpoint batch %d not newer than queued %d", batch, e.ckptQueue[n-1])
	}
	if batch <= e.completedCkpt.Load() {
		return fmt.Errorf("core: checkpoint batch %d already covered by completed %d", batch, e.completedCkpt.Load())
	}
	e.ckptQueue = append(e.ckptQueue, batch)
	return nil
}

// CompletedCheckpoint implements psengine.Engine.
func (e *Engine) CompletedCheckpoint() int64 { return e.completedCkpt.Load() }

// PrevCompletedCheckpoint returns the checkpoint retained behind the
// latest one, or -1 (always -1 unless cfg.RetainCheckpoints >= 2). A
// rollback (RecoverTo) may target either retained checkpoint.
func (e *Engine) PrevCompletedCheckpoint() int64 { return e.prevCompleted.Load() }

// AdvanceCheckpoints pushes the active checkpoint toward completion by one
// finalizer budget without sealing a batch — the progress hook a trainer's
// checkpoint-commit poll drives over RPC, so a checkpoint requested at the
// last batch of a run still completes. Safe from any request thread: it
// takes the same locks as the maintenance finalizer and nothing else.
func (e *Engine) AdvanceCheckpoints() error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := e.maintErrs.peek(); err != nil {
		return err
	}
	return e.finalizeCheckpoints()
}

// PendingCheckpoints reports how many checkpoint requests are in flight.
func (e *Engine) PendingCheckpoints() int {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return len(e.ckptQueue)
}

// newestCheckpoint returns the newest queued checkpoint's batch ID or -1.
// The flush-before-overwrite test uses it so that data needed by *any*
// pending checkpoint is persisted before a newer push destroys it.
func (e *Engine) newestCheckpoint() int64 {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if len(e.ckptQueue) == 0 {
		return -1
	}
	return e.ckptQueue[len(e.ckptQueue)-1]
}

// ckptScanBias keeps ckptRemaining positive while an activation scan is in
// flight, so flushes that race with the scan cannot drive it to zero before
// the scan's count has been folded in.
const ckptScanBias = int64(1) << 40

// activateHead makes the queue head the active checkpoint if it is not
// already, counting (and memoizing) the dirty cached entries across all
// shards whose data the checkpoint needs. A checkpoint with nothing left to
// persist completes immediately. It returns the active checkpoint's batch
// ID, or -1 when none is pending.
//
// Callers hold no shard lock (the scan acquires them one at a time). It is
// called from the coordinator paths only: EndPullPhase, the finalizer and
// the inline-maintenance path.
func (e *Engine) activateHead() int64 {
	for {
		e.ckptMu.Lock()
		if e.ckptActivating || e.ckptActive >= 0 {
			head := e.ckptActive
			e.ckptMu.Unlock()
			return head
		}
		if len(e.ckptQueue) == 0 {
			e.ckptMu.Unlock()
			return -1
		}
		head := e.ckptQueue[0]
		e.ckptActive = head
		e.ckptActivating = true
		e.ckptFlushList = e.ckptFlushList[:0]
		e.ckptRemaining.Store(ckptScanBias)
		e.ckptMu.Unlock()

		// Scan outside ckptMu: shard locks must never nest inside it.
		var (
			count  int64
			marked []*entry
		)
		for _, s := range e.shards {
			s.mu.Lock()
			s.lru.Each(func(ent *entry) bool {
				if ent.dirty && ent.dataVersion <= head {
					ent.ckptPending = true
					count++
					marked = append(marked, ent)
				}
				return true
			})
			s.mu.Unlock()
		}

		e.ckptMu.Lock()
		e.ckptFlushList = append(e.ckptFlushList, marked...)
		e.ckptActivating = false
		e.ckptMu.Unlock()
		if rem := e.ckptRemaining.Add(count - ckptScanBias); rem > 0 {
			return head
		}
		// Everything the checkpoint needed was already persisted (or was
		// flushed while we scanned): complete it and loop so the next
		// queued checkpoint (if any) becomes active.
		e.completeCheckpoint(head)
	}
}

// noteFlushed records that a dirty entry needed by the active checkpoint
// has been persisted, completing the checkpoint when it was the last one.
// Called from flushLocked with the flushing shard's lock held; the
// decrement is a bare atomic, so flushes on different shards never contend
// here. Exactly one caller observes the zero crossing, and until that
// caller runs completeCheckpoint no new activation can begin, so reading
// ckptActive afterwards is stable.
//
// oevet:holds core.shard.mu 10
func (e *Engine) noteFlushed(needed bool) {
	if !needed {
		return
	}
	if e.ckptRemaining.Add(-1) != 0 {
		return
	}
	e.ckptMu.Lock()
	cp := e.ckptActive
	e.ckptMu.Unlock()
	e.completeCheckpoint(cp)
}

// completeCheckpoint durably records checkpoint cp as done
// (Alg. 2 lines 24-28): persist the Checkpointed Batch ID with one atomic
// PMem store, pop the request queue, and release superseded records the
// space manager retained for it. Safe to call with a shard lock held
// (ckptMu and the arena's own lock order after shard locks); lockorder
// checks it against the worst-case caller, noteFlushed, by inferring the
// shard lock at entry from noteFlushed's holds annotation. (No holds
// annotation here: the shard lock is tolerated, not required — activateHead
// calls with no lock held.)
func (e *Engine) completeCheckpoint(cp int64) {
	if e.cfg.RetainCheckpoints >= 2 {
		// The outgoing checkpoint becomes the retained previous one.
		// Ordering matters for crash safety: persist prev BEFORE advancing
		// cur. A crash between the stores leaves prev == cur, which
		// recovery reads as "one checkpoint retained" — safe; the reverse
		// order could leave prev pointing at records already reclaimed.
		prev := e.completedCkpt.Load()
		if err := e.arena.SetPrevCheckpointedBatch(prev); err != nil {
			e.maintErrs.set(err)
			return
		}
		e.prevCompleted.Store(prev)
	}
	if err := e.arena.SetCheckpointedBatch(cp); err != nil {
		e.maintErrs.set(err)
		return
	}
	e.ckptMu.Lock()
	if len(e.ckptQueue) > 0 && e.ckptQueue[0] == cp {
		e.ckptQueue = e.ckptQueue[1:]
	}
	e.ckptActive = -1
	e.ckptFlushList = e.ckptFlushList[:0]
	e.ckptMu.Unlock()
	e.completedCkpt.Store(cp)
	e.ckptsDone.Add(1)
	e.reclaim()
}

// finalizeCheckpoints guarantees checkpoint progress even when the cache is
// so effective that evictions are rare (the natural completion path of
// Alg. 2 relies on eviction pressure). It drains the memoized flush list of
// the active checkpoint, locking each entry's own shard for the flush, at
// most finalizerBudget flushes per call; leftover work resumes next batch.
// Callers hold no shard lock.
func (e *Engine) finalizeCheckpoints() error {
	budget := finalizerBudget
	for budget > 0 {
		cp := e.activateHead()
		if cp < 0 {
			return nil
		}
		// Pop a memoized entry; skip those already persisted (or updated
		// past the checkpoint and persisted by flush-before-overwrite).
		e.ckptMu.Lock()
		if e.ckptActivating || e.ckptActive != cp {
			// Another thread is mid-activation or completed cp between our
			// activateHead and here; let the next finalizer continue.
			e.ckptMu.Unlock()
			return nil
		}
		n := len(e.ckptFlushList)
		if n == 0 {
			// Defensive: remaining > 0 but nothing memoized (cannot happen
			// while the invariant holds); rescan next activation.
			e.ckptMu.Unlock()
			return nil
		}
		ent := e.ckptFlushList[n-1]
		e.ckptFlushList = e.ckptFlushList[:n-1]
		e.ckptMu.Unlock()

		s := e.shardFor(ent.key)
		s.mu.Lock()
		pending := ent.ckptPending
		var err error
		if pending {
			err = s.flushLocked(ent)
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
		if !pending {
			continue // already persisted by maintenance or eviction
		}
		budget--
	}
	return nil
}

// reclaim frees retired PMem records that no recoverable checkpoint can
// need. A retired record (old version v_old superseded by v_new) is needed
// by a checkpoint cp iff v_old <= cp < v_new; the checkpoints that matter
// are the last completed one (a crash at any moment must recover to it),
// every queued one, and any future request (which is at least as new as the
// last sealed batch, because RequestCheckpoint only accepts the latest
// sealed batch). Takes no shard locks, so it is safe from any context.
func (e *Engine) reclaim() {
	completed := e.completedCkpt.Load()
	prev := e.prevCompleted.Load()
	e.ckptMu.Lock()
	queued := append([]int64(nil), e.ckptQueue...)
	e.ckptMu.Unlock()
	lastEnded := e.lastEnded.Load()
	e.arena.Reclaim(func(oldV, newV int64) bool {
		if newV > lastEnded {
			return true // a future checkpoint request may land in range
		}
		if completed >= oldV && completed < newV {
			return true
		}
		if prev >= 0 && prev >= oldV && prev < newV {
			return true // the retained previous checkpoint still needs it
		}
		for _, q := range queued {
			if q >= oldV && q < newV {
				return true
			}
		}
		return false
	})
}
