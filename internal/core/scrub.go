package core

import (
	"errors"
	"slices"

	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
)

// This file is the self-healing integrity scrubber (DESIGN.md §11). The
// scrubber walks persisted records in deterministic (sorted-key) order,
// re-verifies each checksum, and heals what the media lost, trying the
// least destructive heal first:
//
//   - corrected: a single flipped bit (bit-rot's signature) is located by
//     CRC32C syndrome and undone in place — the record, its version, and
//     its checkpoint coverage come back bit-exact. Counted as repaired.
//   - repaired: the DRAM cache still holds the entry, so the record is
//     rewritten in place at the entry's current version.
//   - restored: no DRAM copy, but a retained record at or below the
//     completed checkpoint survives; the entry is rolled back onto it.
//   - fenced: nothing recoverable — the key is dropped and will be reborn
//     with its deterministic initializer on first touch.
//
// A DRAM rewrite is only transparent if it preserves checkpoint coverage:
// flushLocked rewrites at dataVersion, so when the lost record was the
// newest durable copy at or below some rollback target T (persistedVersion
// <= T < dataVersion, the same window reclaim retains records for), a
// later rollback to T would silently miss this key. Such heals are
// honest about it and count as restored. A surviving older record is no
// escape — it predates at least one applied push, so recovering to T
// through it diverges from the state checkpoint T actually captured.
//
// Restored and fenced entries regress node state, so the engine notifies
// the node (SetIntegrityNotify), which fences its epoch and lets the
// trainer run coordinated rollback+replay — the same machinery a crash
// uses, which is what keeps training exact.
//
// Background scrubbing rides the existing maintainer pool with a per-round
// entry budget (Config.ScrubRate) instead of a wall-clock rate: engine
// behavior must stay a pure function of the request stream, and the budget
// keeps the request hot path untouched either way.

// SetIntegrityNotify registers f to run after a background scrub round
// that restored or fenced entries (state regressions needing an epoch
// fence and replay). Safe to call at any time; nil clears nothing — pass
// a no-op instead.
func (e *Engine) SetIntegrityNotify(f func()) { e.integrityNotify.Store(f) }

func (e *Engine) notifyIntegrityLoss() {
	if f, ok := e.integrityNotify.Load().(func()); ok && f != nil {
		f()
	}
}

// Scrub runs one full integrity pass over every persisted record and
// returns what it found and healed. It takes each shard's exclusive lock
// in turn (a repair path, not a hot path). If the report's Restored or
// Fenced counts are non-zero the caller must treat node state as rolled
// back: fence the epoch and replay, exactly as after a crash — including
// on the error return, whose partial report may already carry losses.
//
// oevet:fence-need
func (e *Engine) Scrub() (psengine.ScrubReport, error) {
	var rep psengine.ScrubReport
	if e.closed.Load() {
		return rep, psengine.ErrClosed
	}
	targets := e.rollbackTargets()
	for _, s := range e.shards {
		s.mu.Lock()
		for _, k := range s.scrubKeysLocked() {
			ent := s.index[k]
			if ent == nil || ent.slot == noSlot {
				continue
			}
			if err := s.scrubEntryLocked(ent, targets, &rep); err != nil {
				s.mu.Unlock()
				e.applyScrubObs(rep)
				return rep, err
			}
		}
		s.mu.Unlock()
	}
	e.applyScrubObs(rep)
	return rep, nil
}

// rollbackTargets snapshots every checkpoint a later recovery or rollback
// could land on: the two retained completed checkpoints, every queued
// request, and the last sealed batch (the newest batch a future request
// may still target) — mirroring reclaim's retention rule. It takes
// ckptMu, which orders after shard locks, so it is safe from any scrub
// context (with or without a shard lock held).
func (e *Engine) rollbackTargets() []int64 {
	e.ckptMu.Lock()
	targets := append([]int64(nil), e.ckptQueue...)
	e.ckptMu.Unlock()
	if t := e.completedCkpt.Load(); t >= 0 {
		targets = append(targets, t)
	}
	if t := e.prevCompleted.Load(); t >= 0 {
		targets = append(targets, t)
	}
	if t := e.lastEnded.Load(); t >= 0 {
		targets = append(targets, t)
	}
	return targets
}

// coverageLost reports whether dropping the entry's persisted record in
// favor of a rewrite at dataVersion leaves some rollback target T without
// any durable copy of this key's state-at-T: the record was the newest
// copy at or below T (persistedVersion <= T) and its replacement lands
// beyond T (dataVersion > T). A clean entry rewrites at persistedVersion
// itself, reproducing identical coverage.
func coverageLost(ent *entry, targets []int64) bool {
	if !ent.dirty {
		return false
	}
	for _, t := range targets {
		if ent.persistedVersion <= t && ent.dataVersion > t {
			return true
		}
	}
	return false
}

// scrubStepLocked verifies up to budget entries of this shard, resuming
// at the shard's cursor and wrapping — the background scrub step appended
// to each maintenance round. targets is the engine's rollback-target
// snapshot, taken by the caller before the shard lock. Caller holds the
// shard's exclusive lock.
//
// oevet:holds core.shard.mu 10
func (s *shard) scrubStepLocked(budget int, targets []int64) error {
	e := s.eng
	if len(s.index) == 0 {
		return nil
	}
	keys := s.scrubKeysLocked()
	idx, found := slices.BinarySearch(keys, s.scrubCursor)
	if found {
		idx++
	}
	var rep psengine.ScrubReport
	var err error
	for n := 0; n < budget && n < len(keys); n++ {
		if idx >= len(keys) {
			idx = 0
		}
		k := keys[idx]
		idx++
		s.scrubCursor = k
		ent := s.index[k]
		if ent == nil || ent.slot == noSlot {
			continue
		}
		if err = s.scrubEntryLocked(ent, targets, &rep); err != nil {
			break
		}
	}
	e.applyScrubObs(rep)
	if loss := rep.Restored + rep.Fenced; loss > 0 {
		e.noteScrubLoss(loss)
	}
	return err
}

// noteScrubLoss parks the epoch-fence obligation for scrub heals that lost
// state: the accumulator is drained after every maintenance round (outside
// all shard locks) and handed to the node's integrity callback, which
// fences the epoch. Parking under the shard lock instead of notifying
// directly is what keeps the lock order acyclic.
//
// oevet:fence-park
func (e *Engine) noteScrubLoss(loss int64) { e.scrubLoss.Add(loss) }

// scrubEntryLocked verifies one entry's persisted record and heals it if
// the media lost it, trying the heal ladder in order (see the file
// comment). targets is the caller's rollback-target snapshot. Restored and
// fenced heals discard state the caller must fence the epoch for (or park
// via noteScrubLoss). Caller holds the entry's shard lock exclusively.
//
// oevet:fence-need
// oevet:holds core.shard.mu 10
func (s *shard) scrubEntryLocked(ent *entry, targets []int64, rep *psengine.ScrubReport) error {
	e := s.eng
	rep.Scanned++
	err := e.arena.CheckRecord(ent.slot, ent.key)
	if err == nil {
		return nil
	}
	if !pmem.IsIntegrity(err) {
		return err
	}
	rep.Corrupt++
	// Least destructive first: undo a single flipped bit in place. The
	// record comes back bit-exact — version and checkpoint coverage
	// included — so no other heal (which at best reconstructs some other
	// version) can beat it. Poisoned media has nothing readable to correct.
	if !errors.Is(err, pmem.ErrPoisoned) {
		if cerr := e.arena.CorrectRecord(ent.slot, ent.key); cerr == nil {
			rep.Repaired++
			return nil
		} else if errors.Is(cerr, pmem.ErrPoisoned) {
			err = cerr // the corrective rewrite itself hit poisoned media
		}
	}
	// The bad record leaves circulation: a poisoned slot is quarantined
	// (its media range refuses reads until rewritten), a rotted slot's
	// media is fine and returns to the free list.
	bad := ent.slot
	if errors.Is(err, pmem.ErrPoisoned) {
		e.arena.Quarantine(bad)
		rep.Quarantined++
	} else {
		e.arena.Free(bad)
	}
	ent.slot = noSlot
	if ent.inDRAM() {
		// The DRAM copy is intact: re-persist the entry's current state.
		// flushLocked also settles any pending-checkpoint accounting. The
		// rewrite lands at dataVersion — if that abandons a rollback
		// target's only durable copy of this key, the heal regresses
		// recoverable state and must be reported as a restore so the node
		// fences its epoch (served state is unchanged, but a later
		// rollback would not be).
		lost := coverageLost(ent, targets)
		if err := s.flushLocked(ent); err != nil {
			return err
		}
		if lost {
			rep.Restored++
		} else {
			rep.Repaired++
		}
		return nil
	}
	// No DRAM copy. The entry must not owe the active checkpoint a flush
	// anymore — whatever happens below, that data is gone.
	if ent.ckptPending {
		ent.ckptPending = false
		e.noteFlushed(true)
	}
	// The newest surviving record at or below the completed checkpoint is
	// the authoritative checkpoint state (the same newest-wins rule the
	// recovery scan applies); adopt it if the space manager still holds it.
	ckpt := e.completedCkpt.Load()
	if rec, ok := e.arena.FindLatest(ent.key, ckpt); ok {
		if version, adopted := e.arena.AdoptRetired(rec.Slot); adopted {
			ent.slot = rec.Slot
			ent.persistedVersion = version
			ent.dataVersion = version
			ent.dirty = false
			rep.Restored++
			return nil
		}
	}
	// Fence: no recoverable record for this key. Drop it — after replay it
	// is reborn from its deterministic initializer on first touch.
	delete(s.index, ent.key)
	s.scrubKeysStale = true
	s.snapStale = true
	if ent.node.InList() {
		s.lru.Remove(&ent.node)
	}
	e.entries.Add(-1)
	rep.Fenced++
	return nil
}

// scrubKeysLocked returns this shard's keys in ascending order (the
// deterministic scrub walk order), rebuilding the cached snapshot only
// when an index insert or delete invalidated it — the background step
// runs every maintenance round to verify a handful of entries, and an
// O(n log n) re-sort per round under the exclusive shard lock would
// dwarf the work it budgets. Deletions observed through a stale snapshot
// are harmless (lookups find nil and skip), but the cache is invalidated
// on them anyway so the slice cannot pin dropped keys forever. Caller
// holds the shard lock.
//
// oevet:holds core.shard.mu 10
func (s *shard) scrubKeysLocked() []uint64 {
	if s.scrubKeys == nil || s.scrubKeysStale {
		s.scrubKeys = sortedKeys(s.index)
		s.scrubKeysStale = false
	}
	return s.scrubKeys
}

// sortedKeys snapshots an index's keys in ascending order.
func sortedKeys(index map[uint64]*entry) []uint64 {
	keys := make([]uint64, 0, len(index))
	for k := range index {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// applyScrubObs folds one scrub report into the engine metric set.
func (e *Engine) applyScrubObs(rep psengine.ScrubReport) {
	if rep.Scanned == 0 {
		return
	}
	e.obs.ScrubScanned.Add(rep.Scanned)
	e.obs.ScrubCorrupt.Add(rep.Corrupt)
	e.obs.ScrubRepaired.Add(rep.Repaired)
	e.obs.ScrubRestored.Add(rep.Restored)
	e.obs.ScrubFenced.Add(rep.Fenced)
	e.obs.ScrubProgress.Add(rep.Scanned)
}
