package core

import (
	"errors"
	"slices"

	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
)

// This file is the self-healing integrity scrubber (DESIGN.md §11). The
// scrubber walks persisted records in deterministic (sorted-key) order,
// re-verifies each checksum, and heals what the media lost:
//
//   - repaired: the DRAM cache still holds the entry, so the record is
//     rewritten in place — fully transparent.
//   - restored: no DRAM copy, but a retained record at or below the
//     completed checkpoint survives; the entry is rolled back onto it.
//   - fenced: nothing recoverable — the key is dropped and will be reborn
//     with its deterministic initializer on first touch.
//
// Restored and fenced entries regress node state, so the engine notifies
// the node (SetIntegrityNotify), which fences its epoch and lets the
// trainer run coordinated rollback+replay — the same machinery a crash
// uses, which is what keeps training exact.
//
// Background scrubbing rides the existing maintainer pool with a per-round
// entry budget (Config.ScrubRate) instead of a wall-clock rate: engine
// behavior must stay a pure function of the request stream, and the budget
// keeps the request hot path untouched either way.

// SetIntegrityNotify registers f to run after a background scrub round
// that restored or fenced entries (state regressions needing an epoch
// fence and replay). Safe to call at any time; nil clears nothing — pass
// a no-op instead.
func (e *Engine) SetIntegrityNotify(f func()) { e.integrityNotify.Store(f) }

func (e *Engine) notifyIntegrityLoss() {
	if f, ok := e.integrityNotify.Load().(func()); ok && f != nil {
		f()
	}
}

// Scrub runs one full integrity pass over every persisted record and
// returns what it found and healed. It takes each shard's exclusive lock
// in turn (a repair path, not a hot path). If the report's Restored or
// Fenced counts are non-zero the caller must treat node state as rolled
// back: fence the epoch and replay, exactly as after a crash.
func (e *Engine) Scrub() (psengine.ScrubReport, error) {
	var rep psengine.ScrubReport
	if e.closed.Load() {
		return rep, psengine.ErrClosed
	}
	for _, s := range e.shards {
		s.mu.Lock()
		for _, k := range s.sortedKeysLocked() {
			ent := s.index[k]
			if ent == nil || ent.slot == noSlot {
				continue
			}
			if err := s.scrubEntryLocked(ent, &rep); err != nil {
				s.mu.Unlock()
				e.applyScrubObs(rep)
				return rep, err
			}
		}
		s.mu.Unlock()
	}
	e.applyScrubObs(rep)
	return rep, nil
}

// scrubStepLocked verifies up to budget entries of this shard, resuming
// at the shard's cursor and wrapping — the background scrub step appended
// to each maintenance round. Caller holds the shard's exclusive lock.
//
// oevet:holds core.shard.mu 10
func (s *shard) scrubStepLocked(budget int) error {
	e := s.eng
	if len(s.index) == 0 {
		return nil
	}
	keys := s.sortedKeysLocked()
	idx, found := slices.BinarySearch(keys, s.scrubCursor)
	if found {
		idx++
	}
	var rep psengine.ScrubReport
	var err error
	for n := 0; n < budget && n < len(keys); n++ {
		if idx >= len(keys) {
			idx = 0
		}
		k := keys[idx]
		idx++
		s.scrubCursor = k
		ent := s.index[k]
		if ent == nil || ent.slot == noSlot {
			continue
		}
		if err = s.scrubEntryLocked(ent, &rep); err != nil {
			break
		}
	}
	e.applyScrubObs(rep)
	if loss := rep.Restored + rep.Fenced; loss > 0 {
		e.scrubLoss.Add(loss)
	}
	return err
}

// scrubEntryLocked verifies one entry's persisted record and heals it if
// the media lost it. Caller holds the entry's shard lock exclusively.
//
// oevet:holds core.shard.mu 10
func (s *shard) scrubEntryLocked(ent *entry, rep *psengine.ScrubReport) error {
	e := s.eng
	rep.Scanned++
	err := e.arena.CheckRecord(ent.slot, ent.key)
	if err == nil {
		return nil
	}
	if !pmem.IsIntegrity(err) {
		return err
	}
	rep.Corrupt++
	// The bad record leaves circulation: a poisoned slot is quarantined
	// (its media range refuses reads until rewritten), a rotted slot's
	// media is fine and returns to the free list.
	bad := ent.slot
	if errors.Is(err, pmem.ErrPoisoned) {
		e.arena.Quarantine(bad)
		rep.Quarantined++
	} else {
		e.arena.Free(bad)
	}
	ent.slot = noSlot
	if ent.inDRAM() {
		// The DRAM copy is intact: re-persist the entry's current state.
		// flushLocked also settles any pending-checkpoint accounting.
		if err := s.flushLocked(ent); err != nil {
			return err
		}
		rep.Repaired++
		return nil
	}
	// No DRAM copy. The entry must not owe the active checkpoint a flush
	// anymore — whatever happens below, that data is gone.
	if ent.ckptPending {
		ent.ckptPending = false
		e.noteFlushed(true)
	}
	// The newest surviving record at or below the completed checkpoint is
	// the authoritative checkpoint state (the same newest-wins rule the
	// recovery scan applies); adopt it if the space manager still holds it.
	ckpt := e.completedCkpt.Load()
	if rec, ok := e.arena.FindLatest(ent.key, ckpt); ok {
		if version, adopted := e.arena.AdoptRetired(rec.Slot); adopted {
			ent.slot = rec.Slot
			ent.persistedVersion = version
			ent.dataVersion = version
			ent.dirty = false
			rep.Restored++
			return nil
		}
	}
	// Fence: no recoverable record for this key. Drop it — after replay it
	// is reborn from its deterministic initializer on first touch.
	delete(s.index, ent.key)
	if ent.node.InList() {
		s.lru.Remove(&ent.node)
	}
	e.entries.Add(-1)
	rep.Fenced++
	return nil
}

// sortedKeysLocked snapshots this shard's keys in ascending order (the
// deterministic scrub walk order). Caller holds the shard lock.
func (s *shard) sortedKeysLocked() []uint64 {
	keys := make([]uint64, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// applyScrubObs folds one scrub report into the engine metric set.
func (e *Engine) applyScrubObs(rep psengine.ScrubReport) {
	if rep.Scanned == 0 {
		return
	}
	e.obs.ScrubScanned.Add(rep.Scanned)
	e.obs.ScrubCorrupt.Add(rep.Corrupt)
	e.obs.ScrubRepaired.Add(rep.Repaired)
	e.obs.ScrubRestored.Add(rep.Restored)
	e.obs.ScrubFenced.Add(rep.Fenced)
	e.obs.ScrubProgress.Add(rep.Scanned)
}
