//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on paths that are otherwise allocation-free,
// so the zero-alloc hot-path pins skip themselves under -race.
const raceEnabled = true
