package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/workload"
)

const (
	benchDim      = 16
	benchKeySpace = 1 << 14
	benchBatchLen = 64
)

// newBenchEngine builds an engine whose DRAM cache covers the whole
// benchmark key space with headroom — a cache sized exactly to the key
// space evicts a tail during warm-up, which the benchmarks would then keep
// re-reading from PMem (the steady state under measurement is lock and
// index contention, not miss service) — and pre-populates every key.
func newBenchEngine(b *testing.B, shards int) *Engine {
	return newBenchEngineObs(b, shards, nil)
}

func newBenchEngineObs(b *testing.B, shards int, reg *obs.Registry) *Engine {
	b.Helper()
	cfg := psengine.Config{
		Dim:          benchDim,
		Optimizer:    optim.NewSGD(0.1),
		Capacity:     1 << 16,
		CacheEntries: 2 * benchKeySpace,
		MaintThreads: 4,
		Shards:       shards,
		Obs:          reg,
		// Meter left nil: virtual-time charges are no-ops, so the numbers
		// measure the real synchronization cost.
	}.WithDefaults()
	payload := pmem.FloatBytes(cfg.EntryFloats())
	slots := cfg.Capacity * 4
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, slots), device.NewTimedPMem(nil))
	arena, err := pmem.NewArena(dev, payload, slots)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(cfg, arena)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })

	keys := make([]uint64, benchKeySpace)
	for i := range keys {
		keys[i] = uint64(i)
	}
	dst := make([]float32, benchKeySpace*benchDim)
	if err := eng.Pull(0, keys, dst); err != nil {
		b.Fatal(err)
	}
	eng.EndPullPhase(0)
	eng.WaitMaintenance()
	if err := eng.EndBatch(0); err != nil {
		b.Fatal(err)
	}
	return eng
}

// benchBatches pre-generates Zipfian pull batches (Table II skew, the
// paper's workload shape) so the sampler does not run inside the timed
// loop.
func benchBatches(n int) [][]uint64 {
	s := workload.NewTableIISkew(benchKeySpace, 42)
	out := make([][]uint64, n)
	for i := range out {
		out[i] = workload.Batch(s, benchBatchLen)
	}
	return out
}

// drainAccessQueues empties the shards' access queues directly. The
// benchmarks issue pulls outside the batch protocol (no EndPullPhase), so
// without this the queues would grow unboundedly; draining through the
// protocol instead would time maintenance, not the pull path.
func drainAccessQueues(e *Engine) {
	for _, s := range e.shards {
		s.accessQ.Drain()
	}
}

// BenchmarkEnginePullParallel measures concurrent hot-path pulls (all keys
// DRAM-resident) at 1 shard — the pre-sharding engine layout — versus 8.
// Run with -cpu to set the worker count; shard scaling only shows on
// multi-core hosts.
func BenchmarkEnginePullParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchPullParallel(b, shards)
		})
	}
}

// benchPullParallel is the concurrent DRAM-hit pull workload shared by
// BenchmarkEnginePullParallel and the BENCH-report harness.
func benchPullParallel(b *testing.B, shards int) {
	e := newBenchEngine(b, shards)
	batches := benchBatches(256)
	var worker atomic.Int64
	b.ReportAllocs()
	b.SetBytes(benchBatchLen * benchDim * 4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) * 31 // de-phase workers' batch streams
		dst := make([]float32, benchBatchLen*benchDim)
		n := 0
		for pb.Next() {
			keys := batches[i%len(batches)]
			i++
			if err := e.Pull(1, keys, dst[:len(keys)*benchDim]); err != nil {
				b.Error(err)
				return
			}
			if n++; n%256 == 0 {
				drainAccessQueues(e)
			}
		}
	})
	b.StopTimer()
	drainAccessQueues(e)
}

// BenchmarkEnginePullObs measures the observability overhead on the hottest
// path: identical single-threaded pull workloads with obs disabled (nil
// registry: nil-check-only instrumentation) and enabled (sampled latency
// recording plus atomic counters). The acceptance budget for "on" vs "off"
// is <5%; the obs-enabled variant relies on the 1-in-8 pull sampling to
// amortize the ~40ns clock reads.
func BenchmarkEnginePullObs(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			var reg *obs.Registry
			if mode == "on" {
				reg = obs.NewRegistry()
			}
			benchPullSingle(b, reg)
		})
	}
}

// benchPullSingle is the single-threaded DRAM-hit pull workload shared by
// BenchmarkEnginePullObs and the BENCH-report harness (benchreport_test.go).
func benchPullSingle(b *testing.B, reg *obs.Registry) {
	e := newBenchEngineObs(b, 8, reg)
	batches := benchBatches(256)
	dst := make([]float32, benchBatchLen*benchDim)
	b.ReportAllocs()
	b.SetBytes(benchBatchLen * benchDim * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := batches[i%len(batches)]
		if err := e.Pull(1, keys, dst[:len(keys)*benchDim]); err != nil {
			b.Fatal(err)
		}
		if (i+1)%256 == 0 {
			drainAccessQueues(e)
		}
	}
	b.StopTimer()
	drainAccessQueues(e)
}

// BenchmarkSortPosByKey isolates the run sort on one Zipfian batch — the
// fixed cost the batched hot path pays per request to earn dedup and
// run-grouped locking.
func BenchmarkSortPosByKey(b *testing.B) {
	batches := benchBatches(256)
	pos := make([]int32, benchBatchLen)
	var buf []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := batches[i%len(batches)]
		pos = pos[:len(keys)]
		for j := range pos {
			pos[j] = int32(j)
		}
		buf = sortPosByKey(pos, keys, buf)
	}
}

// BenchmarkEnginePushParallel measures concurrent gradient pushes into the
// DRAM-resident working set: per-shard read locks plus per-stripe write
// locks around the optimizer step.
func BenchmarkEnginePushParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchPushParallel(b, shards)
		})
	}
}

// benchPushParallel is the concurrent gradient-push workload shared by
// BenchmarkEnginePushParallel and the BENCH-report harness.
func benchPushParallel(b *testing.B, shards int) {
	e := newBenchEngine(b, shards)
	batches := benchBatches(256)
	grads := make([]float32, benchBatchLen*benchDim)
	for i := range grads {
		grads[i] = 0.01
	}
	var worker atomic.Int64
	b.ReportAllocs()
	b.SetBytes(benchBatchLen * benchDim * 4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) * 31
		for pb.Next() {
			keys := batches[i%len(batches)]
			i++
			if err := e.Push(1, keys, grads[:len(keys)*benchDim]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
