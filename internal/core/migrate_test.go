package core

import (
	"errors"
	"testing"

	"openembedding/internal/psengine"
)

// Engine-level contracts behind live resharding (migrate.go): export is a
// paged, since-filtered, key-ordered read; adopt is durable the moment it
// returns and idempotent on replay; drop erases moved keys so recovery
// cannot resurrect them on the old owner.

const migSince = int64(-1) << 62

func matchAll(uint64) bool   { return true }
func matchOdd(k uint64) bool { return k%2 == 1 }

// exportAll drains every page of an export into one slice.
func exportAll(t *testing.T, e *Engine, match func(uint64) bool, since int64, page int) []MigEntry {
	t.Helper()
	var out []MigEntry
	after := uint64(0)
	for {
		ents, more, err := e.ExportRange(match, since, after, page)
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		out = append(out, ents...)
		if len(ents) > 0 {
			after = ents[len(ents)-1].Key
		}
		if !more {
			return out
		}
	}
}

func seedKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	return keys
}

// TestExportRangePaging: exports come back in ascending key order, the
// cursor pages through without gaps or repeats, the match predicate and the
// since filter both narrow the set, and versions carry the batch of the
// entry's last push.
func TestExportRangePaging(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 50))
	keys := seedKeys(20)
	runBatch(t, e, 0, keys, constGrads(len(keys), 4, 1.0))
	// Touch a subset again at batch 1 so dataVersions differ.
	hot := keys[:5]
	runBatch(t, e, 1, hot, constGrads(len(hot), 4, 1.0))

	all := exportAll(t, e, matchAll, migSince, 3)
	if len(all) != len(keys) {
		t.Fatalf("exported %d entries, want %d", len(all), len(keys))
	}
	for i, me := range all {
		if me.Key != keys[i] {
			t.Fatalf("page order broken: entry %d is key %d, want %d", i, me.Key, keys[i])
		}
		want := int64(0)
		if me.Key <= uint64(len(hot)) {
			want = 1
		}
		if me.Version != want {
			t.Fatalf("key %d exported at version %d, want %d", me.Key, me.Version, want)
		}
		if len(me.Data) != e.cfg.EntryFloats() {
			t.Fatalf("key %d payload %d floats, want %d", me.Key, len(me.Data), e.cfg.EntryFloats())
		}
	}

	odd := exportAll(t, e, matchOdd, migSince, 3)
	for _, me := range odd {
		if me.Key%2 != 1 {
			t.Fatalf("match filter leaked key %d", me.Key)
		}
	}
	if want := len(keys) / 2; len(odd) != want {
		t.Fatalf("odd export = %d entries, want %d", len(odd), want)
	}

	// A delta round: only the batch-1 pushes qualify.
	delta := exportAll(t, e, matchAll, 1, 3)
	if len(delta) != len(hot) {
		t.Fatalf("since=1 export = %d entries, want %d", len(delta), len(hot))
	}

	if _, _, err := e.ExportRange(matchAll, migSince, 0, 0); err == nil {
		t.Fatal("non-positive page size accepted")
	}
}

// TestAdoptEntriesRoundTrip: export from a source, adopt into an empty
// target, and the target serves bit-identical state; re-adopting the same
// page is a no-op replay (idempotence), and adopt overwrites newer local
// state with the carried image.
func TestAdoptEntriesRoundTrip(t *testing.T) {
	src := newTestEngine(t, testConfig(4, 100, 50))
	keys := seedKeys(12)
	runBatch(t, src, 0, keys, constGrads(len(keys), 4, 0.5))
	ents := exportAll(t, src, matchAll, migSince, 5)

	dst := newTestEngine(t, testConfig(4, 100, 50))
	if err := dst.AdoptEntries(ents); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if got := dst.Stats().Entries; got != int64(len(keys)) {
		t.Fatalf("adopt created %d entries, want %d", got, len(keys))
	}

	// Replay the same page: same entry count (idempotent), same state.
	// (Counts are checked before pullAll below — Pull initializes the keys
	// it probes, inflating the count.)
	if err := dst.AdoptEntries(ents); err != nil {
		t.Fatalf("re-adopt: %v", err)
	}
	if got := dst.Stats().Entries; got != int64(len(keys)) {
		t.Fatalf("re-adopt changed entry count to %d, want %d", got, len(keys))
	}
	srcState := pullAll(t, src, 4)
	compareStates(t, "after re-adopt", srcState, pullAll(t, dst, 4))

	// Diverge the target, then adopt again: the carried image wins.
	runBatch(t, dst, 5, keys, constGrads(len(keys), 4, 2.0))
	if err := dst.AdoptEntries(ents); err != nil {
		t.Fatalf("overwrite adopt: %v", err)
	}
	compareStates(t, "after overwrite", srcState, pullAll(t, dst, 4))

	// A malformed payload is rejected before any mutation.
	bad := []MigEntry{{Key: 99, Version: 0, Data: make([]float32, 3)}}
	if err := dst.AdoptEntries(bad); err == nil {
		t.Fatal("short payload adopted")
	}
}

// TestAdoptEntriesCapacity: adopting past Capacity fails with ErrCapacity
// and does not leak entry accounting.
func TestAdoptEntriesCapacity(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 8, 4))
	floats := e.cfg.EntryFloats()
	var ents []MigEntry
	for i := 0; i < 12; i++ {
		ents = append(ents, MigEntry{Key: uint64(i + 1), Data: make([]float32, floats)})
	}
	err := e.AdoptEntries(ents)
	if !errors.Is(err, psengine.ErrCapacity) {
		t.Fatalf("adopt past capacity: %v, want ErrCapacity", err)
	}
	if got := e.Stats().Entries; got > 8 {
		t.Fatalf("entry accounting leaked past capacity: %d", got)
	}
}

// TestAdoptDurableWithoutSeal is the crash-matrix fact the migration
// protocol leans on: entries adopted at versions at or below the target's
// committed checkpoint survive a crash WITHOUT any further checkpoint —
// AdoptEntries flushed them durably before returning. (On a fresh target
// with no checkpoint at all, recovery sheds them — which is exactly why the
// coordinator verifies the copy before sealing.)
func TestAdoptDurableWithoutSeal(t *testing.T) {
	cfg := testConfig(4, 100, 50).WithDefaults()
	src := newTestEngine(t, cfg)
	keys := seedKeys(10)
	runBatch(t, src, 0, keys, constGrads(len(keys), 4, 0.5))
	ents := exportAll(t, src, matchAll, migSince, 5)

	// Target has its own history and a committed checkpoint at batch 2;
	// the adopted entries carry version 0 <= 2.
	dst := newTestEngine(t, cfg)
	runBatch(t, dst, 0, []uint64{100}, constGrads(1, 4, 1.0))
	runBatch(t, dst, 1, []uint64{100}, nil)
	runBatch(t, dst, 2, []uint64{100}, nil)
	commitCheckpoint(t, dst, 2)
	if err := dst.AdoptEntries(ents); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	want := pullAll(t, dst, 4)

	dev := dst.Arena().Device()
	dst.Close()
	dev.Crash()
	rec, ckpt, err := Recover(cfg, dev)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()
	if ckpt != 2 {
		t.Fatalf("recovered to %d, want 2", ckpt)
	}
	compareStates(t, "adopted entries after crash", want, pullAll(t, rec, 4))

	// The fresh-target shedding half: no checkpoint ever committed means
	// recovery discards everything newer than -1, adopted entries included.
	fresh := newTestEngine(t, cfg)
	if err := fresh.AdoptEntries(ents); err != nil {
		t.Fatalf("adopt on fresh: %v", err)
	}
	fdev := fresh.Arena().Device()
	fresh.Close()
	fdev.Crash()
	frec, fckpt, err := Recover(cfg, fdev)
	if err != nil {
		t.Fatalf("recover fresh: %v", err)
	}
	defer frec.Close()
	if fckpt != -1 {
		t.Fatalf("fresh target recovered to %d, want -1", fckpt)
	}
	if got := frec.Stats().Entries; got != 0 {
		t.Fatalf("fresh target kept %d adopted entries across a crash; the protocol must verify before sealing", got)
	}
}

// TestAdoptDuringCheckpoint: overwriting entries the active checkpoint has
// counted (ckptPending) persists their pre-adopt state first, so the
// checkpoint still completes with exact accounting.
func TestAdoptDuringCheckpoint(t *testing.T) {
	cfg := testConfig(4, 100, 2) // tiny cache: entries live in PMem, ckptPending set on push
	e := newTestEngine(t, cfg)
	keys := seedKeys(8)
	runBatch(t, e, 0, keys, constGrads(len(keys), 4, 1.0))
	runBatch(t, e, 1, keys, constGrads(len(keys), 4, 1.0))
	if err := e.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	// Mid-checkpoint, adopt an overwrite of every key at version 1.
	var ents []MigEntry
	for _, k := range keys {
		data := make([]float32, cfg.EntryFloats())
		for i := range data {
			data[i] = float32(k)
		}
		ents = append(ents, MigEntry{Key: k, Version: 1, Data: data})
	}
	if err := e.AdoptEntries(ents); err != nil {
		t.Fatalf("adopt during checkpoint: %v", err)
	}
	for i := 0; e.CompletedCheckpoint() < 1; i++ {
		if err := e.AdvanceCheckpoints(); err != nil {
			t.Fatal(err)
		}
		if i > 100000 {
			t.Fatal("checkpoint never completed after mid-checkpoint adopt")
		}
	}
}

// TestDropRangeErasesDurably: dropping a range removes the entries from
// the index AND from the device — a crash-recovery after the drop cannot
// resurrect moved keys on the old owner.
func TestDropRangeErasesDurably(t *testing.T) {
	cfg := testConfig(4, 100, 50).WithDefaults()
	e := newTestEngine(t, cfg)
	keys := seedKeys(16)
	runBatch(t, e, 0, keys, constGrads(len(keys), 4, 0.5))
	runBatch(t, e, 1, keys, constGrads(len(keys), 4, 0.5))
	commitCheckpoint(t, e, 1)

	dropped, err := e.DropRange(matchOdd)
	if err != nil {
		t.Fatalf("drop: %v", err)
	}
	if want := len(keys) / 2; dropped != want {
		t.Fatalf("dropped %d entries, want %d", dropped, want)
	}
	if got := e.Stats().Entries; got != int64(len(keys)-dropped) {
		t.Fatalf("entries after drop = %d, want %d", got, len(keys)-dropped)
	}
	for _, me := range exportAll(t, e, matchAll, migSince, 5) {
		if me.Key%2 == 1 {
			t.Fatalf("dropped key %d still exported", me.Key)
		}
	}
	// Idempotent: a replayed drop finds nothing.
	again, err := e.DropRange(matchOdd)
	if err != nil || again != 0 {
		t.Fatalf("replayed drop = (%d, %v), want (0, nil)", again, err)
	}

	dev := e.Arena().Device()
	e.Close()
	dev.Crash()
	rec, _, err := Recover(cfg, dev)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()
	for _, me := range exportAll(t, rec, matchAll, migSince, 5) {
		if me.Key%2 == 1 {
			t.Fatalf("recovery resurrected dropped key %d", me.Key)
		}
	}
	if got := rec.Stats().Entries; got != int64(len(keys)-dropped) {
		t.Fatalf("recovered entries = %d, want %d", got, len(keys)-dropped)
	}
}
