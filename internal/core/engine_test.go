package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

func testConfig(dim, capacity, cacheEntries int) psengine.Config {
	return psengine.Config{
		Dim:          dim,
		Optimizer:    optim.NewSGD(0.1),
		Capacity:     capacity,
		CacheEntries: cacheEntries,
		Meter:        simclock.NewMeter(),
		// Pinned so the oracle tests behave identically on every host
		// (the default derives from GOMAXPROCS). Multi-shard behaviour is
		// covered by shard_test.go with explicit shard counts.
		Shards: 1,
	}
}

func newTestEngine(t *testing.T, cfg psengine.Config) *Engine {
	t.Helper()
	cfg = cfg.WithDefaults()
	payload := pmem.FloatBytes(cfg.EntryFloats())
	slots := cfg.Capacity * 4 // room for retained versions
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, slots), device.NewTimedPMem(cfg.Meter))
	arena, err := pmem.NewArena(dev, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// runBatch drives one synchronous batch through the engine: pull, pipeline
// maintenance, push (grads may be nil to skip the update), seal.
func runBatch(t *testing.T, e *Engine, batch int64, keys []uint64, grads []float32) []float32 {
	t.Helper()
	dst := make([]float32, len(keys)*e.Dim())
	if err := e.Pull(batch, keys, dst); err != nil {
		t.Fatalf("pull batch %d: %v", batch, err)
	}
	e.EndPullPhase(batch)
	e.WaitMaintenance()
	if grads != nil {
		if err := e.Push(batch, keys, grads); err != nil {
			t.Fatalf("push batch %d: %v", batch, err)
		}
	}
	if err := e.EndBatch(batch); err != nil {
		t.Fatalf("end batch %d: %v", batch, err)
	}
	return dst
}

func constGrads(n, dim int, v float32) []float32 {
	g := make([]float32, n*dim)
	for i := range g {
		g[i] = v
	}
	return g
}

func TestPullInitializesDeterministically(t *testing.T) {
	e := newTestEngine(t, testConfig(8, 100, 50))
	w1 := runBatch(t, e, 0, []uint64{7}, nil)
	w2 := runBatch(t, e, 1, []uint64{7}, nil)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("re-pull changed weights: %v vs %v", w1, w2)
		}
	}
	// A second engine must initialize the same key identically.
	e2 := newTestEngine(t, testConfig(8, 100, 50))
	w3 := runBatch(t, e2, 0, []uint64{7}, nil)
	for i := range w1 {
		if w1[i] != w3[i] {
			t.Fatal("initializer not deterministic across engines")
		}
	}
	var nonzero bool
	for _, v := range w1 {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("xavier init produced all zeros")
	}
}

func TestPullPushRoundTrip(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 50))
	keys := []uint64{1, 2}
	before := runBatch(t, e, 0, keys, constGrads(2, 4, 1.0))
	after := runBatch(t, e, 1, keys, nil)
	for i := range after {
		want := before[i] - 0.1*1.0 // SGD lr=0.1
		if diff := after[i] - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("weight[%d] = %v, want %v", i, after[i], want)
		}
	}
}

func TestDuplicateKeysWithinBatch(t *testing.T) {
	e := newTestEngine(t, testConfig(2, 100, 50))
	keys := []uint64{5, 5}
	dst := runBatch(t, e, 0, keys, nil)
	if dst[0] != dst[2] || dst[1] != dst[3] {
		t.Fatalf("duplicate key pulls disagree: %v", dst)
	}
	// Both gradient copies must be applied (two optimizer steps).
	runBatch(t, e, 1, keys, constGrads(2, 2, 1.0))
	after := runBatch(t, e, 2, []uint64{5}, nil)
	want := dst[0] - 2*0.1
	if d := after[0] - want; d > 1e-6 || d < -1e-6 {
		t.Fatalf("after[0] = %v, want %v (both duplicate grads applied)", after[0], want)
	}
}

func TestEvictionRoundTripsThroughPMem(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 64, 4)) // tiny cache
	var saved [][]float32
	for k := uint64(0); k < 16; k++ {
		w := runBatch(t, e, int64(k), []uint64{k}, constGrads(1, 4, float32(k)))
		exp := make([]float32, 4)
		for i := range exp {
			exp[i] = w[i] - 0.1*float32(k)
		}
		saved = append(saved, exp)
	}
	st := e.Stats()
	if st.Evictions == 0 || st.PMemWrites == 0 {
		t.Fatalf("tiny cache produced no evictions: %+v", st)
	}
	// Re-pull everything; values must match what was evicted.
	for k := uint64(0); k < 16; k++ {
		got := runBatch(t, e, int64(100+k), []uint64{k}, nil)
		for i := range got {
			if d := got[i] - saved[k][i]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("key %d weight[%d] = %v, want %v", k, i, got[i], saved[k][i])
			}
		}
	}
	if e.Stats().Misses == 0 {
		t.Fatal("no PMem misses despite eviction")
	}
}

func TestCheckpointCompletes(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 20))
	keys := []uint64{1, 2, 3}
	runBatch(t, e, 0, keys, constGrads(3, 4, 1))
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	// The finalizer completes the checkpoint during the next batch.
	runBatch(t, e, 1, keys, constGrads(3, 4, 1))
	if got := e.CompletedCheckpoint(); got != 0 {
		t.Fatalf("CompletedCheckpoint = %d, want 0", got)
	}
	if e.PendingCheckpoints() != 0 {
		t.Fatal("request queue not drained")
	}
	if id, _ := e.Arena().CheckpointedBatch(); id != 0 {
		t.Fatalf("durable ckpt id = %d", id)
	}
}

func TestRequestCheckpointValidation(t *testing.T) {
	e := newTestEngine(t, testConfig(2, 10, 5))
	if err := e.RequestCheckpoint(0); err == nil {
		t.Fatal("checkpoint of unsealed batch accepted")
	}
	runBatch(t, e, 0, []uint64{1}, nil)
	runBatch(t, e, 1, []uint64{1}, nil)
	if err := e.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := e.RequestCheckpoint(1); err == nil {
		t.Fatal("duplicate checkpoint accepted")
	}
	if err := e.RequestCheckpoint(0); err == nil {
		t.Fatal("regressing checkpoint accepted")
	}
}

// oracle replays the same training on a plain map, giving the expected
// state at every batch.
type oracle struct {
	cfg     psengine.Config
	weights map[uint64][]float32
	state   map[uint64][]float32
	history map[int64]map[uint64][]float32 // snapshots by batch id
}

func newOracle(cfg psengine.Config) *oracle {
	return &oracle{
		cfg:     cfg.WithDefaults(),
		weights: map[uint64][]float32{},
		state:   map[uint64][]float32{},
		history: map[int64]map[uint64][]float32{},
	}
}

func (o *oracle) touch(key uint64) {
	if _, ok := o.weights[key]; ok {
		return
	}
	w := make([]float32, o.cfg.Dim)
	o.cfg.Initializer(key, w)
	s := make([]float32, o.cfg.Optimizer.StateFloats(o.cfg.Dim))
	o.cfg.Optimizer.InitState(s)
	o.weights[key] = w
	o.state[key] = s
}

func (o *oracle) push(keys []uint64, grads []float32) {
	dim := o.cfg.Dim
	for i, k := range keys {
		o.touch(k)
		o.cfg.Optimizer.Apply(o.weights[k], o.state[k], grads[i*dim:(i+1)*dim])
	}
}

func (o *oracle) snapshot(batch int64) {
	snap := make(map[uint64][]float32, len(o.weights))
	for k, w := range o.weights {
		cp := make([]float32, len(w))
		copy(cp, w)
		snap[k] = cp
	}
	o.history[batch] = snap
}

func TestCrashRecoveryMatchesCheckpoint(t *testing.T) {
	cfg := testConfig(4, 256, 8) // small cache to force PMem traffic
	e := newTestEngine(t, cfg)
	orc := newOracle(cfg)
	rng := rand.New(rand.NewSource(42))

	batchKeys := func() []uint64 {
		n := 3 + rng.Intn(5)
		keys := make([]uint64, 0, n)
		seen := map[uint64]bool{}
		for len(keys) < n {
			k := uint64(rng.Intn(40))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		return keys
	}

	var ckptAt int64 = -1
	for b := int64(0); b < 30; b++ {
		keys := batchKeys()
		grads := make([]float32, len(keys)*cfg.Dim)
		for i := range grads {
			grads[i] = float32(rng.NormFloat64())
		}
		for _, k := range keys {
			orc.touch(k)
		}
		runBatch(t, e, b, keys, grads)
		orc.push(keys, grads)
		orc.snapshot(b)
		if b == 14 {
			if err := e.RequestCheckpoint(b); err != nil {
				t.Fatal(err)
			}
			ckptAt = b
		}
	}
	if e.CompletedCheckpoint() != ckptAt {
		t.Fatalf("checkpoint %d not completed (got %d)", ckptAt, e.CompletedCheckpoint())
	}

	// Power failure, then recovery.
	dev := e.Arena().Device()
	e.Close()
	dev.Crash()
	rec, gotCkpt, err := Recover(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if gotCkpt != ckptAt {
		t.Fatalf("recovered ckpt = %d, want %d", gotCkpt, ckptAt)
	}

	// Every key known at the checkpoint must read back exactly the oracle's
	// state at that batch.
	want := orc.history[ckptAt]
	for k, exp := range want {
		got := make([]float32, cfg.Dim)
		if err := rec.Pull(ckptAt+1, []uint64{k}, got); err != nil {
			t.Fatalf("pull recovered key %d: %v", k, err)
		}
		for i := range exp {
			if d := got[i] - exp[i]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("key %d weight[%d]: recovered %v, checkpoint state %v", k, i, got[i], exp[i])
			}
		}
	}
}

func TestRecoveryDropsPostCheckpointWrites(t *testing.T) {
	cfg := testConfig(2, 64, 2) // cache of 2: constant eviction traffic
	e := newTestEngine(t, cfg)

	runBatch(t, e, 0, []uint64{1, 2, 3}, constGrads(3, 2, 1))
	runBatch(t, e, 1, []uint64{1, 2, 3}, constGrads(3, 2, 1))
	if err := e.RequestCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	state1 := runBatch(t, e, 2, []uint64{1, 2, 3}, constGrads(3, 2, 1)) // pulls show post-batch-1 state
	runBatch(t, e, 3, []uint64{1, 2, 3}, constGrads(3, 2, 1))           // post-ckpt updates, some flushed by eviction
	if e.CompletedCheckpoint() != 1 {
		t.Fatalf("ckpt not done: %d", e.CompletedCheckpoint())
	}

	dev := e.Arena().Device()
	e.Close()
	dev.Crash()
	rec, ckpt, err := Recover(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if ckpt != 1 {
		t.Fatalf("ckpt = %d", ckpt)
	}
	got := make([]float32, 3*2)
	if err := rec.Pull(2, []uint64{1, 2, 3}, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if d := got[i] - state1[i]; d > 1e-5 || d < -1e-5 {
			t.Fatalf("recovered[%d] = %v, want checkpoint-1 state %v", i, got[i], state1[i])
		}
	}
}

func TestRecoveryDropsNeverCheckpointedKeys(t *testing.T) {
	cfg := testConfig(2, 64, 2)
	e := newTestEngine(t, cfg)
	runBatch(t, e, 0, []uint64{1}, constGrads(1, 2, 1))
	if err := e.RequestCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	runBatch(t, e, 1, []uint64{1}, constGrads(1, 2, 1))
	runBatch(t, e, 2, []uint64{99}, constGrads(1, 2, 1)) // born after ckpt
	runBatch(t, e, 3, []uint64{1, 99}, constGrads(2, 2, 1))

	dev := e.Arena().Device()
	e.Close()
	dev.Crash()
	rec, _, err := Recover(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	st := rec.Stats()
	if st.Entries != 1 {
		t.Fatalf("recovered %d entries, want only key 1", st.Entries)
	}
}

func TestPipelineDisabledProducesSameResults(t *testing.T) {
	cfgP := testConfig(4, 64, 4)
	cfgI := cfgP
	cfgI.PipelineDisabled = true
	ep := newTestEngine(t, cfgP)
	ei := newTestEngine(t, cfgI)
	rng := rand.New(rand.NewSource(7))
	for b := int64(0); b < 10; b++ {
		keys := []uint64{uint64(rng.Intn(12)), uint64(12 + rng.Intn(12))}
		grads := constGrads(2, 4, float32(b))
		wp := runBatch(t, ep, b, keys, grads)
		wi := runBatch(t, ei, b, keys, grads)
		for i := range wp {
			if wp[i] != wi[i] {
				t.Fatalf("batch %d: pipelined %v != inline %v", b, wp, wi)
			}
		}
	}
}

func TestCacheDisabledStillCorrect(t *testing.T) {
	cfg := testConfig(2, 32, 8)
	cfg.CacheDisabled = true
	e := newTestEngine(t, cfg)
	before := runBatch(t, e, 0, []uint64{1, 2}, constGrads(2, 2, 1))
	after := runBatch(t, e, 1, []uint64{1, 2}, nil)
	for i := range after {
		want := before[i] - 0.1
		if d := after[i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("after[%d] = %v want %v", i, after[i], want)
		}
	}
	if st := e.Stats(); st.CachedEntries != 0 {
		t.Fatalf("cache disabled but %d entries cached", st.CachedEntries)
	}
}

func TestPushSmallerCacheThanBatch(t *testing.T) {
	cfg := testConfig(2, 64, 2) // cache holds 2, batch touches 6
	e := newTestEngine(t, cfg)
	keys := []uint64{1, 2, 3, 4, 5, 6}
	runBatch(t, e, 0, keys, constGrads(6, 2, 1))
	got := runBatch(t, e, 1, keys, nil)
	first := runBatchValues(t, cfg, keys)
	for i := range got {
		want := first[i] - 0.1
		if d := got[i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("weight[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// runBatchValues computes the deterministic initial weights for keys.
func runBatchValues(t *testing.T, cfg psengine.Config, keys []uint64) []float32 {
	t.Helper()
	cfg = cfg.WithDefaults()
	out := make([]float32, len(keys)*cfg.Dim)
	for i, k := range keys {
		cfg.Initializer(k, out[i*cfg.Dim:(i+1)*cfg.Dim])
	}
	return out
}

func TestErrorPaths(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 8, 4))
	if err := e.Pull(0, []uint64{1}, make([]float32, 3)); !errors.Is(err, psengine.ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
	if err := e.Push(0, []uint64{1}, make([]float32, 5)); !errors.Is(err, psengine.ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
	if err := e.Push(0, []uint64{123}, make([]float32, 4)); err == nil {
		t.Fatal("push of unknown key accepted")
	}
	// Capacity: 8 entries max.
	keys := make([]uint64, 9)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := e.Pull(0, keys, make([]float32, 9*4)); !errors.Is(err, psengine.ErrCapacity) {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	if err := e.Pull(1, []uint64{1}, make([]float32, 4)); !errors.Is(err, psengine.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := e.Push(1, []uint64{1}, make([]float32, 4)); !errors.Is(err, psengine.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := e.EndBatch(1); !errors.Is(err, psengine.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestConcurrentPullersAndPushers(t *testing.T) {
	cfg := testConfig(4, 512, 64)
	e := newTestEngine(t, cfg)
	const workers = 4
	keysFor := func(w int) []uint64 {
		keys := make([]uint64, 8)
		for i := range keys {
			if i < 4 {
				keys[i] = uint64(i) // hot keys shared by all workers
			} else {
				keys[i] = uint64(100 + w*10 + i)
			}
		}
		return keys
	}
	for b := int64(0); b < 5; b++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				keys := keysFor(w)
				dst := make([]float32, len(keys)*cfg.Dim)
				if err := e.Pull(b, keys, dst); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		e.EndPullPhase(b)
		e.WaitMaintenance()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				keys := keysFor(w)
				if err := e.Push(b, keys, constGrads(len(keys), cfg.Dim, 0.1)); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		if err := e.EndBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// Hot key 0 received workers grads per batch over 5 batches.
	got := make([]float32, cfg.Dim)
	if err := e.Pull(10, []uint64{0}, got); err != nil {
		t.Fatal(err)
	}
	init := runBatchValues(t, cfg, []uint64{0})
	want := init[0] - 0.1*0.1*float32(workers*5)
	if d := got[0] - want; d > 1e-4 || d < -1e-4 {
		t.Fatalf("hot key weight = %v, want %v (lost updates?)", got[0], want)
	}
}

func TestStatsAndMeterAccounting(t *testing.T) {
	cfg := testConfig(4, 64, 2)
	e := newTestEngine(t, cfg)
	for b := int64(0); b < 8; b++ {
		runBatch(t, e, b, []uint64{uint64(b % 6)}, constGrads(1, 4, 1))
	}
	st := e.Stats()
	if st.Entries != 6 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	m := cfg.Meter
	if m.Total(simclock.PMemWrite) == 0 {
		t.Fatal("no PMem write time charged despite evictions")
	}
	if m.Total(simclock.DRAMRead) == 0 || m.Total(simclock.Compute) == 0 {
		t.Fatal("DRAM/compute costs not charged")
	}
	if st.MissRate() < 0 || st.MissRate() > 1 {
		t.Fatalf("miss rate %v out of range", st.MissRate())
	}
}

func TestArenaSpaceIsReclaimedWithoutCheckpoints(t *testing.T) {
	// Flush the same keys many times; without reclamation the arena
	// (4x capacity) would fill after a few rounds of retires.
	cfg := testConfig(2, 8, 2)
	e := newTestEngine(t, cfg)
	keys := []uint64{1, 2, 3, 4, 5, 6, 7}
	for b := int64(0); b < 200; b++ {
		runBatch(t, e, b, keys, constGrads(len(keys), 2, 1))
	}
	if st := e.Stats(); st.PMemWrites < 100 {
		t.Fatalf("expected heavy flush traffic, got %d", st.PMemWrites)
	}
}

func TestArenaSpaceIsReclaimedAcrossCheckpoints(t *testing.T) {
	cfg := testConfig(2, 8, 2)
	e := newTestEngine(t, cfg)
	keys := []uint64{1, 2, 3, 4, 5, 6, 7}
	for b := int64(0); b < 200; b++ {
		runBatch(t, e, b, keys, constGrads(len(keys), 2, 1))
		if b%10 == 9 {
			if err := e.RequestCheckpoint(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.CompletedCheckpoint() < 150 {
		t.Fatalf("checkpoints lagging: completed %d", e.CompletedCheckpoint())
	}
}

func TestLRUVersionsNondecreasingFromTail(t *testing.T) {
	cfg := testConfig(2, 128, 16)
	e := newTestEngine(t, cfg)
	rng := rand.New(rand.NewSource(3))
	for b := int64(0); b < 40; b++ {
		keys := []uint64{uint64(rng.Intn(30)), uint64(rng.Intn(30)), uint64(rng.Intn(30))}
		seen := map[uint64]bool{}
		uniq := keys[:0]
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, k)
			}
		}
		runBatch(t, e, b, uniq, constGrads(len(uniq), 2, 1))

		// Invariant: within each shard, LRU order and version order
		// coincide (what makes checkpoint completion detectable from the
		// tail).
		for _, s := range e.shards {
			s.mu.RLock()
			last := int64(-1 << 62)
			ok := true
			for n := s.lru.Back(); n != nil; n = s.lru.Prev(n) {
				if n.Value.version < last {
					ok = false
					break
				}
				last = n.Value.version
			}
			s.mu.RUnlock()
			if !ok {
				t.Fatalf("batch %d: shard %d LRU versions not nondecreasing from tail", b, s.id)
			}
		}
	}
}
