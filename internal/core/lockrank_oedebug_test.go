//go:build oedebug

package core

import (
	"strings"
	"testing"
)

// TestLockRankViolationPanics exercises a deliberate hierarchy inversion —
// acquiring a shard lock (rank 10) while ckptMu (rank 20) is held — and
// requires the oedebug runtime checker to panic with a lockrank report.
func TestLockRankViolationPanics(t *testing.T) {
	var (
		ckptMu rankedMutex
		shardM rankedRWMutex
	)
	ckptMu.initRank("core.ckptMu", 20)
	shardM.initRank("core.shard.mu", 10)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("hierarchy inversion did not panic under -tags oedebug")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "lockrank:") || !strings.Contains(msg, "core.shard.mu (rank 10)") || !strings.Contains(msg, "core.ckptMu (rank 20)") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
		// The panic fired with ckptMu's rank still recorded; drop it so the
		// per-goroutine state does not leak into other tests.
		rankRelease("core.ckptMu")
	}()

	ckptMu.Lock()
	shardM.RLock() // inversion: rank 10 after rank 20 — must panic
	shardM.RUnlock()
	ckptMu.Unlock()
}

// TestLockRankAscendingOK verifies the checker accepts the documented order
// and fully unwinds its per-goroutine state.
func TestLockRankAscendingOK(t *testing.T) {
	var (
		ckptMu rankedMutex
		shardM rankedRWMutex
	)
	ckptMu.initRank("core.ckptMu", 20)
	shardM.initRank("core.shard.mu", 10)

	for i := 0; i < 3; i++ {
		shardM.Lock()
		ckptMu.Lock()
		ckptMu.Unlock()
		shardM.Unlock()
	}

	lockRanks.mu.Lock()
	n := len(lockRanks.held)
	lockRanks.mu.Unlock()
	if n != 0 {
		t.Fatalf("lock rank state leaked: %d goroutines still tracked", n)
	}
}
