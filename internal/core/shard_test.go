package core

import (
	"math/rand"
	"sync"
	"testing"

	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/workload"
)

// TestPullMissStatsCountedOnce is the regression test for the double-counted
// miss path: a Pull miss reads the record from PMem to serve the request,
// and maintenance then promotes the same entry with a second physical read.
// That promotion is the second half of one logical fetch, so PMemReads must
// advance once per miss — not twice. A push-triggered inline promotion, by
// contrast, is a genuine extra fetch (the entry was evicted after the pull)
// and is counted.
func TestPullMissStatsCountedOnce(t *testing.T) {
	e := newTestEngine(t, testConfig(2, 16, 1)) // cache of one entry

	// Batch 0: create key 1. Maintenance flushes it (its data version,
	// batch-1 = -1, is <= the empty queue's newest checkpoint, -1).
	runBatch(t, e, 0, []uint64{1}, nil)
	// Batch 1: create key 2; capacity 1 evicts key 1 (clean, no flush).
	runBatch(t, e, 1, []uint64{2}, nil)
	// Batch 2: pull key 1 — a PMem miss. Maintenance promotes it without
	// re-counting the read, and evicts dirty key 2 (one flush).
	runBatch(t, e, 2, []uint64{1}, nil)

	st := e.Stats()
	want := psengine.Stats{
		Entries:       2,
		CachedEntries: 1,
		Hits:          2, // the two creations
		Misses:        1, // batch 2's PMem-served pull
		PMemReads:     1, // ONE read for the miss+promotion pair
		PMemWrites:    2, // key 1 at batch 0, key 2's eviction at batch 2
		Evictions:     2,
	}
	if st != want {
		t.Fatalf("stats after miss sequence:\n got %+v\nwant %+v", st, want)
	}

	// A push of an evicted entry re-reads PMem for real: counted.
	if err := e.Push(3, []uint64{2}, constGrads(1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.EndBatch(3); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().PMemReads; got != 2 {
		t.Fatalf("PMemReads after inline push promotion = %d, want 2", got)
	}
}

// TestShardDeterminismAcrossShardCounts pins the tentpole's correctness
// claim: sharding changes lock granularity and eviction partitioning, but
// flush/promote round-trips are bit-exact, so Shards:1 and Shards:8 train
// identical weights and recover identically after a simulated crash.
func TestShardDeterminismAcrossShardCounts(t *testing.T) {
	const (
		keySpace = 200
		batches  = 25
		ckptAt   = 15
	)
	run := func(shards int) (map[uint64][]float32, int64, *pmem.Device, psengine.Config) {
		cfg := testConfig(4, 1024, 32)
		cfg.Optimizer = optim.NewAdaGrad(0.05) // stateful: state must round-trip too
		cfg.Shards = shards
		cfg.MaintThreads = 2
		e := newTestEngine(t, cfg)
		rng := rand.New(rand.NewSource(123)) // same stream for every shard count

		allKeys := make([]uint64, keySpace)
		for i := range allKeys {
			allKeys[i] = uint64(i)
		}
		for b := int64(0); b < batches; b++ {
			keys := allKeys
			if b > 0 {
				// Random subset; batch 0 touched every key, so no entry is
				// born after the checkpoint (births next to the checkpoint
				// boundary are recovered or not depending on eviction
				// order, which sharding legitimately changes).
				n := 4 + rng.Intn(12)
				seen := map[uint64]bool{}
				keys = make([]uint64, 0, n)
				for len(keys) < n {
					k := uint64(rng.Intn(keySpace))
					if !seen[k] {
						seen[k] = true
						keys = append(keys, k)
					}
				}
			}
			grads := make([]float32, len(keys)*cfg.Dim)
			for i := range grads {
				grads[i] = float32(rng.NormFloat64())
			}
			runBatch(t, e, b, keys, grads)
			if b == ckptAt {
				if err := e.RequestCheckpoint(b); err != nil {
					t.Fatal(err)
				}
			}
		}
		out := make(map[uint64][]float32, keySpace)
		for _, k := range allKeys {
			buf := make([]float32, cfg.Dim)
			if err := e.Pull(batches, []uint64{k}, buf); err != nil {
				t.Fatalf("shards=%d: pull key %d: %v", shards, k, err)
			}
			out[k] = buf
		}
		completed := e.CompletedCheckpoint()
		dev := e.Arena().Device()
		e.Close()
		dev.Crash()
		return out, completed, dev, cfg
	}

	w1, c1, dev1, cfg1 := run(1)
	w8, c8, dev8, cfg8 := run(8)
	if c1 != int64(ckptAt) || c8 != int64(ckptAt) {
		t.Fatalf("completed checkpoints: shards=1 %d, shards=8 %d, want %d", c1, c8, ckptAt)
	}
	for k, a := range w1 {
		b := w8[k]
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("trained key %d[%d]: shards=1 %v, shards=8 %v", k, d, a[d], b[d])
			}
		}
	}

	rec1, ck1, err := Recover(cfg1, dev1)
	if err != nil {
		t.Fatal(err)
	}
	defer rec1.Close()
	rec8, ck8, err := Recover(cfg8, dev8)
	if err != nil {
		t.Fatal(err)
	}
	defer rec8.Close()
	if ck1 != ck8 || ck1 != int64(ckptAt) {
		t.Fatalf("recovered checkpoints differ: %d vs %d", ck1, ck8)
	}
	if rec1.Stats().Entries != rec8.Stats().Entries || rec1.Stats().Entries != keySpace {
		t.Fatalf("recovered entries: shards=1 %d, shards=8 %d, want %d",
			rec1.Stats().Entries, rec8.Stats().Entries, keySpace)
	}
	for k := uint64(0); k < keySpace; k++ {
		a := make([]float32, cfg1.Dim)
		b := make([]float32, cfg8.Dim)
		if err := rec1.Pull(ck1+1, []uint64{k}, a); err != nil {
			t.Fatal(err)
		}
		if err := rec8.Pull(ck8+1, []uint64{k}, b); err != nil {
			t.Fatal(err)
		}
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("recovered key %d[%d]: shards=1 %v, shards=8 %v", k, d, a[d], b[d])
			}
		}
	}
}

// TestShardedStressCrossShardWithCheckpoints drives the sharded engine from
// 8 concurrent workers whose Zipfian batches straddle every shard, with
// EndBatch and RequestCheckpoint running between phases — under -race in
// CI. Correctness oracle: AdaGrad with a constant gradient is
// order-independent, so final weights depend only on per-key push counts.
func TestShardedStressCrossShardWithCheckpoints(t *testing.T) {
	cfg := psengine.Config{
		Dim:          8,
		Capacity:     8192,
		CacheEntries: 256,
		MaintThreads: 4,
		Shards:       8,
	}
	e := newTestEngine(t, cfg)
	dim := 8

	const (
		workers = 8
		batches = 24
	)
	sampler := make([]workload.KeySampler, workers)
	for w := range sampler {
		sampler[w] = workload.NewTableIISkew(4096, int64(100+w))
	}

	pushCount := map[uint64]int{}
	grad := make([]float32, 64*dim)
	for i := range grad {
		grad[i] = 1
	}

	for b := int64(0); b < batches; b++ {
		keysByWorker := make([][]uint64, workers)
		for w := range keysByWorker {
			keysByWorker[w] = workload.Batch(sampler[w], 64)
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				keys := keysByWorker[w]
				dst := make([]float32, len(keys)*dim)
				if err := e.Pull(b, keys, dst); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		e.EndPullPhase(b)
		// No WaitMaintenance: pushes must synchronize on their own.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				keys := keysByWorker[w]
				if err := e.Push(b, keys, grad[:len(keys)*dim]); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		for _, keys := range keysByWorker {
			for _, k := range keys {
				pushCount[k]++
			}
		}
		if err := e.EndBatch(b); err != nil {
			t.Fatal(err)
		}
		if b%5 == 4 {
			if err := e.RequestCheckpoint(b); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Verify a sample of keys against the count-determined oracle.
	cfgD := cfg.WithDefaults()
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for k, n := range pushCount {
		if rng.Intn(5) != 0 {
			continue
		}
		want := make([]float32, dim)
		state := make([]float32, cfgD.Optimizer.StateFloats(dim))
		cfgD.Initializer(k, want)
		cfgD.Optimizer.InitState(state)
		g := make([]float32, dim)
		for i := range g {
			g[i] = 1
		}
		for i := 0; i < n; i++ {
			cfgD.Optimizer.Apply(want, state, g)
		}
		got := make([]float32, dim)
		if err := e.Pull(batches, []uint64{k}, got); err != nil {
			t.Fatal(err)
		}
		for d := range got {
			if diff := got[d] - want[d]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("key %d (pushed %d times): weight[%d] = %v, oracle %v", k, n, d, got[d], want[d])
			}
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d keys checked", checked)
	}
	if done := e.CompletedCheckpoint(); done < 14 {
		t.Fatalf("checkpoints lagging under stress: completed %d", done)
	}

	// Every entry must live in exactly the shard its key hashes to.
	total := 0
	for _, s := range e.shards {
		s.mu.RLock()
		for k := range s.index {
			if e.shardFor(k) != s {
				t.Fatalf("key %d stored in shard %d, hashes to %d", k, s.id, e.shardIndex(k))
			}
			total++
		}
		s.mu.RUnlock()
	}
	if int64(total) != e.Stats().Entries {
		t.Fatalf("shard indexes hold %d entries, counter says %d", total, e.Stats().Entries)
	}
}
