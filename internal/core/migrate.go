package core

import (
	"fmt"
	"slices"

	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
)

// This file is the engine side of live resharding (DESIGN.md §15): a
// migration source exports the entries whose ring positions are moving
// (ExportRange), the target adopts them with immediate durability
// (AdoptEntries), and after the ownership epoch flips the source drops the
// moved range — index, cache, and every durable record (DropRange). All
// three are cold administrative paths: they take shard locks exclusively
// and never touch the pull/push hot path.

// MigEntry is one migrating entry on the wire between ExportRange and
// AdoptEntries: the key, the data version of the copied state (the batch
// whose push it reflects), and the full DRAM image — weights followed by
// optimizer state, EntryFloats floats.
type MigEntry struct {
	Key     uint64
	Version int64
	Data    []float32
}

// ExportRange returns up to max entries whose keys satisfy match, have key
// > afterKey, and carry dataVersion >= since — in ascending key order, with
// a more flag when the range continues past the page. afterKey is the
// resume cursor (pass 0 for the first page; keys are never 0-biased, the
// filter is strict). since narrows delta rounds to entries pushed at or
// after a batch; pass a very negative since for the full copy.
//
// The export is a read: it does not change entry state, and the copy is
// taken under each shard's exclusive lock so concurrent pushes cannot tear
// a row. Entries resident only in PMem are read back through the verified
// path, so a rotted record surfaces as an integrity error here instead of
// migrating corruption.
func (e *Engine) ExportRange(match func(key uint64) bool, since int64, afterKey uint64, max int) ([]MigEntry, bool, error) {
	if e.closed.Load() {
		return nil, false, psengine.ErrClosed
	}
	if max <= 0 {
		return nil, false, fmt.Errorf("core: ExportRange: non-positive page size %d", max)
	}
	// Pass 1: collect candidate keys per shard (sorted within a shard, not
	// across shards), then sort globally so paging is a total order on keys.
	var cand []uint64
	for _, s := range e.shards {
		s.mu.Lock()
		for _, k := range s.scrubKeysLocked() {
			if k <= afterKey || !match(k) {
				continue
			}
			if ent := s.index[k]; ent != nil && ent.dataVersion >= since {
				cand = append(cand, k)
			}
		}
		s.mu.Unlock()
	}
	slices.Sort(cand)
	more := len(cand) > max
	if more {
		cand = cand[:max]
	}
	if len(cand) == 0 {
		return nil, false, nil
	}
	// Pass 2: copy the selected entries, one shard lock acquisition per
	// shard-contiguous run of the (key-sorted) page. An entry deleted between
	// the passes is skipped — the caller's next delta round re-converges.
	out := make([]MigEntry, 0, len(cand))
	bufp := e.payloadPool.Get().(*[]byte)
	defer e.payloadPool.Put(bufp)
	for i := 0; i < len(cand); {
		s := e.shardFor(cand[i])
		j := i + 1
		for j < len(cand) && e.shardFor(cand[j]) == s {
			j++
		}
		s.mu.Lock()
		for _, k := range cand[i:j] {
			ent := s.index[k]
			if ent == nil {
				continue
			}
			data := make([]float32, e.cfg.EntryFloats())
			if ent.inDRAM() {
				copy(data, ent.buf)
			} else {
				if err := e.arena.ReadPayloadVerified(ent.slot, k, *bufp); err != nil {
					s.mu.Unlock()
					return nil, false, fmt.Errorf("core: export of key %d: %w", k, err)
				}
				pmem.DecodeFloats(data, *bufp)
			}
			out = append(out, MigEntry{Key: k, Version: ent.dataVersion, Data: data})
		}
		s.mu.Unlock()
		i = j
	}
	return out, more, nil
}

// AdoptEntries installs migrated entries into this engine, overwriting any
// existing state for the same keys, and flushes each adopted entry to PMem
// before returning. The immediate flush is what makes a replayed migration
// idempotent: adopted records are durable at their carried versions the
// moment the RPC completes, independent of whether the seal checkpoint that
// follows runs once or is skipped on a re-run.
//
// The caller (the node's adopt handler) fences its epoch afterwards, like
// after a rollback: clients bound to the pre-migration ownership view must
// rebind before their next fenced request.
//
// oevet:fence-need
func (e *Engine) AdoptEntries(entries []MigEntry) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	floats := e.cfg.EntryFloats()
	for _, me := range entries {
		if len(me.Data) != floats {
			return fmt.Errorf("core: adopt of key %d: %d floats, want %d", me.Key, len(me.Data), floats)
		}
	}
	for i := 0; i < len(entries); {
		s := e.shardFor(entries[i].Key)
		j := i + 1
		for j < len(entries) && e.shardFor(entries[j].Key) == s {
			j++
		}
		// One locked region per run; errors accumulate and break so the
		// shard still republishes a consistent snapshot before unlocking
		// (the maintain.go idiom — no early unlock inside the region).
		s.mu.Lock()
		var runErr error
		for _, me := range entries[i:j] {
			ent := s.index[me.Key]
			if ent == nil {
				if n := e.entries.Add(1); n > int64(e.cfg.Capacity) {
					e.entries.Add(-1)
					runErr = fmt.Errorf("%w: %d entries", psengine.ErrCapacity, n-1)
					break
				}
				ent = &entry{key: me.Key, version: me.Version, dataVersion: me.Version, slot: noSlot, dirty: true}
				ent.node.Value = ent
				ent.buf = make([]float32, floats)
				s.index[me.Key] = ent
				s.scrubKeysStale = true
			} else if ent.ckptPending {
				// The active checkpoint counted this entry's pre-adopt state;
				// persist that state first so the checkpoint stays exact, then
				// overwrite.
				if runErr = s.flushLocked(ent); runErr != nil {
					break
				}
			}
			if !ent.inDRAM() {
				ent.buf = make([]float32, floats)
			}
			copy(ent.buf, me.Data)
			ent.dirty = true
			ent.dataVersion = me.Version
			if me.Version > ent.version {
				ent.version = me.Version
			}
			if ent.node.InList() {
				s.lru.MoveToFront(&ent.node)
			} else {
				s.lru.PushFront(&ent.node)
			}
			s.snapStale = true
			// Durable immediately (see the function comment): the flush stamps
			// the record with the carried data version and clears dirty.
			if runErr = s.flushLocked(ent); runErr != nil {
				break
			}
		}
		if runErr == nil {
			runErr = s.enforceCapacityLocked()
		}
		s.rebuildSnapLocked()
		s.mu.Unlock()
		if runErr != nil {
			return runErr
		}
		i = j
	}
	return nil
}

// DropRange removes every entry whose key satisfies match — from the index,
// the cache, and checkpoint accounting — and durably erases every arena
// record (live, retired, or stale) carrying a matching key, so a later
// recovery scan cannot resurrect moved keys on the old owner. Returns the
// number of index entries dropped.
//
// The caller fences its epoch afterwards: dropping keys regresses this
// node's served key set exactly like a rollback does.
//
// oevet:fence-need
func (e *Engine) DropRange(match func(key uint64) bool) (int, error) {
	if e.closed.Load() {
		return 0, psengine.ErrClosed
	}
	// Settle in-flight maintenance first: a maintainer flushing a matching
	// entry concurrently with the erase would write the record right back.
	e.WaitMaintenance()
	dropped := 0
	for _, s := range e.shards {
		s.mu.Lock()
		for _, k := range s.scrubKeysLocked() {
			if !match(k) {
				continue
			}
			ent := s.index[k]
			if ent == nil {
				continue
			}
			if ent.ckptPending {
				// The active checkpoint counted this entry; settle its
				// completion accounting — the data is leaving this node.
				ent.ckptPending = false
				e.noteFlushed(true)
			}
			delete(s.index, k)
			s.scrubKeysStale = true
			s.snapStale = true
			if ent.node.InList() {
				s.lru.Remove(&ent.node)
			}
			ent.buf = nil
			ent.slot = noSlot
			e.entries.Add(-1)
			dropped++
		}
		s.rebuildSnapLocked()
		s.mu.Unlock()
	}
	if _, err := e.arena.EraseMatching(match); err != nil {
		return dropped, fmt.Errorf("core: drop range: %w", err)
	}
	return dropped, nil
}
