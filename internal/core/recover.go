package core

import (
	"fmt"
	"runtime"
	"sync"

	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
)

// Recover rebuilds a PMem-OE engine from a device after a failure
// (Sec. V-C): open the arena, read the durable Checkpointed Batch ID, scan
// every record, discard versions newer than the checkpoint, keep the newest
// surviving record per key, and reconstruct the DRAM hash index. The
// returned engine resumes training at checkpoint+1 with a cold cache.
//
// Recovery cost (the Fig. 14 experiment) is dominated by the sequential
// PMem scan plus index reconstruction, both charged to cfg.Meter.
//
// One fine point: an entry first touched in the batch *after* the
// checkpoint carries the checkpoint's batch as its data version (its
// initial state is "the state as of the previous batch's end"), so if its
// init-valued record reached PMem it is recovered too. That is exactly the
// deterministic state the entry would be reborn with on first touch after
// resuming, so recovered training is bit-identical either way.
func Recover(cfg psengine.Config, dev *pmem.Device) (*Engine, int64, error) {
	return RecoverParallel(cfg, dev, 1)
}

// RecoverParallel is Recover with the partitioned speed-up the paper
// proposes in Sec. VI-E: the arena's slot range is split across workers
// goroutines that scan and filter concurrently, and the surviving records
// are merged into the index afterwards. workers <= 0 uses GOMAXPROCS.
func RecoverParallel(cfg psengine.Config, dev *pmem.Device, workers int) (*Engine, int64, error) {
	return recoverImpl(cfg, dev, workers, 0, false)
}

// RecoverTo rebuilds an engine at an explicit retained checkpoint instead
// of the latest durable one — the rollback step of coordinated cluster
// replay (DESIGN.md §10). target must be one of the checkpoints the image
// retains: the durable Checkpointed Batch ID, or (for engines configured
// with RetainCheckpoints >= 2) the durable previous ID; -1 means "recover
// to scratch" and is valid only while the image retains no older state.
// Rolling back rewrites the durable IDs so the rollback itself survives a
// crash. RecoverTo with target equal to the latest checkpoint is exactly
// Recover, which is what makes the rollback RPC idempotent. Adopting the
// recovered engine regresses served state past target, so the adopter owes
// an epoch fence.
//
// oevet:fence-need
func RecoverTo(cfg psengine.Config, dev *pmem.Device, target int64) (*Engine, int64, error) {
	return recoverImpl(cfg, dev, runtime.GOMAXPROCS(0), target, true)
}

func recoverImpl(cfg psengine.Config, dev *pmem.Device, workers int, target int64, haveTarget bool) (*Engine, int64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	arena, err := pmem.OpenArena(dev)
	if err != nil {
		return nil, 0, fmt.Errorf("core: recover: %w", err)
	}
	// Both durable checkpoint header words are self-validating (a CRC-packed
	// encoding, pmem.Arena); a word that fails validation is reported typed
	// and handled here instead of recovering to a garbage batch ID.
	ckpt, cerr := arena.CheckpointedBatch()
	if cerr != nil && !pmem.IsIntegrity(cerr) {
		return nil, 0, fmt.Errorf("core: recover: %w", cerr)
	}
	prev, perr := arena.PrevCheckpointedBatch()
	if perr != nil && !pmem.IsIntegrity(perr) {
		return nil, 0, fmt.Errorf("core: recover: %w", perr)
	}
	info := RecoverInfo{CurCorrupt: cerr != nil, PrevCorrupt: perr != nil}
	rewrite := false // rewrite the durable header words even if target == ckpt
	switch {
	case cerr == nil && perr == nil:
		if prev >= ckpt {
			// A crash between the prev and cur header stores can leave
			// prev == cur; either way only one checkpoint is retained.
			prev = -1
		}
	case cerr == nil:
		// The previous-checkpoint word is corrupt: the current checkpoint is
		// intact and fully usable, but the older one is gone. Only an explicit
		// request for it fails; recovery to the current checkpoint proceeds
		// (and rewrites the bad word below, via the prev == -1 collapse).
		if haveTarget && target != ckpt {
			return nil, 0, fmt.Errorf("core: recover: target checkpoint %d not retained (previous checkpoint lost: %w)",
				target, perr)
		}
		prev = -1
		rewrite = true
	case perr == nil:
		// The current-checkpoint word is corrupt: fall back to the retained
		// previous checkpoint — that is exactly what it is retained for. The
		// fallback never happens silently for an explicit-target caller, and
		// never invents a scratch recovery when no previous checkpoint exists.
		if prev < 0 {
			return nil, 0, fmt.Errorf("core: recover: no usable checkpoint (no previous retained: %w)", cerr)
		}
		if haveTarget && target != prev {
			return nil, 0, fmt.Errorf("core: recover: target checkpoint %d not retained (current checkpoint lost: %w)",
				target, cerr)
		}
		info.FellBack = true
		ckpt, prev = prev, -1
		rewrite = true
	default:
		return nil, 0, fmt.Errorf("core: recover: no usable checkpoint (both header words corrupt: %w)", cerr)
	}
	if !haveTarget {
		target = ckpt
	} else if target != ckpt && target != prev {
		return nil, 0, fmt.Errorf("core: recover: target checkpoint %d not retained (have %d, prev %d)",
			target, ckpt, prev)
	}
	info.Target = target
	// horizon is the older checkpoint that must STAY recoverable after this
	// recovery: rolling back to prev (or scratch) discards it.
	horizon := int64(-1)
	if target == ckpt {
		horizon = prev
	}

	eng, err := New(cfg, arena)
	if err != nil {
		return nil, 0, err
	}
	eng.recoverInfo = info
	if info.FellBack {
		eng.obs.RecoverFallback.Add(1)
	}
	finish := func() (*Engine, int64, error) {
		if target != ckpt || rewrite {
			// Durably adopt the rollback, cur first: a crash between the
			// stores leaves prev == cur, which re-collapses to "one
			// retained" above.
			if err := arena.SetCheckpointedBatch(target); err != nil {
				eng.Close()
				return nil, 0, fmt.Errorf("core: recover: %w", err)
			}
			if err := arena.SetPrevCheckpointedBatch(-1); err != nil {
				eng.Close()
				return nil, 0, fmt.Errorf("core: recover: %w", err)
			}
		}
		eng.lastEnded.Store(target)
		eng.completedCkpt.Store(target)
		eng.prevCompleted.Store(horizon)
		return eng, target, nil
	}
	if target < 0 {
		// Recovering to scratch: nothing to index, every slot is free.
		arena.FinishRecovery()
		eng.lastEnded.Store(-1)
		if target != ckpt || rewrite {
			return finish()
		}
		return eng, -1, nil
	}

	type best struct {
		slot    uint32
		version int64
	}

	// Phase 1: partitioned scan. Each worker filters its slot range —
	// records newer than the target are dropped (Observation 2's
	// batch-range atomicity) — keeping the newest survivor per key, plus
	// the newest record at or below the horizon when that is an older slot
	// (the retained previous checkpoint still needs it).
	slots := uint32(arena.Slots())
	if uint32(workers) > slots {
		workers = int(slots)
		if workers == 0 {
			workers = 1
		}
	}
	type partial struct {
		newest map[uint64]best // newest version <= target
		horiz  map[uint64]best // newest version <= horizon
	}
	partials := make([]partial, workers)
	scanErrs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := slots / uint32(workers) * uint32(w)
		hi := slots / uint32(workers) * uint32(w+1)
		if w == workers-1 {
			hi = slots
		}
		wg.Add(1)
		go func(w int, lo, hi uint32) {
			defer wg.Done()
			local := partial{newest: make(map[uint64]best)}
			if horizon >= 0 {
				local.horiz = make(map[uint64]best)
			}
			scanErrs[w] = arena.ScanRange(lo, hi, func(r pmem.Record) error {
				if r.Version > target {
					return nil
				}
				if p, ok := local.newest[r.Key]; !ok || r.Version > p.version {
					local.newest[r.Key] = best{slot: r.Slot, version: r.Version}
				}
				if horizon >= 0 && r.Version <= horizon {
					if p, ok := local.horiz[r.Key]; !ok || r.Version > p.version {
						local.horiz[r.Key] = best{slot: r.Slot, version: r.Version}
					}
				}
				return nil
			})
			partials[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range scanErrs {
		if err != nil {
			eng.Close()
			return nil, 0, fmt.Errorf("core: recover: %w", err)
		}
	}

	// Phase 2: merge partitions (a key's records can land in any
	// partition; newest version wins).
	newest := partials[0].newest
	horiz := partials[0].horiz
	for _, local := range partials[1:] {
		for key, b := range local.newest {
			if p, ok := newest[key]; !ok || b.version > p.version {
				newest[key] = b
			}
		}
		for key, b := range local.horiz {
			if p, ok := horiz[key]; !ok || b.version > p.version {
				horiz[key] = b
			}
		}
	}

	// Phase 3: rebuild the per-shard DRAM hash indexes; entries stay in
	// PMem. Recovery is single-threaded past the scan, so no shard locks
	// are needed.
	//
	//oevet:ignore iteration order cannot reach the result: each key writes only its own index slot, MarkOccupied takes a per-slot max, and ChargeWrite sums a commutative counter
	for key, b := range newest {
		ent := &entry{key: key, version: b.version, dataVersion: b.version, slot: b.slot, persistedVersion: b.version}
		ent.node.Value = ent
		eng.shardFor(key).index[key] = ent
		arena.MarkOccupied(b.slot)
		eng.dram.ChargeWrite(entryIndexBytes)
	}
	// Horizon records that live in a different slot than the indexed winner
	// are re-marked occupied and re-retired: the rebuilt in-DRAM retired
	// list is what lets the normal reclaim path free them once the retained
	// previous checkpoint is superseded.
	//
	retire := make(map[uint64][2]best, 0)
	//oevet:ignore iteration order cannot reach the result: each key touches only its own slots and the retired set is order-insensitive for reclaim
	for key, hb := range horiz {
		tb := newest[key] // present: horizon records also match <= target
		if tb.slot == hb.slot {
			continue
		}
		arena.MarkOccupied(hb.slot)
		retire[key] = [2]best{hb, tb}
	}
	eng.entries.Store(int64(len(newest)))
	arena.FinishRecovery()
	//oevet:ignore iteration order cannot reach the result: Retire appends independent slots; reclaim decisions depend only on the (version, supersededBy) pairs
	for _, pair := range retire {
		arena.Retire(pair[0].slot, pair[0].version, pair[1].version)
	}
	if len(newest) > cfg.WithDefaults().Capacity {
		eng.Close()
		return nil, 0, fmt.Errorf("%w: recovered %d entries", psengine.ErrCapacity, len(newest))
	}
	return finish()
}

// entryIndexBytes is the DRAM footprint charged per rebuilt index entry
// (hash bucket slot plus entry header).
const entryIndexBytes = 64

// RecoverInfo describes how an engine was rebuilt: which checkpoint it
// landed on and whether corrupt durable header words forced a fallback.
// FellBack means the current-checkpoint word was corrupt and recovery
// adopted the retained previous checkpoint instead — the caller (the PS
// node) must surface that as a rollback, exactly like an explicit
// RecoverTo, so the trainer replays the lost batches.
type RecoverInfo struct {
	Target      int64 // checkpoint the engine recovered to (-1: scratch)
	FellBack    bool  // cur word corrupt; recovered to prev instead
	CurCorrupt  bool  // the durable current-checkpoint word failed validation
	PrevCorrupt bool  // the durable previous-checkpoint word failed validation
}

// RecoverInfo reports how this engine was recovered. Zero-valued for
// engines built by New rather than Recover/RecoverTo.
func (e *Engine) RecoverInfo() RecoverInfo { return e.recoverInfo }
