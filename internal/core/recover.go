package core

import (
	"fmt"
	"runtime"
	"sync"

	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
)

// Recover rebuilds a PMem-OE engine from a device after a failure
// (Sec. V-C): open the arena, read the durable Checkpointed Batch ID, scan
// every record, discard versions newer than the checkpoint, keep the newest
// surviving record per key, and reconstruct the DRAM hash index. The
// returned engine resumes training at checkpoint+1 with a cold cache.
//
// Recovery cost (the Fig. 14 experiment) is dominated by the sequential
// PMem scan plus index reconstruction, both charged to cfg.Meter.
//
// One fine point: an entry first touched in the batch *after* the
// checkpoint carries the checkpoint's batch as its data version (its
// initial state is "the state as of the previous batch's end"), so if its
// init-valued record reached PMem it is recovered too. That is exactly the
// deterministic state the entry would be reborn with on first touch after
// resuming, so recovered training is bit-identical either way.
func Recover(cfg psengine.Config, dev *pmem.Device) (*Engine, int64, error) {
	return RecoverParallel(cfg, dev, 1)
}

// RecoverParallel is Recover with the partitioned speed-up the paper
// proposes in Sec. VI-E: the arena's slot range is split across workers
// goroutines that scan and filter concurrently, and the surviving records
// are merged into the index afterwards. workers <= 0 uses GOMAXPROCS.
func RecoverParallel(cfg psengine.Config, dev *pmem.Device, workers int) (*Engine, int64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	arena, err := pmem.OpenArena(dev)
	if err != nil {
		return nil, 0, fmt.Errorf("core: recover: %w", err)
	}
	ckpt, err := arena.CheckpointedBatch()
	if err != nil {
		return nil, 0, fmt.Errorf("core: recover: %w", err)
	}

	eng, err := New(cfg, arena)
	if err != nil {
		return nil, 0, err
	}
	if ckpt < 0 {
		// No checkpoint ever completed: training restarts from scratch
		// (the paper's semantics — records on PMem carry no batch-level
		// consistency guarantee before the first checkpoint).
		arena.FinishRecovery()
		return eng, -1, nil
	}

	type best struct {
		slot    uint32
		version int64
	}

	// Phase 1: partitioned scan. Each worker filters its slot range —
	// records newer than the checkpoint are dropped (Observation 2's
	// batch-range atomicity) — keeping the newest survivor per key.
	slots := uint32(arena.Slots())
	if uint32(workers) > slots {
		workers = int(slots)
		if workers == 0 {
			workers = 1
		}
	}
	partials := make([]map[uint64]best, workers)
	scanErrs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := slots / uint32(workers) * uint32(w)
		hi := slots / uint32(workers) * uint32(w+1)
		if w == workers-1 {
			hi = slots
		}
		wg.Add(1)
		go func(w int, lo, hi uint32) {
			defer wg.Done()
			local := make(map[uint64]best)
			scanErrs[w] = arena.ScanRange(lo, hi, func(r pmem.Record) error {
				if r.Version > ckpt {
					return nil
				}
				if prev, ok := local[r.Key]; !ok || r.Version > prev.version {
					local[r.Key] = best{slot: r.Slot, version: r.Version}
				}
				return nil
			})
			partials[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range scanErrs {
		if err != nil {
			eng.Close()
			return nil, 0, fmt.Errorf("core: recover: %w", err)
		}
	}

	// Phase 2: merge partitions (a key's records can land in any
	// partition; newest version wins).
	newest := partials[0]
	for _, local := range partials[1:] {
		for key, b := range local {
			if prev, ok := newest[key]; !ok || b.version > prev.version {
				newest[key] = b
			}
		}
	}

	// Phase 3: rebuild the per-shard DRAM hash indexes; entries stay in
	// PMem. Recovery is single-threaded past the scan, so no shard locks
	// are needed.
	//
	//oevet:ignore iteration order cannot reach the result: each key writes only its own index slot, MarkOccupied takes a per-slot max, and ChargeWrite sums a commutative counter
	for key, b := range newest {
		ent := &entry{key: key, version: b.version, dataVersion: b.version, slot: b.slot, persistedVersion: b.version}
		ent.node.Value = ent
		eng.shardFor(key).index[key] = ent
		arena.MarkOccupied(b.slot)
		eng.dram.ChargeWrite(entryIndexBytes)
	}
	eng.entries.Store(int64(len(newest)))
	arena.FinishRecovery()
	if len(newest) > cfg.WithDefaults().Capacity {
		eng.Close()
		return nil, 0, fmt.Errorf("%w: recovered %d entries", psengine.ErrCapacity, len(newest))
	}
	eng.lastEnded.Store(ckpt)
	eng.completedCkpt.Store(ckpt)
	return eng, ckpt, nil
}

// entryIndexBytes is the DRAM footprint charged per rebuilt index entry
// (hash bucket slot plus entry header).
const entryIndexBytes = 64
