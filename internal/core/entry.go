// Package core implements PMem-OE, the paper's proposed parameter-server
// engine (Secs. IV and V): a DRAM hash index whose entries live either in a
// DRAM cache or in a PMem arena, a pipelined cache-maintenance path that
// keeps LRU bookkeeping and PMem traffic off the request critical path
// (Algorithm 1), and a batch-aware checkpoint co-designed with cache
// replacement (Algorithm 2).
package core

import (
	"openembedding/internal/cache"
)

// noSlot marks an entry with no persisted PMem record yet.
const noSlot = ^uint32(0)

// entry is one embedding entry as seen by the DRAM hash index.
//
// The paper's index stores a tagged pointer whose lowest bit says whether
// the target is in DRAM or PMem. In Go the same information is carried by
// buf: a non-nil buf means the entry is cached in DRAM; a nil buf means the
// authoritative copy is the PMem record at slot.
type entry struct {
	key uint64

	// version is the ID of the last batch that accessed the entry
	// (Alg. 1 line 10, Alg. 2 lines 16/20). LRU order and version order
	// coincide, which is what lets checkpoint completion be detected from
	// the LRU tail.
	version int64

	// dataVersion is the ID of the batch whose update the DRAM buffer
	// reflects (the last push, or the creation batch for a fresh entry).
	// PMem records are stamped with dataVersion, not the access version:
	// when the cache is smaller than a batch's working set, an entry can be
	// evicted in the same batch that pulled it, and stamping the access
	// version would then label pre-update data with a post-update batch ID
	// and break recovery. dataVersion <= version always holds.
	dataVersion int64

	// buf holds weights followed by optimizer state while cached in DRAM;
	// nil while the entry lives only in PMem.
	buf []float32

	// slot is the PMem slot of the newest persisted record, or noSlot.
	slot uint32

	// persistedVersion is the data version of the record at slot
	// (meaningless while slot == noSlot). The space manager needs it to
	// decide whether a superseded record is still covered by a checkpoint.
	persistedVersion int64

	// dirty reports that buf differs from the persisted record (or that no
	// record exists yet).
	dirty bool

	// ckptPending marks an entry counted by the active checkpoint's
	// activation scan and not yet persisted. Exactly these entries
	// decrement the completion counter when flushed: an entry *created*
	// after activation can satisfy the same dirty/dataVersion predicate
	// (its data version is its birth batch minus one) without having been
	// counted, and decrementing for it would complete the checkpoint
	// early, losing counted state.
	ckptPending bool

	// node links the entry into the LRU list while cached.
	node cache.Node[*entry]

	// snapEpoch/snapRow locate this entry's row in its shard's serve
	// snapshot (serve.go): valid only while snapEpoch matches the published
	// snapshot's epoch. Written by the rebuild under the exclusive shard
	// lock; read by push under the entry's stripe to mark the row dirty.
	snapEpoch uint64
	snapRow   int32
}

// inDRAM reports whether the entry currently has a DRAM copy.
func (e *entry) inDRAM() bool { return e.buf != nil }

// weights returns the weight portion of the DRAM buffer.
func (e *entry) weights(dim int) []float32 { return e.buf[:dim] }

// state returns the optimizer-state portion of the DRAM buffer.
func (e *entry) state(dim int) []float32 { return e.buf[dim:] }
