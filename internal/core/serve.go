package core

import (
	"slices"
	"sync"
	"sync/atomic"

	"openembedding/internal/pmem"
)

// This file is the engine side of the online serving tier (DESIGN.md §14):
// an epoch-based, lock-free read path for clean hot entries.
//
// Each shard publishes an immutable hot-set snapshot — a read-only key→row
// index plus a flat row array copied out of the DRAM cache — through an
// atomic pointer. Serving threads load the pointer, probe the map, check
// the row's dirty bit and copy the row without touching the shard's
// reader/writer lock or its push stripes. Rows are never written after
// publication, so a snapshot read can never tear; the dirty bits only
// bound staleness, not integrity.
//
// Training stays the writer of record: pushes mark the served row dirty
// under the stripe they already hold, and the maintenance round that
// follows every batch rebuilds the snapshot under the exclusive shard lock
// it already holds — incrementally (re-copying only dirty rows into a
// fresh row array) while the hot set is stable, or fully (re-walking the
// LRU) after any membership change (promotion, eviction, first touch,
// scrub heal). Because rebuilds run under the exclusive lock, no push or
// serve fallback can observe a half-built snapshot.
//
// Keys outside the snapshot (cold, dirty, or never trained) fall back to
// the locked engine path: shared shard lock, then the entry's push stripe
// for DRAM copies — exactly the order push uses — so a fallback read
// returns the pre- or post-push row bit-exactly, never a torn mix.

// ServeSource says which tier satisfied a ServeRead.
type ServeSource uint8

const (
	// ServeSnap: lock-free snapshot hit (the fast path).
	ServeSnap ServeSource = iota
	// ServeDRAM: fallback hit on the DRAM cache under the stripe.
	ServeDRAM
	// ServePMem: fallback verified read of the persisted record.
	ServePMem
	// ServeInit: key unknown to the engine; served from the deterministic
	// initializer without creating an entry (serving never mutates
	// training state).
	ServeInit
)

// shardSnap is one shard's published hot-set snapshot. index, byRow, ents
// and rows are immutable after publication; dirty and dirtyCount are the
// only mutable fields (written by pushes under their stripe).
type shardSnap struct {
	epoch uint64
	dim   int
	// index maps a key to its row in rows.
	index map[uint64]int32
	// byRow lists the key at each row (diagnostics and full-rebuild reuse).
	byRow []uint64
	// ents holds the entry behind each row. Only the rebuild path (which
	// runs under the exclusive shard lock) dereferences it; serving threads
	// never touch entries.
	ents []*entry
	// rows holds the row copies, dim floats per row.
	rows []float32
	// dirty[r] != 0 marks row r stale: a push updated the entry after this
	// snapshot copied it. Serving falls back to the locked path for dirty
	// rows; the next rebuild re-copies them and clears the bits.
	dirty      []atomic.Uint32
	dirtyCount atomic.Int64
}

// serveQCap bounds the per-shard queue of fallback-served keys awaiting
// promotion by RefreshServeSnapshots; excess keys are dropped (they will
// be re-noted by later reads if they stay hot).
const serveQCap = 1024

// serveQueue collects the keys the serve fallback path had to read from
// PMem, so a refresh can promote them into the hot set. Its mutex is a
// leaf: it is only taken with no other lock held.
type serveQueue struct {
	mu   sync.Mutex
	keys []uint64
}

func (q *serveQueue) note(k uint64) {
	q.mu.Lock()
	if len(q.keys) < serveQCap {
		q.keys = append(q.keys, k)
	}
	q.mu.Unlock()
}

func (q *serveQueue) drain() []uint64 {
	q.mu.Lock()
	keys := q.keys
	q.keys = nil
	q.mu.Unlock()
	return keys
}

// EnableServeSnapshots switches the engine into serving mode: every shard
// builds an initial hot-set snapshot now, and each maintenance round
// rebuilds its shard's snapshot before releasing the exclusive lock.
// Idempotent; safe to call before or during training.
func (e *Engine) EnableServeSnapshots() {
	if e.serveOn.Swap(true) {
		return
	}
	for _, s := range e.shards {
		s.mu.Lock()
		s.snapStale = true
		s.rebuildSnapLocked()
		s.mu.Unlock()
	}
}

// ServeSnapshotsEnabled reports whether serving mode is on.
func (e *Engine) ServeSnapshotsEnabled() bool { return e.serveOn.Load() }

// ServeRead copies the current weights of key k into dst (dim floats).
// The fast path — a clean snapshot hit — takes no lock at all: it loads
// the shard's snapshot pointer, probes the immutable index and copies the
// immutable row. Cold, dirty or unknown keys fall back to the locked
// engine path (serveReadSlow). ServeRead never mutates training state: an
// unknown key is served from the deterministic initializer without
// creating an entry.
//
// oevet:hotpath
func (e *Engine) ServeRead(k uint64, dst []float32) (ServeSource, error) {
	s := e.shards[e.shardIndex(k)]
	if sn := s.snap.Load(); sn != nil {
		if r, ok := sn.index[k]; ok && sn.dirty[r].Load() == 0 {
			copy(dst, sn.rows[int(r)*sn.dim:(int(r)+1)*sn.dim])
			return ServeSnap, nil
		}
	}
	return s.serveReadSlow(k, dst)
}

// serveReadSlow is the locked fallback for keys the snapshot cannot serve.
// It holds the shard lock shared and, for DRAM-resident entries, the
// entry's push stripe — the same order push itself uses — so the copy is
// the row before or after a full push run, never a torn mix. PMem-resident
// entries are read under the shared lock only (the record is immutable and
// its slot is stable while any reader holds mu; flushes that move records
// take mu exclusively) and then noted for hot-set promotion.
//
// oevet:coldpath snapshot miss/dirty fallback: the clean-key serve path never reaches it, and the cold path may allocate its verify buffer
func (s *shard) serveReadSlow(k uint64, dst []float32) (ServeSource, error) {
	e := s.eng
	dim := e.cfg.Dim
	s.mu.RLock()
	ent := s.index[k]
	if ent == nil {
		s.mu.RUnlock()
		e.cfg.Initializer(k, dst)
		return ServeInit, nil
	}
	stripe := &s.stripes[k%uint64(len(s.stripes))]
	stripe.Lock()
	if ent.inDRAM() {
		copy(dst, ent.weights(dim))
		stripe.Unlock()
		s.mu.RUnlock()
		e.dram.ChargeReadN(4*dim, 1)
		return ServeDRAM, nil
	}
	stripe.Unlock()
	bufp := e.payloadPool.Get().(*[]byte)
	err := e.arena.ReadPayloadVerified(ent.slot, k, *bufp)
	if err == nil {
		pmem.DecodeFloats(dst, *bufp)
	}
	e.payloadPool.Put(bufp)
	s.mu.RUnlock()
	if err != nil {
		if pmem.IsIntegrity(err) {
			e.obs.CorruptServe.Add(1)
		}
		return ServePMem, err
	}
	s.serveQ.note(k)
	return ServePMem, nil
}

// markServeDirty records that a push updated ent after the current
// snapshot copied it. Caller holds the entry's stripe (and the shard lock
// shared), so the loaded snapshot cannot be swapped mid-call: rebuilds
// take the shard lock exclusively.
//
// oevet:hotpath
func (s *shard) markServeDirty(ent *entry) {
	sn := s.snap.Load()
	if sn == nil || ent.snapEpoch != sn.epoch {
		return
	}
	r := ent.snapRow
	if sn.dirty[r].Swap(1) == 0 {
		sn.dirtyCount.Add(1)
	}
}

// rebuildSnapLocked republishes this shard's snapshot. Caller holds the
// exclusive shard lock, so no push or fallback read runs concurrently.
//
// While the hot set is membership-stable (snapStale false) the rebuild is
// incremental: the key index, row order and entry table are shared with
// the previous snapshot and only dirty rows are re-copied into the fresh
// row array. A membership change (promotion, eviction, first touch, scrub
// heal) sets snapStale and forces a full rebuild that walks the LRU in
// recency order.
//
// oevet:holds core.shard.mu 10
func (s *shard) rebuildSnapLocked() {
	if !s.eng.serveOn.Load() {
		return
	}
	dim := s.eng.cfg.Dim
	old := s.snap.Load()
	if !s.snapStale && old != nil {
		if old.dirtyCount.Load() == 0 {
			return // nothing moved; keep serving the published snapshot
		}
		rows := make([]float32, len(old.rows))
		copy(rows, old.rows)
		ok := true
		for r := range old.dirty {
			if old.dirty[r].Load() == 0 {
				continue
			}
			ent := old.ents[r]
			if ent == nil || !ent.inDRAM() {
				// The dirty entry left DRAM between the push and this
				// round without tripping snapStale; re-walk from scratch.
				ok = false
				break
			}
			copy(rows[r*dim:(r+1)*dim], ent.weights(dim))
		}
		if ok {
			sn := &shardSnap{
				epoch: old.epoch,
				dim:   dim,
				index: old.index,
				byRow: old.byRow,
				ents:  old.ents,
				rows:  rows,
				dirty: make([]atomic.Uint32, len(old.dirty)),
			}
			s.snap.Store(sn)
			return
		}
	}
	// Full rebuild: the hot set is exactly the DRAM cache, walked MRU→LRU
	// (a deterministic order, unlike map iteration).
	n := s.lru.Len()
	s.snapEpoch++
	sn := &shardSnap{
		epoch: s.snapEpoch,
		dim:   dim,
		index: make(map[uint64]int32, n),
		byRow: make([]uint64, 0, n),
		ents:  make([]*entry, 0, n),
		rows:  make([]float32, 0, n*dim),
		dirty: make([]atomic.Uint32, n),
	}
	s.lru.Each(func(ent *entry) bool {
		r := int32(len(sn.byRow))
		sn.index[ent.key] = r
		sn.byRow = append(sn.byRow, ent.key)
		sn.ents = append(sn.ents, ent)
		sn.rows = append(sn.rows, ent.weights(dim)...)
		ent.snapEpoch = sn.epoch
		ent.snapRow = r
		return true
	})
	s.snapStale = false
	s.snap.Store(sn)
}

// RefreshServeSnapshots folds serve-path observations back into the hot
// set: keys the fallback path served from PMem are promoted into the DRAM
// cache (and therefore the next snapshot), the cache budget is re-enforced
// and every shard's snapshot is rebuilt. Call it from a background cadence
// (serve.Handler does) or after a training quiesce; it takes each shard's
// exclusive lock in turn, like a maintenance round.
func (e *Engine) RefreshServeSnapshots() error {
	if !e.serveOn.Load() {
		return nil
	}
	batch := e.lastEnded.Load()
	var firstErr error
	for _, s := range e.shards {
		keys := s.serveQ.drain()
		slices.Sort(keys)
		keys = slices.Compact(keys)
		s.mu.Lock()
		for _, k := range keys {
			ent := s.index[k]
			if ent == nil {
				continue
			}
			if !ent.inDRAM() {
				if err := e.promoteLocked(ent, true); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
			}
			if ent.node.InList() {
				s.lru.MoveToFront(&ent.node)
			} else {
				ent.version = batch
				s.lru.PushFront(&ent.node)
				s.snapStale = true
			}
		}
		if err := s.enforceCapacityLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.rebuildSnapLocked()
		s.mu.Unlock()
	}
	return firstErr
}
