package core

import (
	"os"
	"strconv"
	"testing"

	"openembedding/internal/obs"
)

// TestBenchReport runs the obs-overhead benchmark pair (the same workload as
// BenchmarkEnginePullObs) through testing.Benchmark and writes the
// machine-readable BENCH artifact with the computed on/off overhead.
//
// It is gated on OE_BENCH_REPORT (the output path) so plain `go test ./...`
// stays fast; CI sets it to BENCH_pr3.json and additionally enforces the
// overhead regression gate via OE_BENCH_MAX_OVERHEAD_PCT. The acceptance
// budget on a quiet machine is <5%; CI sets a looser threshold because its
// single-core runners are noisy.
func TestBenchReport(t *testing.T) {
	path := os.Getenv("OE_BENCH_REPORT")
	if path == "" {
		t.Skip("OE_BENCH_REPORT not set")
	}

	// Best-of-N per mode: a single testing.Benchmark run swings by >10% on
	// a busy single-core machine, which would drown the ~1% signal; the
	// minimum is the run with the least scheduler interference.
	const rounds = 3
	best := func(f func(b *testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(f)
		for i := 1; i < rounds; i++ {
			if next := testing.Benchmark(f); next.NsPerOp() < r.NsPerOp() {
				r = next
			}
		}
		return r
	}
	off := best(func(b *testing.B) { benchPullSingle(b, nil) })
	reg := obs.NewRegistry()
	on := best(func(b *testing.B) { benchPullSingle(b, reg) })
	if off.NsPerOp() <= 0 || on.NsPerOp() <= 0 {
		t.Fatalf("degenerate benchmark results: off=%v on=%v", off, on)
	}
	overhead := 100 * (float64(on.NsPerOp()) - float64(off.NsPerOp())) / float64(off.NsPerOp())
	t.Logf("pull obs-off %d ns/op, obs-on %d ns/op, overhead %+.2f%%",
		off.NsPerOp(), on.NsPerOp(), overhead)

	rep := obs.NewBenchReport("pr3")
	rep.Add(obs.BenchResult{
		Name:        "EnginePull/obs=off",
		NsPerOp:     float64(off.NsPerOp()),
		AllocsPerOp: float64(off.AllocsPerOp()),
		BytesPerOp:  float64(off.AllocedBytesPerOp()),
		N:           off.N,
	})
	onRes := obs.BenchResult{
		Name:        "EnginePull/obs=on",
		NsPerOp:     float64(on.NsPerOp()),
		AllocsPerOp: float64(on.AllocsPerOp()),
		BytesPerOp:  float64(on.AllocedBytesPerOp()),
		N:           on.N,
		Metrics:     map[string]float64{"overhead_pct": overhead},
	}
	// Fold the sampled latency percentiles the obs-on run recorded into the
	// artifact: the report then documents both the cost of observing and
	// what was observed.
	if h, ok := reg.Snapshot().Histograms["engine_pull_ns"]; ok && h.Count > 0 {
		onRes.Metrics["engine_pull_ns_p50"] = float64(h.P50)
		onRes.Metrics["engine_pull_ns_p99"] = float64(h.P99)
		onRes.Metrics["engine_pull_samples"] = float64(h.Count)
	}
	rep.Add(onRes)
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("wrote %s", path)

	if maxStr := os.Getenv("OE_BENCH_MAX_OVERHEAD_PCT"); maxStr != "" {
		max, err := strconv.ParseFloat(maxStr, 64)
		if err != nil {
			t.Fatalf("bad OE_BENCH_MAX_OVERHEAD_PCT %q: %v", maxStr, err)
		}
		if overhead > max {
			t.Errorf("obs-on pull overhead %.2f%% exceeds gate %.2f%%", overhead, max)
		}
	}
}
