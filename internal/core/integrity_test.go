package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
)

// corruptSlot flips one payload bit of slot's record in the volatile image
// only (no flush): the durable copy keeps the original bytes, modelling
// bit-rot discovered by a load rather than by recovery. A single flipped
// bit is within CRC32C correction range, so the scrubber heals it in place.
func corruptSlot(t *testing.T, a *pmem.Arena, slot uint32) {
	t.Helper()
	flipPayloadBit(t, a, slot, 0)
}

// smashSlot flips one bit in each of three payload bytes — damage beyond
// single-bit correction (and, record lengths being far inside CRC32C's
// minimum-distance-4 bound, damage that can never masquerade as a
// correctable single-bit error), forcing the scrubber onto its lossier
// heals.
func smashSlot(t *testing.T, a *pmem.Arena, slot uint32) {
	t.Helper()
	for i := 0; i < 3; i++ {
		flipPayloadBit(t, a, slot, i)
	}
}

func flipPayloadBit(t *testing.T, a *pmem.Arena, slot uint32, byteIdx int) {
	t.Helper()
	off := a.SlotOffset(slot) + 24 + byteIdx // payload starts after the 24-byte slot header
	var b [1]byte
	dev := a.Device()
	if err := dev.Read(off, b[:]); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if err := dev.Write(off, b[:]); err != nil {
		t.Fatal(err)
	}
}

// entrySnapshot reads (slot, inDRAM, present) for key under the shard lock.
func entrySnapshot(e *Engine, key uint64) (slot uint32, inDRAM, present bool) {
	s := e.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent := s.index[key]
	if ent == nil {
		return noSlot, false, false
	}
	return ent.slot, ent.inDRAM(), true
}

// persistedEvicted returns a key from keys whose entry is persisted in PMem
// and no longer DRAM-cached.
func persistedEvicted(t *testing.T, e *Engine, keys []uint64) (uint64, uint32) {
	t.Helper()
	for _, k := range keys {
		slot, inDRAM, present := entrySnapshot(e, k)
		if present && !inDRAM && slot != noSlot {
			return k, slot
		}
	}
	t.Fatal("no evicted persisted entry found")
	return 0, 0
}

// TestPullDetectsCorruptionBeforeServing pins the acceptance criterion of
// DESIGN.md §11: corruption injected into a record that a Pull must serve
// from PMem is detected by the checksum BEFORE the value reaches the
// response — the caller gets a typed error, never silent garbage.
func TestPullDetectsCorruptionBeforeServing(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 2))
	keys := []uint64{1, 2, 3, 4, 5, 6}
	runBatch(t, e, 0, keys, constGrads(6, 4, 1))
	runBatch(t, e, 1, []uint64{1, 2}, nil) // maintenance trims the cache to 2
	k, slot := persistedEvicted(t, e, keys)
	corruptSlot(t, e.Arena(), slot)
	dst := make([]float32, 4)
	err := e.Pull(2, []uint64{k}, dst)
	if err == nil {
		t.Fatalf("pull served corrupt record of key %d as %v", k, dst)
	}
	if !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestScrubRepairsFromDRAMCopy: an uncorrectably corrupt record whose
// entry is still DRAM-cached and clean is healed transparently by
// re-persisting the cached state — the rewrite lands at the same version,
// so checkpoint coverage is preserved and no fence is needed.
func TestScrubRepairsFromDRAMCopy(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 50))
	keys := []uint64{1, 2, 3}
	runBatch(t, e, 0, keys, constGrads(3, 4, 0.5))
	commitCheckpoint(t, e, 0) // persists all three while they stay cached
	want := runBatch(t, e, 1, keys, nil)

	slot, inDRAM, present := entrySnapshot(e, 2)
	if !present || !inDRAM || slot == noSlot {
		t.Fatalf("precondition: key 2 must be cached and persisted (slot %d, inDRAM %v)", slot, inDRAM)
	}
	smashSlot(t, e.Arena(), slot)

	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned < 3 || rep.Corrupt != 1 || rep.Repaired != 1 || rep.Restored != 0 || rep.Fenced != 0 {
		t.Fatalf("scrub report %+v, want 1 corrupt repaired of >=3 scanned", rep)
	}
	// The re-persisted record verifies, and the served state is unchanged.
	if rep2, err := e.Scrub(); err != nil || rep2.Corrupt != 0 {
		t.Fatalf("second scrub still finds corruption: %+v, %v", rep2, err)
	}
	got := runBatch(t, e, 2, keys, nil)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weights changed across repair: %v vs %v", want, got)
		}
	}
}

// TestScrubRestoresFromRetainedCheckpoint: a corrupt record with no DRAM
// copy rolls back onto the newest retained record at or below the completed
// checkpoint — the state a crash-recovery would also land on.
func TestScrubRestoresFromRetainedCheckpoint(t *testing.T) {
	e := newTestEngine(t, rollbackTestConfig())
	const k = 1
	runBatch(t, e, 0, []uint64{k}, constGrads(1, 4, 1))
	commitCheckpoint(t, e, 0)
	want := runBatch(t, e, 1, []uint64{k}, nil) // checkpoint-covered state
	runBatch(t, e, 2, []uint64{k}, constGrads(1, 4, 2))
	// Six fresh keys overflow the 6-entry cache and evict k, flushing its
	// post-batch-2 state; the checkpoint-0 record is retained (not reclaimed:
	// checkpoint 0 still needs it).
	runBatch(t, e, 3, []uint64{10, 11, 12, 13, 14, 15}, constGrads(6, 4, 1))

	slot, inDRAM, present := entrySnapshot(e, k)
	if !present || inDRAM || slot == noSlot {
		t.Fatalf("precondition: key %d must be evicted and persisted (slot %d, inDRAM %v)", k, slot, inDRAM)
	}
	smashSlot(t, e.Arena(), slot)

	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Restored != 1 || rep.Repaired != 0 || rep.Fenced != 0 {
		t.Fatalf("scrub report %+v, want 1 corrupt restored", rep)
	}
	got := runBatch(t, e, 4, []uint64{k}, nil)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("restored state %v, want checkpoint state %v (bit-exact)", got, want)
		}
	}
}

// TestScrubFencesUnrecoverableKey: a corrupt record with no DRAM copy and
// no retained checkpoint-covered record is fenced — the key is dropped and
// reborn from its deterministic initializer on first touch.
func TestScrubFencesUnrecoverableKey(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 50))
	keys := []uint64{1, 2, 3, 4, 5, 6}
	runBatch(t, e, 0, keys, constGrads(6, 4, 1))
	// 50 fresh keys overflow the cache: keys 1..6 are evicted and their
	// post-push state flushed, retiring their init-valued records. The
	// checkpoint at batch 1 then reclaims those retired records, so each key
	// has exactly one persisted record left.
	fill := make([]uint64, 50)
	for i := range fill {
		fill[i] = 100 + uint64(i)
	}
	runBatch(t, e, 1, fill, constGrads(50, 4, 1))
	commitCheckpoint(t, e, 1)

	k, slot := persistedEvicted(t, e, keys)
	smashSlot(t, e.Arena(), slot)

	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Fenced != 1 || rep.Repaired != 0 || rep.Restored != 0 {
		t.Fatalf("scrub report %+v, want 1 corrupt fenced", rep)
	}
	if _, _, present := entrySnapshot(e, k); present {
		t.Fatalf("fenced key %d still indexed", k)
	}
	// Reborn bit-identical to a fresh engine's first touch of the same key.
	got := make([]float32, 4)
	if err := e.Pull(2, []uint64{k}, got); err != nil {
		t.Fatal(err)
	}
	fresh := newTestEngine(t, testConfig(4, 100, 50))
	want := make([]float32, 4)
	if err := fresh.Pull(0, []uint64{k}, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("reborn key %d = %v, want deterministic init %v", k, got, want)
		}
	}
}

// TestBackgroundScrubNotifiesOnLoss: the budgeted scrub step that rides the
// maintainer pool fences an unrecoverable key and fires the integrity-loss
// callback (the node's cue to fence its epoch) before WaitMaintenance
// returns.
func TestBackgroundScrubNotifiesOnLoss(t *testing.T) {
	cfg := testConfig(4, 100, 50)
	cfg.ScrubRate = 256 // full pass every round
	e := newTestEngine(t, cfg)
	var fired atomic.Int32
	e.SetIntegrityNotify(func() { fired.Add(1) })

	keys := []uint64{1, 2, 3, 4, 5, 6}
	runBatch(t, e, 0, keys, constGrads(6, 4, 1))
	fill := make([]uint64, 50)
	for i := range fill {
		fill[i] = 100 + uint64(i)
	}
	runBatch(t, e, 1, fill, constGrads(50, 4, 1))
	commitCheckpoint(t, e, 1) // reclaims the retired init-valued records

	k, slot := persistedEvicted(t, e, keys)
	smashSlot(t, e.Arena(), slot)
	if fired.Load() != 0 {
		t.Fatal("integrity notify fired before any loss")
	}
	// The next maintenance round's scrub step finds and fences the record.
	runBatch(t, e, 2, []uint64{100, 101}, nil)
	if fired.Load() == 0 {
		t.Fatal("background scrub fenced a key without firing the integrity notify")
	}
	if _, _, present := entrySnapshot(e, k); present {
		t.Fatalf("background scrub left corrupt key %d indexed", k)
	}
}

// TestRecoverFallsBackWhenCurrentHeaderCorrupt: with the durable
// current-checkpoint word corrupt, plain recovery adopts the retained
// previous checkpoint, reports the fallback, repairs the header words, and
// lands bit-identical to a run that simply stopped at that checkpoint.
func TestRecoverFallsBackWhenCurrentHeaderCorrupt(t *testing.T) {
	cfg := rollbackTestConfig()
	script := rollbackScript(6)
	const c1, c2 = 2, 4

	// Reference: a run stopped at c1, crashed and recovered.
	engB := newTestEngine(t, cfg)
	for b := 0; b <= c1; b++ {
		runBatch(t, engB, int64(b), script[b].keys, script[b].grads)
	}
	commitCheckpoint(t, engB, c1)
	devB := engB.Arena().Device()
	engB.Close()
	devB.Crash()
	recB, ckpt, err := Recover(cfg, devB)
	if err != nil {
		t.Fatal(err)
	}
	defer recB.Close()
	if ckpt != c1 {
		t.Fatalf("reference recovered to %d, want %d", ckpt, c1)
	}
	refState := pullAll(t, recB, cfg.Dim)

	// Full run retaining c1 behind c2; the cur header word rots.
	engC := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, engC, int64(b), s.keys, s.grads)
		if b == c1 || b == c2 {
			commitCheckpoint(t, engC, int64(b))
		}
	}
	dev := engC.Arena().Device()
	engC.Close()
	dev.Crash()
	zero := make([]byte, 8)
	if err := dev.Write(16, zero); err != nil { // offCkptID: cur header word
		t.Fatal(err)
	}
	if err := dev.Flush(16, 8); err != nil {
		t.Fatal(err)
	}

	rec, got, err := Recover(cfg, dev)
	if err != nil {
		t.Fatalf("recover with corrupt cur word: %v", err)
	}
	defer rec.Close()
	if got != c1 {
		t.Fatalf("recovered to %d, want fallback to %d", got, c1)
	}
	info := rec.RecoverInfo()
	if !info.FellBack || !info.CurCorrupt || info.PrevCorrupt || info.Target != c1 {
		t.Fatalf("RecoverInfo %+v, want fallback to %d with cur corrupt", info, c1)
	}
	// The rewrite durably adopted the fallback: cur == c1, prev cleared.
	if cur, err := rec.Arena().CheckpointedBatch(); err != nil || cur != c1 {
		t.Fatalf("durable cur after fallback = %d, %v; want %d", cur, err, c1)
	}
	if prev, err := rec.Arena().PrevCheckpointedBatch(); err != nil || prev != -1 {
		t.Fatalf("durable prev after fallback = %d, %v; want -1", prev, err)
	}
	compareStates(t, "fallback recovery", refState, pullAll(t, rec, cfg.Dim))
}

// TestRecoverToFailsTypedOnCorruptPrev: an explicit rollback to the
// previous checkpoint whose header word is corrupt fails with a typed
// error; plain recovery to the intact current checkpoint proceeds,
// records PrevCorrupt, and repairs the bad word.
func TestRecoverToFailsTypedOnCorruptPrev(t *testing.T) {
	cfg := rollbackTestConfig()
	script := rollbackScript(6)
	const c1, c2 = 2, 4

	eng := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, eng, int64(b), s.keys, s.grads)
		if b == c1 || b == c2 {
			commitCheckpoint(t, eng, int64(b))
		}
	}
	dev := eng.Arena().Device()
	eng.Close()
	dev.Crash()
	zero := make([]byte, 8)
	if err := dev.Write(24, zero); err != nil { // offPrevCkptID: prev header word
		t.Fatal(err)
	}
	if err := dev.Flush(24, 8); err != nil {
		t.Fatal(err)
	}

	if _, _, err := RecoverTo(cfg, dev, c1); err == nil {
		t.Fatal("RecoverTo a checkpoint whose header word is corrupt succeeded")
	} else if !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("RecoverTo corrupt prev: want ErrCorrupt, got %v", err)
	}

	rec, got, err := Recover(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got != c2 {
		t.Fatalf("recovered to %d, want %d", got, c2)
	}
	info := rec.RecoverInfo()
	if info.FellBack || info.CurCorrupt || !info.PrevCorrupt {
		t.Fatalf("RecoverInfo %+v, want prev corrupt only", info)
	}
	// The bad word was rewritten: prev reads back valid (-1).
	if prev, err := rec.Arena().PrevCheckpointedBatch(); err != nil || prev != -1 {
		t.Fatalf("durable prev after repair = %d, %v; want -1", prev, err)
	}
}

// TestRecoverNoUsableCheckpoint: with only one checkpoint retained and its
// header word corrupt, recovery fails typed instead of inventing state.
func TestRecoverNoUsableCheckpoint(t *testing.T) {
	cfg := testConfig(4, 100, 50) // RetainCheckpoints defaults to 1
	e := newTestEngine(t, cfg)
	runBatch(t, e, 0, []uint64{1, 2, 3}, constGrads(3, 4, 1))
	commitCheckpoint(t, e, 0)
	dev := e.Arena().Device()
	e.Close()
	dev.Crash()
	zero := make([]byte, 8)
	if err := dev.Write(16, zero); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(16, 8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(cfg, dev); err == nil {
		t.Fatal("recover with no usable checkpoint succeeded")
	} else if !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestScrubCorrectsSingleBitRot: a single flipped bit in a record with NO
// DRAM copy — where every other heal would regress state — is corrected in
// place from the CRC32C syndrome: same slot, same version, served state
// unchanged, no loss counted.
func TestScrubCorrectsSingleBitRot(t *testing.T) {
	e := newTestEngine(t, rollbackTestConfig())
	const k = 1
	runBatch(t, e, 0, []uint64{k}, constGrads(1, 4, 1))
	commitCheckpoint(t, e, 0)
	runBatch(t, e, 1, []uint64{k}, constGrads(1, 4, 2))
	// Six fresh keys overflow the 6-entry cache and evict k, flushing its
	// post-batch-1 state.
	runBatch(t, e, 2, []uint64{10, 11, 12, 13, 14, 15}, constGrads(6, 4, 1))

	slot, inDRAM, present := entrySnapshot(e, k)
	if !present || inDRAM || slot == noSlot {
		t.Fatalf("precondition: key %d must be evicted and persisted (slot %d, inDRAM %v)", k, slot, inDRAM)
	}
	want := make([]float32, 4)
	if err := e.Pull(3, []uint64{k}, want); err != nil {
		t.Fatal(err)
	}
	corruptSlot(t, e.Arena(), slot)
	if err := e.Pull(3, []uint64{k}, make([]float32, 4)); !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("corrupt record served: %v", err)
	}

	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Repaired != 1 || rep.Restored != 0 || rep.Fenced != 0 || rep.Quarantined != 0 {
		t.Fatalf("scrub report %+v, want 1 corrupt corrected in place", rep)
	}
	if after, _, _ := entrySnapshot(e, k); after != slot {
		t.Fatalf("correction moved the record: slot %d -> %d", slot, after)
	}
	got := make([]float32, 4)
	if err := e.Pull(3, []uint64{k}, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("corrected state %v, want %v (bit-exact)", got, want)
		}
	}
	if rep2, err := e.Scrub(); err != nil || rep2.Corrupt != 0 {
		t.Fatalf("second scrub still finds corruption: %+v, %v", rep2, err)
	}
}

// TestScrubDirtyEntryLosingCheckpointCopyCountsRestored: when the
// uncorrectably corrupt record was a dirty entry's only durable copy at or
// below the completed checkpoint, the DRAM rewrite (which lands at the
// newer data version) abandons that checkpoint's coverage of the key — the
// heal keeps the served state intact but must be reported as a restore so
// the node fences its epoch instead of letting a later rollback silently
// diverge.
func TestScrubDirtyEntryLosingCheckpointCopyCountsRestored(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 50))
	keys := []uint64{1, 2, 3}
	runBatch(t, e, 0, keys, constGrads(3, 4, 0.5))
	commitCheckpoint(t, e, 0)                    // every key's v0 record is checkpoint state
	runBatch(t, e, 1, keys, constGrads(3, 4, 1)) // dirty again: dataVersion 1, persisted 0
	want := runBatch(t, e, 2, keys, nil)

	slot, inDRAM, present := entrySnapshot(e, 2)
	if !present || !inDRAM || slot == noSlot {
		t.Fatalf("precondition: key 2 must be cached and persisted (slot %d, inDRAM %v)", slot, inDRAM)
	}
	smashSlot(t, e.Arena(), slot)

	rep, err := e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Restored != 1 || rep.Repaired != 0 || rep.Fenced != 0 {
		t.Fatalf("scrub report %+v, want 1 corrupt counted as restored (checkpoint coverage lost)", rep)
	}
	// The served state is untouched — the loss is to rollback coverage, not
	// to live training state.
	got := runBatch(t, e, 3, keys, nil)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("weights changed across heal: %v vs %v", want, got)
		}
	}
	if rep2, err := e.Scrub(); err != nil || rep2.Corrupt != 0 {
		t.Fatalf("second scrub still finds corruption: %+v, %v", rep2, err)
	}
}

// TestScrubSeesKeysCreatedAfterSnapshot: the scrubber's cached sorted-key
// snapshot must be invalidated by index inserts — a key created (and
// persisted) after a full pass built the cache is still scanned by the
// next pass.
func TestScrubSeesKeysCreatedAfterSnapshot(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 50))
	runBatch(t, e, 0, []uint64{1, 2, 3}, constGrads(3, 4, 1))
	commitCheckpoint(t, e, 0)
	rep, err := e.Scrub() // builds the per-shard key snapshots
	if err != nil || rep.Scanned != 3 {
		t.Fatalf("first scrub: %+v, %v; want 3 scanned", rep, err)
	}

	runBatch(t, e, 1, []uint64{1, 2, 3, 4}, constGrads(4, 4, 1))
	commitCheckpoint(t, e, 1) // persists the new key 4
	slot, _, present := entrySnapshot(e, 4)
	if !present || slot == noSlot {
		t.Fatal("precondition: key 4 must be persisted")
	}
	corruptSlot(t, e.Arena(), slot)

	rep, err = e.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 4 || rep.Corrupt != 1 || rep.Repaired != 1 {
		t.Fatalf("scrub report %+v, want the post-snapshot key scanned and healed", rep)
	}
}

// TestScrubReportsClosed: scrubbing a closed engine fails with ErrClosed.
func TestScrubReportsClosed(t *testing.T) {
	e := newTestEngine(t, testConfig(4, 100, 50))
	e.Close()
	if _, err := e.Scrub(); !errors.Is(err, psengine.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
