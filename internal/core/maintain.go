package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"openembedding/internal/device"
	"openembedding/internal/obs"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// lruOpCost is the calibrated virtual CPU cost of one LRU relink plus the
// associated bookkeeping during cache maintenance.
const lruOpCost = 15 * time.Nanosecond

// finalizerBudget bounds how many flushes a single batch's finalizer may
// perform to push a pending checkpoint towards completion. It spreads
// checkpoint work over batches instead of stalling one of them.
const finalizerBudget = 4096

// EndPullPhase implements psengine.Engine: every pull of the batch has been
// issued, the GPU phase begins, and the deferred cache maintenance of
// Algorithm 2 is handed to the maintainer pool (Alg. 2 lines 6-8 gate
// maintenance on pull completion; here the explicit signal replaces the
// polling loop). One task per non-empty shard is queued, so MaintThreads
// maintainers run shard maintenance concurrently.
func (e *Engine) EndPullPhase(batch int64) {
	if e.cfg.PipelineDisabled {
		return // maintenance already ran inline during Pull
	}
	queued := false
	for _, s := range e.shards {
		if s.accessQ.Len() > 0 {
			queued = true
			break
		}
	}
	if !queued {
		return
	}
	// Activate the head checkpoint once per batch at the coordinator,
	// before any shard task can flush: the activation scan takes shard
	// locks, so it cannot live inside shard maintenance (see checkpoint.go).
	e.activateHead()
	for _, s := range e.shards {
		entries := s.accessQ.Drain()
		if entries == nil {
			continue
		}
		e.pending.Add(1)
		e.obs.MaintQueue.Add(1)
		e.maintCh <- maintTask{batch: batch, sh: s, entries: entries}
	}
}

// WaitMaintenance implements psengine.Engine.
func (e *Engine) WaitMaintenance() { e.pending.Wait() }

// errMaintenance wraps asynchronous maintenance failures; EndBatch surfaces
// them.
var errMaintenance = errors.New("core: maintenance failed")

type maintErrBox struct {
	mu  sync.Mutex
	err error
}

func (b *maintErrBox) set(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// peek reports the pending maintenance error without consuming it, so
// EndBatch's take still surfaces it on the training path.
func (b *maintErrBox) peek() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *maintErrBox) take() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	err := b.err
	b.err = nil
	return err
}

func (e *Engine) maintainLoop() {
	defer e.maintWG.Done()
	for task := range e.maintCh {
		// Drain timing and the span happen outside every lock; the gauge
		// reports tasks queued or running, so it drops only once the drain
		// is done.
		var start time.Duration
		if e.obs.Enabled() {
			start = e.obs.Now()
		}
		sp := e.spans.Start("maint.drain", "engine", int64(task.sh.id), task.batch)
		err := task.sh.runMaintenance(task.batch, task.entries)
		sp.EndArg("entries", int64(len(task.entries)))
		if e.obs.Enabled() {
			e.obs.MaintDrain.Observe(e.obs.Now() - start)
		}
		e.obs.MaintQueue.Add(-1)
		if err != nil {
			e.maintErrs.set(err)
		} else if err := e.finalizeCheckpoints(); err != nil {
			e.maintErrs.set(err)
		}
		// Scrub healing that regressed state (restored or fenced entries)
		// must reach the node so it can fence its epoch; fire the callback
		// here, outside every shard lock.
		if e.scrubLoss.Swap(0) > 0 {
			e.notifyIntegrityLoss()
		}
		e.pending.Done()
	}
}

// inlineMaintain is the pipeline-disabled path: maintenance for every shard
// runs synchronously on the request thread that finished the pull.
//
// oevet:coldpath pipeline-disabled ablation: paying maintenance (and its allocations) on the request thread is the measured effect, not hot-path overhead
func (e *Engine) inlineMaintain(batch int64) {
	e.activateHead()
	for _, s := range e.shards {
		if err := s.runMaintenance(batch, s.accessQ.Drain()); err != nil {
			e.maintErrs.set(err)
			return
		}
	}
	if err := e.finalizeCheckpoints(); err != nil {
		e.maintErrs.set(err)
	}
	if e.scrubLoss.Swap(0) > 0 {
		e.notifyIntegrityLoss()
	}
}

// runMaintenance executes Algorithm 2 for one batch's accesses to this
// shard: flush-before-overwrite for checkpoint consistency, LRU reordering,
// promotion of missed entries, and eviction — all under the shard's
// exclusive lock, independent of every other shard.
func (s *shard) runMaintenance(batch int64, recs []accessRec) error {
	e := s.eng
	meter := e.cfg.Meter
	meter.Charge(simclock.LockSync, psengine.LockCost)
	s.mu.Lock()
	defer s.mu.Unlock()

	// Flush-before-overwrite tests against the newest pending checkpoint:
	// once any queued checkpoint needs this data version, it must reach
	// PMem before the coming push replaces it.
	newest := e.newestCheckpoint()
	// Pipelined maintenance runs off the critical path on dedicated
	// threads: plain CPU work. With the pipeline disabled (Fig. 9
	// ablation) the same work runs inline under the shard's exclusive
	// lock while request threads wait — serialized and convoy-prone, like
	// any black-box cache.
	maintCat, maintCost := simclock.Compute, lruOpCost
	if e.cfg.PipelineDisabled {
		maintCat, maintCost = simclock.GlobalSync, inlineMaintCost
	}
	for _, rec := range recs {
		ent := rec.ent
		meter.Charge(maintCat, maintCost)
		if ent.inDRAM() {
			// Alg. 2 lines 12-17: persist the pre-update version if a
			// pending checkpoint still needs it, then refresh recency.
			if ent.dirty && ent.dataVersion <= newest {
				if err := s.flushLocked(ent); err != nil {
					return err
				}
			}
			ent.version = batch
			if ent.node.InList() {
				s.lru.MoveToFront(&ent.node)
			} else {
				s.lru.PushFront(&ent.node) // first-epoch entry born in DRAM
				s.snapStale = true
			}
		} else {
			// Alg. 2 lines 18-21: promote the missed entry. The pull that
			// queued this record already counted its PMem read when it
			// served the miss, so the promotion does not count it again.
			if err := e.promoteLocked(ent, !rec.fromPMem); err != nil {
				return err
			}
			ent.version = batch
			s.lru.PushFront(&ent.node)
			s.snapStale = true
		}
		// With the cache disabled, the batch's working set stays in DRAM
		// until EndBatch (a per-batch staging buffer): pushes still land in
		// DRAM and the write-back happens at the batch boundary, off the
		// pull/push critical path when the pipeline is on.
		if !e.cfg.CacheDisabled {
			if err := s.enforceCapacityLocked(); err != nil {
				return err
			}
		}
	}
	// Background integrity scrub: verify a bounded slice of this shard's
	// persisted records while the exclusive lock is already held. The budget
	// is per maintenance round (not wall clock), so scrub progress — and any
	// healing it triggers — is a deterministic function of the batch stream.
	if e.scrubShare > 0 {
		if err := s.scrubStepLocked(e.scrubShare, e.rollbackTargets()); err != nil {
			return err
		}
	}
	// Serving mode: republish this shard's hot-set snapshot while the
	// exclusive lock is already held, so serve reads see the batch's pushes
	// at the next batch boundary (serve.go).
	s.rebuildSnapLocked()
	return nil
}

// inlineMaintCost is the per-entry cost of cache maintenance executed
// inline under the exclusive lock (pipeline disabled): an exclusive
// cache-line handoff per lock acquisition plus the list splice.
const inlineMaintCost = 500 * time.Nanosecond

// enforceCapacityLocked evicts LRU victims while the shard's cache exceeds
// its budget (Alg. 2 lines 22-31). Checkpoint completion — which the paper
// detects here from the victim's version — falls out of the flush
// bookkeeping in flushLocked.
//
// oevet:holds core.shard.mu 10
func (s *shard) enforceCapacityLocked() error {
	limit := s.cacheCapacity()
	for s.lru.Len() > limit {
		if err := s.evictLocked(s.lru.Back().Value); err != nil {
			return err
		}
	}
	return nil
}

func (s *shard) cacheCapacity() int {
	if s.eng.cfg.CacheDisabled {
		return 0
	}
	return s.capacity
}

// evictLocked writes a dirty victim back to PMem and releases its DRAM copy.
//
// oevet:holds core.shard.mu 10
func (s *shard) evictLocked(victim *entry) error {
	if victim.dirty {
		if err := s.flushLocked(victim); err != nil {
			return err
		}
	}
	s.lru.Remove(&victim.node)
	victim.buf = nil
	s.snapStale = true
	s.eng.evictions.Add(1)
	s.evictObs.Add(1)
	s.eng.cfg.Meter.Charge(simclock.Compute, lruOpCost)
	return nil
}

// flushLocked persists the entry's current DRAM state as a new PMem record
// stamped with the entry's data version, retiring the superseded record so
// the space manager keeps it until no checkpoint can need it. It also
// advances the active checkpoint's completion accounting. Caller holds this
// shard's exclusive lock; the arena locks itself, and concurrent flushes
// from other shards land in disjoint slots.
//
// oevet:holds core.shard.mu 10
func (s *shard) flushLocked(ent *entry) error {
	e := s.eng
	slot, err := e.arena.Alloc()
	if errors.Is(err, pmem.ErrFull) {
		// Reclaim superseded records that no present or future checkpoint
		// can need, then retry once.
		e.reclaim()
		slot, err = e.arena.Alloc()
	}
	if err != nil {
		return fmt.Errorf("%w: flush of key %d: %w", errMaintenance, ent.key, err)
	}
	bufp := e.payloadPool.Get().(*[]byte)
	pmem.EncodeFloats(*bufp, ent.buf)
	if e.flushVerify {
		// Verified flush: the record must read back valid from the durable
		// image (rot and dropped flushes are rewritten by the arena); a slot
		// whose media is poisoned is quarantined and a fresh slot takes over.
		for tries := 0; ; tries++ {
			err = e.arena.WriteRecordVerified(slot, ent.key, ent.dataVersion, *bufp)
			if err == nil || !errors.Is(err, pmem.ErrPoisoned) || tries >= 4 {
				break
			}
			e.quarantineEmpty(slot)
			slot, err = e.arena.Alloc()
			if errors.Is(err, pmem.ErrFull) {
				e.reclaim()
				slot, err = e.arena.Alloc()
			}
			if err != nil {
				e.payloadPool.Put(bufp)
				return fmt.Errorf("%w: flush of key %d: %w", errMaintenance, ent.key, err)
			}
		}
	} else {
		err = e.arena.WriteRecord(slot, ent.key, ent.dataVersion, *bufp)
	}
	e.payloadPool.Put(bufp)
	if err != nil {
		if errors.Is(err, pmem.ErrPoisoned) {
			e.quarantineEmpty(slot)
		} else {
			e.arena.Free(slot)
		}
		return fmt.Errorf("%w: flush of key %d: %w", errMaintenance, ent.key, err)
	}
	neededByActive := ent.ckptPending
	ent.ckptPending = false
	if ent.slot != noSlot {
		e.arena.Retire(ent.slot, ent.persistedVersion, ent.dataVersion)
	}
	ent.slot = slot
	ent.persistedVersion = ent.dataVersion
	ent.dirty = false
	e.pmemWrites.Add(1)
	e.obs.FlushBytes.Add(int64(e.arena.PayloadBytes()))
	// When maintenance is inline, the lock holder additionally waits out
	// the CLWB+SFENCE drain to media (~1us on Optane for a record-sized
	// range) — pipelined maintenance pays it too, but off the critical
	// path, where it is already covered by the device charge.
	e.chargeInlineSerial(device.PMem().WriteCost(e.arena.PayloadBytes()) + inlineFlushDrain)
	e.noteFlushed(neededByActive)
	return nil
}

// inlineFlushDrain is the media-drain wait of a persist executed under the
// exclusive lock (pipeline-disabled ablation).
const inlineFlushDrain = 1 * time.Microsecond

// quarantineEmpty quarantines a slot that was allocated by this flush and
// never held a live record. Unlike Arena.Quarantine's general contract it
// owes no epoch fence: the entry's DRAM state is intact and is either
// retried into a fresh slot or surfaced as a flush error.
func (e *Engine) quarantineEmpty(slot uint32) {
	e.arena.Quarantine(slot) //oevet:fence-ok the slot was allocated in this flush and never held a live record; no durable state is lost
}

// EndBatch implements psengine.Engine: it waits for the batch's deferred
// maintenance, surfaces asynchronous errors, folds in entries that Push had
// to promote inline, advances pending checkpoints, and reclaims PMem space
// that no checkpoint can need. It barriers over every shard, so after it
// returns the engine is consistent for checkpoint requests at batch.
func (e *Engine) EndBatch(batch int64) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	e.WaitMaintenance()
	if err := e.maintErrs.take(); err != nil {
		return err
	}
	var firstErr error
	for _, s := range e.shards {
		s.mu.Lock()
		for _, ent := range s.sideQ.Drain() {
			if ent.inDRAM() && !ent.node.InList() {
				ent.version = batch
				s.lru.PushFront(&ent.node)
				s.snapStale = true
			}
		}
		if err := s.enforceCapacityLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.rebuildSnapLocked()
		s.mu.Unlock()
	}
	err := firstErr
	if err == nil {
		// Checkpoint stall: the finalizer time a batch boundary waits out.
		// Both the histogram and the span fire only when checkpoint work was
		// actually in flight, so neither is diluted by no-op batches.
		busy := e.ckptRemaining.Load() > 0 || e.PendingCheckpoints() > 0
		stalled := e.obs.Enabled() && busy
		var start time.Duration
		if stalled {
			start = e.obs.Now()
		}
		var sp obs.Span
		if busy {
			sp = e.spans.Start("ckpt.finalize", "engine", 0, batch)
		}
		err = e.finalizeCheckpoints()
		sp.End()
		if stalled {
			e.obs.CkptStall.Observe(e.obs.Now() - start)
		}
	}
	e.lastEnded.Store(batch)
	e.reclaim()
	if err != nil {
		return err
	}
	return e.maintErrs.take()
}
