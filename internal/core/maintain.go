package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"openembedding/internal/device"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// lruOpCost is the calibrated virtual CPU cost of one LRU relink plus the
// associated bookkeeping during cache maintenance.
const lruOpCost = 15 * time.Nanosecond

// finalizerBudget bounds how many flushes a single batch's finalizer may
// perform to push a pending checkpoint towards completion. It spreads
// checkpoint work over batches instead of stalling one of them.
const finalizerBudget = 4096

// EndPullPhase implements psengine.Engine: every pull of the batch has been
// issued, the GPU phase begins, and the deferred cache maintenance of
// Algorithm 2 is handed to the maintainer pool (Alg. 2 lines 6-8 gate
// maintenance on pull completion; here the explicit signal replaces the
// polling loop).
func (e *Engine) EndPullPhase(batch int64) {
	if e.cfg.PipelineDisabled {
		return // maintenance already ran inline during Pull
	}
	entries := e.accessQ.Drain()
	if entries == nil {
		return
	}
	e.pending.Add(1)
	e.maintCh <- maintTask{batch: batch, entries: entries}
}

// WaitMaintenance implements psengine.Engine.
func (e *Engine) WaitMaintenance() { e.pending.Wait() }

// errMaintenance wraps asynchronous maintenance failures; EndBatch surfaces
// them.
var errMaintenance = errors.New("core: maintenance failed")

type maintErrBox struct {
	mu  sync.Mutex
	err error
}

func (b *maintErrBox) set(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *maintErrBox) take() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	err := b.err
	b.err = nil
	return err
}

func (e *Engine) maintainLoop() {
	defer e.maintWG.Done()
	for task := range e.maintCh {
		e.runMaintenance(task.batch, task.entries)
		e.pending.Done()
	}
}

// runMaintenance executes Algorithm 2 for one batch's accessed entries:
// flush-before-overwrite for checkpoint consistency, LRU reordering,
// promotion of missed entries, and eviction.
func (e *Engine) runMaintenance(batch int64, entries []*entry) {
	meter := e.cfg.Meter
	meter.Charge(simclock.LockSync, psengine.LockCost)
	e.mu.Lock()
	defer e.mu.Unlock()

	e.activateHeadLocked()
	// Flush-before-overwrite tests against the newest pending checkpoint:
	// once any queued checkpoint needs this data version, it must reach
	// PMem before the coming push replaces it.
	newest := e.newestCheckpoint()
	// Pipelined maintenance runs off the critical path on dedicated
	// threads: plain CPU work. With the pipeline disabled (Fig. 9
	// ablation) the same work runs inline under the engine-wide exclusive
	// lock while request threads wait — globally serialized and
	// convoy-prone, like any black-box cache.
	maintCat, maintCost := simclock.Compute, lruOpCost
	if e.cfg.PipelineDisabled {
		maintCat, maintCost = simclock.GlobalSync, inlineMaintCost
	}
	for _, ent := range entries {
		meter.Charge(maintCat, maintCost)
		if ent.inDRAM() {
			// Alg. 2 lines 12-17: persist the pre-update version if a
			// pending checkpoint still needs it, then refresh recency.
			if ent.dirty && ent.dataVersion <= newest {
				if err := e.flushLocked(ent); err != nil {
					e.maintErrs.set(err)
					return
				}
			}
			ent.version = batch
			if ent.node.InList() {
				e.lru.MoveToFront(&ent.node)
			} else {
				e.lru.PushFront(&ent.node) // first-epoch entry born in DRAM
			}
		} else {
			// Alg. 2 lines 18-21: promote the missed entry.
			if err := e.promoteLocked(ent); err != nil {
				e.maintErrs.set(err)
				return
			}
			ent.version = batch
			e.lru.PushFront(&ent.node)
		}
		// With the cache disabled, the batch's working set stays in DRAM
		// until EndBatch (a per-batch staging buffer): pushes still land in
		// DRAM and the write-back happens at the batch boundary, off the
		// pull/push critical path when the pipeline is on.
		if !e.cfg.CacheDisabled {
			if err := e.enforceCapacityLocked(); err != nil {
				e.maintErrs.set(err)
				return
			}
		}
	}
	if err := e.finalizeCheckpointsLocked(); err != nil {
		e.maintErrs.set(err)
	}
}

// inlineMaintCost is the per-entry cost of cache maintenance executed
// inline under the global exclusive lock (pipeline disabled): an exclusive
// cache-line handoff per lock acquisition plus the list splice.
const inlineMaintCost = 500 * time.Nanosecond

// enforceCapacityLocked evicts LRU victims while the cache exceeds its
// budget (Alg. 2 lines 22-31). Checkpoint completion — which the paper
// detects here from the victim's version — falls out of the flush
// bookkeeping in flushLocked.
func (e *Engine) enforceCapacityLocked() error {
	limit := e.cacheCapacity()
	for e.lru.Len() > limit {
		if err := e.evictLocked(e.lru.Back().Value); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) cacheCapacity() int {
	if e.cfg.CacheDisabled {
		return 0
	}
	return e.cfg.CacheEntries
}

// evictLocked writes a dirty victim back to PMem and releases its DRAM copy.
func (e *Engine) evictLocked(victim *entry) error {
	if victim.dirty {
		if err := e.flushLocked(victim); err != nil {
			return err
		}
	}
	e.lru.Remove(&victim.node)
	victim.buf = nil
	e.evictions.Add(1)
	e.cfg.Meter.Charge(simclock.Compute, lruOpCost)
	return nil
}

// flushLocked persists the entry's current DRAM state as a new PMem record
// stamped with the entry's data version, retiring the superseded record so
// the space manager keeps it until no checkpoint can need it. It also
// advances the active checkpoint's completion accounting.
func (e *Engine) flushLocked(ent *entry) error {
	slot, err := e.arena.Alloc()
	if errors.Is(err, pmem.ErrFull) {
		// Reclaim superseded records that no present or future checkpoint
		// can need, then retry once.
		e.reclaimLocked()
		slot, err = e.arena.Alloc()
	}
	if err != nil {
		return fmt.Errorf("%w: flush of key %d: %v", errMaintenance, ent.key, err)
	}
	bufp := e.payloadPool.Get().(*[]byte)
	pmem.EncodeFloats(*bufp, ent.buf)
	err = e.arena.WriteRecord(slot, ent.key, ent.dataVersion, *bufp)
	e.payloadPool.Put(bufp)
	if err != nil {
		e.arena.Free(slot)
		return fmt.Errorf("%w: flush of key %d: %v", errMaintenance, ent.key, err)
	}
	neededByActive := ent.ckptPending
	ent.ckptPending = false
	if ent.slot != noSlot {
		e.arena.Retire(ent.slot, ent.persistedVersion, ent.dataVersion)
	}
	ent.slot = slot
	ent.persistedVersion = ent.dataVersion
	ent.dirty = false
	e.pmemWrites.Add(1)
	// When maintenance is inline, the lock holder additionally waits out
	// the CLWB+SFENCE drain to media (~1us on Optane for a record-sized
	// range) — pipelined maintenance pays it too, but off the critical
	// path, where it is already covered by the device charge.
	e.chargeInlineSerial(device.PMem().WriteCost(e.arena.PayloadBytes()) + inlineFlushDrain)
	e.noteFlushedLocked(neededByActive)
	return nil
}

// inlineFlushDrain is the media-drain wait of a persist executed under the
// global lock (pipeline-disabled ablation).
const inlineFlushDrain = 1 * time.Microsecond

// EndBatch implements psengine.Engine: it waits for the batch's deferred
// maintenance, surfaces asynchronous errors, folds in entries that Push had
// to promote inline, advances pending checkpoints, and reclaims PMem space
// that no checkpoint can need.
func (e *Engine) EndBatch(batch int64) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	e.WaitMaintenance()
	if err := e.maintErrs.take(); err != nil {
		return err
	}
	e.mu.Lock()
	for _, ent := range e.sideQ.Drain() {
		if ent.inDRAM() && !ent.node.InList() {
			ent.version = batch
			e.lru.PushFront(&ent.node)
		}
	}
	err := e.enforceCapacityLocked()
	if err == nil {
		err = e.finalizeCheckpointsLocked()
	}
	e.lastEnded = batch
	e.reclaimLocked()
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.maintErrs.take()
}
