package core

import (
	"math/rand"
	"testing"

	"openembedding/internal/optim"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

func rollbackTestConfig() psengine.Config {
	return psengine.Config{
		Dim:               4,
		Optimizer:         optim.NewAdaGrad(0.1), // stateful: the hard case
		Capacity:          256,
		CacheEntries:      6, // tiny cache: constant PMem churn
		Meter:             simclock.NewMeter(),
		Shards:            1,
		RetainCheckpoints: 2,
	}
}

type rollbackStep struct {
	keys  []uint64
	grads []float32
}

func rollbackScript(n int) []rollbackStep {
	rng := rand.New(rand.NewSource(321))
	var script []rollbackStep
	for b := 0; b < n; b++ {
		cnt := 2 + rng.Intn(4)
		seen := map[uint64]bool{}
		keys := make([]uint64, 0, cnt)
		for len(keys) < cnt {
			k := uint64(rng.Intn(40))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		grads := make([]float32, len(keys)*4)
		for i := range grads {
			grads[i] = float32(rng.NormFloat64())
		}
		script = append(script, rollbackStep{keys, grads})
	}
	return script
}

// commitCheckpoint requests a checkpoint for the last sealed batch and
// drives it to completion via AdvanceCheckpoints — the same polling loop
// the trainer's commit gate runs over RPC.
func commitCheckpoint(t *testing.T, e *Engine, batch int64) {
	t.Helper()
	if err := e.RequestCheckpoint(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; e.CompletedCheckpoint() < batch; i++ {
		if err := e.AdvanceCheckpoints(); err != nil {
			t.Fatal(err)
		}
		if i > 100000 {
			t.Fatalf("checkpoint %d never completed (at %d)", batch, e.CompletedCheckpoint())
		}
	}
}

func pullAll(t *testing.T, e *Engine, dim int) map[uint64][]float32 {
	t.Helper()
	out := make(map[uint64][]float32)
	for k := uint64(0); k < 40; k++ {
		dst := make([]float32, dim)
		if err := e.Pull(100000, []uint64{k}, dst); err == nil {
			out[k] = dst
		}
	}
	return out
}

func compareStates(t *testing.T, label string, want, got map[uint64][]float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: key sets differ: %d vs %d", label, len(want), len(got))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: key %d missing", label, k)
		}
		for d := range w {
			if w[d] != g[d] {
				t.Fatalf("%s: key %d[%d] = %v, want %v (bit-exact)", label, k, d, g[d], w[d])
			}
		}
	}
}

// TestRollbackToPrevEquivalence is the node-local half of coordinated
// cluster replay: an engine retaining two checkpoints is crashed and rolled
// back to the OLDER one, and its state must be bit-identical to a run that
// simply stopped there. Replaying the lost batches on the rolled-back
// engine must then land bit-identical to the never-crashed run.
func TestRollbackToPrevEquivalence(t *testing.T) {
	cfg := rollbackTestConfig()
	script := rollbackScript(20)
	const c1, c2 = 8, 14

	// Reference A: the full run, checkpoints committed at c1 and c2.
	engA := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, engA, int64(b), s.keys, s.grads)
		if b == c1 || b == c2 {
			commitCheckpoint(t, engA, int64(b))
		}
	}
	fullState := pullAll(t, engA, cfg.Dim)

	// Reference B: a run that stops at c1.
	engB := newTestEngine(t, cfg)
	for b := 0; b <= c1; b++ {
		runBatch(t, engB, int64(b), script[b].keys, script[b].grads)
	}
	commitCheckpoint(t, engB, c1)
	devB := engB.Arena().Device()
	engB.Close()
	devB.Crash()
	recB, ckpt, err := Recover(cfg, devB)
	if err != nil {
		t.Fatal(err)
	}
	defer recB.Close()
	if ckpt != c1 {
		t.Fatalf("reference recovered to %d, want %d", ckpt, c1)
	}
	refState := pullAll(t, recB, cfg.Dim)

	// Run C: full run, crash, roll back to the RETAINED PREVIOUS
	// checkpoint c1 (skipping over c2), then replay to the end.
	engC := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, engC, int64(b), s.keys, s.grads)
		if b == c1 || b == c2 {
			commitCheckpoint(t, engC, int64(b))
		}
	}
	devC := engC.Arena().Device()
	// Both durable IDs must be in place before the crash.
	arC := engC.Arena()
	if cur, _ := arC.CheckpointedBatch(); cur != c2 {
		t.Fatalf("durable checkpoint = %d, want %d", cur, c2)
	}
	if prev, _ := arC.PrevCheckpointedBatch(); prev != c1 {
		t.Fatalf("durable prev checkpoint = %d, want %d", prev, c1)
	}
	engC.Close()
	devC.Crash()
	recC, got, err := RecoverTo(cfg, devC, c1)
	if err != nil {
		t.Fatal(err)
	}
	defer recC.Close()
	if got != c1 {
		t.Fatalf("rolled back to %d, want %d", got, c1)
	}
	if recC.CompletedCheckpoint() != c1 || recC.PrevCompletedCheckpoint() != -1 {
		t.Fatalf("rolled-back engine at (%d, prev %d), want (%d, -1)",
			recC.CompletedCheckpoint(), recC.PrevCompletedCheckpoint(), c1)
	}
	// The rollback is durable: the image now reads as a c1 image.
	if cur, _ := arC.CheckpointedBatch(); cur != c1 {
		t.Fatalf("durable checkpoint after rollback = %d, want %d", cur, c1)
	}
	compareStates(t, "rollback-to-prev", refState, pullAll(t, recC, cfg.Dim))

	// Replay the lost batches: bit-identical to the never-crashed run.
	for b := c1 + 1; b < len(script); b++ {
		runBatch(t, recC, int64(b), script[b].keys, script[b].grads)
		if b == c2 {
			commitCheckpoint(t, recC, int64(b))
		}
	}
	compareStates(t, "replay-after-rollback", fullState, pullAll(t, recC, cfg.Dim))
}

// TestRecoverToCurIsRecover: rolling back to the latest checkpoint is
// exactly Recover — the property that makes the rollback RPC idempotent.
func TestRecoverToCurIsRecover(t *testing.T) {
	cfg := rollbackTestConfig()
	script := rollbackScript(12)
	const c1, c2 = 4, 9
	eng := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, eng, int64(b), s.keys, s.grads)
		if b == c1 || b == c2 {
			commitCheckpoint(t, eng, int64(b))
		}
	}
	dev := eng.Arena().Device()
	eng.Close()
	dev.Crash()
	rec, got, err := RecoverTo(cfg, dev, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got != c2 {
		t.Fatalf("recovered to %d, want %d", got, c2)
	}
	// Recovering at cur keeps prev retained: a later rollback to c1 must
	// still be possible.
	if rec.PrevCompletedCheckpoint() != c1 {
		t.Fatalf("prev after recover-at-cur = %d, want %d", rec.PrevCompletedCheckpoint(), c1)
	}
	rec.Close()
	rec2, got2, err := RecoverTo(cfg, dev, c1)
	if err != nil {
		t.Fatalf("second rollback to prev after recover-at-cur: %v", err)
	}
	defer rec2.Close()
	if got2 != c1 {
		t.Fatalf("second rollback landed at %d, want %d", got2, c1)
	}
}

// TestRecoverToValidatesTarget: an unretained target is rejected rather
// than silently recovering to garbage.
func TestRecoverToValidatesTarget(t *testing.T) {
	cfg := rollbackTestConfig()
	script := rollbackScript(8)
	const c1, c2 = 3, 6
	eng := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, eng, int64(b), s.keys, s.grads)
		if b == c1 || b == c2 {
			commitCheckpoint(t, eng, int64(b))
		}
	}
	dev := eng.Arena().Device()
	eng.Close()
	dev.Crash()
	for _, target := range []int64{0, 1, 5, 7, -1} {
		if _, _, err := RecoverTo(cfg, dev, target); err == nil {
			t.Fatalf("RecoverTo(%d) accepted an unretained target", target)
		}
	}
}

// TestRetainOneNeverPersistsPrev: the default RetainCheckpoints(1) engine
// behaves exactly as before this feature — the durable prev ID stays -1 and
// rollback below the latest checkpoint is impossible.
func TestRetainOneNeverPersistsPrev(t *testing.T) {
	cfg := rollbackTestConfig()
	cfg.RetainCheckpoints = 1
	script := rollbackScript(12)
	const c1, c2 = 4, 9
	eng := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, eng, int64(b), s.keys, s.grads)
		if b == c1 || b == c2 {
			commitCheckpoint(t, eng, int64(b))
		}
	}
	if prev, _ := eng.Arena().PrevCheckpointedBatch(); prev != -1 {
		t.Fatalf("durable prev = %d with RetainCheckpoints=1, want -1", prev)
	}
	dev := eng.Arena().Device()
	eng.Close()
	dev.Crash()
	if _, _, err := RecoverTo(cfg, dev, c1); err == nil {
		t.Fatal("rollback below the latest checkpoint accepted with RetainCheckpoints=1")
	}
	rec, got, err := RecoverTo(cfg, dev, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got != c2 {
		t.Fatalf("recovered to %d, want %d", got, c2)
	}
}
