package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"openembedding/internal/obs"
)

// TestBenchReportPR6 runs the batched hot-path benchmark set (parallel pull
// and push at shards 1 and 8, plus the single-threaded pull series BENCH_pr3
// recorded) through testing.Benchmark and writes the machine-readable
// BENCH_pr6.json artifact.
//
// It is gated on OE_BENCH_REPORT_PR6 (the output path) so plain
// `go test ./...` stays fast. Two gates ride along:
//
//   - The zero-alloc gate is unconditional once the test runs: the run-sorted
//     pull and push hot paths must not allocate (the pre-PR fan-out cost 5
//     allocs/op at shards=8).
//   - The regression gate is armed by OE_BENCH_BASELINE (a prior BENCH
//     artifact, normally BENCH_pr3.json) plus OE_BENCH_MAX_REGRESSION_PCT:
//     every series present in both reports must not be slower than baseline
//     by more than the threshold. Thresholds are loose in CI because shared
//     runners are noisy; the per-series deltas are logged either way.
func TestBenchReportPR6(t *testing.T) {
	path := os.Getenv("OE_BENCH_REPORT_PR6")
	if path == "" {
		t.Skip("OE_BENCH_REPORT_PR6 not set")
	}

	// Best-of-N: the minimum is the run with the least scheduler
	// interference (same policy as the pr3 harness).
	const rounds = 3
	best := func(f func(b *testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(f)
		for i := 1; i < rounds; i++ {
			if next := testing.Benchmark(f); next.NsPerOp() < r.NsPerOp() {
				r = next
			}
		}
		return r
	}
	add := func(rep *obs.BenchReport, name string, r testing.BenchmarkResult) {
		rep.Add(obs.BenchResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			N:           r.N,
		})
	}

	rep := obs.NewBenchReport("pr6")
	series := []struct {
		name     string
		f        func(b *testing.B)
		allocPin bool
	}{
		{"EnginePullParallel/shards=1", func(b *testing.B) { benchPullParallel(b, 1) }, true},
		{"EnginePullParallel/shards=8", func(b *testing.B) { benchPullParallel(b, 8) }, true},
		{"EnginePushParallel/shards=1", func(b *testing.B) { benchPushParallel(b, 1) }, true},
		{"EnginePushParallel/shards=8", func(b *testing.B) { benchPushParallel(b, 8) }, true},
		// The series BENCH_pr3 recorded, re-measured for the regression gate.
		{"EnginePull/obs=off", func(b *testing.B) { benchPullSingle(b, nil) }, true},
	}
	for _, s := range series {
		r := best(s.f)
		if r.NsPerOp() <= 0 {
			t.Fatalf("%s: degenerate result %v", s.name, r)
		}
		t.Logf("%-28s %8d ns/op  %3d allocs/op  %5d B/op", s.name, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp())
		if s.allocPin && r.AllocsPerOp() != 0 {
			t.Errorf("%s allocates %d/op; the batched hot path must be 0-alloc", s.name, r.AllocsPerOp())
		}
		add(rep, s.name, r)
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("wrote %s", path)

	basePath := os.Getenv("OE_BENCH_BASELINE")
	if basePath == "" {
		return
	}
	maxPct := 25.0
	if s := os.Getenv("OE_BENCH_MAX_REGRESSION_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad OE_BENCH_MAX_REGRESSION_PCT %q: %v", s, err)
		}
		maxPct = v
	}
	baseline, err := obs.ReadBenchReport(basePath)
	if err != nil {
		t.Fatalf("read baseline %s: %v", basePath, err)
	}
	if err := gateRegressions(rep, baseline, maxPct, t.Logf); err != nil {
		t.Error(err)
	}
}

// gateRegressions compares every series present in both reports and fails
// when the new ns/op exceeds the baseline by more than maxPct percent.
func gateRegressions(cur, base *obs.BenchReport, maxPct float64, logf func(string, ...any)) error {
	baseByName := make(map[string]obs.BenchResult, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	compared := 0
	for _, r := range cur.Results {
		b, ok := baseByName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		compared++
		deltaPct := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		logf("%-28s baseline(%s) %.0f ns/op -> %.0f ns/op (%+.1f%%)", r.Name, base.PR, b.NsPerOp, r.NsPerOp, deltaPct)
		if deltaPct > maxPct {
			return fmt.Errorf("%s regressed %.1f%% vs %s (gate %.1f%%)", r.Name, deltaPct, base.PR, maxPct)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no comparable series between %s and baseline %s", cur.PR, base.PR)
	}
	return nil
}
