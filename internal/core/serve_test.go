package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"openembedding/internal/optim"
	"openembedding/internal/psengine"
)

// TestServeReadTiers exercises every ServeRead tier and checks the values
// each returns against the engine's own Pull.
func TestServeReadTiers(t *testing.T) {
	dim := 8
	e := newTestEngine(t, testConfig(dim, 256, 16))
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	want := runBatch(t, e, 0, keys, nil)
	e.EnableServeSnapshots()
	if !e.ServeSnapshotsEnabled() {
		t.Fatal("serving not enabled")
	}

	// Every trained key must serve its pulled value, from some tier.
	dst := make([]float32, dim)
	var bySource [4]int
	for i, k := range keys {
		src, err := e.ServeRead(k, dst)
		if err != nil {
			t.Fatalf("serve %d: %v", k, err)
		}
		bySource[src]++
		for j := 0; j < dim; j++ {
			if dst[j] != want[i*dim+j] {
				t.Fatalf("key %d served %v, pulled %v (source %d)", k, dst[:dim], want[i*dim:(i+1)*dim], src)
			}
		}
	}
	if bySource[ServeSnap] == 0 {
		t.Fatal("no key served from the snapshot")
	}
	if bySource[ServePMem] == 0 {
		t.Fatal("no key served from PMem (cache holds 16 of 64; evicted keys must fall back)")
	}
	if bySource[ServeInit] != 0 {
		t.Fatal("trained key served from the initializer")
	}

	// A PMem-served key is promoted by the next refresh and then serves
	// lock-free.
	// Keep the highest cold key: the refresh promotes drained keys in
	// sorted order, so the highest lands most-recently-used and survives
	// the capacity re-enforcement that follows promotion.
	var cold uint64
	for _, k := range keys {
		if src, _ := e.ServeRead(k, dst); src == ServePMem {
			cold = k
		}
	}
	if cold == 0 {
		t.Fatal("no cold key found")
	}
	if err := e.RefreshServeSnapshots(); err != nil {
		t.Fatal(err)
	}
	if src, _ := e.ServeRead(cold, dst); src != ServeSnap {
		t.Fatalf("key %d served from %d after refresh, want snapshot", cold, src)
	}

	// A push dirties the served row: the next read falls back (post-push
	// value), and the batch boundary re-publishes it to the snapshot.
	hot := cold
	pre := make([]float32, dim)
	if _, err := e.ServeRead(hot, pre); err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, dim)
	if err := e.Pull(1, []uint64{hot}, buf); err != nil {
		t.Fatal(err)
	}
	e.EndPullPhase(1)
	e.WaitMaintenance()
	if err := e.Push(1, []uint64{hot}, constGrads(1, dim, 1.0)); err != nil {
		t.Fatal(err)
	}
	src, err := e.ServeRead(hot, dst)
	if err != nil {
		t.Fatal(err)
	}
	if src == ServeSnap {
		t.Fatal("dirty key still served from the snapshot")
	}
	for j := 0; j < dim; j++ {
		if want := pre[j] - 0.1; dst[j] != want { // SGD lr=0.1, g=1
			t.Fatalf("dirty fallback served %v, want %v", dst[j], want)
		}
	}
	if err := e.EndBatch(1); err != nil {
		t.Fatal(err)
	}
	if src, _ := e.ServeRead(hot, dst); src != ServeSnap {
		t.Fatalf("pushed key served from %d after batch end, want snapshot", src)
	}
	for j := 0; j < dim; j++ {
		if want := pre[j] - 0.1; dst[j] != want {
			t.Fatalf("snapshot row %v after push, want %v", dst[j], want)
		}
	}
}

// TestServeInitDoesNotCreateEntries: serving an unknown key answers the
// deterministic initializer row and must not mutate training state.
func TestServeInitDoesNotCreateEntries(t *testing.T) {
	dim := 8
	e := newTestEngine(t, testConfig(dim, 128, 32))
	runBatch(t, e, 0, []uint64{1, 2, 3}, nil)
	e.EnableServeSnapshots()
	before := e.Stats().Entries

	dst := make([]float32, dim)
	src, err := e.ServeRead(999, dst)
	if err != nil {
		t.Fatal(err)
	}
	if src != ServeInit {
		t.Fatalf("unknown key served from %d, want initializer", src)
	}
	if got := e.Stats().Entries; got != before {
		t.Fatalf("serve created entries: %d -> %d", before, got)
	}
	// The served row must equal what training materializes for that key.
	want := runBatch(t, e, 1, []uint64{999}, nil)
	for j := 0; j < dim; j++ {
		if dst[j] != want[j] {
			t.Fatalf("init row %v, trained first pull %v", dst[:dim], want[:dim])
		}
	}
}

// TestServeReadZeroAllocs pins the serve fast path at zero heap
// allocations per read — the property the oevet allocfree analyzer
// enforces statically and BENCH_pr8.json tracks in CI.
func TestServeReadZeroAllocs(t *testing.T) {
	dim := 16
	e := newTestEngine(t, testConfig(dim, 256, 128))
	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	runBatch(t, e, 0, keys, constGrads(len(keys), dim, 1.0))
	e.EnableServeSnapshots()

	dst := make([]float32, dim)
	// All keys are cache-resident and clean: every read must be a snapshot
	// hit before the allocation count means anything.
	for _, k := range keys {
		if src, err := e.ServeRead(k, dst); err != nil || src != ServeSnap {
			t.Fatalf("key %d: source %d err %v, want clean snapshot hit", k, src, err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		k := keys[i%len(keys)]
		i++
		if _, err := e.ServeRead(k, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ServeRead fast path allocates %.1f/op, want 0", allocs)
	}
}

// TestServeNoTornReads is the pinned interleave test: a serve-path read
// concurrent with pushes of the same keys must return a complete pre- or
// post-push row bit-exactly — never a torn mix — whichever tier serves it.
// SGD with a constant gradient makes every legal row enumerable: after m
// pushes the row is exactly w0 - m*lr (computed element-wise in float32),
// so any observed row must bit-match one of the precomputed versions.
func TestServeNoTornReads(t *testing.T) {
	for _, shards := range []int{1, 8} {
		shards := shards
		t.Run(map[int]string{1: "shards=1", 8: "shards=8"}[shards], func(t *testing.T) {
			t.Parallel()
			const (
				dim     = 8
				nkeys   = 32
				batches = 300
				reads   = 30_000 // per reader
				readers = 4
				lr      = 0.5 // lr*g = 0.5: exactly representable, like the engine's own op
			)
			e := newTestEngine(t, psengine.Config{
				Dim:          dim,
				Optimizer:    optim.NewSGD(lr),
				Capacity:     4096,
				CacheEntries: 256,
				Shards:       shards,
			})
			keys := make([]uint64, nkeys)
			for i := range keys {
				keys[i] = uint64(i*977 + 13) // spread across shards
			}
			w0 := runBatch(t, e, 0, keys, nil)

			// expect[k][m] is the exact row after m pushes, replicating
			// optim.SGD.Apply's float32 arithmetic; verIdx[k] maps element
			// 0's bit pattern to the candidate versions, so a read verifies
			// in O(1).
			expect := make([][][]float32, nkeys)
			verIdx := make([]map[uint32][]int, nkeys)
			for ki := range keys {
				vers := make([][]float32, batches+1)
				vers[0] = append([]float32(nil), w0[ki*dim:(ki+1)*dim]...)
				for m := 1; m <= batches; m++ {
					row := append([]float32(nil), vers[m-1]...)
					for i := range row {
						row[i] -= lr * 1.0
					}
					vers[m] = row
				}
				expect[ki] = vers
				idx := make(map[uint32][]int, batches+1)
				for m, row := range vers {
					b := math.Float32bits(row[0])
					idx[b] = append(idx[b], m)
				}
				verIdx[ki] = idx
			}
			matches := func(ki int, row []float32) bool {
				for _, m := range verIdx[ki][math.Float32bits(row[0])] {
					ver := expect[ki][m]
					same := true
					for i := range row {
						if math.Float32bits(row[i]) != math.Float32bits(ver[i]) {
							same = false
							break
						}
					}
					if same {
						return true
					}
				}
				return false
			}

			e.EnableServeSnapshots()
			done := make(chan struct{})
			var bySource [4]atomic.Int64
			var started sync.WaitGroup // writer waits for first reads
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				started.Add(1)
				go func(r int) {
					defer wg.Done()
					var startOnce sync.Once
					defer startOnce.Do(started.Done) // also on early error exit
					rng := rand.New(rand.NewSource(int64(r + 1)))
					dst := make([]float32, dim)
					// Readers run for the writer's whole push sequence (so
					// reads genuinely interleave with pushes of the same
					// keys) and for at least `reads` iterations.
					for n := 0; ; n++ {
						select {
						case <-done:
							if n >= reads {
								return
							}
						default:
						}
						ki := rng.Intn(nkeys)
						src, err := e.ServeRead(keys[ki], dst)
						if err != nil {
							t.Errorf("reader %d: %v", r, err)
							return
						}
						bySource[src].Add(1)
						if !matches(ki, dst) {
							t.Errorf("reader %d: torn row for key %d (source %d): %v",
								r, keys[ki], src, append([]float32(nil), dst...))
							return
						}
						startOnce.Do(started.Done)
					}
				}(r)
			}
			started.Wait()

			// A refresher churns snapshot republication alongside training.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
						if err := e.RefreshServeSnapshots(); err != nil {
							t.Errorf("refresh: %v", err)
							return
						}
					}
				}
			}()

			grads := constGrads(nkeys, dim, 1.0)
			buf := make([]float32, nkeys*dim)
			dst := make([]float32, dim)
			for b := int64(1); b <= batches; b++ {
				if err := e.Pull(b, keys, buf); err != nil {
					t.Fatalf("pull %d: %v", b, err)
				}
				e.EndPullPhase(b)
				if err := e.Push(b, keys, grads); err != nil {
					t.Fatalf("push %d: %v", b, err)
				}
				// Deterministic dirty-window reads: the rows are pushed but
				// not yet republished, so these land on the locked fallback
				// path (on a single-core scheduler the concurrent readers
				// alone might never catch this window).
				ki := int(b) % nkeys
				src, err := e.ServeRead(keys[ki], dst)
				if err != nil {
					t.Fatalf("dirty-window read %d: %v", b, err)
				}
				bySource[src].Add(1)
				if !matches(ki, dst) {
					t.Fatalf("dirty-window read of key %d (source %d) torn: %v", keys[ki], src, dst)
				}
				if err := e.EndBatch(b); err != nil {
					t.Fatalf("end %d: %v", b, err)
				}
			}
			close(done)
			wg.Wait()

			if bySource[ServeSnap].Load() == 0 {
				t.Error("no read ever hit the lock-free snapshot path")
			}
			if bySource[ServeDRAM].Load()+bySource[ServePMem].Load() == 0 {
				t.Error("no read ever exercised the locked fallback path")
			}
			if bySource[ServeInit].Load() != 0 {
				t.Error("trained key served from the initializer")
			}
			t.Logf("reads: snap=%d dram=%d pmem=%d",
				bySource[ServeSnap].Load(), bySource[ServeDRAM].Load(), bySource[ServePMem].Load())
		})
	}
}
