//go:build !oedebug

package core

import "sync"

// rankedMutex and rankedRWMutex are the engine's hierarchy-ranked locks.
// In release builds they are plain sync mutexes with a no-op rank hook, so
// the discipline costs nothing; building with -tags oedebug swaps in
// implementations (lockrank_oedebug.go) that verify at runtime the same
// invariant the lockorder analyzer proves statically: a goroutine acquires
// ranked locks in strictly increasing rank order (DESIGN.md §7/§8).
// lockRankDebug reports whether the allocating runtime rank checks are
// compiled in; the zero-alloc hot-path pins skip themselves when it is set.
const lockRankDebug = false

type rankedMutex struct{ sync.Mutex }

type rankedRWMutex struct{ sync.RWMutex }

func (m *rankedMutex) initRank(name string, rank int) {}

func (m *rankedRWMutex) initRank(name string, rank int) {}
