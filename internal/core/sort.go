package core

import "slices"

// posLess orders batch positions by (key, position): runs of one key are
// contiguous after sorting, and duplicates of a key stay in batch order,
// which keeps non-commutative float updates (push) deterministic.
func posLess(keys []uint64, a, b int32) bool {
	ka, kb := keys[a], keys[b]
	return ka < kb || (ka == kb && a < b)
}

// sortPosByKey sorts pos by posLess in place without steady-state
// allocation — the hot path cannot afford slices.SortFunc's comparator
// closure. When every key fits in 32 bits (embedding IDs in practice), each
// (key, position) pair packs into one uint64 and a branch-free slices.Sort
// over the packed words replaces the pointer-chasing comparator — roughly
// half the sort cost of the indirect path, which remains as the fallback
// for wide keys. Both paths produce the identical order. buf is the packing
// scratch, returned (possibly grown) for the caller's scratch lane.
func sortPosByKey(pos []int32, keys []uint64, buf []uint64) []uint64 {
	if cap(buf) < len(pos) {
		buf = make([]uint64, len(pos)) //oevet:alloc-ok grow-once scratch: the buffer returns to the pooled lane and steady state never regrows
	}
	buf = buf[:len(pos)]
	// Pack optimistically, accumulating the key OR; a wide key voids the
	// packed buffer (pos itself is untouched so far) and falls back.
	var mk uint64
	for i, p := range pos {
		k := keys[p]
		mk |= k
		buf[i] = k<<32 | uint64(uint32(p))
	}
	if mk>>32 != 0 {
		sortPosIndirect(pos, keys)
		return buf
	}
	slices.Sort(buf)
	for i, v := range buf {
		pos[i] = int32(uint32(v))
	}
	return buf
}

// sortPosIndirect is the wide-key fallback: quicksort with a median-of-three
// pivot, recursing only into the smaller partition (depth stays O(log n)),
// over insertion sort for short sublists (a batch sliced across 8 shards
// leaves ~8 positions per shard).
func sortPosIndirect(pos []int32, keys []uint64) {
	for len(pos) > 12 {
		m, hi := len(pos)/2, len(pos)-1
		if posLess(keys, pos[m], pos[0]) {
			pos[0], pos[m] = pos[m], pos[0]
		}
		if posLess(keys, pos[hi], pos[0]) {
			pos[0], pos[hi] = pos[hi], pos[0]
		}
		if posLess(keys, pos[hi], pos[m]) {
			pos[m], pos[hi] = pos[hi], pos[m]
		}
		pivot := pos[m]
		i, j := 0, hi
		for i <= j {
			for posLess(keys, pos[i], pivot) {
				i++
			}
			for posLess(keys, pivot, pos[j]) {
				j--
			}
			if i <= j {
				pos[i], pos[j] = pos[j], pos[i]
				i++
				j--
			}
		}
		if j < len(pos)-i {
			sortPosIndirect(pos[:j+1], keys)
			pos = pos[i:]
		} else {
			sortPosIndirect(pos[i:], keys)
			pos = pos[:j+1]
		}
	}
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0 && posLess(keys, pos[j], pos[j-1]); j-- {
			pos[j], pos[j-1] = pos[j-1], pos[j]
		}
	}
}
