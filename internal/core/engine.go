// Package core is the PMem-OE engine. Simulation results derived from it
// must be bit-reproducible across runs; the marker below puts the whole
// package under the determinism analyzer (internal/analysis).
//
//oevet:deterministic-package
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/cache"
	"openembedding/internal/device"
	"openembedding/internal/obs"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// Engine is the PMem-OE storage engine for one embedding table. It
// implements psengine.Engine.
//
// The engine is a thin coordinator over cfg.Shards independent shards, each
// owning its slice of the key space (index, LRU, access/side queues, lock).
// Pull and Push partition their key batch by hash and fan the per-shard
// sublists out across a bounded worker pool; the phase boundaries
// (EndPullPhase, EndBatch) barrier over all shards, so the batch protocol
// and checkpoint semantics are exactly those of the unsharded engine.
// Shards=1 reproduces the unsharded layout bit-for-bit in simulated time.
//
// The PMem arena is shared: it is internally locked, and concurrent
// per-shard flushes target disjoint slots, which the device documents as
// safe.
type Engine struct {
	cfg   psengine.Config
	arena *pmem.Arena
	dram  *device.Timed // DRAM timing charges for cache copies

	shards     []*shard
	shardShift uint // 64 - log2(len(shards)); see shardIndex

	// entries counts distinct entries across all shards; Capacity is
	// enforced by atomic reservation so shards stay independent.
	entries atomic.Int64

	// Checkpoint coordination lives here, not in the shards: a checkpoint
	// spans every shard's dirty entries, and completion must be detected
	// exactly once. ckptMu is a small leaf mutex ordered AFTER shard locks
	// (a flush holds its shard's mu when it reports progress); it is never
	// held while acquiring a shard lock. See checkpoint.go.
	//
	// oevet:lockrank core.ckptMu 20
	ckptMu         rankedMutex
	ckptQueue      []int64  // pending checkpoint requests (Fig. 5 right)
	ckptActive     int64    // batch being checkpointed, or -1
	ckptActivating bool     // an activation scan is in flight
	ckptFlushList  []*entry // memoized entries the active checkpoint needs
	// ckptRemaining counts flushes the active checkpoint still needs;
	// per-shard flushes decrement it without any shared lock.
	ckptRemaining atomic.Int64

	// maintenance scheduling
	maintCh   chan maintTask
	maintWG   sync.WaitGroup // maintainer goroutines
	pending   sync.WaitGroup // outstanding maintenance tasks
	currBatch atomic.Int64
	maintErrs maintErrBox

	// lastEnded is the most recent batch EndBatch sealed.
	lastEnded atomic.Int64

	closed atomic.Bool

	// serveOn gates the serving tier (serve.go): when set, maintenance
	// rounds republish per-shard hot-set snapshots for ServeRead.
	serveOn atomic.Bool

	// fanout bounds the goroutines Pull/Push spawn for per-shard sublists;
	// when no token is free the caller runs the sublist inline.
	fanout chan struct{}

	// counters
	hits, misses, evictions atomic.Int64
	pmemReads, pmemWrites   atomic.Int64
	ckptsDone               atomic.Int64
	completedCkpt           atomic.Int64
	// prevCompleted is the checkpoint retained behind completedCkpt (-1 for
	// none). Only meaningful with cfg.RetainCheckpoints >= 2; mirrored
	// durably in the arena header so recovery can roll back one checkpoint.
	prevCompleted atomic.Int64

	// flushVerify makes every record flush prove itself against the durable
	// image (set when a media-fault model is armed on the device and the
	// config does not opt out): rot, dropped flushes and poison are caught
	// at the flush site and healed by rewrite/realloc, so the durable image
	// stays exactly what a fault-free run would hold.
	flushVerify bool
	// scrubShare is each shard's background-scrub budget per maintenance
	// round (cfg.ScrubRate split across shards; 0 disables).
	scrubShare int
	// integrityNotify (a func(), set via SetIntegrityNotify) fires after a
	// background scrub round that restored or fenced entries — state
	// regressions the node must answer with an epoch fence and coordinated
	// replay. scrubLoss accumulates those regressions under shard locks;
	// the maintainer drains it and fires the callback outside every lock.
	integrityNotify atomic.Value
	scrubLoss       atomic.Int64
	// recoverInfo records how the engine was recovered (recover.go).
	recoverInfo RecoverInfo

	// obs is the engine's metric set (all no-ops when cfg.Obs is nil) and
	// spans its span tracer. Recording is atomics-only, so it is safe under
	// any engine lock; timestamps come from obs.Now(), never the time
	// package (this package is deterministic, and the readings are
	// observational only — the simulated experiments leave obs nil).
	obs   *psengine.EngineObs
	spans *obs.Tracer

	// payload scratch buffers
	payloadPool sync.Pool
	// scratchPool recycles the per-request partition/access-record buffers
	// so steady-state Pull and Push allocate nothing.
	scratchPool sync.Pool
}

type maintTask struct {
	batch   int64
	sh      *shard
	entries []accessRec
}

// opScratch holds one request's reusable buffers, one lane per shard so the
// fanned-out shard tasks never share a slice.
type opScratch struct {
	byShard [][]int32     // positions in keys partitioned by shard
	ids     []int32       // shards with a non-empty sublist
	recs    [][]accessRec // per-shard access records
	miss    [][]missRun   // per-shard first-touch runs
	pmem    [][]pmemRun   // per-shard PMem-resident runs awaiting coalescing
	sortBuf [][]uint64    // per-shard (key,pos) packing scratch for sortPosByKey

	// fan is the request's fan-out frame: the wait group, error slot and
	// work description the helper goroutines need, preallocated here so a
	// multi-shard request spawns helpers without any per-call closure
	// allocations.
	fan fanFrame

	// obsTick drives the 1-in-8 latency sampling of Pull. It lives here
	// because the scratch is owned exclusively for the request's duration:
	// no shared counter, no atomics, no races. obsSample mirrors the tick's
	// verdict for this request so the PMem miss path (servePMem) can
	// ride the same sampling decision without re-deriving it.
	obsTick   uint8
	obsSample bool
}

// fanFrame carries one fanned-out request's shared state. It lives inside
// the pooled opScratch: `go f.run(sid)` passes the receiver and shard id as
// plain goroutine arguments, so dispatching a multi-shard batch performs no
// heap allocation (the closure-per-request formulation this replaces cost
// five allocations per Pull/Push).
type fanFrame struct {
	e     *Engine
	sc    *opScratch
	batch int64
	keys  []uint64
	buf   []float32 // dst for pulls, grads for pushes
	push  bool

	wg    sync.WaitGroup
	errMu sync.Mutex
	err   error
}

func (f *fanFrame) record(err error) {
	if err == nil {
		return
	}
	f.errMu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.errMu.Unlock()
}

// do runs the frame's operation for one shard inline.
func (f *fanFrame) do(sid int32) error {
	s := f.e.shards[sid]
	if f.push {
		return s.push(f.batch, f.keys, f.sc.byShard[sid], f.buf, f.sc, int(sid))
	}
	return s.pull(f.batch, f.keys, f.sc.byShard[sid], f.buf, f.sc, int(sid))
}

// run is the helper-goroutine body.
func (f *fanFrame) run(sid int32) {
	f.record(f.do(sid))
	<-f.e.fanout
	f.wg.Done()
}

// dispatch runs the frame's operation for every shard in sc.ids, spawning a
// goroutine per shard while pool tokens are available and running the
// remainder (always including the first) on the caller. The first error
// wins.
func (f *fanFrame) dispatch() error {
	ids := f.sc.ids
	if len(ids) == 0 {
		return nil
	}
	if len(ids) == 1 {
		return f.do(ids[0])
	}
	for _, sid := range ids[1:] {
		select {
		case f.e.fanout <- struct{}{}:
			f.wg.Add(1)
			go f.run(sid)
		default:
			f.record(f.do(sid))
		}
	}
	f.record(f.do(ids[0]))
	f.wg.Wait()
	err := f.err
	f.err = nil
	return err
}

// New creates a PMem-OE engine storing records in the given arena. The
// arena's payload size must match the configuration's per-entry floats.
func New(cfg psengine.Config, arena *pmem.Arena) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if want := pmem.FloatBytes(cfg.EntryFloats()); arena.PayloadBytes() != want {
		return nil, fmt.Errorf("core: arena payload %dB does not match entry size %dB", arena.PayloadBytes(), want)
	}
	nShards := cfg.Shards // WithDefaults normalized it to a power of two
	e := &Engine{
		cfg:     cfg,
		arena:   arena,
		dram:    device.NewTimedDRAM(cfg.Meter),
		maintCh: make(chan maintTask, 64),
		obs:     psengine.NewEngineObs(cfg.Obs),
		spans:   cfg.Spans,
	}
	e.flushVerify = arena.Device().MediaFaultsArmed() && !cfg.FlushVerifyDisabled
	if cfg.ScrubRate > 0 {
		e.scrubShare = cfg.ScrubRate / nShards
		if e.scrubShare == 0 {
			e.scrubShare = 1
		}
	}
	// shardIndex multiplies by the golden ratio and keeps the top log2(n)
	// bits. For n == 1 the shift is 64, which Go defines as yielding 0.
	e.shardShift = uint(64 - bits.TrailingZeros(uint(nShards)))
	e.ckptMu.initRank("core.ckptMu", 20)
	e.shards = make([]*shard, nShards)
	base, extra := cfg.CacheEntries/nShards, cfg.CacheEntries%nShards
	for i := range e.shards {
		capi := base
		if i < extra {
			capi++
		}
		e.shards[i] = &shard{
			eng:      e,
			id:       i,
			index:    make(map[uint64]*entry),
			lru:      cache.NewList[*entry](),
			capacity: capi,
			evictObs: e.obs.ShardEvictions(i),
		}
		e.shards[i].mu.initRank("core.shard.mu", 10)
	}
	// The caller of a fanned-out Pull/Push works a shard itself, so the
	// helper pool holds GOMAXPROCS-1 tokens. On a single-CPU process the
	// channel has zero capacity: no token is ever available and every
	// sublist runs inline, sparing the goroutine churn that parallelism
	// could not repay.
	fan := runtime.GOMAXPROCS(0) - 1
	if fan < 0 {
		fan = 0
	}
	e.fanout = make(chan struct{}, fan)
	e.completedCkpt.Store(-1)
	e.prevCompleted.Store(-1)
	e.currBatch.Store(-1)
	e.lastEnded.Store(-1)
	e.ckptActive = -1
	e.payloadPool.New = func() any {
		b := make([]byte, arena.PayloadBytes())
		return &b
	}
	e.scratchPool.New = func() any {
		return &opScratch{
			byShard: make([][]int32, nShards),
			recs:    make([][]accessRec, nShards),
			miss:    make([][]missRun, nShards),
			pmem:    make([][]pmemRun, nShards),
			sortBuf: make([][]uint64, nShards),
		}
	}
	for i := 0; i < cfg.MaintThreads; i++ {
		e.maintWG.Add(1)
		go e.maintainLoop()
	}
	return e, nil
}

// Name implements psengine.Engine.
func (e *Engine) Name() string { return "pmem-oe" }

// Dim implements psengine.Engine.
func (e *Engine) Dim() int { return e.cfg.Dim }

// Config returns the engine configuration (defaults applied).
func (e *Engine) Config() psengine.Config { return e.cfg }

// Arena exposes the underlying PMem arena (used by recovery and tests).
func (e *Engine) Arena() *pmem.Arena { return e.arena }

// shardIndex maps a key to its shard: Fibonacci hashing keeps the top bits
// well mixed, and the power-of-two shard count makes the map a shift.
func (e *Engine) shardIndex(k uint64) int {
	return int((k * 0x9e3779b97f4a7c15) >> e.shardShift)
}

// shardFor returns the shard owning key k.
func (e *Engine) shardFor(k uint64) *shard { return e.shards[e.shardIndex(k)] }

func (e *Engine) getScratch() *opScratch { return e.scratchPool.Get().(*opScratch) }

func (e *Engine) putScratch(sc *opScratch) {
	for i := range sc.byShard {
		sc.byShard[i] = sc.byShard[i][:0]
		sc.recs[i] = sc.recs[i][:0]
		sc.miss[i] = sc.miss[i][:0]
		sc.pmem[i] = sc.pmem[i][:0]
	}
	sc.ids = sc.ids[:0]
	sc.fan.e, sc.fan.sc, sc.fan.keys, sc.fan.buf, sc.fan.err = nil, nil, nil, nil, nil
	e.scratchPool.Put(sc)
}

// partition splits the positions of keys into sc.byShard sublists and
// records the non-empty shards in sc.ids. Sublists are in batch order here;
// each shard sorts its own sublist into key runs (sortPosByKey), keeping
// the O(n log n) work off the partitioning thread and inside the fan-out.
func (e *Engine) partition(keys []uint64, sc *opScratch) {
	byShard := sc.byShard
	for i, k := range keys {
		sid := e.shardIndex(k)
		byShard[sid] = append(byShard[sid], int32(i)) //oevet:alloc-ok appends into a pooled scratch lane: capacity persists across batches, steady state never grows
	}
	ids := sc.ids
	for sid := range byShard {
		if len(byShard[sid]) > 0 {
			ids = append(ids, int32(sid)) //oevet:alloc-ok appends into a pooled scratch lane: capacity persists across batches, steady state never grows
		}
	}
	sc.ids = ids
}

// partitionAll routes every position to the single shard — the one-shard
// engine shares the sorted-run sweep with the fanned-out path, so Shards=1
// still reproduces the unsharded layout with identical charges.
func (e *Engine) partitionAll(keys []uint64, sc *opScratch) []int32 {
	idxs := sc.byShard[0][:0]
	for i := range keys {
		idxs = append(idxs, int32(i)) //oevet:alloc-ok appends into a pooled scratch lane: capacity persists across batches, steady state never grows
	}
	sc.byShard[0] = idxs
	return idxs
}

// Pull implements Algorithm 1: under each shard's shared lock, resolve the
// shard's keys through its DRAM index, copy weights from DRAM or PMem into
// dst, and append the touched entries to the shard's access queue for
// deferred maintenance. Multi-shard batches fan out across the worker pool.
//
// oevet:hotpath
func (e *Engine) Pull(batch int64, keys []uint64, dst []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := psengine.CheckBuf(keys, dst, e.cfg.Dim); err != nil {
		return err
	}
	// Conditional store: every pull of a batch writing the same value turns
	// the line into a read-mostly one instead of a per-call cross-core
	// invalidation.
	if e.currBatch.Load() != batch {
		e.currBatch.Store(batch)
	}
	e.cfg.Meter.Charge(simclock.LockSync, psengine.LockCost)

	sc := e.getScratch()
	// Latency recording is sampled 1-in-8: two clock reads cost ~80ns on a
	// server core, which would exceed the obs overhead budget on this
	// sub-microsecond path (DESIGN.md §9). The tick lives in the pooled
	// scratch, so sampling needs no shared counter and stays race-free.
	var obsStart time.Duration
	sc.obsSample = false
	if e.obs.Enabled() {
		if sc.obsTick++; sc.obsTick&7 == 0 {
			obsStart = e.obs.Now()
			sc.obsSample = true
		}
	}
	var err error
	if len(e.shards) == 1 {
		err = e.shards[0].pull(batch, keys, e.partitionAll(keys, sc), dst, sc, 0)
	} else {
		e.partition(keys, sc)
		f := &sc.fan
		f.e, f.sc, f.batch, f.keys, f.buf, f.push = e, sc, batch, keys, dst, false
		err = f.dispatch()
	}
	if sc.obsSample {
		e.obs.Pull.Observe(e.obs.Now() - obsStart)
	}
	e.putScratch(sc)
	if err != nil {
		return err
	}
	if e.cfg.PipelineDisabled {
		// Ablation: run maintenance inline on the request path.
		e.inlineMaintain(batch)
	}
	return nil
}

// Push applies gradients with the server-side optimizer. Entries accessed
// in the pull phase of the same batch are already (or are being) promoted
// to DRAM by the maintainers; Push waits for that promotion to complete, as
// the paper's pipeline guarantees by construction (maintenance runs during
// the much longer GPU phase).
//
// oevet:hotpath
func (e *Engine) Push(batch int64, keys []uint64, grads []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := psengine.CheckBuf(keys, grads, e.cfg.Dim); err != nil {
		return err
	}
	// Push latency includes the maintenance wait below: that is the latency
	// a worker actually sees, and the optimizer math dominates the clock
	// cost, so every call is recorded (no sampling).
	var obsStart time.Duration
	if e.obs.Enabled() {
		obsStart = e.obs.Now()
	}
	// Ensure promotion finished so updates land in DRAM, never in PMem.
	e.WaitMaintenance()

	e.cfg.Meter.Charge(simclock.LockSync, psengine.LockCost)
	var err error
	sc := e.getScratch()
	if len(e.shards) == 1 {
		err = e.shards[0].push(batch, keys, e.partitionAll(keys, sc), grads, sc, 0)
	} else {
		e.partition(keys, sc)
		f := &sc.fan
		f.e, f.sc, f.batch, f.keys, f.buf, f.push = e, sc, batch, keys, grads, true
		err = f.dispatch()
	}
	e.putScratch(sc)
	if obsStart != 0 {
		e.obs.Push.Observe(e.obs.Now() - obsStart)
	}
	return err
}

// promoteLocked loads an entry's record from PMem into a fresh DRAM buffer.
// Caller holds the entry's stripe (or its shard's exclusive lock).
// countRead says whether to count the read in the PMemReads stat: a
// maintenance promotion of an entry the same batch's pull already served
// from PMem is the second half of one logical fetch and is not re-counted
// (the virtual-time device charge always applies — the read really happens).
//
// oevet:coldpath miss-path promotion allocates the entry's DRAM buffer once by design; the steady-state hit path never reaches it
func (e *Engine) promoteLocked(ent *entry, countRead bool) error {
	bufp := e.payloadPool.Get().(*[]byte)
	defer e.payloadPool.Put(bufp)
	if err := e.arena.ReadPayloadVerified(ent.slot, ent.key, *bufp); err != nil {
		if pmem.IsIntegrity(err) {
			e.obs.CorruptServe.Add(1)
			err = fmt.Errorf("core: promote of key %d: %w", ent.key, err)
		}
		return err
	}
	ent.buf = make([]float32, e.cfg.EntryFloats())
	pmem.DecodeFloats(ent.buf, *bufp)
	if countRead {
		e.pmemReads.Add(1)
	}
	e.dram.ChargeWrite(4 * e.cfg.EntryFloats())
	e.chargeInlineSerial(device.PMem().ReadCost(e.arena.PayloadBytes()))
	return nil
}

// chargeInlineSerial mirrors a PMem access into the globally-serialized
// lane when maintenance runs inline (pipeline disabled): the exclusive
// shard lock is held across the device access, so every request thread
// waits it out (the Fig. 9 ablation's dominant cost).
func (e *Engine) chargeInlineSerial(d time.Duration) {
	if e.cfg.PipelineDisabled {
		e.cfg.Meter.Charge(simclock.GlobalSync, d)
	}
}

// Keys returns every key currently stored, in ascending order. Intended
// for inspection and tests; it holds each shard's shared lock in turn.
// (It previously returned keys in map-iteration order — a nondeterminism
// the determinism analyzer now rejects.)
func (e *Engine) Keys() []uint64 {
	out := make([]uint64, 0, e.entries.Load())
	for _, s := range e.shards {
		s.mu.RLock()
		for k := range s.index {
			out = append(out, k)
		}
		s.mu.RUnlock()
	}
	slices.Sort(out)
	return out
}

// Stats implements psengine.Engine.
func (e *Engine) Stats() psengine.Stats {
	var cached int64
	for _, s := range e.shards {
		s.mu.RLock()
		cached += int64(s.lru.Len())
		s.mu.RUnlock()
	}
	return psengine.Stats{
		Entries:         e.entries.Load(),
		CachedEntries:   cached,
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		PMemReads:       e.pmemReads.Load(),
		PMemWrites:      e.pmemWrites.Load(),
		Evictions:       e.evictions.Load(),
		CheckpointsDone: e.ckptsDone.Load(),
	}
}

// Close stops the maintainer pool. It does not flush dirty cache entries;
// call RequestCheckpoint + WaitMaintenance first for a clean shutdown, or
// rely on recovery semantics (unflushed data is, correctly, lost).
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.maintCh)
	e.maintWG.Wait()
	return nil
}

// optimizerCost is the calibrated virtual CPU cost of applying a gradient
// to one dim-sized entry (~0.5 ns per coordinate of fused multiply-add on a
// modern server core).
func optimizerCost(dim int) time.Duration {
	return time.Duration(dim) * time.Nanosecond / 2
}
