package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/cache"
	"openembedding/internal/device"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// Engine is the PMem-OE storage engine for one embedding-table shard.
// It implements psengine.Engine.
type Engine struct {
	cfg   psengine.Config
	arena *pmem.Arena
	dram  *device.Timed // DRAM timing charges for cache copies

	// mu is the paper's reader/writer lock (Alg. 1 line 3, Alg. 2 line 9):
	// request threads hold it shared, cache maintenance holds it exclusive.
	mu    sync.RWMutex
	index map[uint64]*entry
	lru   *cache.List[*entry]

	// stripes serialize concurrent pushes to the same entry within the
	// push phase (several workers can carry gradients for one hot key).
	stripes [64]sync.Mutex

	// accessQ collects the entries each pull touched (Alg. 1 line 17).
	accessQ cache.Queue[*entry]

	// ckptMu protects the checkpoint request queue (Fig. 5 right).
	ckptMu    sync.Mutex
	ckptQueue []int64

	// Active-checkpoint completion accounting (all under mu): the batch ID
	// being checkpointed, how many dirty cached entries it still needs
	// persisted, and those entries memoized for the finalizer.
	ckptActive    int64
	ckptRemaining int
	ckptFlushList []*entry

	// maintenance scheduling
	maintCh   chan maintTask
	maintWG   sync.WaitGroup // maintainer goroutines
	pending   sync.WaitGroup // outstanding maintenance tasks
	currBatch atomic.Int64
	maintErrs maintErrBox

	// sideQ collects entries Push promoted inline (cache smaller than one
	// batch's working set); EndBatch links them into the LRU.
	sideQ cache.Queue[*entry]

	// lastEnded is the most recent batch EndBatch sealed (under mu).
	lastEnded int64

	closed atomic.Bool

	// counters
	hits, misses, evictions atomic.Int64
	pmemReads, pmemWrites   atomic.Int64
	ckptsDone               atomic.Int64
	completedCkpt           atomic.Int64

	// payload scratch buffers
	payloadPool sync.Pool
}

type maintTask struct {
	batch   int64
	entries []*entry
}

// New creates a PMem-OE engine storing records in the given arena. The
// arena's payload size must match the configuration's per-entry floats.
func New(cfg psengine.Config, arena *pmem.Arena) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if want := pmem.FloatBytes(cfg.EntryFloats()); arena.PayloadBytes() != want {
		return nil, fmt.Errorf("core: arena payload %dB does not match entry size %dB", arena.PayloadBytes(), want)
	}
	e := &Engine{
		cfg:     cfg,
		arena:   arena,
		dram:    device.NewTimedDRAM(cfg.Meter),
		index:   make(map[uint64]*entry),
		lru:     cache.NewList[*entry](),
		maintCh: make(chan maintTask, 64),
	}
	e.completedCkpt.Store(-1)
	e.currBatch.Store(-1)
	e.lastEnded = -1
	e.ckptActive = -1
	e.payloadPool.New = func() any {
		b := make([]byte, arena.PayloadBytes())
		return &b
	}
	for i := 0; i < cfg.MaintThreads; i++ {
		e.maintWG.Add(1)
		go e.maintainLoop()
	}
	return e, nil
}

// Name implements psengine.Engine.
func (e *Engine) Name() string { return "pmem-oe" }

// Dim implements psengine.Engine.
func (e *Engine) Dim() int { return e.cfg.Dim }

// Config returns the engine configuration (defaults applied).
func (e *Engine) Config() psengine.Config { return e.cfg }

// Arena exposes the underlying PMem arena (used by recovery and tests).
func (e *Engine) Arena() *pmem.Arena { return e.arena }

// Pull implements Algorithm 1: under the shared lock, resolve every key
// through the DRAM index, copy weights from DRAM or PMem into dst, and
// append the touched entries to the access queue for deferred maintenance.
func (e *Engine) Pull(batch int64, keys []uint64, dst []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := psengine.CheckBuf(keys, dst, e.cfg.Dim); err != nil {
		return err
	}
	e.currBatch.Store(batch)
	dim := e.cfg.Dim
	meter := e.cfg.Meter
	meter.Charge(simclock.LockSync, psengine.LockCost)

	e.mu.RLock()
	var missing []int
	touched := make([]*entry, len(keys))
	for i, k := range keys {
		meter.Charge(simclock.Compute, psengine.IndexProbeCost)
		ent := e.index[k]
		if ent == nil {
			missing = append(missing, i)
			continue
		}
		touched[i] = ent
		if err := e.readWeights(ent, dst[i*dim:(i+1)*dim]); err != nil {
			e.mu.RUnlock()
			return err
		}
	}
	e.mu.RUnlock()

	// First-epoch path (Alg. 1 lines 6-12): create entries under the
	// exclusive lock, then serve them.
	if len(missing) > 0 {
		if err := e.createMissing(batch, keys, dst, touched, missing); err != nil {
			return err
		}
	}

	e.accessQ.Push(touched...)
	if e.cfg.PipelineDisabled {
		// Ablation: run maintenance inline on the request path.
		e.runMaintenance(batch, e.accessQ.Drain())
	}
	return nil
}

// readWeights copies the entry's weights into dst from whichever tier holds
// them, charging the corresponding device cost. Caller holds mu (shared).
func (e *Engine) readWeights(ent *entry, dst []float32) error {
	dim := e.cfg.Dim
	if ent.inDRAM() {
		copy(dst, ent.weights(dim))
		e.dram.ChargeRead(4 * dim)
		e.hits.Add(1)
		return nil
	}
	// Served straight from PMem; promotion to DRAM is deferred to the
	// maintenance phase so the request path stays read-only.
	bufp := e.payloadPool.Get().(*[]byte)
	err := e.arena.ReadPayload(ent.slot, *bufp)
	if err == nil {
		pmem.DecodeFloats(dst, *bufp)
		e.pmemReads.Add(1)
		e.misses.Add(1)
	}
	e.payloadPool.Put(bufp)
	return err
}

func (e *Engine) createMissing(batch int64, keys []uint64, dst []float32, touched []*entry, missing []int) error {
	dim := e.cfg.Dim
	e.cfg.Meter.Charge(simclock.LockSync, psengine.LockCost)
	e.mu.Lock()
	for _, i := range missing {
		k := keys[i]
		ent := e.index[k]
		if ent == nil {
			if len(e.index) >= e.cfg.Capacity {
				e.mu.Unlock()
				return fmt.Errorf("%w: %d entries", psengine.ErrCapacity, len(e.index))
			}
			// A fresh entry's initial state is the state as of the end of
			// the previous batch: stamping batch-1 keeps data versions
			// unique even when the entry is flushed (tiny cache) and then
			// pushed within its creation batch.
			ent = &entry{key: k, version: batch, dataVersion: batch - 1, slot: noSlot, dirty: true}
			ent.node.Value = ent
			ent.buf = make([]float32, e.cfg.EntryFloats())
			e.cfg.Initializer(k, ent.weights(dim))
			e.cfg.Optimizer.InitState(ent.state(dim))
			e.dram.ChargeWrite(4 * e.cfg.EntryFloats())
			e.index[k] = ent
		}
		touched[i] = ent
		copy(dst[i*dim:(i+1)*dim], ent.weights(dim))
		e.dram.ChargeRead(4 * dim)
		e.hits.Add(1)
	}
	e.mu.Unlock()
	return nil
}

// Push applies gradients with the server-side optimizer. Entries accessed
// in the pull phase of the same batch are already (or are being) promoted
// to DRAM by the maintainers; Push waits for that promotion to complete, as
// the paper's pipeline guarantees by construction (maintenance runs during
// the much longer GPU phase).
func (e *Engine) Push(batch int64, keys []uint64, grads []float32) error {
	if e.closed.Load() {
		return psengine.ErrClosed
	}
	if err := psengine.CheckBuf(keys, grads, e.cfg.Dim); err != nil {
		return err
	}
	// Ensure promotion finished so updates land in DRAM, never in PMem.
	e.WaitMaintenance()

	dim := e.cfg.Dim
	meter := e.cfg.Meter
	meter.Charge(simclock.LockSync, psengine.LockCost)
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i, k := range keys {
		meter.Charge(simclock.Compute, psengine.IndexProbeCost)
		ent := e.index[k]
		if ent == nil {
			return fmt.Errorf("core: push of unknown key %d", k)
		}
		stripe := &e.stripes[k%uint64(len(e.stripes))]
		stripe.Lock()
		if !ent.inDRAM() {
			// Fallback for caches smaller than one batch's working set:
			// promote inline (charged as a PMem read) and let EndBatch link
			// the entry into the LRU.
			if err := e.promoteLocked(ent); err != nil {
				stripe.Unlock()
				return err
			}
			e.sideQ.Push(ent)
		}
		e.cfg.Optimizer.Apply(ent.weights(dim), ent.state(dim), grads[i*dim:(i+1)*dim])
		ent.dirty = true
		ent.dataVersion = batch
		stripe.Unlock()
		e.dram.ChargeWrite(4 * dim)
		meter.Charge(simclock.Compute, optimizerCost(dim))
	}
	return nil
}

// promoteLocked loads an entry's record from PMem into a fresh DRAM buffer.
// Caller holds the entry's stripe (or the exclusive engine lock).
func (e *Engine) promoteLocked(ent *entry) error {
	bufp := e.payloadPool.Get().(*[]byte)
	defer e.payloadPool.Put(bufp)
	if err := e.arena.ReadPayload(ent.slot, *bufp); err != nil {
		return err
	}
	ent.buf = make([]float32, e.cfg.EntryFloats())
	pmem.DecodeFloats(ent.buf, *bufp)
	e.pmemReads.Add(1)
	e.dram.ChargeWrite(4 * e.cfg.EntryFloats())
	e.chargeInlineSerial(device.PMem().ReadCost(e.arena.PayloadBytes()))
	return nil
}

// chargeInlineSerial mirrors a PMem access into the globally-serialized
// lane when maintenance runs inline (pipeline disabled): the exclusive
// engine lock is held across the device access, so every request thread
// waits it out (the Fig. 9 ablation's dominant cost).
func (e *Engine) chargeInlineSerial(d time.Duration) {
	if e.cfg.PipelineDisabled {
		e.cfg.Meter.Charge(simclock.GlobalSync, d)
	}
}

// Keys returns every key currently stored (order unspecified). Intended
// for inspection and tests; it holds the shared lock for the duration.
func (e *Engine) Keys() []uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]uint64, 0, len(e.index))
	for k := range e.index {
		out = append(out, k)
	}
	return out
}

// Stats implements psengine.Engine.
func (e *Engine) Stats() psengine.Stats {
	e.mu.RLock()
	entries := int64(len(e.index))
	cached := int64(e.lru.Len())
	e.mu.RUnlock()
	return psengine.Stats{
		Entries:         entries,
		CachedEntries:   cached,
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		PMemReads:       e.pmemReads.Load(),
		PMemWrites:      e.pmemWrites.Load(),
		Evictions:       e.evictions.Load(),
		CheckpointsDone: e.ckptsDone.Load(),
	}
}

// Close stops the maintainer pool. It does not flush dirty cache entries;
// call RequestCheckpoint + WaitMaintenance first for a clean shutdown, or
// rely on recovery semantics (unflushed data is, correctly, lost).
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.maintCh)
	e.maintWG.Wait()
	return nil
}

// optimizerCost is the calibrated virtual CPU cost of applying a gradient
// to one dim-sized entry (~0.5 ns per coordinate of fused multiply-add on a
// modern server core).
func optimizerCost(dim int) time.Duration {
	return time.Duration(dim) * time.Nanosecond / 2
}
