package core

import (
	"math/rand"
	"sync"
	"testing"

	"openembedding/internal/psengine"
	"openembedding/internal/workload"
)

// TestPipelinedStressWithCheckpoints runs the engine the way the library
// is actually used: several maintainer threads, concurrent worker
// goroutines sharing hot keys, no manual WaitMaintenance between phases
// (Push synchronizes itself), periodic checkpoints — all under the race
// detector in CI. Correctness oracle: AdaGrad with a constant gradient is
// order-independent, so the final weights depend only on each key's total
// push count.
func TestPipelinedStressWithCheckpoints(t *testing.T) {
	cfg := psengine.Config{
		Dim:          8,
		Capacity:     4096,
		CacheEntries: 128,
		MaintThreads: 4,
		Meter:        nil,
	}
	e := newTestEngine(t, cfg)
	dim := 8

	const (
		workers = 4
		batches = 30
	)
	sampler := make([]workload.KeySampler, workers)
	for w := range sampler {
		sampler[w] = workload.NewTableIISkew(2048, int64(w+1))
	}

	pushCount := map[uint64]int{}
	grad := make([]float32, 64*dim)
	for i := range grad {
		grad[i] = 1
	}

	for b := int64(0); b < batches; b++ {
		keysByWorker := make([][]uint64, workers)
		for w := range keysByWorker {
			keysByWorker[w] = workload.Batch(sampler[w], 64)
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				keys := keysByWorker[w]
				dst := make([]float32, len(keys)*dim)
				if err := e.Pull(b, keys, dst); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		e.EndPullPhase(b)
		// No WaitMaintenance: pushes must synchronize on their own.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				keys := keysByWorker[w]
				if err := e.Push(b, keys, grad[:len(keys)*dim]); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		for _, keys := range keysByWorker {
			for _, k := range keys {
				pushCount[k]++
			}
		}
		if err := e.EndBatch(b); err != nil {
			t.Fatal(err)
		}
		if b%7 == 6 {
			if err := e.RequestCheckpoint(b); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Verify a sample of keys against the count-determined oracle.
	cfgD := cfg.WithDefaults()
	rng := rand.New(rand.NewSource(9))
	checked := 0
	for k, n := range pushCount {
		if rng.Intn(4) != 0 {
			continue
		}
		want := make([]float32, dim)
		state := make([]float32, cfgD.Optimizer.StateFloats(dim))
		cfgD.Initializer(k, want)
		cfgD.Optimizer.InitState(state)
		g := make([]float32, dim)
		for i := range g {
			g[i] = 1
		}
		for i := 0; i < n; i++ {
			cfgD.Optimizer.Apply(want, state, g)
		}
		got := make([]float32, dim)
		if err := e.Pull(batches, []uint64{k}, got); err != nil {
			t.Fatal(err)
		}
		for d := range got {
			if diff := got[d] - want[d]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("key %d (pushed %d times): weight[%d] = %v, oracle %v", k, n, d, got[d], want[d])
			}
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d keys checked", checked)
	}
	if done := e.CompletedCheckpoint(); done < 20 {
		t.Fatalf("checkpoints lagging under stress: completed %d", done)
	}
}
