package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"openembedding/internal/device"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// TestSortPosByKey checks the hand-rolled run sort against the library sort:
// same (key asc, position asc) order on random inputs of every small size and
// a few large ones, including heavily duplicated key sets. Both sort paths
// are exercised — the packed uint64 fast path (keys < 2^32) and the indirect
// fallback (at least one wide key) — and must produce the identical order.
func TestSortPosByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sizes := make([]int, 0, 40)
	for n := 0; n <= 33; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 100, 1000, 4096)
	var buf []uint64
	for _, wide := range []bool{false, true} {
		for _, n := range sizes {
			for trial := 0; trial < 4; trial++ {
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = uint64(rng.Intn(1 + n/4)) // dense: lots of duplicates
				}
				if wide && n > 0 {
					// Push one key past 32 bits so the packed fast path
					// rejects the batch and the indirect sort runs.
					keys[rng.Intn(n)] |= 1 << 40
				}
				got := make([]int32, n)
				want := make([]int32, n)
				for i := range got {
					got[i] = int32(i)
					want[i] = int32(i)
				}
				buf = sortPosByKey(got, keys, buf)
				sort.Slice(want, func(a, b int) bool {
					if keys[want[a]] != keys[want[b]] {
						return keys[want[a]] < keys[want[b]]
					}
					return want[a] < want[b]
				})
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("wide=%v n=%d trial=%d: pos[%d] = %d, want %d (keys %v)", wide, n, trial, i, got[i], want[i], keys)
					}
				}
			}
		}
	}
}

// TestDuplicateKeyBatchOnePMemRead pins the dedup contract of the run sweep:
// a batch repeating one PMem-resident key 1000 times serves every position
// with identical rows, reads PMem exactly once, and counts the 999 fan-out
// copies as DRAM hits — Hits+Misses still equals the batch length.
func TestDuplicateKeyBatchOnePMemRead(t *testing.T) {
	const dim, reps = 4, 1000
	e := newTestEngine(t, testConfig(dim, 64, 1)) // cache of one entry

	// Create key 1, then key 2 (evicting key 1 to PMem).
	runBatch(t, e, 0, []uint64{1}, nil)
	base := runBatch(t, e, 1, []uint64{1}, constGrads(1, dim, 1))
	for i := range base {
		base[i] -= 0.1 // SGD lr=0.1, grad=1: the post-push weights
	}
	runBatch(t, e, 2, []uint64{2}, nil)

	before := e.Stats()
	keys := make([]uint64, reps)
	for i := range keys {
		keys[i] = 1
	}
	dst := make([]float32, reps*dim)
	if err := e.Pull(3, keys, dst); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < reps; p++ {
		for d := 0; d < dim; d++ {
			if got, want := dst[p*dim+d], base[d]; got != want {
				t.Fatalf("position %d dim %d: got %v, want %v", p, d, got, want)
			}
		}
	}
	after := e.Stats()
	if got := after.PMemReads - before.PMemReads; got != 1 {
		t.Fatalf("PMem reads for %d duplicates of one key: %d, want 1", reps, got)
	}
	if got := after.Misses - before.Misses; got != 1 {
		t.Fatalf("misses: %d, want 1", got)
	}
	if got := after.Hits - before.Hits; got != reps-1 {
		t.Fatalf("hits (duplicate fan-out): %d, want %d", got, reps-1)
	}
	e.EndPullPhase(3)
	e.WaitMaintenance()
	if err := e.EndBatch(3); err != nil {
		t.Fatal(err)
	}

	// Warm case: the key is now in DRAM; every position is a plain hit.
	mid := e.Stats()
	if err := e.Pull(4, keys, dst); err != nil {
		t.Fatal(err)
	}
	warm := e.Stats()
	if got := warm.Hits - mid.Hits; got != reps {
		t.Fatalf("warm duplicate hits: %d, want %d", got, reps)
	}
	if warm.PMemReads != after.PMemReads {
		t.Fatalf("warm duplicate pull read PMem: %d -> %d", after.PMemReads, warm.PMemReads)
	}

	// Cold-create case: a never-seen key repeated serves every position from
	// the one freshly created entry.
	if err := e.Pull(4, []uint64{99, 99, 99}, dst[:3*dim]); err != nil {
		t.Fatal(err)
	}
	for p := 1; p < 3; p++ {
		for d := 0; d < dim; d++ {
			if dst[p*dim+d] != dst[d] {
				t.Fatalf("created duplicate position %d differs from position 0", p)
			}
		}
	}
	if got := e.Stats().Misses - warm.Misses; got != 0 {
		t.Fatalf("first-touch creation counted as miss: %d", got)
	}
}

// TestRunChargeEquivalence is the satellite-1 pinned-counter test: the
// batched ChargeN/ChargeReadN/ChargeWriteN accounting must charge exactly the
// virtual time and op counts of the per-key accounting it replaced. The
// expectations below ARE the per-key formulas (n keys -> n probe charges of
// IndexProbeCost each, one DRAM read per served position, ...), so equality
// proves the batching changed nothing.
func TestRunChargeEquivalence(t *testing.T) {
	const dim, n = 8, 50
	for _, shards := range []int{1, 8} {
		cfg := testConfig(dim, 1024, 256)
		cfg.Shards = shards
		meter := cfg.Meter
		e := newTestEngine(t, cfg)
		entryFloats := e.Config().EntryFloats()

		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i)
		}
		dst := make([]float32, n*dim)

		// Cold pull: every key is a first-touch creation.
		s0 := meter.Snapshot()
		if err := e.Pull(0, keys, dst); err != nil {
			t.Fatal(err)
		}
		d := meter.Snapshot().Sub(s0)
		dramW := device.DRAM().WriteCost(4 * entryFloats)
		dramR := device.DRAM().ReadCost(4 * dim)
		shardsTouched := int64(countShards(e, keys))
		checkCat(t, shards, "cold pull", d, simclock.Compute, n*psengine.IndexProbeCost, n)
		// One LockCost from Engine.Pull plus one per shard that created
		// entries (createMissing's exclusive-lock charge).
		checkCat(t, shards, "cold pull", d, simclock.LockSync, time.Duration(1+shardsTouched)*psengine.LockCost, 1+shardsTouched)
		checkCat(t, shards, "cold pull", d, simclock.DRAMWrite, n*dramW, n)
		checkCat(t, shards, "cold pull", d, simclock.DRAMRead, n*dramR, n)
		checkCat(t, shards, "cold pull", d, simclock.PMemRead, 0, 0)

		// Warm pull with duplicates: 2n positions over n DRAM-resident keys.
		dup := make([]uint64, 0, 2*n)
		dup = append(dup, keys...)
		dup = append(dup, keys...)
		big := make([]float32, 2*n*dim)
		s1 := meter.Snapshot()
		if err := e.Pull(1, dup, big); err != nil {
			t.Fatal(err)
		}
		d = meter.Snapshot().Sub(s1)
		checkCat(t, shards, "warm pull", d, simclock.Compute, 2*n*psengine.IndexProbeCost, 2*n)
		checkCat(t, shards, "warm pull", d, simclock.LockSync, psengine.LockCost, 1)
		checkCat(t, shards, "warm pull", d, simclock.DRAMRead, 2*n*dramR, 2*n)
		checkCat(t, shards, "warm pull", d, simclock.DRAMWrite, 0, 0)

		// Push: per key one probe + one optimizer apply + one DRAM store.
		e.EndPullPhase(1)
		e.WaitMaintenance()
		s2 := meter.Snapshot()
		if err := e.Push(1, keys, constGrads(n, dim, 1)); err != nil {
			t.Fatal(err)
		}
		d = meter.Snapshot().Sub(s2)
		checkCat(t, shards, "push", d, simclock.Compute, n*(psengine.IndexProbeCost+optimizerCost(dim)), 2*n)
		checkCat(t, shards, "push", d, simclock.LockSync, psengine.LockCost, 1)
		checkCat(t, shards, "push", d, simclock.DRAMWrite, n*device.DRAM().WriteCost(4*dim), n)
		e.Close()
	}
}

func countShards(e *Engine, keys []uint64) int {
	seen := map[int]bool{}
	for _, k := range keys {
		seen[e.shardIndex(k)] = true
	}
	return len(seen)
}

func checkCat(t *testing.T, shards int, phase string, d simclock.Snapshot, c simclock.Category, wantNS time.Duration, wantOps int64) {
	t.Helper()
	if got := d.Total(c); got != wantNS {
		t.Errorf("shards=%d %s: %v total = %v, want %v", shards, phase, c, got, wantNS)
	}
	if got := d.OpCount(c); got != wantOps {
		t.Errorf("shards=%d %s: %v ops = %d, want %d", shards, phase, c, got, wantOps)
	}
}

// TestPMemChargeEquivalentAcrossCoalescing pins the determinism half of the
// coalescing contract: the virtual PMem-read charge is per record regardless
// of how many records each physical ranged read covered, so a fully
// fragmented slot layout and a fully contiguous one charge identical virtual
// time for the same key set.
func TestPMemChargeEquivalentAcrossCoalescing(t *testing.T) {
	const dim, nKeys = 4, 16
	pull := func(interleave bool) (simclock.Snapshot, []float32) {
		cfg := testConfig(dim, 256, 1) // cache of one: everything flushes to PMem
		cfg.MaintThreads = 1           // deterministic flush (= slot) order
		meter := cfg.Meter
		e := newTestEngine(t, cfg)
		defer e.Close()
		// interleave=false creates keys 0..15 in one batch: flush order is
		// access order, so slots follow key order and the later sorted pull
		// coalesces into one chain. interleave=true creates evens then odds,
		// so consecutive keys sit ~8 slots apart and no chain forms.
		if interleave {
			for b, parity := range []uint64{0, 1} {
				keys := make([]uint64, 0, nKeys/2)
				for k := parity; k < nKeys; k += 2 {
					keys = append(keys, k)
				}
				runBatch(t, e, int64(b), keys, nil)
			}
		} else {
			keys := make([]uint64, nKeys)
			for i := range keys {
				keys[i] = uint64(i)
			}
			runBatch(t, e, 0, keys, nil)
		}
		// Evict the cache's one resident entry far from the probe set.
		runBatch(t, e, 2, []uint64{1 << 40}, nil)

		keys := make([]uint64, nKeys)
		for i := range keys {
			keys[i] = uint64(i)
		}
		dst := make([]float32, nKeys*dim)
		s := meter.Snapshot()
		if err := e.Pull(3, keys, dst); err != nil {
			t.Fatal(err)
		}
		if got := e.Stats().PMemReads; got != nKeys {
			t.Fatalf("interleave=%v: PMemReads = %d, want %d", interleave, got, nKeys)
		}
		return meter.Snapshot().Sub(s), dst
	}

	dContig, wContig := pull(false)
	dFrag, wFrag := pull(true)
	for i := range wContig {
		if wContig[i] != wFrag[i] {
			t.Fatalf("weights diverge at float %d: contiguous %v, fragmented %v", i, wContig[i], wFrag[i])
		}
	}
	if dContig != dFrag {
		t.Fatalf("virtual charges depend on slot adjacency:\ncontiguous %v\nfragmented %v", dContig, dFrag)
	}
	payload := pmem.FloatBytes(testConfig(dim, 1, 1).WithDefaults().EntryFloats())
	want := time.Duration(nKeys) * device.PMem().ReadCost(payload)
	if got := dContig.Total(simclock.PMemRead); got != want {
		t.Fatalf("PMem read charge = %v, want %v (%d records)", got, want, nKeys)
	}
	if got := dContig.OpCount(simclock.PMemRead); got != nKeys {
		t.Fatalf("PMem read ops = %d, want %d", got, nKeys)
	}
}

// TestRunCoalescingAcrossFragmentation drives the chain grouping in servePMem
// across every adjacency shape one batch can contain — singleton chains,
// mid-run breaks, and one maximal chain — and checks the served rows against
// an oracle engine that reads each key individually.
func TestRunCoalescingAcrossFragmentation(t *testing.T) {
	const dim, nKeys = 4, 32
	build := func() *Engine {
		cfg := testConfig(dim, 256, 1)
		cfg.MaintThreads = 1
		e := newTestEngine(t, cfg)
		// Three creation waves shuffle key-vs-slot order: keys {0,3,6,...},
		// then {1,4,7,...}, then {2,5,8,...}. A sorted pull of any key subset
		// then crosses fragmentation boundaries between the waves' slot
		// ranges while staying adjacent within a wave.
		for b := int64(0); b < 3; b++ {
			keys := make([]uint64, 0, nKeys/3+1)
			for k := uint64(b); k < nKeys; k += 3 {
				keys = append(keys, k)
			}
			runBatch(t, e, b, keys, constGrads(len(keys), dim, float32(b+1)/8))
		}
		runBatch(t, e, 3, []uint64{1 << 40}, nil) // evict the last resident
		return e
	}

	batched := build()
	defer batched.Close()
	oracle := build()
	defer oracle.Close()

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(nKeys)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(nKeys))
		}
		dst := make([]float32, n*dim)
		if err := batched.Pull(4, keys, dst); err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			row := make([]float32, dim)
			if err := oracle.Pull(4, []uint64{k}, row); err != nil {
				t.Fatal(err)
			}
			for d := 0; d < dim; d++ {
				if dst[i*dim+d] != row[d] {
					t.Fatalf("trial %d key %d dim %d: batched %v, oracle %v", trial, k, d, dst[i*dim+d], row[d])
				}
			}
		}
	}
}

// TestPullPushZeroAllocs pins the hot-path allocation budget at zero for both
// shard counts: the fan-out frame lives in pooled scratch and the run sweep
// reuses its lanes, so steady-state Pull and Push never touch the heap.
func TestPullPushZeroAllocs(t *testing.T) {
	if lockRankDebug {
		t.Skip("-tags oedebug: runtime lock-rank checks allocate by design")
	}
	if raceEnabled {
		t.Skip("-race: detector instrumentation allocates")
	}
	const dim, batchLen = 16, 64
	for _, shards := range []int{1, 8} {
		cfg := psengine.Config{
			Dim:          dim,
			Capacity:     4096,
			CacheEntries: 2048,
			Shards:       shards,
			MaintThreads: 2,
		}
		e := newTestEngine(t, cfg)
		keys := make([]uint64, batchLen)
		rng := rand.New(rand.NewSource(3))
		for i := range keys {
			keys[i] = uint64(rng.Intn(1024))
		}
		dst := make([]float32, batchLen*dim)
		grads := constGrads(batchLen, dim, 0.1)

		// Warm: create every entry, populate the scratch/goroutine pools, and
		// pre-grow the access queues past their doubling thresholds.
		batch := int64(0)
		for ; batch < 8; batch++ {
			runBatch(t, e, batch, keys, grads)
		}

		if avg := testing.AllocsPerRun(100, func() {
			if err := e.Pull(batch, keys, dst); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("shards=%d: Pull allocates %v/op, want 0", shards, avg)
		}
		e.EndPullPhase(batch)
		e.WaitMaintenance()
		if avg := testing.AllocsPerRun(100, func() {
			if err := e.Push(batch, keys, grads); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("shards=%d: Push allocates %v/op, want 0", shards, avg)
		}
		e.Close()
	}
}
