package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/cache"
	"openembedding/internal/obs"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// accessRec is one access-queue element: the entry a pull touched plus
// whether that pull served it from PMem. The flag lets maintenance promotion
// attribute its PMem read correctly: a promotion triggered by a miss re-reads
// data the pull already fetched (and counted), so the stat is not charged
// twice for one logical fetch. Since the run sweep dedups a batch's repeated
// keys, each unique key a shard call touches contributes exactly one record.
type accessRec struct {
	ent      *entry
	fromPMem bool
}

// missRun is one first-touch key's run in a sorted position sublist:
// idxs[start:end] are the batch positions carrying the key, rec indexes the
// placeholder in the shard call's access-record list that createMissing
// fills once the entry exists.
type missRun struct {
	start, end int32
	rec        int32
}

// pmemRun is one PMem-resident key's run, deferred by the sweep so that
// consecutive runs whose records sit in adjacent arena slots can be served
// by a single coalesced verified read.
type pmemRun struct {
	ent        *entry
	start, end int32
}

// shard owns one slice of the key space: its own index map, reader/writer
// lock, intrusive LRU list, access queue and side queue. Request threads on
// different shards never contend, and each shard's maintenance is an
// independent task, so MaintThreads maintainers genuinely run in parallel.
//
// The paper's single reader/writer lock (Alg. 1 line 3, Alg. 2 line 9)
// becomes one lock per shard; the locking discipline within a shard is
// unchanged: request threads hold mu shared, maintenance holds it exclusive.
type shard struct {
	eng *Engine
	id  int

	// mu is the shard's reader/writer lock: request threads hold it shared,
	// cache maintenance holds it exclusive.
	//
	// oevet:lockrank core.shard.mu 10
	mu    rankedRWMutex
	index map[uint64]*entry
	lru   *cache.List[*entry]

	// stripes serialize concurrent pushes to the same entry within the
	// push phase (several workers can carry gradients for one hot key).
	//
	// oevet:lockrank core.shard.stripe 15
	stripes [64]sync.Mutex

	// accessQ collects the entries each pull touched (Alg. 1 line 17).
	accessQ cache.Queue[accessRec]

	// sideQ collects entries Push promoted inline (cache smaller than one
	// batch's working set); EndBatch links them into the LRU.
	sideQ cache.Queue[*entry]

	// capacity is this shard's slice of the DRAM cache budget.
	capacity int

	// scrubCursor is the last key the background scrubber verified in this
	// shard; the next round resumes just past it (wrapping), so a full pass
	// completes every ceil(entries/budget) rounds. Guarded by mu.
	scrubCursor uint64

	// scrubKeys caches the sorted-key snapshot the scrubber walks, rebuilt
	// lazily when scrubKeysStale records an index insert or delete — the
	// background step must not re-sort the whole key set under the
	// exclusive lock every maintenance round. Both guarded by mu.
	scrubKeys      []uint64
	scrubKeysStale bool

	// evictObs counts this shard's LRU evictions for the obs registry
	// (nil, and therefore free, when obs is disabled).
	evictObs *obs.Counter

	// snap is the shard's published serve snapshot (serve.go): loaded
	// lock-free by serving threads, stored only under the exclusive lock.
	// snapStale (guarded by mu) records a hot-set membership change since
	// the last publication and forces the next rebuild to be full;
	// snapEpoch (guarded by mu) numbers full rebuilds.
	snap      atomic.Pointer[shardSnap]
	snapStale bool
	snapEpoch uint64

	// serveQ collects keys the serve fallback read from PMem, awaiting
	// promotion by RefreshServeSnapshots. Internally locked leaf.
	serveQ serveQueue
}

// fanOutRow copies the row already written at position i of dst to every
// other position of its run — the duplicate keys of a Zipf batch are served
// by one tier read and dim-float DRAM copies.
func fanOutRow(dst []float32, dim, i int, rest []int32) {
	if len(rest) == 0 {
		return
	}
	src := dst[i*dim : (i+1)*dim]
	for _, p := range rest {
		copy(dst[int(p)*dim:(int(p)+1)*dim], src)
	}
}

// pull serves this shard's portion of a Pull: idxs lists the positions in
// keys/dst that hash here (the single-shard path passes every position).
//
// The sweep is run-structured: idxs is sorted by (key, position), so a key
// pulled k times in one batch becomes one run — one index probe, one tier
// read, and k-1 in-DRAM fan-out copies — and the per-key meter charge
// becomes one batched ChargeN per sublist. PMem-resident runs are deferred
// and served together so adjacent-slot records coalesce into ranged
// verified reads (servePMem). Scratch slices come from sc at the given lane
// (one lane per shard, so concurrent shard pulls of one request never share
// a buffer).
func (s *shard) pull(batch int64, keys []uint64, idxs []int32, dst []float32, sc *opScratch, lane int) error {
	e := s.eng
	dim := e.cfg.Dim
	recs := sc.recs[lane][:0]
	miss := sc.miss[lane][:0]
	runs := sc.pmem[lane][:0]
	defer func() {
		// Hand the (possibly grown) buffers back to the scratch lane.
		sc.recs[lane], sc.miss[lane], sc.pmem[lane] = recs, miss, runs
	}()

	n := len(idxs)
	sc.sortBuf[lane] = sortPosByKey(idxs, keys, sc.sortBuf[lane])
	// One probe charge per sublist instead of one atomic RMW per key; the
	// totals and op counts are exactly n per-key charges' (dedup does not
	// discount the probe cost — the paper's request handling hashes every
	// batch element before the index can collapse duplicates).
	e.cfg.Meter.ChargeN(simclock.Compute, time.Duration(n)*psengine.IndexProbeCost, int64(n))

	var hits int64
	s.mu.RLock()
	for start := 0; start < n; {
		i := int(idxs[start])
		k := keys[i]
		end := start + 1
		for end < n && keys[idxs[end]] == k {
			end++
		}
		ent := s.index[k]
		switch {
		case ent == nil:
			miss = append(miss, missRun{start: int32(start), end: int32(end), rec: int32(len(recs))}) //oevet:alloc-ok appends into a pooled scratch lane: capacity persists across batches, steady state never grows
			recs = append(recs, accessRec{})                                                          // placeholder; createMissing fills it
		case ent.inDRAM():
			copy(dst[i*dim:(i+1)*dim], ent.weights(dim))
			fanOutRow(dst, dim, i, idxs[start+1:end])
			hits += int64(end - start)
			recs = append(recs, accessRec{ent: ent}) //oevet:alloc-ok appends into a pooled scratch lane: capacity persists across batches, steady state never grows
		default:
			runs = append(runs, pmemRun{ent: ent, start: int32(start), end: int32(end)}) //oevet:alloc-ok appends into a pooled scratch lane: capacity persists across batches, steady state never grows
			recs = append(recs, accessRec{ent: ent, fromPMem: true})
		}
		start = end
	}
	var dup int64
	var err error
	if len(runs) > 0 {
		dup, err = s.servePMem(runs, idxs, dst, sc.obsSample)
	}
	s.mu.RUnlock()
	if hits+dup > 0 {
		// DRAM-served positions: direct hits plus the duplicate positions of
		// PMem-served keys, which are in-DRAM copies of the run's first row
		// (they charge a DRAM read each, never a second PMem read).
		e.dram.ChargeReadN(4*dim, hits+dup)
		e.hits.Add(hits + dup)
	}
	if err != nil {
		return err
	}

	// First-epoch path (Alg. 1 lines 6-12): create entries under the
	// exclusive lock, then serve them.
	if len(miss) > 0 {
		if err := s.createMissing(batch, keys, idxs, miss, recs, dst); err != nil {
			return err
		}
	}
	s.accessQ.Push(recs...) // Push copies, so the scratch slice is reusable
	return nil
}

// servePMem serves the PMem-resident runs the sweep deferred. Runs arrive
// in sorted-key order; maximal chains of consecutive arena slots are served
// by one ranged verified read each (one bounds check, one crash-lock
// acquisition, one sequential CRC32C sweep over the contiguous bytes),
// decoding each payload straight from the device view into dst — no
// intermediate copy. Chain shape only changes wall-clock cost: the virtual
// charge is per record (ReadPayloadsVerified's charge-equivalence
// invariant), so simulated time never depends on the nondeterministic slot
// adjacency the maintainers happened to produce.
//
// Caller holds s.mu shared, which keeps ent.slot stable (flushes that move
// a record run under the exclusive lock). Returns the number of duplicate
// positions fanned out in DRAM.
func (s *shard) servePMem(runs []pmemRun, idxs []int32, dst []float32, sampled bool) (int64, error) {
	e := s.eng
	dim := e.cfg.Dim
	var dup, reads int64
	var missStart time.Duration
	for g := 0; g < len(runs); {
		h := g + 1
		for h < len(runs) && runs[h].ent.slot == runs[h-1].ent.slot+1 {
			h++
		}
		if sampled {
			missStart = e.obs.Now()
		}
		served := 0
		err := e.arena.ReadPayloadsVerified(runs[g].ent.slot, h-g,
			func(i int) uint64 { return runs[g+i].ent.key }, //oevet:alloc-ok both callbacks run synchronously inside ReadPayloadsVerified and do not escape; the 0-alloc benchmark gate verifies
			func(i int, payload []byte) {
				r := runs[g+i]
				p := int(idxs[r.start])
				pmem.DecodeFloats(dst[p*dim:(p+1)*dim], payload)
				fanOutRow(dst, dim, p, idxs[r.start+1:r.end])
				dup += int64(r.end - r.start - 1)
				served++
			})
		reads += int64(served)
		if err != nil {
			if reads > 0 {
				e.pmemReads.Add(reads)
				e.misses.Add(reads)
			}
			if pmem.IsIntegrity(err) {
				e.obs.CorruptServe.Add(1)
				err = fmt.Errorf("core: pull of key %d: %w", runs[g+served].ent.key, err)
			}
			return dup, err
		}
		if sampled {
			e.obs.MissService.Observe(e.obs.Now() - missStart)
		}
		g = h
	}
	e.pmemReads.Add(reads)
	e.misses.Add(reads)
	return dup, nil
}

// createMissing creates first-touch entries under the shard's exclusive
// lock, filling their placeholder access records and serving their weights
// (fanned out to every duplicate position of each run).
func (s *shard) createMissing(batch int64, keys []uint64, idxs []int32, miss []missRun, recs []accessRec, dst []float32) error {
	e := s.eng
	dim := e.cfg.Dim
	e.cfg.Meter.Charge(simclock.LockSync, psengine.LockCost)
	var created, copies int64
	s.mu.Lock()
	for _, m := range miss {
		i := int(idxs[m.start])
		k := keys[i]
		ent := s.index[k]
		if ent == nil {
			// Global capacity is a single atomic reservation so shards never
			// need each other's locks to enforce it.
			if n := e.entries.Add(1); n > int64(e.cfg.Capacity) {
				e.entries.Add(-1)
				s.mu.Unlock()
				e.dram.ChargeWriteN(4*e.cfg.EntryFloats(), created)
				e.dram.ChargeReadN(4*dim, copies)
				e.hits.Add(copies)
				return fmt.Errorf("%w: %d entries", psengine.ErrCapacity, n-1)
			}
			// A fresh entry's initial state is the state as of the end of
			// the previous batch: stamping batch-1 keeps data versions
			// unique even when the entry is flushed (tiny cache) and then
			// pushed within its creation batch.
			ent = &entry{key: k, version: batch, dataVersion: batch - 1, slot: noSlot, dirty: true}
			ent.node.Value = ent
			ent.buf = make([]float32, e.cfg.EntryFloats())
			e.cfg.Initializer(k, ent.weights(dim))
			e.cfg.Optimizer.InitState(ent.state(dim))
			created++
			s.index[k] = ent
			s.scrubKeysStale = true
		}
		recs[m.rec] = accessRec{ent: ent}
		copy(dst[i*dim:(i+1)*dim], ent.weights(dim))
		fanOutRow(dst, dim, i, idxs[m.start+1:m.end])
		copies += int64(m.end - m.start)
	}
	s.mu.Unlock()
	e.dram.ChargeWriteN(4*e.cfg.EntryFloats(), created)
	e.dram.ChargeReadN(4*dim, copies)
	e.hits.Add(copies)
	return nil
}

// push applies this shard's portion of a Push: idxs as in pull, sorted by
// (key, position) so each key's gradients form one run applied under a
// single stripe acquisition — in batch-position order, because float
// optimizer updates do not commute.
func (s *shard) push(batch int64, keys []uint64, idxs []int32, grads []float32, sc *opScratch, lane int) error {
	e := s.eng
	dim := e.cfg.Dim
	n := len(idxs)
	sc.sortBuf[lane] = sortPosByKey(idxs, keys, sc.sortBuf[lane])
	e.cfg.Meter.ChargeN(simclock.Compute, time.Duration(n)*psengine.IndexProbeCost, int64(n))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for start := 0; start < n; {
		k := keys[idxs[start]]
		end := start + 1
		for end < n && keys[idxs[end]] == k {
			end++
		}
		ent := s.index[k]
		if ent == nil {
			return fmt.Errorf("core: push of unknown key %d", k)
		}
		stripe := &s.stripes[k%uint64(len(s.stripes))]
		stripe.Lock()
		if !ent.inDRAM() {
			// Fallback for caches smaller than one batch's working set:
			// promote inline (charged as a PMem read) and let EndBatch link
			// the entry into the LRU. This is a genuine extra device read
			// (the entry was evicted after the pull), so it is counted.
			if err := e.promoteLocked(ent, true); err != nil {
				stripe.Unlock()
				return err
			}
			s.sideQ.Push(ent)
		}
		for _, p := range idxs[start:end] {
			i := int(p)
			e.cfg.Optimizer.Apply(ent.weights(dim), ent.state(dim), grads[i*dim:(i+1)*dim])
		}
		ent.dirty = true
		ent.dataVersion = batch
		s.markServeDirty(ent)
		stripe.Unlock()
		start = end
	}
	// One batched charge per sublist for the DRAM stores and optimizer math
	// — totals and op counts identical to the per-position accounting.
	e.dram.ChargeWriteN(4*dim, int64(n))
	e.cfg.Meter.ChargeN(simclock.Compute, time.Duration(n)*optimizerCost(dim), int64(n))
	return nil
}
