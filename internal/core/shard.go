package core

import (
	"fmt"
	"sync"

	"openembedding/internal/cache"
	"openembedding/internal/obs"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// accessRec is one access-queue element: the entry a pull touched plus
// whether that pull served it from PMem. The flag lets maintenance promotion
// attribute its PMem read correctly: a promotion triggered by a miss re-reads
// data the pull already fetched (and counted), so the stat is not charged
// twice for one logical fetch.
type accessRec struct {
	ent      *entry
	fromPMem bool
}

// shard owns one slice of the key space: its own index map, reader/writer
// lock, intrusive LRU list, access queue and side queue. Request threads on
// different shards never contend, and each shard's maintenance is an
// independent task, so MaintThreads maintainers genuinely run in parallel.
//
// The paper's single reader/writer lock (Alg. 1 line 3, Alg. 2 line 9)
// becomes one lock per shard; the locking discipline within a shard is
// unchanged: request threads hold mu shared, maintenance holds it exclusive.
type shard struct {
	eng *Engine
	id  int

	// mu is the shard's reader/writer lock: request threads hold it shared,
	// cache maintenance holds it exclusive.
	//
	// oevet:lockrank core.shard.mu 10
	mu    rankedRWMutex
	index map[uint64]*entry
	lru   *cache.List[*entry]

	// stripes serialize concurrent pushes to the same entry within the
	// push phase (several workers can carry gradients for one hot key).
	//
	// oevet:lockrank core.shard.stripe 15
	stripes [64]sync.Mutex

	// accessQ collects the entries each pull touched (Alg. 1 line 17).
	accessQ cache.Queue[accessRec]

	// sideQ collects entries Push promoted inline (cache smaller than one
	// batch's working set); EndBatch links them into the LRU.
	sideQ cache.Queue[*entry]

	// capacity is this shard's slice of the DRAM cache budget.
	capacity int

	// scrubCursor is the last key the background scrubber verified in this
	// shard; the next round resumes just past it (wrapping), so a full pass
	// completes every ceil(entries/budget) rounds. Guarded by mu.
	scrubCursor uint64

	// scrubKeys caches the sorted-key snapshot the scrubber walks, rebuilt
	// lazily when scrubKeysStale records an index insert or delete — the
	// background step must not re-sort the whole key set under the
	// exclusive lock every maintenance round. Both guarded by mu.
	scrubKeys      []uint64
	scrubKeysStale bool

	// evictObs counts this shard's LRU evictions for the obs registry
	// (nil, and therefore free, when obs is disabled).
	evictObs *obs.Counter
}

// pull serves this shard's portion of a Pull: idxs lists the positions in
// keys/dst that hash here (nil means every position — the single-shard fast
// path). Scratch slices come from sc at the given lane (one lane per shard,
// so concurrent shard pulls of one request never share a buffer).
func (s *shard) pull(batch int64, keys []uint64, idxs []int32, dst []float32, sc *opScratch, lane int) error {
	e := s.eng
	dim := e.cfg.Dim
	meter := e.cfg.Meter
	recs := sc.recs[lane][:0]
	missing := sc.missing[lane][:0]
	defer func() {
		// Hand the (possibly grown) buffers back to the scratch lane.
		sc.recs[lane], sc.missing[lane] = recs, missing
	}()

	n := len(keys)
	if idxs != nil {
		n = len(idxs)
	}
	s.mu.RLock()
	for j := 0; j < n; j++ {
		i := j
		if idxs != nil {
			i = int(idxs[j])
		}
		meter.Charge(simclock.Compute, psengine.IndexProbeCost)
		ent := s.index[keys[i]]
		if ent == nil {
			missing = append(missing, int32(j))
			recs = append(recs, accessRec{}) // placeholder; createMissing fills it
			continue
		}
		fromPMem, err := e.readWeights(ent, dst[i*dim:(i+1)*dim], sc.obsSample)
		if err != nil {
			s.mu.RUnlock()
			return err
		}
		recs = append(recs, accessRec{ent: ent, fromPMem: fromPMem})
	}
	s.mu.RUnlock()

	// First-epoch path (Alg. 1 lines 6-12): create entries under the
	// exclusive lock, then serve them.
	if len(missing) > 0 {
		if err := s.createMissing(batch, keys, idxs, missing, recs, dst); err != nil {
			return err
		}
	}
	s.accessQ.Push(recs...) // Push copies, so the scratch slice is reusable
	return nil
}

// createMissing creates first-touch entries under the shard's exclusive
// lock, filling their placeholder access records and serving their weights.
func (s *shard) createMissing(batch int64, keys []uint64, idxs []int32, missing []int32, recs []accessRec, dst []float32) error {
	e := s.eng
	dim := e.cfg.Dim
	e.cfg.Meter.Charge(simclock.LockSync, psengine.LockCost)
	s.mu.Lock()
	for _, j32 := range missing {
		j := int(j32)
		i := j
		if idxs != nil {
			i = int(idxs[j])
		}
		k := keys[i]
		ent := s.index[k]
		if ent == nil {
			// Global capacity is a single atomic reservation so shards never
			// need each other's locks to enforce it.
			if n := e.entries.Add(1); n > int64(e.cfg.Capacity) {
				e.entries.Add(-1)
				s.mu.Unlock()
				return fmt.Errorf("%w: %d entries", psengine.ErrCapacity, n-1)
			}
			// A fresh entry's initial state is the state as of the end of
			// the previous batch: stamping batch-1 keeps data versions
			// unique even when the entry is flushed (tiny cache) and then
			// pushed within its creation batch.
			ent = &entry{key: k, version: batch, dataVersion: batch - 1, slot: noSlot, dirty: true}
			ent.node.Value = ent
			ent.buf = make([]float32, e.cfg.EntryFloats())
			e.cfg.Initializer(k, ent.weights(dim))
			e.cfg.Optimizer.InitState(ent.state(dim))
			e.dram.ChargeWrite(4 * e.cfg.EntryFloats())
			s.index[k] = ent
			s.scrubKeysStale = true
		}
		recs[j] = accessRec{ent: ent}
		copy(dst[i*dim:(i+1)*dim], ent.weights(dim))
		e.dram.ChargeRead(4 * dim)
		e.hits.Add(1)
	}
	s.mu.Unlock()
	return nil
}

// push applies this shard's portion of a Push (idxs as in pull).
func (s *shard) push(batch int64, keys []uint64, idxs []int32, grads []float32) error {
	e := s.eng
	dim := e.cfg.Dim
	meter := e.cfg.Meter
	n := len(keys)
	if idxs != nil {
		n = len(idxs)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for j := 0; j < n; j++ {
		i := j
		if idxs != nil {
			i = int(idxs[j])
		}
		k := keys[i]
		meter.Charge(simclock.Compute, psengine.IndexProbeCost)
		ent := s.index[k]
		if ent == nil {
			return fmt.Errorf("core: push of unknown key %d", k)
		}
		stripe := &s.stripes[k%uint64(len(s.stripes))]
		stripe.Lock()
		if !ent.inDRAM() {
			// Fallback for caches smaller than one batch's working set:
			// promote inline (charged as a PMem read) and let EndBatch link
			// the entry into the LRU. This is a genuine extra device read
			// (the entry was evicted after the pull), so it is counted.
			if err := e.promoteLocked(ent, true); err != nil {
				stripe.Unlock()
				return err
			}
			s.sideQ.Push(ent)
		}
		e.cfg.Optimizer.Apply(ent.weights(dim), ent.state(dim), grads[i*dim:(i+1)*dim])
		ent.dirty = true
		ent.dataVersion = batch
		stripe.Unlock()
		e.dram.ChargeWrite(4 * dim)
		meter.Charge(simclock.Compute, optimizerCost(dim))
	}
	return nil
}
