package core

import (
	"math/rand"
	"testing"

	"openembedding/internal/optim"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// TestRecoveryReplayEquivalence is the end-to-end guarantee users care
// about: crash, recover to the checkpoint, replay the lost batches — the
// final model must be BIT-IDENTICAL to a run that never crashed. This only
// holds if recovery restores optimizer state (AdaGrad accumulators) too,
// since the records carry weights and state together.
func TestRecoveryReplayEquivalence(t *testing.T) {
	cfg := psengine.Config{
		Dim:          4,
		Optimizer:    optim.NewAdaGrad(0.1), // stateful: the hard case
		Capacity:     256,
		CacheEntries: 6, // tiny cache: constant PMem churn
		Meter:        simclock.NewMeter(),
	}

	type step struct {
		keys  []uint64
		grads []float32
	}
	rng := rand.New(rand.NewSource(123))
	var script []step
	for b := 0; b < 24; b++ {
		n := 2 + rng.Intn(4)
		seen := map[uint64]bool{}
		keys := make([]uint64, 0, n)
		for len(keys) < n {
			k := uint64(rng.Intn(40))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		grads := make([]float32, len(keys)*4)
		for i := range grads {
			grads[i] = float32(rng.NormFloat64())
		}
		script = append(script, step{keys, grads})
	}
	const ckptAt = 11

	// Run A: uninterrupted.
	engA := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, engA, int64(b), s.keys, s.grads)
		if b == ckptAt {
			if err := engA.RequestCheckpoint(int64(b)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Run B: crash after the last batch, recover to the checkpoint, replay
	// batches ckptAt+1.. from the script.
	engB := newTestEngine(t, cfg)
	for b, s := range script {
		runBatch(t, engB, int64(b), s.keys, s.grads)
		if b == ckptAt {
			if err := engB.RequestCheckpoint(int64(b)); err != nil {
				t.Fatal(err)
			}
		}
	}
	dev := engB.Arena().Device()
	engB.Close()
	dev.Crash()
	rec, ckpt, err := Recover(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if ckpt != ckptAt {
		t.Fatalf("recovered to %d, want %d", ckpt, ckptAt)
	}
	for b := ckptAt + 1; b < len(script); b++ {
		s := script[b]
		runBatch(t, rec, int64(b), s.keys, s.grads)
	}

	// Every key's weights must match bit-exactly.
	for k := uint64(0); k < 40; k++ {
		a := make([]float32, 4)
		bvals := make([]float32, 4)
		errA := engA.Pull(1000, []uint64{k}, a)
		errB := rec.Pull(1000, []uint64{k}, bvals)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("key %d presence differs after replay", k)
		}
		for d := range a {
			if a[d] != bvals[d] {
				t.Fatalf("key %d[%d]: uninterrupted %v vs crash+replay %v (optimizer state lost?)",
					k, d, a[d], bvals[d])
			}
		}
	}
}
