package core

import (
	"math/rand"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/pmem"
)

// TestRandomizedCrashRecoveryProperty is the repository's strongest
// correctness check: random synchronous training with checkpoints at
// random batches and power failures at random points, across many cache
// sizes. After every crash, the recovered store must expose EXACTLY the
// oracle's state at the last completed checkpoint — never a torn value,
// never a post-checkpoint write, never a missing pre-checkpoint one.
func TestRandomizedCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := testConfig(4, 512, 2+rng.Intn(24)) // cache from tiny to roomy
			eng := newTestEngine(t, cfg)
			orc := newOracle(cfg)

			const keySpace = 64
			var lastCkptRequested int64 = -1
			batch := int64(0)

			runOne := func() {
				n := 1 + rng.Intn(6)
				seen := map[uint64]bool{}
				keys := make([]uint64, 0, n)
				for len(keys) < n {
					k := uint64(rng.Intn(keySpace))
					if !seen[k] {
						seen[k] = true
						keys = append(keys, k)
					}
				}
				grads := make([]float32, len(keys)*cfg.Dim)
				for i := range grads {
					grads[i] = float32(rng.NormFloat64())
				}
				for _, k := range keys {
					orc.touch(k)
				}
				runBatch(t, eng, batch, keys, grads)
				orc.push(keys, grads)
				orc.snapshot(batch)
				batch++
			}

			for round := 0; round < 3; round++ {
				steps := 5 + rng.Intn(15)
				for i := 0; i < steps; i++ {
					runOne()
					if rng.Intn(5) == 0 {
						if err := eng.RequestCheckpoint(batch - 1); err != nil {
							t.Fatal(err)
						}
						lastCkptRequested = batch - 1
					}
				}
				_ = lastCkptRequested

				// Crash at an arbitrary moment (possibly with checkpoints
				// still pending — those must simply not count).
				completed := eng.CompletedCheckpoint()
				dev := eng.Arena().Device()
				eng.Close()
				dev.Crash()

				workers := 1 + rng.Intn(4)
				rec, gotCkpt, err := RecoverParallel(cfg, dev, workers)
				if err != nil {
					t.Fatalf("seed %d round %d: recover: %v", seed, round, err)
				}
				if gotCkpt != completed {
					t.Fatalf("seed %d: recovered to %d, completed was %d", seed, gotCkpt, completed)
				}

				if completed < 0 {
					if n := rec.Stats().Entries; n != 0 {
						t.Fatalf("seed %d: no checkpoint but recovered %d entries", seed, n)
					}
				} else {
					want := orc.history[completed]
					// Recovery may legitimately include entries *born* in
					// the batch right after the checkpoint (their init
					// state is "as of the checkpoint's end") — but those
					// extras must hold exactly their deterministic init
					// values, and every oracle key must be present.
					for _, k := range rec.Keys() {
						got := make([]float32, cfg.Dim)
						if err := rec.Pull(completed+1, []uint64{k}, got); err != nil {
							t.Fatalf("pull recovered key %d: %v", k, err)
						}
						exp, inOracle := want[k]
						if !inOracle {
							exp = make([]float32, cfg.Dim)
							cfg.WithDefaults().Initializer(k, exp)
						}
						for d := range exp {
							if got[d] != exp[d] {
								t.Fatalf("seed %d round %d: key %d[%d] = %v, want %v (ckpt %d, inOracle=%v)",
									seed, round, k, d, got[d], exp[d], completed, inOracle)
							}
						}
					}
					if int64(len(want)) > rec.Stats().Entries {
						t.Fatalf("seed %d: recovered %d entries, oracle needs %d at batch %d",
							seed, rec.Stats().Entries, len(want), completed)
					}
					// And every oracle key must be present with the oracle's
					// value (a missing key would be recreated at init and
					// mismatch here).
					for k, exp := range want {
						got := make([]float32, cfg.Dim)
						if err := rec.Pull(completed+1, []uint64{k}, got); err != nil {
							t.Fatalf("pull oracle key %d: %v", k, err)
						}
						for d := range exp {
							if got[d] != exp[d] {
								t.Fatalf("seed %d round %d: oracle key %d[%d] = %v, want %v",
									seed, round, k, d, got[d], exp[d])
							}
						}
					}
					// The pulls above must not disturb recovered state:
					// seal them so the next round's batches are valid.
					rec.EndPullPhase(completed + 1)
					if err := rec.EndBatch(completed + 1); err != nil {
						t.Fatal(err)
					}
				}

				// Resume: the recovered engine becomes the engine under
				// test, the oracle rewinds to the checkpoint.
				eng = rec
				t.Cleanup(func() { rec.Close() })
				batch = completed + 2
				if completed >= 0 {
					orc.rewindTo(completed)
				} else {
					orc = newOracle(cfg)
				}
			}
		})
	}
}

// rewindTo resets the oracle's live state to its snapshot at batch (what
// recovery does to the engine).
func (o *oracle) rewindTo(batch int64) {
	snap := o.history[batch]
	o.weights = map[uint64][]float32{}
	o.state = map[uint64][]float32{}
	for k, w := range snap {
		cp := make([]float32, len(w))
		copy(cp, w)
		o.weights[k] = cp
	}
	// Optimizer state is SGD (stateless) in these property tests; AdaGrad
	// state would need snapshotting too.
	for k := range snap {
		o.state[k] = make([]float32, o.cfg.Optimizer.StateFloats(o.cfg.Dim))
		o.cfg.Optimizer.InitState(o.state[k])
	}
}

// TestParallelRecoveryMatchesSequential: both recovery paths must produce
// identical stores.
func TestParallelRecoveryMatchesSequential(t *testing.T) {
	cfg := testConfig(4, 256, 8)
	build := func() *pmem.Device {
		eng := newTestEngine(t, cfg)
		rng := rand.New(rand.NewSource(77))
		for b := int64(0); b < 20; b++ {
			keys := []uint64{uint64(rng.Intn(50)), uint64(50 + rng.Intn(50))}
			grads := make([]float32, len(keys)*cfg.Dim)
			for i := range grads {
				grads[i] = float32(rng.NormFloat64())
			}
			runBatch(t, eng, b, keys, grads)
			if b == 15 {
				if err := eng.RequestCheckpoint(b); err != nil {
					t.Fatal(err)
				}
			}
		}
		dev := eng.Arena().Device()
		eng.Close()
		dev.Crash()
		return dev
	}

	devSeq, devPar := build(), build()
	seq, ckptSeq, err := Recover(cfg, devSeq)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	par, ckptPar, err := RecoverParallel(cfg, devPar, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if ckptSeq != ckptPar || ckptSeq != 15 {
		t.Fatalf("checkpoints differ: %d vs %d", ckptSeq, ckptPar)
	}
	if seq.Stats().Entries != par.Stats().Entries {
		t.Fatalf("entry counts differ: %d vs %d", seq.Stats().Entries, par.Stats().Entries)
	}
	for k := uint64(0); k < 100; k++ {
		a := make([]float32, cfg.Dim)
		b := make([]float32, cfg.Dim)
		errA := seq.Pull(16, []uint64{k}, a)
		errB := par.Pull(16, []uint64{k}, b)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("key %d presence differs", k)
		}
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("key %d[%d]: sequential %v vs parallel %v", k, d, a[d], b[d])
			}
		}
	}
}

// TestPushDoesNotReorderLRU pins design decision 2 (Sec. V-B): the entries
// pulled and pushed in a batch are the same, so push skips the LRU — one
// reorder per key per batch, not two.
func TestPushDoesNotReorderLRU(t *testing.T) {
	cfg := testConfig(2, 64, 16)
	e := newTestEngine(t, cfg)

	keys := []uint64{1, 2, 3}
	runBatch(t, e, 0, keys, constGrads(3, 2, 1))

	order := func() []uint64 {
		var out []uint64
		for _, s := range e.shards {
			s.mu.RLock()
			s.lru.Each(func(ent *entry) bool {
				out = append(out, ent.key)
				return true
			})
			s.mu.RUnlock()
		}
		return out
	}
	before := order()

	// A push without a surrounding pull (legal, if unusual) must leave the
	// LRU order untouched.
	if err := e.Push(1, []uint64{3, 1}, constGrads(2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	after := order()
	if len(before) != len(after) {
		t.Fatalf("LRU length changed: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("push reordered LRU: %v -> %v", before, after)
		}
	}
}

// TestMaintenanceErrorSurfaces: when the arena cannot hold the retained
// versions a pending checkpoint needs, the failure must reach the caller
// at EndBatch, not vanish in a maintainer goroutine.
func TestMaintenanceErrorSurfaces(t *testing.T) {
	cfg := testConfig(2, 8, 2)
	cfg = cfg.WithDefaults()
	// An arena with exactly as many slots as entries: no headroom for
	// retained versions.
	payload := pmem.FloatBytes(cfg.EntryFloats())
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, 8), device.NewTimedPMem(cfg.Meter))
	arena, err := pmem.NewArena(dev, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	keys := []uint64{1, 2, 3, 4, 5, 6, 7}
	grads := constGrads(len(keys), 2, 1)
	var sawErr bool
	for b := int64(0); b < 40 && !sawErr; b++ {
		dst := make([]float32, len(keys)*2)
		if err := eng.Pull(b, keys, dst); err != nil {
			sawErr = true
			break
		}
		eng.EndPullPhase(b)
		eng.WaitMaintenance()
		if err := eng.Push(b, keys, grads); err != nil {
			sawErr = true
			break
		}
		if err := eng.EndBatch(b); err != nil {
			sawErr = true
			break
		}
		// Keep a checkpoint pending forever by requesting but crashing the
		// natural completion path: request each batch so retention grows.
		if b == 0 {
			if err := eng.RequestCheckpoint(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// With 7 keys in 8 slots and retention pressure the engine either
	// survives by reclaiming (fine) or surfaces ErrFull-wrapped errors —
	// it must never panic or deadlock. Reaching here is the assertion.
}
