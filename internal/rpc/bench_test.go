package rpc

import (
	"testing"

	"openembedding/internal/engines/dramps"
	"openembedding/internal/optim"
	"openembedding/internal/psengine"
)

func benchSetup(b *testing.B, opts Options) (*Client, []uint64, []float32) {
	b.Helper()
	eng, err := dramps.New(psengine.Config{
		Dim: 16, Optimizer: optim.NewSGD(0.1), Capacity: 1 << 16, CacheEntries: 1 << 16,
	}, dramps.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	srv, err := Serve("127.0.0.1:0", eng)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	cl, err := DialOpts(srv.Addr(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	grads := make([]float32, len(keys)*16)
	if _, err := cl.Pull(0, keys); err != nil {
		b.Fatal(err)
	}
	return cl, keys, grads
}

// BenchmarkClientPull measures the fault-free request path without retry
// machinery — the baseline the retry-enabled variant must stay within noise
// of.
func BenchmarkClientPull(b *testing.B) {
	cl, keys, _ := benchSetup(b, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Pull(0, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientPullRetryEnabled is the same request path with the retry
// policy and (idle) injection hooks armed: the fault-free overhead of fault
// tolerance.
func BenchmarkClientPullRetryEnabled(b *testing.B) {
	cl, keys, _ := benchSetup(b, Options{Retry: RetryPolicy{MaxAttempts: 3}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Pull(0, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientPush measures the mutating path, which additionally
// carries the clientID+seq pair and passes the server's dedup layer.
func BenchmarkClientPush(b *testing.B) {
	cl, keys, grads := benchSetup(b, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Push(0, keys, grads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientPushRetryEnabled: the mutating path with dedup sequence
// numbers active server-side.
func BenchmarkClientPushRetryEnabled(b *testing.B) {
	cl, keys, grads := benchSetup(b, Options{Retry: RetryPolicy{MaxAttempts: 3}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Push(0, keys, grads); err != nil {
			b.Fatal(err)
		}
	}
}
