package rpc

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/psengine"
)

// ServerOptions configures a Server.
type ServerOptions struct {
	// Obs, when set, receives server metrics: rpc_server_pull_ns /
	// rpc_server_push_ns / rpc_server_other_ns request-service histograms,
	// rpc_server_bytes_in/out, rpc_server_requests and the
	// rpc_server_conns gauge.
	Obs *obs.Registry
}

// Server exposes one storage engine (one shard) over TCP. Each accepted
// connection is served by its own goroutine; a worker that wants request
// parallelism opens several connections, as the paper's multi-threaded
// pull handlers do.
type Server struct {
	engine psengine.Engine
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	// metrics (nil, and free, without ServerOptions.Obs)
	reg      *obs.Registry
	pullNS   *obs.Histogram
	pushNS   *obs.Histogram
	otherNS  *obs.Histogram
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	requests *obs.Counter
	connsG   *obs.Gauge
}

// Serve starts a server for engine on addr ("127.0.0.1:0" picks a free
// port). The returned server is already accepting.
func Serve(addr string, engine psengine.Engine) (*Server, error) {
	return ServeOpts(addr, engine, ServerOptions{})
}

// ServeOpts starts a server with explicit options.
func ServeOpts(addr string, engine psengine.Engine, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	s := &Server{engine: engine, ln: ln, conns: make(map[net.Conn]struct{})}
	if reg := opts.Obs; reg != nil {
		s.reg = reg
		s.pullNS = reg.Histogram("rpc_server_pull_ns")
		s.pushNS = reg.Histogram("rpc_server_push_ns")
		s.otherNS = reg.Histogram("rpc_server_other_ns")
		s.bytesIn = reg.Counter("rpc_server_bytes_in")
		s.bytesOut = reg.Counter("rpc_server_bytes_out")
		s.requests = reg.Counter("rpc_server_requests")
		s.connsG = reg.Gauge("rpc_server_conns")
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.connsG.Add(1)
	defer func() {
		s.connsG.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	for {
		body, err := ReadFrame(br)
		if err != nil {
			return // EOF or broken conn
		}
		var start time.Duration
		if s.reg != nil {
			start = s.reg.Now()
		}
		resp := s.handle(body)
		if s.reg != nil {
			d := s.reg.Now() - start
			var t byte
			if len(body) > 0 {
				t = body[0]
			}
			switch t {
			case MsgPull:
				s.pullNS.Observe(d)
			case MsgPush:
				s.pushNS.Observe(d)
			default:
				s.otherNS.Observe(d)
			}
			s.requests.Add(1)
			s.bytesIn.Add(int64(len(body)) + 4)
			s.bytesOut.Add(int64(len(resp)) + 4)
		}
		if err := WriteFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// handle dispatches one request body and returns the response body.
func (s *Server) handle(body []byte) []byte {
	r := NewReader(body)
	t, err := r.Type()
	if err != nil {
		return ErrBody(err)
	}
	batch, err := r.I64()
	if err != nil {
		return ErrBody(err)
	}
	switch t {
	case MsgPull:
		keys, err := r.Keys()
		if err != nil {
			return ErrBody(err)
		}
		dst := make([]float32, len(keys)*s.engine.Dim())
		if err := s.engine.Pull(batch, keys, dst); err != nil {
			return ErrBody(err)
		}
		out := &Buffer{b: []byte{MsgData}}
		out.PutFloats(dst)
		return out.Bytes()
	case MsgPush:
		keys, err := r.Keys()
		if err != nil {
			return ErrBody(err)
		}
		grads, err := r.Floats()
		if err != nil {
			return ErrBody(err)
		}
		if err := s.engine.Push(batch, keys, grads); err != nil {
			return ErrBody(err)
		}
		return OKBody()
	case MsgEndPullPhase:
		s.engine.EndPullPhase(batch)
		return OKBody()
	case MsgEndBatch:
		if err := s.engine.EndBatch(batch); err != nil {
			return ErrBody(err)
		}
		return OKBody()
	case MsgCheckpoint:
		if err := s.engine.RequestCheckpoint(batch); err != nil {
			return ErrBody(err)
		}
		return OKBody()
	case MsgCompletedCkpt:
		out := &Buffer{b: []byte{MsgData}}
		out.PutI64(s.engine.CompletedCheckpoint())
		return out.Bytes()
	case MsgStats:
		st := s.engine.Stats()
		out := &Buffer{b: []byte{MsgData}}
		for _, v := range []int64{st.Entries, st.CachedEntries, st.Hits, st.Misses,
			st.PMemReads, st.PMemWrites, st.Evictions, st.CheckpointsDone} {
			out.PutI64(v)
		}
		return out.Bytes()
	case MsgPing:
		return OKBody()
	default:
		return ErrBody(fmt.Errorf("unknown message type 0x%02x", t))
	}
}

// Close stops accepting, closes live connections and waits for handlers.
// The engine is not closed; the caller owns it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// DecodeStats parses a MsgStats response payload.
func DecodeStats(r *Reader) (psengine.Stats, error) {
	var st psengine.Stats
	fields := []*int64{&st.Entries, &st.CachedEntries, &st.Hits, &st.Misses,
		&st.PMemReads, &st.PMemWrites, &st.Evictions, &st.CheckpointsDone}
	for _, f := range fields {
		v, err := r.I64()
		if err != nil {
			return st, err
		}
		*f = v
	}
	return st, nil
}
