package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/psengine"
)

// ServerOptions configures a Server.
type ServerOptions struct {
	// Epoch is the server's starting epoch. A node that recovers from a
	// crash restarts its server at a higher epoch, which fences every
	// client still synchronized to the old one.
	Epoch int64
	// Inject, when set, wraps accepted connections with the deterministic
	// fault injector (server-side wire faults: torn responses, resets,
	// drops). Nil leaves the hot path untouched.
	Inject *faultinject.Injector
	// Label is the injector stream label for this server's connections;
	// it defaults to "server".
	Label string
	// Rollback, when set, serves MsgRollback by rolling the node's engine
	// back to the requested checkpoint. Nil rejects rollback requests.
	Rollback func(target int64) error
	// Scrub, when set, serves MsgScrub by running one full integrity pass
	// over the node's persisted records. Nil rejects scrub requests.
	Scrub func() (psengine.ScrubReport, error)
	// Bags, when set, serves MsgPullBag (the serving tier's pooled
	// embedding-bag gather). Nil rejects bag requests with MsgErr; the
	// connection stays alive either way.
	Bags BagServer
	// Migrate, when set, serves MsgMigrateRange: export up to max entries
	// of the given hash intervals with dataVersion >= since and key >
	// afterKey, in ascending key order, with a more flag. Nil rejects
	// migration exports.
	Migrate func(since int64, afterKey uint64, max int, ivs []HashInterval) ([]MigEntry, bool, error)
	// Adopt, when set, serves MsgAdoptRange by installing migrated entries
	// (durably, before replying). Nil rejects adoptions.
	Adopt func(entries []MigEntry) error
	// Drop, when set, serves MsgDropRange by removing the intervals' keys
	// from the node's index, cache and durable records, returning how many
	// entries were dropped. Nil rejects drops.
	Drop func(ivs []HashInterval) (int, error)
	// Replicate, when set, serves MsgReplicate by installing read-only
	// serving replicas of the given rows. Nil rejects replication pushes.
	Replicate func(keys []uint64, rows []float32) error
	// Obs, when set, receives server metrics: rpc_server_pull_ns /
	// rpc_server_push_ns / rpc_server_other_ns request-service histograms,
	// rpc_server_bytes_in/out, rpc_server_requests, the rpc_server_conns
	// gauge, and the fault-tolerance counters rpc_server_epoch_rejects,
	// rpc_server_dedup_hits and rpc_server_deadline_abandoned.
	Obs *obs.Registry
}

// advancer is the optional engine hook the MsgCompletedCkpt handler drives:
// it lets a client's checkpoint-progress poll push background checkpoint
// finalization forward instead of waiting for the next batch.
type advancer interface{ AdvanceCheckpoints() error }

// dedupEntry caches one client's last mutating request outcome.
type dedupEntry struct {
	seq  int64
	resp []byte
}

// epochUnbound marks a connection that has not yet bound to an epoch: the
// first fenced request (or MsgHello) binds it. Legacy clients never send
// MsgHello and bind lazily to whatever epoch is current, so pre-fault-
// tolerance tooling keeps working against an un-crashed node.
const epochUnbound = int64(-2)

// Server exposes one storage engine (one shard) over TCP. Each accepted
// connection is served by its own goroutine; a worker that wants request
// parallelism opens several connections, as the paper's multi-threaded
// pull handlers do.
//
// The server carries an epoch: connections bind to it at handshake (or
// lazily, for legacy clients) and requests from a connection bound to an
// older epoch are rejected with MsgErrEpoch. A recovered node bumps the
// epoch (ps.Node.Restart), so no stale client can mutate recovered state.
// Mutating requests carrying a client sequence number are deduplicated:
// a retry of the last request replays the cached response.
type Server struct {
	engine    psengine.Engine
	ln        net.Listener
	epoch     atomic.Int64
	inject    *faultinject.Injector
	label     string
	rollback  func(target int64) error
	scrub     func() (psengine.ScrubReport, error)
	bags      BagServer
	migrate   func(since int64, afterKey uint64, max int, ivs []HashInterval) ([]MigEntry, bool, error)
	adopt     func(entries []MigEntry) error
	drop      func(ivs []HashInterval) (int, error)
	replicate func(keys []uint64, rows []float32) error

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	dedupMu sync.Mutex
	dedup   map[int64]dedupEntry // client ID -> last mutating request

	// metrics (nil, and free, without ServerOptions.Obs)
	reg          *obs.Registry
	pullNS       *obs.Histogram
	pushNS       *obs.Histogram
	otherNS      *obs.Histogram
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
	requests     *obs.Counter
	connsG       *obs.Gauge
	epochRejects *obs.Counter
	dedupHits    *obs.Counter
	abandoned    *obs.Counter

	// now is the wall clock used to measure a request's age against its
	// propagated deadline; tests override it to simulate queueing delay.
	now func() time.Time
}

// Serve starts a server for engine on addr ("127.0.0.1:0" picks a free
// port). The returned server is already accepting.
func Serve(addr string, engine psengine.Engine) (*Server, error) {
	return ServeOpts(addr, engine, ServerOptions{})
}

// ServeOpts starts a server with explicit options.
func ServeOpts(addr string, engine psengine.Engine, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	s := &Server{
		engine:    engine,
		ln:        ln,
		inject:    opts.Inject,
		label:     opts.Label,
		rollback:  opts.Rollback,
		scrub:     opts.Scrub,
		bags:      opts.Bags,
		migrate:   opts.Migrate,
		adopt:     opts.Adopt,
		drop:      opts.Drop,
		replicate: opts.Replicate,
		conns:     make(map[net.Conn]struct{}),
		now:       time.Now,
	}
	s.epoch.Store(opts.Epoch)
	if s.label == "" {
		s.label = "server"
	}
	if reg := opts.Obs; reg != nil {
		s.reg = reg
		s.pullNS = reg.Histogram("rpc_server_pull_ns")
		s.pushNS = reg.Histogram("rpc_server_push_ns")
		s.otherNS = reg.Histogram("rpc_server_other_ns")
		s.bytesIn = reg.Counter("rpc_server_bytes_in")
		s.bytesOut = reg.Counter("rpc_server_bytes_out")
		s.requests = reg.Counter("rpc_server_requests")
		s.connsG = reg.Gauge("rpc_server_conns")
		s.epochRejects = reg.Counter("rpc_server_epoch_rejects")
		s.dedupHits = reg.Counter("rpc_server_dedup_hits")
		s.abandoned = reg.Counter("rpc_server_deadline_abandoned")
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Epoch returns the server's current epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// SetEpoch moves the server to a new epoch. Connections bound to the old
// epoch have their next fenced request rejected with MsgErrEpoch.
func (s *Server) SetEpoch(e int64) { s.epoch.Store(e) }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.connsG.Add(1)
	defer func() {
		s.connsG.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// The injected wrapper sits between the raw conn (which Close tracks)
	// and the framing, so server-side faults tear/drop/reset responses.
	wire := s.inject.WrapConn(conn, s.label)
	br := bufio.NewReaderSize(wire, 1<<16)
	bw := bufio.NewWriterSize(wire, 1<<16)
	bound := epochUnbound
	for {
		body, deadline, err := ReadFrameDeadline(br)
		if err != nil {
			return // EOF or broken conn
		}
		arrival := s.now()
		var start time.Duration
		if s.reg != nil {
			start = s.reg.Now()
		}
		resp := s.dispatchDeadline(&bound, body, arrival, deadline)
		if s.reg != nil {
			d := s.reg.Now() - start
			var t byte
			if len(body) > 0 {
				t = body[0]
			}
			switch t {
			case MsgPull:
				s.pullNS.Observe(d)
			case MsgPush:
				s.pushNS.Observe(d)
			default:
				s.otherNS.Observe(d)
			}
			s.requests.Add(1)
			s.bytesIn.Add(int64(len(body)) + frameHdrSize)
			s.bytesOut.Add(int64(len(resp)) + frameHdrSize)
		}
		if err := WriteFrame(bw, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatchDeadline abandons requests whose caller's propagated deadline
// has already expired — the caller stopped listening, so executing the
// work (and growing the engine's queue) helps nobody — then delegates to
// dispatch. The response is a MsgErrBusy so a stray still-listening caller
// fails over rather than retrying.
func (s *Server) dispatchDeadline(bound *int64, body []byte, arrival time.Time, deadline time.Duration) []byte {
	if deadline > 0 && s.now().Sub(arrival) >= deadline {
		s.abandoned.Add(1)
		return BusyErrBody(fmt.Errorf("deadline %v expired before execution", deadline))
	}
	return s.dispatch(bound, body)
}

// dispatch applies per-connection epoch fencing and per-client dedup, then
// delegates to handle. bound is the connection's epoch binding state.
func (s *Server) dispatch(bound *int64, body []byte) []byte {
	if len(body) == 0 {
		return ErrBody(ErrTruncated)
	}
	t := body[0]
	if t == MsgHello {
		return s.handleHello(bound, body)
	}
	if fencedMsg(t) {
		cur := s.epoch.Load()
		if *bound == epochUnbound {
			*bound = cur // legacy client: lazily adopt the current epoch
		}
		if *bound != cur {
			s.epochRejects.Add(1)
			return EpochErrBody(cur)
		}
	}
	if mutatingMsg(t) {
		return s.handleMutating(body)
	}
	return s.handle(body)
}

// handleHello binds the connection to an epoch and replies with the
// server's current one. A client epoch < 0 adopts the current epoch.
func (s *Server) handleHello(bound *int64, body []byte) []byte {
	r := NewReader(body)
	r.Type()
	if _, err := r.I64(); err != nil { // batch field, unused
		return ErrBody(err)
	}
	clientEpoch, err := r.I64()
	if err != nil {
		return ErrBody(err)
	}
	if _, err := r.I64(); err != nil { // client ID, informational
		return ErrBody(err)
	}
	cur := s.epoch.Load()
	if clientEpoch < 0 {
		clientEpoch = cur
	}
	*bound = clientEpoch
	out := &Buffer{b: []byte{MsgData}}
	out.PutI64(cur)
	return out.Bytes()
}

// mutatingMsg lists the messages that carry a clientID+seq pair and are
// subject to at-most-once dedup.
func mutatingMsg(t byte) bool {
	switch t {
	case MsgPush, MsgEndPullPhase, MsgEndBatch, MsgCheckpoint:
		return true
	}
	return false
}

// handleMutating peeks the clientID+seq pair that mutating bodies carry
// after the batch field, consults the dedup cache, and stores the response
// for replay. Sequence 0 disables dedup (legacy clients).
func (s *Server) handleMutating(body []byte) []byte {
	r := NewReader(body)
	r.Type()
	if _, err := r.I64(); err != nil { // batch
		return ErrBody(err)
	}
	clientID, err := r.I64()
	if err != nil {
		return ErrBody(err)
	}
	seq, err := r.I64()
	if err != nil {
		return ErrBody(err)
	}
	if seq == 0 {
		return s.handle(body)
	}
	s.dedupMu.Lock()
	if s.dedup == nil {
		s.dedup = make(map[int64]dedupEntry)
	}
	last, ok := s.dedup[clientID]
	s.dedupMu.Unlock()
	if ok {
		if seq == last.seq {
			// Retry of the last request: the mutation already ran (or its
			// response was lost in flight after running); replay it.
			s.dedupHits.Add(1)
			return last.resp
		}
		if seq < last.seq {
			return ErrBody(fmt.Errorf("stale sequence %d from client %d (last %d)",
				seq, clientID, last.seq))
		}
	}
	resp := s.handle(body)
	s.dedupMu.Lock()
	if s.dedup == nil {
		s.dedup = make(map[int64]dedupEntry)
	}
	s.dedup[clientID] = dedupEntry{seq: seq, resp: resp}
	s.dedupMu.Unlock()
	return resp
}

// handle dispatches one request body and returns the response body. It
// performs no fencing or dedup — dispatch layers those on top — so legacy
// in-process callers (tests, fuzzers) can exercise it directly.
func (s *Server) handle(body []byte) []byte {
	r := NewReader(body)
	t, err := r.Type()
	if err != nil {
		return ErrBody(err)
	}
	batch, err := r.I64()
	if err != nil {
		return ErrBody(err)
	}
	if mutatingMsg(t) {
		// Skip the clientID+seq pair; handleMutating already consumed its
		// meaning.
		if _, err := r.I64(); err != nil {
			return ErrBody(err)
		}
		if _, err := r.I64(); err != nil {
			return ErrBody(err)
		}
	}
	switch t {
	case MsgPull:
		keys, err := r.Keys()
		if err != nil {
			return ErrBody(err)
		}
		dst := make([]float32, len(keys)*s.engine.Dim())
		if err := s.engine.Pull(batch, keys, dst); err != nil {
			return errResp(err)
		}
		out := &Buffer{b: []byte{MsgData}}
		out.PutFloats(dst)
		return out.Bytes()
	case MsgPush:
		keys, err := r.Keys()
		if err != nil {
			return ErrBody(err)
		}
		grads, err := r.Floats()
		if err != nil {
			return ErrBody(err)
		}
		if err := s.engine.Push(batch, keys, grads); err != nil {
			return errResp(err)
		}
		return OKBody()
	case MsgEndPullPhase:
		s.engine.EndPullPhase(batch)
		return OKBody()
	case MsgEndBatch:
		if err := s.engine.EndBatch(batch); err != nil {
			return errResp(err)
		}
		return OKBody()
	case MsgCheckpoint:
		if err := s.engine.RequestCheckpoint(batch); err != nil {
			return ErrBody(err)
		}
		return OKBody()
	case MsgCompletedCkpt:
		// A progress poll also drives background checkpoint finalization
		// forward when the engine supports it, so a trainer waiting for a
		// commit is never stuck behind "no more batches are coming".
		if adv, ok := s.engine.(advancer); ok {
			if err := adv.AdvanceCheckpoints(); err != nil {
				return errResp(err)
			}
		}
		out := &Buffer{b: []byte{MsgData}}
		out.PutI64(s.engine.CompletedCheckpoint())
		return out.Bytes()
	case MsgRollback:
		if s.rollback == nil {
			return ErrBody(fmt.Errorf("rollback unsupported by this node"))
		}
		if err := s.rollback(batch); err != nil {
			return errResp(err)
		}
		return OKBody()
	case MsgScrub:
		if s.scrub == nil {
			return ErrBody(fmt.Errorf("scrub unsupported by this node"))
		}
		rep, err := s.scrub()
		if err != nil {
			return errResp(err)
		}
		out := &Buffer{b: []byte{MsgData}}
		for _, v := range []int64{rep.Scanned, rep.Corrupt, rep.Repaired,
			rep.Restored, rep.Fenced, rep.Quarantined} {
			out.PutI64(v)
		}
		return out.Bytes()
	case MsgPullBag:
		return s.handlePullBag(r)
	case MsgStats:
		st := s.engine.Stats()
		out := &Buffer{b: []byte{MsgData}}
		for _, v := range []int64{st.Entries, st.CachedEntries, st.Hits, st.Misses,
			st.PMemReads, st.PMemWrites, st.Evictions, st.CheckpointsDone} {
			out.PutI64(v)
		}
		return out.Bytes()
	case MsgMigrateRange:
		// The batch field carries the delta floor (since).
		if s.migrate == nil {
			return ErrBody(fmt.Errorf("migration unsupported by this node"))
		}
		afterKey, err := r.I64()
		if err != nil {
			return ErrBody(err)
		}
		max, err := r.I64()
		if err != nil {
			return ErrBody(err)
		}
		ivs, err := readIntervals(r)
		if err != nil {
			return ErrBody(err)
		}
		entries, more, err := s.migrate(batch, uint64(afterKey), int(max), ivs)
		if err != nil {
			return errResp(err)
		}
		out := &Buffer{b: []byte{MsgData}}
		if more {
			out.PutU8(1)
		} else {
			out.PutU8(0)
		}
		putMigEntries(out, entries)
		return out.Bytes()
	case MsgAdoptRange:
		if s.adopt == nil {
			return ErrBody(fmt.Errorf("migration unsupported by this node"))
		}
		entries, err := readMigEntries(r)
		if err != nil {
			return ErrBody(err)
		}
		if err := s.adopt(entries); err != nil {
			return errResp(err)
		}
		return OKBody()
	case MsgDropRange:
		if s.drop == nil {
			return ErrBody(fmt.Errorf("migration unsupported by this node"))
		}
		ivs, err := readIntervals(r)
		if err != nil {
			return ErrBody(err)
		}
		n, err := s.drop(ivs)
		if err != nil {
			return errResp(err)
		}
		out := &Buffer{b: []byte{MsgData}}
		out.PutI64(int64(n))
		return out.Bytes()
	case MsgReplicate:
		if s.replicate == nil {
			return ErrBody(fmt.Errorf("replication unsupported by this node"))
		}
		keys, err := r.Keys()
		if err != nil {
			return ErrBody(err)
		}
		rows, err := r.Floats()
		if err != nil {
			return ErrBody(err)
		}
		if len(keys) > 0 && (len(rows) == 0 || len(rows)%len(keys) != 0) {
			return ErrBody(fmt.Errorf("rpc: %d replica rows do not divide into %d keys", len(rows), len(keys)))
		}
		if err := s.replicate(keys, rows); err != nil {
			return errResp(err)
		}
		return OKBody()
	case MsgPing:
		// The health probe reports the node's epoch and whether it serves
		// bag reads; legacy callers decode the response as a bare OK/Data
		// and ignore the payload.
		out := &Buffer{b: []byte{MsgData}}
		out.PutI64(s.epoch.Load())
		if s.bags != nil {
			out.PutU8(1)
		} else {
			out.PutU8(0)
		}
		return out.Bytes()
	default:
		return ErrBody(fmt.Errorf("unknown message type 0x%02x", t))
	}
}

// handlePullBag serves one MsgPullBag body (type and batch already
// consumed). Malformed bags — bad pooling mode, truncated or inconsistent
// offsets, offsets past the end of the key list — are answered with
// MsgErr; the connection stays alive (serveConn only drops a connection on
// transport failure, never on an application error).
func (s *Server) handlePullBag(r *Reader) []byte {
	if s.bags == nil {
		return ErrBody(fmt.Errorf("bag serving unsupported by this node"))
	}
	mode, err := r.U8()
	if err != nil {
		return ErrBody(err)
	}
	if mode > 1 {
		return ErrBody(fmt.Errorf("rpc: bad pooling mode %d", mode))
	}
	offsets, err := r.U32s()
	if err != nil {
		return ErrBody(err)
	}
	keys, err := r.Keys()
	if err != nil {
		return ErrBody(err)
	}
	if err := ValidateBagOffsets(offsets, len(keys)); err != nil {
		return ErrBody(err)
	}
	dim := s.bags.Dim()
	bags := len(offsets) - 1
	if 4*bags*dim > MaxFrame {
		return ErrBody(fmt.Errorf("rpc: bag response %d floats exceeds frame limit", bags*dim))
	}
	out := make([]float32, bags*dim)
	if err := s.bags.PullBags(mode == 1, offsets, keys, out); err != nil {
		return errResp(err)
	}
	resp := &Buffer{b: make([]byte, 0, 1+4+4*len(out))}
	resp.b = append(resp.b, MsgData)
	resp.PutFloats(out)
	return resp.Bytes()
}

// Close stops accepting, closes live connections and waits for handlers.
// The engine is not closed; the caller owns it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// errResp encodes an engine failure, distinguishing typed data-integrity
// errors (anything whose chain exposes IntegrityError() bool — the pmem
// package's corrupt/poisoned errors, without importing it here) so clients
// see MsgErrCorrupt instead of a generic MsgErr, and overload sheds
// (anything exposing Busy() bool — the serve package's admission-control
// error) so clients see MsgErrBusy and fail over instead of retrying.
func errResp(err error) []byte {
	var ie interface{ IntegrityError() bool }
	if errors.As(err, &ie) && ie.IntegrityError() {
		return CorruptErrBody(err)
	}
	var be interface{ Busy() bool }
	if errors.As(err, &be) && be.Busy() {
		return BusyErrBody(err)
	}
	return ErrBody(err)
}

// DecodeScrubReport parses a MsgScrub response payload.
func DecodeScrubReport(r *Reader) (psengine.ScrubReport, error) {
	var rep psengine.ScrubReport
	for _, f := range []*int64{&rep.Scanned, &rep.Corrupt, &rep.Repaired,
		&rep.Restored, &rep.Fenced, &rep.Quarantined} {
		v, err := r.I64()
		if err != nil {
			return rep, err
		}
		*f = v
	}
	return rep, nil
}

// DecodeStats parses a MsgStats response payload.
func DecodeStats(r *Reader) (psengine.Stats, error) {
	var st psengine.Stats
	fields := []*int64{&st.Entries, &st.CachedEntries, &st.Hits, &st.Misses,
		&st.PMemReads, &st.PMemWrites, &st.Evictions, &st.CheckpointsDone}
	for _, f := range fields {
		v, err := r.I64()
		if err != nil {
			return st, err
		}
		*f = v
	}
	return st, nil
}
