// Package rpc implements the wire protocol between training workers and
// parameter-server nodes: length-prefixed binary frames over TCP (the
// paper's deployment uses RDMA with a low-overhead RPC; TCP via net is the
// portable stand-in, with the network's virtual cost modeled separately by
// the simulator).
//
// Frame layout: 4-byte little-endian body length, a 4-byte little-endian
// deadline (the caller's remaining time budget in microseconds, 0 when the
// caller has none — responses always carry 0), then the body:
//
//	[1]  message type
//	[8]  batch ID (where applicable)
//	[..] type-specific payload (counts are uint32, keys uint64, floats
//	     float32 bit patterns, all little-endian)
//
// The deadline rides in the frame header, not the body, so the server can
// abandon a request whose caller has already timed out before it decodes
// or executes anything. Responses reuse the same framing: MsgOK / MsgErr /
// typed payloads.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Message types.
const (
	MsgPull byte = iota + 1
	MsgPush
	MsgEndPullPhase
	MsgEndBatch
	MsgCheckpoint
	MsgCompletedCkpt
	MsgStats
	MsgPing
	// MsgHello is the fault-tolerant client's handshake: payload is the
	// client's known epoch (-1 to adopt the server's) and its client ID.
	// The response is MsgData with the server's current epoch, and the
	// connection is bound to the client's epoch for fencing.
	MsgHello
	// MsgRollback asks the node to roll its engine back to the checkpoint
	// in the batch field (the coordinated replay protocol; see DESIGN.md
	// §10). Exempt from epoch fencing, since it is how a fenced cluster
	// re-synchronizes.
	MsgRollback
	// MsgScrub asks the node to run one full integrity pass over its
	// persisted records (DESIGN.md §11). The response is MsgData carrying
	// the scrub report's six counters. Exempt from epoch fencing: scrubbing
	// is an admin/repair operation, like Rollback and Stats.
	MsgScrub
	// MsgPullBag is the serving tier's multi-sample embedding-bag gather
	// (DESIGN.md §14): one request carries a pooling mode byte (0 = sum,
	// 1 = mean), a count-prefixed uint32 offsets array (bags+1 entries,
	// offsets[0] == 0, non-decreasing, last == len(keys); a zero-length bag
	// pools to the zero vector) and the concatenated key list. The response
	// is MsgData with bags×dim pooled floats — the server does the pooling,
	// so only one row per bag crosses the wire. Exempt from epoch fencing
	// and dedup: serving is read-only and eventually consistent, decoupled
	// from the training epoch protocol.
	MsgPullBag
	// MsgMigrateRange is the migration coordinator's range export
	// (DESIGN.md §15): the batch field carries the delta floor (only
	// entries with dataVersion >= since are returned; a very negative
	// floor selects everything), and the payload carries the resume
	// cursor, the page size, and the moving hash intervals. The response
	// is MsgData with a more flag and the page's entries. Exempt from
	// epoch fencing and dedup: it is an idempotent admin read, issued by
	// the coordinator that is itself moving the epoch.
	MsgMigrateRange
	// MsgAdoptRange installs migrated entries on the target node,
	// overwriting same-key state and flushing each entry durably before
	// the OK. Exempt from fencing (admin) and dedup (idempotent: adopting
	// the same entries twice converges to the same state).
	MsgAdoptRange
	// MsgDropRange removes the keys of the given hash intervals from the
	// node — index, cache, and durable records — after ownership moved
	// away. The response is MsgData with the dropped-entry count. Exempt
	// from fencing and dedup (idempotent: re-dropping a dropped range
	// drops nothing).
	MsgDropRange
	// MsgReplicate installs read-only serving replicas of the given rows
	// on the node (the R=2 failover copies). Exempt from fencing and
	// dedup: replicas are eventually-consistent serving state, outside
	// the training epoch protocol.
	MsgReplicate

	MsgOK   byte = 0x80
	MsgErr  byte = 0x81
	MsgData byte = 0x82
	// MsgErrEpoch rejects a request from a connection bound to a stale
	// epoch; the payload carries the server's current epoch.
	MsgErrEpoch byte = 0x84
	// MsgErrCorrupt reports a request that failed because the node detected
	// PMem corruption (a checksum or media poison fault) while serving it.
	// Distinct from MsgErr so clients can tell data-integrity failures from
	// ordinary application errors; NOT transparently retried — healing is
	// the scrubber's and the recovery protocol's job.
	MsgErrCorrupt byte = 0x85
	// MsgErrBusy reports a request the node shed under overload (admission
	// control at the serving tier) or abandoned because the caller's
	// propagated deadline had already expired. Distinct from MsgErr so
	// callers can fail over to a replica instead of treating overload as an
	// application bug; NOT transparently retried — hammering an overloaded
	// node is exactly the retry storm the budget exists to prevent.
	MsgErrBusy byte = 0x86
)

// Mutating message bodies (Push, EndPullPhase, EndBatch, Checkpoint) carry,
// directly after the batch ID, a client ID and a client-assigned sequence
// number. Sequence 0 means "no dedup" (legacy clients); otherwise the
// server caches the last response per client and replays it when a retry
// re-delivers the same sequence, making every mutating op at-most-once
// under retries.

// MaxFrame bounds a frame body; larger frames indicate protocol corruption.
const MaxFrame = 64 << 20

// ErrFrameTooLarge indicates a frame over MaxFrame.
var ErrFrameTooLarge = errors.New("rpc: frame too large")

// frameHdrSize is the wire header: body length + propagated deadline.
const frameHdrSize = 8

// maxDeadlineMicros is the largest deadline the 4-byte header field can
// carry (~71 minutes); longer budgets are clamped, which only ever makes
// the server more patient, never less.
const maxDeadlineMicros = 1<<32 - 1

// WriteFrame writes one frame to w with no propagated deadline.
func WriteFrame(w io.Writer, body []byte) error {
	return WriteFrameDeadline(w, body, 0)
}

// WriteFrameDeadline writes one frame carrying the caller's remaining time
// budget (0 means none). The deadline is relative, not an absolute
// timestamp, so it needs no clock synchronization between peers.
func WriteFrameDeadline(w io.Writer, body []byte, deadline time.Duration) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	micros := uint64(0)
	if deadline > 0 {
		micros = uint64(deadline / time.Microsecond)
		if micros > maxDeadlineMicros {
			micros = maxDeadlineMicros
		}
	}
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(micros))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame from r, discarding the propagated deadline.
func ReadFrame(r io.Reader) ([]byte, error) {
	body, _, err := ReadFrameDeadline(r)
	return body, err
}

// ReadFrameDeadline reads one frame and the caller's propagated deadline
// (0 when the caller set none).
func ReadFrameDeadline(r io.Reader) ([]byte, time.Duration, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, 0, ErrFrameTooLarge
	}
	deadline := time.Duration(binary.LittleEndian.Uint32(hdr[4:])) * time.Microsecond
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, err
	}
	return body, deadline, nil
}

// Buffer builds frame bodies.
type Buffer struct{ b []byte }

// NewBuffer returns a body builder starting with the message type and batch.
func NewBuffer(msg byte, batch int64) *Buffer {
	buf := &Buffer{b: make([]byte, 0, 64)}
	buf.b = append(buf.b, msg)
	buf.PutI64(batch)
	return buf
}

// PutI64 appends an int64.
func (p *Buffer) PutI64(v int64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(v))
	p.b = append(p.b, tmp[:]...)
}

// PutKeys appends a count-prefixed key list.
func (p *Buffer) PutKeys(keys []uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(keys)))
	p.b = append(p.b, tmp[:4]...)
	for _, k := range keys {
		binary.LittleEndian.PutUint64(tmp[:], k)
		p.b = append(p.b, tmp[:]...)
	}
}

// PutFloats appends a count-prefixed float32 list.
func (p *Buffer) PutFloats(vals []float32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(vals)))
	p.b = append(p.b, tmp[:]...)
	for _, v := range vals {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
		p.b = append(p.b, tmp[:]...)
	}
}

// PutU8 appends one raw byte (e.g. a pooling-mode flag).
func (p *Buffer) PutU8(v byte) { p.b = append(p.b, v) }

// PutU32s appends a count-prefixed uint32 list (e.g. bag offsets).
func (p *Buffer) PutU32s(vals []uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(vals)))
	p.b = append(p.b, tmp[:]...)
	for _, v := range vals {
		binary.LittleEndian.PutUint32(tmp[:], v)
		p.b = append(p.b, tmp[:]...)
	}
}

// PutString appends a count-prefixed string.
func (p *Buffer) PutString(s string) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	p.b = append(p.b, tmp[:]...)
	p.b = append(p.b, s...)
}

// Bytes returns the built body.
func (p *Buffer) Bytes() []byte { return p.b }

// Reader decodes frame bodies.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps a frame body.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// ErrTruncated indicates a body shorter than its encoding claims.
var ErrTruncated = errors.New("rpc: truncated frame")

// Type consumes and returns the message type byte.
func (r *Reader) Type() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, ErrTruncated
	}
	t := r.b[r.off]
	r.off++
	return t, nil
}

// I64 consumes an int64.
func (r *Reader) I64() (int64, error) {
	if r.off+8 > len(r.b) {
		return 0, ErrTruncated
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

// Keys consumes a count-prefixed key list.
func (r *Reader) Keys() ([]uint64, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if r.off+8*n > len(r.b) {
		return nil, ErrTruncated
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return keys, nil
}

// Floats consumes a count-prefixed float32 list.
func (r *Reader) Floats() ([]float32, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if r.off+4*n > len(r.b) {
		return nil, ErrTruncated
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return vals, nil
}

// U8 consumes one raw byte.
func (r *Reader) U8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, ErrTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

// U32s consumes a count-prefixed uint32 list.
func (r *Reader) U32s() ([]uint32, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if r.off+4*n > len(r.b) {
		return nil, ErrTruncated
	}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint32(r.b[r.off:])
		r.off += 4
	}
	return vals, nil
}

// String consumes a count-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	if r.off+n > len(r.b) {
		return "", ErrTruncated
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *Reader) count() (int, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint32(r.b[r.off:]))
	r.off += 4
	if n < 0 || n > MaxFrame {
		return 0, fmt.Errorf("rpc: bad count %d", n)
	}
	return n, nil
}

// OKBody is the canonical success response body.
func OKBody() []byte { return []byte{MsgOK} }

// ErrBody encodes an error response.
func ErrBody(err error) []byte {
	b := &Buffer{b: []byte{MsgErr}}
	b.PutString(err.Error())
	return b.Bytes()
}

// EpochErrBody encodes an epoch-fence rejection carrying the server's
// current epoch.
func EpochErrBody(serverEpoch int64) []byte {
	b := &Buffer{b: []byte{MsgErrEpoch}}
	b.PutI64(serverEpoch)
	return b.Bytes()
}

// CorruptErrBody encodes a data-integrity error response.
func CorruptErrBody(err error) []byte {
	b := &Buffer{b: []byte{MsgErrCorrupt}}
	b.PutString(err.Error())
	return b.Bytes()
}

// BusyErrBody encodes an overload-shed (or deadline-abandoned) response.
func BusyErrBody(err error) []byte {
	b := &Buffer{b: []byte{MsgErrBusy}}
	b.PutString(err.Error())
	return b.Bytes()
}

// HashInterval is a closed range [Lo, Hi] of ring positions (key hashes)
// on the wire; the cluster's placement ring produces them and the node's
// migration hooks turn them into key predicates.
type HashInterval struct{ Lo, Hi uint64 }

// KeyHash maps a key to its ring position: the splitmix64 finalizer, the
// same mixer the cluster's placement ring uses (pinned by a cross-package
// test) — an interval computed there selects exactly the keys matched
// here.
func KeyHash(key uint64) uint64 {
	x := key + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CoversKey reports whether any interval contains key's ring position.
func CoversKey(ivs []HashInterval, key uint64) bool {
	h := KeyHash(key)
	for _, iv := range ivs {
		if iv.Lo <= h && h <= iv.Hi {
			return true
		}
	}
	return false
}

// MigEntry is one migrating entry on the wire: the key, the data version
// of the copied state, and the full row image (weights followed by
// optimizer state).
type MigEntry struct {
	Key     uint64
	Version int64
	Data    []float32
}

// putIntervals appends a count-prefixed flat (lo, hi) pair list.
func putIntervals(b *Buffer, ivs []HashInterval) {
	flat := make([]uint64, 0, 2*len(ivs))
	for _, iv := range ivs {
		flat = append(flat, iv.Lo, iv.Hi)
	}
	b.PutKeys(flat)
}

// readIntervals consumes a count-prefixed flat (lo, hi) pair list.
func readIntervals(r *Reader) ([]HashInterval, error) {
	flat, err := r.Keys()
	if err != nil {
		return nil, err
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("rpc: odd interval list length %d", len(flat))
	}
	ivs := make([]HashInterval, len(flat)/2)
	for i := range ivs {
		ivs[i] = HashInterval{Lo: flat[2*i], Hi: flat[2*i+1]}
	}
	return ivs, nil
}

// putMigEntries appends a count-prefixed migration entry list.
func putMigEntries(b *Buffer, entries []MigEntry) {
	b.PutI64(int64(len(entries)))
	for _, me := range entries {
		b.PutI64(int64(me.Key))
		b.PutI64(me.Version)
		b.PutFloats(me.Data)
	}
}

// readMigEntries consumes a count-prefixed migration entry list.
func readMigEntries(r *Reader) ([]MigEntry, error) {
	n, err := r.I64()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxFrame {
		return nil, fmt.Errorf("rpc: bad entry count %d", n)
	}
	// Preallocate from the body size, not the claimed count: each entry
	// occupies at least 20 bytes, so a hostile count cannot balloon memory.
	prealloc := n
	if lim := int64(len(r.b)/20 + 1); prealloc > lim {
		prealloc = lim
	}
	entries := make([]MigEntry, 0, prealloc)
	for i := int64(0); i < n; i++ {
		key, err := r.I64()
		if err != nil {
			return nil, err
		}
		version, err := r.I64()
		if err != nil {
			return nil, err
		}
		data, err := r.Floats()
		if err != nil {
			return nil, err
		}
		entries = append(entries, MigEntry{Key: uint64(key), Version: version, Data: data})
	}
	return entries, nil
}

// DecodeResponse inspects a response body: nil error for MsgOK/MsgData
// (returning the remaining reader), the remote error for MsgErr, or a typed
// *EpochError for MsgErrEpoch.
func DecodeResponse(body []byte) (*Reader, error) {
	r := NewReader(body)
	t, err := r.Type()
	if err != nil {
		return nil, err
	}
	switch t {
	case MsgOK, MsgData:
		return r, nil
	case MsgErr:
		msg, err := r.String()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("rpc: remote: %s", msg)
	case MsgErrEpoch:
		se, err := r.I64()
		if err != nil {
			return nil, err
		}
		return nil, &EpochError{ServerEpoch: se, ClientEpoch: -1}
	case MsgErrCorrupt:
		msg, err := r.String()
		if err != nil {
			return nil, err
		}
		return nil, &RemoteCorruptError{Msg: msg}
	case MsgErrBusy:
		msg, err := r.String()
		if err != nil {
			return nil, err
		}
		return nil, &BusyError{Msg: msg}
	default:
		return nil, fmt.Errorf("rpc: unexpected response type 0x%02x", t)
	}
}
