package rpc

import (
	"errors"
	"fmt"
)

// ErrUnavailable matches (via errors.Is) every request that failed on the
// transport — a dial failure, reset, torn frame or EOF — as opposed to an
// error the remote engine returned. Transport failures are safe to retry:
// mutating ops are dedup'd server-side by their sequence number.
var ErrUnavailable = errors.New("rpc: server unavailable")

// TransportError is the typed error for a request that failed on the wire.
type TransportError struct {
	Addr string // server address
	Op   string // request kind ("pull", "push", ...)
	Err  error  // underlying I/O error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: %s to %s: %v", e.Op, e.Addr, e.Err)
}

// Unwrap exposes the underlying I/O error.
func (e *TransportError) Unwrap() error { return e.Err }

// Is reports true for ErrUnavailable targets so
// errors.Is(err, rpc.ErrUnavailable) works without unwrapping.
func (e *TransportError) Is(target error) bool { return target == ErrUnavailable }

// ErrEpochFenced matches (via errors.Is) requests rejected because the
// client's epoch is stale: the node crashed+recovered or rolled back since
// the client last synchronized. The caller must run the cluster recovery
// protocol (rollback + AdoptEpoch) before continuing.
var ErrEpochFenced = errors.New("rpc: stale epoch fenced")

// EpochError is the typed error for an epoch-fenced request.
type EpochError struct {
	Addr        string // server address
	ClientEpoch int64  // the epoch the client believed current (-1 unknown)
	ServerEpoch int64  // the server's actual epoch
}

// Error implements error.
func (e *EpochError) Error() string {
	return fmt.Sprintf("rpc: epoch fenced by %s: client at %d, server at %d",
		e.Addr, e.ClientEpoch, e.ServerEpoch)
}

// Is reports true for ErrEpochFenced targets.
func (e *EpochError) Is(target error) bool { return target == ErrEpochFenced }

// ErrRemoteCorrupt matches (via errors.Is) requests the server rejected
// because it detected PMem corruption — a record checksum mismatch or a
// poisoned media range — while serving them. The data never reached the
// response. Not retried transparently: transient healing is the node
// scrubber's job, and unrecoverable loss surfaces through the epoch
// fence + rollback protocol.
var ErrRemoteCorrupt = errors.New("rpc: remote data corruption detected")

// RemoteCorruptError is the typed error for a MsgErrCorrupt response.
type RemoteCorruptError struct {
	Addr string // server address (empty when decoded without context)
	Msg  string // the remote integrity error text
}

// Error implements error.
func (e *RemoteCorruptError) Error() string {
	if e.Addr == "" {
		return fmt.Sprintf("rpc: remote corruption: %s", e.Msg)
	}
	return fmt.Sprintf("rpc: remote corruption at %s: %s", e.Addr, e.Msg)
}

// Is reports true for ErrRemoteCorrupt targets.
func (e *RemoteCorruptError) Is(target error) bool { return target == ErrRemoteCorrupt }

// ErrClientClosed is returned by operations on a Client after Close.
var ErrClientClosed = errors.New("rpc: client closed")

// ErrBusy matches (via errors.Is) requests the server shed under overload
// (serving-tier admission control) or abandoned because the caller's
// propagated deadline had already expired. Never retried transparently —
// re-offering shed load is the retry storm the budget exists to prevent —
// but failover-eligible: a replica may well have capacity.
var ErrBusy = errors.New("rpc: server busy")

// BusyError is the typed error for a MsgErrBusy response.
type BusyError struct {
	Addr string // server address (empty when decoded without context)
	Msg  string // the remote shed/abandon reason
}

// Error implements error.
func (e *BusyError) Error() string {
	if e.Addr == "" {
		return fmt.Sprintf("rpc: busy: %s", e.Msg)
	}
	return fmt.Sprintf("rpc: busy at %s: %s", e.Addr, e.Msg)
}

// Is reports true for ErrBusy targets.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// ErrBreakerOpen matches (via errors.Is) requests failed fast by an open
// per-peer circuit breaker: the peer failed enough consecutive requests
// that re-attempting every call would only feed a retry storm, so calls
// fail locally and only periodic probes touch the wire.
var ErrBreakerOpen = errors.New("rpc: circuit breaker open")

// BreakerOpenError is the typed error for a breaker fast-failure.
type BreakerOpenError struct {
	Addr string // server address
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("rpc: circuit breaker open for %s", e.Addr)
}

// Is reports true for ErrBreakerOpen and — because an open breaker means
// the peer is, as far as this client knows, unreachable — for
// ErrUnavailable, so the cluster recovery protocol treats fast-failed
// requests exactly like transport failures.
func (e *BreakerOpenError) Is(target error) bool {
	return target == ErrBreakerOpen || target == ErrUnavailable
}

// IsRecoverable reports whether err is a failure the cluster recovery
// protocol can heal: a transport failure or timeout (the node may have
// crashed — redial and replay) or an epoch fence (the node recovered —
// roll back and re-adopt). Remote application errors are not recoverable.
func IsRecoverable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrEpochFenced)
}

// IsDegraded reports whether err means the peer cannot serve this request
// right now but a replica might: every recoverable failure, plus overload
// sheds and breaker fast-failures. The serving failover path keys on this
// — a degraded owner is routed around, never hammered.
func IsDegraded(err error) bool {
	return IsRecoverable(err) || errors.Is(err, ErrBusy) || errors.Is(err, ErrBreakerOpen)
}
