package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"openembedding/internal/obs"
	"openembedding/internal/psengine"
)

// DefaultTimeout is the dial / per-request read / per-request write
// deadline applied when an Options field is zero. A hung or partitioned
// server therefore turns into an error instead of blocking a cluster
// fan-out forever.
const DefaultTimeout = 30 * time.Second

// NoTimeout disables a deadline (pass it in an Options field).
const NoTimeout = time.Duration(-1)

// Options configures a Client.
type Options struct {
	// DialTimeout bounds connection establishment. 0 means DefaultTimeout;
	// NoTimeout disables the bound.
	DialTimeout time.Duration
	// ReadTimeout bounds each request's response wait, measured from when
	// the request hits the wire. 0 means DefaultTimeout; NoTimeout
	// disables it.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request's write+flush. 0 means
	// DefaultTimeout; NoTimeout disables it.
	WriteTimeout time.Duration
	// Obs, when set, receives client metrics: rpc_client_rtt_ns,
	// rpc_client_bytes_out/in, rpc_client_inflight, rpc_client_timeouts.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	def := func(d time.Duration) time.Duration {
		switch {
		case d == 0:
			return DefaultTimeout
		case d < 0:
			return 0 // disabled
		default:
			return d
		}
	}
	o.DialTimeout = def(o.DialTimeout)
	o.ReadTimeout = def(o.ReadTimeout)
	o.WriteTimeout = def(o.WriteTimeout)
	return o
}

// ErrTimeout matches (via errors.Is) every request that failed on an I/O
// deadline.
var ErrTimeout = errors.New("rpc: request timed out")

// TimeoutError is the typed error for a request that hit a deadline.
type TimeoutError struct {
	Addr  string        // server address
	Op    string        // request kind ("pull", "push", ...)
	After time.Duration // the deadline that expired
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("rpc: %s to %s timed out after %v", e.Op, e.Addr, e.After)
}

// Is reports true for ErrTimeout targets so errors.Is(err, rpc.ErrTimeout)
// works without unwrapping to the concrete type.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// Timeout implements the net.Error convention.
func (e *TimeoutError) Timeout() bool { return true }

// Client is a connection to one parameter-server node. A Client serializes
// its requests; workers that want parallelism across shards hold one Client
// per node (as internal/cluster does).
//
// After any I/O failure — including a timeout — the connection is broken:
// the request/response framing may be desynchronized (a late response could
// answer the wrong request), so the client closes the socket and every
// later call fails fast with the original error.
type Client struct {
	addr string
	opts Options

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	err  error // first I/O failure; poisons the client

	// metrics (nil, and free, without Options.Obs)
	rtt      *obs.Histogram
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	inflight *obs.Gauge
	timeouts *obs.Counter
}

// Dial connects with default options (30s dial/read/write deadlines).
func Dial(addr string) (*Client, error) { return DialOpts(addr, Options{}) }

// DialOpts connects to a server with explicit options.
func DialOpts(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		if isTimeout(err) {
			return nil, &TimeoutError{Addr: addr, Op: "dial", After: opts.DialTimeout}
		}
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &Client{
		addr: addr,
		opts: opts,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	if reg := opts.Obs; reg != nil {
		c.rtt = reg.Histogram("rpc_client_rtt_ns")
		c.bytesIn = reg.Counter("rpc_client_bytes_in")
		c.bytesOut = reg.Counter("rpc_client_bytes_out")
		c.inflight = reg.Gauge("rpc_client_inflight")
		c.timeouts = reg.Counter("rpc_client_timeouts")
	}
	return c, nil
}

// Addr returns the server address this client dialed.
func (c *Client) Addr() string { return c.addr }

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// fail marks the connection broken with the first error, translating
// deadline expiries into *TimeoutError. Caller holds c.mu.
func (c *Client) fail(op string, after time.Duration, err error) error {
	if isTimeout(err) {
		err = &TimeoutError{Addr: c.addr, Op: op, After: after}
		c.timeouts.Add(1)
	} else {
		err = fmt.Errorf("rpc: %s to %s: %w", op, c.addr, err)
	}
	c.err = err
	c.conn.Close()
	return err
}

// do sends one request body and returns the decoded response reader.
// body[0] is the message type (set by NewBuffer).
func (c *Client) do(body []byte) (*Reader, error) {
	op := msgName(body[0])
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	var start time.Duration
	if c.rtt != nil {
		start = c.opts.Obs.Now()
	}
	if c.opts.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	if err := WriteFrame(c.bw, body); err != nil {
		return nil, c.fail(op, c.opts.WriteTimeout, err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(op, c.opts.WriteTimeout, err)
	}
	if c.opts.ReadTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	}
	resp, err := ReadFrame(c.br)
	if err != nil {
		return nil, c.fail(op, c.opts.ReadTimeout, err)
	}
	c.bytesOut.Add(int64(len(body)) + 4)
	c.bytesIn.Add(int64(len(resp)) + 4)
	if c.rtt != nil {
		c.rtt.Observe(c.opts.Obs.Now() - start)
	}
	return DecodeResponse(resp)
}

// msgName names a message type for error and metric labels.
func msgName(t byte) string {
	switch t {
	case MsgPull:
		return "pull"
	case MsgPush:
		return "push"
	case MsgEndPullPhase:
		return "end-pull-phase"
	case MsgEndBatch:
		return "end-batch"
	case MsgCheckpoint:
		return "checkpoint"
	case MsgCompletedCkpt:
		return "completed-checkpoint"
	case MsgStats:
		return "stats"
	case MsgPing:
		return "ping"
	default:
		return fmt.Sprintf("msg-0x%02x", t)
	}
}

// Pull fetches weights for keys (len(keys)*dim floats).
func (c *Client) Pull(batch int64, keys []uint64) ([]float32, error) {
	b := NewBuffer(MsgPull, batch)
	b.PutKeys(keys)
	r, err := c.do(b.Bytes())
	if err != nil {
		return nil, err
	}
	return r.Floats()
}

// Push sends gradients for keys.
func (c *Client) Push(batch int64, keys []uint64, grads []float32) error {
	b := NewBuffer(MsgPush, batch)
	b.PutKeys(keys)
	b.PutFloats(grads)
	_, err := c.do(b.Bytes())
	return err
}

// EndPullPhase signals pull completion for batch.
func (c *Client) EndPullPhase(batch int64) error {
	_, err := c.do(NewBuffer(MsgEndPullPhase, batch).Bytes())
	return err
}

// EndBatch seals batch.
func (c *Client) EndBatch(batch int64) error {
	_, err := c.do(NewBuffer(MsgEndBatch, batch).Bytes())
	return err
}

// RequestCheckpoint asks the node to checkpoint batch.
func (c *Client) RequestCheckpoint(batch int64) error {
	_, err := c.do(NewBuffer(MsgCheckpoint, batch).Bytes())
	return err
}

// CompletedCheckpoint reads the node's durable checkpoint progress.
func (c *Client) CompletedCheckpoint() (int64, error) {
	r, err := c.do(NewBuffer(MsgCompletedCkpt, 0).Bytes())
	if err != nil {
		return 0, err
	}
	return r.I64()
}

// Stats fetches the node's counters.
func (c *Client) Stats() (psengine.Stats, error) {
	r, err := c.do(NewBuffer(MsgStats, 0).Bytes())
	if err != nil {
		return psengine.Stats{}, err
	}
	return DecodeStats(r)
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.do(NewBuffer(MsgPing, 0).Bytes())
	return err
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
