package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/psengine"
)

// DefaultTimeout is the dial / per-request read / per-request write
// deadline applied when an Options field is zero. A hung or partitioned
// server therefore turns into an error instead of blocking a cluster
// fan-out forever.
const DefaultTimeout = 30 * time.Second

// NoTimeout disables a deadline (pass it in an Options field).
const NoTimeout = time.Duration(-1)

// RetryPolicy bounds the client's transparent redial + retry of requests
// that failed on the transport. Remote application errors and epoch fences
// are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total tries per request, including the first.
	// 0 (the default) disables fault tolerance entirely: the client keeps
	// the legacy semantics where the first I/O failure poisons the
	// connection and every later call fails fast. Any value >= 1 enables
	// redial-on-demand and the epoch handshake; values > 1 also retry a
	// failed request after a backoff.
	MaxAttempts int
	// Backoff is the base delay before the first retry; each further retry
	// doubles it. Defaults to 2ms when MaxAttempts > 1.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 250ms.
	MaxBackoff time.Duration
	// Seed drives the backoff jitter (a seeded splitmix64 stream — never
	// the global math/rand — so chaos runs replay deterministically).
	Seed uint64
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts >= 1 }

// Options configures a Client.
type Options struct {
	// DialTimeout bounds connection establishment. 0 means DefaultTimeout;
	// NoTimeout disables the bound.
	DialTimeout time.Duration
	// ReadTimeout bounds each request's response wait, measured from when
	// the request hits the wire. 0 means DefaultTimeout; NoTimeout
	// disables it.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request's write+flush. 0 means
	// DefaultTimeout; NoTimeout disables it.
	WriteTimeout time.Duration
	// Retry enables transparent redial + bounded retry with exponential
	// backoff and seeded jitter. The zero value keeps the legacy
	// poison-on-failure semantics.
	Retry RetryPolicy
	// Inject, when set, threads the deterministic fault injector into the
	// transport: dial faults and wire faults on every connection. Nil (the
	// default) leaves the hot path untouched.
	Inject *faultinject.Injector
	// Label is the injector stream label for this client's connections.
	// Labels must be deterministic across runs (a node index, not an
	// ephemeral address); it defaults to the dialed address.
	Label string
	// Budget, when set, is the shared retry token bucket: every transparent
	// retry (not first attempts) withdraws a token and gives up with the
	// last error when the bucket is empty. Sharing one Budget across many
	// clients bounds the total retry amplification a dead node can cause.
	// Nil keeps unbudgeted retries.
	Budget *Budget
	// Breaker, when set, is this peer's circuit breaker: consecutive
	// transport failures open it, after which calls fail fast with
	// *BreakerOpenError and only periodic half-open probes touch the wire.
	// Nil disables breaking.
	Breaker *Breaker
	// Obs, when set, receives client metrics: rpc_client_rtt_ns,
	// rpc_client_bytes_out/in, rpc_client_inflight, rpc_client_timeouts,
	// rpc_client_retries, rpc_client_redials.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	def := func(d time.Duration) time.Duration {
		switch {
		case d == 0:
			return DefaultTimeout
		case d < 0:
			return 0 // disabled
		default:
			return d
		}
	}
	o.DialTimeout = def(o.DialTimeout)
	o.ReadTimeout = def(o.ReadTimeout)
	o.WriteTimeout = def(o.WriteTimeout)
	if o.Retry.MaxAttempts > 1 {
		if o.Retry.Backoff == 0 {
			o.Retry.Backoff = 2 * time.Millisecond
		}
		if o.Retry.MaxBackoff == 0 {
			o.Retry.MaxBackoff = 250 * time.Millisecond
		}
	}
	return o
}

// ErrTimeout matches (via errors.Is) every request that failed on an I/O
// deadline.
var ErrTimeout = errors.New("rpc: request timed out")

// TimeoutError is the typed error for a request that hit a deadline.
type TimeoutError struct {
	Addr  string        // server address
	Op    string        // request kind ("pull", "push", ...)
	After time.Duration // the deadline that expired
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("rpc: %s to %s timed out after %v", e.Op, e.Addr, e.After)
}

// Is reports true for ErrTimeout targets so errors.Is(err, rpc.ErrTimeout)
// works without unwrapping to the concrete type.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// Timeout implements the net.Error convention.
func (e *TimeoutError) Timeout() bool { return true }

// clientIDs assigns process-unique client IDs (the dedup key mutating
// requests carry).
var clientIDs atomic.Int64

// Client is a connection to one parameter-server node. A Client serializes
// its requests; workers that want parallelism across shards hold one Client
// per node (as internal/cluster does).
//
// Without a RetryPolicy, any I/O failure — including a timeout — breaks the
// connection permanently: the request/response framing may be
// desynchronized (a late response could answer the wrong request), so the
// client closes the socket and every later call fails fast with the
// original error.
//
// With a RetryPolicy, a broken connection is redialed — on the failing
// request (up to MaxAttempts, with exponential backoff + seeded jitter) and
// on demand by later requests. Redialing performs the MsgHello epoch
// handshake: if the server's epoch moved (it crashed+recovered or rolled
// back), the client is *fenced* — batch-protocol requests fail with a typed
// *EpochError until AdoptEpoch re-synchronizes — so a stale client can
// never keep pushing into a recovered node. Mutating requests carry a
// client-assigned sequence number; the server replays its cached response
// for a retried sequence, making retries at-most-once.
type Client struct {
	addr  string
	label string
	opts  Options
	id    int64 // process-unique client ID for server-side dedup

	mu   sync.Mutex // serializes requests; guards all fields below
	br   *bufio.Reader
	bw   *bufio.Writer
	err  error // last I/O failure; conn is broken while non-nil
	seq  int64 // sequence of the last mutating request
	rng  uint64
	ever bool  // a connection has been established at least once
	ep   int64 // epoch adopted at the first handshake (-1 before)
	se   int64 // server epoch observed most recently

	// connMu guards conn and closed; Close takes it without mu so it can
	// interrupt an in-flight request, and connect installs new conns under
	// it so a racing Close can never leak one.
	connMu sync.Mutex
	conn   net.Conn
	closed bool

	// testRedialDelay widens the dial/install race window in tests.
	testRedialDelay time.Duration

	// metrics (nil, and free, without Options.Obs)
	rtt      *obs.Histogram
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	inflight *obs.Gauge
	timeouts *obs.Counter
	retries  *obs.Counter
	redials  *obs.Counter
}

// Dial connects with default options (30s dial/read/write deadlines).
func Dial(addr string) (*Client, error) { return DialOpts(addr, Options{}) }

// DialOpts connects to a server with explicit options.
func DialOpts(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{
		addr:  addr,
		label: opts.Label,
		opts:  opts,
		id:    clientIDs.Add(1),
		ep:    -1,
		se:    -1,
	}
	if c.label == "" {
		c.label = addr
	}
	c.rng = opts.Retry.Seed ^ uint64(c.id)*0x9e3779b97f4a7c15
	if reg := opts.Obs; reg != nil {
		c.rtt = reg.Histogram("rpc_client_rtt_ns")
		c.bytesIn = reg.Counter("rpc_client_bytes_in")
		c.bytesOut = reg.Counter("rpc_client_bytes_out")
		c.inflight = reg.Gauge("rpc_client_inflight")
		c.timeouts = reg.Counter("rpc_client_timeouts")
		c.retries = reg.Counter("rpc_client_retries")
		c.redials = reg.Counter("rpc_client_redials")
	}
	if err := c.connect(); err != nil {
		// A fault-tolerant client defers transient initial-connect failures
		// to redial-on-demand: the first request's retry loop heals them
		// exactly like a mid-run disconnect. Legacy clients (and permanent
		// errors, e.g. a server that rejects the handshake) still fail here.
		if !opts.Retry.enabled() || !IsRecoverable(err) {
			return nil, err
		}
	}
	return c, nil
}

// Addr returns the server address this client dialed.
func (c *Client) Addr() string { return c.addr }

// Epoch returns the server epoch this client is synchronized to, or -1
// before the first handshake (legacy mode never handshakes).
func (c *Client) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ep
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// connect dials, installs the connection (unless Close won the race) and,
// in fault-tolerant mode, runs the epoch handshake. Caller holds c.mu.
func (c *Client) connect() error {
	if f := c.opts.Inject.On(faultinject.PointDial, c.label); f.Kind != faultinject.KindNone {
		switch f.Kind {
		case faultinject.KindDelay, faultinject.KindSlow:
			c.opts.Inject.Sleep(f.Delay)
		case faultinject.KindPartition:
			// A partitioned dial is silent SYN loss: the deadline expires.
			return &TimeoutError{Addr: c.addr, Op: "dial", After: c.opts.DialTimeout}
		default:
			return &TransportError{Addr: c.addr, Op: "dial", Err: faultinject.ErrInjected}
		}
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		if isTimeout(err) {
			return &TimeoutError{Addr: c.addr, Op: "dial", After: c.opts.DialTimeout}
		}
		return &TransportError{Addr: c.addr, Op: "dial", Err: err}
	}
	if c.testRedialDelay > 0 {
		time.Sleep(c.testRedialDelay)
	}
	conn = c.opts.Inject.WrapConn(conn, c.label)
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return ErrClientClosed
	}
	c.conn = conn
	c.connMu.Unlock()
	c.br = bufio.NewReaderSize(conn, 1<<16)
	c.bw = bufio.NewWriterSize(conn, 1<<16)
	c.err = nil
	if c.ever {
		c.redials.Add(1)
	}
	c.ever = true
	if c.opts.Retry.enabled() {
		return c.hello(c.ep)
	}
	return nil
}

// hello runs the epoch handshake on the current connection: it announces
// the client's known epoch (-1 adopts the server's) and learns the
// server's. Caller holds c.mu.
func (c *Client) hello(epoch int64) error {
	b := NewBuffer(MsgHello, 0)
	b.PutI64(epoch)
	b.PutI64(c.id)
	resp, err := c.roundTrip("hello", b.Bytes())
	if err != nil {
		return err
	}
	r, err := DecodeResponse(resp)
	if err != nil {
		return err
	}
	se, err := r.I64()
	if err != nil {
		return err
	}
	c.se = se
	if c.ep < 0 {
		c.ep = se
	}
	return nil
}

// AdoptEpoch re-synchronizes a fenced client: it re-handshakes with the
// server (redialing first if the connection is broken) and adopts the
// server's current epoch. The cluster recovery protocol calls it after a
// rollback; adopting an epoch without rolling back would silently ride
// across a recovery, so nothing else does.
func (c *Client) AdoptEpoch() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ep = -1
	if c.err != nil || !c.ever {
		if err := c.connect(); err != nil {
			return -1, err
		}
	} else if err := c.hello(-1); err != nil {
		// The handshake itself may hit a broken conn: redial once.
		if !IsRecoverable(err) {
			return -1, err
		}
		if err := c.connect(); err != nil {
			return -1, err
		}
	}
	c.ep = c.se
	return c.ep, nil
}

// ensureConn redials a broken connection when fault tolerance is enabled.
// Caller holds c.mu.
func (c *Client) ensureConn() error {
	c.connMu.Lock()
	closed := c.closed
	c.connMu.Unlock()
	if closed {
		return ErrClientClosed
	}
	if c.err == nil && c.ever {
		return nil
	}
	if !c.opts.Retry.enabled() && c.ever {
		return c.err // legacy: poisoned for good
	}
	return c.connect()
}

// fail marks the connection broken with the request's error, translating
// deadline expiries into *TimeoutError and other I/O failures into
// *TransportError. Caller holds c.mu.
func (c *Client) fail(op string, after time.Duration, err error) error {
	if isTimeout(err) {
		err = &TimeoutError{Addr: c.addr, Op: op, After: after}
		c.timeouts.Add(1)
	} else {
		err = &TransportError{Addr: c.addr, Op: op, Err: err}
	}
	c.err = err
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.connMu.Unlock()
	return err
}

// roundTrip writes one frame and reads the response frame on the current
// connection. Caller holds c.mu and has ensured a connection.
func (c *Client) roundTrip(op string, body []byte) ([]byte, error) {
	var start time.Duration
	if c.rtt != nil {
		start = c.opts.Obs.Now()
	}
	if c.opts.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	// Propagate the read deadline — the longest this caller will wait for
	// the response — so the server can abandon work we have given up on.
	if err := WriteFrameDeadline(c.bw, body, c.opts.ReadTimeout); err != nil {
		return nil, c.fail(op, c.opts.WriteTimeout, err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.fail(op, c.opts.WriteTimeout, err)
	}
	if c.opts.ReadTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	}
	resp, err := ReadFrame(c.br)
	if err != nil {
		return nil, c.fail(op, c.opts.ReadTimeout, err)
	}
	c.bytesOut.Add(int64(len(body)) + frameHdrSize)
	c.bytesIn.Add(int64(len(resp)) + frameHdrSize)
	if c.rtt != nil {
		c.rtt.Observe(c.opts.Obs.Now() - start)
	}
	return resp, nil
}

// retryable reports whether a failed attempt may be retried: transport
// failures and timeouts only — never remote application errors or epoch
// fences.
func retryable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrTimeout)
}

// fencedMsg lists the batch-protocol messages subject to epoch fencing.
// Hello, Ping, Stats, CompletedCkpt and Rollback are exempt: they are how a
// fenced client observes and heals the fence.
func fencedMsg(t byte) bool {
	switch t {
	case MsgPull, MsgPush, MsgEndPullPhase, MsgEndBatch, MsgCheckpoint:
		return true
	}
	return false
}

// backoff returns the jittered exponential delay before retry attempt a
// (a >= 1). The jitter stream is seeded (RetryPolicy.Seed), never global
// math/rand, so chaos runs replay.
func (c *Client) backoff(a int) time.Duration {
	d := c.opts.Retry.Backoff << uint(a-1)
	if max := c.opts.Retry.MaxBackoff; d > max {
		d = max
	}
	// xorshift step of the seeded stream; jitter in [0.5, 1.5).
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	frac := float64(c.rng>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.5 + frac))
}

// do sends one request body and returns the decoded response reader.
// body[0] is the message type (set by NewBuffer).
func (c *Client) do(body []byte) (*Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doLocked(body)
}

// doLocked runs the request with redial + bounded retry. Caller holds c.mu.
func (c *Client) doLocked(body []byte) (*Reader, error) {
	op := msgName(body[0])
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	attempts := c.opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			// Breaker fast-fails never touched the wire, so they cost no
			// budget token; every other retry must withdraw one or stop.
			if !errors.Is(lastErr, ErrBreakerOpen) && !c.opts.Budget.TryRetry() {
				return nil, lastErr
			}
			c.retries.Add(1)
			time.Sleep(c.backoff(a))
		}
		if !c.opts.Breaker.Allow() {
			lastErr = &BreakerOpenError{Addr: c.addr}
			continue
		}
		if err := c.ensureConn(); err != nil {
			lastErr = err
			if !retryable(err) {
				return nil, err
			}
			c.opts.Breaker.OnFailure()
			continue
		}
		// Client-side fence: a redial that found the server at a newer
		// epoch leaves this client fenced until AdoptEpoch. Failing here
		// (rather than on the wire) keeps the error crisp even when the
		// server is mid-recovery.
		if c.opts.Retry.enabled() && c.ep >= 0 && c.se != c.ep && fencedMsg(body[0]) {
			return nil, &EpochError{Addr: c.addr, ClientEpoch: c.ep, ServerEpoch: c.se}
		}
		resp, err := c.roundTrip(op, body)
		if err != nil {
			lastErr = err
			if !retryable(err) {
				return nil, err
			}
			c.opts.Breaker.OnFailure()
			continue
		}
		// Any response at all proves the peer alive: close the breaker and
		// regrow the retry budget, whatever the response says.
		c.opts.Breaker.OnSuccess()
		c.opts.Budget.OnSuccess()
		r, err := DecodeResponse(resp)
		if err != nil {
			var ee *EpochError
			if errors.As(err, &ee) {
				// Server-side fence: record the newer epoch and surface a
				// fully-attributed error.
				c.se = ee.ServerEpoch
				return nil, &EpochError{Addr: c.addr, ClientEpoch: c.ep, ServerEpoch: ee.ServerEpoch}
			}
			var ce *RemoteCorruptError
			if errors.As(err, &ce) {
				return nil, &RemoteCorruptError{Addr: c.addr, Msg: ce.Msg}
			}
			var be *BusyError
			if errors.As(err, &be) {
				return nil, &BusyError{Addr: c.addr, Msg: be.Msg}
			}
			return nil, err
		}
		return r, nil
	}
	return nil, lastErr
}

// doMutating assigns the next sequence number (0 in legacy mode — no
// dedup) and runs the request built by build. Retried attempts reuse the
// same body, hence the same sequence, which is what lets the server dedup
// replays.
func (c *Client) doMutating(build func(seq int64) []byte) (*Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var seq int64
	if c.opts.Retry.enabled() {
		c.seq++
		seq = c.seq
	}
	return c.doLocked(build(seq))
}

// msgName names a message type for error and metric labels.
func msgName(t byte) string {
	switch t {
	case MsgPull:
		return "pull"
	case MsgPush:
		return "push"
	case MsgEndPullPhase:
		return "end-pull-phase"
	case MsgEndBatch:
		return "end-batch"
	case MsgCheckpoint:
		return "checkpoint"
	case MsgCompletedCkpt:
		return "completed-checkpoint"
	case MsgStats:
		return "stats"
	case MsgPing:
		return "ping"
	case MsgHello:
		return "hello"
	case MsgRollback:
		return "rollback"
	case MsgScrub:
		return "scrub"
	case MsgPullBag:
		return "pull-bag"
	case MsgMigrateRange:
		return "migrate-range"
	case MsgAdoptRange:
		return "adopt-range"
	case MsgDropRange:
		return "drop-range"
	case MsgReplicate:
		return "replicate"
	default:
		return fmt.Sprintf("msg-0x%02x", t)
	}
}

// Pull fetches weights for keys (len(keys)*dim floats). Pull is idempotent,
// so it needs no sequence number under retries.
func (c *Client) Pull(batch int64, keys []uint64) ([]float32, error) {
	b := NewBuffer(MsgPull, batch)
	b.PutKeys(keys)
	r, err := c.do(b.Bytes())
	if err != nil {
		return nil, err
	}
	return r.Floats()
}

// Push sends gradients for keys. The request carries the client ID and a
// sequence number so a retried push is applied at most once.
func (c *Client) Push(batch int64, keys []uint64, grads []float32) error {
	_, err := c.doMutating(func(seq int64) []byte {
		b := NewBuffer(MsgPush, batch)
		b.PutI64(c.id)
		b.PutI64(seq)
		b.PutKeys(keys)
		b.PutFloats(grads)
		return b.Bytes()
	})
	return err
}

// EndPullPhase signals pull completion for batch.
func (c *Client) EndPullPhase(batch int64) error {
	_, err := c.doMutating(func(seq int64) []byte {
		b := NewBuffer(MsgEndPullPhase, batch)
		b.PutI64(c.id)
		b.PutI64(seq)
		return b.Bytes()
	})
	return err
}

// EndBatch seals batch.
func (c *Client) EndBatch(batch int64) error {
	_, err := c.doMutating(func(seq int64) []byte {
		b := NewBuffer(MsgEndBatch, batch)
		b.PutI64(c.id)
		b.PutI64(seq)
		return b.Bytes()
	})
	return err
}

// RequestCheckpoint asks the node to checkpoint batch.
func (c *Client) RequestCheckpoint(batch int64) error {
	_, err := c.doMutating(func(seq int64) []byte {
		b := NewBuffer(MsgCheckpoint, batch)
		b.PutI64(c.id)
		b.PutI64(seq)
		return b.Bytes()
	})
	return err
}

// CompletedCheckpoint reads the node's durable checkpoint progress.
func (c *Client) CompletedCheckpoint() (int64, error) {
	r, err := c.do(NewBuffer(MsgCompletedCkpt, 0).Bytes())
	if err != nil {
		return 0, err
	}
	return r.I64()
}

// Rollback asks the node to roll its engine back to the given checkpoint
// (exempt from epoch fencing — it is the recovery path). Idempotent, so
// safe under retries without a sequence number.
func (c *Client) Rollback(target int64) error {
	_, err := c.do(NewBuffer(MsgRollback, target).Bytes())
	return err
}

// Scrub asks the node to run one full integrity pass over its persisted
// records and returns the report (exempt from epoch fencing — it is a
// repair operation). Idempotent in effect: a re-run re-verifies already
// healed records.
func (c *Client) Scrub() (psengine.ScrubReport, error) {
	r, err := c.do(NewBuffer(MsgScrub, 0).Bytes())
	if err != nil {
		return psengine.ScrubReport{}, err
	}
	return DecodeScrubReport(r)
}

// Stats fetches the node's counters.
func (c *Client) Stats() (psengine.Stats, error) {
	r, err := c.do(NewBuffer(MsgStats, 0).Bytes())
	if err != nil {
		return psengine.Stats{}, err
	}
	return DecodeStats(r)
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.do(NewBuffer(MsgPing, 0).Bytes())
	return err
}

// NodeHealth is what a ping learns about a node: its current epoch,
// whether it serves bag reads, and the measured round-trip time.
type NodeHealth struct {
	Epoch   int64
	Serving bool
	RTT     time.Duration
}

// PingInfo round-trips a health probe and decodes the node's epoch and
// serving status (exempt from epoch fencing, like Ping — it is how the
// failover path and operators observe a node).
func (c *Client) PingInfo() (NodeHealth, error) {
	start := time.Now()
	r, err := c.do(NewBuffer(MsgPing, 0).Bytes())
	if err != nil {
		return NodeHealth{}, err
	}
	rtt := time.Since(start)
	epoch, err := r.I64()
	if err != nil {
		return NodeHealth{}, err
	}
	serving, err := r.U8()
	if err != nil {
		return NodeHealth{}, err
	}
	return NodeHealth{Epoch: epoch, Serving: serving == 1, RTT: rtt}, nil
}

// MigrateRange exports up to max entries of the given hash intervals with
// dataVersion >= since and key > afterKey, in ascending key order; more
// reports whether the range continues past the page. Idempotent (a read),
// so safe under retries.
func (c *Client) MigrateRange(since int64, afterKey uint64, max int, ivs []HashInterval) ([]MigEntry, bool, error) {
	b := NewBuffer(MsgMigrateRange, since)
	b.PutI64(int64(afterKey))
	b.PutI64(int64(max))
	putIntervals(b, ivs)
	r, err := c.do(b.Bytes())
	if err != nil {
		return nil, false, err
	}
	moreB, err := r.U8()
	if err != nil {
		return nil, false, err
	}
	entries, err := readMigEntries(r)
	if err != nil {
		return nil, false, err
	}
	return entries, moreB == 1, nil
}

// AdoptRange installs migrated entries on the node; they are durable when
// the call returns. Idempotent — adopting the same entries twice converges
// — so safe under retries.
func (c *Client) AdoptRange(entries []MigEntry) error {
	b := NewBuffer(MsgAdoptRange, 0)
	putMigEntries(b, entries)
	_, err := c.do(b.Bytes())
	return err
}

// DropRange removes the intervals' keys from the node — index, cache and
// durable records — returning how many entries were dropped. Idempotent,
// so safe under retries.
func (c *Client) DropRange(ivs []HashInterval) (int64, error) {
	b := NewBuffer(MsgDropRange, 0)
	putIntervals(b, ivs)
	r, err := c.do(b.Bytes())
	if err != nil {
		return 0, err
	}
	return r.I64()
}

// Replicate installs read-only serving replicas of rows (len(keys) rows,
// row-major) on the node. Idempotent, so safe under retries.
func (c *Client) Replicate(keys []uint64, rows []float32) error {
	b := NewBuffer(MsgReplicate, 0)
	b.PutKeys(keys)
	b.PutFloats(rows)
	_, err := c.do(b.Bytes())
	return err
}

// Close closes the connection. A redial racing with Close observes the
// closed flag and discards its fresh connection, so Close is final: no
// socket survives it.
func (c *Client) Close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	if err := c.conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
