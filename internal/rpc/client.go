package rpc

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"openembedding/internal/psengine"
)

// Client is a connection to one parameter-server node. A Client serializes
// its requests; workers that want parallelism across shards hold one Client
// per node (as internal/cluster does).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// do sends one request body and returns the decoded response reader.
func (c *Client) do(body []byte) (*Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.bw, body); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(resp)
}

// Pull fetches weights for keys (len(keys)*dim floats).
func (c *Client) Pull(batch int64, keys []uint64) ([]float32, error) {
	b := NewBuffer(MsgPull, batch)
	b.PutKeys(keys)
	r, err := c.do(b.Bytes())
	if err != nil {
		return nil, err
	}
	return r.Floats()
}

// Push sends gradients for keys.
func (c *Client) Push(batch int64, keys []uint64, grads []float32) error {
	b := NewBuffer(MsgPush, batch)
	b.PutKeys(keys)
	b.PutFloats(grads)
	_, err := c.do(b.Bytes())
	return err
}

// EndPullPhase signals pull completion for batch.
func (c *Client) EndPullPhase(batch int64) error {
	_, err := c.do(NewBuffer(MsgEndPullPhase, batch).Bytes())
	return err
}

// EndBatch seals batch.
func (c *Client) EndBatch(batch int64) error {
	_, err := c.do(NewBuffer(MsgEndBatch, batch).Bytes())
	return err
}

// RequestCheckpoint asks the node to checkpoint batch.
func (c *Client) RequestCheckpoint(batch int64) error {
	_, err := c.do(NewBuffer(MsgCheckpoint, batch).Bytes())
	return err
}

// CompletedCheckpoint reads the node's durable checkpoint progress.
func (c *Client) CompletedCheckpoint() (int64, error) {
	r, err := c.do(NewBuffer(MsgCompletedCkpt, 0).Bytes())
	if err != nil {
		return 0, err
	}
	return r.I64()
}

// Stats fetches the node's counters.
func (c *Client) Stats() (psengine.Stats, error) {
	r, err := c.do(NewBuffer(MsgStats, 0).Bytes())
	if err != nil {
		return psengine.Stats{}, err
	}
	return DecodeStats(r)
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.do(NewBuffer(MsgPing, 0).Bytes())
	return err
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
