package rpc

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openembedding/internal/obs"
)

// Gray-failure hardening tests (DESIGN.md §16): the shared retry budget
// bounds retry amplification, the per-peer circuit breaker fast-fails a
// persistently failing node, and the server abandons work whose caller's
// propagated deadline already expired.

// TestRetryStormBudgetBounded is the retry-storm regression: many clients
// hammering one dead node share a retry budget, so the total connection
// attempts stay near clients + Max instead of clients × MaxAttempts.
func TestRetryStormBudgetBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			conn.Close() // every request attempt fails mid-handshake
		}
	}()

	reg := obs.NewRegistry()
	const clients = 16
	const budgetMax = 8
	budget := NewBudget(budgetMax, 0)
	budget.SetObs(reg)
	opts := Options{
		Retry: RetryPolicy{
			MaxAttempts: 4,
			Backoff:     100 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
			Seed:        9,
		},
		Budget:       budget,
		DialTimeout:  2 * time.Second,
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialOpts(ln.Addr().String(), opts)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			if err := c.Ping(); err == nil {
				t.Error("ping succeeded against a connection-killing listener")
			}
		}()
	}
	wg.Wait()

	// Per client: one initial-dial connect plus one free first attempt;
	// everything beyond that must have withdrawn a budget token.
	limit := int64(clients*2 + budgetMax)
	if got := accepts.Load(); got > limit {
		t.Fatalf("retry storm made %d connection attempts, budget bounds it to %d", got, limit)
	}
	if got := accepts.Load(); got <= clients {
		t.Fatalf("only %d connection attempts for %d clients; storm never happened", got, clients)
	}
	if got := reg.Snapshot().Counters["rpc_retry_budget_exhausted"]; got == 0 {
		t.Fatal("rpc_retry_budget_exhausted = 0; the bucket never emptied under a 48-retry demand")
	}
}

// TestBreakerStateMachine walks the breaker through its whole lifecycle
// as a pure function of call and failure counts.
func TestBreakerStateMachine(t *testing.T) {
	reg := obs.NewRegistry()
	k := NewBreaker(3, 4)
	k.SetObs(reg)

	type step struct {
		op   string // "fail", "ok", "allow"
		want bool   // for "allow": expected verdict
	}
	steps := []step{
		{op: "allow", want: true}, // closed
		{op: "fail"}, {op: "fail"},
		{op: "allow", want: true}, // 2 failures: still closed
		{op: "fail"},              // 3rd consecutive: opens
		{op: "allow", want: false},
		{op: "allow", want: false},
		{op: "allow", want: false},
		{op: "allow", want: true}, // every 4th blocked call probes
		{op: "fail"},              // probe failed: stays open
		{op: "allow", want: false},
		{op: "allow", want: false},
		{op: "allow", want: false},
		{op: "allow", want: true}, // next probe
		{op: "ok"},                // probe succeeded: closes
		{op: "allow", want: true},
		{op: "fail"}, {op: "fail"}, {op: "fail"}, // re-opens
		{op: "allow", want: false},
	}
	for i, s := range steps {
		switch s.op {
		case "fail":
			k.OnFailure()
		case "ok":
			k.OnSuccess()
		case "allow":
			if got := k.Allow(); got != s.want {
				t.Fatalf("step %d: Allow() = %v, want %v (open=%v)", i, got, s.want, k.Open())
			}
		}
	}
	if got := reg.Snapshot().Counters["rpc_breaker_open"]; got != 2 {
		t.Fatalf("rpc_breaker_open = %d, want 2 closed-to-open transitions", got)
	}
}

func TestBudgetTokenArithmetic(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBudget(2, 0.5)
	b.SetObs(reg)
	if !b.TryRetry() || !b.TryRetry() {
		t.Fatal("a full bucket of 2 denied one of its first two retries")
	}
	if b.TryRetry() {
		t.Fatal("empty bucket allowed a retry")
	}
	if got := reg.Snapshot().Counters["rpc_retry_budget_exhausted"]; got != 1 {
		t.Fatalf("exhausted counter = %d, want 1", got)
	}
	b.OnSuccess() // +0.5: still below 1 token
	if b.TryRetry() {
		t.Fatal("0.5 tokens allowed a retry")
	}
	b.OnSuccess() // 1.0
	if !b.TryRetry() {
		t.Fatal("1 token denied a retry")
	}
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens = %v after many successes, want capped at max 2", got)
	}
	// Nil budget allows everything.
	var nilB *Budget
	if !nilB.TryRetry() {
		t.Fatal("nil budget denied a retry")
	}
}

// TestBreakerFastFailCostsNoBudget: once the breaker is open, blocked
// attempts never withdraw retry tokens — fast-fails are free, so a broken
// peer cannot starve the budget other peers' retries draw from.
func TestBreakerFastFailCostsNoBudget(t *testing.T) {
	// A refused port: listen, note the address, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	budget := NewBudget(3, 0)
	bk := NewBreaker(1, 100) // opens on the first failure, probes rarely
	c, err := DialOpts(addr, Options{
		Retry:       RetryPolicy{MaxAttempts: 3, Backoff: 100 * time.Microsecond, Seed: 3},
		Budget:      budget,
		Breaker:     bk,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatalf("dial: %v (initial connect failures defer to redial-on-demand)", err)
	}
	defer c.Close()

	// First ping: the free first attempt fails on the wire and opens the
	// breaker; attempt 2 withdraws a token and is then blocked; attempt 3
	// follows a breaker fast-fail, so it is free.
	err = c.Ping()
	if err == nil {
		t.Fatal("ping to a refused port succeeded")
	}
	if !bk.Open() {
		t.Fatal("breaker still closed after a wire failure with threshold 1")
	}
	if got := budget.Tokens(); got != 2 {
		t.Fatalf("budget tokens = %v after first ping, want 2 (one wire retry)", got)
	}

	// Second ping: every attempt is breaker-blocked; none cost a token.
	err = c.Ping()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("ping err = %v, want ErrBreakerOpen", err)
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("breaker-open err = %v, want Is(ErrUnavailable) so failover treats it as degraded", err)
	}
	if !IsDegraded(err) {
		t.Fatalf("IsDegraded(%v) = false, want true", err)
	}
	if got := budget.Tokens(); got != 2 {
		t.Fatalf("budget tokens = %v after fast-failed ping, want 2 (fast-fails are free)", got)
	}
}

// TestDispatchDeadlineAbandon: a request whose propagated deadline expired
// while it queued is answered MsgErrBusy without touching the engine.
func TestDispatchDeadlineAbandon(t *testing.T) {
	reg := obs.NewRegistry()
	s := &Server{engine: testEngine(t)}
	s.reg = reg
	s.abandoned = reg.Counter("rpc_server_deadline_abandoned")
	elapsed := time.Duration(0)
	base := time.Unix(1000, 0)
	s.now = func() time.Time { return base.Add(elapsed) }

	ping := NewBuffer(MsgPing, 0).Bytes()

	// Fresh request, generous deadline: served normally.
	bound := epochUnbound
	arrival := s.now()
	resp := s.dispatchDeadline(&bound, ping, arrival, 5*time.Millisecond)
	if _, err := DecodeResponse(resp); err != nil {
		t.Fatalf("fresh request rejected: %v", err)
	}

	// 10ms of simulated queueing against a 5ms budget: abandoned busy.
	arrival = s.now()
	elapsed += 10 * time.Millisecond
	resp = s.dispatchDeadline(&bound, ping, arrival, 5*time.Millisecond)
	if _, err := DecodeResponse(resp); !errors.Is(err, ErrBusy) {
		t.Fatalf("expired request decoded to %v, want ErrBusy", err)
	}
	if got := reg.Snapshot().Counters["rpc_server_deadline_abandoned"]; got != 1 {
		t.Fatalf("abandoned counter = %d, want 1", got)
	}

	// Deadline 0 means "none propagated": never abandoned, however stale.
	arrival = s.now()
	elapsed += time.Hour
	resp = s.dispatchDeadline(&bound, ping, arrival, 0)
	if _, err := DecodeResponse(resp); err != nil {
		t.Fatalf("deadline-free request abandoned: %v", err)
	}
	if got := reg.Snapshot().Counters["rpc_server_deadline_abandoned"]; got != 1 {
		t.Fatalf("abandoned counter = %d, want still 1", got)
	}
}

func TestFrameDeadlineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte{MsgPing, 1, 2, 3}
	if err := WriteFrameDeadline(&buf, body, 1500*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	got, dl, err := ReadFrameDeadline(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body = %v, want %v", got, body)
	}
	if dl != 1500*time.Microsecond {
		t.Fatalf("deadline = %v, want 1.5ms", dl)
	}

	// Plain WriteFrame propagates no deadline.
	buf.Reset()
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	if _, dl, err := ReadFrameDeadline(bufio.NewReader(&buf)); err != nil || dl != 0 {
		t.Fatalf("plain frame deadline = (%v, %v), want (0, nil)", dl, err)
	}
}

// TestBusyErrorMappedEndToEnd: a handler error that reports Busy() comes
// back over the wire as MsgErrBusy and decodes to a *BusyError the
// failover layer treats as degraded but the retry loop does not retry.
func TestBusyErrorMappedEndToEnd(t *testing.T) {
	resp := BusyErrBody(errors.New("shed: inflight watermark exceeded"))
	_, err := DecodeResponse(resp)
	if err == nil {
		t.Fatal("busy body decoded as success")
	}
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("decoded err = %T, want *BusyError", err)
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want Is(ErrBusy)", err)
	}
	if IsRecoverable(err) {
		t.Fatal("busy is retryable; retrying a shedding node makes overload worse")
	}
	if !IsDegraded(err) {
		t.Fatal("busy must count as degraded so reads fail over")
	}
}

// FuzzPingDecode fuzzes the client-side decode of MsgPing responses
// (PingInfo's epoch + serving-flag layout): arbitrary bytes must never
// panic, only error.
func FuzzPingDecode(f *testing.F) {
	ok := &Buffer{b: []byte{MsgData}}
	ok.PutI64(7)
	ok.PutU8(1)
	f.Add(ok.Bytes())
	f.Add([]byte{MsgData})
	f.Add([]byte{MsgErr, 'x'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := DecodeResponse(body)
		if err != nil {
			return
		}
		epoch, err := r.I64()
		if err != nil {
			return
		}
		serving, err := r.U8()
		if err != nil {
			return
		}
		_, _ = epoch, serving
	})
}
