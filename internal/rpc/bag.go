package rpc

import "fmt"

// BagServer is the hook a node installs (ServerOptions.Bags) to serve
// MsgPullBag requests: a multi-sample embedding-bag gather with
// server-side pooling. PullBags pools each bag keys[offsets[i]:
// offsets[i+1]] into out[i*Dim():(i+1)*Dim()] (sum, or mean when mean is
// set; an empty bag pools to the zero vector). The offsets slice has
// already been validated against keys by the server.
type BagServer interface {
	Dim() int
	PullBags(mean bool, offsets []uint32, keys []uint64, out []float32) error
}

// ValidateBagOffsets checks a bag-offsets array against its key list:
// at least one entry, offsets[0] == 0, non-decreasing, and the final
// offset equal to len(keys). Zero-length bags are legal.
func ValidateBagOffsets(offsets []uint32, nkeys int) error {
	if len(offsets) == 0 {
		return fmt.Errorf("rpc: bag offsets empty")
	}
	if offsets[0] != 0 {
		return fmt.Errorf("rpc: bag offsets must start at 0, got %d", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("rpc: bag offsets decrease at %d (%d < %d)", i, offsets[i], offsets[i-1])
		}
	}
	if last := offsets[len(offsets)-1]; int(last) != nkeys {
		return fmt.Errorf("rpc: bag offsets end at %d, want %d keys", last, nkeys)
	}
	return nil
}

// PullBags gathers pooled embedding bags from the server: bag i is
// keys[offsets[i]:offsets[i+1]], pooled server-side (sum, or mean when
// mean is set) so the response carries one dim-sized row per bag.
// Read-only and idempotent — exempt from epoch fencing and sequence
// dedup, like Pull.
func (c *Client) PullBags(mean bool, offsets []uint32, keys []uint64) ([]float32, error) {
	b := NewBuffer(MsgPullBag, 0)
	if mean {
		b.PutU8(1)
	} else {
		b.PutU8(0)
	}
	b.PutU32s(offsets)
	b.PutKeys(keys)
	r, err := c.do(b.Bytes())
	if err != nil {
		return nil, err
	}
	return r.Floats()
}
