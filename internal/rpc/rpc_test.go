package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"openembedding/internal/engines/dramps"
	"openembedding/internal/optim"
	"openembedding/internal/psengine"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte{1, 2, 3, 4, 5}
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("frame = %v", got)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr [frameHdrSize]byte
	hdr[3] = 0xff // huge length
	if _, err := ReadFrame(bytes.NewReader(append(hdr[:], 0))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if err := WriteFrame(&bytes.Buffer{}, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestBufferReaderRoundTrip(t *testing.T) {
	b := NewBuffer(MsgPull, 42)
	b.PutKeys([]uint64{7, 8, 9})
	b.PutFloats([]float32{1.5, -2.5})
	b.PutString("hello")

	r := NewReader(b.Bytes())
	typ, err := r.Type()
	if err != nil || typ != MsgPull {
		t.Fatalf("type = %v, %v", typ, err)
	}
	batch, err := r.I64()
	if err != nil || batch != 42 {
		t.Fatalf("batch = %d, %v", batch, err)
	}
	keys, err := r.Keys()
	if err != nil || len(keys) != 3 || keys[2] != 9 {
		t.Fatalf("keys = %v, %v", keys, err)
	}
	vals, err := r.Floats()
	if err != nil || vals[0] != 1.5 || vals[1] != -2.5 {
		t.Fatalf("floats = %v, %v", vals, err)
	}
	s, err := r.String()
	if err != nil || s != "hello" {
		t.Fatalf("string = %q, %v", s, err)
	}
}

func TestReaderTruncation(t *testing.T) {
	b := NewBuffer(MsgPull, 1)
	b.PutKeys([]uint64{1, 2, 3})
	full := b.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_, err1 := r.Type()
		if err1 != nil {
			continue
		}
		if _, err := r.I64(); err != nil {
			continue
		}
		if _, err := r.Keys(); err == nil && cut < len(full) {
			t.Fatalf("truncated body at %d decoded fully", cut)
		}
	}
}

func TestDecodeResponseError(t *testing.T) {
	if _, err := DecodeResponse(ErrBody(errors.New("boom"))); err == nil || err.Error() != "rpc: remote: boom" {
		t.Fatalf("err = %v", err)
	}
	if _, err := DecodeResponse(OKBody()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse([]byte{0x55}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func testEngine(t *testing.T) psengine.Engine {
	t.Helper()
	e, err := dramps.New(psengine.Config{Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 1024}, dramps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestClientServerPullPush(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	keys := []uint64{1, 2}
	w1, err := cl.Pull(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != 8 {
		t.Fatalf("pull returned %d floats", len(w1))
	}
	grads := []float32{1, 1, 1, 1, 1, 1, 1, 1}
	if err := cl.Push(0, keys, grads); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndPullPhase(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndBatch(0); err != nil {
		t.Fatal(err)
	}
	w2, err := cl.Pull(1, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w2 {
		want := w1[i] - 0.1
		if d := w2[i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("w2[%d] = %v, want %v", i, w2[i], want)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 {
		t.Fatalf("stats entries = %d", st.Entries)
	}
}

func TestServerRemoteErrors(t *testing.T) {
	_, cl := startServer(t)
	// Push of an unknown key must surface the remote error.
	if err := cl.Push(0, []uint64{999}, make([]float32, 4)); err == nil {
		t.Fatal("remote error not surfaced")
	}
	// Checkpoint without configuration fails remotely but the connection
	// stays usable.
	if err := cl.RequestCheckpoint(0); err == nil {
		t.Fatal("unconfigured checkpoint accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after remote error: %v", err)
	}
}

func TestCompletedCheckpointDefault(t *testing.T) {
	_, cl := startServer(t)
	v, err := cl.CompletedCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if v != -1 {
		t.Fatalf("completed = %d, want -1", v)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			keys := []uint64{uint64(i), uint64(100 + i)}
			for b := int64(0); b < 10; b++ {
				if _, err := cl.Pull(b, keys); err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
