package rpc

import (
	"errors"
	"testing"
	"time"

	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
)

// ftClient dials with fault tolerance enabled and short timeouts so
// injected faults turn into fast failures.
func ftClient(t *testing.T, addr string, opts Options) *Client {
	t.Helper()
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry.MaxAttempts = 4
	}
	if opts.Retry.Backoff == 0 {
		opts.Retry.Backoff = time.Millisecond
	}
	opts.ReadTimeout = 2 * time.Second
	opts.WriteTimeout = 2 * time.Second
	cl, err := DialOpts(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestRedialAfterServerRestart: a fault-tolerant client survives the server
// process being torn down and re-listened on the same address at the same
// epoch — the redial plus handshake is transparent to the caller.
func TestRedialAfterServerRestart(t *testing.T) {
	eng := testEngine(t)
	srv, err := Serve("127.0.0.1:0", eng)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	reg := obs.NewRegistry()
	cl := ftClient(t, addr, Options{Obs: reg})
	if _, err := cl.Pull(0, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(addr, eng) // same address, same epoch (0)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer srv2.Close()

	if _, err := cl.Pull(0, []uint64{1, 2}); err != nil {
		t.Fatalf("pull across server restart: %v", err)
	}
	if got := reg.Snapshot().Counters["rpc_client_redials"]; got < 1 {
		t.Fatalf("rpc_client_redials = %d, want >= 1", got)
	}
}

// TestPushRetryDedup: the server drops a Push response on the floor (the
// mutation ran, the ack was lost). The client's retry re-delivers the same
// sequence number and the server replays its cached response instead of
// applying the gradient twice.
func TestPushRetryDedup(t *testing.T) {
	reg := obs.NewRegistry()
	// Server connection writes: #1 hello resp, #2 pull resp, #3 push resp.
	inj := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointConnWrite, Label: "server",
		Kind: faultinject.KindDrop, Nth: 3,
	})
	srv, err := ServeOpts("127.0.0.1:0", testEngine(t), ServerOptions{Inject: inj, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := ftClient(t, srv.Addr(), Options{})

	keys := []uint64{1}
	w1, err := cl.Pull(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Push(0, keys, []float32{1, 1, 1, 1}); err != nil {
		t.Fatalf("push through dropped ack: %v", err)
	}
	if err := cl.EndPullPhase(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.EndBatch(0); err != nil {
		t.Fatal(err)
	}
	w2, err := cl.Pull(1, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w2 {
		want := w1[i] - 0.1 // applied exactly once (twice would be -0.2)
		if d := w2[i] - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("w2[%d] = %v, want %v: push not deduplicated", i, w2[i], want)
		}
	}
	if got := reg.Snapshot().Counters["rpc_server_dedup_hits"]; got != 1 {
		t.Fatalf("rpc_server_dedup_hits = %d, want 1", got)
	}
}

// TestEpochFence: when the server moves to a new epoch (a recovery), the
// stale client's batch-protocol requests fail with a typed *EpochError —
// first from the server, then fast client-side — until AdoptEpoch
// re-synchronizes.
func TestEpochFence(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := ServeOpts("127.0.0.1:0", testEngine(t), ServerOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := ftClient(t, srv.Addr(), Options{})
	if _, err := cl.Pull(0, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if got := cl.Epoch(); got != 0 {
		t.Fatalf("client epoch = %d, want 0", got)
	}

	srv.SetEpoch(1) // the node "recovered"

	_, err = cl.Pull(0, []uint64{1})
	if !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("pull after epoch bump: %v, want ErrEpochFenced", err)
	}
	var ee *EpochError
	if !errors.As(err, &ee) || ee.ServerEpoch != 1 {
		t.Fatalf("epoch error not attributed: %v", err)
	}
	// Fenced fast-fail: the second attempt never touches the wire.
	if _, err := cl.Pull(0, []uint64{1}); !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("second pull: %v, want client-side fence", err)
	}
	// Unfenced requests still work while fenced.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping while fenced: %v", err)
	}

	ep, err := cl.AdoptEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep != 1 {
		t.Fatalf("AdoptEpoch = %d, want 1", ep)
	}
	if _, err := cl.Pull(0, []uint64{1}); err != nil {
		t.Fatalf("pull after AdoptEpoch: %v", err)
	}
	if got := reg.Snapshot().Counters["rpc_server_epoch_rejects"]; got < 1 {
		t.Fatalf("rpc_server_epoch_rejects = %d, want >= 1", got)
	}
}

// TestCloseDuringRedialNoLeak: Close racing an in-flight redial must win —
// the freshly dialed connection is discarded, the pending request fails
// with ErrClientClosed, and the server ends with zero live connections.
func TestCloseDuringRedialNoLeak(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := ServeOpts("127.0.0.1:0", testEngine(t), ServerOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Client write #2 (the ping after the dial-time hello) resets the conn.
	inj := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointConnWrite, Label: "c",
		Kind: faultinject.KindReset, Nth: 2,
	})
	cl, err := DialOpts(srv.Addr(), Options{
		Retry:        RetryPolicy{MaxAttempts: 1},
		Inject:       inj,
		Label:        "c",
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err == nil {
		t.Fatal("injected reset did not surface")
	}

	// The next request redials; the test hook holds the fresh conn between
	// dial and install long enough for Close to land in the window.
	cl.testRedialDelay = 200 * time.Millisecond
	done := make(chan error, 1)
	go func() { done <- cl.Ping() }()
	time.Sleep(50 * time.Millisecond)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClientClosed) {
		t.Fatalf("ping during close = %v, want ErrClientClosed", err)
	}
	if err := cl.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("ping after close = %v, want ErrClientClosed", err)
	}

	// No leaked socket: the server's conn gauge must drain to zero.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if reg.Snapshot().Gauges["rpc_server_conns"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server conns gauge stuck at %d: redialed conn leaked",
				reg.Snapshot().Gauges["rpc_server_conns"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerTornResponse: the server tears a response frame mid-write. A
// legacy client surfaces a typed transport error; a fresh connection works
// because the fault was scripted, not systemic.
func TestServerTornResponse(t *testing.T) {
	inj := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointConnWrite, Label: "server",
		Kind: faultinject.KindTorn, Nth: 1,
	})
	srv, err := ServeOpts("127.0.0.1:0", testEngine(t), ServerOptions{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := DialOpts(srv.Addr(), Options{ReadTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Pull(0, []uint64{1})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("torn response error = %v, want ErrUnavailable", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "pull" {
		t.Fatalf("torn response error not attributed: %v", err)
	}

	cl2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Pull(0, []uint64{1}); err != nil {
		t.Fatalf("fresh connection after torn response: %v", err)
	}
}

// TestTornResponseRetries: the same torn response is healed transparently
// when retries are enabled.
func TestTornResponseRetries(t *testing.T) {
	reg := obs.NewRegistry()
	// Server writes: #1 hello resp, #2 pull resp (torn), then after the
	// redial #3 hello resp and #4 the pull retry.
	inj := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointConnWrite, Label: "server",
		Kind: faultinject.KindTorn, Nth: 2,
	})
	srv, err := ServeOpts("127.0.0.1:0", testEngine(t), ServerOptions{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := ftClient(t, srv.Addr(), Options{Obs: reg})
	if _, err := cl.Pull(0, []uint64{1}); err != nil {
		t.Fatalf("pull through torn response: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["rpc_client_retries"] < 1 {
		t.Fatalf("rpc_client_retries = %d, want >= 1", snap.Counters["rpc_client_retries"])
	}
}

// TestLegacyClientAgainstEpochServer: a client that never handshakes binds
// lazily to the server's current epoch, so pre-fault-tolerance tooling
// keeps working against an un-crashed node.
func TestLegacyClientAgainstEpochServer(t *testing.T) {
	srv, err := ServeOpts("127.0.0.1:0", testEngine(t), ServerOptions{Epoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Pull(0, []uint64{1}); err != nil {
		t.Fatalf("legacy pull against epoch-5 server: %v", err)
	}
	if err := cl.EndPullPhase(0); err != nil {
		t.Fatal(err)
	}
}

// TestRollbackUnsupported: MsgRollback against a server without a rollback
// hook is a clean remote error, not a hang or disconnect.
func TestRollbackUnsupported(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Rollback(0); err == nil {
		t.Fatal("rollback accepted by a server without a rollback hook")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection broken after rollback error: %v", err)
	}
}
