package rpc

import (
	"net"
	"testing"
	"testing/quick"
)

// sumBags is a deterministic BagServer stub: element i of key k's row is
// float32(k) + float32(i), pooled per the request mode.
type sumBags struct{ dim int }

func (s *sumBags) Dim() int { return s.dim }

func (s *sumBags) PullBags(mean bool, offsets []uint32, keys []uint64, out []float32) error {
	for b := 0; b < len(offsets)-1; b++ {
		lo, hi := int(offsets[b]), int(offsets[b+1])
		dst := out[b*s.dim : (b+1)*s.dim]
		for i := range dst {
			dst[i] = 0
		}
		for _, k := range keys[lo:hi] {
			for i := range dst {
				dst[i] += float32(k) + float32(i)
			}
		}
		if mean && hi > lo {
			for i := range dst {
				dst[i] /= float32(hi - lo)
			}
		}
	}
	return nil
}

func TestValidateBagOffsets(t *testing.T) {
	cases := []struct {
		offsets []uint32
		nkeys   int
		ok      bool
	}{
		{[]uint32{0}, 0, true},          // zero bags, zero keys
		{[]uint32{0, 0}, 0, true},       // one zero-length bag
		{[]uint32{0, 2, 2, 5}, 5, true}, // middle bag empty
		{[]uint32{}, 0, false},          // no offsets at all
		{[]uint32{1, 2}, 2, false},      // doesn't start at 0
		{[]uint32{0, 3, 2}, 2, false},   // decreasing
		{[]uint32{0, 2}, 5, false},      // doesn't cover all keys
		{[]uint32{0, 9}, 5, false},      // offset past the end
		{[]uint32{0, 2, 4}, 3, false},   // last offset != len(keys)
		{[]uint32{0, 1, 1, 1}, 1, true}, // trailing empty bags
	}
	for _, c := range cases {
		err := ValidateBagOffsets(c.offsets, c.nkeys)
		if (err == nil) != c.ok {
			t.Errorf("ValidateBagOffsets(%v, %d) = %v, want ok=%v", c.offsets, c.nkeys, err, c.ok)
		}
	}
}

// encodePullBag builds a MsgPullBag body the way Client.PullBags does.
func encodePullBag(mean bool, offsets []uint32, keys []uint64) []byte {
	b := NewBuffer(MsgPullBag, 0)
	if mean {
		b.PutU8(1)
	} else {
		b.PutU8(0)
	}
	b.PutU32s(offsets)
	b.PutKeys(keys)
	return b.Bytes()
}

// TestPullBagRoundTripProperty: arbitrary well-formed bag requests must
// round-trip through the server handler to the stub's exact pooled floats.
func TestPullBagRoundTripProperty(t *testing.T) {
	const dim = 4
	srv := &Server{engine: testEngine(t), bags: &sumBags{dim: dim}}
	f := func(sizes []uint8, rawKeys []uint64, mean bool) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		offsets := make([]uint32, 1, len(sizes)+1)
		var keys []uint64
		next := 0
		for _, sz := range sizes {
			n := int(sz % 8) // bags of 0..7 keys
			for i := 0; i < n; i++ {
				if len(rawKeys) > 0 {
					keys = append(keys, rawKeys[next%len(rawKeys)]%1000)
					next++
				} else {
					keys = append(keys, uint64(next))
					next++
				}
			}
			offsets = append(offsets, uint32(len(keys)))
		}
		resp := srv.handle(encodePullBag(mean, offsets, keys))
		rd, err := DecodeResponse(resp)
		if err != nil {
			return false
		}
		got, err := rd.Floats()
		if err != nil || len(got) != (len(offsets)-1)*dim {
			return false
		}
		want := make([]float32, (len(offsets)-1)*dim)
		(&sumBags{dim: dim}).PullBags(mean, offsets, keys, want) //nolint:errcheck // stub never fails
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPullBagMalformed: the targeted malformed shapes from the wire spec —
// truncated offsets, offsets past the end of the key list, decreasing
// offsets, a bad pooling mode — must each come back MsgErr, and legal
// zero-length bags must not.
func TestPullBagMalformed(t *testing.T) {
	srv := &Server{engine: testEngine(t), bags: &sumBags{dim: 4}}

	// Legal: zero-length bags pool to the zero vector.
	resp := srv.handle(encodePullBag(false, []uint32{0, 0, 2, 2}, []uint64{1, 2}))
	if resp[0] != MsgData {
		t.Fatalf("zero-length bags rejected: %v", resp)
	}

	full := encodePullBag(false, []uint32{0, 2, 4}, []uint64{1, 2, 3, 4})
	cases := map[string][]byte{
		"missing mode":        full[:9],
		"truncated offsets":   full[:12],
		"offset past end":     encodePullBag(false, []uint32{0, 9}, []uint64{1, 2}),
		"decreasing offsets":  encodePullBag(false, []uint32{0, 2, 1, 3}, []uint64{1, 2, 3}),
		"missing leading 0":   encodePullBag(false, []uint32{1, 3}, []uint64{1, 2, 3}),
		"no offsets":          encodePullBag(false, nil, nil),
		"bad pooling mode":    append(append([]byte{}, full[:9]...), 7),
		"keys cut mid-stream": full[:len(full)-3],
	}
	for name, body := range cases {
		resp := srv.handle(body)
		if len(resp) == 0 || resp[0] != MsgErr {
			t.Errorf("%s: got response %v, want MsgErr", name, resp)
		}
	}

	// A server without a bag hook must reject, not panic.
	bare := &Server{engine: testEngine(t)}
	if resp := bare.handle(full); resp[0] != MsgErr {
		t.Fatalf("bag-less server answered %v", resp)
	}
}

// FuzzPullBagDecode: arbitrary (mode, offsets, keys) encodings — plus the
// handler-level truncations the fuzzer derives from them — must produce a
// response frame, never a panic, and well-formed inputs must produce
// MsgData.
func FuzzPullBagDecode(f *testing.F) {
	f.Add([]byte{0}, []byte{1, 0, 0, 0, 0, 0, 0, 0}, []byte{}, 0)             // one empty bag
	f.Add([]byte{0}, []byte{2, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0}, []byte{}, 0) // offset past end
	f.Add([]byte{1}, []byte{1, 0, 0, 0}, []byte{}, 3)                         // truncated offsets
	f.Add([]byte{9}, []byte{}, []byte{}, 0)                                   // bad mode
	f.Fuzz(func(t *testing.T, mode, rawOffsets, rawKeys []byte, cut int) {
		srv := &Server{engine: testEngine(t), bags: &sumBags{dim: 4}}
		body := append([]byte{MsgPullBag, 0, 0, 0, 0, 0, 0, 0, 0}, mode...)
		body = append(body, rawOffsets...)
		body = append(body, rawKeys...)
		if cut < 0 {
			cut = -cut
		}
		if n := cut % (len(body) + 1); n > 0 {
			body = body[:n]
		}
		resp := srv.handle(body)
		if len(resp) == 0 {
			t.Fatalf("empty response for body %v", body)
		}
		switch resp[0] {
		case MsgData, MsgErr, MsgErrCorrupt:
		default:
			t.Fatalf("unexpected response type 0x%02x", resp[0])
		}
	})
}

// TestPullBagConnectionSurvivesMalformed: a malformed bag over a live
// connection must answer MsgErr and leave the connection serving — the
// next request on the same conn succeeds.
func TestPullBagConnectionSurvivesMalformed(t *testing.T) {
	srv, err := ServeOpts("127.0.0.1:0", testEngine(t), ServerOptions{Bags: &sumBags{dim: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(body []byte) []byte {
		t.Helper()
		if err := WriteFrame(conn, body); err != nil {
			t.Fatalf("write: %v", err)
		}
		resp, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return resp
	}

	// Offsets claim more keys than the request carries.
	if resp := send(encodePullBag(false, []uint32{0, 5}, []uint64{1})); resp[0] != MsgErr {
		t.Fatalf("malformed bag answered %v, want MsgErr", resp)
	}
	// The same connection must still serve a good request...
	resp := send(encodePullBag(false, []uint32{0, 2}, []uint64{10, 20}))
	if resp[0] != MsgData {
		t.Fatalf("follow-up request answered %v, want MsgData", resp)
	}
	got, err := NewReader(resp[1:]).Floats()
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{30, 32, 34, 36} // (10+i)+(20+i) per element
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled row = %v, want %v", got, want)
		}
	}

	// ...and so must a regular high-level client against the same server.
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	vals, err := cl.PullBags(true, []uint32{0, 2}, []uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []float32{15, 16, 17, 18} { // mean of the two rows
		if vals[i] != w {
			t.Fatalf("client mean pool = %v", vals)
		}
	}
	if _, err := cl.PullBags(false, []uint32{0, 3}, []uint64{1}); err == nil {
		t.Fatal("client-side malformed bag not rejected by server")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("client connection broken after remote error: %v", err)
	}
}
