package rpc

import (
	"sync"

	"openembedding/internal/obs"
)

// Budget is a token bucket shared across every retry a set of clients
// performs. Each transparent retry withdraws one token; each successful
// request deposits PerSuccess back (capped at Max). When the bucket is
// empty, retries are denied and the request fails with its last error —
// so N concurrent callers hitting one dead node spend at most Max extra
// dial attempts between them, instead of N×MaxAttempts.
//
// First attempts are never budgeted: the budget bounds *amplification*,
// not offered load. A nil *Budget allows everything (legacy behavior).
type Budget struct {
	mu         sync.Mutex
	tokens     float64
	max        float64
	perSuccess float64

	exhausted *obs.Counter // rpc_retry_budget_exhausted (nil-safe)
}

// NewBudget returns a full bucket of max tokens that regains perSuccess
// tokens per successful request. max <= 0 panics: a budget that can never
// allow a retry should be expressed by disabling retries instead.
func NewBudget(max, perSuccess float64) *Budget {
	if max <= 0 {
		panic("rpc: retry budget max must be positive")
	}
	if perSuccess < 0 {
		perSuccess = 0
	}
	return &Budget{tokens: max, max: max, perSuccess: perSuccess}
}

// SetObs registers the rpc_retry_budget_exhausted counter on reg.
func (b *Budget) SetObs(reg *obs.Registry) {
	if b == nil || reg == nil {
		return
	}
	b.mu.Lock()
	b.exhausted = reg.Counter("rpc_retry_budget_exhausted")
	b.mu.Unlock()
}

// TryRetry withdraws one token, reporting whether the retry may proceed.
// A nil budget always allows.
func (b *Budget) TryRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.exhausted.Add(1)
		return false
	}
	b.tokens--
	return true
}

// OnSuccess deposits PerSuccess tokens (capped at Max). Nil-safe.
func (b *Budget) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.tokens += b.perSuccess; b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Tokens returns the current token count (tests and oectl).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Breaker is a per-peer circuit breaker. Threshold consecutive transport
// failures open it; while open, calls fail fast with *BreakerOpenError
// without touching the wire, except that every ProbeEvery-th blocked call
// is let through as a half-open probe. A probe success closes the breaker;
// a probe failure leaves it open. All transitions are functions of call
// and failure *counts*, never wall time, so breaker behavior in a seeded
// chaos run replays with the run.
//
// A nil *Breaker allows everything (legacy behavior).
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	probeEvery  int
	consecutive int // consecutive failures observed
	open        bool
	blocked     int // calls rejected since the breaker opened

	opens *obs.Counter // rpc_breaker_open (nil-safe)
}

// DefaultBreakerThreshold and DefaultBreakerProbeEvery are the NewBreaker
// defaults: open after 5 consecutive failures, probe every 8th blocked
// call.
const (
	DefaultBreakerThreshold  = 5
	DefaultBreakerProbeEvery = 8
)

// NewBreaker returns a closed breaker. threshold <= 0 and probeEvery <= 0
// take the defaults.
func NewBreaker(threshold, probeEvery int) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if probeEvery <= 0 {
		probeEvery = DefaultBreakerProbeEvery
	}
	return &Breaker{threshold: threshold, probeEvery: probeEvery}
}

// SetObs registers the rpc_breaker_open counter on reg; it counts
// closed-to-open transitions.
func (k *Breaker) SetObs(reg *obs.Registry) {
	if k == nil || reg == nil {
		return
	}
	k.mu.Lock()
	k.opens = reg.Counter("rpc_breaker_open")
	k.mu.Unlock()
}

// Allow reports whether a call may touch the wire: always while closed,
// every ProbeEvery-th call while open (the half-open probe). A nil
// breaker always allows.
func (k *Breaker) Allow() bool {
	if k == nil {
		return true
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if !k.open {
		return true
	}
	k.blocked++
	return k.blocked%k.probeEvery == 0
}

// OnSuccess records a successful round-trip: failures reset, and an open
// breaker closes (the probe succeeded). Nil-safe.
func (k *Breaker) OnSuccess() {
	if k == nil {
		return
	}
	k.mu.Lock()
	k.consecutive = 0
	k.open = false
	k.blocked = 0
	k.mu.Unlock()
}

// OnFailure records a transport failure; Threshold consecutive failures
// open the breaker. Nil-safe.
func (k *Breaker) OnFailure() {
	if k == nil {
		return
	}
	k.mu.Lock()
	k.consecutive++
	if !k.open && k.consecutive >= k.threshold {
		k.open = true
		k.blocked = 0
		k.opens.Add(1)
	}
	k.mu.Unlock()
}

// Open reports whether the breaker is currently open (tests and oectl).
func (k *Breaker) Open() bool {
	if k == nil {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.open
}
