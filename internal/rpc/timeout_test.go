package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"openembedding/internal/engines/dramps"
	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/psengine"
)

func timeoutTestEngine(t *testing.T) psengine.Engine {
	t.Helper()
	eng, err := dramps.New(psengine.Config{
		Dim: 4, Optimizer: optim.NewSGD(0.1), Capacity: 1024, CacheEntries: 1024,
	}, dramps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.DialTimeout != DefaultTimeout || o.ReadTimeout != DefaultTimeout || o.WriteTimeout != DefaultTimeout {
		t.Fatalf("zero options did not default to 30s: %+v", o)
	}
	o = Options{DialTimeout: NoTimeout, ReadTimeout: NoTimeout, WriteTimeout: time.Second}.withDefaults()
	if o.DialTimeout != 0 || o.ReadTimeout != 0 {
		t.Fatalf("NoTimeout did not disable deadlines: %+v", o)
	}
	if o.WriteTimeout != time.Second {
		t.Fatalf("explicit timeout overridden: %+v", o)
	}
}

// TestReadTimeoutOnHungServer connects to a listener that accepts and then
// never responds: the request must fail with the typed timeout error after
// the configured read deadline, not hang.
func TestReadTimeoutOnHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		<-done // swallow the request, never answer
	}()

	c, err := DialOpts(ln.Addr().String(), Options{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Ping()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ping of a hung server succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error does not match ErrTimeout: %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error is not a *TimeoutError: %v", err)
	}
	if te.Op != "ping" || te.Addr != ln.Addr().String() {
		t.Fatalf("timeout error not attributed: %+v", te)
	}
	if !te.Timeout() {
		t.Fatal("TimeoutError.Timeout() = false")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline was 100ms", elapsed)
	}

	// The connection is poisoned: later requests fail fast with the same
	// typed error instead of writing into a desynchronized stream.
	start = time.Now()
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("second ping after timeout: %v", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("poisoned client took %v to fail", since)
	}
}

// TestClientServerMetrics round-trips real requests and checks both sides'
// obs metrics populate.
func TestClientServerMetrics(t *testing.T) {
	serverReg := obs.NewRegistry()
	clientReg := obs.NewRegistry()
	srv, err := ServeOpts("127.0.0.1:0", timeoutTestEngine(t), ServerOptions{Obs: serverReg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialOpts(srv.Addr(), Options{Obs: clientReg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pull(0, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(0, []uint64{1, 2, 3}, make([]float32, 12)); err != nil {
		t.Fatal(err)
	}

	cs := clientReg.Snapshot()
	if got := cs.Histograms["rpc_client_rtt_ns"].Count; got != 3 {
		t.Errorf("client rtt count = %d, want 3", got)
	}
	if cs.Counters["rpc_client_bytes_out"] == 0 || cs.Counters["rpc_client_bytes_in"] == 0 {
		t.Errorf("client byte counters empty: %+v", cs.Counters)
	}
	if cs.Counters["rpc_client_timeouts"] != 0 {
		t.Errorf("spurious timeouts: %d", cs.Counters["rpc_client_timeouts"])
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		ss := serverReg.Snapshot()
		if ss.Histograms["rpc_server_pull_ns"].Count == 1 &&
			ss.Histograms["rpc_server_push_ns"].Count == 1 &&
			ss.Counters["rpc_server_requests"] == 3 &&
			ss.Counters["rpc_server_bytes_in"] > 0 &&
			ss.Gauges["rpc_server_conns"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server metrics never settled: %+v", ss)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
