package rpc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestWireRoundTripProperty: arbitrary key/float/string payloads must
// survive encode -> frame -> decode bit-exactly.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(batch int64, keys []uint64, vals []float32, s string) bool {
		if len(s) > 1<<16 {
			s = s[:1<<16]
		}
		b := NewBuffer(MsgPush, batch)
		b.PutKeys(keys)
		b.PutFloats(vals)
		b.PutString(s)

		var wire bytes.Buffer
		if err := WriteFrame(&wire, b.Bytes()); err != nil {
			return false
		}
		body, err := ReadFrame(&wire)
		if err != nil {
			return false
		}
		r := NewReader(body)
		typ, err := r.Type()
		if err != nil || typ != MsgPush {
			return false
		}
		gotBatch, err := r.I64()
		if err != nil || gotBatch != batch {
			return false
		}
		gotKeys, err := r.Keys()
		if err != nil || len(gotKeys) != len(keys) {
			return false
		}
		for i := range keys {
			if gotKeys[i] != keys[i] {
				return false
			}
		}
		gotVals, err := r.Floats()
		if err != nil || len(gotVals) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float32bits(gotVals[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		gotS, err := r.String()
		return err == nil && gotS == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFrameTear: a frame torn at any byte boundary — what the injector's
// KindTorn fault produces on the wire — must decode to an error, never a
// panic, a hang, or silently truncated data.
func FuzzFrameTear(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(3))
	f.Add([]byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint16(40))
	f.Fuzz(func(t *testing.T, body []byte, cutAt uint16) {
		var wire bytes.Buffer
		if err := WriteFrame(&wire, body); err != nil {
			t.Skip("body over MaxFrame")
		}
		full := wire.Bytes()
		cut := int(cutAt) % (len(full) + 1)
		got, err := ReadFrame(bytes.NewReader(full[:cut]))
		if cut < len(full) {
			if err == nil {
				t.Fatalf("frame torn at %d/%d decoded without error", cut, len(full))
			}
			return
		}
		if err != nil {
			t.Fatalf("intact frame failed to decode: %v", err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("intact frame decoded to %v, want %v", got, body)
		}
	})
}

// TestServerHandleNeverPanics: arbitrary request bodies must produce a
// response (usually MsgErr), never a panic or a hang.
func TestServerHandleNeverPanics(t *testing.T) {
	srv := &Server{engine: testEngine(t)}
	f := func(body []byte) bool {
		resp := srv.handle(body)
		if len(resp) == 0 {
			return false
		}
		// Every response must decode as OK, Data or a remote error.
		_, err := DecodeResponse(resp)
		_ = err // remote errors are fine; malformed responses are not
		switch resp[0] {
		case MsgOK, MsgData, MsgErr:
			return true
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Targeted malformed cases.
	for _, body := range [][]byte{
		nil,
		{},
		{MsgPull},                         // missing batch
		{MsgPull, 0, 0, 0, 0, 0, 0, 0, 0}, // missing keys
		{MsgPush, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0}, // truncated count
		{0x7f, 0, 0, 0, 0, 0, 0, 0, 0},             // unknown type
	} {
		resp := srv.handle(body)
		if len(resp) == 0 || resp[0] != MsgErr {
			t.Fatalf("malformed body %v got response %v", body, resp)
		}
	}
}
