// Package train implements synchronous data-parallel DLRM training
// (Sec. II-A): every worker pulls its batch's embedding entries, the dense
// model runs forward/backward, gradients are pushed back, and a barrier
// separates batches. Dense parameters are kept in sync across workers by
// averaging after every batch (the Horovod allreduce of the paper's setup).
//
// The trainer drives any parameter server that speaks the batch protocol —
// a local engine (psengine.Engine via Local) or a TCP cluster
// (cluster.Client) — which is exactly how the examples exercise the full
// stack with a real DeepFM.
package train

import (
	"fmt"
	"sync"
	"time"

	"openembedding/internal/model"
	"openembedding/internal/obs"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
	"openembedding/internal/workload"
)

// ParamServer is the trainer's view of the embedding store.
type ParamServer interface {
	Pull(batch int64, keys []uint64, dst []float32) error
	Push(batch int64, keys []uint64, grads []float32) error
	EndPullPhase(batch int64) error
	EndBatch(batch int64) error
	RequestCheckpoint(batch int64) error
	CompletedCheckpoint() (int64, error)
}

// Local adapts a psengine.Engine to the ParamServer interface.
type Local struct{ Engine psengine.Engine }

// Pull implements ParamServer.
func (l Local) Pull(batch int64, keys []uint64, dst []float32) error {
	return l.Engine.Pull(batch, keys, dst)
}

// Push implements ParamServer.
func (l Local) Push(batch int64, keys []uint64, grads []float32) error {
	return l.Engine.Push(batch, keys, grads)
}

// EndPullPhase implements ParamServer.
func (l Local) EndPullPhase(batch int64) error {
	l.Engine.EndPullPhase(batch)
	return nil
}

// EndBatch implements ParamServer.
func (l Local) EndBatch(batch int64) error { return l.Engine.EndBatch(batch) }

// RequestCheckpoint implements ParamServer.
func (l Local) RequestCheckpoint(batch int64) error { return l.Engine.RequestCheckpoint(batch) }

// CompletedCheckpoint implements ParamServer. Like the RPC server's
// progress hook, it first drives the engine's checkpoint finalizer when
// the engine exposes one, so a trainer's commit-gate poll makes progress
// instead of spinning on a checkpoint nothing else is finishing.
func (l Local) CompletedCheckpoint() (int64, error) {
	if adv, ok := l.Engine.(interface{ AdvanceCheckpoints() error }); ok {
		if err := adv.AdvanceCheckpoints(); err != nil {
			return -1, err
		}
	}
	return l.Engine.CompletedCheckpoint(), nil
}

// Recoverer is the recovery half of a fault-tolerant ParamServer
// (implemented by cluster.Client). After a Recoverable request failure the
// trainer queries the committed checkpoint, calls Recover(commit) to roll
// every node back to it, rewinds its own dense model and data streams, and
// replays from commit+1 (DESIGN.md §10).
type Recoverer interface {
	Recover(commit int64) error
	Recoverable(err error) bool
}

// Config configures a training run.
type Config struct {
	// Workers is the number of data-parallel workers (the paper's GPUs).
	Workers int
	// BatchSize is the per-worker samples per step (the paper's default
	// global batch is 4096).
	BatchSize int
	// Model configures the dense DeepFM part; Fields/Dim must match the
	// data and the PS engine dimension.
	Model model.DeepFMConfig
	// DataSeed seeds each worker's data stream (worker w uses DataSeed+w).
	DataSeed int64
	// Data builds a per-worker sample stream.
	Data func(seed int64) *workload.CriteoSynthetic
	// CheckpointEvery requests a checkpoint every N batches (0 disables).
	CheckpointEvery int
	// DenseCheckpointDir, when set, also dumps the dense model at every
	// checkpoint (worker 0's copy — all replicas are identical after the
	// allreduce), completing the paper's "Proposed Checkpoint".
	DenseCheckpointDir string
	// StartBatch is the first batch ID (checkpoint+1 when resuming).
	StartBatch int64
	// MaxReplays bounds how many rollback + replay recoveries one Run may
	// perform (0, the default, disables recovery: the first error aborts
	// the run exactly as before). Recovery requires a ParamServer that
	// implements Recoverer and, for a remote cluster, engines configured
	// with RetainCheckpoints >= 2. While recovery is enabled every
	// requested checkpoint is also gated to completion before training
	// continues, so the cluster-wide commit is always a batch the trainer
	// holds a dense snapshot for.
	MaxReplays int
	// CommitTimeout bounds each checkpoint-commit gate when MaxReplays > 0.
	// Defaults to 30s.
	CommitTimeout time.Duration
	// BatchStart, when set, is called just before each batch's pull phase
	// with the batch ID — the hook where a chaos harness fires its node
	// crash schedule. Replayed batches invoke it again; a harness that must
	// act once per batch dedupes by ID.
	BatchStart func(batch int64)
	// Obs, when set, receives per-batch wall-clock metrics: train_batch_ns
	// and the train_pull_ns / train_compute_ns / train_push_ns phase
	// histograms, plus the train_virtual_wall_skew_ns gauge when Meter is
	// also set.
	Obs *obs.Registry
	// Spans, when set, records train.batch spans with pull/compute/push
	// children per batch.
	Spans *obs.Tracer
	// Meter, when set together with Obs, is the virtual-time meter charged
	// by the engine under test; the trainer reports cumulative virtual time
	// minus cumulative wall time as train_virtual_wall_skew_ns (how far the
	// simulation's cost model runs ahead of — positive — or behind real
	// execution).
	Meter *simclock.Meter
}

// Trainer runs synchronous training against a parameter server.
type Trainer struct {
	cfg     Config
	ps      ParamServer
	workers []*worker

	// snaps holds dense-parameter snapshots keyed by committed batch (and
	// StartBatch-1 for the initial state) while recovery is enabled; a
	// rewind restores the snapshot of the rollback target.
	snaps map[int64][]float32

	// metrics (nil, and free, without Config.Obs)
	batchNS   *obs.Histogram
	pullNS    *obs.Histogram
	computeNS *obs.Histogram
	pushNS    *obs.Histogram
	skew      *obs.Gauge
}

type worker struct {
	id    int
	model *model.DeepFM
	data  *workload.CriteoSynthetic
}

// New builds a trainer. Every worker starts from identical dense
// parameters (same model seed), as a broadcast would ensure.
func New(cfg Config, ps ParamServer) (*Trainer, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Data == nil {
		return nil, fmt.Errorf("train: Data source required")
	}
	tr := &Trainer{cfg: cfg, ps: ps}
	if reg := cfg.Obs; reg != nil {
		tr.batchNS = reg.Histogram("train_batch_ns")
		tr.pullNS = reg.Histogram("train_pull_ns")
		tr.computeNS = reg.Histogram("train_compute_ns")
		tr.pushNS = reg.Histogram("train_push_ns")
		if cfg.Meter != nil {
			tr.skew = reg.Gauge("train_virtual_wall_skew_ns")
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		tr.workers = append(tr.workers, &worker{
			id:    w,
			model: model.NewDeepFM(cfg.Model),
			data:  cfg.Data(cfg.DataSeed + int64(w)),
		})
	}
	return tr, nil
}

// StepStats reports one global batch.
type StepStats struct {
	Batch int64
	// Loss is the mean training log loss across workers.
	Loss float64
}

// EpochStats summarizes a Run.
type EpochStats struct {
	Steps       []StepStats
	FinalLoss   float64
	Checkpoints int64
}

// Run executes steps synchronous batches and returns per-step statistics.
//
// With Config.MaxReplays > 0 and a Recoverer ParamServer, a recoverable
// batch failure (node crash, epoch fence, exhausted transport retries)
// triggers the replay protocol instead of aborting: the trainer rolls the
// cluster back to the committed checkpoint, restores its dense snapshot,
// rewinds every worker's data stream, truncates the recorded steps, and
// re-executes from the batch after the commit. Replayed batches recompute
// bit-identically — same samples, same dense state, same embedding state —
// so a chaos run converges to the exact state of a fault-free run.
func (tr *Trainer) Run(steps int) (EpochStats, error) {
	var out EpochStats
	cfg := tr.cfg

	// Baselines for the virtual-vs-wall skew gauge: how much virtual time
	// the cost model charges per unit of wall time over this run.
	var wallBase, virtBase time.Duration
	if tr.skew != nil {
		wallBase = cfg.Obs.Now()
		virtBase = cfg.Meter.Sum()
	}

	rec, _ := tr.ps.(Recoverer)
	if cfg.MaxReplays > 0 {
		if rec == nil {
			return out, fmt.Errorf("train: MaxReplays set but the parameter server implements no Recoverer")
		}
		tr.snaps = map[int64][]float32{}
		tr.snapshotDense(cfg.StartBatch - 1)
	}

	replays := 0
	for s := 0; s < steps; {
		batch := cfg.StartBatch + int64(s)
		if cfg.BatchStart != nil {
			cfg.BatchStart(batch)
		}
		err := tr.runBatch(&out, batch, wallBase, virtBase)
		if err == nil {
			s++
			continue
		}
		if cfg.MaxReplays <= 0 || !rec.Recoverable(err) || replays >= cfg.MaxReplays {
			return out, err
		}
		replays++
		commit, rerr := tr.rewind(rec, &out)
		if rerr != nil {
			//oevet:errwrap-ok the superseded recoverable error is cited as context; the live rewind failure is wrapped
			return out, fmt.Errorf("train: replay %d (after %v): %w", replays, err, rerr)
		}
		s = int(commit + 1 - cfg.StartBatch)
	}
	return out, nil
}

// runBatch executes one synchronous batch end to end: pull, compute,
// allreduce, push, seal, and (when due) checkpoint request — gated to
// completion when recovery is on. Any error leaves the batch incomplete;
// the caller either aborts or rolls back and replays.
func (tr *Trainer) runBatch(out *EpochStats, batch int64, wallBase, virtBase time.Duration) error {
	cfg := tr.cfg
	fields := cfg.Model.Fields
	dim := cfg.Model.Dim
	var batchStart time.Duration
	if tr.batchNS != nil {
		batchStart = cfg.Obs.Now()
	}
	bsp := cfg.Spans.Start("train.batch", "train", 0, batch)
	psp := cfg.Spans.Start("train.pull", "train", 0, batch)

	type workItem struct {
		samples []workload.Sample
		keys    []uint64
		keyIdx  map[uint64]int
		weights []float32
		loss    float64
		grads   []float32 // per unique key, summed
		err     error
	}
	items := make([]*workItem, len(tr.workers))

	// Pull phase: all workers in parallel (the paper's burst).
	var wg sync.WaitGroup
	for i, w := range tr.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			it := &workItem{}
			items[i] = it
			it.samples = w.data.NextBatch(cfg.BatchSize)
			it.keys = workload.UniqueKeys(it.samples)
			it.keyIdx = make(map[uint64]int, len(it.keys))
			for j, k := range it.keys {
				it.keyIdx[k] = j
			}
			it.weights = make([]float32, len(it.keys)*dim)
			it.err = tr.ps.Pull(batch, it.keys, it.weights)
		}(i, w)
	}
	wg.Wait()
	for _, it := range items {
		if it.err != nil {
			return it.err
		}
	}
	if err := tr.ps.EndPullPhase(batch); err != nil {
		return err
	}
	psp.EndArg("workers", int64(len(tr.workers)))
	if tr.pullNS != nil {
		tr.pullNS.Observe(cfg.Obs.Now() - batchStart)
	}
	var computeStart time.Duration
	if tr.computeNS != nil {
		computeStart = cfg.Obs.Now()
	}
	csp := cfg.Spans.Start("train.compute", "train", 0, batch)

	// Compute phase: dense forward/backward per worker, gradients
	// aggregated per unique key.
	for i, w := range tr.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			it := items[i]
			n := len(it.samples)
			emb := make([]float32, n*fields*dim)
			dense := make([]float32, n*cfg.Model.Dense)
			labels := make([]float32, n)
			for ex, sm := range it.samples {
				for f := 0; f < fields; f++ {
					ki := it.keyIdx[sm.Sparse[f]]
					copy(emb[(ex*fields+f)*dim:(ex*fields+f+1)*dim], it.weights[ki*dim:(ki+1)*dim])
				}
				copy(dense[ex*cfg.Model.Dense:(ex+1)*cfg.Model.Dense], sm.Dense[:cfg.Model.Dense])
				labels[ex] = sm.Label
			}
			loss, embGrad, err := w.model.Step(emb, dense, labels)
			if err != nil {
				it.err = err
				return
			}
			it.loss = loss
			it.grads = make([]float32, len(it.keys)*dim)
			for ex := range it.samples {
				for f := 0; f < fields; f++ {
					ki := it.keyIdx[it.samples[ex].Sparse[f]]
					src := embGrad[(ex*fields+f)*dim : (ex*fields+f+1)*dim]
					dst := it.grads[ki*dim : (ki+1)*dim]
					for d := range src {
						dst[d] += src[d]
					}
				}
			}
		}(i, w)
	}
	wg.Wait()
	for _, it := range items {
		if it.err != nil {
			return it.err
		}
	}

	// Dense allreduce: average parameters across workers.
	tr.allreduce()
	csp.End()
	if tr.computeNS != nil {
		tr.computeNS.Observe(cfg.Obs.Now() - computeStart)
	}
	var pushStart time.Duration
	if tr.pushNS != nil {
		pushStart = cfg.Obs.Now()
	}
	usp := cfg.Spans.Start("train.push", "train", 0, batch)

	// Push phase: all workers in parallel.
	var stepLoss float64
	for i, w := range tr.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			it := items[i]
			it.err = tr.ps.Push(batch, it.keys, it.grads)
		}(i, w)
	}
	wg.Wait()
	for _, it := range items {
		if it.err != nil {
			return it.err
		}
		stepLoss += it.loss
	}
	stepLoss /= float64(len(tr.workers))

	if err := tr.ps.EndBatch(batch); err != nil {
		return err
	}
	usp.End()
	if tr.pushNS != nil {
		tr.pushNS.Observe(cfg.Obs.Now() - pushStart)
	}
	if cfg.CheckpointEvery > 0 && int(batch-cfg.StartBatch+1)%cfg.CheckpointEvery == 0 {
		if err := tr.ps.RequestCheckpoint(batch); err != nil {
			return err
		}
		if tr.snaps != nil {
			// Snapshot BEFORE gating: a failure mid-gate can still leave this
			// batch as the cluster-wide commit, and the rewind needs the
			// matching dense state. The dense model does not change between
			// here and the gate.
			tr.snapshotDense(batch)
			if err := tr.gateCheckpoint(batch); err != nil {
				return err
			}
		}
		if cfg.DenseCheckpointDir != "" {
			if err := tr.SaveDense(cfg.DenseCheckpointDir, batch, nil); err != nil {
				return err
			}
		}
		out.Checkpoints++
	}
	out.Steps = append(out.Steps, StepStats{Batch: batch, Loss: stepLoss})
	out.FinalLoss = stepLoss
	bsp.End()
	if tr.batchNS != nil {
		tr.batchNS.Observe(cfg.Obs.Now() - batchStart)
	}
	if tr.skew != nil {
		tr.skew.Set(int64((cfg.Meter.Sum() - virtBase) - (cfg.Obs.Now() - wallBase)))
	}
	return nil
}

// snapshotDense records the current dense parameters (all replicas are
// identical at a batch boundary) under the given batch ID, keeping only
// the snapshots a future rollback can still target: the commit is always
// one of the two newest gated checkpoints, or the predecessor state before
// any checkpoint committed.
func (tr *Trainer) snapshotDense(batch int64) {
	tr.snaps[batch] = tr.workers[0].model.Params()
	for len(tr.snaps) > 3 {
		oldest := int64(1<<63 - 1)
		for b := range tr.snaps {
			if b < oldest {
				oldest = b
			}
		}
		delete(tr.snaps, oldest)
	}
}

// gateCheckpoint polls the parameter server until the requested checkpoint
// is durable cluster-wide; each poll also drives checkpoint progress (over
// RPC through the server's progress hook, locally through
// AdvanceCheckpoints). Bounded by Config.CommitTimeout.
func (tr *Trainer) gateCheckpoint(batch int64) error {
	timeout := tr.cfg.CommitTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		done, err := tr.ps.CompletedCheckpoint()
		if err != nil {
			return err
		}
		if done >= batch {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("train: checkpoint %d did not commit within %v (at %d)", batch, timeout, done)
		}
	}
}

// rewind runs the worker half of the recovery protocol after a recoverable
// batch failure: roll every node back to the cluster-wide committed
// checkpoint, restore the matching dense snapshot on every worker, rebuild
// each worker's data stream and skip the batches already committed, and
// truncate the recorded steps. It returns the commit the run resumes
// after.
func (tr *Trainer) rewind(rec Recoverer, out *EpochStats) (int64, error) {
	cfg := tr.cfg
	commit, err := tr.ps.CompletedCheckpoint()
	if err != nil {
		return -1, fmt.Errorf("locating commit: %w", err)
	}
	if commit < cfg.StartBatch-1 {
		return -1, fmt.Errorf("commit %d is before the run's start batch %d", commit, cfg.StartBatch)
	}
	snap, ok := tr.snaps[commit]
	if !ok {
		return -1, fmt.Errorf("no dense snapshot for commit %d", commit)
	}
	if err := rec.Recover(commit); err != nil {
		return -1, err
	}
	consumed := int(commit - cfg.StartBatch + 1)
	for _, w := range tr.workers {
		// SetParams only fails on length mismatch, impossible here.
		_ = w.model.SetParams(snap)
		w.data = cfg.Data(cfg.DataSeed + int64(w.id))
		for b := 0; b < consumed; b++ {
			w.data.NextBatch(cfg.BatchSize)
		}
	}
	for len(out.Steps) > 0 && out.Steps[len(out.Steps)-1].Batch > commit {
		out.Steps = out.Steps[:len(out.Steps)-1]
	}
	if n := len(out.Steps); n > 0 {
		out.FinalLoss = out.Steps[n-1].Loss
	} else {
		out.FinalLoss = 0
	}
	return commit, nil
}

// allreduce averages every worker's dense parameters — the synchronous
// data-parallel guarantee that all replicas stay identical.
func (tr *Trainer) allreduce() {
	if len(tr.workers) == 1 {
		return
	}
	sum := tr.workers[0].model.Params()
	for _, w := range tr.workers[1:] {
		for i, v := range w.model.Params() {
			sum[i] += v
		}
	}
	inv := float32(1) / float32(len(tr.workers))
	for i := range sum {
		sum[i] *= inv
	}
	for _, w := range tr.workers {
		// SetParams only fails on length mismatch, impossible here.
		_ = w.model.SetParams(sum)
	}
}

// Model returns worker 0's dense model (all replicas are identical after
// each batch).
func (tr *Trainer) Model() *model.DeepFM { return tr.workers[0].model }
