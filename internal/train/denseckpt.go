package train

import (
	"fmt"

	"openembedding/internal/checkpoint"
	"openembedding/internal/device"
)

// Dense-model checkpointing completes the paper's "Proposed Checkpoint"
// (Table IV): the sparse features use the engine's batch-aware scheme,
// while the dense model — identical on every worker after each batch's
// allreduce — is dumped from any single worker, which is why its cost does
// not grow with the GPU count (Sec. VI-D2).

// denseKey tags the single dense-parameter record inside a checkpoint
// delta file.
const denseKey = ^uint64(0)

// SaveDense writes the trainer's dense parameters as the dense checkpoint
// for batch into dir. dev models the checkpoint device (nil is free).
func (tr *Trainer) SaveDense(dir string, batch int64, dev *device.Timed) error {
	w, err := checkpoint.NewWriter(dir, dev)
	if err != nil {
		return err
	}
	params := tr.Model().Params()
	return w.WriteDelta(batch, []checkpoint.Entry{{Key: denseKey, Payload: params}})
}

// RestoreDense loads the newest dense checkpoint at or before maxBatch
// (all of them when maxBatch < 0) and returns the parameters and the batch
// they captured.
func RestoreDense(dir string, maxBatch int64, dev *device.Timed) ([]float32, int64, error) {
	state, batch, err := checkpoint.Restore(dir, maxBatch, dev)
	if err != nil {
		return nil, -1, err
	}
	params, ok := state[denseKey]
	if !ok {
		return nil, -1, fmt.Errorf("train: checkpoint at batch %d has no dense record", batch)
	}
	return params, batch, nil
}

// LoadDense overwrites every worker replica's dense parameters (the
// broadcast that follows recovery).
func (tr *Trainer) LoadDense(params []float32) error {
	for _, w := range tr.workers {
		if err := w.model.SetParams(params); err != nil {
			return err
		}
	}
	return nil
}
