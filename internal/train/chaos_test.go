package train

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	"openembedding/internal/cluster"
	"openembedding/internal/faultinject"
	"openembedding/internal/model"
	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/ps"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
	"openembedding/internal/simclock"
	"openembedding/internal/workload"
)

// The chaos soak drives real DeepFM training through a 3-node PMem-OE
// cluster while a deterministic, seeded fault injector resets/tears/delays
// connections, rots and drops PMem flushes at the media, and a crash
// schedule kills every node at least twice — live, mid-run, with
// crash-recovery from the PMem image. The recovery stack (transparent rpc
// retry + Push dedup, epoch fencing, coordinated rollback, batch replay,
// verified flushes healing media faults at the write site) must make all
// of it invisible: the final model state is bit-identical to a fault-free
// run, and the whole run replays exactly from its printed seed.

const (
	chaosNodes     = 3
	chaosSteps     = 21
	chaosCkptEvery = 3
	chaosBatch     = 24
	chaosDim       = 8
)

// chaosSeed is fixed by default so CI is reproducible; OE_CHAOS_SEED
// overrides it (the CI chaos job sweeps a small seed matrix).
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	if s := os.Getenv("OE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("OE_CHAOS_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

func chaosTrainConfig(seed uint64) Config {
	return Config{
		Workers:   1, // multi-worker float summation order is nondeterministic
		BatchSize: chaosBatch,
		Model: model.DeepFMConfig{
			Fields: workload.CriteoNumSparse,
			Dim:    chaosDim,
			Dense:  workload.CriteoNumDense,
			Hidden: []int{16},
			LR:     0.02,
			Seed:   1,
		},
		DataSeed: 100,
		Data: func(s int64) *workload.CriteoSynthetic {
			return workload.NewCriteo(workload.CriteoConfig{Scale: 0.0002, Seed: 5, StreamSeed: s})
		},
		CheckpointEvery: chaosCkptEvery,
		MaxReplays:      40,
		CommitTimeout:   10 * time.Second,
	}
}

type chaosResult struct {
	dense   []float32
	emb     map[uint64][]float32
	steps   []StepStats
	counts  map[faultinject.Kind]int64
	replays int64
	epochs  []int64
}

// runChaosCluster runs the full training job against a fresh 3-node
// cluster; with chaos enabled it arms the wire-fault rules and the crash
// schedule, both derived purely from seed.
func runChaosCluster(t *testing.T, seed uint64, chaos bool) chaosResult {
	t.Helper()
	var inj *faultinject.Injector
	if chaos {
		// Write-side and dial faults only: their per-stream occurrence
		// numbers are exact flush/dial counts, so the schedule replays
		// bit-identically (read-call counts could vary with TCP segmentation).
		inj = faultinject.New(seed,
			faultinject.Rule{Point: faultinject.PointConnWrite, Kind: faultinject.KindReset, Prob: 0.02},
			faultinject.Rule{Point: faultinject.PointConnWrite, Kind: faultinject.KindTorn, Prob: 0.01},
			faultinject.Rule{Point: faultinject.PointConnWrite, Kind: faultinject.KindDelay, Prob: 0.03, Delay: 200 * time.Microsecond},
			faultinject.Rule{Point: faultinject.PointDial, Kind: faultinject.KindReset, Prob: 0.02},
			// Media faults ride along on every record/header flush: a bit
			// rots or the flush is silently dropped. Arming the model turns
			// on flush verification, which proves each flush against the
			// durable image and rewrites it, so even flushes that rot right
			// before a scheduled crash recover to exactly the fault-free
			// state. Each node gets its own media label, so its flush stream
			// numbering (and thus its fault schedule) is independent of its
			// peers and exact across replays.
			faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindBitRot, Prob: 0.005},
			faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindDrop, Prob: 0.002},
		)
	}
	reg := obs.NewRegistry()
	inj.SetObs(reg)

	var psNodes []*ps.Node
	var addrs []string
	for i := 0; i < chaosNodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine: "pmem-oe",
			Store: psengine.Config{
				Dim:               chaosDim,
				Optimizer:         optim.NewAdaGrad(0.05),
				Capacity:          1 << 14,
				CacheEntries:      1024,
				Meter:             simclock.NewMeter(),
				Shards:            1, // single shard: deterministic checkpoint progress
				RetainCheckpoints: 2,
			},
			Inject:     inj,
			Label:      fmt.Sprintf("srv%d", i),
			MediaLabel: fmt.Sprintf("m%d", i),
			Obs:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		psNodes = append(psNodes, n)
		addrs = append(addrs, n.Addr())
	}

	cl, err := cluster.DialOpts(chaosDim, addrs, cluster.Options{
		RPC: rpc.Options{
			Retry: rpc.RetryPolicy{
				MaxAttempts: 6,
				Backoff:     time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Seed:        seed,
			},
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		},
		Inject: inj,
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	cfg := chaosTrainConfig(seed)
	if chaos {
		sched := faultinject.CrashSchedule(seed, chaosNodes, chaosSteps, 2)
		fired := map[int64]bool{}
		cfg.BatchStart = func(b int64) {
			if fired[b] {
				return // replay is passing through a batch already chaos'd
			}
			fired[b] = true
			for _, ni := range sched[b] {
				if err := psNodes[ni].Crash(); err != nil {
					t.Fatalf("crash node %d at batch %d: %v", ni, b, err)
				}
				inj.CountCrash()
				if _, err := psNodes[ni].Restart(); err != nil {
					t.Fatalf("restart node %d at batch %d: %v", ni, b, err)
				}
			}
		}
	}

	tr, err := New(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Run(chaosSteps)
	if err != nil {
		t.Fatalf("run (seed %d, chaos %v): %v", seed, chaos, err)
	}

	// Readout: every key the run trained, in sorted (deterministic) order.
	keySet := map[uint64]bool{}
	stream := cfg.Data(cfg.DataSeed)
	for s := 0; s < chaosSteps; s++ {
		for _, k := range workload.UniqueKeys(stream.NextBatch(cfg.BatchSize)) {
			keySet[k] = true
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst := make([]float32, len(keys)*chaosDim)
	if err := cl.Pull(chaosSteps, keys, dst); err != nil {
		t.Fatalf("final readout pull: %v", err)
	}
	emb := make(map[uint64][]float32, len(keys))
	for i, k := range keys {
		emb[k] = dst[i*chaosDim : (i+1)*chaosDim]
	}

	res := chaosResult{
		dense:   tr.Model().Params(),
		emb:     emb,
		steps:   out.Steps,
		counts:  inj.Counts(),
		replays: reg.Snapshot().Counters["cluster_replays"],
	}
	for _, n := range psNodes {
		res.epochs = append(res.epochs, n.Epoch())
	}
	return res
}

func compareChaosStates(t *testing.T, label string, want, got chaosResult) {
	t.Helper()
	if len(want.steps) != len(got.steps) {
		t.Fatalf("%s: %d steps vs %d", label, len(want.steps), len(got.steps))
	}
	for i := range want.steps {
		if want.steps[i].Batch != got.steps[i].Batch || want.steps[i].Loss != got.steps[i].Loss {
			t.Fatalf("%s: step %d = %+v, want %+v (bit-exact)", label, i, got.steps[i], want.steps[i])
		}
	}
	if len(want.dense) != len(got.dense) {
		t.Fatalf("%s: dense param count %d vs %d", label, len(want.dense), len(got.dense))
	}
	for i := range want.dense {
		if want.dense[i] != got.dense[i] {
			t.Fatalf("%s: dense[%d] = %v, want %v (bit-exact)", label, i, got.dense[i], want.dense[i])
		}
	}
	if len(want.emb) != len(got.emb) {
		t.Fatalf("%s: embedding key sets differ: %d vs %d", label, len(want.emb), len(got.emb))
	}
	for k, w := range want.emb {
		g, ok := got.emb[k]
		if !ok {
			t.Fatalf("%s: key %d missing", label, k)
		}
		for d := range w {
			if w[d] != g[d] {
				t.Fatalf("%s: key %d[%d] = %v, want %v (bit-exact)", label, k, d, g[d], w[d])
			}
		}
	}
}

// TestChaosSoakBitIdenticalToFaultFree is the tentpole acceptance test:
// with every node killed at least twice and seeded wire faults throughout,
// training must converge to exactly — bit-identically — the state of a
// fault-free run: same per-step losses, same dense parameters, same
// embedding tables.
func TestChaosSoakBitIdenticalToFaultFree(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos seed = %d (set OE_CHAOS_SEED to override)", seed)

	ref := runChaosCluster(t, seed, false)
	chaos := runChaosCluster(t, seed, true)

	if chaos.counts[faultinject.KindCrash] < int64(2*chaosNodes) {
		t.Errorf("crashes = %d, want >= %d (every node killed twice)",
			chaos.counts[faultinject.KindCrash], 2*chaosNodes)
	}
	for i, ep := range chaos.epochs {
		if ep < 2 {
			t.Errorf("node %d epoch = %d, want >= 2", i, ep)
		}
	}
	if chaos.replays < 1 {
		t.Errorf("cluster_replays = %d, want >= 1", chaos.replays)
	}
	if media := chaos.counts[faultinject.KindBitRot] + chaos.counts[faultinject.KindDrop]; media < 1 {
		t.Errorf("media faults = %d (counts %v), want >= 1 rotted or dropped flush", media, chaos.counts)
	}
	if ref.replays != 0 {
		t.Errorf("fault-free run replayed %d times", ref.replays)
	}

	compareChaosStates(t, "chaos-vs-fault-free", ref, chaos)
	t.Logf("survived: faults=%v replays=%d epochs=%v — final state bit-identical to fault-free run",
		chaos.counts, chaos.replays, chaos.epochs)
}

// TestChaosDeterministicReplay reruns the identical chaos schedule and
// requires the exact same faults, replays and final state: the whole run
// is a pure function of the printed seed.
func TestChaosDeterministicReplay(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos seed = %d", seed)
	a := runChaosCluster(t, seed, true)
	b := runChaosCluster(t, seed, true)

	if len(a.counts) != len(b.counts) {
		t.Fatalf("fault mixes differ: %v vs %v", a.counts, b.counts)
	}
	for k, v := range a.counts {
		if b.counts[k] != v {
			t.Fatalf("fault counts differ for %v: %d vs %d (full: %v vs %v)", k, v, b.counts[k], a.counts, b.counts)
		}
	}
	if a.replays != b.replays {
		t.Fatalf("replays differ: %d vs %d", a.replays, b.replays)
	}
	compareChaosStates(t, "replay-determinism", a, b)
}
