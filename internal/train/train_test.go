package train

import (
	"testing"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/model"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
	"openembedding/internal/workload"
)

func newOEEngine(t *testing.T, dim, capacity, cacheEntries int) *core.Engine {
	t.Helper()
	cfg := psengine.Config{
		Dim:          dim,
		Optimizer:    optim.NewAdaGrad(0.05),
		Capacity:     capacity,
		CacheEntries: cacheEntries,
		Meter:        simclock.NewMeter(),
	}.WithDefaults()
	payload := pmem.FloatBytes(cfg.EntryFloats())
	slots := capacity * 3
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, slots), device.NewTimedPMem(cfg.Meter))
	arena, err := pmem.NewArena(dev, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func trainerConfig(workers int) Config {
	return Config{
		Workers:   workers,
		BatchSize: 64,
		Model: model.DeepFMConfig{
			Fields: workload.CriteoNumSparse,
			Dim:    8,
			Dense:  workload.CriteoNumDense,
			Hidden: []int{16},
			LR:     0.02,
			Seed:   1,
		},
		DataSeed: 100,
		Data: func(seed int64) *workload.CriteoSynthetic {
			return workload.NewCriteo(workload.CriteoConfig{Scale: 0.0002, Seed: 5, StreamSeed: seed})
		},
	}
}

// TestEndToEndTrainingLearns runs real DeepFM training through the PMem-OE
// engine and expects the log loss to improve over the stream.
func TestEndToEndTrainingLearns(t *testing.T) {
	eng := newOEEngine(t, 8, 1<<18, 4096)
	tr, err := New(trainerConfig(2), Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Steps) != 30 {
		t.Fatalf("ran %d steps", len(stats.Steps))
	}
	head := avgLoss(stats.Steps[:5])
	tail := avgLoss(stats.Steps[25:])
	if tail >= head {
		t.Fatalf("loss did not improve: first-5 %.4f, last-5 %.4f", head, tail)
	}
	st := eng.Stats()
	if st.Entries == 0 || st.Hits+st.Misses == 0 {
		t.Fatalf("engine unused: %+v", st)
	}
}

func avgLoss(steps []StepStats) float64 {
	var s float64
	for _, st := range steps {
		s += st.Loss
	}
	return s / float64(len(steps))
}

// TestCheckpointDuringTraining verifies periodic checkpoints complete while
// training continues.
func TestCheckpointDuringTraining(t *testing.T) {
	eng := newOEEngine(t, 8, 1<<18, 2048)
	cfg := trainerConfig(1)
	cfg.CheckpointEvery = 5
	tr, err := New(cfg, Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 2 {
		t.Fatalf("requested %d checkpoints, want 2", stats.Checkpoints)
	}
	done, err := Local{Engine: eng}.CompletedCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if done < 4 {
		t.Fatalf("completed checkpoint %d, want >= 4", done)
	}
}

// TestResumeFromCheckpointBatchIDs verifies StartBatch continues the batch
// numbering after recovery.
func TestResumeFromCheckpointBatchIDs(t *testing.T) {
	eng := newOEEngine(t, 8, 1<<18, 2048)
	cfg := trainerConfig(1)
	cfg.StartBatch = 7
	tr, err := New(cfg, Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps[0].Batch != 7 || stats.Steps[2].Batch != 9 {
		t.Fatalf("batches = %v", stats.Steps)
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := New(Config{}, Local{}); err == nil {
		t.Fatal("missing data source accepted")
	}
}
