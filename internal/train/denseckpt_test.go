package train

import (
	"testing"

	"openembedding/internal/model"
	"openembedding/internal/workload"
)

// TestFullCheckpointAndResume exercises the complete "Proposed Checkpoint"
// path: train with periodic sparse (batch-aware) + dense checkpoints,
// crash, recover the sparse side from PMem and the dense side from the
// checkpoint file, resume training, and verify the resumed trainer
// produces identical predictions to one that never crashed.
func TestFullCheckpointAndResume(t *testing.T) {
	eng := newOEEngine(t, 8, 1<<18, 2048)
	dir := t.TempDir()
	cfg := trainerConfig(1)
	cfg.CheckpointEvery = 4
	cfg.DenseCheckpointDir = dir

	tr, err := New(cfg, Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(8); err != nil { // checkpoints at batches 3 and 7
		t.Fatal(err)
	}

	params, batch, err := RestoreDense(dir, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if batch != 7 {
		t.Fatalf("dense checkpoint at batch %d, want 7", batch)
	}
	// Restored params must equal the live model's (no training since).
	live := tr.Model().Params()
	if len(params) != len(live) {
		t.Fatalf("param count %d != %d", len(params), len(live))
	}
	for i := range params {
		if params[i] != live[i] {
			t.Fatalf("param[%d] = %v, live %v", i, params[i], live[i])
		}
	}

	// Fresh trainer (different dense init), then load the checkpoint.
	cfg2 := cfg
	cfg2.Model.Seed = 999
	cfg2.StartBatch = batch + 1
	tr2, err := New(cfg2, Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.LoadDense(params); err != nil {
		t.Fatal(err)
	}
	got := tr2.Model().Params()
	for i := range got {
		if got[i] != params[i] {
			t.Fatal("LoadDense did not restore parameters")
		}
	}
	// Resumed training proceeds from the right batch.
	stats, err := tr2.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps[0].Batch != 8 {
		t.Fatalf("resumed at batch %d, want 8", stats.Steps[0].Batch)
	}
}

func TestRestoreDenseBounded(t *testing.T) {
	eng := newOEEngine(t, 8, 1<<18, 2048)
	dir := t.TempDir()
	cfg := trainerConfig(1)
	cfg.CheckpointEvery = 2
	cfg.DenseCheckpointDir = dir
	tr, err := New(cfg, Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(6); err != nil { // checkpoints at 1, 3, 5
		t.Fatal(err)
	}
	if _, batch, err := RestoreDense(dir, 4, nil); err != nil || batch != 3 {
		t.Fatalf("bounded restore: batch=%d err=%v, want 3", batch, err)
	}
}

func TestRestoreDenseEmpty(t *testing.T) {
	if _, _, err := RestoreDense(t.TempDir(), -1, nil); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestLoadDenseValidates(t *testing.T) {
	eng := newOEEngine(t, 8, 1<<18, 2048)
	cfg := Config{
		Workers: 1, BatchSize: 8,
		Model: model.DeepFMConfig{Fields: workload.CriteoNumSparse, Dim: 8, Dense: workload.CriteoNumDense, Hidden: []int{4}, Seed: 1},
		Data: func(seed int64) *workload.CriteoSynthetic {
			return workload.NewCriteo(workload.CriteoConfig{Scale: 0.0002, Seed: 5, StreamSeed: seed})
		},
	}
	tr, err := New(cfg, Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.LoadDense(make([]float32, 3)); err == nil {
		t.Fatal("short param vector accepted")
	}
}
