package train

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"openembedding/internal/cluster"
	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/ps"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
	"openembedding/internal/simclock"
	"openembedding/internal/workload"
)

// The scrub soak is the media-integrity counterpart of the chaos soak:
// instead of healing faults at the write site (flush verification), it lets
// seeded bit-rot land silently in the stored records and requires the
// background scrubber to find and repair every hit. The cache is sized to
// hold every entry, so each corrupt record still has an intact DRAM copy
// and every heal is a transparent in-place repair — no state regression, no
// epoch movement — and the final model state must be bit-identical to a
// fault-free run.

// runScrubCluster runs the full training job against a fresh 3-node
// pmem-oe cluster with flush verification OFF and the background scrubber
// ON; with rot enabled it arms seeded bit-rot on the PMem flush stream.
// After training (rot runs only) it drives explicit scrubs until the
// cluster verifies clean and requires every heal to have been a
// transparent repair.
func runScrubCluster(t *testing.T, seed uint64, rot bool) (chaosResult, psengine.ScrubReport) {
	t.Helper()
	var inj *faultinject.Injector
	if rot {
		inj = faultinject.New(seed,
			faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindBitRot, Prob: 0.01})
	}
	reg := obs.NewRegistry()
	inj.SetObs(reg)

	var psNodes []*ps.Node
	var addrs []string
	for i := 0; i < chaosNodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine: "pmem-oe",
			Store: psengine.Config{
				Dim:       chaosDim,
				Optimizer: optim.NewAdaGrad(0.05),
				Capacity:  1 << 14,
				// Every entry stays DRAM-resident: each corrupt record has an
				// intact cached copy, so every scrub heal is a lossless
				// in-place repair.
				CacheEntries:      1 << 14,
				Meter:             simclock.NewMeter(),
				Shards:            1,
				RetainCheckpoints: 2,
				ScrubRate:         256,
				// Faults land in the stored records (no write-site healing):
				// the scrubber, not flush verification, is under test.
				FlushVerifyDisabled: true,
			},
			Inject:     inj,
			Label:      fmt.Sprintf("srv%d", i),
			MediaLabel: fmt.Sprintf("m%d", i),
			Obs:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		psNodes = append(psNodes, n)
		addrs = append(addrs, n.Addr())
	}

	cl, err := cluster.DialOpts(chaosDim, addrs, cluster.Options{
		RPC: rpc.Options{
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	cfg := chaosTrainConfig(seed)
	tr, err := New(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Run(chaosSteps)
	if err != nil {
		t.Fatalf("run (seed %d, rot %v): %v", seed, rot, err)
	}

	var healed psengine.ScrubReport
	if rot {
		// One explicit full pass sweeps whatever the background budget has
		// not reached yet; a second pass proves the first healed everything.
		rep, err := cl.Scrub()
		if err != nil {
			t.Fatalf("scrub: %v", err)
		}
		if rep.Restored != 0 || rep.Fenced != 0 || rep.Quarantined != 0 {
			t.Fatalf("scrub lost state with every entry DRAM-resident: %+v", rep)
		}
		if rep.Corrupt != rep.Repaired {
			t.Fatalf("scrub left corruption unrepaired: %+v", rep)
		}
		healed = rep
		again, err := cl.Scrub()
		if err != nil {
			t.Fatalf("re-scrub: %v", err)
		}
		if again.Corrupt != 0 {
			t.Fatalf("second scrub still finds corruption: %+v", again)
		}
		for i, n := range psNodes {
			if ep := n.Epoch(); ep != 0 {
				t.Fatalf("node %d epoch = %d after transparent repairs, want 0", i, ep)
			}
		}
	}

	// Readout: every key the run trained, in sorted (deterministic) order.
	keySet := map[uint64]bool{}
	stream := cfg.Data(cfg.DataSeed)
	for s := 0; s < chaosSteps; s++ {
		for _, k := range workload.UniqueKeys(stream.NextBatch(cfg.BatchSize)) {
			keySet[k] = true
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst := make([]float32, len(keys)*chaosDim)
	if err := cl.Pull(chaosSteps, keys, dst); err != nil {
		t.Fatalf("final readout pull: %v", err)
	}
	emb := make(map[uint64][]float32, len(keys))
	for i, k := range keys {
		emb[k] = dst[i*chaosDim : (i+1)*chaosDim]
	}

	res := chaosResult{
		dense:   tr.Model().Params(),
		emb:     emb,
		steps:   out.Steps,
		counts:  inj.Counts(),
		replays: reg.Snapshot().Counters["cluster_replays"],
	}
	for _, n := range psNodes {
		res.epochs = append(res.epochs, n.Epoch())
	}
	if rot {
		// The background scrubber must actually have been running during
		// training, not just the explicit passes above: the per-round budget
		// alone scans far more records than two full passes.
		snap := reg.Snapshot()
		passes := 2 * healed.Scanned
		if scanned := snap.Counters["engine_scrub_scanned"]; scanned <= passes {
			t.Fatalf("engine_scrub_scanned = %d, want > %d (background scrub never ran)", scanned, passes)
		}
	}
	return res, healed
}

// TestScrubSoak: with seeded silent bit-rot landing in stored records all
// through training (flush verification off), the background scrubber plus
// one explicit sweep must repair every hit in place — zero restored, fenced
// or quarantined entries, zero epoch movement — and the final model state
// must be bit-identical to a fault-free run. Seeded via OE_CHAOS_SEED like
// the chaos soak.
func TestScrubSoak(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("scrub-soak seed = %d (set OE_CHAOS_SEED to override)", seed)

	ref, _ := runScrubCluster(t, seed, false)
	rotted, healed := runScrubCluster(t, seed, true)

	if rotted.counts[faultinject.KindBitRot] < 1 {
		t.Errorf("bit-rot faults = %d, want >= 1 (rules never fired; raise Prob or steps)",
			rotted.counts[faultinject.KindBitRot])
	}
	if ref.replays != 0 || rotted.replays != 0 {
		t.Errorf("replays = %d/%d, want 0/0 (repairs must be transparent)", ref.replays, rotted.replays)
	}
	compareChaosStates(t, "scrub-vs-fault-free", ref, rotted)
	t.Logf("survived: faults=%v healed=%+v — final state bit-identical to fault-free run",
		rotted.counts, healed)
}
