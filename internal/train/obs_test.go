package train

import (
	"testing"

	"openembedding/internal/core"
	"openembedding/internal/device"
	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/pmem"
	"openembedding/internal/psengine"
	"openembedding/internal/simclock"
)

// TestTrainerObs runs a short training loop with the observability hooks
// attached end to end (trainer and engine sharing one registry and span
// ring) and checks batch/phase histograms, the skew gauge, and the span
// tree populate.
func TestTrainerObs(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewTracer(4096)
	meter := simclock.NewMeter()

	ecfg := psengine.Config{
		Dim:          8,
		Optimizer:    optim.NewAdaGrad(0.05),
		Capacity:     1 << 16,
		CacheEntries: 4096,
		Meter:        meter,
		Obs:          reg,
		Spans:        ring,
	}.WithDefaults()
	payload := pmem.FloatBytes(ecfg.EntryFloats())
	slots := (1 << 16) * 3
	dev := pmem.NewDevice(pmem.ArenaLayout(payload, slots), device.NewTimedPMem(meter))
	arena, err := pmem.NewArena(dev, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(ecfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })

	cfg := trainerConfig(2)
	cfg.Obs = reg
	cfg.Spans = ring
	cfg.Meter = meter
	tr, err := New(cfg, Local{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5
	if _, err := tr.Run(steps); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	for _, name := range []string{"train_batch_ns", "train_pull_ns", "train_compute_ns", "train_push_ns"} {
		h, ok := s.Histograms[name]
		if !ok || h.Count != steps {
			t.Errorf("%s count = %d, want %d", name, h.Count, steps)
		}
	}
	// Phases nest inside the batch: per-step pull+compute+push never exceeds
	// the batch total.
	if s.Histograms["train_pull_ns"].Sum+s.Histograms["train_compute_ns"].Sum+
		s.Histograms["train_push_ns"].Sum > s.Histograms["train_batch_ns"].Sum {
		t.Error("phase times exceed batch time")
	}
	// The skew gauge must be set; its sign depends on how much real compute
	// runs per unit of metered engine work (negative when the dense model's
	// wall time dominates the virtual charges, as in this small test).
	if skew, ok := s.Gauges["train_virtual_wall_skew_ns"]; !ok || skew == 0 {
		t.Errorf("train_virtual_wall_skew_ns = %d (present=%v), want set", skew, ok)
	}
	// Engine-side metrics land in the same registry.
	if s.Histograms["engine_push_ns"].Count == 0 {
		t.Error("engine_push_ns empty: engine did not share the registry")
	}

	counts := map[string]int{}
	for _, sp := range ring.Spans() {
		counts[sp.Name]++
	}
	for _, name := range []string{"train.batch", "train.pull", "train.compute", "train.push"} {
		if counts[name] != steps {
			t.Errorf("%s spans = %d, want %d", name, counts[name], steps)
		}
	}
	// The engine's own maintenance spans share the ring.
	if counts["maint.drain"] == 0 {
		t.Error("no maint.drain spans from the engine")
	}
}
