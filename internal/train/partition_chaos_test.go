package train

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"openembedding/internal/cluster"
	"openembedding/internal/faultinject"
	"openembedding/internal/obs"
	"openembedding/internal/optim"
	"openembedding/internal/ps"
	"openembedding/internal/psengine"
	"openembedding/internal/rpc"
	"openembedding/internal/simclock"
	"openembedding/internal/workload"
)

// The partition chaos soak (DESIGN.md §16) drives real training through
// asymmetric network partitions and persistently slow links instead of
// crashes: for deterministic occurrence windows, the worker's writes
// toward one node vanish (silent loss, surfacing as instant timeouts),
// another node's *responses* vanish while its requests still arrive, a
// third node's link turns persistently slow, and background resets keep
// firing throughout. Every fault schedule is a pure function of the seed
// — windows are keyed on per-stream write/dial occurrence numbers, never
// wall time — so the runs replay exactly, and the recovery stack (retry
// with a shared budget, rollback + replay, epoch fencing, dedup) must
// land training bit-identically to a fault-free run.

// runPartitionChaos runs the training job against a fresh 3-node cluster;
// with chaos enabled it arms the partition/slow/reset rules. Write-side
// and dial streams only: their occurrence numbers are exact frame/dial
// counts, so the windowed schedules replay bit-identically (read-call
// counts could vary with TCP segmentation).
func runPartitionChaos(t *testing.T, seed uint64, chaos bool) chaosResult {
	t.Helper()
	var inj *faultinject.Injector
	if chaos {
		inj = faultinject.New(seed,
			// Asymmetric partition A: the worker's writes toward node 1
			// vanish for a 4-occurrence window, then the link heals. The
			// reverse direction is untouched. Windows stay narrower than
			// one request's MaxAttempts: every retry burns at least one
			// occurrence (the redial handshake write), so a single retry
			// cycle is guaranteed to cross the window — partitions heal
			// *because* the victim keeps trying, deterministically.
			faultinject.Rule{Point: faultinject.PointConnWrite, Label: "node1", Kind: faultinject.KindPartition, Prob: 1, From: 30, Until: 34},
			// Asymmetric partition B: node 2's responses toward the worker
			// vanish for a window while its inbound requests still arrive
			// and execute — the classic half-open gray failure.
			faultinject.Rule{Point: faultinject.PointConnWrite, Label: "srv2", Kind: faultinject.KindPartition, Prob: 1, From: 25, Until: 28},
			// Dial-time partition: reconnection attempts 3 and 4 toward
			// node 0 are silent SYN loss.
			faultinject.Rule{Point: faultinject.PointDial, Label: "node0", Kind: faultinject.KindPartition, Prob: 1, From: 3, Until: 5},
			// A persistently slow link to node 0 over a long window: the
			// writes go through, late — gray slowness, not failure.
			faultinject.Rule{Point: faultinject.PointConnWrite, Label: "node0", Kind: faultinject.KindSlow, Prob: 1, Delay: 200 * time.Microsecond, From: 10, Until: 60},
			// Background connection churn everywhere, throughout.
			faultinject.Rule{Point: faultinject.PointConnWrite, Kind: faultinject.KindReset, Prob: 0.01},
		)
	}
	reg := obs.NewRegistry()
	inj.SetObs(reg)

	var psNodes []*ps.Node
	var addrs []string
	for i := 0; i < chaosNodes; i++ {
		n, err := ps.StartNode("127.0.0.1:0", ps.NodeConfig{
			Engine: "pmem-oe",
			Store: psengine.Config{
				Dim:               chaosDim,
				Optimizer:         optim.NewAdaGrad(0.05),
				Capacity:          1 << 14,
				CacheEntries:      1024,
				Meter:             simclock.NewMeter(),
				Shards:            1,
				RetainCheckpoints: 2,
			},
			Inject:     inj,
			Label:      fmt.Sprintf("srv%d", i),
			MediaLabel: fmt.Sprintf("m%d", i),
			Obs:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		psNodes = append(psNodes, n)
		addrs = append(addrs, n.Addr())
	}

	// The retry budget rides along sized with ample headroom: windowed
	// partitions must not be able to starve recovery (the storm-bounding
	// behavior under a *tight* budget is rpc's own regression test, where
	// token interleaving cannot perturb a bit-exactness gate).
	cl, err := cluster.DialOpts(chaosDim, addrs, cluster.Options{
		RPC: rpc.Options{
			Retry: rpc.RetryPolicy{
				MaxAttempts: 6,
				Backoff:     time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Seed:        seed,
			},
			Budget:       rpc.NewBudget(1024, 1),
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		},
		Inject: inj,
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	tr, err := New(chaosTrainConfig(seed), cl)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Run(chaosSteps)
	if err != nil {
		t.Fatalf("run (seed %d, chaos %v): %v", seed, chaos, err)
	}

	cfg := chaosTrainConfig(seed)
	keySet := map[uint64]bool{}
	stream := cfg.Data(cfg.DataSeed)
	for s := 0; s < chaosSteps; s++ {
		for _, k := range workload.UniqueKeys(stream.NextBatch(cfg.BatchSize)) {
			keySet[k] = true
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst := make([]float32, len(keys)*chaosDim)
	if err := cl.Pull(chaosSteps, keys, dst); err != nil {
		t.Fatalf("final readout pull: %v", err)
	}
	emb := make(map[uint64][]float32, len(keys))
	for i, k := range keys {
		emb[k] = dst[i*chaosDim : (i+1)*chaosDim]
	}

	res := chaosResult{
		dense:   tr.Model().Params(),
		emb:     emb,
		steps:   out.Steps,
		counts:  inj.Counts(),
		replays: reg.Snapshot().Counters["cluster_replays"],
	}
	for _, n := range psNodes {
		res.epochs = append(res.epochs, n.Epoch())
	}
	return res
}

// TestPartitionChaosBitIdenticalToFaultFree is the gray-failure tentpole
// gate: training through asymmetric partitions and slow links converges
// to exactly — bit-identically — the state of a fault-free run.
func TestPartitionChaosBitIdenticalToFaultFree(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("partition chaos seed = %d (set OE_CHAOS_SEED to override)", seed)

	ref := runPartitionChaos(t, seed, false)
	chaos := runPartitionChaos(t, seed, true)

	if got := chaos.counts[faultinject.KindPartition]; got < 1 {
		t.Errorf("partitions = %d, want >= 1 (counts %v)", got, chaos.counts)
	}
	if got := chaos.counts[faultinject.KindSlow]; got < 1 {
		t.Errorf("slow-link delays = %d, want >= 1 (counts %v)", got, chaos.counts)
	}
	if ref.replays != 0 {
		t.Errorf("fault-free run replayed %d times", ref.replays)
	}

	compareChaosStates(t, "partition-chaos-vs-fault-free", ref, chaos)
	t.Logf("survived: faults=%v replays=%d — final state bit-identical to fault-free run",
		chaos.counts, chaos.replays)
}

// TestPartitionChaosDeterministicReplay reruns the identical partition
// schedule: same faults, same replays, same final state — the run is a
// pure function of the printed seed.
func TestPartitionChaosDeterministicReplay(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("partition chaos seed = %d", seed)
	a := runPartitionChaos(t, seed, true)
	b := runPartitionChaos(t, seed, true)

	if len(a.counts) != len(b.counts) {
		t.Fatalf("fault mixes differ: %v vs %v", a.counts, b.counts)
	}
	for k, v := range a.counts {
		if b.counts[k] != v {
			t.Fatalf("fault counts differ for %v: %d vs %d (full: %v vs %v)", k, v, b.counts[k], a.counts, b.counts)
		}
	}
	if a.replays != b.replays {
		t.Fatalf("replays differ: %d vs %d", a.replays, b.replays)
	}
	compareChaosStates(t, "partition-replay-determinism", a, b)
}
