package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tab, err := e.Run(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	if tab.ID != id {
		t.Fatalf("%s: table id %q", id, tab.ID)
	}
	return tab
}

func parseCell(t *testing.T, tab *Table, row, col string) float64 {
	t.Helper()
	cell := tab.Cell(row, col)
	if cell == "" {
		t.Fatalf("%s: missing cell (%s, %s)\n%s", tab.ID, row, col, tab)
	}
	cell = strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("%s: cell (%s,%s)=%q not numeric", tab.ID, row, col, cell)
	}
	return v
}

func TestAllRegisteredAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if len(seen) != 15 {
		t.Fatalf("expected 15 experiments (every paper table+figure), got %d", len(seen))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestTable1Values(t *testing.T) {
	tab := runExp(t, "table1")
	if v := parseCell(t, tab, "DRAM", "Read BW"); v != 115 {
		t.Fatalf("DRAM read bw = %v", v)
	}
	if v := parseCell(t, tab, "PMem", "Read lat"); v != 305 {
		t.Fatalf("PMem read lat = %v", v)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tab := runExp(t, "table2")
	for _, c := range []struct {
		row  string
		want float64
	}{
		{"top 0.05%", 85.7}, {"top 0.10%", 89.5}, {"top 1.00%", 95.7},
	} {
		got := parseCell(t, tab, c.row, "Measured")
		if got < c.want-3 || got > c.want+3 {
			t.Fatalf("%s measured %.1f, paper %.1f", c.row, got, c.want)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tab := runExp(t, "fig7")
	oe16 := parseCell(t, tab, "pmem-oe", "16 GPUs")
	dram16 := parseCell(t, tab, "dram-ps", "16 GPUs")
	ori16 := parseCell(t, tab, "ori-cache", "16 GPUs")
	if oe16 < dram16 || oe16 > dram16*1.15 {
		t.Fatalf("PMem-OE@16 = %.3f, want within 15%% above DRAM-PS %.3f", oe16, dram16)
	}
	if ori16 < dram16*1.8 {
		t.Fatalf("Ori-Cache@16 = %.3f, want >= 1.8x DRAM-PS %.3f", ori16, dram16)
	}
	// DRAM-PS scaling: 16 GPUs well under half the 4-GPU time.
	if d4 := parseCell(t, tab, "dram-ps", "4 GPUs"); dram16 > 0.45*d4 {
		t.Fatalf("DRAM-PS did not scale: %.3f -> %.3f", d4, dram16)
	}
}

func TestFig6ProposedBeatsIncremental(t *testing.T) {
	tab := runExp(t, "fig6")
	for _, col := range []string{"4 GPUs", "16 GPUs"} {
		oe := parseCell(t, tab, "pmem-oe", col)
		dram := parseCell(t, tab, "dram-ps", col)
		if oe >= dram {
			t.Fatalf("with checkpoints PMem-OE (%.3f) should beat DRAM-PS (%.3f) at %s", oe, dram, col)
		}
	}
}

func TestFig9Ordering(t *testing.T) {
	tab := runExp(t, "fig9")
	neither := parseCell(t, tab, "no cache, no pipeline", "Normalized time")
	cacheOnly := parseCell(t, tab, "cache only", "Normalized time")
	pipeOnly := parseCell(t, tab, "pipeline only", "Normalized time")
	both := parseCell(t, tab, "cache + pipeline (PMem-OE)", "Normalized time")
	if !(both < pipeOnly && pipeOnly < cacheOnly && cacheOnly < neither) {
		t.Fatalf("ablation ordering: %v %v %v %v", neither, cacheOnly, pipeOnly, both)
	}
}

func TestFig11MissRates(t *testing.T) {
	tab := runExp(t, "fig11")
	more := parseCell(t, tab, "more skew", "Miss rate")
	orig := parseCell(t, tab, "original", "Miss rate")
	less := parseCell(t, tab, "less skew", "Miss rate")
	if !(more < orig && orig < less) {
		t.Fatalf("miss rates not ordered by skew: %.1f %.1f %.1f", more, orig, less)
	}
}

func TestFig12Shape(t *testing.T) {
	tab := runExp(t, "fig12")
	for _, interval := range []string{"10 min", "40 min"} {
		prop := parseCell(t, tab, interval, "Proposed")
		sparse := parseCell(t, tab, interval, "Sparse only")
		inc := parseCell(t, tab, interval, "Incremental")
		if sparse > 1.02 {
			t.Fatalf("%s: sparse-only overhead %.3f", interval, sparse)
		}
		if !(prop < inc) {
			t.Fatalf("%s: proposed %.3f not cheaper than incremental %.3f", interval, prop, inc)
		}
	}
	// More frequent checkpoints cost more.
	if p10, p40 := parseCell(t, tab, "10 min", "Proposed"), parseCell(t, tab, "40 min", "Proposed"); p10 <= p40 {
		t.Fatalf("proposed overhead not decreasing with interval: %.3f vs %.3f", p10, p40)
	}
}

func TestFig14Speedup(t *testing.T) {
	tab := runExp(t, "fig14")
	ssd := parseCell(t, tab, "DRAM-PS (checkpoint on SSD)", "Total (s)")
	oe := parseCell(t, tab, "PMem-OE (scan + index rebuild)", "Total (s)")
	if s := ssd / oe; s < 3 || s > 5 {
		t.Fatalf("recovery speedup %.2fx outside the paper's band", s)
	}
}

func TestFig15TFTrends(t *testing.T) {
	tab := runExp(t, "fig15")
	// PMem-OE beats TF, more so at 4 GPUs and at dim 64.
	tf1 := parseCell(t, tab, "tf", "dim16/1GPU")
	oe1 := parseCell(t, tab, "pmem-oe", "dim16/1GPU")
	tf4 := parseCell(t, tab, "tf", "dim16/4GPU")
	oe4 := parseCell(t, tab, "pmem-oe", "dim16/4GPU")
	if oe1 >= tf1 || oe4 >= tf4 {
		t.Fatal("PMem-OE not beating TF")
	}
	if (tf4-oe4)/tf4 <= (tf1-oe1)/tf1 {
		t.Fatal("TF gap not growing with GPUs")
	}
	tf4d64 := parseCell(t, tab, "tf", "dim64/4GPU")
	oe4d64 := parseCell(t, tab, "pmem-oe", "dim64/4GPU")
	if (tf4d64-oe4d64)/tf4d64 <= (tf4-oe4)/tf4 {
		t.Fatal("TF gap not growing with dim")
	}
}

func TestTable5CheaperPMem(t *testing.T) {
	tab := runExp(t, "table5")
	dram := parseCell(t, tab, "DRAM-PS", "$/epoch")
	oe := parseCell(t, tab, "PMem-OE", "$/epoch")
	ori := parseCell(t, tab, "Ori-Cache", "$/epoch")
	if !(oe < ori && ori < dram) {
		t.Fatalf("cost ordering violated: oe=%.1f ori=%.1f dram=%.1f", oe, ori, dram)
	}
	// The paper reports ~42% saving over DRAM-PS.
	if saving := 1 - oe/dram; saving < 0.3 || saving > 0.55 {
		t.Fatalf("PMem-OE saving %.0f%% outside the paper's ~42%% band", saving*100)
	}
}

func TestFig2BurstPairs(t *testing.T) {
	tab := runExp(t, "fig2")
	if len(tab.Rows) < 2 {
		t.Fatal("no burst rows")
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "pairs") {
		t.Fatal("pair note missing")
	}
}

func TestFig8Monotone(t *testing.T) {
	tab := runExp(t, "fig8")
	first := parseCell(t, tab, "10MB", "Normalized time")
	last := parseCell(t, tab, "20GB", "Normalized time")
	if first != 1.0 {
		t.Fatalf("baseline not 1.0: %v", first)
	}
	if last >= first {
		t.Fatal("bigger cache did not help")
	}
	// Flat past 2GB (paper: <1% more).
	two := parseCell(t, tab, "2GB", "Normalized time")
	if two-last > 0.03 {
		t.Fatalf("2GB->20GB improvement %.3f too large", two-last)
	}
}

func TestFig10LambdaOrdering(t *testing.T) {
	tab := runExp(t, "fig10")
	more := parseCell(t, tab, "more skew (tail x0.74)", "Fitted lambda")
	orig := parseCell(t, tab, "original (Table II fit)", "Fitted lambda")
	less := parseCell(t, tab, "less skew (tail x1.25)", "Fitted lambda")
	if !(more > orig && orig > less) {
		t.Fatalf("lambda ordering violated: %v %v %v", more, orig, less)
	}
}

func TestFig3PenaltyOrdering(t *testing.T) {
	tab := runExp(t, "fig3")
	ori := parseCell(t, tab, "ori-cache", "4 GPUs")
	pmh := parseCell(t, tab, "pmem-hash", "4 GPUs")
	if !(1.1 < ori && ori < pmh) {
		t.Fatalf("motivation penalties out of order: ori=%.3f pmh=%.3f", ori, pmh)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"A", "B"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 1)
	out := tab.String()
	for _, want := range []string{"== x: t ==", "A", "note: note 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tab.Cell("1", "B") != "2" {
		t.Fatal("Cell lookup failed")
	}
	if tab.Cell("1", "C") != "" || tab.Cell("9", "B") != "" {
		t.Fatal("missing cell not empty")
	}
}
