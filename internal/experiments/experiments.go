// Package experiments reproduces the paper's tables and figures. Outputs
// must be bit-reproducible across runs; the marker below puts the whole
// package under the determinism analyzer (internal/analysis).
//
//oevet:deterministic-package
package experiments

import (
	"fmt"
	"time"

	"openembedding/internal/device"
	"openembedding/internal/sim"
	"openembedding/internal/workload"
)

// Options tune experiment runs.
type Options struct {
	// Quick shrinks batch counts for smoke tests and benchmarks.
	Quick bool
	// Seed drives workload generation.
	Seed int64
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) measure(full int) int {
	if o.Quick {
		if full > 12 {
			return 12
		}
	}
	return full
}

// Experiment is a registered artifact reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Performance comparison of different devices", Table1},
		{"table2", "Access pattern of the embedding entries", Table2},
		{"fig2", "Access pattern in two batches", Fig2},
		{"fig3", "Penalty of fine-grained hybrid cache / PMem hash (motivation)", Fig3},
		{"table5", "Price of parameter servers", Table5},
		{"fig6", "End-to-end training time (with default checkpoints)", Fig6},
		{"fig7", "Pipelined cache performance (no checkpoints)", Fig7},
		{"fig8", "Impact of DRAM cache size", Fig8},
		{"fig9", "Individual improvement of PMem-OE (ablation)", Fig9},
		{"fig10", "Workload fitting and distribution adjustment", Fig10},
		{"fig11", "Training time & miss rate under different skews", Fig11},
		{"fig12", "Training time with different checkpoint intervals", Fig12},
		{"fig13", "Checkpoint overhead with different GPU counts", Fig13},
		{"fig14", "Recovery time comparison", Fig14},
		{"fig15", "Performance comparison with TensorFlow on Criteo", Fig15},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

// Table1 reports the calibrated device models: effective bandwidth for
// large streams and per-access latency — the reproduction of Table I that
// everything else inherits.
func Table1(Options) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Device bandwidth (R/W, GB/s) and latency (R/W, ns)",
		Columns: []string{"Device", "Read BW", "Write BW", "Read lat", "Write lat"},
	}
	gb := float64(1 << 30)
	for _, m := range []device.Model{device.DRAM(), device.PMem(), device.FlashSSD()} {
		t.AddRow(m.Name,
			fmt.Sprintf("%.0f", m.ReadBandwidth/gb),
			fmt.Sprintf("%.0f", m.WriteBandwidth/gb),
			fmt.Sprintf("%d", m.ReadLatency.Nanoseconds()),
			fmt.Sprintf("%d", m.WriteLatency.Nanoseconds()))
	}
	t.AddNote("paper: DRAM 115/79 GB/s 81/86 ns; PMem 39/14 GB/s 305/94 ns; SSD 2-3/1-2 GB/s >10000 ns")
	return t, nil
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

// Table2 draws a trace from the workload generator and reports the share
// of accesses served by the top 0.05% / 0.1% / 1% of entries.
func Table2(o Options) (*Table, error) {
	keys := 200_000
	draws := 400_000
	if o.Quick {
		keys, draws = 50_000, 100_000
	}
	s := workload.NewTableIISkew(keys, o.seed())
	counts := workload.CountAccesses(s, draws)
	fracs := []float64{0.0005, 0.001, 0.01}
	shares := workload.TopShare(counts, keys, fracs)

	t := &Table{
		ID:      "table2",
		Title:   "Share of total accesses by top-ranked entries",
		Columns: []string{"Top entries", "Measured", "Paper"},
	}
	paper := []string{"85.7%", "89.5%", "95.7%"}
	for i, f := range fracs {
		t.AddRow(fmt.Sprintf("top %.2f%%", f*100),
			fmt.Sprintf("%.1f%%", shares[i]*100), paper[i])
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 2
// ---------------------------------------------------------------------------

// Fig2 records per-millisecond request counts over the first two measured
// batches of a 16-GPU run: pull and update bursts in pairs at batch
// boundaries, idle in between.
func Fig2(o Options) (*Table, error) {
	res, err := sim.Run(sim.Config{
		Engine: "pmem-oe", GPUs: 16, Seed: o.seed(),
		WarmupBatches: 2, MeasureBatches: 2, RecordTrace: true,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2",
		Title:   "Embedding accesses per millisecond (two batches, 16 GPUs)",
		Columns: []string{"ms", "pull accesses", "update accesses"},
	}
	nonZero := 0
	for _, b := range res.Recorder.PerMillisecond() {
		if b.Pulls == 0 && b.Pushes == 0 {
			continue // idle period between the bursts
		}
		t.AddRow(fmt.Sprintf("%d", b.Ms), fmt.Sprintf("%d", b.Pulls), fmt.Sprintf("%d", b.Pushes))
		nonZero++
	}
	pulls, pushes := res.Recorder.PairCounts()
	t.AddNote("pull accesses = %d, update accesses = %d (pairs: equal totals)", pulls, pushes)
	t.AddNote("%d busy ms out of %d ms span: bursts at batch boundaries, idle between", nonZero, len(res.Recorder.PerMillisecond()))
	return t, nil
}

// ---------------------------------------------------------------------------
// Shared engine-grid runner for Figs. 3, 6, 7
// ---------------------------------------------------------------------------

func engineGrid(o Options, id, title string, engines []string, ckptFor func(engine string) (sim.CheckpointKind, float64), paperNote string) (*Table, error) {
	gpus := []int{4, 8, 16}
	cols := []string{"Engine"}
	for _, g := range gpus {
		cols = append(cols, fmt.Sprintf("%d GPUs", g))
	}
	t := &Table{ID: id, Title: title, Columns: cols}

	var baseline time.Duration
	epochs := map[string]map[int]time.Duration{}
	for _, eng := range engines {
		epochs[eng] = map[int]time.Duration{}
		for _, g := range gpus {
			kind, mins := sim.CheckpointKind(0), 0.0
			if ckptFor != nil {
				kind, mins = ckptFor(eng)
			}
			measure := o.measure(40)
			if kind != sim.CkptNone {
				// Cover two checkpoint periods exactly.
				measure = int(mins*sim.BatchesPerMinute) * 2
				if o.Quick {
					measure = int(mins * sim.BatchesPerMinute)
				}
			}
			res, err := sim.Run(sim.Config{
				Engine: eng, GPUs: g, Seed: o.seed(),
				Checkpoint: kind, CheckpointIntervalMinutes: mins,
				MeasureBatches: measure,
			})
			if err != nil {
				return nil, fmt.Errorf("%s %s %dGPU: %w", id, eng, g, err)
			}
			epochs[eng][g] = res.Epoch
			if eng == engines[0] && g == gpus[0] {
				baseline = res.Epoch
			}
		}
	}
	for _, eng := range engines {
		row := []string{eng}
		for _, g := range gpus {
			row = append(row, fmt.Sprintf("%.3f", float64(epochs[eng][g])/float64(baseline)))
		}
		t.AddRow(row...)
	}
	t.AddNote("normalized to %s at %d GPUs (= %.2f h/epoch)", engines[0], gpus[0], baseline.Hours())
	if paperNote != "" {
		t.AddNote("%s", paperNote)
	}
	return t, nil
}

// Fig3 is the motivation experiment: a generic fine-grained DRAM-PMem
// cache and a PMem-resident hash, each normalized to DRAM-PS.
func Fig3(o Options) (*Table, error) {
	return engineGrid(o, "fig3",
		"Training time, normalized to DRAM-PS at 4 GPUs (no checkpoints)",
		[]string{"dram-ps", "ori-cache", "pmem-hash"}, nil,
		"paper: hybrid cache 1.24/1.56/2.27x DRAM-PS; PMem-Hash 2.16/2.85/4.17x")
}

// Fig7 compares PMem-OE's pipelined cache against DRAM-PS and Ori-Cache
// without checkpoints.
func Fig7(o Options) (*Table, error) {
	return engineGrid(o, "fig7",
		"Training time, normalized to DRAM-PS at 4 GPUs (no checkpoints)",
		[]string{"dram-ps", "pmem-oe", "ori-cache"}, nil,
		"paper: PMem-OE within 1.2/4.3/8.7% of DRAM-PS; Ori-Cache 1.24/1.56/2.27x")
}

// Fig6 is the end-to-end comparison with each system's default
// checkpointing: incremental for the baselines, the proposed batch-aware
// scheme for PMem-OE, every 20 minutes.
func Fig6(o Options) (*Table, error) {
	return engineGrid(o, "fig6",
		"End-to-end training time with default 20-min checkpoints, normalized to DRAM-PS at 4 GPUs",
		[]string{"dram-ps", "pmem-oe", "ori-cache"},
		func(engine string) (sim.CheckpointKind, float64) {
			if engine == "pmem-oe" {
				return sim.CkptProposed, 20
			}
			return sim.CkptIncremental, 20
		},
		"paper: PMem-OE 7.2/6.4/5.6% faster than DRAM-PS and 23.8/36.9/53.8% faster than Ori-Cache")
}

// ---------------------------------------------------------------------------
// Table V
// ---------------------------------------------------------------------------

// Table5 combines Fig. 6's 4-GPU epoch times with the published instance
// prices.
func Table5(o Options) (*Table, error) {
	t := &Table{
		ID:      "table5",
		Title:   "Price of parameter servers (PS tier only)",
		Columns: []string{"System", "Machines", "Instance", "$/hour", "Epoch (h)", "$/epoch"},
	}
	configs := []struct {
		name string
		eng  string
		kind sim.CheckpointKind
	}{
		{"DRAM-PS", "dram-ps", sim.CkptIncremental},
		{"PMem-OE", "pmem-oe", sim.CkptProposed},
		{"Ori-Cache", "ori-cache", sim.CkptIncremental},
	}
	deployments := tableVDeployments()
	for _, c := range configs {
		measure := 120
		if o.Quick {
			measure = 60
		}
		res, err := sim.Run(sim.Config{
			Engine: c.eng, GPUs: 4, Seed: o.seed(),
			Checkpoint: c.kind, CheckpointIntervalMinutes: 20,
			MeasureBatches: measure,
		})
		if err != nil {
			return nil, err
		}
		d := deployments[c.name]
		hours := res.Epoch.Hours()
		t.AddRow(c.name,
			fmt.Sprintf("%d", d.Machines), d.InstanceType,
			fmt.Sprintf("%.2f", d.DollarsPerHour),
			fmt.Sprintf("%.2f", hours),
			fmt.Sprintf("%.1f", d.CostPerEpoch(hours)))
	}
	t.AddNote("paper: DRAM-PS 5.75h $34.9; PMem-OE 5.33h $20.3; Ori-Cache 7.01h $26.6")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 8
// ---------------------------------------------------------------------------

// Fig8 sweeps the PMem-OE DRAM cache from 10 MB to 20 GB at 16 GPUs.
func Fig8(o Options) (*Table, error) {
	sizes := []struct {
		label string
		bytes int64
	}{
		{"10MB", 10 << 20}, {"20MB", 20 << 20}, {"40MB", 40 << 20},
		{"100MB", 100 << 20}, {"400MB", 400 << 20}, {"2GB", 2 << 30}, {"20GB", 20 << 30},
	}
	t := &Table{
		ID:      "fig8",
		Title:   "PMem-OE training time vs DRAM cache size (16 GPUs), normalized to 10MB",
		Columns: []string{"Cache", "Normalized time", "Miss rate"},
	}
	var base time.Duration
	for _, s := range sizes {
		res, err := sim.Run(sim.Config{
			Engine: "pmem-oe", GPUs: 16, CacheBytes: s.bytes, Seed: o.seed(),
			MeasureBatches: o.measure(40),
		})
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Epoch
		}
		t.AddRow(s.label,
			fmt.Sprintf("%.3f", float64(res.Epoch)/float64(base)),
			fmt.Sprintf("%.1f%%", res.MissRate*100))
	}
	t.AddNote("paper: time falls 14.4/18/24.9/32.2/38.2%% by 2GB, then <1%% more to 20GB")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 9
// ---------------------------------------------------------------------------

// Fig9 ablates PMem-OE's two mechanisms — the DRAM cache and the pipelined
// (deferred) maintenance — at 16 GPUs with a 2 GB cache.
func Fig9(o Options) (*Table, error) {
	variants := []struct {
		label             string
		cacheOff, pipeOff bool
	}{
		{"no cache, no pipeline", true, true},
		{"cache only", false, true},
		{"pipeline only", true, false},
		{"cache + pipeline (PMem-OE)", false, false},
	}
	t := &Table{
		ID:      "fig9",
		Title:   "PMem-OE ablation at 16 GPUs (2GB cache), normalized to both disabled",
		Columns: []string{"Variant", "Normalized time"},
	}
	var base time.Duration
	for _, v := range variants {
		res, err := sim.Run(sim.Config{
			Engine: "pmem-oe", GPUs: 16, Seed: o.seed(),
			CacheDisabled: v.cacheOff, PipelineDisabled: v.pipeOff,
			MeasureBatches: o.measure(40),
		})
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Epoch
		}
		t.AddRow(v.label, fmt.Sprintf("%.3f", float64(res.Epoch)/float64(base)))
	}
	t.AddNote("paper: cache alone -42.1%%, pipeline alone -54.9%%, both -73.9%%")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 10
// ---------------------------------------------------------------------------

// Fig10 dumps the sorted rank-frequency profile of the original workload
// and the more/less-skew variants, with fitted exponential-decay rates.
func Fig10(o Options) (*Table, error) {
	keys := 100_000
	draws := 300_000
	if o.Quick {
		keys, draws = 30_000, 90_000
	}
	t := &Table{
		ID:      "fig10",
		Title:   "Rank-frequency profiles and fitted exponential decay rates",
		Columns: []string{"Workload", "Fitted lambda", "Top-1% share"},
	}
	for _, w := range []struct {
		label   string
		sampler workload.KeySampler
	}{
		{"more skew (tail x0.74)", workload.NewTableIISkewAdjusted(keys, 1.1, o.seed())},
		{"original (Table II fit)", workload.NewTableIISkew(keys, o.seed())},
		{"less skew (tail x1.25)", workload.NewTableIISkewAdjusted(keys, 0.9, o.seed())},
	} {
		counts := workload.CountAccesses(w.sampler, draws)
		lambda := workload.FitExponential(counts, keys)
		share := workload.TopShare(counts, keys, []float64{0.01})[0]
		t.AddRow(w.label, fmt.Sprintf("%.0f", lambda), fmt.Sprintf("%.1f%%", share*100))
	}
	t.AddNote("frequency(rank) ~ A*exp(-lambda*rank/N); larger lambda = more skew")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 11
// ---------------------------------------------------------------------------

// Fig11 runs 16-GPU training under three skews, reporting time normalized
// to DRAM-PS per skew plus the (shared) cache miss rate.
func Fig11(o Options) (*Table, error) {
	skews := []struct {
		label   string
		sampler func(keys int, seed int64) workload.KeySampler
	}{
		{"more skew", func(k int, s int64) workload.KeySampler { return workload.NewTableIISkewAdjusted(k, 1.1, s) }},
		{"original", nil}, // default Table II
		{"less skew", func(k int, s int64) workload.KeySampler { return workload.NewTableIISkewAdjusted(k, 0.9, s) }},
	}
	t := &Table{
		ID:      "fig11",
		Title:   "Training time (normalized to DRAM-PS per skew) and miss rate, 16 GPUs, 2GB cache",
		Columns: []string{"Skew", "DRAM-PS", "PMem-OE", "Ori-Cache", "Miss rate"},
	}
	for _, sk := range skews {
		var times [3]time.Duration
		var miss float64
		for i, eng := range []string{"dram-ps", "pmem-oe", "ori-cache"} {
			res, err := sim.Run(sim.Config{
				Engine: eng, GPUs: 16, Seed: o.seed(), Sampler: sk.sampler,
				MeasureBatches: o.measure(40),
			})
			if err != nil {
				return nil, err
			}
			times[i] = res.Epoch
			if eng == "pmem-oe" {
				miss = res.MissRate
			}
		}
		t.AddRow(sk.label,
			"1.000",
			fmt.Sprintf("%.3f", float64(times[1])/float64(times[0])),
			fmt.Sprintf("%.3f", float64(times[2])/float64(times[0])),
			fmt.Sprintf("%.1f%%", miss*100))
	}
	t.AddNote("paper: miss rates 10.04/13.63/17.08%%; less skew costs Ori-Cache >20%% but PMem-OE <5%%")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 12 and Fig. 13
// ---------------------------------------------------------------------------

// Fig12 sweeps the checkpoint interval at 16 GPUs for every checkpoint
// variant, normalized to training without checkpoints.
func Fig12(o Options) (*Table, error) {
	base, err := sim.Run(sim.Config{Engine: "pmem-oe", GPUs: 16, Seed: o.seed(), MeasureBatches: o.measure(60)})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "PMem-OE training time vs checkpoint interval (16 GPUs), normalized to no checkpoint",
		Columns: []string{"Interval", "Proposed", "Sparse only", "Incremental"},
	}
	for _, mins := range []float64{10, 20, 30, 40} {
		row := []string{fmt.Sprintf("%.0f min", mins)}
		for _, kind := range []sim.CheckpointKind{sim.CkptProposed, sim.CkptSparseOnly, sim.CkptIncremental} {
			periods := 2
			if o.Quick {
				periods = 1
			}
			res, err := sim.Run(sim.Config{
				Engine: "pmem-oe", GPUs: 16, Seed: o.seed(),
				Checkpoint: kind, CheckpointIntervalMinutes: mins,
				MeasureBatches: int(mins*sim.BatchesPerMinute) * periods,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(res.AvgBatch)/float64(base.AvgBatch)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: proposed +2.4%%@10min to +0.6%%@40min; sparse-only ~0%%; incremental +21.4%% to +16.5%%")
	return t, nil
}

// Fig13 fixes the interval at 20 minutes and varies the GPU count.
func Fig13(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "PMem-OE checkpoint overhead vs GPU count (20-min interval), vs no checkpoint",
		Columns: []string{"GPUs", "Proposed", "Sparse only", "Incremental"},
	}
	for _, g := range []int{4, 8, 16} {
		base, err := sim.Run(sim.Config{Engine: "pmem-oe", GPUs: g, Seed: o.seed(), MeasureBatches: o.measure(60)})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", g)}
		for _, kind := range []sim.CheckpointKind{sim.CkptProposed, sim.CkptSparseOnly, sim.CkptIncremental} {
			periods := 2
			if o.Quick {
				periods = 1
			}
			res, err := sim.Run(sim.Config{
				Engine: "pmem-oe", GPUs: g, Seed: o.seed(),
				Checkpoint: kind, CheckpointIntervalMinutes: 20,
				MeasureBatches: 60 * periods,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%+.1f%%", (float64(res.AvgBatch)/float64(base.AvgBatch)-1)*100))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: proposed ~+1.2%% flat across GPU counts; sparse-only ~0%%; the residue is the dense dump")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 14
// ---------------------------------------------------------------------------

// Fig14 reports the recovery-time comparison at production scale.
func Fig14(Options) (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Recovery time after failure (500GB model)",
		Columns: []string{"System", "Read", "Rebuild", "Total (s)"},
	}
	ests := sim.RecoveryTimes()
	ests = append(ests, sim.ParallelRecoveryTime(4))
	for _, e := range ests {
		t.AddRow(e.Label,
			fmt.Sprintf("%.1fs", e.ReadTime.Seconds()),
			fmt.Sprintf("%.1fs", e.BuildTime.Seconds()),
			fmt.Sprintf("%.1f", e.Total().Seconds()))
	}
	speedup := ests[0].Total().Seconds() / ests[2].Total().Seconds()
	t.AddNote("paper: 1512.8s / 751.08s / 380.2s (3.97x speedup); measured speedup %.2fx", speedup)
	t.AddNote("last row: the 4-way partitioned recovery the paper proposes (core.RecoverParallel)")
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 15
// ---------------------------------------------------------------------------

// Fig15 compares against the TensorFlow baseline on the (synthetic) Criteo
// workload at embedding dims 16 and 64, normalized to TF dim-16 at 1 GPU.
func Fig15(o Options) (*Table, error) {
	systems := []string{"tf", "dram-ps", "pmem-oe", "pmem-hash"}
	t := &Table{
		ID:      "fig15",
		Title:   "Criteo training time, normalized to TensorFlow dim-16 at 1 GPU",
		Columns: []string{"System", "dim16/1GPU", "dim16/2GPU", "dim16/4GPU", "dim64/1GPU", "dim64/2GPU", "dim64/4GPU"},
	}
	var base time.Duration
	rows := map[string][]string{}
	for _, dim := range []int{16, 64} {
		for _, g := range []int{1, 2, 4} {
			for _, sys := range systems {
				res, err := sim.Run(sim.Config{
					Engine: sys, GPUs: g, Dim: dim,
					CacheBytes: 128 << 20, Keys: 1 << 16, Seed: o.seed(),
					// Criteo batches reference far more unique keys than
					// the production trace (26 fields x 4096 samples).
					RealDraws:      65536,
					MeasureBatches: o.measure(30),
				})
				if err != nil {
					return nil, err
				}
				if sys == "tf" && dim == 16 && g == 1 {
					base = res.Epoch * time.Duration(g) // per-GPU-normalized epoch
				}
				// Normalize total time at equal samples: epoch already
				// accounts for steps shrinking with g.
				rows[sys] = append(rows[sys], fmt.Sprintf("%.3f", float64(res.Epoch)/float64(base)))
			}
		}
	}
	for _, sys := range systems {
		t.AddRow(append([]string{sys}, reorderFig15(rows[sys])...)...)
	}
	t.AddNote("paper: PMem-OE beats TF by 6.3-30.1%% (dim16) and 6.4-52%% (dim64); within 5%% of DRAM-PS; PMem-Hash up to 4.3x TF")
	return t, nil
}

// reorderFig15 reorders flat results (dim-major, gpu, system stripped) —
// results arrive already in column order.
func reorderFig15(vals []string) []string { return vals }

// tableVDeployments indexes Table V deployments by name.
func tableVDeployments() map[string]deployment {
	return map[string]deployment{
		"DRAM-PS":   depDRAM,
		"PMem-OE":   depPMem,
		"Ori-Cache": depOri,
	}
}
