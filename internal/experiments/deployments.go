package experiments

import "openembedding/internal/costmodel"

type deployment = costmodel.Deployment

var (
	depDRAM = costmodel.DRAMPS
	depPMem = costmodel.PMemOE
	depOri  = costmodel.OriCache
)
