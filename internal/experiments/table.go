// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. VI). Each experiment returns a Table whose rows mirror
// the series the paper plots; cmd/oesim prints them and the root bench
// suite wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced artifact (a paper table or the data behind a
// figure).
type Table struct {
	// ID is the experiment identifier ("fig7", "table2", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes carry paper-comparison remarks printed under the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Cell finds the cell at (rowLabel, column), or "" when absent. Rows are
// matched on their first cell.
func (t *Table) Cell(rowLabel, column string) string {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
		}
	}
	if col < 0 {
		return ""
	}
	for _, row := range t.Rows {
		if len(row) > col && row[0] == rowLabel {
			return row[col]
		}
	}
	return ""
}
