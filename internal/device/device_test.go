package device

import (
	"testing"
	"time"

	"openembedding/internal/simclock"
)

// TestTableIOrdering checks that the calibrated models preserve the paper's
// Table I ordering: DRAM faster than PMem, PMem much faster than SSD, and
// PMem's write bandwidth well below its read bandwidth.
func TestTableIOrdering(t *testing.T) {
	dram, pm, ssd := DRAM(), PMem(), FlashSSD()

	if !(dram.ReadLatency < pm.ReadLatency && pm.ReadLatency < ssd.ReadLatency) {
		t.Fatal("read latency ordering violated")
	}
	if !(dram.ReadBandwidth > pm.ReadBandwidth && pm.ReadBandwidth > ssd.ReadBandwidth) {
		t.Fatal("read bandwidth ordering violated")
	}
	// Paper: PMem read bw ~1/3 of DRAM, write bw ~1/5 of DRAM.
	if r := dram.ReadBandwidth / pm.ReadBandwidth; r < 2.5 || r > 3.5 {
		t.Fatalf("DRAM/PMem read bw ratio = %.2f, want ~3", r)
	}
	if r := dram.WriteBandwidth / pm.WriteBandwidth; r < 4.5 || r > 6.5 {
		t.Fatalf("DRAM/PMem write bw ratio = %.2f, want ~5-6", r)
	}
	// SSD latency is "almost two orders of magnitude" above DRAM.
	if r := float64(ssd.ReadLatency) / float64(dram.ReadLatency); r < 50 {
		t.Fatalf("SSD/DRAM latency ratio = %.0f, want > 50", r)
	}
}

func TestCostMonotonicity(t *testing.T) {
	m := PMem()
	if m.ReadCost(64) >= m.ReadCost(4096) {
		t.Fatal("read cost not increasing with size")
	}
	if m.WriteCost(0) != m.WriteLatency {
		t.Fatal("zero-byte write should cost exactly the latency")
	}
	if m.ReadCost(0) != m.ReadLatency {
		t.Fatal("zero-byte read should cost exactly the latency")
	}
}

func TestStreamCostAmortizesLatency(t *testing.T) {
	m := PMem()
	// 1 MiB as a stream must be far cheaper than 1 MiB as 4 KiB accesses.
	streamed := m.StreamReadCost(1 << 20)
	var chunked time.Duration
	for i := 0; i < (1<<20)/4096; i++ {
		chunked += m.ReadCost(4096)
	}
	if streamed >= chunked {
		t.Fatalf("stream %v not cheaper than chunked %v", streamed, chunked)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	m := DRAM()
	// For large accesses the effective bandwidth approaches the device rate.
	eff := m.EffectiveReadBandwidth(1 << 20)
	if eff < 0.8*m.ReadBandwidth {
		t.Fatalf("effective bw %.1f GB/s too far below device rate", eff/1e9)
	}
	// For tiny accesses latency dominates.
	if small := m.EffectiveReadBandwidth(64); small > 0.1*m.ReadBandwidth {
		t.Fatalf("64B effective bw %.1f unexpectedly high", small/1e9)
	}
}

func TestTimedCharges(t *testing.T) {
	meter := simclock.NewMeter()
	td := NewTimedPMem(meter)
	td.ChargeRead(256)
	td.ChargeWrite(256)
	td.ChargeStreamRead(1 << 20)
	td.ChargeStreamWrite(1 << 20)
	if meter.Ops(simclock.PMemRead) != 2 || meter.Ops(simclock.PMemWrite) != 2 {
		t.Fatalf("ops = %d/%d", meter.Ops(simclock.PMemRead), meter.Ops(simclock.PMemWrite))
	}
	if meter.Total(simclock.PMemRead) <= 0 || meter.Total(simclock.PMemWrite) <= 0 {
		t.Fatal("nothing charged")
	}
}

func TestTimedNilSafe(t *testing.T) {
	var td *Timed
	td.ChargeRead(1)
	td.ChargeWrite(1)
	td.ChargeStreamRead(1)
	td.ChargeStreamWrite(1) // must not panic
}

func TestTimedConstructorsUseRightCategories(t *testing.T) {
	meter := simclock.NewMeter()
	NewTimedDRAM(meter).ChargeRead(8)
	NewTimedPMem(meter).ChargeRead(8)
	NewTimedSSD(meter).ChargeRead(8)
	for _, c := range []simclock.Category{simclock.DRAMRead, simclock.PMemRead, simclock.SSDRead} {
		if meter.Ops(c) != 1 {
			t.Fatalf("category %v ops = %d", c, meter.Ops(c))
		}
	}
}

func TestNetworkModel(t *testing.T) {
	n := Network30Gb()
	// 30 Gb/s = 3.75 GB/s; 1 GiB transfer ~ 0.29 s.
	c := n.StreamWriteCost(1 << 30)
	if c < 200*time.Millisecond || c > 400*time.Millisecond {
		t.Fatalf("1GiB over 30Gb link = %v, want ~286ms", c)
	}
}
