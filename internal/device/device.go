// Package device defines calibrated timing models for the storage and
// network hardware the paper evaluates on: DRAM, Intel Optane PMem, flash
// SSD (Table I) and the 30 Gb cloud intranet.
//
// A Model converts an access size into a virtual-time cost
// (latency + bytes/bandwidth). Engines charge these costs to a
// simclock.Meter; the epoch simulator turns the charged totals into phase
// times. The default constants are the paper's own measurements (Table I),
// which is what makes the reproduction's relative shapes trustworthy even
// though no physical PMem DIMM is present.
package device

import (
	"time"

	"openembedding/internal/simclock"
)

// Model is the timing model of one device: fixed per-access latency plus a
// bandwidth term proportional to the transfer size.
type Model struct {
	// Name identifies the device in reports ("DRAM", "PMem", "FlashSSD").
	Name string
	// ReadLatency is the fixed cost of one read access.
	ReadLatency time.Duration
	// WriteLatency is the fixed cost of one write access.
	WriteLatency time.Duration
	// ReadBandwidth is the sustained read rate in bytes per second.
	ReadBandwidth float64
	// WriteBandwidth is the sustained write rate in bytes per second.
	WriteBandwidth float64
}

const gib = 1024 * 1024 * 1024

// DRAM returns the paper's Table I DRAM model:
// 115/79 GB/s read/write bandwidth, 81/86 ns read/write latency.
func DRAM() Model {
	return Model{
		Name:           "DRAM",
		ReadLatency:    81 * time.Nanosecond,
		WriteLatency:   86 * time.Nanosecond,
		ReadBandwidth:  115 * gib,
		WriteBandwidth: 79 * gib,
	}
}

// PMem returns the paper's Table I Optane PMem model:
// 39/14 GB/s read/write bandwidth, 305/94 ns read/write latency.
// (Write latency is low because stores land in the DIMM's write-combining
// buffer; persistence cost shows up as bandwidth, exactly as on Optane.)
func PMem() Model {
	return Model{
		Name:           "PMem",
		ReadLatency:    305 * time.Nanosecond,
		WriteLatency:   94 * time.Nanosecond,
		ReadBandwidth:  39 * gib,
		WriteBandwidth: 14 * gib,
	}
}

// FlashSSD returns the paper's Table I flash SSD model:
// 2.5/1.5 GB/s read/write bandwidth, >10 µs access latency.
func FlashSSD() Model {
	return Model{
		Name:           "FlashSSD",
		ReadLatency:    12 * time.Microsecond,
		WriteLatency:   15 * time.Microsecond,
		ReadBandwidth:  2.5 * gib,
		WriteBandwidth: 1.5 * gib,
	}
}

// Network30Gb returns the evaluation cluster's 30 Gb intranet as a device
// model: ~10 µs RPC latency and 30 Gb/s of bandwidth in each direction.
func Network30Gb() Model {
	return Model{
		Name:           "Net30Gb",
		ReadLatency:    10 * time.Microsecond,
		WriteLatency:   10 * time.Microsecond,
		ReadBandwidth:  30.0 / 8 * gib,
		WriteBandwidth: 30.0 / 8 * gib,
	}
}

// ReadCost returns the virtual cost of reading n bytes in one access.
func (m Model) ReadCost(n int) time.Duration {
	return m.ReadLatency + bwCost(n, m.ReadBandwidth)
}

// WriteCost returns the virtual cost of writing n bytes in one access.
func (m Model) WriteCost(n int) time.Duration {
	return m.WriteLatency + bwCost(n, m.WriteBandwidth)
}

// StreamReadCost returns the cost of reading n bytes as a long sequential
// stream: one access latency amortized over the whole transfer.
func (m Model) StreamReadCost(n int64) time.Duration {
	return m.ReadLatency + bwCost64(n, m.ReadBandwidth)
}

// StreamWriteCost returns the cost of writing n bytes as a long sequential
// stream.
func (m Model) StreamWriteCost(n int64) time.Duration {
	return m.WriteLatency + bwCost64(n, m.WriteBandwidth)
}

func bwCost(n int, bw float64) time.Duration { return bwCost64(int64(n), bw) }

func bwCost64(n int64, bw float64) time.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// EffectiveReadBandwidth reports the model's achieved bytes/second for
// back-to-back accesses of the given size (latency included). It is what
// the Table I bench prints.
func (m Model) EffectiveReadBandwidth(accessSize int) float64 {
	c := m.ReadCost(accessSize)
	if c <= 0 {
		return 0
	}
	return float64(accessSize) / c.Seconds()
}

// EffectiveWriteBandwidth is the write-side counterpart of
// EffectiveReadBandwidth.
func (m Model) EffectiveWriteBandwidth(accessSize int) float64 {
	c := m.WriteCost(accessSize)
	if c <= 0 {
		return 0
	}
	return float64(accessSize) / c.Seconds()
}

// Timed couples a Model with the meter categories its accesses charge,
// so call sites need a single line per access.
type Timed struct {
	Model    Model
	Meter    *simclock.Meter
	ReadCat  simclock.Category
	WriteCat simclock.Category
}

// NewTimedDRAM builds a Timed DRAM device charging to m.
func NewTimedDRAM(m *simclock.Meter) *Timed {
	return &Timed{Model: DRAM(), Meter: m, ReadCat: simclock.DRAMRead, WriteCat: simclock.DRAMWrite}
}

// NewTimedPMem builds a Timed PMem device charging to m.
func NewTimedPMem(m *simclock.Meter) *Timed {
	return &Timed{Model: PMem(), Meter: m, ReadCat: simclock.PMemRead, WriteCat: simclock.PMemWrite}
}

// NewTimedSSD builds a Timed flash SSD charging to m.
func NewTimedSSD(m *simclock.Meter) *Timed {
	return &Timed{Model: FlashSSD(), Meter: m, ReadCat: simclock.SSDRead, WriteCat: simclock.SSDWrite}
}

// ChargeRead records the cost of one n-byte read.
func (t *Timed) ChargeRead(n int) {
	if t == nil {
		return
	}
	t.Meter.Charge(t.ReadCat, t.Model.ReadCost(n))
}

// ChargeWrite records the cost of one n-byte write.
func (t *Timed) ChargeWrite(n int) {
	if t == nil {
		return
	}
	t.Meter.Charge(t.WriteCat, t.Model.WriteCost(n))
}

// ChargeReadN records the cost of count independent n-byte reads in one
// atomic meter update. The cost model is nonlinear (latency + bytes/bw), so
// the batch charges count × ReadCost(n) — bit-identical in both virtual
// time and op count to count individual ChargeRead calls, never
// ReadCost(count×n). Hot paths that resolve a whole run of records use this
// to keep the meter off their inner loop.
func (t *Timed) ChargeReadN(n int, count int64) {
	if t == nil || count <= 0 {
		return
	}
	t.Meter.ChargeN(t.ReadCat, time.Duration(count)*t.Model.ReadCost(n), count)
}

// ChargeWriteN records the cost of count independent n-byte writes in one
// atomic meter update (count × WriteCost(n), as ChargeReadN).
func (t *Timed) ChargeWriteN(n int, count int64) {
	if t == nil || count <= 0 {
		return
	}
	t.Meter.ChargeN(t.WriteCat, time.Duration(count)*t.Model.WriteCost(n), count)
}

// ChargeStreamRead records the cost of an n-byte sequential read stream.
func (t *Timed) ChargeStreamRead(n int64) {
	if t == nil {
		return
	}
	t.Meter.Charge(t.ReadCat, t.Model.StreamReadCost(n))
}

// ChargeStreamWrite records the cost of an n-byte sequential write stream.
func (t *Timed) ChargeStreamWrite(n int64) {
	if t == nil {
		return
	}
	t.Meter.Charge(t.WriteCat, t.Model.StreamWriteCost(n))
}
