package costmodel

import (
	"math"
	"testing"
)

func TestTableVConstants(t *testing.T) {
	if DRAMPS.Machines != 2 || PMemOE.Machines != 1 || OriCache.Machines != 1 {
		t.Fatal("machine counts disagree with Table V")
	}
	if DRAMPS.DollarsPerHour != 6.07 || PMemOE.DollarsPerHour != 3.80 {
		t.Fatal("prices disagree with Table V")
	}
	if PMemOE.PMemPerMachineGB != 756 || DRAMPS.PMemPerMachineGB != 0 {
		t.Fatal("PMem capacities disagree with Table V")
	}
}

func TestCostPerEpochPaperNumbers(t *testing.T) {
	// With the paper's epoch times, the costs must match Table V.
	if got := DRAMPS.CostPerEpoch(5.75); math.Abs(got-34.9) > 0.1 {
		t.Fatalf("DRAM-PS $/epoch = %.2f, paper 34.9", got)
	}
	if got := PMemOE.CostPerEpoch(5.33); math.Abs(got-20.3) > 0.1 {
		t.Fatalf("PMem-OE $/epoch = %.2f, paper 20.3", got)
	}
	if got := OriCache.CostPerEpoch(7.01); math.Abs(got-26.6) > 0.1 {
		t.Fatalf("Ori-Cache $/epoch = %.2f, paper 26.6", got)
	}
}

func TestSavings(t *testing.T) {
	// Paper: PMem-OE saves 42% over DRAM-PS, 24% over Ori-Cache.
	if got := PMemOE.SavingsVs(DRAMPS, 5.33, 5.75); math.Abs(got-0.42) > 0.01 {
		t.Fatalf("saving vs DRAM-PS = %.3f, paper ~0.42", got)
	}
	if got := PMemOE.SavingsVs(OriCache, 5.33, 7.01); math.Abs(got-0.24) > 0.01 {
		t.Fatalf("saving vs Ori-Cache = %.3f, paper ~0.24", got)
	}
	if got := PMemOE.SavingsVs(Deployment{}, 1, 0); got != 0 {
		t.Fatalf("zero-cost comparison = %v", got)
	}
}
