// Package costmodel reproduces Table V: the dollar cost of the parameter-
// server tier per training epoch, combining the paper's published
// "Pay-As-You-Go" Alibaba Cloud prices with measured epoch times.
package costmodel

// Deployment is one PS provisioning option from Table V.
type Deployment struct {
	// Name matches the paper's system label.
	Name string
	// Machines and InstanceType describe the PS tier.
	Machines     int
	InstanceType string
	// DRAMPerMachineGB / PMemPerMachineGB are the per-machine capacities.
	DRAMPerMachineGB, PMemPerMachineGB int
	// DollarsPerHour is the PS-tier hourly price (all machines).
	DollarsPerHour float64
}

// Table V deployments (prices as published).
var (
	DRAMPS = Deployment{
		Name: "DRAM-PS", Machines: 2, InstanceType: "r6e.13xlarge",
		DRAMPerMachineGB: 384, DollarsPerHour: 6.07,
	}
	PMemOE = Deployment{
		Name: "PMem-OE", Machines: 1, InstanceType: "re6p.13xlarge",
		DRAMPerMachineGB: 192, PMemPerMachineGB: 756, DollarsPerHour: 3.80,
	}
	OriCache = Deployment{
		Name: "Ori-Cache", Machines: 1, InstanceType: "re6p.13xlarge",
		DRAMPerMachineGB: 192, PMemPerMachineGB: 756, DollarsPerHour: 3.80,
	}
)

// CostPerEpoch returns the PS-tier dollars for one epoch of the given
// duration in hours.
func (d Deployment) CostPerEpoch(epochHours float64) float64 {
	return d.DollarsPerHour * epochHours
}

// SavingsVs returns the fractional cost saving of d against other for the
// given epoch times.
func (d Deployment) SavingsVs(other Deployment, epochHours, otherEpochHours float64) float64 {
	mine := d.CostPerEpoch(epochHours)
	theirs := other.CostPerEpoch(otherEpochHours)
	if theirs == 0 {
		return 0
	}
	return 1 - mine/theirs
}
