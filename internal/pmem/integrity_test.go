package pmem

import (
	"bytes"
	"errors"
	"testing"
)

// flipDurableBit flips one bit at the device offset in both the volatile
// and durable images — exactly what media bit-rot does.
func flipDurableBit(t *testing.T, a *Arena, off int, bit uint) {
	t.Helper()
	var b [1]byte
	if err := a.Device().Read(off, b[:]); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 1 << bit
	if err := a.Device().Persist(off, b[:]); err != nil {
		t.Fatal(err)
	}
}

// TestCorrectRecordSingleBit flips one bit in every region of a stored
// record — key, version, payload length, payload, and the stored CRC word
// itself — and requires CorrectRecord to restore the record bit-exactly,
// durably, from the CRC32C syndrome alone.
func TestCorrectRecordSingleBit(t *testing.T) {
	a := newTestArena(t, 4, 8)
	slot, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	payload := encPayload(a, 1, 2, 3, 4)
	if err := a.WriteRecord(slot, 42, 7, payload); err != nil {
		t.Fatal(err)
	}
	base := a.slotOffset(slot)
	recLen := slotHeaderLen + a.PayloadBytes()
	want := make([]byte, recLen)
	if err := a.Device().ReadDurable(base, want); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		off  int // record-relative byte
		bit  uint
	}{
		{"key", 3, 5},
		{"version", 8, 0},
		{"payload-len", 16, 2},
		{"crc-field", 21, 7},
		{"payload-first", slotHeaderLen, 6},
		{"payload-last", recLen - 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flipDurableBit(t, a, base+tc.off, tc.bit)
			if err := a.CheckRecord(slot, 42); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corruption undetected: %v", err)
			}
			if err := a.CorrectRecord(slot, 42); err != nil {
				t.Fatalf("CorrectRecord: %v", err)
			}
			if err := a.CheckRecord(slot, 42); err != nil {
				t.Fatalf("record still invalid after correction: %v", err)
			}
			got := make([]byte, recLen)
			if err := a.Device().ReadDurable(base, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("corrected record is not durably bit-exact")
			}
		})
	}
}

// TestCorrectRecordRefusesMultiBit: damage beyond one bit must fail typed,
// never "correct" into a different record (CRC32C's minimum distance of 4
// at record lengths guarantees no 2-3 bit pattern matches a single-bit
// syndrome).
func TestCorrectRecordRefusesMultiBit(t *testing.T) {
	a := newTestArena(t, 4, 8)
	slot, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRecord(slot, 42, 7, encPayload(a, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	base := a.slotOffset(slot)
	for _, off := range []int{slotHeaderLen, slotHeaderLen + 1, slotHeaderLen + 2} {
		flipDurableBit(t, a, base+off, 4)
	}
	if err := a.CorrectRecord(slot, 42); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("multi-bit damage not refused: %v", err)
	}
	if err := a.CheckRecord(slot, 42); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record unexpectedly valid: %v", err)
	}
}

// TestCorrectRecordRefusesStructuralDamage: a record whose CRC is valid
// but which belongs to another key is not a bit flip and must not be
// touched.
func TestCorrectRecordRefusesStructuralDamage(t *testing.T) {
	a := newTestArena(t, 4, 8)
	slot, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRecord(slot, 42, 7, encPayload(a, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := a.CorrectRecord(slot, 99); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong-key record not refused: %v", err)
	}
}

// TestSetCheckpointedBatchRange: the packed header word holds id+1 in 32
// bits; IDs outside [-1, 2^32-2] must fail loudly instead of wrapping to a
// smaller ID with a valid CRC.
func TestSetCheckpointedBatchRange(t *testing.T) {
	a := newTestArena(t, 4, 8)
	for _, id := range []int64{maxCkptID + 1, -2} {
		if err := a.SetCheckpointedBatch(id); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("SetCheckpointedBatch(%d) = %v, want ErrOutOfRange", id, err)
		}
		if err := a.SetPrevCheckpointedBatch(id); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("SetPrevCheckpointedBatch(%d) = %v, want ErrOutOfRange", id, err)
		}
	}
	if got, err := a.CheckpointedBatch(); err != nil || got != -1 {
		t.Fatalf("rejected writes disturbed the header: %d, %v", got, err)
	}
	if err := a.SetCheckpointedBatch(maxCkptID); err != nil {
		t.Fatal(err)
	}
	if got, err := a.CheckpointedBatch(); err != nil || got != maxCkptID {
		t.Fatalf("CheckpointedBatch = %d, %v, want %d", got, err, maxCkptID)
	}
}
