package pmem

import (
	"encoding/binary"
	"math"
)

// FloatBytes returns the encoded size of n float32 values.
func FloatBytes(n int) int { return 4 * n }

// EncodeFloats writes src as little-endian float32s into dst, which must be
// at least 4*len(src) bytes, and returns the number of bytes written.
// Embedding-entry payloads (weights plus optimizer state) use this encoding.
func EncodeFloats(dst []byte, src []float32) int {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
	return 4 * len(src)
}

// DecodeFloats reads len(dst) float32s from src into dst and returns the
// number of bytes consumed.
func DecodeFloats(dst []float32, src []byte) int {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return 4 * len(dst)
}
