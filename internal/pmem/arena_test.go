package pmem

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestArena(t *testing.T, payloadFloats, slots int) *Arena {
	t.Helper()
	payload := FloatBytes(payloadFloats)
	d, _ := newTestDevice(t, ArenaLayout(payload, slots))
	a, err := NewArena(d, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func encPayload(a *Arena, vals ...float32) []byte {
	buf := make([]byte, a.PayloadBytes())
	EncodeFloats(buf, vals)
	return buf
}

func TestArenaWriteReadRecord(t *testing.T) {
	a := newTestArena(t, 4, 8)
	slot, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRecord(slot, 42, 7, encPayload(a, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	rec, err := a.ReadRecord(slot)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Key != 42 || rec.Version != 7 {
		t.Fatalf("rec = %+v", rec)
	}
	got := make([]float32, 4)
	DecodeFloats(got, rec.Payload)
	for i, want := range []float32{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("payload[%d] = %v want %v", i, got[i], want)
		}
	}
	v, err := a.Version(slot)
	if err != nil || v != 7 {
		t.Fatalf("Version = %d, %v", v, err)
	}
}

func TestArenaUnwrittenSlotIsCorrupt(t *testing.T) {
	a := newTestArena(t, 4, 8)
	slot, _ := a.Alloc()
	if _, err := a.ReadRecord(slot); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unwritten slot decoded: %v", err)
	}
}

func TestArenaTornWriteDiscardedOnCrash(t *testing.T) {
	a := newTestArena(t, 4, 8)
	slot, _ := a.Alloc()
	// Simulate a torn write: store the record bytes but crash before flush.
	buf := make([]byte, slotHeaderLen+a.PayloadBytes())
	copy(buf[slotHeaderLen:], encPayload(a, 9, 9, 9, 9))
	if err := a.Device().Write(a.slotOffset(slot), buf); err != nil {
		t.Fatal(err)
	}
	a.Device().Crash()
	if _, err := a.ReadRecord(slot); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn record accepted: %v", err)
	}
}

func TestArenaRecordSurvivesCrash(t *testing.T) {
	a := newTestArena(t, 2, 4)
	slot, _ := a.Alloc()
	if err := a.WriteRecord(slot, 5, 3, encPayload(a, 1.5, -2.5)); err != nil {
		t.Fatal(err)
	}
	a.Device().Crash()
	rec, err := a.ReadRecord(slot)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Key != 5 || rec.Version != 3 {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestArenaAllocExhaustionAndFree(t *testing.T) {
	a := newTestArena(t, 1, 3)
	var slots []uint32
	for i := 0; i < 3; i++ {
		s, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	a.Free(slots[1])
	s, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if s != slots[1] {
		t.Fatalf("freed slot not reused: got %d want %d", s, slots[1])
	}
}

func TestArenaRetireBlocksReuseUntilCheckpoint(t *testing.T) {
	a := newTestArena(t, 1, 2)
	s0, _ := a.Alloc()
	s1, _ := a.Alloc()
	_ = s1
	a.Retire(s0, 3, 10) // superseded by version 10
	if _, err := a.Alloc(); !errors.Is(err, ErrFull) {
		t.Fatalf("retired slot reused before checkpoint")
	}
	if n := a.ReclaimUpTo(9); n != 0 {
		t.Fatalf("reclaimed %d slots with ckpt 9", n)
	}
	if n := a.ReclaimUpTo(10); n != 1 {
		t.Fatalf("reclaimed %d slots with ckpt 10, want 1", n)
	}
	if _, err := a.Alloc(); err != nil {
		t.Fatalf("reclaimed slot not allocatable: %v", err)
	}
}

func TestArenaDoubleFreePanics(t *testing.T) {
	a := newTestArena(t, 1, 2)
	s, _ := a.Alloc()
	a.Free(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(s)
}

func TestArenaScanSkipsInvalidAndFindsValid(t *testing.T) {
	a := newTestArena(t, 2, 10)
	want := map[uint64]int64{}
	for i := 0; i < 5; i++ {
		s, _ := a.Alloc()
		key := uint64(100 + i)
		ver := int64(i)
		if err := a.WriteRecord(s, key, ver, encPayload(a, float32(i), 0)); err != nil {
			t.Fatal(err)
		}
		want[key] = ver
	}
	got := map[uint64]int64{}
	if err := a.Scan(func(r Record) error {
		got[r.Key] = r.Version
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d records, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan[%d] = %d want %d", k, got[k], v)
		}
	}
}

func TestArenaCheckpointedBatchPersistence(t *testing.T) {
	a := newTestArena(t, 1, 2)
	if id, err := a.CheckpointedBatch(); err != nil || id != -1 {
		t.Fatalf("initial ckpt id = %d, %v; want -1", id, err)
	}
	if err := a.SetCheckpointedBatch(37); err != nil {
		t.Fatal(err)
	}
	a.Device().Crash()
	reopened, err := OpenArena(a.Device())
	if err != nil {
		t.Fatal(err)
	}
	if id, err := reopened.CheckpointedBatch(); err != nil || id != 37 {
		t.Fatalf("ckpt id after crash = %d, %v; want 37", id, err)
	}
}

func TestArenaOpenRejectsUnformattedDevice(t *testing.T) {
	d, _ := newTestDevice(t, 4096)
	if _, err := OpenArena(d); !errors.Is(err, ErrBadImage) {
		t.Fatalf("want ErrBadImage, got %v", err)
	}
}

func TestArenaRecoveryRebuildsFreeList(t *testing.T) {
	a := newTestArena(t, 1, 4)
	for i := 0; i < 4; i++ {
		s, _ := a.Alloc()
		if err := a.WriteRecord(s, uint64(i), 0, encPayload(a, 0)); err != nil {
			t.Fatal(err)
		}
	}
	a.Device().Crash()
	re, err := OpenArena(a.Device())
	if err != nil {
		t.Fatal(err)
	}
	// Recovery keeps slots 0 and 2 only.
	re.MarkOccupied(0)
	re.MarkOccupied(2)
	re.FinishRecovery()
	seen := map[uint32]bool{}
	for i := 0; i < 2; i++ {
		s, err := re.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 || s == 2 {
			t.Fatalf("recovered-live slot %d handed out", s)
		}
		seen[s] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("free slots not 1 and 3: %v", seen)
	}
}

func TestFloatsRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		buf := make([]byte, FloatBytes(len(vals)))
		EncodeFloats(buf, vals)
		got := make([]float32, len(vals))
		DecodeFloats(got, buf)
		for i := range vals {
			// NaN compares unequal to itself; compare bit patterns.
			if math.Float32bits(got[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArenaRecordRoundTripProperty(t *testing.T) {
	a := newTestArena(t, 8, 16)
	rng := rand.New(rand.NewSource(1))
	f := func(key uint64, version int64, seed int64) bool {
		slot, err := a.Alloc()
		if err != nil {
			return true // arena full: skip, not a property failure
		}
		defer a.Free(slot)
		vals := make([]float32, 8)
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		for i := range vals {
			vals[i] = float32(r.NormFloat64())
		}
		buf := make([]byte, a.PayloadBytes())
		EncodeFloats(buf, vals)
		if err := a.WriteRecord(slot, key, version, buf); err != nil {
			return false
		}
		rec, err := a.ReadRecord(slot)
		if err != nil {
			return false
		}
		if rec.Key != key || rec.Version != version {
			return false
		}
		got := make([]float32, 8)
		DecodeFloats(got, rec.Payload)
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaConcurrentSlots exercises concurrent record writes/reads on
// distinct slots plus allocator churn — run under -race in CI.
func TestArenaConcurrentSlots(t *testing.T) {
	a := newTestArena(t, 4, 128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				slot, err := a.Alloc()
				if err != nil {
					continue // transient exhaustion under churn is fine
				}
				key := uint64(w*1000 + i)
				if err := a.WriteRecord(slot, key, int64(i), encPayload(a, float32(w), float32(i), 0, 0)); err != nil {
					t.Error(err)
					return
				}
				rec, err := a.ReadRecord(slot)
				if err != nil || rec.Key != key {
					t.Errorf("slot %d: rec=%+v err=%v", slot, rec, err)
					return
				}
				a.Free(slot)
			}
		}(w)
	}
	wg.Wait()
}

// TestReclaimPredicate verifies the generalized retention rule directly.
func TestReclaimPredicate(t *testing.T) {
	a := newTestArena(t, 1, 8)
	s0, _ := a.Alloc()
	s1, _ := a.Alloc()
	a.Retire(s0, 3, 7)  // record v3 superseded by v7
	a.Retire(s1, 8, 12) // record v8 superseded by v12

	// Keep records whose [old, new) range contains checkpoint 5.
	freed := a.Reclaim(func(oldV, newV int64) bool { return oldV <= 5 && 5 < newV })
	if freed != 1 {
		t.Fatalf("freed %d, want 1 (only the v8->v12 record)", freed)
	}
	if a.RetiredCount() != 1 {
		t.Fatalf("retired = %d", a.RetiredCount())
	}
}

func TestScanRangeBounds(t *testing.T) {
	a := newTestArena(t, 1, 8)
	if err := a.ScanRange(4, 2, func(Record) error { return nil }); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if err := a.ScanRange(0, 9, func(Record) error { return nil }); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overlong range: %v", err)
	}
	s, _ := a.Alloc()
	if err := a.WriteRecord(s, 1, 1, encPayload(a, 1)); err != nil {
		t.Fatal(err)
	}
	found := 0
	if err := a.ScanRange(0, 4, func(Record) error { found++; return nil }); err != nil {
		t.Fatal(err)
	}
	if found != 1 {
		t.Fatalf("found %d records", found)
	}
}
