package pmem

import (
	"errors"
	"openembedding/internal/faultinject"
	"testing"
)

// EraseMatching is the durable half of DropRange (migration cleanup): a
// single recovery-style pass that zeroes every record — live, retired, or
// stale in a freed slot — whose key has moved away, so no later recovery
// scan can resurrect a moved key on the old owner.

func writeKeyed(t *testing.T, a *Arena, key uint64, version int64) uint32 {
	t.Helper()
	slot, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRecord(slot, key, version, encPayload(a, float32(key), 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	return slot
}

func scanKeys(t *testing.T, a *Arena) map[uint64]int {
	t.Helper()
	keys := map[uint64]int{}
	if err := a.Scan(func(rec Record) error {
		keys[rec.Key]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestEraseMatchingAllRecordClasses(t *testing.T) {
	a := newTestArena(t, 4, 32)
	odd := func(k uint64) bool { return k%2 == 1 }

	// Live records: keys 1..6, slots held by the index.
	live := map[uint64]uint32{}
	for k := uint64(1); k <= 6; k++ {
		live[k] = writeKeyed(t, a, k, 1)
	}
	// Retired records: older versions of keys 1 and 2, superseded at v2.
	r1 := writeKeyed(t, a, 1, 0)
	r2 := writeKeyed(t, a, 2, 0)
	a.Retire(r1, 0, 2)
	a.Retire(r2, 0, 2)
	// Stale record: key 7 written, then its slot freed without zeroing —
	// the bytes are still decodable to a recovery scan.
	s7 := writeKeyed(t, a, 7, 1)
	a.Free(s7)

	liveBefore, retiredBefore := a.LiveSlots(), a.RetiredCount()
	erased, err := a.EraseMatching(odd)
	if err != nil {
		t.Fatal(err)
	}
	// Odd keys: live 1,3,5 + retired old-version of 1 + stale 7.
	if erased != 5 {
		t.Fatalf("erased %d records, want 5", erased)
	}
	// The three erased live slots were freed; the erased retired slot left
	// the retired list (and was freed too).
	if got, want := a.LiveSlots(), liveBefore-4; got != want {
		t.Fatalf("live slots = %d, want %d", got, want)
	}
	if got, want := a.RetiredCount(), retiredBefore-1; got != want {
		t.Fatalf("retired count = %d, want %d", got, want)
	}

	// Even-keyed records are untouched and still verify.
	for k, slot := range live {
		if odd(k) {
			if _, err := a.ReadRecord(slot); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("erased key %d still decodes: %v", k, err)
			}
			continue
		}
		rec, err := a.ReadRecord(slot)
		if err != nil || rec.Key != k {
			t.Fatalf("surviving key %d: rec=%+v err=%v", k, rec, err)
		}
	}

	// The freed slots are reusable: allocate and write through the arena's
	// full capacity path without tripping double-free accounting.
	for i := 0; i < 4; i++ {
		writeKeyed(t, a, 100+uint64(i), 3)
	}

	// The decisive property: after a crash, a recovery scan sees no odd key
	// from the erased generation — moved keys cannot resurrect.
	a.Device().Crash()
	for k := range scanKeys(t, a) {
		if odd(k) && k < 100 {
			t.Fatalf("recovery scan resurrected erased key %d", k)
		}
	}
}

// TestEraseMatchingIdempotent: a replayed erase (the re-run migration
// cleanup) finds nothing and changes nothing.
func TestEraseMatchingIdempotent(t *testing.T) {
	a := newTestArena(t, 4, 16)
	for k := uint64(1); k <= 4; k++ {
		writeKeyed(t, a, k, 1)
	}
	if n, err := a.EraseMatching(func(k uint64) bool { return k <= 2 }); err != nil || n != 2 {
		t.Fatalf("first erase = (%d, %v), want (2, nil)", n, err)
	}
	if n, err := a.EraseMatching(func(k uint64) bool { return k <= 2 }); err != nil || n != 0 {
		t.Fatalf("replayed erase = (%d, %v), want (0, nil)", n, err)
	}
	keys := scanKeys(t, a)
	if len(keys) != 2 || keys[3] != 1 || keys[4] != 1 {
		t.Fatalf("surviving keys = %v, want {3,4}", keys)
	}
}

// TestEraseMatchingVerifiedUnderMediaFaults: with the media-fault model
// armed, the erase read-verifies each zeroed header (like setCkptWord) and
// retries, so a dropped flush cannot leave an erased record resurrectable.
func TestEraseMatchingVerifiedUnderMediaFaults(t *testing.T) {
	a, d := newMediaArena(t, 16, 9)
	for k := uint64(1); k <= 8; k++ {
		writeKeyed(t, a, k, 1)
	}
	// Arm AFTER the setup writes: the first two erase flushes are silently
	// discarded; the verify-read must catch both and retry through.
	d.SetMediaFaults(faultinject.New(9,
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindDrop, Prob: 1, Count: 2}), "m")
	erased, err := a.EraseMatching(func(k uint64) bool { return k%2 == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if erased != 4 {
		t.Fatalf("erased %d, want 4", erased)
	}
	d.Crash()
	for k := range scanKeys(t, a) {
		if k%2 == 1 {
			t.Fatalf("dropped flush resurrected erased key %d", k)
		}
	}
}
