package pmem

import (
	"fmt"
)

// CorruptError reports a record (or header word) that failed its CRC32C.
// It unwraps to ErrCorrupt; Key is best-effort (decoded from the corrupt
// bytes, so it may itself be damaged).
type CorruptError struct {
	Key  uint64
	Slot uint32
	Off  int64
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("pmem: corrupt record: key %d slot %d off %d", e.Key, e.Slot, e.Off)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// IntegrityError marks this as a data-integrity failure (see IsIntegrity).
func (e *CorruptError) IntegrityError() bool { return true }

// SlotOffset returns the device offset of slot's record. Exposed for
// integrity tooling and tests that inject corruption at a known site.
func (a *Arena) SlotOffset(slot uint32) int { return a.slotOffset(slot) }

// ReadPayloadVerified copies the payload of the record in slot into dst
// after validating the record CRC32C and that the record belongs to key.
// It is the integrity-checked serve path: it charges exactly the same
// virtual time as the unverified ReadPayload (one payload-sized PMem read —
// the CRC is computed by the CPU over bytes the load already fetched), so
// enabling verification does not move the simulated-performance results.
func (a *Arena) ReadPayloadVerified(slot uint32, key uint64, dst []byte) error {
	off := a.slotOffset(slot)
	n := slotHeaderLen + a.payloadBytes
	if err := a.dev.check(off, n); err != nil {
		return err
	}
	if err := a.dev.poisonCheck(off, n); err != nil {
		return err
	}
	a.dev.crashMu.RLock()
	rec, err := a.decode(slot, a.dev.image[off:off+n])
	if err == nil {
		if rec.Key != key {
			err = &CorruptError{Key: key, Slot: slot, Off: int64(off)}
		} else {
			copy(dst[:a.payloadBytes], rec.Payload)
		}
	}
	a.dev.crashMu.RUnlock()
	a.dev.timed.ChargeRead(a.payloadBytes)
	return err
}

// CheckRecord validates the record in slot against key without copying the
// payload out — the scrubber's probe. It charges a full record read (the
// scrub budget is what keeps this off the hot path).
func (a *Arena) CheckRecord(slot uint32, key uint64) error {
	off := a.slotOffset(slot)
	n := slotHeaderLen + a.payloadBytes
	if err := a.dev.check(off, n); err != nil {
		return err
	}
	if err := a.dev.poisonCheck(off, n); err != nil {
		return err
	}
	a.dev.crashMu.RLock()
	rec, err := a.decode(slot, a.dev.image[off:off+n])
	if err == nil && rec.Key != key {
		err = &CorruptError{Key: key, Slot: slot, Off: int64(off)}
	}
	a.dev.crashMu.RUnlock()
	a.dev.timed.ChargeRead(n)
	return err
}

// WriteRecordVerified is WriteRecord plus a durable read-back proof: after
// the flush, the durable image must decode to exactly (key, version) with a
// valid CRC. A rotted or silently-dropped flush is detected and re-flushed;
// a poisoned line is healed by the rewrite when possible. Bounded retries —
// if the media refuses to hold the record the last typed error is returned
// so the caller can quarantine the slot and allocate another.
func (a *Arena) WriteRecordVerified(slot uint32, key uint64, version int64, payload []byte) error {
	var lastErr error
	rb := make([]byte, slotHeaderLen+a.payloadBytes)
	for attempt := 0; attempt < 3; attempt++ {
		if err := a.WriteRecord(slot, key, version, payload); err != nil {
			return err
		}
		if err := a.dev.ReadDurable(a.slotOffset(slot), rb); err != nil {
			lastErr = err
			continue
		}
		rec, err := a.decode(slot, rb)
		if err != nil {
			lastErr = err
			continue
		}
		if rec.Key != key || rec.Version != version {
			lastErr = &CorruptError{Key: key, Slot: slot, Off: int64(a.slotOffset(slot))}
			continue
		}
		return nil
	}
	return fmt.Errorf("pmem: verified write of slot %d: %w", slot, lastErr)
}

// FindLatest scans the arena for the newest valid record of key with
// version at most maxVersion — the scrubber's restore probe against the
// retained checkpoint. The returned payload is a copy. Corrupt and
// poisoned slots are skipped. Charges a sequential stream read of the
// whole arena (restore is a repair path, not a hot path).
func (a *Arena) FindLatest(key uint64, maxVersion int64) (Record, bool) {
	var out Record
	found := false
	_ = a.Scan(func(r Record) error {
		if r.Key != key || r.Version > maxVersion {
			return nil
		}
		if !found || r.Version > out.Version {
			out = Record{Slot: r.Slot, Key: r.Key, Version: r.Version, Payload: append([]byte(nil), r.Payload...)}
			found = true
		}
		return nil
	})
	return out, found
}

// AdoptRetired removes slot from the retired list so its record becomes
// live again — the scrubber adopting an older retained record after the
// newest one was lost to the media. Returns the record's own version and
// whether the slot was found retired.
func (a *Arena) AdoptRetired(slot uint32) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, r := range a.retired {
		if r.slot == slot {
			a.retired = append(a.retired[:i], a.retired[i+1:]...)
			return r.oldVersion, true
		}
	}
	return 0, false
}

// Quarantine pulls slot out of circulation permanently: it is no longer
// occupied, never enters the free list, and recovery will not hand it out
// either. Used for slots whose media range is poisoned or refuses to hold
// data.
func (a *Arena) Quarantine(slot uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.occupied, slot)
	a.quarantined[slot] = true
}

// QuarantinedCount reports how many slots have been quarantined.
func (a *Arena) QuarantinedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.quarantined)
}
