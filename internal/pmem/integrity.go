package pmem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// CorruptError reports a record (or header word) that failed its CRC32C.
// It unwraps to ErrCorrupt; Key is best-effort (decoded from the corrupt
// bytes, so it may itself be damaged).
type CorruptError struct {
	Key  uint64
	Slot uint32
	Off  int64
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("pmem: corrupt record: key %d slot %d off %d", e.Key, e.Slot, e.Off)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// IntegrityError marks this as a data-integrity failure (see IsIntegrity).
func (e *CorruptError) IntegrityError() bool { return true }

// SlotOffset returns the device offset of slot's record. Exposed for
// integrity tooling and tests that inject corruption at a known site.
func (a *Arena) SlotOffset(slot uint32) int { return a.slotOffset(slot) }

// ReadPayloadVerified copies the payload of the record in slot into dst
// after validating the record CRC32C and that the record belongs to key.
// It is the integrity-checked serve path: it charges exactly the same
// virtual time as the unverified ReadPayload (one payload-sized PMem read —
// the CRC is computed by the CPU over bytes the load already fetched), so
// enabling verification does not move the simulated-performance results.
//
// oevet:charge read
func (a *Arena) ReadPayloadVerified(slot uint32, key uint64, dst []byte) error {
	off := a.slotOffset(slot)
	n := slotHeaderLen + a.payloadBytes
	if err := a.dev.check(off, n); err != nil {
		return err
	}
	if err := a.dev.poisonCheck(off, n); err != nil {
		return err
	}
	a.dev.crashMu.RLock()
	rec, err := a.decode(slot, a.dev.image[off:off+n])
	if err == nil {
		if rec.Key != key {
			err = &CorruptError{Key: key, Slot: slot, Off: int64(off)}
		} else {
			copy(dst[:a.payloadBytes], rec.Payload)
		}
	}
	a.dev.crashMu.RUnlock()
	a.dev.timed.ChargeRead(a.payloadBytes)
	return err
}

// ReadPayloadsVerified is the coalesced form of ReadPayloadVerified: it
// serves the count records occupying the consecutive slots [lo, lo+count)
// with one bounds check, one crash-lock acquisition and a single sequential
// sweep over the contiguous device bytes, validating each record's CRC32C
// from that one pass. key(i) must return the expected key of slot lo+i;
// serve(i, payload) receives each verified payload as a view into the
// device image, valid only for the duration of the call (the callback runs
// under the device's crash lock and must not re-enter the device).
//
// Integrity semantics are ReadPayloadVerified's, per record: a rotted or
// structurally-wrong record fails with a typed *CorruptError naming its
// slot, and poisoned media fails typed before any of its bytes are served.
// The charge-equivalence invariant also holds per record: the call charges
// exactly one payload-sized PMem read per record that the per-record path
// would have charged — never StreamReadCost of the span — so virtual time
// is independent of whether a run's slots happened to be adjacent (slot
// adjacency depends on maintainer scheduling, which determinism forbids
// from influencing simulated results).
//
// oevet:charge read
//
//oevet:charge-ok the count<=0 guard returns before any device access: zero work, zero charge
func (a *Arena) ReadPayloadsVerified(lo uint32, count int, key func(i int) uint64, serve func(i int, payload []byte)) error {
	if count <= 0 {
		return nil
	}
	off := a.slotOffset(lo)
	recLen := slotHeaderLen + a.payloadBytes
	span := (count-1)*a.slotSize + recLen
	if err := a.dev.check(off, span); err != nil {
		return err
	}
	// Poison is checked per record up front (the no-fault fast path is one
	// atomic load): records before the first poisoned one are still served
	// and charged, exactly as the per-record loop would have.
	limit, poisonErr := count, error(nil)
	for i := 0; i < count; i++ {
		if err := a.dev.poisonCheck(off+i*a.slotSize, recLen); err != nil {
			limit, poisonErr = i, err
			break
		}
	}
	charged := int64(limit)
	var err error
	a.dev.crashMu.RLock()
	view := a.dev.image[off : off+span]
	for i := 0; i < limit; i++ {
		recOff := i * a.slotSize
		rec, derr := a.decode(lo+uint32(i), view[recOff:recOff+recLen])
		if derr == nil && rec.Key != key(i) {
			derr = &CorruptError{Key: key(i), Slot: lo + uint32(i), Off: int64(off + recOff)}
		}
		if derr != nil {
			// Records 0..i-1 were served; the failing record still pays its
			// read (its bytes were fetched), matching ReadPayloadVerified.
			charged, err = int64(i+1), derr
			break
		}
		serve(i, rec.Payload)
	}
	a.dev.crashMu.RUnlock()
	a.dev.timed.ChargeReadN(a.payloadBytes, charged)
	if err != nil {
		return err
	}
	return poisonErr
}

// CheckRecord validates the record in slot against key without copying the
// payload out — the scrubber's probe. It charges a full record read (the
// scrub budget is what keeps this off the hot path).
//
// oevet:charge read
func (a *Arena) CheckRecord(slot uint32, key uint64) error {
	off := a.slotOffset(slot)
	n := slotHeaderLen + a.payloadBytes
	if err := a.dev.check(off, n); err != nil {
		return err
	}
	if err := a.dev.poisonCheck(off, n); err != nil {
		return err
	}
	a.dev.crashMu.RLock()
	rec, err := a.decode(slot, a.dev.image[off:off+n])
	if err == nil && rec.Key != key {
		err = &CorruptError{Key: key, Slot: slot, Off: int64(off)}
	}
	a.dev.crashMu.RUnlock()
	a.dev.timed.ChargeRead(n)
	return err
}

// CorrectRecord attempts to heal a record that failed its CRC32C by
// correcting a single flipped bit in place — the exact signature of media
// bit-rot. CRC32C (Castagnoli) has minimum Hamming distance 4 for any
// message shorter than 2^31 bits, so no error pattern of weight <= 3 is a
// codeword: a lone flipped bit (in the hashed bytes or in the stored CRC
// word itself) produces a syndrome no other single-bit flip can produce,
// the original record is recovered bit-exactly, and damage of 2-3 bits can
// never masquerade as a different correctable single-bit error.
//
// The search is the standard syndrome walk: the CRC byte-update
// crc' = tab[byte(crc)^in] ^ (crc>>8) is GF(2)-linear, so the register
// DIFFERENCE caused by flipping bit b of a message byte is independent of
// the actual bytes — it starts as crcTable[1<<b] and advances one
// zero-input step per later message byte. Matching the observed syndrome
// (stored ^ computed) against those candidates locates the flip in
// O(8n) table lookups; a weight-1 syndrome means the flip landed in the
// stored CRC field itself (a data flip there would be a weight-2 codeword).
//
// The corrected bytes are re-persisted with a durable read-back proof
// (bounded retries) regardless of whether hot-path flush verification is
// enabled: an unverified corrective flush could itself rot and the heal
// would be a lie. On success the slot, its version, and its checkpoint
// coverage are exactly what they were before the corruption. Poisoned
// media, multi-bit damage, and structural damage (valid CRC over a wrong
// key — only possible if corruption predates the checksum) return a typed
// error so the caller falls through to the lossy heals. Repair path only:
// never called while the record serves reads.
//
// oevet:pmem-integrity
func (a *Arena) CorrectRecord(slot uint32, key uint64) error {
	off := a.slotOffset(slot)
	n := slotHeaderLen + a.payloadBytes
	if err := a.dev.check(off, n); err != nil {
		return err
	}
	if err := a.dev.poisonCheck(off, n); err != nil {
		return err
	}
	buf := make([]byte, n)
	a.dev.crashMu.RLock()
	copy(buf, a.dev.image[off:off+n])
	a.dev.crashMu.RUnlock()
	a.dev.timed.ChargeRead(n)

	stored := binary.LittleEndian.Uint32(buf[20:])
	syndrome := stored ^ a.recordCRC(buf)
	switch {
	case syndrome == 0:
		// CRC already valid: the record is structurally wrong (bad key or
		// payload length), not bit-flipped — nothing this code can undo.
		return &CorruptError{Key: binary.LittleEndian.Uint64(buf[0:]), Slot: slot, Off: int64(off)}
	case bits.OnesCount32(syndrome) == 1:
		binary.LittleEndian.PutUint32(buf[20:], stored^syndrome)
	default:
		if !correctMessageBit(buf, syndrome) {
			return &CorruptError{Key: binary.LittleEndian.Uint64(buf[0:]), Slot: slot, Off: int64(off)}
		}
	}
	rec, err := a.decode(slot, buf)
	if err != nil {
		return err
	}
	if rec.Key != key {
		return &CorruptError{Key: rec.Key, Slot: slot, Off: int64(off)}
	}

	var lastErr error
	rb := make([]byte, n)
	for attempt := 0; attempt < 4; attempt++ {
		if err := a.dev.Persist(off, buf); err != nil {
			return err
		}
		if !a.dev.MediaFaultsArmed() {
			return nil
		}
		if err := a.dev.ReadDurable(off, rb); err != nil {
			lastErr = err // the corrective flush itself poisoned the line
			continue
		}
		if bytes.Equal(rb, buf) {
			return nil
		}
		lastErr = &CorruptError{Key: key, Slot: slot, Off: int64(off)}
	}
	return fmt.Errorf("pmem: corrected record of slot %d did not persist: %w", slot, lastErr)
}

// correctMessageBit locates the single message-bit flip whose CRC32C
// syndrome matches and undoes it, returning false when no single flip
// matches (multi-bit damage). The hashed message is buf[0:20] followed by
// buf[24:]; candidate deltas are maintained for flipping each bit of the
// byte currently under the cursor and advanced as the cursor moves from
// the last hashed byte toward the first.
func correctMessageBit(buf []byte, syndrome uint32) bool {
	var d [8]uint32
	for b := range d {
		d[b] = crcTable[1<<b]
	}
	msgLen := len(buf) - 4 // header minus the 4-byte CRC field, plus payload
	for k := 0; k < msgLen; k++ {
		for b, db := range d {
			if db != syndrome {
				continue
			}
			i := msgLen - 1 - k // message index of the flipped byte
			if i >= 20 {
				i += 4 // skip the CRC field buf[20:24], which is not hashed
			}
			buf[i] ^= 1 << b
			return true
		}
		for b := range d {
			d[b] = crcTable[byte(d[b])] ^ (d[b] >> 8)
		}
	}
	return false
}

// WriteRecordVerified is WriteRecord plus a durable read-back proof: after
// the flush, the durable image must decode to exactly (key, version) with a
// valid CRC. A rotted or silently-dropped flush is detected and re-flushed;
// a poisoned line is healed by the rewrite when possible. Bounded retries —
// if the media refuses to hold the record the last typed error is returned
// so the caller can quarantine the slot and allocate another.
func (a *Arena) WriteRecordVerified(slot uint32, key uint64, version int64, payload []byte) error {
	var lastErr error
	rb := make([]byte, slotHeaderLen+a.payloadBytes)
	for attempt := 0; attempt < 3; attempt++ {
		if err := a.WriteRecord(slot, key, version, payload); err != nil {
			return err
		}
		if err := a.dev.ReadDurable(a.slotOffset(slot), rb); err != nil {
			lastErr = err
			continue
		}
		rec, err := a.decode(slot, rb)
		if err != nil {
			lastErr = err
			continue
		}
		if rec.Key != key || rec.Version != version {
			lastErr = &CorruptError{Key: key, Slot: slot, Off: int64(a.slotOffset(slot))}
			continue
		}
		return nil
	}
	return fmt.Errorf("pmem: verified write of slot %d: %w", slot, lastErr)
}

// FindLatest scans the arena for the newest valid record of key with
// version at most maxVersion — the scrubber's restore probe against the
// retained checkpoint. The returned payload is a copy. Corrupt and
// poisoned slots are skipped. Charges a sequential stream read of the
// whole arena (restore is a repair path, not a hot path).
func (a *Arena) FindLatest(key uint64, maxVersion int64) (Record, bool) {
	var out Record
	found := false
	_ = a.Scan(func(r Record) error {
		if r.Key != key || r.Version > maxVersion {
			return nil
		}
		if !found || r.Version > out.Version {
			out = Record{Slot: r.Slot, Key: r.Key, Version: r.Version, Payload: append([]byte(nil), r.Payload...)}
			found = true
		}
		return nil
	})
	return out, found
}

// AdoptRetired removes slot from the retired list so its record becomes
// live again — the scrubber adopting an older retained record after the
// newest one was lost to the media. Returns the record's own version and
// whether the slot was found retired.
func (a *Arena) AdoptRetired(slot uint32) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, r := range a.retired {
		if r.slot == slot {
			a.retired = append(a.retired[:i], a.retired[i+1:]...)
			return r.oldVersion, true
		}
	}
	return 0, false
}

// Quarantine pulls slot out of circulation permanently: it is no longer
// occupied, never enters the free list, and recovery will not hand it out
// either. Used for slots whose media range is poisoned or refuses to hold
// data. If the slot held the only durable copy of live state the caller
// owes an epoch fence; quarantining a freshly allocated (empty) slot does
// not, and such call sites suppress in place.
//
// oevet:fence-need
func (a *Arena) Quarantine(slot uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.occupied, slot)
	a.quarantined[slot] = true
}

// QuarantinedCount reports how many slots have been quarantined.
func (a *Arena) QuarantinedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.quarantined)
}
