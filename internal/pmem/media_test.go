package pmem

import (
	"errors"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/faultinject"
	"openembedding/internal/simclock"
)

// newMediaArena builds a formatted arena and THEN arms the media-fault
// model (formatting is setup, not a fault target) — the same ordering
// ps.StartNode uses.
func newMediaArena(t *testing.T, slots int, seed uint64, rules ...faultinject.Rule) (*Arena, *Device) {
	t.Helper()
	payload := FloatBytes(4)
	m := simclock.NewMeter()
	dev := NewDevice(ArenaLayout(payload, slots), device.NewTimedPMem(m))
	a, err := NewArena(dev, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetMediaFaults(faultinject.New(seed, rules...), "m")
	return a, dev
}

func mustAlloc(t *testing.T, a *Arena) uint32 {
	t.Helper()
	slot, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	return slot
}

func TestMediaBitRotFailsVerifiedRead(t *testing.T) {
	a, _ := newMediaArena(t, 8, 42,
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindBitRot, Nth: 1})
	slot := mustAlloc(t, a)
	if err := a.WriteRecord(slot, 7, 3, encPayload(a, 1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, a.PayloadBytes())
	err := a.ReadPayloadVerified(slot, 7, dst)
	if err == nil {
		t.Fatal("verified read of a rotted record succeeded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if !IsIntegrity(err) {
		t.Fatalf("IsIntegrity(%v) = false", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %T", err)
	}
	if ce.Slot != slot {
		t.Fatalf("CorruptError.Slot = %d, want %d", ce.Slot, slot)
	}
	if err := a.CheckRecord(slot, 7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CheckRecord: want ErrCorrupt, got %v", err)
	}
}

func TestMediaBitRotIsDeterministic(t *testing.T) {
	read := func() error {
		a, _ := newMediaArena(t, 8, 7,
			faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindBitRot, Prob: 0.5})
		for i := uint64(0); i < 4; i++ {
			slot := mustAlloc(t, a)
			if err := a.WriteRecord(slot, i, 1, encPayload(a, float32(i), 0, 0, 0)); err != nil {
				t.Fatal(err)
			}
		}
		var firstErr error
		for slot := uint32(0); slot < 4; slot++ {
			if err := a.CheckRecord(slot, uint64(slot)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	e1, e2 := read(), read()
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("same seed, different corruption outcome: %v vs %v", e1, e2)
	}
	if e1 != nil && e1.Error() != e2.Error() {
		t.Fatalf("same seed, different corruption site: %v vs %v", e1, e2)
	}
}

func TestMediaDroppedFlushLostAtCrash(t *testing.T) {
	a, dev := newMediaArena(t, 8, 42,
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindDrop, Nth: 1})
	slot := mustAlloc(t, a)
	if err := a.WriteRecord(slot, 9, 5, encPayload(a, 4, 3, 2, 1)); err != nil {
		t.Fatal(err)
	}
	// The volatile image still holds the record: reads succeed pre-crash
	// (a dropped flush is exactly the silent failure mode — nothing
	// observable until power is lost).
	if err := a.CheckRecord(slot, 9); err != nil {
		t.Fatalf("pre-crash read after dropped flush: %v", err)
	}
	dev.Crash()
	if err := a.CheckRecord(slot, 9); err == nil {
		t.Fatal("record survived a crash although its flush was dropped")
	}
}

func TestMediaPoisonPersistsUntilRewritten(t *testing.T) {
	a, dev := newMediaArena(t, 8, 42,
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindPoison, Nth: 1})
	slot := mustAlloc(t, a)
	if err := a.WriteRecord(slot, 11, 2, encPayload(a, 1, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, a.PayloadBytes())
	err := a.ReadPayloadVerified(slot, 11, dst)
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("want ErrPoisoned, got %v", err)
	}
	if !IsIntegrity(err) {
		t.Fatalf("IsIntegrity(%v) = false", err)
	}
	// Poison is a media property: it survives power loss.
	dev.Crash()
	if err := a.CheckRecord(slot, 11); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poison did not survive crash: %v", err)
	}
	// A fault-free flush fully covering the range clears it (the rewrite
	// re-maps the poisoned lines), after which the slot serves again.
	if err := a.WriteRecord(slot, 11, 3, encPayload(a, 2, 2, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadPayloadVerified(slot, 11, dst); err != nil {
		t.Fatalf("read after healing rewrite: %v", err)
	}
}

func TestWriteRecordVerifiedHealsRotAndDrop(t *testing.T) {
	a, _ := newMediaArena(t, 8, 42,
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindBitRot, Nth: 1},
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindDrop, Nth: 2})
	slot := mustAlloc(t, a)
	if err := a.WriteRecordVerified(slot, 5, 1, encPayload(a, 9, 8, 7, 6)); err != nil {
		t.Fatalf("verified write did not heal transient faults: %v", err)
	}
	dst := make([]byte, a.PayloadBytes())
	if err := a.ReadPayloadVerified(slot, 5, dst); err != nil {
		t.Fatalf("read after verified write: %v", err)
	}
	var rec [4]float32
	DecodeFloats(rec[:], dst)
	if rec != [4]float32{9, 8, 7, 6} {
		t.Fatalf("payload %v after healed write", rec)
	}
}

func TestWriteRecordVerifiedReportsPersistentPoison(t *testing.T) {
	a, _ := newMediaArena(t, 8, 42,
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindPoison, Prob: 1})
	slot := mustAlloc(t, a)
	err := a.WriteRecordVerified(slot, 3, 1, encPayload(a, 1, 2, 3, 4))
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("want ErrPoisoned from verified write into poisoned media, got %v", err)
	}
}

func TestScanSkipsPoisonedSlots(t *testing.T) {
	a, _ := newMediaArena(t, 8, 42,
		faultinject.Rule{Point: faultinject.PointPMemFlush, Kind: faultinject.KindPoison, Nth: 2})
	s1 := mustAlloc(t, a)
	s2 := mustAlloc(t, a)
	if err := a.WriteRecord(s1, 1, 1, encPayload(a, 1, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRecord(s2, 2, 1, encPayload(a, 2, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	if err := a.Scan(func(r Record) error { keys = append(keys, r.Key); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != 1 {
		t.Fatalf("scan over poisoned arena yielded %v, want [1]", keys)
	}
}

func TestCheckpointHeaderWordCorruptionIsTyped(t *testing.T) {
	a, dev := newMediaArena(t, 8, 42)
	if err := a.SetCheckpointedBatch(5); err != nil {
		t.Fatal(err)
	}
	if got, err := a.CheckpointedBatch(); err != nil || got != 5 {
		t.Fatalf("CheckpointedBatch = %d, %v", got, err)
	}
	// Smash the durable word (and the volatile mirror): an all-zero word
	// fails the CRC-packed validation.
	zero := make([]byte, 8)
	copy(dev.image[offCkptID:], zero)
	copy(dev.durable[offCkptID:], zero)
	if _, err := a.CheckpointedBatch(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt header word: want ErrCorrupt, got %v", err)
	}
}

// TestVerifiedReadChargesMatchUnverified pins the virtual-time invariant:
// the integrity-checked serve path charges exactly what the unverified one
// does (the checksum is CPU work over already-fetched bytes), so arming
// verification cannot move any simulated-performance result.
func TestVerifiedReadChargesMatchUnverified(t *testing.T) {
	run := func(verified bool) simclock.Snapshot {
		payload := FloatBytes(4)
		m := simclock.NewMeter()
		dev := NewDevice(ArenaLayout(payload, 8), device.NewTimedPMem(m))
		a, err := NewArena(dev, payload, 8)
		if err != nil {
			t.Fatal(err)
		}
		slot := mustAlloc(t, a)
		if err := a.WriteRecord(slot, 1, 1, encPayload(a, 1, 2, 3, 4)); err != nil {
			t.Fatal(err)
		}
		before := m.Snapshot()
		dst := make([]byte, a.PayloadBytes())
		if verified {
			err = a.ReadPayloadVerified(slot, 1, dst)
		} else {
			err = a.ReadPayload(slot, dst)
		}
		if err != nil {
			t.Fatal(err)
		}
		return m.Snapshot().Sub(before)
	}
	if got, want := run(true), run(false); got != want {
		t.Fatalf("verified read charges %+v, unverified %+v — simulated results would move", got, want)
	}
}
