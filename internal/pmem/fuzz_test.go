package pmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/simclock"
)

// FuzzArenaRecover fuzzes crash points in the record-persist path: it writes
// a set of fully durable records, then stores one more record whose flush is
// cut short at an arbitrary byte prefix (the CLWB-granularity crash window),
// crashes, and recovers with OpenArena+Scan. Recovery must never surface a
// torn entry: every record the scan yields must be byte-identical to a
// record that was durably written — the torn slot may legally appear only if
// the flushed prefix covered the entire record.
//
// Two media-fault dimensions ride along: flipBit (non-zero) rots one bit of
// the first durable record after the crash — the record must then vanish
// from the scan (detected, never served as garbage) — and truncBytes
// (non-zero) re-opens a truncated copy of the durable image, which must fail
// with a typed error rather than panic.
func FuzzArenaRecover(f *testing.F) {
	f.Add(uint8(3), uint64(42), int16(0), uint8(7), uint16(0), uint16(0))
	f.Add(uint8(1), uint64(1), int16(5), uint8(0), uint16(0), uint16(0))
	f.Add(uint8(5), uint64(99), int16(23), uint8(255), uint16(0), uint16(0)) // header torn mid-CRC
	f.Add(uint8(0), uint64(0), int16(40), uint8(1), uint16(0), uint16(0))    // payload fully covered, tail missing
	f.Add(uint8(7), uint64(7), int16(-1), uint8(3), uint16(0), uint16(0))    // full flush: record must survive
	f.Add(uint8(4), uint64(11), int16(-1), uint8(9), uint16(1), uint16(0))   // bit-rot in a durable record's key
	f.Add(uint8(3), uint64(5), int16(-1), uint8(2), uint16(170), uint16(0))  // bit-rot mid-CRC field
	f.Add(uint8(6), uint64(13), int16(-1), uint8(4), uint16(300), uint16(0))
	f.Add(uint8(2), uint64(3), int16(0), uint8(1), uint16(0), uint16(1))  // image truncated to 1 byte
	f.Add(uint8(2), uint64(3), int16(0), uint8(1), uint16(0), uint16(63)) // truncated inside the header
	f.Add(uint8(5), uint64(21), int16(12), uint8(8), uint16(0), uint16(200))

	f.Fuzz(func(t *testing.T, durableN uint8, keySeed uint64, flushedPrefix int16, fill uint8, flipBit uint16, truncBytes uint16) {
		const (
			payloadFloats = 4
			slots         = 16
		)
		payload := FloatBytes(payloadFloats)
		m := simclock.NewMeter()
		dev := NewDevice(ArenaLayout(payload, slots), device.NewTimedPMem(m))
		a, err := NewArena(dev, payload, slots)
		if err != nil {
			t.Fatal(err)
		}

		// Durable prefix of the history: records that must survive any crash.
		want := map[uint64][]byte{} // key -> full on-media record bytes
		n := int(durableN) % (slots - 1)
		var firstSlot uint32
		var firstKey uint64
		for i := 0; i < n; i++ {
			key := keySeed + uint64(i)*1000003
			slot, err := a.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				firstSlot, firstKey = slot, key
			}
			pl := make([]byte, payload)
			for j := range pl {
				pl[j] = byte(uint64(j)*31 + key + uint64(fill))
			}
			if err := a.WriteRecord(slot, key, int64(i+1), pl); err != nil {
				t.Fatal(err)
			}
			rec := make([]byte, slotHeaderLen+payload)
			if err := dev.Read(a.slotOffset(slot), rec); err != nil {
				t.Fatal(err)
			}
			want[key] = rec
		}

		// One more record, torn: full volatile store, partial flush.
		tornSlot, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		tornKey := keySeed ^ 0xdeadbeef
		for want[tornKey] != nil { // must not collide with a durable key
			tornKey++
		}
		tornPayload := make([]byte, payload)
		for j := range tornPayload {
			tornPayload[j] = byte(int(fill) + j)
		}
		recLen := slotHeaderLen + payload
		buf := make([]byte, recLen)
		binary.LittleEndian.PutUint64(buf[0:], tornKey)
		binary.LittleEndian.PutUint64(buf[8:], uint64(n+1))
		binary.LittleEndian.PutUint32(buf[16:], uint32(payload))
		copy(buf[slotHeaderLen:], tornPayload)
		binary.LittleEndian.PutUint32(buf[20:], a.recordCRC(buf))
		off := a.slotOffset(tornSlot)
		if err := dev.Write(off, buf); err != nil {
			t.Fatal(err)
		}
		// Flush an arbitrary prefix; <0 or >=recLen means a complete flush.
		pfx := int(flushedPrefix)
		fullFlush := pfx < 0 || pfx >= recLen
		if fullFlush {
			pfx = recLen
		}
		if pfx > 0 {
			if err := dev.Flush(off, pfx); err != nil {
				t.Fatal(err)
			}
		}
		if fullFlush {
			want[tornKey] = append([]byte(nil), buf...)
		}

		dev.Crash()

		// Bit-rot one durable record post-crash: the record must be detected
		// (skipped by the scan), never surfaced as garbage. Every record byte
		// is CRC-covered, so any single flip invalidates the slot.
		rotted := false
		if flipBit != 0 && n > 0 {
			bit := int(flipBit-1) % (recLen * 8)
			rotOff := a.slotOffset(firstSlot) + bit/8
			dev.image[rotOff] ^= 1 << (bit % 8)
			dev.durable[rotOff] ^= 1 << (bit % 8)
			delete(want, firstKey)
			rotted = true
		}

		// Re-open a truncated copy of the durable image: must fail with a
		// typed error (ErrBadImage or ErrOutOfRange), never panic or succeed.
		if truncBytes != 0 {
			fullCap := dev.Capacity()
			size := 1 + int(truncBytes)%(fullCap-1)
			short := NewDevice(size, device.NewTimedPMem(simclock.NewMeter()))
			copy(short.image, dev.durable[:size])
			copy(short.durable, dev.durable[:size])
			if _, err := OpenArena(short); err == nil {
				t.Fatalf("OpenArena on image truncated to %d/%d bytes succeeded", size, fullCap)
			} else if !errors.Is(err, ErrBadImage) && !errors.Is(err, ErrOutOfRange) {
				t.Fatalf("OpenArena on truncated image: untyped error %v", err)
			}
		}

		// Recover. Scan must yield exactly the durable records, bit-exact.
		ra, err := OpenArena(dev)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		err = ra.Scan(func(r Record) error {
			if rotted && r.Slot == firstSlot {
				t.Fatalf("recovery surfaced the bit-rotted record in slot %d (key %d) as valid", r.Slot, r.Key)
			}
			exp, ok := want[r.Key]
			if !ok {
				t.Fatalf("recovery surfaced record for key %d that was never durably written (torn entry leaked, flushed prefix %d/%d)", r.Key, pfx, recLen)
			}
			if seen[r.Key] {
				t.Fatalf("recovery surfaced key %d twice", r.Key)
			}
			seen[r.Key] = true
			got := make([]byte, slotHeaderLen+payload)
			if err := dev.Read(ra.slotOffset(r.Slot), got); err != nil {
				return err
			}
			if !bytes.Equal(got, exp) {
				t.Fatalf("recovered record for key %d differs from what was durably written", r.Key)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for key := range want {
			if !seen[key] {
				t.Fatalf("durably written record for key %d lost after crash", key)
			}
		}
	})
}
