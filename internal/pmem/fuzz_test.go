package pmem

import (
	"bytes"
	"encoding/binary"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/simclock"
)

// FuzzArenaRecover fuzzes crash points in the record-persist path: it writes
// a set of fully durable records, then stores one more record whose flush is
// cut short at an arbitrary byte prefix (the CLWB-granularity crash window),
// crashes, and recovers with OpenArena+Scan. Recovery must never surface a
// torn entry: every record the scan yields must be byte-identical to a
// record that was durably written — the torn slot may legally appear only if
// the flushed prefix covered the entire record.
func FuzzArenaRecover(f *testing.F) {
	f.Add(uint8(3), uint64(42), int16(0), uint8(7))
	f.Add(uint8(1), uint64(1), int16(5), uint8(0))
	f.Add(uint8(5), uint64(99), int16(23), uint8(255)) // header torn mid-CRC
	f.Add(uint8(0), uint64(0), int16(40), uint8(1))    // payload fully covered, tail missing
	f.Add(uint8(7), uint64(7), int16(-1), uint8(3))    // full flush: record must survive

	f.Fuzz(func(t *testing.T, durableN uint8, keySeed uint64, flushedPrefix int16, fill uint8) {
		const (
			payloadFloats = 4
			slots         = 16
		)
		payload := FloatBytes(payloadFloats)
		m := simclock.NewMeter()
		dev := NewDevice(ArenaLayout(payload, slots), device.NewTimedPMem(m))
		a, err := NewArena(dev, payload, slots)
		if err != nil {
			t.Fatal(err)
		}

		// Durable prefix of the history: records that must survive any crash.
		want := map[uint64][]byte{} // key -> full on-media record bytes
		n := int(durableN) % (slots - 1)
		for i := 0; i < n; i++ {
			key := keySeed + uint64(i)*1000003
			slot, err := a.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			pl := make([]byte, payload)
			for j := range pl {
				pl[j] = byte(uint64(j)*31 + key + uint64(fill))
			}
			if err := a.WriteRecord(slot, key, int64(i+1), pl); err != nil {
				t.Fatal(err)
			}
			rec := make([]byte, slotHeaderLen+payload)
			if err := dev.Read(a.slotOffset(slot), rec); err != nil {
				t.Fatal(err)
			}
			want[key] = rec
		}

		// One more record, torn: full volatile store, partial flush.
		tornSlot, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		tornKey := keySeed ^ 0xdeadbeef
		for want[tornKey] != nil { // must not collide with a durable key
			tornKey++
		}
		tornPayload := make([]byte, payload)
		for j := range tornPayload {
			tornPayload[j] = byte(int(fill) + j)
		}
		recLen := slotHeaderLen + payload
		buf := make([]byte, recLen)
		binary.LittleEndian.PutUint64(buf[0:], tornKey)
		binary.LittleEndian.PutUint64(buf[8:], uint64(n+1))
		binary.LittleEndian.PutUint32(buf[16:], uint32(payload))
		copy(buf[slotHeaderLen:], tornPayload)
		binary.LittleEndian.PutUint32(buf[20:], a.recordCRC(buf))
		off := a.slotOffset(tornSlot)
		if err := dev.Write(off, buf); err != nil {
			t.Fatal(err)
		}
		// Flush an arbitrary prefix; <0 or >=recLen means a complete flush.
		pfx := int(flushedPrefix)
		fullFlush := pfx < 0 || pfx >= recLen
		if fullFlush {
			pfx = recLen
		}
		if pfx > 0 {
			if err := dev.Flush(off, pfx); err != nil {
				t.Fatal(err)
			}
		}
		if fullFlush {
			want[tornKey] = append([]byte(nil), buf...)
		}

		dev.Crash()

		// Recover. Scan must yield exactly the durable records, bit-exact.
		ra, err := OpenArena(dev)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		err = ra.Scan(func(r Record) error {
			exp, ok := want[r.Key]
			if !ok {
				t.Fatalf("recovery surfaced record for key %d that was never durably written (torn entry leaked, flushed prefix %d/%d)", r.Key, pfx, recLen)
			}
			if seen[r.Key] {
				t.Fatalf("recovery surfaced key %d twice", r.Key)
			}
			seen[r.Key] = true
			got := make([]byte, slotHeaderLen+payload)
			if err := dev.Read(ra.slotOffset(r.Slot), got); err != nil {
				return err
			}
			if !bytes.Equal(got, exp) {
				t.Fatalf("recovered record for key %d differs from what was durably written", r.Key)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for key := range want {
			if !seen[key] {
				t.Fatalf("durably written record for key %d lost after crash", key)
			}
		}
	})
}
