package pmem

import (
	"errors"
	"testing"
	"time"

	"openembedding/internal/device"
	"openembedding/internal/faultinject"
	"openembedding/internal/simclock"
)

// newMeteredArena is newTestArena but keeps the meter, for tests that pin
// the ranged read's charge-equivalence invariant.
func newMeteredArena(t *testing.T, payloadFloats, slots int) (*Arena, *simclock.Meter) {
	t.Helper()
	payload := FloatBytes(payloadFloats)
	d, m := newTestDevice(t, ArenaLayout(payload, slots))
	a, err := NewArena(d, payload, slots)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

// writeSeq fills count consecutive slots with records keyed base+i whose
// payloads encode (i, i+1, i+2, i+3), returning the first slot.
func writeSeq(t *testing.T, a *Arena, base uint64, count int) uint32 {
	t.Helper()
	first := uint32(0)
	for i := 0; i < count; i++ {
		slot := mustAlloc(t, a)
		if i == 0 {
			first = slot
		}
		f := float32(i)
		if err := a.WriteRecord(slot, base+uint64(i), int64(i), encPayload(a, f, f+1, f+2, f+3)); err != nil {
			t.Fatal(err)
		}
	}
	return first
}

// TestReadPayloadsVerifiedCoalesced: one ranged call over n adjacent slots
// serves every payload bit-identically to n individual verified reads, and —
// the charge-equivalence invariant — charges exactly the same virtual time
// and op count, so coalescing is invisible to the simulation.
func TestReadPayloadsVerifiedCoalesced(t *testing.T) {
	const n = 6
	a, am := newMeteredArena(t, 4, 8)
	b, bm := newMeteredArena(t, 4, 8)
	lo := writeSeq(t, a, 100, n)
	writeSeq(t, b, 100, n)

	s0, s1 := am.Snapshot(), bm.Snapshot()
	got := make([][]byte, n)
	err := a.ReadPayloadsVerified(lo, n,
		func(i int) uint64 { return 100 + uint64(i) },
		func(i int, payload []byte) {
			got[i] = append([]byte(nil), payload...)
		})
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, b.PayloadBytes())
	for i := 0; i < n; i++ {
		if err := b.ReadPayloadVerified(lo+uint32(i), 100+uint64(i), one); err != nil {
			t.Fatal(err)
		}
		if got[i] == nil {
			t.Fatalf("record %d not served", i)
		}
		for j := range one {
			if got[i][j] != one[j] {
				t.Fatalf("record %d byte %d: ranged %d, individual %d", i, j, got[i][j], one[j])
			}
		}
	}
	if da, db := am.Snapshot().Sub(s0), bm.Snapshot().Sub(s1); da != db {
		t.Fatalf("ranged read charges differ from %d individual reads:\nranged     %v\nindividual %v", n, da, db)
	}
}

// TestReadPayloadsVerifiedCorruptMiddle: a rotted record in the middle of
// the range fails with the same typed *CorruptError (correct slot) a
// per-record read reports; every record before it is served and charged, the
// failing record is charged (its bytes were read), and nothing after it is
// served or charged.
func TestReadPayloadsVerifiedCorruptMiddle(t *testing.T) {
	const n, bad = 6, 3
	a, m := newMeteredArena(t, 4, 8)
	lo := writeSeq(t, a, 100, n)
	flipDurableBit(t, a, a.slotOffset(lo+bad)+slotHeaderLen, 2)

	s0 := m.Snapshot()
	var served []int
	err := a.ReadPayloadsVerified(lo, n,
		func(i int) uint64 { return 100 + uint64(i) },
		func(i int, payload []byte) { served = append(served, i) })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %T", err)
	}
	if ce.Slot != lo+bad {
		t.Fatalf("CorruptError.Slot = %d, want %d", ce.Slot, lo+bad)
	}
	if len(served) != bad {
		t.Fatalf("served %v, want records 0..%d", served, bad-1)
	}
	d := m.Snapshot().Sub(s0)
	wantNS := time.Duration(bad+1) * device.PMem().ReadCost(a.PayloadBytes())
	if d.Total(simclock.PMemRead) != wantNS || d.OpCount(simclock.PMemRead) != bad+1 {
		t.Fatalf("corrupt range charged %v/%d ops, want %v/%d (served + failing record)",
			d.Total(simclock.PMemRead), d.OpCount(simclock.PMemRead), wantNS, bad+1)
	}
}

// TestReadPayloadsVerifiedKeyMismatch: a record whose stored key is not the
// one the index expects is structural corruption; the typed error carries
// the mismatching slot and the failing record is charged.
func TestReadPayloadsVerifiedKeyMismatch(t *testing.T) {
	const n, bad = 4, 2
	a, _ := newMeteredArena(t, 4, 8)
	lo := writeSeq(t, a, 100, n)

	var served []int
	err := a.ReadPayloadsVerified(lo, n,
		func(i int) uint64 {
			if i == bad {
				return 999 // the index thinks this slot holds another key
			}
			return 100 + uint64(i)
		},
		func(i int, payload []byte) { served = append(served, i) })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Slot != lo+bad || ce.Key != 999 {
		t.Fatalf("CorruptError = slot %d key %d, want slot %d key 999", ce.Slot, ce.Key, lo+bad)
	}
	if len(served) != bad {
		t.Fatalf("served %v, want records 0..%d", served, bad-1)
	}
}

// TestReadPayloadsVerifiedPoison: a poisoned record bounds the range read —
// records before it are served and charged, the poisoned record is neither
// (mirroring ReadPayloadVerified, which charges nothing for a poisoned
// read), and the error is the typed media error.
func TestReadPayloadsVerifiedPoison(t *testing.T) {
	const n, bad = 5, 2
	payload := FloatBytes(4)
	m := simclock.NewMeter()
	dev := NewDevice(ArenaLayout(payload, 8), device.NewTimedPMem(m))
	a, err := NewArena(dev, payload, 8)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetMediaFaults(faultinject.New(1), "m") // armed, no scripted faults
	lo := writeSeq(t, a, 100, n)
	dev.media.poison(a.slotOffset(lo+bad)+4, 8)

	s0 := m.Snapshot()
	var served []int
	err = a.ReadPayloadsVerified(lo, n,
		func(i int) uint64 { return 100 + uint64(i) },
		func(i int, payload []byte) { served = append(served, i) })
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("want ErrPoisoned, got %v", err)
	}
	if !IsIntegrity(err) {
		t.Fatalf("IsIntegrity(%v) = false", err)
	}
	if len(served) != bad {
		t.Fatalf("served %v, want records 0..%d", served, bad-1)
	}
	d := m.Snapshot().Sub(s0)
	if d.OpCount(simclock.PMemRead) != bad {
		t.Fatalf("poisoned range charged %d reads, want %d (poisoned record uncharged)",
			d.OpCount(simclock.PMemRead), bad)
	}
}

// TestReadPayloadsVerifiedBounds: empty and out-of-range requests fail the
// same way the per-record read does, before any charge.
func TestReadPayloadsVerifiedBounds(t *testing.T) {
	a, m := newMeteredArena(t, 4, 4)
	writeSeq(t, a, 7, 2)
	if err := a.ReadPayloadsVerified(0, 0, nil, nil); err != nil {
		t.Fatalf("empty range: %v", err)
	}
	s0 := m.Snapshot()
	err := a.ReadPayloadsVerified(3, 2,
		func(i int) uint64 { return 0 },
		func(i int, payload []byte) { t.Fatal("served out-of-range record") })
	if err == nil {
		t.Fatal("range past the arena end succeeded")
	}
	if d := m.Snapshot().Sub(s0); d.OpCount(simclock.PMemRead) != 0 {
		t.Fatal("failed bounds check still charged reads")
	}
}
