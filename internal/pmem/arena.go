package pmem

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// Arena is the space-management layer the paper delegates to PMDK: a
// slab of fixed-size embedding-entry records inside a Device, with
// crash-consistent record writes and checkpoint-aware reclamation.
//
// Records are versioned with the batch ID of the update they carry.
// A superseded record is not reused immediately; it is *retired* and only
// reclaimed once a checkpoint at least as new as its superseding version
// has completed (Sec. V-C: "the space manager will recycle the space of
// these entries once the new checkpoint is done"). That retention is what
// makes batch-consistent recovery possible without a separate snapshot.
type Arena struct {
	dev          *Device
	payloadBytes int
	slotSize     int
	slots        int

	// mu is the deepest lock in the engine hierarchy (DESIGN.md §7):
	// callers may hold shard locks and ckptMu when entering the arena,
	// never the reverse.
	//
	// oevet:lockrank pmem.arena.mu 30
	mu          sync.Mutex
	free        []uint32        // reusable slot indices
	bump        uint32          // next never-used slot
	retired     []retiredSlot   // superseded slots awaiting a covering checkpoint
	occupied    map[uint32]bool // debug/stat tracking of live slots
	quarantined map[uint32]bool // slots pulled from circulation (poisoned media)
}

type retiredSlot struct {
	slot         uint32
	oldVersion   int64 // version of the record being retired
	supersededBy int64 // version of the record that replaced it
}

const (
	arenaMagic     = uint64(0x4f45415245004132) // "OEAREA.A2" (A2: CRC-packed checkpoint words)
	arenaHeaderLen = 64
	slotHeaderLen  = 24 // key(8) + version(8) + payloadLen(4) + crc(4)

	offMagic   = 0
	offPayload = 8
	offSlots   = 12
	offCkptID  = 16
	// offPrevCkptID holds the checkpoint completed immediately before
	// offCkptID, or -1. Engines configured to retain two checkpoints keep
	// both recoverable, which is what lets a node roll back one committed
	// batch during coordinated cluster replay (DESIGN.md §10).
	offPrevCkptID = 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ArenaLayout computes the device capacity needed for an arena with the
// given record payload size (bytes) and slot count.
func ArenaLayout(payloadBytes, slots int) int {
	slotSize := alignUp(slotHeaderLen+payloadBytes, 8)
	return arenaHeaderLen + slotSize*slots
}

func alignUp(n, a int) int { return (n + a - 1) / a * a }

// NewArena formats an arena on dev with fixed-size payloads. Any previous
// contents of the device are ignored. The initial checkpointed batch ID
// is -1 (nothing checkpointed).
func NewArena(dev *Device, payloadBytes, slots int) (*Arena, error) {
	if need := ArenaLayout(payloadBytes, slots); need > dev.Capacity() {
		return nil, fmt.Errorf("pmem: device too small: need %d have %d", need, dev.Capacity())
	}
	a := &Arena{
		dev:          dev,
		payloadBytes: payloadBytes,
		slotSize:     alignUp(slotHeaderLen+payloadBytes, 8),
		slots:        slots,
		occupied:     make(map[uint32]bool),
		quarantined:  make(map[uint32]bool),
	}
	hdr := make([]byte, arenaHeaderLen)
	binary.LittleEndian.PutUint64(hdr[offMagic:], arenaMagic)
	binary.LittleEndian.PutUint32(hdr[offPayload:], uint32(payloadBytes))
	binary.LittleEndian.PutUint32(hdr[offSlots:], uint32(slots))
	binary.LittleEndian.PutUint64(hdr[offCkptID:], packCkptWord(-1))
	binary.LittleEndian.PutUint64(hdr[offPrevCkptID:], packCkptWord(-1))
	if err := dev.Persist(0, hdr); err != nil {
		return nil, err
	}
	return a, nil
}

// OpenArena attaches to an arena previously formatted on dev (after a crash
// or a process restart). The slot occupancy map is NOT rebuilt here; that is
// the recovery scan's job (see Scan and internal/recovery).
func OpenArena(dev *Device) (*Arena, error) {
	hdr := make([]byte, arenaHeaderLen)
	if err := dev.Read(0, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[offMagic:]) != arenaMagic {
		return nil, fmt.Errorf("%w: arena magic mismatch", ErrBadImage)
	}
	payload := int(binary.LittleEndian.Uint32(hdr[offPayload:]))
	slots := int(binary.LittleEndian.Uint32(hdr[offSlots:]))
	if ArenaLayout(payload, slots) > dev.Capacity() {
		return nil, fmt.Errorf("%w: arena larger than device", ErrBadImage)
	}
	return &Arena{
		dev:          dev,
		payloadBytes: payload,
		slotSize:     alignUp(slotHeaderLen+payload, 8),
		slots:        slots,
		occupied:     make(map[uint32]bool),
		quarantined:  make(map[uint32]bool),
	}, nil
}

// PayloadBytes returns the fixed record payload size.
func (a *Arena) PayloadBytes() int { return a.payloadBytes }

// Slots returns the arena capacity in records.
func (a *Arena) Slots() int { return a.slots }

// Device returns the underlying device.
func (a *Arena) Device() *Device { return a.dev }

func (a *Arena) slotOffset(slot uint32) int {
	return arenaHeaderLen + int(slot)*a.slotSize
}

// Alloc reserves a slot. It returns ErrFull when no slot is available;
// retired-but-unreclaimed slots do not count as available (they are still
// needed by a pending checkpoint).
func (a *Arena) Alloc() (uint32, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var slot uint32
	switch {
	case len(a.free) > 0:
		slot = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
	case int(a.bump) < a.slots:
		slot = a.bump
		a.bump++
	default:
		return 0, ErrFull
	}
	a.occupied[slot] = true
	return slot, nil
}

// Free returns a slot to the free list immediately. Use Retire instead when
// the slot's record may still be needed by a pending checkpoint.
func (a *Arena) Free(slot uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.freeLocked(slot)
}

func (a *Arena) freeLocked(slot uint32) {
	if !a.occupied[slot] {
		panic(fmt.Sprintf("pmem: double free of slot %d", slot))
	}
	delete(a.occupied, slot)
	a.free = append(a.free, slot)
}

// Retire marks the record in slot — whose own version is oldVersion — as
// superseded by a record of version supersededBy. The slot is reclaimed by
// a later Reclaim call once no checkpoint can need a version in
// [oldVersion, supersededBy).
func (a *Arena) Retire(slot uint32, oldVersion, supersededBy int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.occupied[slot] {
		panic(fmt.Sprintf("pmem: retire of unoccupied slot %d", slot))
	}
	a.retired = append(a.retired, retiredSlot{slot: slot, oldVersion: oldVersion, supersededBy: supersededBy})
}

// Reclaim frees every retired slot for which keep returns false. keep
// receives the retired record's own version and the version that superseded
// it; the engine keeps a record exactly when some recoverable checkpoint
// falls in [oldVersion, supersededBy). Reclaim returns the number of slots
// freed.
func (a *Arena) Reclaim(keep func(oldVersion, supersededBy int64) bool) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.retired[:0]
	n := 0
	for _, r := range a.retired {
		if keep(r.oldVersion, r.supersededBy) {
			kept = append(kept, r)
		} else {
			a.freeLocked(r.slot)
			n++
		}
	}
	a.retired = kept
	return n
}

// ReclaimUpTo frees every retired slot whose superseding version is at most
// ckpt: once a checkpoint at ckpt completes, any record superseded by a
// version the checkpoint already covers can never be read again.
func (a *Arena) ReclaimUpTo(ckpt int64) int {
	return a.Reclaim(func(_, supersededBy int64) bool { return supersededBy > ckpt })
}

// RetiredCount reports how many slots await reclamation.
func (a *Arena) RetiredCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.retired)
}

// LiveSlots reports how many slots are currently allocated (including
// retired ones not yet reclaimed).
func (a *Arena) LiveSlots() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.occupied)
}

// MarkOccupied registers a slot as live during recovery (when the free list
// is rebuilt from a scan instead of allocation history).
func (a *Arena) MarkOccupied(slot uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.occupied[slot] = true
	if slot >= a.bump {
		a.bump = slot + 1
	}
}

// FinishRecovery rebuilds the free list: every slot below the bump pointer
// that was not marked occupied becomes free. Quarantined slots and slots
// sitting on poisoned media stay out of circulation (poison is a media
// property, so it survives crashes and is rediscovered here).
func (a *Arena) FinishRecovery() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = a.free[:0]
	for s := uint32(0); s < a.bump; s++ {
		if a.occupied[s] || a.quarantined[s] {
			continue
		}
		if a.dev.poisonCheck(a.slotOffset(s), a.slotSize) != nil {
			a.quarantined[s] = true
			continue
		}
		a.free = append(a.free, s)
	}
}

// WriteRecord persists a record (key, version, payload) into slot with a
// single flush. The record is crash-consistent: recovery accepts it only if
// its checksum validates, so a torn write is discarded rather than observed.
//
// oevet:pmem-flush
// oevet:pmem-integrity
// oevet:charge write
func (a *Arena) WriteRecord(slot uint32, key uint64, version int64, payload []byte) error {
	if len(payload) != a.payloadBytes {
		return fmt.Errorf("pmem: payload size %d != record payload %d", len(payload), a.payloadBytes)
	}
	buf := make([]byte, slotHeaderLen+len(payload))
	binary.LittleEndian.PutUint64(buf[0:], key)
	binary.LittleEndian.PutUint64(buf[8:], uint64(version))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(payload)))
	copy(buf[slotHeaderLen:], payload)
	binary.LittleEndian.PutUint32(buf[20:], a.recordCRC(buf))
	return a.dev.Persist(a.slotOffset(slot), buf)
}

// recordCRC covers key, version, payloadLen and payload (the crc field
// itself is skipped). crc32.Update chains the two spans without the
// hash.Hash32 allocation, which keeps the verified read path alloc-free.
//
// oevet:pmem-checksum
func (a *Arena) recordCRC(buf []byte) uint32 {
	return crc32.Update(crc32.Update(0, crcTable, buf[0:20]), crcTable, buf[slotHeaderLen:])
}

// Record is a decoded arena record.
type Record struct {
	Slot    uint32
	Key     uint64
	Version int64
	Payload []byte // view into the device image; copy before retaining
}

// ReadRecord decodes the record in slot. It returns ErrCorrupt if the
// checksum does not validate (torn or never-written slot).
//
// oevet:charge read
func (a *Arena) ReadRecord(slot uint32) (Record, error) {
	off := a.slotOffset(slot)
	buf, err := a.dev.View(off, slotHeaderLen+a.payloadBytes)
	if err != nil {
		return Record{}, err
	}
	return a.decode(slot, buf)
}

// ReadPayload copies the payload of the record in slot into dst (which must
// be at least PayloadBytes long) without checksum validation; the caller is
// on the hot pull path and the record is known-live.
//
// oevet:charge read
func (a *Arena) ReadPayload(slot uint32, dst []byte) error {
	off := a.slotOffset(slot) + slotHeaderLen
	return a.dev.Read(off, dst[:a.payloadBytes])
}

// Version returns the version field of the record in slot without decoding
// the payload.
//
// oevet:charge read
func (a *Arena) Version(slot uint32) (int64, error) {
	buf, err := a.dev.View(a.slotOffset(slot)+8, 8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf)), nil
}

func (a *Arena) decode(slot uint32, buf []byte) (Record, error) {
	plen := binary.LittleEndian.Uint32(buf[16:])
	if int(plen) != a.payloadBytes {
		return Record{}, &CorruptError{Key: binary.LittleEndian.Uint64(buf[0:]), Slot: slot, Off: int64(a.slotOffset(slot))}
	}
	stored := binary.LittleEndian.Uint32(buf[20:])
	if stored != a.recordCRC(buf) {
		return Record{}, &CorruptError{Key: binary.LittleEndian.Uint64(buf[0:]), Slot: slot, Off: int64(a.slotOffset(slot))}
	}
	return Record{
		Slot:    slot,
		Key:     binary.LittleEndian.Uint64(buf[0:]),
		Version: int64(binary.LittleEndian.Uint64(buf[8:])),
		Payload: buf[slotHeaderLen:],
	}, nil
}

// Scan iterates over every slot, calling fn for each record whose checksum
// validates. Slots that were never written, torn by a crash, or zeroed are
// skipped silently — exactly the recovery-scan semantics of Sec. V-C.
// Scan charges a sequential stream read of the whole arena.
//
// oevet:charge stream-read
func (a *Arena) Scan(fn func(Record) error) error {
	return a.ScanRange(0, uint32(a.slots), fn)
}

// ScanRange scans slots [lo, hi) only, charging a sequential stream read of
// that range. Disjoint ranges may be scanned concurrently — the partitioned
// recovery the paper proposes in Sec. VI-E ("both scanning and the
// rebuilding can be executed [in] parallel on each part of the embedding
// tables").
//
// oevet:charge stream-read
func (a *Arena) ScanRange(lo, hi uint32, fn func(Record) error) error {
	if int(hi) > a.slots || lo > hi {
		return fmt.Errorf("%w: scan range [%d,%d) of %d slots", ErrOutOfRange, lo, hi, a.slots)
	}
	a.dev.Timed().ChargeStreamRead(int64(hi-lo) * int64(a.slotSize))
	for s := lo; s < hi; s++ {
		off := a.slotOffset(s)
		if a.dev.poisonCheck(off, slotHeaderLen+a.payloadBytes) != nil {
			continue // uncorrectable media: the record is gone, not garbage
		}
		// Raw view without per-slot charge: the stream charge above covers it.
		buf := a.dev.image[off : off+slotHeaderLen+a.payloadBytes]
		rec, err := a.decode(s, buf)
		if err != nil {
			continue // invalid slot: free space, torn write, or bit-rot
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// EraseMatching durably erases every record whose key satisfies match,
// wherever it lives — live slots, retired slots awaiting reclamation, and
// records left behind in already-freed slots. Each matching slot's header
// is zeroed and flushed, so the record fails its checksum on every future
// scan and recovery can never resurrect it: this is what makes a migrated
// key range *leave* its source node, rather than reappear on the next
// rollback. Bookkeeping follows: erased live and retired slots return to
// the free list. Quarantined slots and poisoned media are skipped (those
// records are already unreadable). Returns the number of records erased.
//
// Charges: one stream read for the scan, plus per-erased-slot write (and,
// under armed media faults, verify-read) charges from eraseSlotLocked — a
// mixed profile, so no exactly-once charge contract applies.
//
// oevet:pmem-flush
// oevet:pmem-integrity
func (a *Arena) EraseMatching(match func(key uint64) bool) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	// One sequential pass over the written prefix, like a recovery scan.
	a.dev.Timed().ChargeStreamRead(int64(a.bump) * int64(a.slotSize))
	zero := make([]byte, slotHeaderLen)
	erased := 0
	var wiped map[uint32]bool
	for s := uint32(0); s < a.bump; s++ {
		if a.quarantined[s] {
			continue
		}
		off := a.slotOffset(s)
		if a.dev.poisonCheck(off, slotHeaderLen+a.payloadBytes) != nil {
			continue
		}
		// Raw view without per-slot charge: the stream charge above covers it.
		buf := a.dev.image[off : off+slotHeaderLen+a.payloadBytes]
		rec, err := a.decode(s, buf)
		if err != nil {
			continue // free space, torn write, or bit-rot: nothing to erase
		}
		if !match(rec.Key) {
			continue
		}
		if err := a.eraseSlotLocked(off, zero); err != nil {
			return erased, err
		}
		erased++
		if wiped == nil {
			wiped = make(map[uint32]bool)
		}
		wiped[s] = true
		if a.occupied[s] {
			a.freeLocked(s)
		}
	}
	if len(wiped) > 0 {
		kept := a.retired[:0]
		for _, r := range a.retired {
			if !wiped[r.slot] {
				kept = append(kept, r)
			}
		}
		a.retired = kept
	}
	return erased, nil
}

// eraseSlotLocked zeroes one slot header durably. Under an armed
// media-fault model the erase is verified against the durable image and
// retried, like setCkptWord: a dropped flush must not leave an erased
// record resurrectable.
func (a *Arena) eraseSlotLocked(off int, zero []byte) error {
	if !a.dev.MediaFaultsArmed() {
		return a.dev.Persist(off, zero)
	}
	rb := make([]byte, slotHeaderLen)
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if err := a.dev.Persist(off, zero); err != nil {
			return err
		}
		if err := a.dev.ReadDurable(off, rb); err != nil {
			lastErr = err // poisoned header line: the retry's flush rewrites it
			continue
		}
		ok := true
		for _, b := range rb {
			if b != 0 {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		lastErr = fmt.Errorf("%w: slot header at %d did not erase", ErrCorrupt, off)
	}
	return fmt.Errorf("pmem: erase publish: %w", lastErr)
}

// maxCkptID is the largest checkpoint ID the packed header word can hold:
// the low half stores id+1 in 32 bits, so the representable range is
// [-1, 2^32-2]. setCkptWord rejects IDs outside it — a wrapped ID would
// carry a VALID CRC over the wrong value, the one corruption the
// self-validating word cannot detect after the fact.
const maxCkptID = int64(1)<<32 - 2

// packCkptWord encodes a checkpoint ID as a self-validating 8-byte word:
// the low half is id+1 (so -1, "nothing checkpointed", packs to 0) and the
// high half is the CRC32C of that low half. The word is still published
// with a single aligned 8-byte store, so power-fail atomicity is preserved
// while media corruption of the header becomes detectable. Callers must
// range-check id against [-1, maxCkptID] first (setCkptWord does).
//
// oevet:pmem-checksum
func packCkptWord(id int64) uint64 {
	var le [4]byte
	idp := uint32(id + 1)
	binary.LittleEndian.PutUint32(le[:], idp)
	return uint64(idp) | uint64(crc32.Checksum(le[:], crcTable))<<32
}

// unpackCkptWord validates and decodes a packed checkpoint word.
func unpackCkptWord(word uint64, what string) (int64, error) {
	var le [4]byte
	idp := uint32(word)
	binary.LittleEndian.PutUint32(le[:], idp)
	if uint32(word>>32) != crc32.Checksum(le[:], crcTable) {
		return 0, fmt.Errorf("%w: %s checkpoint header word %#x fails validation", ErrCorrupt, what, word)
	}
	return int64(idp) - 1, nil
}

// setCkptWord stamps and publishes one checkpoint header word. When a
// media-fault model is armed the publish is verified against the durable
// image and retried, so a rotted or dropped header flush cannot silently
// orphan both retained checkpoints.
//
// oevet:pmem-integrity
func (a *Arena) setCkptWord(off int, id int64) error {
	if id < -1 || id > maxCkptID {
		return fmt.Errorf("%w: checkpoint id %d outside packed-word range [-1, %d]", ErrOutOfRange, id, maxCkptID)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], packCkptWord(id))
	if !a.dev.MediaFaultsArmed() {
		return a.dev.Persist(off, buf[:])
	}
	var lastErr error
	var rb [8]byte
	for attempt := 0; attempt < 4; attempt++ {
		if err := a.dev.Persist(off, buf[:]); err != nil {
			return err
		}
		if err := a.dev.ReadDurable(off, rb[:]); err != nil {
			lastErr = err // poisoned header line: the retry's flush rewrites it
			continue
		}
		if rb == buf {
			return nil
		}
		lastErr = fmt.Errorf("%w: checkpoint header word at %d did not persist", ErrCorrupt, off)
	}
	return fmt.Errorf("pmem: checkpoint header publish: %w", lastErr)
}

// SetCheckpointedBatch atomically persists the ID of the latest completed
// checkpoint (Alg. 2 line 25, "PMem.atomicUpdateCheckpointId"). An aligned
// 8-byte store is power-fail atomic on real PMem; the simulation preserves
// that by persisting the full word in one flush.
//
// oevet:pmem-publish
func (a *Arena) SetCheckpointedBatch(id int64) error {
	return a.setCkptWord(offCkptID, id)
}

// CheckpointedBatch returns the persisted completed-checkpoint ID, or -1 if
// no checkpoint has ever completed. A header word that fails its CRC (or
// sits on poisoned media) returns a typed error so recovery can fall back
// to the retained previous checkpoint instead of trusting garbage.
func (a *Arena) CheckpointedBatch() (int64, error) {
	buf, err := a.dev.View(offCkptID, 8)
	if err != nil {
		return 0, err
	}
	return unpackCkptWord(binary.LittleEndian.Uint64(buf), "current")
}

// SetPrevCheckpointedBatch atomically persists the ID of the checkpoint
// retained *behind* the latest one (-1 for none). Engines that keep two
// recoverable checkpoints persist this BEFORE advancing the current ID, so
// a crash between the two stores leaves (prev==cur), which recovery treats
// as "only one checkpoint retained" — safe in both orders.
//
// oevet:pmem-publish
func (a *Arena) SetPrevCheckpointedBatch(id int64) error {
	return a.setCkptWord(offPrevCkptID, id)
}

// PrevCheckpointedBatch returns the persisted previous-checkpoint ID, or -1
// if at most one checkpoint is retained. Corrupt header words fail typed,
// like CheckpointedBatch.
func (a *Arena) PrevCheckpointedBatch() (int64, error) {
	buf, err := a.dev.View(offPrevCkptID, 8)
	if err != nil {
		return 0, err
	}
	return unpackCkptWord(binary.LittleEndian.Uint64(buf), "previous")
}
