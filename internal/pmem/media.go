package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"openembedding/internal/faultinject"
)

// ErrPoisoned indicates a read that touched an uncorrectable (poisoned)
// media range. Real Optane DIMMs raise a machine check for such lines; the
// simulation surfaces a typed error instead of garbage.
var ErrPoisoned = errors.New("pmem: poisoned media range")

// PoisonError reports the poisoned range a read overlapped.
type PoisonError struct {
	Off int // start of the poisoned range
	Len int
}

func (e *PoisonError) Error() string {
	return fmt.Sprintf("pmem: poisoned media range [%d,%d)", e.Off, e.Off+e.Len)
}

func (e *PoisonError) Unwrap() error { return ErrPoisoned }

// IntegrityError marks this as a data-integrity failure (see IsIntegrity).
func (e *PoisonError) IntegrityError() bool { return true }

// IsIntegrity reports whether err is a data-integrity failure — a checksum
// mismatch (ErrCorrupt) or a poisoned-media read (ErrPoisoned) — as opposed
// to a usage or capacity error.
func IsIntegrity(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrPoisoned)
}

// mediaState is the seeded media-fault model attached to a Device:
// bit-rot in flushed lines, silently-dropped flushes and poisoned
// (uncorrectable-read) ranges, every decision a pure function of the
// injector seed and the per-device flush occurrence stream.
type mediaState struct {
	inj   *faultinject.Injector
	label string

	mu        sync.Mutex
	poisoned  []poisonRange
	hasPoison atomic.Bool
}

type poisonRange struct{ off, end int }

// SetMediaFaults arms the seeded media-fault model: every Flush consults
// inj at PointPMemFlush under the given stream label. Arm the model after
// formatting the arena (so the format itself is not a fault target) and
// before serving; the fault stream is deterministic as long as flushes on
// this device are issued in a deterministic order.
func (d *Device) SetMediaFaults(inj *faultinject.Injector, label string) {
	if inj == nil {
		d.media = nil
		return
	}
	d.media = &mediaState{inj: inj, label: label}
}

// MediaFaultsArmed reports whether a media-fault model is attached. Engines
// use it to decide whether flushes need read-back verification.
func (d *Device) MediaFaultsArmed() bool { return d.media != nil }

// poisonCheck returns a typed error when [off, off+n) overlaps a poisoned
// range. The nil/fast path is a single pointer test plus one atomic load.
func (d *Device) poisonCheck(off, n int) error {
	m := d.media
	if m == nil || !m.hasPoison.Load() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.poisoned {
		if off < r.end && off+n > r.off {
			return &PoisonError{Off: r.off, Len: r.end - r.off}
		}
	}
	return nil
}

// poison marks [off, off+n) uncorrectable.
func (m *mediaState) poison(off, n int) {
	m.mu.Lock()
	m.poisoned = append(m.poisoned, poisonRange{off: off, end: off + n})
	m.hasPoison.Store(true)
	m.mu.Unlock()
}

// clearPoison removes poisoned ranges fully covered by a successful
// rewrite of [off, off+n): rewriting a line heals it.
func (m *mediaState) clearPoison(off, n int) {
	m.mu.Lock()
	kept := m.poisoned[:0]
	for _, r := range m.poisoned {
		if r.off >= off && r.end <= off+n {
			continue
		}
		kept = append(kept, r)
	}
	m.poisoned = kept
	if len(kept) == 0 {
		m.hasPoison.Store(false)
	}
	m.mu.Unlock()
}

// rot flips one Arg-chosen bit of [off, off+n) in both the volatile and the
// durable image: the line was flushed correctly and then silently decayed,
// so loads and recovery both observe the flipped bit.
func (d *Device) rot(off, n int, arg uint64) {
	if n <= 0 {
		return
	}
	byteOff := off + int(arg%uint64(n))
	bit := byte(1) << ((arg >> 32) % 8)
	d.crashMu.RLock()
	d.image[byteOff] ^= bit
	d.durable[byteOff] ^= bit
	d.crashMu.RUnlock()
}

// ReadDurable copies n=len(buf) bytes of the DURABLE image at off into buf:
// the read-back a verified flush performs to prove the line actually
// reached the media. It is a simulation-level verification primitive and
// charges no virtual time; poisoned ranges fail typed like ordinary reads.
func (d *Device) ReadDurable(off int, buf []byte) error {
	if err := d.check(off, len(buf)); err != nil {
		return err
	}
	if err := d.poisonCheck(off, len(buf)); err != nil {
		return err
	}
	d.crashMu.RLock()
	copy(buf, d.durable[off:off+len(buf)])
	d.crashMu.RUnlock()
	return nil
}
