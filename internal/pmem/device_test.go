package pmem

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"openembedding/internal/device"
	"openembedding/internal/simclock"
)

func newTestDevice(t *testing.T, capacity int) (*Device, *simclock.Meter) {
	t.Helper()
	m := simclock.NewMeter()
	return NewDevice(capacity, device.NewTimedPMem(m)), m
}

func TestDeviceWriteIsVolatileUntilFlush(t *testing.T) {
	d, _ := newTestDevice(t, 1024)
	data := []byte("hello pmem")
	if err := d.Write(100, data); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	got := make([]byte, len(data))
	if err := d.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, len(data))) {
		t.Fatalf("unflushed write survived crash: %q", got)
	}
}

func TestDeviceFlushSurvivesCrash(t *testing.T) {
	d, _ := newTestDevice(t, 1024)
	data := []byte("durable")
	if err := d.Persist(64, data); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	got := make([]byte, len(data))
	if err := d.Read(64, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("flushed write lost: got %q want %q", got, data)
	}
}

func TestDevicePartialFlush(t *testing.T) {
	d, _ := newTestDevice(t, 1024)
	if err := d.Write(0, []byte("aaaabbbb")); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(0, 4); err != nil { // only first half persisted
		t.Fatal(err)
	}
	d.Crash()
	got := make([]byte, 8)
	if err := d.Read(0, got); err != nil {
		t.Fatal(err)
	}
	want := append([]byte("aaaa"), 0, 0, 0, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("partial flush wrong: got %q want %q", got, want)
	}
}

func TestDeviceOutOfRange(t *testing.T) {
	d, _ := newTestDevice(t, 16)
	if err := d.Write(10, make([]byte, 10)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := d.Read(-1, make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := d.Flush(0, 17); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if _, err := d.View(16, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
}

func TestDeviceChargesMeter(t *testing.T) {
	d, m := newTestDevice(t, 1024)
	if err := d.Persist(0, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if got := m.Total(simclock.PMemWrite); got <= 0 {
		t.Fatalf("flush charged nothing")
	}
	buf := make([]byte, 256)
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := m.Total(simclock.PMemRead); got < device.PMem().ReadLatency {
		t.Fatalf("read charged %v, want at least read latency", got)
	}
	// Writes without flush charge nothing: persistence cost is paid at flush.
	before := m.Total(simclock.PMemWrite)
	if err := d.Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if got := m.Total(simclock.PMemWrite); got != before {
		t.Fatalf("unflushed write charged PMem time")
	}
}

func TestDeviceStats(t *testing.T) {
	d, _ := newTestDevice(t, 1024)
	if err := d.Write(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(0, 50); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.BytesWritten != 100 || s.BytesFlushed != 50 || s.FlushOps != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeviceSaveAndReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pmem.img")

	d, _ := newTestDevice(t, 512)
	if err := d.Persist(10, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(100, []byte("volatile")); err != nil { // never flushed
		t.Fatal(err)
	}
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Capacity() != 512 {
		t.Fatalf("capacity = %d", re.Capacity())
	}
	got := make([]byte, 9)
	if err := re.Read(10, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persisted" {
		t.Fatalf("flushed data lost across save/open: %q", got)
	}
	vol := make([]byte, 8)
	if err := re.Read(100, vol); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vol, make([]byte, 8)) {
		t.Fatalf("volatile data survived save/open: %q", vol)
	}
}

func TestOpenFileRejectsBadImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.img")
	if err := os.WriteFile(path, []byte("not a pmem image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, nil); !errors.Is(err, ErrBadImage) {
		t.Fatalf("want ErrBadImage, got %v", err)
	}
}
