// Package pmem simulates a byte-addressable persistent-memory device (Intel
// Optane PMem in the paper) plus the space-management layer the paper gets
// from PMDK's libpmemobj.
//
// The simulation is functional, not just a timing stub:
//
//   - Stores land in a volatile DIMM image, exactly as CPU stores land in
//     the cache hierarchy on real hardware.
//   - Data becomes durable only when explicitly flushed (the CLWB+SFENCE
//     analog). A simulated power failure (Crash) discards everything that
//     was written but not flushed.
//   - The durable image can be saved to / reopened from an ordinary file so
//     recovery works across real process restarts (examples/fault_tolerance).
//
// Every access charges calibrated virtual time (device.PMem, Table I of the
// paper) to a simclock.Meter, which is how the performance experiments see
// the DRAM/PMem speed gap without physical hardware.
package pmem

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"openembedding/internal/device"
	"openembedding/internal/faultinject"
)

// Common errors returned by the pmem package.
var (
	// ErrOutOfRange indicates an access beyond the device capacity.
	ErrOutOfRange = errors.New("pmem: access out of range")
	// ErrFull indicates the arena has no free slots left.
	ErrFull = errors.New("pmem: arena full")
	// ErrCorrupt indicates a record failed its checksum during recovery.
	ErrCorrupt = errors.New("pmem: corrupt record")
	// ErrBadImage indicates a device image file that fails validation.
	ErrBadImage = errors.New("pmem: bad device image")
)

// Device is a simulated PMem DIMM: a volatile image over a durable one.
//
// Concurrent Read/Write/Flush calls on disjoint ranges are safe; callers
// coordinate access to shared ranges (the Arena does so per slot). Crash and
// Save require quiescence, as on real hardware.
type Device struct {
	image   []byte // what loads/stores observe (CPU-cache analog)
	durable []byte // what survives a power failure
	timed   *device.Timed

	bytesWritten atomic.Int64 // raw store traffic
	bytesFlushed atomic.Int64 // persisted traffic (write amplification basis)
	flushOps     atomic.Int64

	crashMu sync.RWMutex // held exclusively during Crash/Save/restore

	// media is the optional seeded media-fault model (bit-rot, dropped
	// flushes, poisoned ranges); nil on the fault-free path. Set during
	// setup via SetMediaFaults, before concurrent use.
	media *mediaState
}

// NewDevice creates a device of the given capacity in bytes. The meter may
// be nil, in which case accesses are functionally identical but free.
func NewDevice(capacity int, timed *device.Timed) *Device {
	if capacity <= 0 {
		panic("pmem: non-positive capacity")
	}
	return &Device{
		image:   make([]byte, capacity),
		durable: make([]byte, capacity),
		timed:   timed,
	}
}

// Capacity returns the device size in bytes.
func (d *Device) Capacity() int { return len(d.image) }

// Timed returns the timing wrapper the device charges to (may be nil).
func (d *Device) Timed() *device.Timed { return d.timed }

func (d *Device) check(off, n int) error {
	if off < 0 || n < 0 || off+n > len(d.image) {
		return fmt.Errorf("%w: off=%d n=%d cap=%d", ErrOutOfRange, off, n, len(d.image))
	}
	return nil
}

// Read copies n=len(buf) bytes at off into buf and charges one read access.
// Reads overlapping a poisoned media range fail with a typed PoisonError.
//
// oevet:charge read
func (d *Device) Read(off int, buf []byte) error {
	if err := d.check(off, len(buf)); err != nil {
		return err
	}
	if err := d.poisonCheck(off, len(buf)); err != nil {
		return err
	}
	d.crashMu.RLock()
	copy(buf, d.image[off:off+len(buf)])
	d.crashMu.RUnlock()
	d.timed.ChargeRead(len(buf))
	return nil
}

// View returns a read-only view of the volatile image without copying.
// The caller must not retain it across Crash/Restore. It charges one read
// access of n bytes (byte-addressable load).
//
// oevet:charge read
func (d *Device) View(off, n int) ([]byte, error) {
	if err := d.check(off, n); err != nil {
		return nil, err
	}
	if err := d.poisonCheck(off, n); err != nil {
		return nil, err
	}
	d.timed.ChargeRead(n)
	return d.image[off : off+n : off+n], nil
}

// Write stores data at off into the volatile image. The data is NOT durable
// until the range is flushed. Stores themselves are charged as DRAM-speed
// cache writes by the caller if desired; the PMem write cost is charged at
// Flush, matching how CLWB-bound persistence behaves on Optane.
//
// oevet:pmem-write
func (d *Device) Write(off int, data []byte) error {
	if err := d.check(off, len(data)); err != nil {
		return err
	}
	d.crashMu.RLock()
	copy(d.image[off:], data)
	d.crashMu.RUnlock()
	d.bytesWritten.Add(int64(len(data)))
	return nil
}

// Flush persists the range [off, off+n): the CLWB+SFENCE analog. After Flush
// returns, the range survives Crash — unless the armed media-fault model
// fires: a dropped flush silently never reaches the durable image, bit-rot
// flips one deterministic bit after the copy, and poison marks the range
// uncorrectable. Software cannot observe the fault from Flush itself (it
// still returns nil), exactly like real hardware; detection is the
// checksum/read-back layer's job.
//
// oevet:pmem-flush
// oevet:charge write
func (d *Device) Flush(off, n int) error {
	if err := d.check(off, n); err != nil {
		return err
	}
	var f faultinject.Fault
	if m := d.media; m != nil {
		f = m.inj.On(faultinject.PointPMemFlush, m.label)
	}
	if f.Kind != faultinject.KindDrop {
		d.crashMu.RLock()
		copy(d.durable[off:off+n], d.image[off:off+n])
		d.crashMu.RUnlock()
	}
	switch f.Kind {
	case faultinject.KindBitRot:
		d.rot(off, n, f.Arg)
	case faultinject.KindPoison:
		d.media.poison(off, n)
	case faultinject.KindNone:
		if m := d.media; m != nil && m.hasPoison.Load() {
			m.clearPoison(off, n)
		}
	}
	d.bytesFlushed.Add(int64(n))
	d.flushOps.Add(1)
	d.timed.ChargeWrite(n)
	return nil
}

// Persist writes data at off and immediately flushes it.
//
// oevet:pmem-flush
// oevet:charge write
func (d *Device) Persist(off int, data []byte) error {
	if err := d.Write(off, data); err != nil {
		return err
	}
	return d.Flush(off, len(data))
}

// Crash simulates a power failure: every store that was not flushed is lost.
// The device remains usable; its contents are the durable image.
func (d *Device) Crash() {
	d.crashMu.Lock()
	defer d.crashMu.Unlock()
	copy(d.image, d.durable)
}

// Stats reports raw store traffic, persisted traffic and flush counts.
type DeviceStats struct {
	BytesWritten int64
	BytesFlushed int64
	FlushOps     int64
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		BytesWritten: d.bytesWritten.Load(),
		BytesFlushed: d.bytesFlushed.Load(),
		FlushOps:     d.flushOps.Load(),
	}
}

// imageMagic guards device image files on disk.
var imageMagic = []byte("OEPMEMv1")

// Save writes the durable image to path (what a real deployment gets for
// free from a DAX-mapped device file). The volatile image is not saved:
// only flushed data survives, preserving crash semantics across processes.
func (d *Device) Save(path string) error {
	d.crashMu.Lock()
	defer d.crashMu.Unlock()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("pmem: save: %w", err)
	}
	if _, err := f.Write(imageMagic); err != nil {
		f.Close()
		return fmt.Errorf("pmem: save: %w", err)
	}
	if _, err := f.Write(d.durable); err != nil {
		f.Close()
		return fmt.Errorf("pmem: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pmem: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pmem: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// OpenFile loads a previously saved device image. The capacity is taken
// from the file.
func OpenFile(path string, timed *device.Timed) (*Device, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pmem: open: %w", err)
	}
	if len(raw) < len(imageMagic) || string(raw[:len(imageMagic)]) != string(imageMagic) {
		return nil, fmt.Errorf("%w: missing magic in %s", ErrBadImage, path)
	}
	data := raw[len(imageMagic):]
	d := &Device{
		image:   make([]byte, len(data)),
		durable: make([]byte, len(data)),
		timed:   timed,
	}
	copy(d.image, data)
	copy(d.durable, data)
	return d, nil
}
